// trajkit command-line tool.
//
// A thin operational wrapper over the library for users who want to play
// with the attack/defense pipeline without writing C++:
//
//   trajkit_cli simulate     --mode=walking --count=50 --out=real.csv
//   trajkit_cli simulate     --kind=navigation --count=50 --out=nav.csv
//   trajkit_cli train-motion --real=real.csv --fake=nav.csv --model=c.model
//   trajkit_cli classify     --model=c.model --in=some.csv
//   trajkit_cli forge        --model=c.model --in=real.csv --out=forged.csv
//   trajkit_cli mind         --mode=cycling
//   trajkit_cli match        --mode=walking --in=forged.csv
//
// Trajectory CSVs use the library interchange format
// (traj_id,mode,lat,lon,time_s) in the simulated world's frame; worlds are
// reproducible from --mode and --seed.
#include <cstdio>
#include <string>

#include "core/trajkit.hpp"

using namespace trajkit;

namespace {

Mode parse_mode(const std::string& name) {
  if (name == "walking") return Mode::kWalking;
  if (name == "cycling") return Mode::kCycling;
  if (name == "driving") return Mode::kDriving;
  throw std::invalid_argument("unknown mode: " + name);
}

core::Scenario make_scenario(const CliFlags& flags) {
  auto cfg = core::ScenarioConfig::for_mode(parse_mode(flags.get("mode", "walking")));
  if (flags.has("seed")) cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  return core::Scenario(cfg);
}

int cmd_simulate(const CliFlags& flags) {
  core::Scenario scenario = make_scenario(flags);
  const auto count = static_cast<std::size_t>(flags.get_int("count", 50));
  const auto points = static_cast<std::size_t>(flags.get_int("points", 48));
  const double interval = flags.get_double("interval", 1.0);
  const std::string kind = flags.get("kind", "real");
  const std::string out = flags.get("out", "trajectories.csv");

  TrajectoryList list;
  if (kind == "real") {
    for (auto& t : scenario.real_trajectories(count, points, interval)) {
      list.push_back(std::move(t.reported));
    }
  } else if (kind == "navigation") {
    for (auto& t : scenario.navigation_trajectories(count, points, interval)) {
      list.push_back(std::move(t.reported));
    }
  } else {
    throw std::invalid_argument("simulate: --kind must be real or navigation");
  }
  write_csv_file(out, list);
  std::printf("wrote %zu %s trajectories (%zu points each) to %s\n", list.size(),
              kind.c_str(), points, out.c_str());
  return 0;
}

int cmd_train_motion(const CliFlags& flags) {
  const auto real = read_csv_file(flags.get("real", "real.csv"));
  const auto fake = read_csv_file(flags.get("fake", "fake.csv"));
  if (real.empty() || fake.empty()) {
    throw std::runtime_error("train-motion: empty input dataset");
  }
  const DistAngleEncoder encoder;
  std::vector<FeatureSequence> xs;
  std::vector<int> ys;
  for (const auto& t : real) {
    xs.push_back(encoder.encode(t.to_enu(sim::sim_projection())));
    ys.push_back(1);
  }
  for (const auto& t : fake) {
    xs.push_back(encoder.encode(t.to_enu(sim::sim_projection())));
    ys.push_back(0);
  }
  nn::LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = static_cast<std::size_t>(flags.get_int("hidden", 32));
  cfg.learning_rate = flags.get_double("lr", 3e-3);
  nn::LstmClassifier model(cfg, static_cast<std::uint64_t>(flags.get_int("seed", 17)));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 30));
  std::printf("training on %zu real + %zu fake trajectories, %zu epochs...\n",
              real.size(), fake.size(), epochs);
  const auto report = model.train(xs, ys, epochs, [](std::size_t e, double l, double a) {
    if (e % 5 == 0) std::printf("  epoch %zu loss=%.4f acc=%.4f\n", e, l, a);
  });
  const std::string path = flags.get("model", "motion.model");
  model.save_file(path);
  std::printf("final train accuracy %.4f; model saved to %s\n",
              report.epoch_accuracy.back(), path.c_str());
  return 0;
}

int cmd_classify(const CliFlags& flags) {
  const auto model = nn::LstmClassifier::load_file(flags.get("model", "motion.model"));
  const auto trajs = read_csv_file(flags.get("in", "trajectories.csv"));
  const DistAngleEncoder encoder;
  std::size_t real_count = 0;
  for (std::size_t i = 0; i < trajs.size(); ++i) {
    const double p =
        model.predict_proba(encoder.encode(trajs[i].to_enu(sim::sim_projection())));
    real_count += p >= 0.5;
    std::printf("traj %zu: p(real)=%.4f -> %s\n", i, p, p >= 0.5 ? "REAL" : "FORGED");
  }
  std::printf("%zu/%zu judged real\n", real_count, trajs.size());
  return 0;
}

int cmd_forge(const CliFlags& flags) {
  const auto model = nn::LstmClassifier::load_file(flags.get("model", "motion.model"));
  const auto trajs = read_csv_file(flags.get("in", "real.csv"));
  if (trajs.empty()) throw std::runtime_error("forge: empty input");
  const DistAngleEncoder encoder;

  attack::CwConfig cfg;
  cfg.iterations = static_cast<std::size_t>(flags.get_int("iterations", 400));
  const attack::CwAttacker attacker(model, encoder, cfg);

  TrajectoryList forged_list;
  std::size_t adversarial = 0;
  for (const auto& t : trajs) {
    const double min_d = flags.get_double("mind", attack::paper_mind(t.mode()));
    const auto result =
        attacker.forge_replay(t.to_enu(sim::sim_projection()), min_d);
    adversarial += result.adversarial;
    auto forged = Trajectory::from_enu(result.points, sim::sim_projection(), t.mode(),
                                       t.interval_s(), t.front().time_s);
    forged_list.push_back(std::move(forged));
    std::printf("forged traj %zu: adversarial=%s p(real)=%.3f DTW=%.2f m/step\n",
                forged_list.size() - 1, result.adversarial ? "yes" : "no",
                result.p_real, result.dtw_norm);
  }
  const std::string out = flags.get("out", "forged.csv");
  write_csv_file(out, forged_list);
  std::printf("%zu/%zu adversarial; wrote %s\n", adversarial, trajs.size(),
              out.c_str());
  return 0;
}

int cmd_mind(const CliFlags& flags) {
  core::Scenario scenario = make_scenario(flags);
  const Mode mode = scenario.mode();
  const auto repetitions = static_cast<std::size_t>(flags.get_int("repetitions", 50));
  const double route_m = flags.get_double("route_m", 200.0);
  const double speed = sim::MobilityParams::for_mode(mode).mean_speed_mps;
  const auto points = static_cast<std::size_t>(route_m / speed) + 10;
  const auto est = attack::estimate_mind(scenario.simulator(), mode, route_m,
                                         repetitions, points, 1.0, scenario.rng());
  std::printf("%s: MinD=%.2f m/step (mean %.2f, max %.2f over %zu repetitions; "
              "paper %.1f)\n",
              mode_name(mode), est.min_d, est.mean_d, est.max_d, est.repetitions,
              attack::paper_mind(mode));
  return 0;
}

int cmd_match(const CliFlags& flags) {
  core::Scenario scenario = make_scenario(flags);
  const auto trajs = read_csv_file(flags.get("in", "trajectories.csv"));
  const map::MapMatcher matcher(scenario.network());
  for (std::size_t i = 0; i < trajs.size(); ++i) {
    const auto result = matcher.match(trajs[i].to_enu(sim::sim_projection()));
    if (!result) {
      std::printf("traj %zu: OFF-MAP (no candidate roads)\n", i);
    } else {
      std::printf("traj %zu: mean offset %.2f m, max %.2f m -> %s\n", i,
                  result->mean_offset_m, result->max_offset_m,
                  result->mean_offset_m < 5.0 ? "route-rational" : "suspicious");
    }
  }
  return 0;
}

int cmd_stats(const CliFlags& flags) {
  const auto trajs = read_csv_file(flags.get("in", "trajectories.csv"));
  if (trajs.empty()) {
    std::printf("no trajectories\n");
    return 0;
  }
  std::vector<double> lengths;
  std::vector<double> durations;
  std::vector<double> speeds;
  for (const auto& t : trajs) {
    lengths.push_back(t.length_m());
    durations.push_back(t.duration_s());
    for (double v : t.speeds_mps()) speeds.push_back(v);
  }
  std::printf("trajectories: %zu (%s, %zu points each)\n", trajs.size(),
              mode_name(trajs.front().mode()), trajs.front().size());
  std::printf("length  (m): mean %.1f  min %.1f  max %.1f\n", mean(lengths),
              min_of(lengths), max_of(lengths));
  std::printf("duration(s): mean %.1f  min %.1f  max %.1f\n", mean(durations),
              min_of(durations), max_of(durations));
  std::printf("speed (m/s): mean %.2f  std %.2f  p95 %.2f\n", mean(speeds),
              stddev(speeds), percentile(speeds, 95.0));
  return 0;
}

int cmd_help() {
  std::printf(
      "trajkit_cli <command> [--key=value ...]\n\n"
      "commands:\n"
      "  simulate      generate real/navigation trajectories to CSV\n"
      "                  --mode --seed --count --points --interval --kind --out\n"
      "  train-motion  train the LSTM motion classifier from CSVs\n"
      "                  --real --fake --model --hidden --epochs --lr --seed\n"
      "  classify      score trajectories with a saved model\n"
      "                  --model --in\n"
      "  forge         C&W replay attack on each trajectory of a CSV\n"
      "                  --model --in --out --iterations --mind\n"
      "  mind          measure the same-route MinD bound of a world\n"
      "                  --mode --seed --repetitions --route_m\n"
      "  match         map-match trajectories against the world's roads\n"
      "                  --mode --seed --in\n"
      "  stats         summary statistics of a trajectory CSV\n"
      "                  --in\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return cmd_help();
  const std::string command = argv[1];
  try {
    const CliFlags flags(argc - 1, argv + 1);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "train-motion") return cmd_train_motion(flags);
    if (command == "classify") return cmd_classify(flags);
    if (command == "forge") return cmd_forge(flags);
    if (command == "mind") return cmd_mind(flags);
    if (command == "match") return cmd_match(flags);
    if (command == "stats") return cmd_stats(flags);
    if (command == "help" || command == "--help") return cmd_help();
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    cmd_help();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
