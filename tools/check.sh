#!/usr/bin/env bash
# Sanitizer gate for the deterministic execution layer.
#
#   tools/check.sh          # TSan on the threading tests, then ASan full suite
#   tools/check.sh tsan     # TSan leg only
#   tools/check.sh asan     # ASan leg only
#
# TSan exercises the parallel/determinism/serving tests (the code paths with
# real cross-thread sharing, including the service's shard-locked RPD cache);
# ASan runs the entire suite.  Build trees live in
# build-tsan/ and build-asan/ so they never pollute the primary build/.
set -euo pipefail
cd "$(dirname "$0")/.."

LEG="${1:-all}"
JOBS="${JOBS:-$(nproc)}"

run_leg() {
  local name="$1" sanitize="$2" filter="$3"
  local dir="build-${name}"
  echo "== ${name}: configuring ${dir} (TRAJKIT_SANITIZE=${sanitize}) =="
  cmake -B "${dir}" -S . -DTRAJKIT_SANITIZE="${sanitize}" >/dev/null
  echo "== ${name}: building =="
  cmake --build "${dir}" -j "${JOBS}"
  echo "== ${name}: testing (filter: ${filter:-<all>}) =="
  if [[ -n "${filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R "${filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

case "${LEG}" in
  tsan) run_leg tsan thread 'Parallel|ThreadPool|Determinism|GlobalThreads|RngSubstream|VerifierService|RpdLruCache' ;;
  asan) run_leg asan address '' ;;
  all)
    run_leg tsan thread 'Parallel|ThreadPool|Determinism|GlobalThreads|RngSubstream|VerifierService|RpdLruCache'
    run_leg asan address ''
    ;;
  *) echo "usage: $0 [tsan|asan|all]" >&2; exit 2 ;;
esac

echo "== all sanitizer legs passed =="
