#!/usr/bin/env bash
# Sanitizer gate for the deterministic execution layer.
#
#   tools/check.sh          # TSan threading tests, ASan full suite, UBSan full suite
#   tools/check.sh tsan     # TSan leg only
#   tools/check.sh asan     # ASan leg only
#   tools/check.sh ubsan    # UBSan leg only
#
# TSan exercises the parallel/determinism/serving/chaos tests (the code paths
# with real cross-thread sharing, including the service's shard-locked RPD
# cache and the fault-injection registry); ASan and UBSan run the entire
# suite.  Build trees live in build-tsan/, build-asan/ and build-ubsan/ so
# they never pollute the primary build/.
set -euo pipefail
cd "$(dirname "$0")/.."

LEG="${1:-all}"
JOBS="${JOBS:-$(nproc)}"

run_leg() {
  local name="$1" sanitize="$2" filter="$3"
  local dir="build-${name}"
  echo "== ${name}: configuring ${dir} (TRAJKIT_SANITIZE=${sanitize}) =="
  cmake -B "${dir}" -S . -DTRAJKIT_SANITIZE="${sanitize}" >/dev/null
  echo "== ${name}: building =="
  cmake --build "${dir}" -j "${JOBS}"
  echo "== ${name}: testing (filter: ${filter:-<all>}) =="
  if [[ -n "${filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R "${filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

# Kernels joins the TSan leg because the batched nn path shares a
# thread_local workspace with the training pool's worker threads.  The
# durability suites (durable_test, crash_recovery_test) join every leg: under
# TSan/ASan/UBSan the corruption fuzz proves that a flipped byte is a clean
# Expected error and never UB, and the fork-based crash matrix stays safe
# because the children are single-threaded and I/O-only.  Hotswap/Artifact
# joins too: the RCU epoch flip races real submitter threads against
# publish_epoch, exactly the sharing TSan is for.  Net* joins for the same
# reason — SimNet serves concurrent callers under one mutex, UdsServer runs
# an accept loop plus per-connection threads, and the chaos suite drives
# both from client thread pools (the forked cross-process test self-skips
# under TSan: threads after fork are unsupported).  bench_net_smoke rides
# along so the transport legs (including real sockets) get sanitized too.
TSAN_FILTER='Parallel|ThreadPool|Determinism|GlobalThreads|RngSubstream|VerifierService|RpdLruCache|Chaos|Fault|Kernels|Crc32|AtomicWrite|Durable|Journal|CorruptionFuzz|TrajCsv|Validate|CrowdStore|CrashRecovery|Shard|ConsistentHash|Hotswap|Artifact|Poison|Quant|Net|bench_net_smoke'

case "${LEG}" in
  tsan) run_leg tsan thread "${TSAN_FILTER}" ;;
  asan) run_leg asan address '' ;;
  ubsan) run_leg ubsan undefined '' ;;
  all)
    run_leg tsan thread "${TSAN_FILTER}"
    run_leg asan address ''
    run_leg ubsan undefined ''
    ;;
  *) echo "usage: $0 [tsan|asan|ubsan|all]" >&2; exit 2 ;;
esac

echo "== all sanitizer legs passed =="
