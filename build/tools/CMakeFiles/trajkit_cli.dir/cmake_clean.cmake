file(REMOVE_RECURSE
  "CMakeFiles/trajkit_cli.dir/trajkit_cli.cpp.o"
  "CMakeFiles/trajkit_cli.dir/trajkit_cli.cpp.o.d"
  "trajkit_cli"
  "trajkit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
