# Empty compiler generated dependencies file for traj_gbt.
# This may be replaced when dependencies are built.
