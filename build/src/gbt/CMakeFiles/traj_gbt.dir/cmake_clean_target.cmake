file(REMOVE_RECURSE
  "libtraj_gbt.a"
)
