file(REMOVE_RECURSE
  "CMakeFiles/traj_gbt.dir/binning.cpp.o"
  "CMakeFiles/traj_gbt.dir/binning.cpp.o.d"
  "CMakeFiles/traj_gbt.dir/booster.cpp.o"
  "CMakeFiles/traj_gbt.dir/booster.cpp.o.d"
  "CMakeFiles/traj_gbt.dir/tree.cpp.o"
  "CMakeFiles/traj_gbt.dir/tree.cpp.o.d"
  "libtraj_gbt.a"
  "libtraj_gbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_gbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
