
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gbt/binning.cpp" "src/gbt/CMakeFiles/traj_gbt.dir/binning.cpp.o" "gcc" "src/gbt/CMakeFiles/traj_gbt.dir/binning.cpp.o.d"
  "/root/repo/src/gbt/booster.cpp" "src/gbt/CMakeFiles/traj_gbt.dir/booster.cpp.o" "gcc" "src/gbt/CMakeFiles/traj_gbt.dir/booster.cpp.o.d"
  "/root/repo/src/gbt/tree.cpp" "src/gbt/CMakeFiles/traj_gbt.dir/tree.cpp.o" "gcc" "src/gbt/CMakeFiles/traj_gbt.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
