file(REMOVE_RECURSE
  "CMakeFiles/traj_attack.dir/cw.cpp.o"
  "CMakeFiles/traj_attack.dir/cw.cpp.o.d"
  "CMakeFiles/traj_attack.dir/gradient_baselines.cpp.o"
  "CMakeFiles/traj_attack.dir/gradient_baselines.cpp.o.d"
  "CMakeFiles/traj_attack.dir/mind.cpp.o"
  "CMakeFiles/traj_attack.dir/mind.cpp.o.d"
  "CMakeFiles/traj_attack.dir/naive.cpp.o"
  "CMakeFiles/traj_attack.dir/naive.cpp.o.d"
  "CMakeFiles/traj_attack.dir/replay.cpp.o"
  "CMakeFiles/traj_attack.dir/replay.cpp.o.d"
  "CMakeFiles/traj_attack.dir/spsa.cpp.o"
  "CMakeFiles/traj_attack.dir/spsa.cpp.o.d"
  "libtraj_attack.a"
  "libtraj_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
