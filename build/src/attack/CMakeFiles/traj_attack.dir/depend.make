# Empty dependencies file for traj_attack.
# This may be replaced when dependencies are built.
