# Empty compiler generated dependencies file for traj_attack.
# This may be replaced when dependencies are built.
