
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/cw.cpp" "src/attack/CMakeFiles/traj_attack.dir/cw.cpp.o" "gcc" "src/attack/CMakeFiles/traj_attack.dir/cw.cpp.o.d"
  "/root/repo/src/attack/gradient_baselines.cpp" "src/attack/CMakeFiles/traj_attack.dir/gradient_baselines.cpp.o" "gcc" "src/attack/CMakeFiles/traj_attack.dir/gradient_baselines.cpp.o.d"
  "/root/repo/src/attack/mind.cpp" "src/attack/CMakeFiles/traj_attack.dir/mind.cpp.o" "gcc" "src/attack/CMakeFiles/traj_attack.dir/mind.cpp.o.d"
  "/root/repo/src/attack/naive.cpp" "src/attack/CMakeFiles/traj_attack.dir/naive.cpp.o" "gcc" "src/attack/CMakeFiles/traj_attack.dir/naive.cpp.o.d"
  "/root/repo/src/attack/replay.cpp" "src/attack/CMakeFiles/traj_attack.dir/replay.cpp.o" "gcc" "src/attack/CMakeFiles/traj_attack.dir/replay.cpp.o.d"
  "/root/repo/src/attack/spsa.cpp" "src/attack/CMakeFiles/traj_attack.dir/spsa.cpp.o" "gcc" "src/attack/CMakeFiles/traj_attack.dir/spsa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/traj_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/traj_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/traj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/traj_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/traj_map.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
