file(REMOVE_RECURSE
  "libtraj_attack.a"
)
