file(REMOVE_RECURSE
  "libtraj_geo.a"
)
