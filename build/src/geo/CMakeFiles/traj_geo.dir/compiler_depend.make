# Empty compiler generated dependencies file for traj_geo.
# This may be replaced when dependencies are built.
