file(REMOVE_RECURSE
  "CMakeFiles/traj_geo.dir/geo.cpp.o"
  "CMakeFiles/traj_geo.dir/geo.cpp.o.d"
  "libtraj_geo.a"
  "libtraj_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
