# Empty dependencies file for traj_common.
# This may be replaced when dependencies are built.
