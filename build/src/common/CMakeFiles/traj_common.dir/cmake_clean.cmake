file(REMOVE_RECURSE
  "CMakeFiles/traj_common.dir/cli.cpp.o"
  "CMakeFiles/traj_common.dir/cli.cpp.o.d"
  "CMakeFiles/traj_common.dir/metrics.cpp.o"
  "CMakeFiles/traj_common.dir/metrics.cpp.o.d"
  "CMakeFiles/traj_common.dir/rng.cpp.o"
  "CMakeFiles/traj_common.dir/rng.cpp.o.d"
  "CMakeFiles/traj_common.dir/stats.cpp.o"
  "CMakeFiles/traj_common.dir/stats.cpp.o.d"
  "CMakeFiles/traj_common.dir/table.cpp.o"
  "CMakeFiles/traj_common.dir/table.cpp.o.d"
  "libtraj_common.a"
  "libtraj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
