file(REMOVE_RECURSE
  "libtraj_common.a"
)
