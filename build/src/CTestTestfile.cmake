# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geo")
subdirs("traj")
subdirs("dtw")
subdirs("nn")
subdirs("gbt")
subdirs("map")
subdirs("sim")
subdirs("attack")
subdirs("baseline")
subdirs("wifi")
subdirs("core")
