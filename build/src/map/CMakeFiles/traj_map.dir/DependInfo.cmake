
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/map/city.cpp" "src/map/CMakeFiles/traj_map.dir/city.cpp.o" "gcc" "src/map/CMakeFiles/traj_map.dir/city.cpp.o.d"
  "/root/repo/src/map/matcher.cpp" "src/map/CMakeFiles/traj_map.dir/matcher.cpp.o" "gcc" "src/map/CMakeFiles/traj_map.dir/matcher.cpp.o.d"
  "/root/repo/src/map/nav.cpp" "src/map/CMakeFiles/traj_map.dir/nav.cpp.o" "gcc" "src/map/CMakeFiles/traj_map.dir/nav.cpp.o.d"
  "/root/repo/src/map/roadnet.cpp" "src/map/CMakeFiles/traj_map.dir/roadnet.cpp.o" "gcc" "src/map/CMakeFiles/traj_map.dir/roadnet.cpp.o.d"
  "/root/repo/src/map/route.cpp" "src/map/CMakeFiles/traj_map.dir/route.cpp.o" "gcc" "src/map/CMakeFiles/traj_map.dir/route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/traj_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
