file(REMOVE_RECURSE
  "CMakeFiles/traj_map.dir/city.cpp.o"
  "CMakeFiles/traj_map.dir/city.cpp.o.d"
  "CMakeFiles/traj_map.dir/matcher.cpp.o"
  "CMakeFiles/traj_map.dir/matcher.cpp.o.d"
  "CMakeFiles/traj_map.dir/nav.cpp.o"
  "CMakeFiles/traj_map.dir/nav.cpp.o.d"
  "CMakeFiles/traj_map.dir/roadnet.cpp.o"
  "CMakeFiles/traj_map.dir/roadnet.cpp.o.d"
  "CMakeFiles/traj_map.dir/route.cpp.o"
  "CMakeFiles/traj_map.dir/route.cpp.o.d"
  "libtraj_map.a"
  "libtraj_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
