# Empty dependencies file for traj_map.
# This may be replaced when dependencies are built.
