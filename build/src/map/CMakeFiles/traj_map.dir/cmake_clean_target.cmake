file(REMOVE_RECURSE
  "libtraj_map.a"
)
