file(REMOVE_RECURSE
  "libtraj_core.a"
)
