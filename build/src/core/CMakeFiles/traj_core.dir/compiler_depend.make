# Empty compiler generated dependencies file for traj_core.
# This may be replaced when dependencies are built.
