file(REMOVE_RECURSE
  "CMakeFiles/traj_core.dir/motion_pipeline.cpp.o"
  "CMakeFiles/traj_core.dir/motion_pipeline.cpp.o.d"
  "CMakeFiles/traj_core.dir/rssi_pipeline.cpp.o"
  "CMakeFiles/traj_core.dir/rssi_pipeline.cpp.o.d"
  "CMakeFiles/traj_core.dir/scenario.cpp.o"
  "CMakeFiles/traj_core.dir/scenario.cpp.o.d"
  "libtraj_core.a"
  "libtraj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
