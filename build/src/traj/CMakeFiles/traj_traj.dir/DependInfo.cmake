
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/features.cpp" "src/traj/CMakeFiles/traj_traj.dir/features.cpp.o" "gcc" "src/traj/CMakeFiles/traj_traj.dir/features.cpp.o.d"
  "/root/repo/src/traj/io.cpp" "src/traj/CMakeFiles/traj_traj.dir/io.cpp.o" "gcc" "src/traj/CMakeFiles/traj_traj.dir/io.cpp.o.d"
  "/root/repo/src/traj/preprocess.cpp" "src/traj/CMakeFiles/traj_traj.dir/preprocess.cpp.o" "gcc" "src/traj/CMakeFiles/traj_traj.dir/preprocess.cpp.o.d"
  "/root/repo/src/traj/trajectory.cpp" "src/traj/CMakeFiles/traj_traj.dir/trajectory.cpp.o" "gcc" "src/traj/CMakeFiles/traj_traj.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
