# Empty compiler generated dependencies file for traj_traj.
# This may be replaced when dependencies are built.
