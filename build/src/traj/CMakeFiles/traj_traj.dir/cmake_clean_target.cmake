file(REMOVE_RECURSE
  "libtraj_traj.a"
)
