file(REMOVE_RECURSE
  "CMakeFiles/traj_traj.dir/features.cpp.o"
  "CMakeFiles/traj_traj.dir/features.cpp.o.d"
  "CMakeFiles/traj_traj.dir/io.cpp.o"
  "CMakeFiles/traj_traj.dir/io.cpp.o.d"
  "CMakeFiles/traj_traj.dir/preprocess.cpp.o"
  "CMakeFiles/traj_traj.dir/preprocess.cpp.o.d"
  "CMakeFiles/traj_traj.dir/trajectory.cpp.o"
  "CMakeFiles/traj_traj.dir/trajectory.cpp.o.d"
  "libtraj_traj.a"
  "libtraj_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
