
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/traj_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/traj_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/classifier.cpp" "src/nn/CMakeFiles/traj_nn.dir/classifier.cpp.o" "gcc" "src/nn/CMakeFiles/traj_nn.dir/classifier.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/traj_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/traj_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/gru.cpp" "src/nn/CMakeFiles/traj_nn.dir/gru.cpp.o" "gcc" "src/nn/CMakeFiles/traj_nn.dir/gru.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/traj_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/traj_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/traj_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/traj_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/traj_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/traj_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/traj_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
