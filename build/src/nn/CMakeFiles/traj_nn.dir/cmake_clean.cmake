file(REMOVE_RECURSE
  "CMakeFiles/traj_nn.dir/adam.cpp.o"
  "CMakeFiles/traj_nn.dir/adam.cpp.o.d"
  "CMakeFiles/traj_nn.dir/classifier.cpp.o"
  "CMakeFiles/traj_nn.dir/classifier.cpp.o.d"
  "CMakeFiles/traj_nn.dir/dense.cpp.o"
  "CMakeFiles/traj_nn.dir/dense.cpp.o.d"
  "CMakeFiles/traj_nn.dir/gru.cpp.o"
  "CMakeFiles/traj_nn.dir/gru.cpp.o.d"
  "CMakeFiles/traj_nn.dir/lstm.cpp.o"
  "CMakeFiles/traj_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/traj_nn.dir/matrix.cpp.o"
  "CMakeFiles/traj_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/traj_nn.dir/serialize.cpp.o"
  "CMakeFiles/traj_nn.dir/serialize.cpp.o.d"
  "libtraj_nn.a"
  "libtraj_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
