# Empty compiler generated dependencies file for traj_nn.
# This may be replaced when dependencies are built.
