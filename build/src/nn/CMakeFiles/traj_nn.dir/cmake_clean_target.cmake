file(REMOVE_RECURSE
  "libtraj_nn.a"
)
