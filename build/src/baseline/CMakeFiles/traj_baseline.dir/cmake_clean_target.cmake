file(REMOVE_RECURSE
  "libtraj_baseline.a"
)
