file(REMOVE_RECURSE
  "CMakeFiles/traj_baseline.dir/accel_check.cpp.o"
  "CMakeFiles/traj_baseline.dir/accel_check.cpp.o.d"
  "CMakeFiles/traj_baseline.dir/replay_check.cpp.o"
  "CMakeFiles/traj_baseline.dir/replay_check.cpp.o.d"
  "CMakeFiles/traj_baseline.dir/rssi_similarity.cpp.o"
  "CMakeFiles/traj_baseline.dir/rssi_similarity.cpp.o.d"
  "CMakeFiles/traj_baseline.dir/rule_based.cpp.o"
  "CMakeFiles/traj_baseline.dir/rule_based.cpp.o.d"
  "libtraj_baseline.a"
  "libtraj_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
