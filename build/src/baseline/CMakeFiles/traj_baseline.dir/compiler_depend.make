# Empty compiler generated dependencies file for traj_baseline.
# This may be replaced when dependencies are built.
