
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/accel_check.cpp" "src/baseline/CMakeFiles/traj_baseline.dir/accel_check.cpp.o" "gcc" "src/baseline/CMakeFiles/traj_baseline.dir/accel_check.cpp.o.d"
  "/root/repo/src/baseline/replay_check.cpp" "src/baseline/CMakeFiles/traj_baseline.dir/replay_check.cpp.o" "gcc" "src/baseline/CMakeFiles/traj_baseline.dir/replay_check.cpp.o.d"
  "/root/repo/src/baseline/rssi_similarity.cpp" "src/baseline/CMakeFiles/traj_baseline.dir/rssi_similarity.cpp.o" "gcc" "src/baseline/CMakeFiles/traj_baseline.dir/rssi_similarity.cpp.o.d"
  "/root/repo/src/baseline/rule_based.cpp" "src/baseline/CMakeFiles/traj_baseline.dir/rule_based.cpp.o" "gcc" "src/baseline/CMakeFiles/traj_baseline.dir/rule_based.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wifi/CMakeFiles/traj_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/traj_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/traj_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gbt/CMakeFiles/traj_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
