file(REMOVE_RECURSE
  "libtraj_wifi.a"
)
