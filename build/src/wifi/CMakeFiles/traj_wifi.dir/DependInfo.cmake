
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/confidence.cpp" "src/wifi/CMakeFiles/traj_wifi.dir/confidence.cpp.o" "gcc" "src/wifi/CMakeFiles/traj_wifi.dir/confidence.cpp.o.d"
  "/root/repo/src/wifi/detector.cpp" "src/wifi/CMakeFiles/traj_wifi.dir/detector.cpp.o" "gcc" "src/wifi/CMakeFiles/traj_wifi.dir/detector.cpp.o.d"
  "/root/repo/src/wifi/detector_io.cpp" "src/wifi/CMakeFiles/traj_wifi.dir/detector_io.cpp.o" "gcc" "src/wifi/CMakeFiles/traj_wifi.dir/detector_io.cpp.o.d"
  "/root/repo/src/wifi/features.cpp" "src/wifi/CMakeFiles/traj_wifi.dir/features.cpp.o" "gcc" "src/wifi/CMakeFiles/traj_wifi.dir/features.cpp.o.d"
  "/root/repo/src/wifi/refindex.cpp" "src/wifi/CMakeFiles/traj_wifi.dir/refindex.cpp.o" "gcc" "src/wifi/CMakeFiles/traj_wifi.dir/refindex.cpp.o.d"
  "/root/repo/src/wifi/rpd.cpp" "src/wifi/CMakeFiles/traj_wifi.dir/rpd.cpp.o" "gcc" "src/wifi/CMakeFiles/traj_wifi.dir/rpd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gbt/CMakeFiles/traj_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
