file(REMOVE_RECURSE
  "CMakeFiles/traj_wifi.dir/confidence.cpp.o"
  "CMakeFiles/traj_wifi.dir/confidence.cpp.o.d"
  "CMakeFiles/traj_wifi.dir/detector.cpp.o"
  "CMakeFiles/traj_wifi.dir/detector.cpp.o.d"
  "CMakeFiles/traj_wifi.dir/detector_io.cpp.o"
  "CMakeFiles/traj_wifi.dir/detector_io.cpp.o.d"
  "CMakeFiles/traj_wifi.dir/features.cpp.o"
  "CMakeFiles/traj_wifi.dir/features.cpp.o.d"
  "CMakeFiles/traj_wifi.dir/refindex.cpp.o"
  "CMakeFiles/traj_wifi.dir/refindex.cpp.o.d"
  "CMakeFiles/traj_wifi.dir/rpd.cpp.o"
  "CMakeFiles/traj_wifi.dir/rpd.cpp.o.d"
  "libtraj_wifi.a"
  "libtraj_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
