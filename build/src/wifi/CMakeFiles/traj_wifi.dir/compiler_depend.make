# Empty compiler generated dependencies file for traj_wifi.
# This may be replaced when dependencies are built.
