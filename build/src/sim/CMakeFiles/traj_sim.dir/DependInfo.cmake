
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accelerometer.cpp" "src/sim/CMakeFiles/traj_sim.dir/accelerometer.cpp.o" "gcc" "src/sim/CMakeFiles/traj_sim.dir/accelerometer.cpp.o.d"
  "/root/repo/src/sim/dataset.cpp" "src/sim/CMakeFiles/traj_sim.dir/dataset.cpp.o" "gcc" "src/sim/CMakeFiles/traj_sim.dir/dataset.cpp.o.d"
  "/root/repo/src/sim/gps.cpp" "src/sim/CMakeFiles/traj_sim.dir/gps.cpp.o" "gcc" "src/sim/CMakeFiles/traj_sim.dir/gps.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/sim/CMakeFiles/traj_sim.dir/mobility.cpp.o" "gcc" "src/sim/CMakeFiles/traj_sim.dir/mobility.cpp.o.d"
  "/root/repo/src/sim/wifi_world.cpp" "src/sim/CMakeFiles/traj_sim.dir/wifi_world.cpp.o" "gcc" "src/sim/CMakeFiles/traj_sim.dir/wifi_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/map/CMakeFiles/traj_map.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/traj_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
