file(REMOVE_RECURSE
  "CMakeFiles/traj_sim.dir/accelerometer.cpp.o"
  "CMakeFiles/traj_sim.dir/accelerometer.cpp.o.d"
  "CMakeFiles/traj_sim.dir/dataset.cpp.o"
  "CMakeFiles/traj_sim.dir/dataset.cpp.o.d"
  "CMakeFiles/traj_sim.dir/gps.cpp.o"
  "CMakeFiles/traj_sim.dir/gps.cpp.o.d"
  "CMakeFiles/traj_sim.dir/mobility.cpp.o"
  "CMakeFiles/traj_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/traj_sim.dir/wifi_world.cpp.o"
  "CMakeFiles/traj_sim.dir/wifi_world.cpp.o.d"
  "libtraj_sim.a"
  "libtraj_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
