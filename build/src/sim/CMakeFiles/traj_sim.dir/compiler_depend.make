# Empty compiler generated dependencies file for traj_sim.
# This may be replaced when dependencies are built.
