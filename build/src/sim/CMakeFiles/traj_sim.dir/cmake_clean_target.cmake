file(REMOVE_RECURSE
  "libtraj_sim.a"
)
