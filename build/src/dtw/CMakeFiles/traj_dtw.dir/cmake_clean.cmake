file(REMOVE_RECURSE
  "CMakeFiles/traj_dtw.dir/dtw.cpp.o"
  "CMakeFiles/traj_dtw.dir/dtw.cpp.o.d"
  "CMakeFiles/traj_dtw.dir/soft_dtw.cpp.o"
  "CMakeFiles/traj_dtw.dir/soft_dtw.cpp.o.d"
  "libtraj_dtw.a"
  "libtraj_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
