file(REMOVE_RECURSE
  "libtraj_dtw.a"
)
