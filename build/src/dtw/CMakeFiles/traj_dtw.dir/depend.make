# Empty dependencies file for traj_dtw.
# This may be replaced when dependencies are built.
