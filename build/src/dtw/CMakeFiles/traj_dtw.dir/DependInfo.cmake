
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtw/dtw.cpp" "src/dtw/CMakeFiles/traj_dtw.dir/dtw.cpp.o" "gcc" "src/dtw/CMakeFiles/traj_dtw.dir/dtw.cpp.o.d"
  "/root/repo/src/dtw/soft_dtw.cpp" "src/dtw/CMakeFiles/traj_dtw.dir/soft_dtw.cpp.o" "gcc" "src/dtw/CMakeFiles/traj_dtw.dir/soft_dtw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
