# Empty dependencies file for bench_indoor_extension.
# This may be replaced when dependencies are built.
