file(REMOVE_RECURSE
  "CMakeFiles/bench_indoor_extension.dir/bench_indoor_extension.cpp.o"
  "CMakeFiles/bench_indoor_extension.dir/bench_indoor_extension.cpp.o.d"
  "bench_indoor_extension"
  "bench_indoor_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indoor_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
