file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_baselines.dir/bench_attack_baselines.cpp.o"
  "CMakeFiles/bench_attack_baselines.dir/bench_attack_baselines.cpp.o.d"
  "bench_attack_baselines"
  "bench_attack_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
