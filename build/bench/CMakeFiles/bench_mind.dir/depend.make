# Empty dependencies file for bench_mind.
# This may be replaced when dependencies are built.
