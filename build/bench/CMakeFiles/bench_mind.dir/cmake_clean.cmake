file(REMOVE_RECURSE
  "CMakeFiles/bench_mind.dir/bench_mind.cpp.o"
  "CMakeFiles/bench_mind.dir/bench_mind.cpp.o.d"
  "bench_mind"
  "bench_mind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
