file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rpd.dir/bench_ablation_rpd.cpp.o"
  "CMakeFiles/bench_ablation_rpd.dir/bench_ablation_rpd.cpp.o.d"
  "bench_ablation_rpd"
  "bench_ablation_rpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
