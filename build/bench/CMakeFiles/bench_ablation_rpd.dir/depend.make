# Empty dependencies file for bench_ablation_rpd.
# This may be replaced when dependencies are built.
