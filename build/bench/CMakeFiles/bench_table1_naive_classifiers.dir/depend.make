# Empty dependencies file for bench_table1_naive_classifiers.
# This may be replaced when dependencies are built.
