file(REMOVE_RECURSE
  "CMakeFiles/bench_defense_baselines.dir/bench_defense_baselines.cpp.o"
  "CMakeFiles/bench_defense_baselines.dir/bench_defense_baselines.cpp.o.d"
  "bench_defense_baselines"
  "bench_defense_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defense_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
