# Empty compiler generated dependencies file for bench_defense_baselines.
# This may be replaced when dependencies are built.
