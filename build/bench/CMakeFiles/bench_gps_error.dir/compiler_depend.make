# Empty compiler generated dependencies file for bench_gps_error.
# This may be replaced when dependencies are built.
