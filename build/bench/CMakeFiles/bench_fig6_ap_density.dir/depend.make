# Empty dependencies file for bench_fig6_ap_density.
# This may be replaced when dependencies are built.
