file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ap_density.dir/bench_fig6_ap_density.cpp.o"
  "CMakeFiles/bench_fig6_ap_density.dir/bench_fig6_ap_density.cpp.o.d"
  "bench_fig6_ap_density"
  "bench_fig6_ap_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ap_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
