
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_attack.cpp" "bench/CMakeFiles/bench_ablation_attack.dir/bench_ablation_attack.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_attack.dir/bench_ablation_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/traj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/traj_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/traj_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/traj_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/traj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/traj_map.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/traj_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gbt/CMakeFiles/traj_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/traj_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/traj_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/traj_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/traj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
