# Empty dependencies file for bench_fig3_iterations.
# This may be replaced when dependencies are built.
