# Empty dependencies file for bench_table2_adversarial.
# This may be replaced when dependencies are built.
