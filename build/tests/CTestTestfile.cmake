# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/traj_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_test[1]_include.cmake")
include("/root/repo/build/tests/dtw_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/gbt_test[1]_include.cmake")
include("/root/repo/build/tests/map_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/wifi_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
