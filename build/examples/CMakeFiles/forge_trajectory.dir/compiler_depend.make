# Empty compiler generated dependencies file for forge_trajectory.
# This may be replaced when dependencies are built.
