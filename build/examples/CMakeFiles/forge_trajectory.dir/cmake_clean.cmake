file(REMOVE_RECURSE
  "CMakeFiles/forge_trajectory.dir/forge_trajectory.cpp.o"
  "CMakeFiles/forge_trajectory.dir/forge_trajectory.cpp.o.d"
  "forge_trajectory"
  "forge_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forge_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
