# Empty dependencies file for car_hailing_audit.
# This may be replaced when dependencies are built.
