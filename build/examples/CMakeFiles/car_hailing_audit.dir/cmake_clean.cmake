file(REMOVE_RECURSE
  "CMakeFiles/car_hailing_audit.dir/car_hailing_audit.cpp.o"
  "CMakeFiles/car_hailing_audit.dir/car_hailing_audit.cpp.o.d"
  "car_hailing_audit"
  "car_hailing_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_hailing_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
