# Empty dependencies file for deploy_detector.
# This may be replaced when dependencies are built.
