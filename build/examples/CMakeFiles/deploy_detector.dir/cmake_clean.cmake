file(REMOVE_RECURSE
  "CMakeFiles/deploy_detector.dir/deploy_detector.cpp.o"
  "CMakeFiles/deploy_detector.dir/deploy_detector.cpp.o.d"
  "deploy_detector"
  "deploy_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
