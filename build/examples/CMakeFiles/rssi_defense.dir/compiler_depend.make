# Empty compiler generated dependencies file for rssi_defense.
# This may be replaced when dependencies are built.
