file(REMOVE_RECURSE
  "CMakeFiles/rssi_defense.dir/rssi_defense.cpp.o"
  "CMakeFiles/rssi_defense.dir/rssi_defense.cpp.o.d"
  "rssi_defense"
  "rssi_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rssi_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
