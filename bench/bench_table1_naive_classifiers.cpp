// Table I — Classification performance against naive attacks.
//
// Paper protocol (Sec. IV-A2): train the four detection models on real
// trajectories vs naive replay/navigation fakes, report accuracy, precision,
// recall and F1 on a held-out test set.  Paper numbers (at 20k/10k train,
// 400-point trajectories): all four models ~0.95-0.99 on every metric.
//
// Scaled-down defaults for a single-core box; rescale with
//   --train_real=20000 --train_fake=10000 --points=400 --epochs=100 --hidden=256
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::string mode_name_arg = flags.get("mode", "walking");
  Mode mode = Mode::kWalking;
  if (mode_name_arg == "cycling") mode = Mode::kCycling;
  if (mode_name_arg == "driving") mode = Mode::kDriving;

  core::Scenario scenario(core::ScenarioConfig::for_mode(mode));

  core::MotionDatasetConfig dcfg;
  dcfg.train_real = flags.get_int("train_real", 500);
  dcfg.train_fake = flags.get_int("train_fake", 300);
  dcfg.test_real = flags.get_int("test_real", 150);
  dcfg.test_fake = flags.get_int("test_fake", 150);
  dcfg.points = flags.get_int("points", 64);

  core::MotionModelConfig mcfg;
  mcfg.hidden = flags.get_int("hidden", 32);
  mcfg.epochs = flags.get_int("epochs", 45);
  mcfg.verbose = flags.get_bool("verbose", false);

  std::printf("== Table I: classification performance against naive attacks ==\n");
  std::printf("mode=%s train=%zu+%zu test=%zu+%zu points=%zu hidden=%zu epochs=%zu\n\n",
              mode_name(mode), dcfg.train_real, dcfg.train_fake, dcfg.test_real,
              dcfg.test_fake, dcfg.points, mcfg.hidden, mcfg.epochs);

  std::printf("building dataset...\n");
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  std::printf("training C, LSTM-1, LSTM-2, XGBoost...\n");
  const core::MotionModels models(dataset, mcfg);
  const auto evals = core::evaluate_models(models, dataset.test);

  TextTable table({"Classifiers", "Accuracy", "Precision", "Recall", "F1-score"});
  for (const auto& e : evals) {
    table.add_row({e.name, TextTable::num(e.confusion.accuracy()),
                   TextTable::num(e.confusion.precision()),
                   TextTable::num(e.confusion.recall()),
                   TextTable::num(e.confusion.f1())});
  }
  table.print(std::cout);
  std::printf("\npaper (Table I): C 0.9886 / XGBoost 0.9542 / LSTM-1 0.9874 / "
              "LSTM-2 0.9909 accuracy\n");
  return 0;
}
