// Online-model hot-swap benchmark: staleness vs throughput under continuous
// crowd ingestion, and the price of an epoch flip.
//
//   bench_hotswap --history=2400 --area=60 --epochs=4 --append=120
//                 --requests=64 --threads=1
//
// The serving loop the paper's deployment shape implies: crowdsourced scans
// stream into a durable CrowdStore while a VerifierService answers uploads,
// and every so often the accumulated points are published as a new model
// epoch (serve/service.hpp publish_epoch) — affected-key invalidation, LRU
// carry-forward, RCU flip, artifact commit.  Per epoch this bench measures:
//
//   * staleness: wall time of publish_epoch — the window between "the data is
//     durable" and "the model serves it" (a stop-the-world rebuild would
//     stretch that window by the full RPD warm-up below);
//   * zero drops: a client thread hammers verify_now throughout the flip;
//     every response must come back kOk, served by whichever epoch it
//     snapshotted;
//   * correctness: the post-flip verdict checksum (FNV-1a over canonical
//     payloads) must equal a stop-the-world oracle — a detector rebuilt from
//     scratch over the full store under the same pinned grid bounds;
//   * refresh cost: bringing the full RPD table back online.  The service
//     keeps every reference point's counting statistics resident; after the
//     flip, the carried-forward cache only rebuilds the cells the appended
//     batch invalidated, while the oracle's cold cache rebuilds all N.  Both
//     are measured as one point_stats sweep over the whole index — the
//     incremental-RPD speedup is their ratio.
//
// Exit code 0 iff every epoch's checksum matched and no in-flight request was
// dropped; speedups are reported, not asserted (wall-clock on a loaded box is
// noise, identity is the contract).  BENCH_hotswap.json records everything,
// written atomically like every bench artifact.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/durable/artifact_store.hpp"
#include "common/durable/durable_file.hpp"
#include "core/trajkit.hpp"
#include "serve/service.hpp"
#include "support/fixtures.hpp"
#include "wifi/crowd_store.hpp"

using namespace trajkit;
namespace ts = trajkit::test_support;

namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void remove_store(const std::string& dir) {
  for (const char* name : {"/crowd.snapshot", "/crowd.snapshot.tmp",
                           "/crowd.journal", "/crowd.journal.tmp"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
}

void remove_artifacts(const std::string& dir) {
  for (std::uint64_t epoch = 1; epoch <= 256; ++epoch) {
    std::remove((dir + "/detector." + std::to_string(epoch)).c_str());
  }
  std::remove((dir + "/CURRENT").c_str());
  std::remove((dir + "/CURRENT.tmp").c_str());
  ::rmdir(dir.c_str());
}

struct EpochResult {
  std::uint64_t epoch = 0;
  std::size_t appended = 0;
  double publish_ms = 0.0;     ///< staleness window: append-durable -> serving
  std::size_t inflight_ok = 0; ///< verify_now responses during the flip
  std::size_t inflight_total = 0;
  double rpd_inc_s = 0.0;      ///< RPD table sweep on the carried cache
  double rpd_full_s = 0.0;     ///< same sweep on the oracle's cold cache
  double serve_s = 0.0;        ///< steady-state probe pass after the refresh
  std::uint64_t checksum = 0;
  bool identical = false;
};

/// One pass over every reference point's counting statistics: cells already
/// cached are a lookup, everything else is built.  Returns an accumulator so
/// the sweep cannot be optimised away.
double sweep_rpd_table(const wifi::RssiDetector& detector) {
  const auto& rpd = detector.confidence().rpd();
  double sink = 0.0;
  for (std::size_t h = 0; h < detector.index().size(); ++h) {
    sink += rpd.theta2_from(*rpd.point_stats(h));
  }
  return sink;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);  // wires --threads into set_global_threads
  const auto history = static_cast<int>(flags.get_int("history", 6000));
  const double area_m = flags.get_double("area", 60.0);
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 4));
  const auto append_per_epoch =
      static_cast<std::size_t>(flags.get_int("append", 120));
  const auto request_count =
      static_cast<std::size_t>(flags.get_int("requests", 64));
  const std::string store_dir = "bench_hotswap_store";
  const std::string artifact_dir = "bench_hotswap_artifacts";

  std::printf("== Online hot-swap: incremental epochs vs stop-the-world ==\n");
  std::printf("%d seed points over %.0fm x %.0fm, %zu epochs x %zu appends, "
              "%zu probes per boundary\n\n",
              history, area_m, area_m, epochs, append_per_epoch, request_count);

  ts::LinearWorldConfig world_cfg;
  world_cfg.area_m = area_m;
  world_cfg.history_points = history;
  ts::LinearFieldWorld world(world_cfg);
  const auto& oracle_like = world.detector();

  // Seed the durable store with the trained world's reference set, in index
  // order, so the assembled serving detector matches the fixture exactly.
  remove_store(store_dir);
  remove_artifacts(artifact_dir);
  auto store = wifi::CrowdStore::open(store_dir, /*sync_each_append=*/false);
  if (!store) {
    std::fprintf(stderr, "store: %s\n", store.error().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < oracle_like.index().size(); ++i) {
    auto seq = store.value()->append(oracle_like.index()[i]);
    if (!seq) {
      std::fprintf(stderr, "append: %s\n", seq.error().c_str());
      return 1;
    }
  }

  auto artifacts = durable::ArtifactStore::open_dir(artifact_dir);
  if (!artifacts) {
    std::fprintf(stderr, "artifacts: %s\n", artifacts.error().c_str());
    return 1;
  }

  serve::VerifierServiceConfig config;
  config.auto_start = false;  // sync verify paths; no dispatcher needed
  serve::VerifierService service(
      wifi::RssiDetector::assemble(
          store.value()->points(), oracle_like.config(), oracle_like.classifier(),
          oracle_like.trained_points()),
      config);
  const BoundingBox bounds = service.detector().index().bounds();

  std::vector<serve::VerificationRequest> requests;
  {
    const auto probes = world.probe_mix(request_count);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      requests.push_back({i + 1, probes[i], 0});
    }
  }
  // Steady state: the serving process keeps the whole RPD table resident
  // (probe warm-up plus one full sweep), so each epoch's refresh cost is
  // exactly the invalidated cells.
  service.verify_batch(requests);
  sweep_rpd_table(service.detector());

  const double lo = world_cfg.margin_m;
  const double hi = world_cfg.area_m - world_cfg.margin_m;
  Rng& rng = world.rng();
  std::vector<EpochResult> results;
  bool all_identical = true;
  bool zero_drops = true;

  const double patch_m = flags.get_double("patch", 6.0);
  for (std::size_t round = 1; round <= epochs; ++round) {
    // Continuous ingestion: the next batch of crowdsourced scans lands in the
    // WAL before the epoch that folds them in is published.  Each epoch's
    // batch is localised to one small patch — the realistic shape (a venue
    // getting fresh scans), and the one where targeted invalidation matters:
    // uniform appends would blanket every counting circle and force a
    // near-total cache rebuild no matter how the invalidation is scoped.
    const Enu patch{rng.uniform(lo, hi - patch_m), rng.uniform(lo, hi - patch_m)};
    for (std::size_t i = 0; i < append_per_epoch; ++i) {
      const Enu p{patch.east + rng.uniform(0.0, patch_m),
                  patch.north + rng.uniform(0.0, patch_m)};
      auto seq = store.value()->append(
          {p,
           {{1, ts::LinearFieldWorld::field_rssi(p)}},
           static_cast<std::uint32_t>(100000 + round * 1000 + i / 5)});
      if (!seq) {
        std::fprintf(stderr, "append: %s\n", seq.error().c_str());
        return 1;
      }
    }

    EpochResult r;
    r.appended = append_per_epoch;

    // In-flight traffic across the flip: requests that snapshot the old epoch
    // finish on it, new ones see the replacement — nothing may drop.
    std::atomic<bool> publishing{true};
    std::atomic<std::size_t> inflight_ok{0};
    std::atomic<std::size_t> inflight_total{0};
    std::thread client([&] {
      std::size_t i = 0;
      while (publishing.load(std::memory_order_relaxed)) {
        const auto response =
            service.verify_now(requests[i++ % requests.size()].upload);
        inflight_total.fetch_add(1, std::memory_order_relaxed);
        if (response.outcome == serve::Outcome::kOk) {
          inflight_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    const double t0 = now_s();
    auto epoch = service.publish_epoch(*store.value(), artifacts.value().get());
    r.publish_ms = (now_s() - t0) * 1e3;
    publishing.store(false, std::memory_order_relaxed);
    client.join();
    if (!epoch) {
      std::fprintf(stderr, "publish: %s\n", epoch.error().c_str());
      return 1;
    }
    r.epoch = epoch.value();
    r.inflight_ok = inflight_ok.load();
    r.inflight_total = inflight_total.load();
    zero_drops = zero_drops && r.inflight_ok == r.inflight_total;

    // Incremental refresh: the carried-forward cache already holds every
    // cell the appended batch could not have touched, so the sweep rebuilds
    // only the invalidated ones.
    double t1 = now_s();
    sweep_rpd_table(service.detector());
    r.rpd_inc_s = now_s() - t1;

    // Stop-the-world oracle: rebuild from scratch under the same pinned
    // bounds with a cold cache — both the correctness reference and the cost
    // of not having the incremental path (its sweep rebuilds all N cells).
    auto oracle = wifi::RssiDetector::assemble(
        store.value()->points(), oracle_like.config(), oracle_like.classifier(),
        oracle_like.trained_points(), bounds);
    oracle->set_rpd_cache(
        std::make_shared<serve::ShardedRpdLruCache>(config.cache));
    t1 = now_s();
    sweep_rpd_table(*oracle);
    r.rpd_full_s = now_s() - t1;

    // Steady-state serving after the refresh, and the checksum comparison —
    // both caches are fully resident now, so any difference is a correctness
    // bug, not a warm-up artefact.
    t1 = now_s();
    const auto responses = service.verify_batch(requests);
    r.serve_s = now_s() - t1;
    std::uint64_t oracle_checksum = 0;
    for (const auto& request : requests) {
      oracle_checksum ^= fnv1a(oracle->analyze(request.upload).canonical_string());
    }

    for (const auto& response : responses) {
      if (response.outcome != serve::Outcome::kOk) {
        std::fprintf(stderr, "epoch %llu: dropped probe (%s)\n",
                     static_cast<unsigned long long>(r.epoch),
                     response.error.c_str());
        zero_drops = false;
      }
      r.checksum ^= fnv1a(response.report.canonical_string());
    }
    r.identical = r.checksum == oracle_checksum;
    all_identical = all_identical && r.identical;
    results.push_back(r);
  }

  TextTable table({"epoch", "appended", "publish ms", "inflight ok",
                   "rpd inc s", "rpd full s", "refresh speedup", "verdicts/s",
                   "identical"});
  for (const auto& r : results) {
    table.add_row({std::to_string(r.epoch), std::to_string(r.appended),
                   TextTable::num(r.publish_ms, 2),
                   std::to_string(r.inflight_ok) + "/" +
                       std::to_string(r.inflight_total),
                   TextTable::num(r.rpd_inc_s, 4),
                   TextTable::num(r.rpd_full_s, 4),
                   TextTable::num(r.rpd_full_s / r.rpd_inc_s, 2) + "x",
                   TextTable::num(static_cast<double>(request_count) / r.serve_s, 1),
                   r.identical ? "yes" : "NO"});
  }
  table.print(std::cout);
  double inc_total = 0.0;
  double full_total = 0.0;
  for (const auto& r : results) {
    inc_total += r.rpd_inc_s;
    full_total += r.rpd_full_s;
  }
  const double mean_speedup = inc_total > 0.0 ? full_total / inc_total : 0.0;
  std::printf("\nmean refresh speedup: %.2fx (incremental %.4fs vs full %.4fs "
              "across %zu epochs)\n",
              mean_speedup, inc_total, full_total, results.size());
  std::printf("verdicts: %s\n",
              all_identical
                  ? "OK (every epoch checksum-equal to the oracle rebuild)"
                  : "FAILED (a hot-swap changed a verdict!)");
  std::printf("in-flight: %s\n",
              zero_drops ? "OK (zero requests dropped across every flip)"
                         : "FAILED (a flip dropped a request!)");

  std::string json = "{\n  \"history\": " + std::to_string(history);
  json += ",\n  \"requests\": " + std::to_string(request_count);
  json += ",\n  \"epochs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"epoch\": %llu, \"appended\": %zu, "
                  "\"publish_ms\": %.3f, \"inflight_ok\": %zu, "
                  "\"inflight_total\": %zu, \"rpd_inc_s\": %.6f, "
                  "\"rpd_full_s\": %.6f, \"refresh_speedup\": %.3f, "
                  "\"serve_s\": %.6f, \"identical\": %s}",
                  i == 0 ? "" : ",", static_cast<unsigned long long>(r.epoch),
                  r.appended, r.publish_ms, r.inflight_ok, r.inflight_total,
                  r.rpd_inc_s, r.rpd_full_s, r.rpd_full_s / r.rpd_inc_s,
                  r.serve_s, r.identical ? "true" : "false");
    json += buf;
  }
  json += "\n  ],\n  \"mean_refresh_speedup\": ";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", mean_speedup);
    json += buf;
  }
  json += ",\n  \"identical\": ";
  json += all_identical ? "true" : "false";
  json += ",\n  \"zero_drops\": ";
  json += zero_drops ? "true" : "false";
  json += "\n}\n";
  if (durable::write_file_atomic("BENCH_hotswap.json", json)) {
    std::printf("wrote BENCH_hotswap.json\n");
  }

  return all_identical && zero_drops ? 0 : 1;
}
