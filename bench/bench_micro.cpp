// Micro-benchmarks (google-benchmark): the hot paths of the library.
//   * DTW (full and banded) at trajectory sizes used by the attack
//   * LSTM forward and forward+backward per sequence
//   * spatial-grid radius queries of the reference index
//   * RPD probe and full point-confidence computation
//   * booster training on Eq. 8-sized feature vectors
//   * A* vs Dijkstra on the synthetic city
#include <benchmark/benchmark.h>

#include "core/trajkit.hpp"

using namespace trajkit;

namespace {

std::vector<Enu> random_walk(Rng& rng, std::size_t n) {
  std::vector<Enu> pts = {{0, 0}};
  for (std::size_t i = 1; i < n; ++i) {
    pts.push_back({pts.back().east + rng.uniform(-2, 3),
                   pts.back().north + rng.uniform(-2, 2)});
  }
  return pts;
}

void BM_DtwFull(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_walk(rng, n);
  const auto b = random_walk(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw_distance(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DtwFull)->Arg(30)->Arg(100)->Arg(400)->Complexity(benchmark::oNSquared);

void BM_DtwBanded(benchmark::State& state) {
  Rng rng(2);
  const auto a = random_walk(rng, 400);
  const auto b = random_walk(rng, 400);
  const auto band = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw_banded(a, b, band).distance);
  }
}
BENCHMARK(BM_DtwBanded)->Arg(10)->Arg(50)->Arg(400);

void BM_DtwGradient(benchmark::State& state) {
  Rng rng(3);
  const auto a = random_walk(rng, 100);
  const auto b = random_walk(rng, 100);
  std::vector<Enu> grad(b.size());
  for (auto _ : state) {
    std::fill(grad.begin(), grad.end(), Enu{});
    benchmark::DoNotOptimize(dtw_gradient(a, b, grad));
  }
}
BENCHMARK(BM_DtwGradient);

void BM_LstmForward(benchmark::State& state) {
  nn::LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = static_cast<std::size_t>(state.range(0));
  nn::LstmClassifier model(cfg, 1);
  Rng rng(4);
  FeatureSequence x;
  x.steps = 100;
  x.dim = 2;
  x.values.resize(200);
  for (auto& v : x.values) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_proba(x));
  }
}
BENCHMARK(BM_LstmForward)->Arg(32)->Arg(64)->Arg(128);

void BM_LstmForwardBackward(benchmark::State& state) {
  nn::LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = static_cast<std::size_t>(state.range(0));
  nn::LstmClassifier model(cfg, 1);
  Rng rng(5);
  FeatureSequence x;
  x.steps = 100;
  x.dim = 2;
  x.values.resize(200);
  for (auto& v : x.values) v = rng.uniform(-1, 1);
  FeatureSequence dx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.loss_and_input_gradient(x, 1, &dx));
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(32)->Arg(64);

class WifiFixtureData {
 public:
  static const WifiFixtureData& get() {
    static WifiFixtureData data;
    return data;
  }
  std::unique_ptr<wifi::ReferenceIndex> index;
  std::unique_ptr<wifi::ConfidenceEstimator> estimator;
  wifi::WifiScan scan;

 private:
  WifiFixtureData() {
    Rng rng(6);
    std::vector<wifi::ReferencePoint> pts;
    for (int i = 0; i < 30000; ++i) {
      wifi::WifiScan s;
      for (int a = 0; a < 15; ++a) {
        s.push_back({static_cast<std::uint64_t>(rng.uniform_int(0, 400)),
                     static_cast<int>(rng.uniform_int(-80, -40))});
      }
      pts.push_back({{rng.uniform(0, 250), rng.uniform(0, 250)}, std::move(s)});
    }
    index = std::make_unique<wifi::ReferenceIndex>(std::move(pts));
    estimator = std::make_unique<wifi::ConfidenceEstimator>(*index);
    for (int a = 0; a < 10; ++a) {
      scan.push_back({static_cast<std::uint64_t>(a), -50 - a});
    }
  }
};

void BM_GridRadiusQuery(benchmark::State& state) {
  const auto& data = WifiFixtureData::get();
  Rng rng(7);
  const double radius = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const Enu p{rng.uniform(0, 250), rng.uniform(0, 250)};
    benchmark::DoNotOptimize(data.index->within(p, radius));
  }
}
BENCHMARK(BM_GridRadiusQuery)->Arg(1)->Arg(3)->Arg(10);

void BM_PointConfidence(benchmark::State& state) {
  const auto& data = WifiFixtureData::get();
  Rng rng(8);
  for (auto _ : state) {
    const Enu p{rng.uniform(0, 250), rng.uniform(0, 250)};
    benchmark::DoNotOptimize(data.estimator->point_confidence(p, data.scan));
  }
}
BENCHMARK(BM_PointConfidence);

void BM_BoosterTrain(benchmark::State& state) {
  Rng rng(9);
  const auto rows = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> x(rows, std::vector<double>(480));
  std::vector<int> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& v : x[r]) v = rng.uniform(0, 1);
    y[r] = x[r][3] > 0.5 ? 1 : 0;
  }
  gbt::GbtConfig cfg;
  cfg.num_trees = 20;
  for (auto _ : state) {
    gbt::GbtClassifier model(cfg);
    model.train(x, y);
    benchmark::DoNotOptimize(model.tree_count());
  }
}
BENCHMARK(BM_BoosterTrain)->Arg(500)->Unit(benchmark::kMillisecond);

class CityFixture {
 public:
  static const CityFixture& get() {
    static CityFixture f;
    return f;
  }
  map::RoadNetwork net;

 private:
  CityFixture() {
    Rng rng(10);
    net = map::make_city({.blocks_x = 20, .blocks_y = 20}, rng);
  }
};

void BM_Dijkstra(benchmark::State& state) {
  const auto& net = CityFixture::get().net;
  Rng rng(11);
  for (auto _ : state) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.node_count()) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.node_count()) - 1));
    benchmark::DoNotOptimize(map::shortest_path(net, a, b, Mode::kDriving));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_AStar(benchmark::State& state) {
  const auto& net = CityFixture::get().net;
  Rng rng(11);  // same seed: identical query sequence as BM_Dijkstra
  for (auto _ : state) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.node_count()) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.node_count()) - 1));
    benchmark::DoNotOptimize(map::astar_path(net, a, b, Mode::kDriving));
  }
}
BENCHMARK(BM_AStar);

void BM_MobilitySimulation(benchmark::State& state) {
  Rng rng(12);
  std::vector<Enu> route = {{0, 0}};
  for (int i = 1; i < 20; ++i) {
    route.push_back({route.back().east + 40.0, route.back().north + (i % 2) * 30.0});
  }
  const auto params = sim::MobilityParams::for_mode(Mode::kWalking);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_motion(route, params, 1.0, 100, rng));
  }
}
BENCHMARK(BM_MobilitySimulation);

}  // namespace

BENCHMARK_MAIN();
