// MinD experiment (Sec. IV-A3) — the lower bound of the distance between
// genuine traversals of the same route.
//
// Paper protocol: walk a 200 m route 50 times; the minimum pairwise
// (normalised) DTW distance is MinD.  Paper values: 1.2 (walking),
// 1.5 (cycling), 1.4 (driving) metres per step.
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto repetitions = static_cast<std::size_t>(flags.get_int("repetitions", 50));
  const double route_m = flags.get_double("route_m", 200.0);

  std::printf("== MinD experiment: same route traversed %zu times ==\n\n", repetitions);

  TextTable table({"Mode", "MinD (min)", "mean", "max", "paper MinD"});
  for (Mode mode : kAllModes) {
    core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
    // Point count spans the route at the mode's speed.
    const double speed = sim::MobilityParams::for_mode(mode).mean_speed_mps;
    const auto points = static_cast<std::size_t>(route_m / speed) + 10;

    const auto est = attack::estimate_mind(scenario.simulator(), mode, route_m,
                                           repetitions, points, 1.0, scenario.rng());
    table.add_row({mode_name(mode), TextTable::num(est.min_d, 2),
                   TextTable::num(est.mean_d, 2), TextTable::num(est.max_d, 2),
                   TextTable::num(attack::paper_mind(mode), 1)});
  }
  table.print(std::cout);
  std::printf("\npaper: MinD_1=1.2/m (walk), MinD_2=1.5/m (cycle), MinD_3=1.4/m "
              "(drive)\n");
  return 0;
}
