// MinD experiment (Sec. IV-A3) — the lower bound of the distance between
// genuine traversals of the same route.
//
// Paper protocol: walk a 200 m route 50 times; the minimum pairwise
// (normalised) DTW distance is MinD.  Paper values: 1.2 (walking),
// 1.5 (cycling), 1.4 (driving) metres per step.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto repetitions = static_cast<std::size_t>(flags.get_int("repetitions", 50));
  const double route_m = flags.get_double("route_m", 200.0);

  std::printf("== MinD experiment: same route traversed %zu times ==\n\n", repetitions);

  using clock = std::chrono::steady_clock;
  auto ms_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };

  TextTable table({"Mode", "MinD (min)", "mean", "max", "paper MinD", "full ms",
                   "fast ms"});
  for (Mode mode : kAllModes) {
    core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
    // Point count spans the route at the mode's speed.
    const double speed = sim::MobilityParams::for_mode(mode).mean_speed_mps;
    const auto points = static_cast<std::size_t>(route_m / speed) + 10;

    const auto runs = attack::mind_runs(scenario.simulator(), mode, route_m,
                                        repetitions, points, 1.0, scenario.rng());
    const auto t_full = clock::now();
    const auto est = attack::estimate_mind_over(runs);
    const double full_ms = ms_since(t_full);

    const auto t_fast = clock::now();
    const double fast_min = attack::estimate_mind_fast(runs);
    const double fast_ms = ms_since(t_fast);

    // The fast leg skips pairs only when they provably cannot lower the
    // minimum; any mismatch is a correctness bug, not noise.
    if (fast_min != est.min_d) {
      std::fprintf(stderr, "FATAL: fast MinD %.17g != full MinD %.17g (%s)\n",
                   fast_min, est.min_d, mode_name(mode));
      return 1;
    }

    table.add_row({mode_name(mode), TextTable::num(est.min_d, 2),
                   TextTable::num(est.mean_d, 2), TextTable::num(est.max_d, 2),
                   TextTable::num(attack::paper_mind(mode), 1),
                   TextTable::num(full_ms, 1), TextTable::num(fast_ms, 1)});
  }
  table.print(std::cout);
  std::printf("\npaper: MinD_1=1.2/m (walk), MinD_2=1.5/m (cycle), MinD_3=1.4/m "
              "(drive)\nfast leg: early-abandoning raw-DTW prefilter, "
              "bitwise-identical minimum\n");
  return 0;
}
