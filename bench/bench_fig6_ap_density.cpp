// Fig. 6 — Influence of the average k (AP density) on detection accuracy.
//
// Paper: k is varied by randomly deleting APs from the submitted scans.
// Accuracy rises with average k, stays above 70% even at k = 1, exceeds 90%
// once average k > 7.5, and driving saturates lowest (its full-data k is
// already small).
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto total = static_cast<std::size_t>(flags.get_int("total", 1000));
  const std::vector<double> keeps = {0.04, 0.1, 0.25, 0.5, 0.75, 1.0};

  std::printf("== Fig. 6: detection accuracy vs average k (AP density) ==\n");
  std::printf("%zu trajectories per scenario; k varied by deleting APs from "
              "scans\n\n",
              total);

  TextTable table({"keep", "Walking avg_k", "acc", "Cycling avg_k", "acc",
                   "Driving avg_k", "acc"});
  std::vector<std::vector<std::string>> rows(keeps.size());
  for (std::size_t i = 0; i < keeps.size(); ++i) {
    rows[i].push_back(TextTable::num(keeps[i], 2));
  }

  for (Mode mode : kAllModes) {
    core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
    core::RssiExperimentConfig cfg;
    cfg.total = total;
    const auto collected = core::collect_rssi_dataset(scenario, cfg);
    for (std::size_t i = 0; i < keeps.size(); ++i) {
      cfg.ap_keep = keeps[i];
      const auto result = core::run_rssi_experiment_on(scenario, collected, cfg);
      rows[i].push_back(TextTable::num(result.avg_k, 1));
      rows[i].push_back(TextTable::num(result.confusion.accuracy(), 3));
      std::printf("  %s keep=%.2f -> avg_k=%.1f acc=%.3f\n", mode_name(mode),
                  keeps[i], result.avg_k, result.confusion.accuracy());
    }
  }
  std::printf("\n");
  for (auto& row : rows) table.add_row(std::move(row));
  table.print(std::cout);
  std::printf("\npaper (Fig. 6): accuracy rises with k; > 70%% even at k = 1, "
              "> 90%% once avg k > 7.5; driving saturates lowest.\n");
  return 0;
}
