// Table II — Successful detection rate against adversarial attacks.
//
// Paper protocol (Sec. IV-A3/4): train the four models against naive attacks,
// run the C&W attack against target model C only (replay and navigation
// scenarios), then measure how many adversarial forgeries each model still
// detects.  Paper numbers: C 0.0%/0.0%, XGBoost 4.7%/3.3%, LSTM-1 7.5%/6.8%,
// LSTM-2 7.4%/7.6% — i.e. the attack transfers, escaping with > 92%.
//
// Scaled-down defaults; rescale with --attacks=1000 --iterations=1500.
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));

  core::MotionDatasetConfig dcfg;
  dcfg.train_real = flags.get_int("train_real", 400);
  dcfg.train_fake = flags.get_int("train_fake", 240);
  dcfg.test_real = 40;
  dcfg.test_fake = 40;
  dcfg.points = flags.get_int("points", 48);

  core::MotionModelConfig mcfg;
  mcfg.hidden = flags.get_int("hidden", 32);
  mcfg.epochs = flags.get_int("epochs", 32);

  const auto attacks = static_cast<std::size_t>(flags.get_int("attacks", 40));

  attack::CwConfig cw_cfg;
  cw_cfg.iterations = flags.get_int("iterations", 350);

  std::printf("== Table II: successful detection rate against adversarial attacks ==\n");
  std::printf("attacks per scenario=%zu, C&W iterations=%zu\n\n", attacks,
              cw_cfg.iterations);

  std::printf("training target + transfer models...\n");
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  const core::MotionModels models(dataset, mcfg);

  const attack::CwAttacker attacker(models.model_c(), models.dist_angle_encoder(),
                                    cw_cfg);
  const double min_d = attack::paper_mind(Mode::kWalking);

  // detected[model][scenario]: scenario 0 = replay, 1 = navigation.
  std::size_t detected[4][2] = {};
  std::size_t produced[2] = {};
  std::size_t adversarial_ok[2] = {};

  auto judge = [&](const std::vector<Enu>& pts, int scenario) {
    core::MotionSample sample;
    sample.points = pts;
    sample.trajectory =
        Trajectory::from_enu(pts, sim::sim_projection(), Mode::kWalking, 1.0);
    sample.label = 0;
    const auto preds = models.predict_all(sample);
    for (std::size_t m = 0; m < 4; ++m) {
      if (preds[m] == 0) ++detected[m][scenario];
    }
  };

  std::printf("forging %zu replay + %zu navigation adversarial trajectories...\n",
              attacks, attacks);
  for (std::size_t i = 0; i < attacks; ++i) {
    // Replay scenario: attack a fresh historical trajectory.
    const auto hist = scenario.real_trajectories(1, dcfg.points, 1.0)
                          .front()
                          .reported.to_enu(sim::sim_projection());
    const auto replay = attacker.forge_replay(hist, min_d);
    ++produced[0];
    adversarial_ok[0] += replay.adversarial;
    judge(replay.points, 0);

    // Navigation scenario: attack an AN route sample (which goes through the
    // naive attack first, Sec. IV-A2).
    const auto nav = attack::naive_noise_attack(
        scenario.navigation_trajectories(1, dcfg.points, 1.0)
            .front()
            .reported.to_enu(sim::sim_projection()),
        scenario.rng());
    const auto navigation = attacker.forge_navigation(nav);
    ++produced[1];
    adversarial_ok[1] += navigation.adversarial;
    judge(navigation.points, 1);
  }

  std::printf("\nC&W success rate: replay %.1f%%, navigation %.1f%%\n",
              100.0 * static_cast<double>(adversarial_ok[0]) /
                  static_cast<double>(produced[0]),
              100.0 * static_cast<double>(adversarial_ok[1]) /
                  static_cast<double>(produced[1]));

  TextTable table({"Models", "Replay attacks", "Navigation attacks"});
  const auto& names = core::MotionModels::model_names();
  for (std::size_t m = 0; m < 4; ++m) {
    table.add_row(
        {names[m],
         TextTable::num(100.0 * static_cast<double>(detected[m][0]) /
                        static_cast<double>(produced[0]), 1) + "%",
         TextTable::num(100.0 * static_cast<double>(detected[m][1]) /
                        static_cast<double>(produced[1]), 1) + "%"});
  }
  table.print(std::cout);
  std::printf("\npaper (Table II): C 0.0/0.0, XGBoost 4.7/3.3, LSTM-1 7.5/6.8, "
              "LSTM-2 7.4/7.6 (%% detected)\n");
  return 0;
}
