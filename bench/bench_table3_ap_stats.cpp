// Table III — The statistical information of k (APs heard per scan).
//
// Paper: volunteers collected trajectories in the three areas; k is the
// number of APs received at each location.  Paper values:
//   walking: avg 29, min 3,  90% of points k >= 14
//   cycling: avg 26, min 5,  90% of points k >= 15
//   driving: avg  9, min 0,  90% of points k >= 4
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto trajectories = static_cast<std::size_t>(flags.get_int("trajectories", 200));
  const auto points = static_cast<std::size_t>(flags.get_int("points", 30));

  std::printf("== Table III: statistics of k (APs per scan), %zu trajectories "
              "x %zu points per mode ==\n\n",
              trajectories, points);

  TextTable table({"", "Walking", "Cycling", "Driving"});
  std::vector<std::string> avg_row = {"Average k"};
  std::vector<std::string> min_row = {"Minimal k"};
  std::vector<std::string> p90_row = {"90% points k >="};
  std::vector<std::string> ap_row = {"deployed APs"};

  for (Mode mode : kAllModes) {
    core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
    const auto scanned = scenario.scanned_real(trajectories, points, 2.0);
    std::vector<double> ks;
    for (const auto& traj : scanned) {
      for (const auto& scan : traj.scans) {
        ks.push_back(static_cast<double>(scan.size()));
      }
    }
    avg_row.push_back(TextTable::num(mean(ks), 1));
    min_row.push_back(TextTable::num(min_of(ks), 0));
    p90_row.push_back(TextTable::num(percentile(ks, 10.0), 0));
    ap_row.push_back(std::to_string(scenario.wifi().aps().size()));
  }
  table.add_row(avg_row);
  table.add_row(min_row);
  table.add_row(p90_row);
  table.add_row(ap_row);
  table.print(std::cout);

  std::printf("\npaper (Table III): avg 29/26/9, min 3/5/0, 90%% >= 14/15/4\n");
  return 0;
}
