// Ablation — design choices of the RSSI defense.
//
// Variants compared on the walking scenario, same collected data:
//   baseline        : Eq. 4 exact-match RPD, theta_1 and theta_2 on
//   smoothed RPD    : +-1 dB tolerance in the RPD match
//   no theta_1      : uniform reference weights instead of inverse distance
//   no theta_2      : no density-reliability damping
//   no Num feature  : only Phi values in the Eq. 8 feature vector (emulated
//                     by zeroing the Num entries is not possible from here,
//                     so this ablation uses top_k = 4 to halve the feature
//                     budget instead — a capacity ablation)
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto total = static_cast<std::size_t>(flags.get_int("total", 800));
  const std::string mode_arg = flags.get("mode", "walking");
  Mode mode = Mode::kWalking;
  if (mode_arg == "cycling") mode = Mode::kCycling;
  if (mode_arg == "driving") mode = Mode::kDriving;

  std::printf("== Ablation: RSSI defense design choices (%s, %zu trajectories) ==\n\n",
              mode_name(mode), total);

  core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
  core::RssiExperimentConfig base;
  base.total = total;
  const auto collected = core::collect_rssi_dataset(scenario, base);

  struct Variant {
    const char* name;
    core::RssiExperimentConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline (Eq.4 exact, theta1+theta2)", base});
  {
    auto cfg = base;
    cfg.detector.confidence.rpd.rssi_tolerance_db = 1;
    variants.push_back({"smoothed RPD (+-1 dB)", cfg});
  }
  {
    auto cfg = base;
    cfg.detector.confidence.use_theta1 = false;
    variants.push_back({"no theta_1 (uniform weights)", cfg});
  }
  {
    auto cfg = base;
    cfg.detector.confidence.use_theta2 = false;
    variants.push_back({"no theta_2 (no density damping)", cfg});
  }
  {
    auto cfg = base;
    cfg.top_k = 4;
    variants.push_back({"top_k = 4 (half feature budget)", cfg});
  }
  {
    auto cfg = base;
    cfg.top_k = 12;
    variants.push_back({"top_k = 12", cfg});
  }

  TextTable table({"variant", "Accuracy", "Precision", "Recall", "F1"});
  for (const auto& v : variants) {
    const auto result = core::run_rssi_experiment_on(scenario, collected, v.cfg);
    table.add_row({v.name, TextTable::num(result.confusion.accuracy(), 3),
                   TextTable::num(result.confusion.precision(), 3),
                   TextTable::num(result.confusion.recall(), 3),
                   TextTable::num(result.confusion.f1(), 3)});
    std::printf("  %-38s acc=%.3f\n", v.name, result.confusion.accuracy());
  }
  std::printf("\n");
  table.print(std::cout);
  return 0;
}
