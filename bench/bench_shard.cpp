// Geo-sharded serving benchmark: ShardRouter scale-out vs the single-shard
// baseline.
//
// The router's contract (serve/shard_router.hpp) is that sharding changes
// *where* segments are evaluated, never *what* comes back: merged verdicts
// are bitwise-identical to the unsharded oracle.  This bench prices the other
// half of the claim — that per-shard dedicated workers actually buy
// throughput once trajectories spread over the tile ring.
//
//   bench_shard --history=2400 --area=60 --requests=96 --clients=4 --threads=1
//
// One leg per shard count {1, 2, 4}: a ShardRouter with start_workers=true
// (one dedicated worker per shard) is driven by --clients concurrent client
// threads replaying the same request pool; the 1-shard leg is the baseline.
// Run with --threads=1 so the deterministic pool adds no intra-segment
// parallelism and the scale-out comes purely from the shard workers — the
// simulated "one machine per shard" deployment.
//
// Per-request latencies feed p50/p99; every leg's payload checksum (XOR of
// per-request FNV-1a over the canonical verdict strings, order-independent
// so client interleaving cannot change it) must equal the oracle's.  Exit
// code 0 iff every leg matched — speedups are reported, not asserted, since
// wall-clock on a loaded box is noise but identity is the contract.  (On a
// host with fewer cores than shards the legs can only measure fan-out
// overhead — dedicated workers need real cores to run on.)  BENCH_shard.json
// records both (written atomically, like every bench artifact).
//
// A second table prices the *transport* (serve/net_shard over src/net): the
// same request pool through a 4-shard router whose segments are answered
// in-process, over a clean SimNet loopback, over a SimNet chaos schedule
// (drops + straggler delays + one fully partitioned shard, exercising retry,
// hedged fan-out and local-fallback degradation), and over real Unix-domain
// sockets.  Checksum equality with the oracle is asserted for every
// transport leg — chaos may degrade *where* a segment is evaluated, never
// the bits that come back.  --net_only=1 runs just this table (the
// bench_net_smoke CTest gate).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/durable/durable_file.hpp"
#include "core/trajkit.hpp"
#include "net/sim.hpp"
#include "net/uds.hpp"
#include "serve/net_shard.hpp"
#include "serve/shard_router.hpp"
#include "support/fixtures.hpp"

using namespace trajkit;
namespace ts = trajkit::test_support;

namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double latency_percentile(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[rank];
}

struct LegResult {
  std::size_t shards = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t segments = 0;
  bool identical = false;
};

struct TransportLeg {
  std::string name;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t remote_segments = 0;
  std::uint64_t degraded = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t hedges = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);  // wires --threads into set_global_threads
  const auto history = static_cast<int>(flags.get_int("history", 2400));
  const double area_m = flags.get_double("area", 60.0);
  const auto upload_points =
      static_cast<std::size_t>(flags.get_int("points", 10));
  const auto request_count =
      static_cast<std::size_t>(flags.get_int("requests", 96));
  const auto clients = static_cast<std::size_t>(flags.get_int("clients", 4));
  const double tile_m = flags.get_double("tile", 8.0);
  const bool net_only = flags.get_int("net_only", 0) != 0;

  std::printf("== Geo-sharded serving: router legs vs single-shard oracle ==\n");
  std::printf("%d reference points over %.0fm x %.0fm, %zu requests x %zu-point "
              "uploads, %zu client threads, %.0fm tiles\n\n",
              history, area_m, area_m, request_count, upload_points, clients,
              tile_m);

  // The city: a scaled linear-field world — cheap to build at any size, and
  // deterministic, so reruns compare cleanly.
  ts::LinearWorldConfig world_cfg;
  world_cfg.area_m = area_m;
  world_cfg.history_points = history;
  world_cfg.upload_points = upload_points;
  ts::LinearFieldWorld world(world_cfg);

  // Request pool: local random walks, not the fixture's uniform position
  // draws — a pedestrian crosses a tile boundary every few points, which is
  // the locality geo-sharding monetises (uniform draws would shred every
  // trajectory into single-point segments and only measure fan-out overhead).
  const double lo = world_cfg.margin_m;
  const double hi = world_cfg.area_m - world_cfg.margin_m;
  Rng& rng = world.rng();
  std::vector<wifi::ScannedUpload> pool;
  pool.reserve(request_count);
  for (std::size_t r = 0; r < request_count; ++r) {
    const Enu start{rng.uniform(lo, hi), rng.uniform(lo, hi)};
    auto walk = ts::random_walk_enu(rng, upload_points, 2.0, start);
    wifi::ScannedUpload upload;
    for (Enu& p : walk) {
      p.east = std::clamp(p.east, lo, hi);
      p.north = std::clamp(p.north, lo, hi);
      upload.positions.push_back(p);
      upload.scans.push_back({{1, ts::LinearFieldWorld::field_rssi(p)}});
    }
    pool.push_back(std::move(upload));
  }

  // Oracle pass: the unsharded detector, one thread, cold timing ignored —
  // only the payload checksum matters here.
  std::uint64_t oracle_checksum = 0;
  for (const auto& upload : pool) {
    oracle_checksum ^= fnv1a(world.detector().analyze(upload).canonical_string());
  }

  std::vector<LegResult> legs;
  bool all_identical = true;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    if (net_only) break;
    serve::ShardRouterConfig rc;
    rc.shards = shards;
    rc.tile_m = tile_m;
    rc.start_workers = true;  // one dedicated worker per shard
    serve::ShardRouter router(world.detector(), rc);

    std::vector<std::uint64_t> client_checksums(clients, 0);
    std::vector<std::vector<double>> client_latencies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const double t0 = now_s();
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t r = c; r < pool.size(); r += clients) {
          const double rt0 = now_s();
          const auto response = router.verify(pool[r], r);
          client_latencies[c].push_back((now_s() - rt0) * 1e6);
          if (response.outcome != serve::Outcome::kOk) {
            std::fprintf(stderr, "request %zu failed: %s\n", r,
                         response.error.c_str());
            return;
          }
          client_checksums[c] ^= fnv1a(response.report.canonical_string());
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = now_s() - t0;

    LegResult leg;
    leg.shards = shards;
    leg.seconds = seconds;
    std::vector<double> latencies;
    for (std::size_t c = 0; c < clients; ++c) {
      leg.checksum ^= client_checksums[c];
      latencies.insert(latencies.end(), client_latencies[c].begin(),
                       client_latencies[c].end());
    }
    std::sort(latencies.begin(), latencies.end());
    leg.p50_us = latency_percentile(latencies, 0.50);
    leg.p99_us = latency_percentile(latencies, 0.99);
    leg.segments = router.counters().segments;
    leg.identical = latencies.size() == pool.size() &&
                    leg.checksum == oracle_checksum;
    all_identical = all_identical && leg.identical;
    legs.push_back(leg);
  }

  const double baseline_s = legs.empty() ? 0.0 : legs.front().seconds;
  if (!net_only) {
    TextTable table({"shards", "seconds", "verdicts/s", "p50 us", "p99 us",
                     "segments", "speedup", "identical"});
    for (const auto& leg : legs) {
      table.add_row({std::to_string(leg.shards), TextTable::num(leg.seconds, 3),
                     TextTable::num(static_cast<double>(request_count) / leg.seconds, 1),
                     TextTable::num(leg.p50_us, 1), TextTable::num(leg.p99_us, 1),
                     std::to_string(leg.segments),
                     TextTable::num(baseline_s / leg.seconds, 2) + "x",
                     leg.identical ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::printf("\noracle checksum = %016llx\n",
                static_cast<unsigned long long>(oracle_checksum));
    std::printf("verdicts: %s\n\n",
                all_identical
                    ? "OK (bitwise-identical across every shard count)"
                    : "FAILED (sharding changed a verdict!)");
  }

  // -- Transport legs: the same pool over serve/net_shard backends -----------

  const std::size_t top_k = world.detector().config().confidence.top_k;
  const std::size_t net_shards = 4;

  // Drive the pool through `router` with the configured client threads and
  // fold per-request latencies + the order-independent verdict checksum.
  const auto drive = [&](serve::ShardRouter& router, TransportLeg& leg) {
    std::vector<std::uint64_t> checksums(clients, 0);
    std::vector<std::vector<double>> lats(clients);
    std::vector<std::thread> threads;
    const double t0 = now_s();
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t r = c; r < pool.size(); r += clients) {
          const double rt0 = now_s();
          const auto response = router.verify(pool[r], r);
          lats[c].push_back((now_s() - rt0) * 1e6);
          if (response.outcome != serve::Outcome::kOk) {
            std::fprintf(stderr, "[%s] request %zu failed: %s\n",
                         leg.name.c_str(), r, response.error.c_str());
            return;
          }
          checksums[c] ^= fnv1a(response.report.canonical_string());
        }
      });
    }
    for (auto& t : threads) t.join();
    leg.seconds = now_s() - t0;
    std::vector<double> latencies;
    for (std::size_t c = 0; c < clients; ++c) {
      leg.checksum ^= checksums[c];
      latencies.insert(latencies.end(), lats[c].begin(), lats[c].end());
    }
    std::sort(latencies.begin(), latencies.end());
    leg.p50_us = latency_percentile(latencies, 0.50);
    leg.p99_us = latency_percentile(latencies, 0.99);
    const auto counters = router.counters();
    leg.remote_segments = counters.remote_segments;
    leg.degraded = counters.degraded_shard_verdicts;
    for (const auto& stats : counters.per_shard_net) {
      leg.retries += stats.retries;
      leg.timeouts += stats.timeouts;
      leg.hedges += stats.hedges;
    }
    leg.identical = latencies.size() == pool.size() &&
                    leg.checksum == oracle_checksum;
  };

  std::vector<TransportLeg> net_legs;

  {  // In-process baseline: resident slices, no transport at all.
    TransportLeg leg;
    leg.name = "inproc";
    serve::ShardRouterConfig rc;
    rc.shards = net_shards;
    rc.tile_m = tile_m;
    serve::ShardRouter router(world.detector(), rc);
    drive(router, leg);
    net_legs.push_back(leg);
  }

  {  // Clean SimNet loopback: every segment over the simulated wire.
    TransportLeg leg;
    leg.name = "simnet";
    net::SimNet sim(0x5eed);
    serve::ShardRouterConfig rc;
    rc.shards = net_shards;
    rc.tile_m = tile_m;
    serve::ShardRouter router(world.detector(), rc);
    for (std::size_t s = 0; s < net_shards; ++s) {
      sim.bind("seg-" + std::to_string(s),
               serve::make_segment_handler(router.shard(s)));
      router.set_remote_evaluator(
          s, std::make_shared<serve::RemoteSegmentClient>(
                 sim, std::vector<std::string>{"seg-" + std::to_string(s)},
                 top_k));
    }
    drive(router, leg);
    net_legs.push_back(leg);
  }

  {  // SimNet chaos: drops on both legs, a straggling primary replica per
     // shard (hedged to a clean secondary), and shard 0 fully partitioned —
     // its segments must degrade to the resident slice, bit-for-bit.
    TransportLeg leg;
    leg.name = "simnet-chaos";
    net::SimNet sim(0xc4a05);
    serve::ShardRouterConfig rc;
    rc.shards = net_shards;
    rc.tile_m = tile_m;
    serve::ShardRouter router(world.detector(), rc);
    net::SimFaultSpec primary;
    primary.drop = 0.15;
    primary.delay = 0.3;
    primary.delay_min_us = 15'000;  // past the 10ms hedge deadline
    primary.delay_max_us = 60'000;
    net::SimFaultSpec resp;
    resp.drop = 0.1;
    for (std::size_t s = 0; s < net_shards; ++s) {
      const std::string a = "seg-" + std::to_string(s) + "a";
      const std::string b = "seg-" + std::to_string(s) + "b";
      sim.bind(a, serve::make_segment_handler(router.shard(s)));
      sim.bind(b, serve::make_segment_handler(router.shard(s)));
      sim.set_faults(a, primary, resp);
      router.set_remote_evaluator(
          s, std::make_shared<serve::RemoteSegmentClient>(
                 sim, std::vector<std::string>{a, b}, top_k));
    }
    sim.partition("seg-0a", net::SimNet::Partition::kFull);
    sim.partition("seg-0b", net::SimNet::Partition::kFull);
    drive(router, leg);
    net_legs.push_back(leg);
  }

  {  // Real Unix-domain sockets: one server per shard, framed RPCs.
    TransportLeg leg;
    leg.name = "uds";
    serve::ShardRouterConfig rc;
    rc.shards = net_shards;
    rc.tile_m = tile_m;
    serve::ShardRouter router(world.detector(), rc);
    net::UdsTransport transport;
    serve::NetCallPolicy policy;
    policy.rpc_deadline_us = 2'000'000;  // real I/O under load: generous
    std::vector<std::unique_ptr<net::UdsServer>> servers;
    bool uds_up = true;
    for (std::size_t s = 0; s < net_shards; ++s) {
      const std::string path =
          "bench_shard_seg_" + std::to_string(::getpid()) + "_" +
          std::to_string(s) + ".sock";
      servers.push_back(std::make_unique<net::UdsServer>(
          path, serve::make_segment_handler(router.shard(s))));
      auto started = servers.back()->start();
      if (!started.has_value()) {
        std::fprintf(stderr, "uds leg: %s\n", started.error().c_str());
        uds_up = false;
        break;
      }
      router.set_remote_evaluator(
          s, std::make_shared<serve::RemoteSegmentClient>(
                 transport, std::vector<std::string>{path}, top_k, policy));
    }
    if (uds_up) {
      drive(router, leg);
      net_legs.push_back(leg);
    }
    for (auto& server : servers) {
      server->stop();
      ::unlink(server->path().c_str());
    }
  }

  std::printf("== Transport legs: 4-shard router over serve/net_shard ==\n");
  TextTable net_table({"transport", "seconds", "verdicts/s", "p50 us",
                       "p99 us", "remote", "degraded", "retries", "timeouts",
                       "hedges", "identical"});
  for (const auto& leg : net_legs) {
    net_table.add_row(
        {leg.name, TextTable::num(leg.seconds, 3),
         TextTable::num(static_cast<double>(request_count) / leg.seconds, 1),
         TextTable::num(leg.p50_us, 1), TextTable::num(leg.p99_us, 1),
         std::to_string(leg.remote_segments), std::to_string(leg.degraded),
         std::to_string(leg.retries), std::to_string(leg.timeouts),
         std::to_string(leg.hedges), leg.identical ? "yes" : "NO"});
    all_identical = all_identical && leg.identical;
  }
  net_table.print(std::cout);
  std::printf("\ntransport verdicts: %s\n",
              all_identical
                  ? "OK (bitwise-identical over every transport + chaos)"
                  : "FAILED (a transport leg changed or lost a verdict!)");

  // Emitted atomically (temp + rename): readers see a complete report or the
  // previous one, never a torn JSON.
  std::string json = "{\n  \"oracle_checksum\": \"";
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(oracle_checksum));
    json += buf;
  }
  json += "\",\n  \"requests\": " + std::to_string(request_count);
  json += ",\n  \"clients\": " + std::to_string(clients);
  json += ",\n  \"legs\": [";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"shards\": %zu, \"seconds\": %.6f, "
                  "\"verdicts_per_sec\": %.3f, \"p50_us\": %.1f, "
                  "\"p99_us\": %.1f, \"speedup\": %.3f, \"identical\": %s}",
                  i == 0 ? "" : ",", legs[i].shards, legs[i].seconds,
                  static_cast<double>(request_count) / legs[i].seconds,
                  legs[i].p50_us, legs[i].p99_us,
                  baseline_s / legs[i].seconds,
                  legs[i].identical ? "true" : "false");
    json += buf;
  }
  json += "\n  ],\n  \"transport_legs\": [";
  for (std::size_t i = 0; i < net_legs.size(); ++i) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"transport\": \"%s\", \"seconds\": %.6f, "
                  "\"verdicts_per_sec\": %.3f, \"p50_us\": %.1f, "
                  "\"p99_us\": %.1f, \"remote_segments\": %llu, "
                  "\"degraded\": %llu, \"retries\": %llu, "
                  "\"timeouts\": %llu, \"hedges\": %llu, \"identical\": %s}",
                  i == 0 ? "" : ",", net_legs[i].name.c_str(),
                  net_legs[i].seconds,
                  static_cast<double>(request_count) / net_legs[i].seconds,
                  net_legs[i].p50_us, net_legs[i].p99_us,
                  static_cast<unsigned long long>(net_legs[i].remote_segments),
                  static_cast<unsigned long long>(net_legs[i].degraded),
                  static_cast<unsigned long long>(net_legs[i].retries),
                  static_cast<unsigned long long>(net_legs[i].timeouts),
                  static_cast<unsigned long long>(net_legs[i].hedges),
                  net_legs[i].identical ? "true" : "false");
    json += buf;
  }
  json += "\n  ],\n  \"identical\": ";
  json += all_identical ? "true" : "false";
  json += "\n}\n";
  if (durable::write_file_atomic("BENCH_shard.json", json)) {
    std::printf("wrote BENCH_shard.json\n");
  }

  return all_identical ? 0 : 1;
}
