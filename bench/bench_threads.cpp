// Thread-scaling micro-benchmark for the deterministic execution layer.
//
// Times the two heaviest pipeline stages — scenario batch generation
// (simulate + attach scans) and detector evaluation (Eq. 8 featurisation +
// per-point RPD confidence) — at --threads 1 and --threads N, reports the
// speedup, and cross-checks a result checksum to demonstrate that the
// parallel run is bit-identical to the serial one.
//
//   bench_threads --threads=4 --total=300 --points=30
//
// Defaults to hardware_concurrency for the parallel leg when --threads is
// not given.  On a single-core machine the speedup will hover around 1x;
// the checksum equality still proves the determinism contract.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "common/parallel.hpp"
#include "core/trajkit.hpp"
#include "wifi/features.hpp"

using namespace trajkit;

namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

struct RunResult {
  double gen_s = 0.0;
  double eval_s = 0.0;
  double checksum = 0.0;  ///< order-sensitive digest of everything computed
};

RunResult run_once(std::size_t total, std::size_t points) {
  RunResult r;

  const double t0 = now_s();
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  const auto batch = scenario.scanned_real(total, points, 2.0);
  r.gen_s = now_s() - t0;

  // Split: most of the batch becomes provider history, the rest test uploads.
  std::vector<wifi::ScannedUpload> history;
  std::vector<wifi::ScannedUpload> test;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    (i < batch.size() * 3 / 4 ? history : test).push_back(core::to_upload(batch[i]));
  }

  const double t1 = now_s();
  wifi::RssiDetector detector(wifi::flatten_history(history), {});
  for (const auto& upload : test) {
    for (double f : wifi::trajectory_features(detector.confidence(), upload)) {
      r.checksum = r.checksum * 1.000000059604644775390625 + f;
    }
  }
  r.eval_s = now_s() - t1;

  // Fold trajectory geometry into the digest too, so the generation stage is
  // covered by the equality check as well.
  for (const auto& traj : batch) {
    for (const auto& p : traj.true_positions) {
      r.checksum = r.checksum * 1.000000059604644775390625 + p.east + p.north;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);  // wires --threads into set_global_threads
  const auto total = static_cast<std::size_t>(flags.get_int("total", 200));
  const auto points = static_cast<std::size_t>(flags.get_int("points", 30));
  const std::size_t parallel_threads = global_threads();

  std::printf("== Thread scaling: generation + detector evaluation ==\n");
  std::printf("%zu trajectories x %zu points; parallel leg uses %zu thread(s)\n\n",
              total, points, parallel_threads);

  set_global_threads(1);
  const RunResult serial = run_once(total, points);
  set_global_threads(parallel_threads);
  const RunResult parallel = run_once(total, points);
  set_global_threads(0);

  TextTable table({"stage", "serial (s)", "parallel (s)", "speedup"});
  table.add_row({"generate batch", TextTable::num(serial.gen_s, 3),
                 TextTable::num(parallel.gen_s, 3),
                 TextTable::num(serial.gen_s / parallel.gen_s, 2) + "x"});
  table.add_row({"featurise + RPD", TextTable::num(serial.eval_s, 3),
                 TextTable::num(parallel.eval_s, 3),
                 TextTable::num(serial.eval_s / parallel.eval_s, 2) + "x"});
  const double s_total = serial.gen_s + serial.eval_s;
  const double p_total = parallel.gen_s + parallel.eval_s;
  table.add_row({"total", TextTable::num(s_total, 3), TextTable::num(p_total, 3),
                 TextTable::num(s_total / p_total, 2) + "x"});
  table.print(std::cout);

  const bool identical = serial.checksum == parallel.checksum;
  std::printf("\nchecksum serial   = %.17g\n", serial.checksum);
  std::printf("checksum parallel = %.17g\n", parallel.checksum);
  std::printf("determinism: %s\n",
              identical ? "OK (bit-identical across thread counts)"
                        : "FAILED (results depend on thread count!)");
  return identical ? 0 : 1;
}
