// Kernel-layer benchmark: the batched GEMM nn stack and the pruned-exact DTW
// against the naive reference implementations they replaced.
//
// Three measurements, each with an FNV-1a checksum over the raw double bit
// patterns proving the fast path produces *bit-identical* results:
//
//   * LSTM classifier training — reference backend vs batched kernels
//     (per-epoch wall time; predictions after training must match bitwise);
//   * C&W attack inner loop — reference backend + full DTW vs batched
//     kernels + pruned DTW (iterations/sec; forged points must match
//     bitwise);
//   * DTW — full DP vs banded-bound pruned DP on attack-shaped pairs
//     (calls/sec; distance and path must match bitwise).
//
// The batched leg is additionally run at --threads 1 and --threads N and the
// training checksums compared, extending PR 1's thread-count-invariance
// contract to the kernel layer.
//
// Results are printed as a table and written to BENCH_nn.json.  Exit is
// non-zero if any checksum diverges — speedups are hardware-dependent and
// only reported, identity is the contract.
//
// Every timed leg is repeated --reps times and the best repetition reported
// (minimum time / maximum rate, as in standard benchmark harnesses): the box
// is a single shared CPU and a single-shot measurement charges OS jitter to
// whichever leg it happens to land on.  Checksums accumulate over all
// repetitions, symmetrically for both paths, so identity still covers every
// run.
//
//   bench_nn --train=64 --points=64 --epochs=2 --attack_iters=60 --threads=2
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "attack/cw.hpp"
#include "common/durable/durable_file.hpp"
#include "common/parallel.hpp"
#include "core/trajkit.hpp"
#include "dtw/dtw.hpp"
#include "gbt/booster.hpp"
#include "nn/quant_classifier.hpp"

using namespace trajkit;

namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// FNV-1a over raw double bits: any single-ulp difference changes the digest.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void add(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  std::string hex() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
    return buf;
  }
};

std::vector<Enu> make_walk(Rng& rng, std::size_t n, double step) {
  std::vector<Enu> pts = {{0.0, 0.0}};
  for (std::size_t i = 1; i < n; ++i) {
    pts.push_back({pts.back().east + rng.uniform(0.5, step),
                   pts.back().north + rng.uniform(-step / 2, step / 2)});
  }
  return pts;
}

struct Dataset {
  std::vector<FeatureSequence> xs;
  std::vector<int> ys;
  std::vector<Enu> attack_route;
};

Dataset make_dataset(const DistAngleEncoder& encoder, std::size_t train,
                     std::size_t points) {
  Rng rng(4242);
  Dataset ds;
  for (std::size_t i = 0; i < train; ++i) {
    const std::size_t n =
        points + static_cast<std::size_t>(rng.uniform_int(0, 8));
    const bool real = i % 2 == 0;
    ds.xs.push_back(encoder.encode(make_walk(rng, n, real ? 4.0 : 1.0)));
    ds.ys.push_back(real ? 1 : 0);
  }
  ds.attack_route = make_walk(rng, points, 4.0);
  return ds;
}

nn::LstmClassifierConfig model_config(nn::NnBackend backend) {
  nn::LstmClassifierConfig cfg;
  cfg.hidden_dim = 32;
  cfg.batch_size = 16;
  cfg.backend = backend;
  return cfg;
}

/// Train a fresh same-seed model and digest its post-training predictions.
double train_leg(nn::NnBackend backend, const Dataset& ds, std::size_t epochs,
                 Fnv& digest, nn::LstmClassifier* keep = nullptr) {
  nn::LstmClassifier model(model_config(backend), 5);
  const double t0 = now_s();
  model.train(ds.xs, ds.ys, epochs);
  const double epoch_s = (now_s() - t0) / static_cast<double>(epochs);
  model.set_backend(nn::NnBackend::kBatched);  // digest via one fixed path
  for (const double p : model.predict_proba_batch(ds.xs)) digest.add(p);
  if (keep) *keep = std::move(model);
  return epoch_s;
}

double attack_leg(const nn::LstmClassifier& trained, const DistAngleEncoder& encoder,
                  const Dataset& ds, std::size_t iters, bool fast, Fnv& digest) {
  nn::LstmClassifier model = trained;  // per-leg copy: backends never share
  model.set_backend(fast ? nn::NnBackend::kBatched : nn::NnBackend::kReference);
  attack::CwConfig ac;
  ac.iterations = iters;
  ac.history_stride = iters;
  ac.fast_dtw = fast;
  const attack::CwAttacker attacker(model, encoder, ac);
  const double t0 = now_s();
  const auto result = attacker.forge_navigation(ds.attack_route);
  const double iters_per_s = static_cast<double>(iters) / (now_s() - t0);
  for (const auto& p : result.points) {
    digest.add(p.east);
    digest.add(p.north);
  }
  digest.add(result.p_real);
  digest.add(result.dtw_norm);
  return iters_per_s;
}

double dtw_leg(const Dataset& ds, std::size_t calls, bool pruned, Fnv& digest) {
  // Attack-shaped pair: the iterate is a perturbation of the reference, so
  // the pruned variant runs with the attack's band (CwConfig::dtw_band).
  const std::size_t band = attack::CwConfig{}.dtw_band;
  Rng rng(99);
  auto other = ds.attack_route;
  for (auto& p : other) {
    p.east += rng.uniform(-2.0, 2.0);
    p.north += rng.uniform(-2.0, 2.0);
  }
  const double t0 = now_s();
  for (std::size_t i = 0; i < calls; ++i) {
    const auto r = pruned ? dtw_pruned(ds.attack_route, other, band)
                          : dtw(ds.attack_route, other);
    if (i == 0) {
      digest.add(r.distance);
      digest.add(static_cast<double>(r.path.size()));
      for (const auto& pair : r.path) {
        digest.add(static_cast<double>(pair.i));
        digest.add(static_cast<double>(pair.j));
      }
    }
  }
  return static_cast<double>(calls) / (now_s() - t0);
}

/// Sequences/sec of one inference path over the dataset (several passes per
/// timing so the clock resolution never dominates at smoke sizes).
template <typename Predict>
double infer_rate(const Dataset& ds, const Predict& predict) {
  constexpr std::size_t kPasses = 8;
  const double t0 = now_s();
  double sink = 0.0;
  for (std::size_t p = 0; p < kPasses; ++p) {
    for (const double v : predict(ds.xs)) sink += v;
  }
  const double rate =
      static_cast<double>(kPasses * ds.xs.size()) / (now_s() - t0);
  // Keep the optimizer honest without polluting the table.
  if (sink == std::numeric_limits<double>::infinity()) std::printf(" ");
  return rate;
}

/// Rows/sec of one GBT scoring path; first pass digested for the
/// bit-identity check.
template <typename Score>
double gbt_rate(const std::vector<std::vector<double>>& rows,
                const Score& score, Fnv& digest) {
  constexpr std::size_t kPasses = 20;
  const double t0 = now_s();
  for (std::size_t p = 0; p < kPasses; ++p) {
    for (const auto& row : rows) {
      const double v = score(row);
      if (p == 0) digest.add(v);
    }
  }
  return static_cast<double>(kPasses * rows.size()) / (now_s() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);  // wires --threads into set_global_threads
  const auto train = static_cast<std::size_t>(flags.get_int("train", 64));
  const auto points = static_cast<std::size_t>(flags.get_int("points", 64));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 2));
  const auto attack_iters =
      static_cast<std::size_t>(flags.get_int("attack_iters", 60));
  const auto dtw_calls = static_cast<std::size_t>(flags.get_int("dtw_calls", 200));
  const auto reps = std::max<std::size_t>(1, flags.get_int("reps", 5));
  const std::size_t parallel_threads = global_threads();

  // Best-of-reps helpers; see the file comment for why.
  const auto min_time = [reps](auto&& leg) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < reps; ++r) best = std::min(best, leg());
    return best;
  };
  const auto max_rate = [reps](auto&& leg) {
    double best = 0.0;
    for (std::size_t r = 0; r < reps; ++r) best = std::max(best, leg());
    return best;
  };

  std::printf("== nn kernel layer: batched GEMM + pruned DTW vs reference ==\n");
  std::printf("%zu train seqs x ~%zu steps, %zu epochs; attack %zu iters; "
              "dtw %zu calls\n\n",
              train, points, epochs, attack_iters, dtw_calls);

  const DistAngleEncoder encoder;
  const Dataset ds = make_dataset(encoder, train, points);

  // -- Training: reference vs batched (single thread: kernel throughput). --
  set_global_threads(1);
  Fnv train_ref_digest;
  Fnv train_bat_digest;
  const double epoch_ref_s = min_time([&] {
    return train_leg(nn::NnBackend::kReference, ds, epochs, train_ref_digest);
  });
  nn::LstmClassifier trained(model_config(nn::NnBackend::kBatched), 5);
  const double epoch_bat_s = min_time([&] {
    return train_leg(nn::NnBackend::kBatched, ds, epochs, train_bat_digest, &trained);
  });

  // -- Thread invariance of the batched path. --
  set_global_threads(parallel_threads);
  Fnv train_mt_digest;
  for (std::size_t r = 0; r < reps; ++r) {
    train_leg(nn::NnBackend::kBatched, ds, epochs, train_mt_digest);
  }
  set_global_threads(1);

  // -- Attack inner loop: reference kernels + full DTW vs batched + pruned. --
  Fnv attack_ref_digest;
  Fnv attack_fast_digest;
  const double attack_ref_ips = max_rate([&] {
    return attack_leg(trained, encoder, ds, attack_iters, false, attack_ref_digest);
  });
  const double attack_fast_ips = max_rate([&] {
    return attack_leg(trained, encoder, ds, attack_iters, true, attack_fast_digest);
  });

  // -- DTW in isolation. --
  Fnv dtw_full_digest;
  Fnv dtw_pruned_digest;
  const double dtw_full_cps =
      max_rate([&] { return dtw_leg(ds, dtw_calls, false, dtw_full_digest); });
  const double dtw_pruned_cps =
      max_rate([&] { return dtw_leg(ds, dtw_calls, true, dtw_pruned_digest); });

  // -- Quantized LSTM inference: fp64 batched vs int8/int16 serving lanes. --
  // The quant lanes are NOT bit-identical (int rounding + polynomial
  // activations); the QuantGate is the contract: zero thresholded-verdict
  // disagreements and a bounded logit delta against the fp64 oracle, digested
  // into one verdict checksum.
  const auto quant8 =
      nn::QuantizedLstm::quantize(trained, ds.xs, nn::QuantMode::kInt8);
  const auto quant16 =
      nn::QuantizedLstm::quantize(trained, ds.xs, nn::QuantMode::kInt16);
  const auto gate8 = nn::quant_gate_check(trained, quant8, ds.xs, 0.1);
  const auto gate16 = nn::quant_gate_check(trained, quant16, ds.xs, 0.1);
  const double infer_fp64_sps = max_rate([&] {
    return infer_rate(ds, [&](const std::vector<FeatureSequence>& xs) {
      return trained.predict_proba_batch(xs);
    });
  });
  const double infer_q8_sps = max_rate([&] {
    return infer_rate(ds, [&](const std::vector<FeatureSequence>& xs) {
      return quant8.predict_proba_batch(xs);
    });
  });
  const double infer_q16_sps = max_rate([&] {
    return infer_rate(ds, [&](const std::vector<FeatureSequence>& xs) {
      return quant16.predict_proba_batch(xs);
    });
  });

  // -- GBT scoring: scalar pointer-chasing walk vs the fused flat scorer
  // (bit-identical by construction; asserted through the digests). --
  gbt::GbtConfig gc;
  gc.num_trees = 60;
  gc.max_depth = 4;
  std::vector<std::vector<double>> gbt_rows;
  std::vector<int> gbt_labels;
  {
    Rng rng(777);
    for (std::size_t i = 0; i < 400; ++i) {
      std::vector<double> row(16);
      double s = 0.0;
      for (auto& v : row) {
        v = rng.uniform(-1.0, 1.0);
        s += v;
      }
      gbt_rows.push_back(std::move(row));
      gbt_labels.push_back(s > 0.0 ? 1 : 0);
    }
  }
  gbt::GbtClassifier gbt_model(gc);
  gbt_model.train(gbt_rows, gbt_labels);
  Fnv gbt_ref_digest;
  Fnv gbt_fused_digest;
  const double gbt_ref_rps = max_rate([&] {
    Fnv fresh;
    const double r = gbt_rate(
        gbt_rows,
        [&](const std::vector<double>& row) {
          return gbt_model.predict_proba_reference(row);
        },
        fresh);
    gbt_ref_digest = fresh;
    return r;
  });
  const double gbt_fused_rps = max_rate([&] {
    Fnv fresh;
    const double r = gbt_rate(
        gbt_rows,
        [&](const std::vector<double>& row) { return gbt_model.predict_proba(row); },
        fresh);
    gbt_fused_digest = fresh;
    return r;
  });
  set_global_threads(0);

  const bool train_ok = train_ref_digest.h == train_bat_digest.h;
  const bool threads_ok = train_bat_digest.h == train_mt_digest.h;
  const bool attack_ok = attack_ref_digest.h == attack_fast_digest.h;
  const bool dtw_ok = dtw_full_digest.h == dtw_pruned_digest.h;
  const bool gbt_ok = gbt_ref_digest.h == gbt_fused_digest.h;
  const bool quant_ok = gate8.pass && gate16.pass;
  const double attack_speedup = attack_fast_ips / attack_ref_ips;
  const double epoch_speedup = epoch_ref_s / epoch_bat_s;
  const double dtw_speedup = dtw_pruned_cps / dtw_full_cps;
  const double quant8_speedup = infer_q8_sps / infer_fp64_sps;
  const double quant16_speedup = infer_q16_sps / infer_fp64_sps;
  const double gbt_speedup = gbt_fused_rps / gbt_ref_rps;

  TextTable table({"stage", "reference", "fast", "speedup", "bit-identical"});
  table.add_row({"lstm epoch (s)", TextTable::num(epoch_ref_s, 3),
                 TextTable::num(epoch_bat_s, 3),
                 TextTable::num(epoch_speedup, 2) + "x", train_ok ? "yes" : "NO"});
  table.add_row({"attack (iter/s)", TextTable::num(attack_ref_ips, 1),
                 TextTable::num(attack_fast_ips, 1),
                 TextTable::num(attack_speedup, 2) + "x",
                 attack_ok ? "yes" : "NO"});
  table.add_row({"dtw (call/s)", TextTable::num(dtw_full_cps, 1),
                 TextTable::num(dtw_pruned_cps, 1),
                 TextTable::num(dtw_speedup, 2) + "x", dtw_ok ? "yes" : "NO"});
  // The quant lanes trade bit-identity for the QuantGate's decision contract,
  // so their last column reports the gate, not bitwise equality.
  table.add_row({"lstm infer int8 (seq/s)", TextTable::num(infer_fp64_sps, 1),
                 TextTable::num(infer_q8_sps, 1),
                 TextTable::num(quant8_speedup, 2) + "x",
                 gate8.pass ? "gate pass" : "GATE FAIL"});
  table.add_row({"lstm infer int16 (seq/s)", TextTable::num(infer_fp64_sps, 1),
                 TextTable::num(infer_q16_sps, 1),
                 TextTable::num(quant16_speedup, 2) + "x",
                 gate16.pass ? "gate pass" : "GATE FAIL"});
  table.add_row({"gbt score (row/s)", TextTable::num(gbt_ref_rps, 1),
                 TextTable::num(gbt_fused_rps, 1),
                 TextTable::num(gbt_speedup, 2) + "x", gbt_ok ? "yes" : "NO"});
  table.print(std::cout);
  std::printf("\ntrain checksum ref/batched = %s / %s\n",
              train_ref_digest.hex().c_str(), train_bat_digest.hex().c_str());
  std::printf("batched at %zu thread(s)   = %s (%s)\n", parallel_threads,
              train_mt_digest.hex().c_str(),
              threads_ok ? "thread-count invariant" : "DIVERGED");
  std::printf("attack checksum ref/fast   = %s / %s\n",
              attack_ref_digest.hex().c_str(), attack_fast_digest.hex().c_str());
  std::printf("dtw checksum full/pruned   = %s / %s\n",
              dtw_full_digest.hex().c_str(), dtw_pruned_digest.hex().c_str());
  std::printf("gbt checksum ref/fused     = %s / %s\n",
              gbt_ref_digest.hex().c_str(), gbt_fused_digest.hex().c_str());
  std::printf("quant gate int8/int16      = max logit delta %.2e / %.2e, "
              "disagreements %zu / %zu, verdict checksum %016llx\n",
              gate8.max_abs_logit_delta, gate16.max_abs_logit_delta,
              gate8.disagreements, gate16.disagreements,
              static_cast<unsigned long long>(gate8.verdict_checksum));

  // Emitted atomically (temp + rename): a crash or a concurrent reader can
  // see the previous complete report or the new one, never a torn JSON.
  char json[4096];
  std::snprintf(json, sizeof json,
                "{\n"
                "  \"lstm_epoch_s_reference\": %.6f,\n"
                "  \"lstm_epoch_s_batched\": %.6f,\n"
                "  \"lstm_epoch_speedup\": %.3f,\n"
                "  \"attack_iters_per_sec_reference\": %.3f,\n"
                "  \"attack_iters_per_sec_fast\": %.3f,\n"
                "  \"attack_speedup\": %.3f,\n"
                "  \"dtw_calls_per_sec_full\": %.3f,\n"
                "  \"dtw_calls_per_sec_pruned\": %.3f,\n"
                "  \"dtw_speedup\": %.3f,\n"
                "  \"lstm_infer_seqs_per_sec_fp64\": %.3f,\n"
                "  \"lstm_infer_seqs_per_sec_int8\": %.3f,\n"
                "  \"lstm_infer_seqs_per_sec_int16\": %.3f,\n"
                "  \"quant_int8_speedup\": %.3f,\n"
                "  \"quant_int16_speedup\": %.3f,\n"
                "  \"quant_int8_max_logit_delta\": %.6e,\n"
                "  \"quant_int16_max_logit_delta\": %.6e,\n"
                "  \"quant_verdict_checksum\": \"%016llx\",\n"
                "  \"quant_gate_pass\": %s,\n"
                "  \"gbt_rows_per_sec_reference\": %.3f,\n"
                "  \"gbt_rows_per_sec_fused\": %.3f,\n"
                "  \"gbt_speedup\": %.3f,\n"
                "  \"gbt_bit_identical\": %s,\n"
                "  \"train_checksum\": \"%s\",\n"
                "  \"attack_checksum\": \"%s\",\n"
                "  \"dtw_checksum\": \"%s\",\n"
                "  \"bit_identical\": %s,\n"
                "  \"thread_invariant\": %s\n"
                "}\n",
                epoch_ref_s, epoch_bat_s, epoch_speedup, attack_ref_ips,
                attack_fast_ips, attack_speedup, dtw_full_cps, dtw_pruned_cps,
                dtw_speedup, infer_fp64_sps, infer_q8_sps, infer_q16_sps,
                quant8_speedup, quant16_speedup, gate8.max_abs_logit_delta,
                gate16.max_abs_logit_delta,
                static_cast<unsigned long long>(gate8.verdict_checksum),
                quant_ok ? "true" : "false", gbt_ref_rps, gbt_fused_rps,
                gbt_speedup, gbt_ok ? "true" : "false",
                train_bat_digest.hex().c_str(),
                attack_fast_digest.hex().c_str(), dtw_pruned_digest.hex().c_str(),
                train_ok && attack_ok && dtw_ok && gbt_ok ? "true" : "false",
                threads_ok ? "true" : "false");
  if (trajkit::durable::write_file_atomic("BENCH_nn.json", json)) {
    std::printf("\nwrote BENCH_nn.json\n");
  }

  if (!(train_ok && attack_ok && dtw_ok && threads_ok && gbt_ok)) {
    std::printf("FAILED: fast paths are not bit-identical\n");
    return 1;
  }
  if (!quant_ok) {
    std::printf("FAILED: quantized lanes did not pass the QuantGate\n");
    return 1;
  }
  return 0;
}
