// Defense comparison — the arms race the paper narrates, measured.
//
// Four server-side defenses against three attacker tiers:
//   defenses: rule-based plausibility (He/Polakis style), the server-side
//             replay-DTW traversal, a coarse RSSI-signature check (Zhang
//             style), and the paper's RPD/Phi RSSI detector;
//   attacks:  naive replay (+N(0,0.25) noise), the C&W-style adversarial
//             replay at MinD (with replayed +-1 dB scans), a no-history
//             fabrication (invented scans on a navigation route), and — as
//             control — genuine fresh uploads (false-positive rate).
//
// Expected story (the paper's): rules catch nothing that moves plausibly;
// the replay check kills naive replays but not the MinD-targeted forgery;
// the coarse signature misses slight-noise replays but nails fabricated
// scans; only the RPD detector catches the adversarial tier.
//
// The replay threshold is the *measured* MinD of this simulated world (the
// attacker calibrates against the same world), not the paper's 1.2 — using a
// threshold above the world's own same-route bound floods the check with
// false positives.
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto total = static_cast<std::size_t>(flags.get_int("total", 700));
  const auto probes = static_cast<std::size_t>(flags.get_int("probes", 120));
  const std::size_t points = 30;
  const double interval_s = 2.0;
  const Mode mode = Mode::kWalking;

  std::printf("== defense baselines vs attacker tiers (walking, %zu history, "
              "%zu probes per cell) ==\n\n",
              total, probes);

  core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
  Rng& rng = scenario.rng();

  // Calibrate the replay threshold to this world's same-route lower bound.
  const auto mind = attack::estimate_mind(scenario.simulator(), mode, 150.0, 20,
                                          points, interval_s, rng);
  const double min_d = mind.min_d;
  std::printf("measured MinD on this world: %.2f m/step (paper: %.1f)\n\n", min_d,
              attack::paper_mind(mode));

  // Provider state: scanned history, reference index, trained detectors.
  const auto history = scenario.scanned_real(total, points, interval_s);
  std::vector<wifi::ReferencePoint> refs;
  baseline::ReplayDetector replay_check({.min_d = min_d});
  for (std::size_t t = 0; t < history.size(); ++t) {
    const auto pts = history[t].reported.to_enu(sim::sim_projection());
    replay_check.add_history(pts);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      refs.push_back({pts[i], history[t].scans[i], static_cast<std::uint32_t>(t)});
    }
  }
  const auto rules = baseline::RuleBasedDetector::for_mode(mode);
  const wifi::ReferenceIndex sig_index(refs);  // copy for the coarse check
  const baseline::RssiSimilarityDetector signature(sig_index, {});

  wifi::RssiDetectorConfig det_cfg;
  det_cfg.confidence.reference_radius_m = 2.5;
  wifi::RssiDetector rpd_detector(std::move(refs), det_cfg);
  {
    // Train the RPD detector with the standard protocol split.
    std::vector<wifi::ScannedUpload> train;
    std::vector<int> labels;
    const std::size_t real_count = total * 3 / 4;
    for (std::size_t i = 0; i < real_count; ++i) {
      auto upload = core::to_upload(history[i]);
      upload.source_traj_id = static_cast<std::uint32_t>(i);
      train.push_back(std::move(upload));
      labels.push_back(1);
    }
    for (std::size_t i = real_count; i < total; ++i) {
      train.push_back(core::forge_upload(history[i], min_d + 0.1, 1, rng));
      labels.push_back(0);
      train.push_back(core::forge_upload(history[i], 3.0, 1, rng));
      labels.push_back(0);
    }
    rpd_detector.train(train, labels);
  }

  // One probe: an upload plus ground truth; returns flags per defense.
  struct Flags {
    std::size_t rules = 0, replay = 0, signature = 0, rpd = 0;
  };
  auto judge = [&](const sim::ScannedTrajectory& source, int tier, Flags& flags) {
    wifi::ScannedUpload upload;
    if (tier == 0) {  // genuine fresh upload
      upload = core::to_upload(source);
    } else if (tier == 1) {  // naive replay
      upload = core::to_upload(source);
      upload.positions = attack::naive_noise_attack(upload.positions, rng);
      for (auto& scan : upload.scans) {
        for (auto& obs : scan) {
          obs.rssi_dbm += static_cast<int>(rng.uniform_int(-1, 1));
        }
      }
    } else if (tier == 2) {  // adversarial replay at MinD
      upload = core::forge_upload(source, min_d + 0.1, 1, rng);
    } else {  // no-history fabrication: invented scans on a navigation route
      const auto nav =
          scenario.simulator().navigation_trajectory(mode, points, interval_s, rng);
      upload.positions = attack::naive_noise_attack(
          nav.reported.to_enu(sim::sim_projection()), rng);
      upload.scans.resize(points);
      for (auto& scan : upload.scans) {
        for (int a = 0; a < 10; ++a) {
          scan.push_back({rng.next(), static_cast<int>(rng.uniform_int(-75, -40))});
        }
      }
    }
    const auto traj = Trajectory::from_enu(upload.positions, sim::sim_projection(),
                                           mode, interval_s);
    flags.rules += rules.verify(traj, sim::sim_projection()) == 0;
    flags.replay += replay_check.verify(upload.positions) == 0;
    flags.signature += signature.verify(upload.positions, upload.scans) == 0;
    flags.rpd += rpd_detector.analyze(upload).verdict == 0;
  };

  const char* tier_names[4] = {"genuine upload (false-positive rate)",
                               "naive replay (+noise, replayed RSSI)",
                               "adversarial replay at MinD",
                               "no-history fabrication"};
  TextTable table({"attacker tier", "rules", "replay-DTW", "coarse RSSI",
                   "RPD detector (paper)"});
  for (int tier = 0; tier < 4; ++tier) {
    Flags flags;
    for (std::size_t i = 0; i < probes; ++i) {
      if (tier == 0 || tier == 3) {
        const auto fresh = scenario.scanned_real(1, points, interval_s).front();
        judge(fresh, tier, flags);
      } else {
        const auto& source = history[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(history.size()) - 1))];
        judge(source, tier, flags);
      }
    }
    auto pct = [&](std::size_t c) {
      return TextTable::num(100.0 * static_cast<double>(c) /
                            static_cast<double>(probes), 1) + "%";
    };
    table.add_row({tier_names[tier], pct(flags.rules), pct(flags.replay),
                   pct(flags.signature), pct(flags.rpd)});
    std::printf("tier '%s' done\n", tier_names[tier]);
  }
  std::printf("\n%% of uploads flagged as forged:\n");
  table.print(std::cout);
  std::printf("\nexpected shape: rules flag ~nothing; replay-DTW kills naive "
              "replays only; the coarse signature misses slight-noise replays "
              "but nails fabrications; the RPD detector is the only defense "
              "catching the adversarial tier (at a modest false-positive "
              "cost).\n");
  return 0;
}
