// Attack comparison — what the C&W machinery buys over classic gradient
// attacks (beyond the paper).
//
// FGSM, PGD and the paper's C&W replay attack forge from the same pool of
// historical trajectories against the same target model.  Reported per
// attack: escape rate vs the target model C, transfer escape vs XGBoost,
// normalised DTW to the history, the share of forgeries sitting *above* MinD
// (i.e. surviving the server-side replay-DTW traversal), and wall time.
//
// Expected: FGSM/PGD cross the decision boundary cheaply but land at
// near-zero DTW — instantly flagged as replays; only C&W's Eq. 2 places the
// forgery in the narrow band that beats both checks.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto attacks = static_cast<std::size_t>(flags.get_int("attacks", 25));

  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  core::MotionDatasetConfig dcfg;
  dcfg.train_real = flags.get_int("train_real", 400);
  dcfg.train_fake = flags.get_int("train_fake", 240);
  dcfg.test_real = 20;
  dcfg.test_fake = 20;
  dcfg.points = flags.get_int("points", 48);
  core::MotionModelConfig mcfg;
  mcfg.hidden = 32;
  mcfg.epochs = 32;

  std::printf("== attack baselines: FGSM vs PGD vs C&W (replay scenario, %zu "
              "attacks each) ==\n\n",
              attacks);
  std::printf("training target model C (+ transfer XGBoost)...\n");
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  const core::MotionModels models(dataset, mcfg);
  const double min_d = attack::paper_mind(Mode::kWalking);

  // Shared attack pool: noisy replays the model flags as fake (the situation
  // every attack must fix).
  std::vector<std::vector<Enu>> pool;
  std::vector<std::vector<Enu>> references;
  while (pool.size() < attacks) {
    auto hist = scenario.real_trajectories(1, dcfg.points, 1.0)
                    .front()
                    .reported.to_enu(sim::sim_projection());
    references.push_back(hist);
    pool.push_back(std::move(hist));
  }

  const attack::GradientAttacker gradient(models.model_c(),
                                          models.dist_angle_encoder(), {});
  attack::CwConfig cw_cfg;
  cw_cfg.iterations = flags.get_int("iterations", 350);
  const attack::CwAttacker cw(models.model_c(), models.dist_angle_encoder(), cw_cfg);

  struct Row {
    const char* name;
    std::size_t escapes_c = 0;
    std::size_t escapes_xgb = 0;
    std::size_t above_mind = 0;
    double dtw_total = 0.0;
    double seconds = 0.0;
  };
  Row rows[3] = {{"FGSM"}, {"PGD"}, {"C&W (paper)"}};

  auto account = [&](Row& row, const std::vector<Enu>& points,
                     const std::vector<Enu>& reference, bool adversarial) {
    row.escapes_c += adversarial;
    core::MotionSample sample;
    sample.points = points;
    sample.trajectory =
        Trajectory::from_enu(points, sim::sim_projection(), Mode::kWalking, 1.0);
    row.escapes_xgb += models.predict("XGBoost", sample) == 1;
    const double d = dtw_normalized(reference, points);
    row.dtw_total += d;
    row.above_mind += d >= min_d;
  };

  for (std::size_t i = 0; i < attacks; ++i) {
    const auto& reference = references[i];
    auto timed = [&](auto&& fn, Row& row) {
      const auto start = std::chrono::steady_clock::now();
      fn();
      row.seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
    };
    timed([&] {
      const auto r = gradient.fgsm(reference);
      account(rows[0], r.points, reference, r.adversarial);
    }, rows[0]);
    timed([&] {
      const auto r = gradient.pgd(reference);
      account(rows[1], r.points, reference, r.adversarial);
    }, rows[1]);
    timed([&] {
      const auto r = cw.forge_replay(reference, min_d);
      account(rows[2], r.points, reference, r.adversarial);
    }, rows[2]);
  }

  TextTable table({"attack", "escapes C", "escapes XGBoost", "DTW/step (m)",
                   "above MinD", "ms/attack"});
  for (const auto& row : rows) {
    const double inv = 1.0 / static_cast<double>(attacks);
    auto pct = [&](std::size_t c) {
      return TextTable::num(100.0 * static_cast<double>(c) * inv, 0) + "%";
    };
    table.add_row({row.name, pct(row.escapes_c), pct(row.escapes_xgb),
                   TextTable::num(row.dtw_total * inv, 2), pct(row.above_mind),
                   TextTable::num(row.seconds * inv * 1000.0, 1)});
  }
  table.print(std::cout);
  std::printf("\nexpected: all attacks escape C; only C&W also clears the MinD "
              "replay bar while staying route-rational.\n");
  return 0;
}
