// Fig. 3 — Variation curve with the number of C&W iterations.
//
// Paper (Sec. IV-A3): run the C&W attack on a navigation trajectory and track
// (a) when adversarial examples first appear (paper: after ~400 iterations at
// their model size), (b) how DTW(T, T') falls rapidly and then plateaus
// (paper: slope flattens past ~1,500), and (c) how wall time grows linearly
// with iterations.
//
//   --iterations=5000 --trajectories=10 to match the paper's sweep length.
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));

  core::MotionDatasetConfig dcfg;
  dcfg.train_real = flags.get_int("train_real", 400);
  dcfg.train_fake = flags.get_int("train_fake", 240);
  dcfg.test_real = 20;
  dcfg.test_fake = 20;
  dcfg.points = flags.get_int("points", 48);

  core::MotionModelConfig mcfg;
  mcfg.hidden = flags.get_int("hidden", 32);
  mcfg.epochs = flags.get_int("epochs", 32);

  const auto iterations = static_cast<std::size_t>(flags.get_int("iterations", 1200));
  const auto trajectories = static_cast<std::size_t>(flags.get_int("trajectories", 4));

  std::printf("== Fig. 3: C&W iteration count vs time cost and DTW(T,T') ==\n");
  std::printf("navigation scenario, %zu trajectories, up to %zu iterations\n\n",
              trajectories, iterations);

  std::printf("training target model C...\n");
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  const core::MotionModels models(dataset, mcfg);

  attack::CwConfig cw_cfg;
  cw_cfg.iterations = iterations;
  cw_cfg.history_stride = std::max<std::size_t>(1, iterations / 24);
  const attack::CwAttacker attacker(models.model_c(), models.dist_angle_encoder(),
                                    cw_cfg);

  // Average the telemetry over several navigation references.
  std::vector<double> time_sum;
  std::vector<double> dtw_sum;
  std::vector<double> best_sum;
  std::vector<double> best_count;
  std::vector<double> preal_sum;
  std::vector<std::size_t> iter_axis;
  std::vector<std::size_t> first_adv;

  Rng noise_rng(4242);
  for (std::size_t t = 0; t < trajectories; ++t) {
    // The AN trajectories go through the naive attack first (Sec. IV-A2), so
    // the reference the C&W run starts from is the noisy navigation sample.
    const auto nav = attack::naive_noise_attack(
        scenario.navigation_trajectories(1, dcfg.points, 1.0)
            .front()
            .reported.to_enu(sim::sim_projection()),
        noise_rng);
    const auto result = attacker.forge_navigation(nav);
    if (result.first_adversarial_iteration != attack::kNeverAdversarial) {
      first_adv.push_back(result.first_adversarial_iteration);
    }
    if (time_sum.empty()) {
      time_sum.assign(result.history.size(), 0.0);
      dtw_sum.assign(result.history.size(), 0.0);
      best_sum.assign(result.history.size(), 0.0);
      best_count.assign(result.history.size(), 0.0);
      preal_sum.assign(result.history.size(), 0.0);
      for (const auto& h : result.history) iter_axis.push_back(h.iteration);
    }
    for (std::size_t i = 0; i < result.history.size() && i < time_sum.size(); ++i) {
      time_sum[i] += result.history[i].seconds;
      dtw_sum[i] += result.history[i].dtw_norm;
      preal_sum[i] += result.history[i].p_real;
      if (result.history[i].best_dtw >= 0.0) {
        best_sum[i] += result.history[i].best_dtw;
        best_count[i] += 1.0;
      }
    }
  }

  TextTable table({"iterations", "time_cost_s", "DTW_iterate", "best_adv_DTW",
                   "found", "p(real)"});
  const double inv = 1.0 / static_cast<double>(trajectories);
  for (std::size_t i = 0; i < iter_axis.size(); ++i) {
    const std::string best =
        best_count[i] > 0 ? TextTable::num(best_sum[i] / best_count[i], 3) : "-";
    table.add_row({std::to_string(iter_axis[i]), TextTable::num(time_sum[i] * inv, 3),
                   TextTable::num(dtw_sum[i] * inv, 3), best,
                   TextTable::num(best_count[i] * inv, 2),
                   TextTable::num(preal_sum[i] * inv, 3)});
  }
  table.print(std::cout);

  if (!first_adv.empty()) {
    std::printf("\nfirst adversarial example found after %.0f iterations on average "
                "(paper: ~400 at their model scale)\n",
                mean(std::vector<double>(first_adv.begin(), first_adv.end())));
  } else {
    std::printf("\nno adversarial examples found — increase --iterations\n");
  }
  std::printf("paper (Fig. 3): DTW drops fast then plateaus past ~1,500 iterations; "
              "time grows linearly.\n");
  return 0;
}
