// Table IV — Performance of the RSSI detection scheme at r = 2.5 m.
//
// Paper numbers: walking 0.98/0.9286/0.975/0.9512,
//                cycling 0.96/0.8636/0.95/0.9048,
//                driving 0.94/0.8085/0.9268/0.8636
// (accuracy / precision / recall / F1; positive class = forged).
//
// Rescale with --total=5000 to approach the paper's data volume.
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto total = static_cast<std::size_t>(flags.get_int("total", 1500));

  std::printf("== Table IV: RSSI forgery detection at r = 2.5 m ==\n");
  std::printf("%zu trajectories per scenario (paper: 5,000)\n\n", total);

  TextTable table({"", "Accuracy", "Precision", "Recall", "F1-score", "AUC",
                   "avg k", "refs/pt"});
  for (Mode mode : kAllModes) {
    core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
    core::RssiExperimentConfig cfg;
    cfg.total = total;
    cfg.reference_radius_m = flags.get_double("r", 2.5);
    cfg.top_k = static_cast<std::size_t>(flags.get_int("topk", 8));
    std::printf("running %s...\n", mode_name(mode));
    const auto result = core::run_rssi_experiment(scenario, cfg);
    std::string mode_title = mode_name(mode);
    mode_title[0] = static_cast<char>(std::toupper(mode_title[0]));
    table.add_row({mode_title, TextTable::num(result.confusion.accuracy(), 2),
                   TextTable::num(result.confusion.precision(), 4),
                   TextTable::num(result.confusion.recall(), 4),
                   TextTable::num(result.confusion.f1(), 4),
                   TextTable::num(result.auc, 3),
                   TextTable::num(result.avg_k, 1),
                   TextTable::num(result.avg_refs_per_point, 1)});
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\npaper (Table IV): Walking 0.98/0.9286/0.975/0.9512, Cycling "
              "0.96/0.8636/0.95/0.9048, Driving 0.94/0.8085/0.9268/0.8636\n");
  return 0;
}
