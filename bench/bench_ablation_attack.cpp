// Ablation — design choices of the C&W trajectory forgery.
//
// Variants on the replay scenario against the same target model:
//   baseline          : adaptive lambda, smooth init (correlation 0.997)
//   rough init        : correlation 0.9 displacement field — still fools the
//                       target model, but its acceleration statistics leak to
//                       the transfer models (the Table II insight)
//   fixed small lambda: lambda pinned low (route term dominates)
//   fixed large lambda: lambda pinned high (classifier term dominates)
//   fewer iterations  : 100 instead of 350
//   no MinD floor     : plain DTW minimisation (loss2 -> DTW), which makes
//                       the forgery collapse onto the historical trace and
//                       become a detectable replay
// Reported: C&W success rate, mean normalised DTW, share of results above
// MinD (valid replays), and the share detected by the unseen XGBoost model
// (transferability).
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto attacks = static_cast<std::size_t>(flags.get_int("attacks", 15));

  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  core::MotionDatasetConfig dcfg;
  dcfg.train_real = flags.get_int("train_real", 400);
  dcfg.train_fake = flags.get_int("train_fake", 240);
  dcfg.test_real = 20;
  dcfg.test_fake = 20;
  dcfg.points = flags.get_int("points", 48);
  core::MotionModelConfig mcfg;
  mcfg.hidden = 32;
  mcfg.epochs = 32;

  std::printf("== Ablation: C&W forgery design choices (%zu replay attacks each) "
              "==\n\n",
              attacks);
  std::printf("training target model C...\n");
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  const core::MotionModels models(dataset, mcfg);
  const double min_d = attack::paper_mind(Mode::kWalking);

  struct Variant {
    const char* name;
    attack::CwConfig cfg;
    double min_d;
  };
  attack::CwConfig base;
  base.iterations = 350;

  std::vector<Variant> variants;
  variants.push_back({"baseline (smooth init 0.997)", base, min_d});
  {
    auto cfg = base;
    cfg.init_correlation = 0.9;
    variants.push_back({"rough init (correlation 0.9)", cfg, min_d});
  }
  {
    auto cfg = base;
    cfg.lambda_init = 0.1;
    cfg.lambda_up = 1.0;
    cfg.lambda_down = 1.0;
    variants.push_back({"fixed lambda = 0.1", cfg, min_d});
  }
  {
    auto cfg = base;
    cfg.lambda_init = 1000.0;
    cfg.lambda_up = 1.0;
    cfg.lambda_down = 1.0;
    variants.push_back({"fixed lambda = 1000", cfg, min_d});
  }
  {
    auto cfg = base;
    cfg.iterations = 100;
    variants.push_back({"100 iterations", cfg, min_d});
  }
  variants.push_back({"no MinD floor (min_d = 0)", base, 1e-6});

  // One shared pool of historical trajectories so variants are comparable.
  std::vector<std::vector<Enu>> pool;
  for (std::size_t i = 0; i < attacks; ++i) {
    pool.push_back(scenario.real_trajectories(1, dcfg.points, 1.0)
                       .front()
                       .reported.to_enu(sim::sim_projection()));
  }

  TextTable table({"variant", "adversarial", "mean DTW/step (m)", "above MinD",
                   "caught by XGBoost"});
  for (const auto& v : variants) {
    const attack::CwAttacker attacker(models.model_c(), models.dist_angle_encoder(),
                                      v.cfg);
    std::size_t adversarial = 0;
    std::size_t above = 0;
    std::size_t xgb_caught = 0;
    double dtw_total = 0.0;
    for (const auto& hist : pool) {
      const auto r = attacker.forge_replay(hist, v.min_d);
      adversarial += r.adversarial;
      above += r.dtw_norm >= min_d;
      dtw_total += r.dtw_norm;
      core::MotionSample sample;
      sample.points = r.points;
      sample.trajectory = Trajectory::from_enu(r.points, sim::sim_projection(),
                                               Mode::kWalking, 1.0);
      xgb_caught += models.predict("XGBoost", sample) == 0;
    }
    table.add_row({v.name,
                   TextTable::num(100.0 * static_cast<double>(adversarial) /
                                  static_cast<double>(attacks), 0) + "%",
                   TextTable::num(dtw_total / static_cast<double>(attacks), 2),
                   TextTable::num(100.0 * static_cast<double>(above) /
                                  static_cast<double>(attacks), 0) + "%",
                   TextTable::num(100.0 * static_cast<double>(xgb_caught) /
                                  static_cast<double>(attacks), 0) + "%"});
    std::printf("  %-28s adversarial=%zu/%zu xgb_caught=%zu\n", v.name, adversarial,
                attacks, xgb_caught);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nexpected: baseline succeeds with DTW just above MinD and minimal "
              "XGBoost transfer detection; the rough init leaks to XGBoost; no "
              "MinD floor collapses onto the historical trace (detectable "
              "replay).\n");
  return 0;
}
