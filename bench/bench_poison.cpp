// Poisoning-resistance benchmark: coordinated uploaders vs the provenance +
// reputation + robust-aggregation defense, swept over the poisoned-uploader
// fraction.
//
//   bench_poison --history=600 --area=30 --uploaders=20 --flood=40
//                --shift=15 --probes=32 --threads=1
//
// The attack is the cell-shift flood the adversarial test battery pins
// (tests/poison_test.cpp): an honest crowd seeds the durable CrowdStore with
// the analytic linear field, then each poisoner floods a patch of cells with
// observations whose RSSIs are read `shift` metres east of the claimed
// position — the forged-history analogue of the paper's GPS forgery, aimed
// at the reference store instead of a single upload.  For each poisoned
// fraction the bench measures:
//
//   * detection: every poisoner must end auto-quarantined, no honest
//     uploader may, and the rank AUC of reputation scores (honest vs
//     poisoner) is reported;
//   * honest-accuracy regression: verdict accuracy of a detector assembled
//     from trusted_points() (the robust/quarantine path) must stay within
//     one percentage point of the clean-store detector on the same probe
//     mix, at every swept fraction — while the undefended mean path (a
//     detector assembled from all points, poison included) is reported for
//     contrast;
//   * oracle equivalence: with trimming disabled the robust aggregator must
//     answer bitwise from the pooled per-cell accumulators over the whole
//     poisoned grid (the trim = 0 exact-mean contract).
//
// Exit code 0 iff detection is perfect, the robust regression bound holds
// and the trim = 0 path is bit-identical at every fraction; the mean path's
// degradation is reported, not asserted (how far it falls depends on probe
// overlap with the patch — the contract is that the robust path does not
// follow it).  BENCH_poison.json records everything, written atomically.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/durable/durable_file.hpp"
#include "common/rng.hpp"
#include "core/trajkit.hpp"
#include "support/fixtures.hpp"
#include "wifi/crowd_store.hpp"
#include "wifi/detector.hpp"
#include "wifi/provenance.hpp"

using namespace trajkit;
namespace ts = trajkit::test_support;

namespace {

void remove_store(const std::string& dir) {
  for (const char* name : {"/crowd.snapshot", "/crowd.snapshot.tmp",
                           "/crowd.journal", "/crowd.journal.tmp"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
}

/// Fraction of probes whose verdict matches the ground-truth label.
double accuracy(const wifi::RssiDetector& detector,
                const std::vector<wifi::ScannedUpload>& probes) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const int expected = i % 2 == 0 ? 1 : 0;  // probe_mix alternates, real first
    if (detector.analyze(probes[i]).verdict == expected) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(probes.size());
}

/// Rank AUC of reputation scores: P(honest score > poisoner score), ties 0.5.
double reputation_auc(const wifi::CrowdStore& store,
                      const std::vector<wifi::UploaderId>& honest,
                      const std::vector<wifi::UploaderId>& poisoners) {
  if (honest.empty() || poisoners.empty()) return 1.0;
  double wins = 0.0;
  for (const auto h : honest) {
    const double hs = store.reputation().record(h).score;
    for (const auto p : poisoners) {
      const double ps = store.reputation().record(p).score;
      if (hs > ps) wins += 1.0;
      else if (hs == ps) wins += 0.5;
    }
  }
  return wins / static_cast<double>(honest.size() * poisoners.size());
}

/// True iff the trim = 0 robust estimate is bit-identical to the pooled
/// ApCellStats::mean() for every (cell, AP) of the store.
bool trim_zero_bitwise_equal(const wifi::CrowdStore& store) {
  const wifi::RobustCellAggregator agg(store.cell_stats(), store.provenance(),
                                       {0.0, 2});
  const auto& pooled = store.cell_stats();
  for (const auto& [key, cell] : pooled.cells()) {
    const Enu probe{(static_cast<double>(key.first) + 0.5) * pooled.cell_size_m(),
                    (static_cast<double>(key.second) + 0.5) * pooled.cell_size_m()};
    for (const auto& [mac, stats] : cell.aps) {
      double estimate = 0.0;
      if (!agg.estimate(probe, mac, &estimate)) return false;
      const double oracle = stats.mean();
      if (std::memcmp(&estimate, &oracle, sizeof estimate) != 0) return false;
    }
  }
  return true;
}

struct SweepResult {
  double fraction = 0.0;
  std::size_t poisoners = 0;
  std::size_t poison_points = 0;
  std::size_t quarantined = 0;
  bool detection_exact = false;  ///< quarantined set == poisoner set
  double auc = 1.0;
  double acc_mean = 0.0;    ///< detector over all points (undefended)
  double acc_robust = 0.0;  ///< detector over trusted_points()
  double regression = 0.0;  ///< |acc_robust - clean accuracy|
  bool trim0_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);  // wires --threads into set_global_threads
  const auto history = static_cast<int>(flags.get_int("history", 600));
  const double area_m = flags.get_double("area", 30.0);
  const auto uploaders = static_cast<std::size_t>(flags.get_int("uploaders", 20));
  const auto flood = static_cast<std::size_t>(flags.get_int("flood", 40));
  const double shift_m = flags.get_double("shift", 15.0);
  const auto probe_count = static_cast<std::size_t>(flags.get_int("probes", 32));
  const double patch_m = flags.get_double("patch", 12.0);
  const std::string store_dir = "bench_poison_store";
  const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3};

  std::printf("== Crowd poisoning: provenance + reputation vs coordinated floods ==\n");
  std::printf("%d honest points over %.0fm x %.0fm from %zu uploaders; poisoners "
              "flood %zu shifted scans each (%.0fm cell shift); %zu probes\n\n",
              history, area_m, area_m, uploaders, flood, shift_m, probe_count);

  ts::LinearWorldConfig world_cfg;
  world_cfg.area_m = area_m;
  world_cfg.history_points = history;
  ts::LinearFieldWorld world(world_cfg);
  const auto& oracle_like = world.detector();
  const auto probes = world.probe_mix(probe_count);
  const double acc_clean = accuracy(oracle_like, probes);

  // The flooded patch sits in the middle of the area, inside the upload
  // envelope, so real probes do cross it — the undefended mean path has
  // something to get wrong.
  const double patch_lo = (area_m - patch_m) / 2.0;

  std::vector<SweepResult> results;
  bool all_detected = true;
  bool all_within_bound = true;
  bool all_trim0 = true;

  for (std::size_t step = 0; step < fractions.size(); ++step) {
    const double fraction = fractions[step];
    const auto poisoner_count =
        static_cast<std::size_t>(fraction * static_cast<double>(uploaders) + 0.5);
    const std::size_t honest_count = uploaders - poisoner_count;

    remove_store(store_dir);
    auto store = wifi::CrowdStore::open(store_dir, /*sync_each_append=*/false);
    if (!store) {
      std::fprintf(stderr, "store: %s\n", store.error().c_str());
      return 1;
    }

    // Honest crowd: the trained world's reference set, in index order,
    // attributed round-robin to the honest uploader ids.
    std::vector<wifi::UploaderId> honest_ids;
    for (std::size_t u = 0; u < honest_count; ++u) {
      honest_ids.push_back(static_cast<wifi::UploaderId>(1 + u));
    }
    for (std::size_t i = 0; i < oracle_like.index().size(); ++i) {
      auto seq = store.value()->append(oracle_like.index()[i],
                                       honest_ids[i % honest_ids.size()]);
      if (!seq) {
        std::fprintf(stderr, "append: %s\n", seq.error().c_str());
        return 1;
      }
    }

    // Coordinated flood: every poisoner reports the patch as it would look
    // `shift_m` further east — consistent forged physics, the hard case for
    // outlier rejection on a single observation.
    std::vector<wifi::UploaderId> poisoner_ids;
    SweepResult r;
    for (std::size_t p = 0; p < poisoner_count; ++p) {
      const auto uploader = static_cast<wifi::UploaderId>(1000 + p);
      poisoner_ids.push_back(uploader);
      Rng rng = Rng::substream(0x9015'0000 + step, p);
      for (std::size_t j = 0; j < flood; ++j) {
        const Enu pos{patch_lo + rng.uniform(0.0, patch_m),
                      patch_lo + rng.uniform(0.0, patch_m)};
        const Enu heard{pos.east + shift_m, pos.north};
        auto seq = store.value()->append(
            {pos,
             {{1, ts::LinearFieldWorld::field_rssi(heard)}},
             static_cast<std::uint32_t>(900000 + p)},
            uploader);
        if (!seq) {
          std::fprintf(stderr, "poison append: %s\n", seq.error().c_str());
          return 1;
        }
        ++r.poison_points;
      }
    }

    r.fraction = fraction;
    r.poisoners = poisoner_count;
    r.quarantined = store.value()->reputation().quarantined().size();
    r.detection_exact = r.quarantined == poisoner_count;
    for (const auto u : poisoner_ids) {
      r.detection_exact =
          r.detection_exact && store.value()->reputation().is_quarantined(u);
    }
    for (const auto u : honest_ids) {
      r.detection_exact =
          r.detection_exact && !store.value()->reputation().is_quarantined(u);
    }
    r.auc = reputation_auc(*store.value(), honest_ids, poisoner_ids);
    r.trim0_identical = trim_zero_bitwise_equal(*store.value());

    // Undefended mean path: the detector simply believes every point.
    const auto mean_detector = wifi::RssiDetector::assemble(
        store.value()->points(), oracle_like.config(), oracle_like.classifier(),
        oracle_like.trained_points());
    r.acc_mean = accuracy(*mean_detector, probes);

    // Defended path: quarantine holds the flood out of the serving set.
    const auto robust_detector = wifi::RssiDetector::assemble(
        store.value()->trusted_points(), oracle_like.config(),
        oracle_like.classifier(), oracle_like.trained_points());
    r.acc_robust = accuracy(*robust_detector, probes);
    r.regression = std::abs(r.acc_robust - acc_clean);

    all_detected = all_detected && r.detection_exact;
    all_within_bound = all_within_bound && r.regression <= 0.01;
    all_trim0 = all_trim0 && r.trim0_identical;
    results.push_back(r);
  }
  remove_store(store_dir);

  TextTable table({"poisoned", "poisoners", "flood pts", "quarantined", "AUC",
                   "acc clean", "acc mean", "acc robust", "regression",
                   "trim0 ="});
  for (const auto& r : results) {
    table.add_row({TextTable::num(r.fraction * 100.0, 0) + "%",
                   std::to_string(r.poisoners), std::to_string(r.poison_points),
                   std::to_string(r.quarantined),
                   r.poisoners ? TextTable::num(r.auc, 3) : "n/a",
                   TextTable::num(acc_clean, 3), TextTable::num(r.acc_mean, 3),
                   TextTable::num(r.acc_robust, 3),
                   TextTable::num(r.regression * 100.0, 2) + "pp",
                   r.trim0_identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::printf("\ndetection: %s\n",
              all_detected ? "OK (every poisoner quarantined, every honest "
                             "uploader trusted, at every fraction)"
                           : "FAILED (a poisoner escaped or an honest uploader "
                             "was quarantined!)");
  std::printf("robust accuracy: %s\n",
              all_within_bound
                  ? "OK (within 1pp of the clean store at every fraction)"
                  : "FAILED (the defended path regressed past the bound!)");
  std::printf("trim=0 oracle: %s\n",
              all_trim0 ? "OK (bitwise-equal to the pooled mean everywhere)"
                        : "FAILED (the exact-mean contract broke!)");

  std::string json = "{\n  \"history\": " + std::to_string(history);
  json += ",\n  \"uploaders\": " + std::to_string(uploaders);
  json += ",\n  \"probes\": " + std::to_string(probe_count);
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, ",\n  \"acc_clean\": %.6f", acc_clean);
    json += buf;
  }
  json += ",\n  \"sweep\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"fraction\": %.2f, \"poisoners\": %zu, "
                  "\"poison_points\": %zu, \"quarantined\": %zu, "
                  "\"detection_exact\": %s, \"auc\": %.4f, "
                  "\"acc_mean\": %.6f, \"acc_robust\": %.6f, "
                  "\"regression\": %.6f, \"trim0_identical\": %s}",
                  i == 0 ? "" : ",", r.fraction, r.poisoners, r.poison_points,
                  r.quarantined, r.detection_exact ? "true" : "false", r.auc,
                  r.acc_mean, r.acc_robust, r.regression,
                  r.trim0_identical ? "true" : "false");
    json += buf;
  }
  json += "\n  ],\n  \"detection_perfect\": ";
  json += all_detected ? "true" : "false";
  json += ",\n  \"robust_within_bound\": ";
  json += all_within_bound ? "true" : "false";
  json += ",\n  \"trim0_identical\": ";
  json += all_trim0 ? "true" : "false";
  json += "\n}\n";
  if (durable::write_file_atomic("BENCH_poison.json", json)) {
    std::printf("wrote BENCH_poison.json\n");
  }

  return all_detected && all_within_bound && all_trim0 ? 0 : 1;
}
