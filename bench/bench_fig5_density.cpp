// Fig. 5 — Influence of the reference-point density on detection accuracy.
//
// Paper: density = average reference points per square metre of the
// reference area; it is varied by randomly deleting reference points.
// Accuracy rises with density and exceeds 90% once density > 0.2 / m^2.
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto total = static_cast<std::size_t>(flags.get_int("total", 1000));
  const std::vector<double> keeps = {0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0};

  std::printf("== Fig. 5: detection accuracy vs reference point density ==\n");
  std::printf("%zu trajectories per scenario; density varied by deleting "
              "reference points\n\n",
              total);

  TextTable table({"keep", "Walking acc", "dens/m^2", "Cycling acc", "dens/m^2",
                   "Driving acc", "dens/m^2"});
  std::vector<std::vector<std::string>> rows(keeps.size());
  for (std::size_t i = 0; i < keeps.size(); ++i) {
    rows[i].push_back(TextTable::num(keeps[i], 2));
  }

  for (Mode mode : kAllModes) {
    core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
    core::RssiExperimentConfig cfg;
    cfg.total = total;
    const auto collected = core::collect_rssi_dataset(scenario, cfg);
    for (std::size_t i = 0; i < keeps.size(); ++i) {
      cfg.reference_keep = keeps[i];
      const auto result = core::run_rssi_experiment_on(scenario, collected, cfg);
      rows[i].push_back(TextTable::num(result.confusion.accuracy(), 3));
      rows[i].push_back(TextTable::num(result.ref_density_per_m2, 3));
      std::printf("  %s keep=%.2f -> density=%.3f/m^2 acc=%.3f\n", mode_name(mode),
                  keeps[i], result.ref_density_per_m2, result.confusion.accuracy());
    }
  }
  std::printf("\n");
  for (auto& row : rows) table.add_row(std::move(row));
  table.print(std::cout);
  std::printf("\npaper (Fig. 5): accuracy rises with density; > 90%% once density "
              "> 0.2/m^2.\n");
  return 0;
}
