// Indoor extension — the paper's future work, quantified.
//
// Sec. II-A defers indoor forgery/detection.  This bench runs both halves of
// the paper in an indoor shopping-mall world (corridor grid, multipath GPS
// with metres of error, dense short-range WiFi) and compares against the
// outdoor walking area:
//   * the motion classifier degrades (indoor GPS noise swamps the per-step
//     motion signal the LSTM keys on),
//   * the RSSI defense *improves* (denser APs, more structured shadowing) —
//     i.e. the paper's proposal is exactly the half that survives indoors.
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

namespace {

struct Outcome {
  double motion_acc = 0.0;
  double rssi_acc = 0.0;
  double rssi_auc = 0.0;
  double avg_k = 0.0;
  double gps_sigma = 0.0;
  double mind = 0.0;
};

Outcome run_world(core::ScenarioConfig cfg, std::size_t total, std::size_t points) {
  core::Scenario scenario(std::move(cfg));
  Outcome out;
  out.gps_sigma = scenario.config().gps.sigma_m;

  // The replay bound is world-specific: indoors the GPS error dominates the
  // same-route distance, so MinD (and therefore the distance any undetectable
  // replay must keep) grows with it.  The attacker and the experiment both
  // use the measured value.
  const auto mind = attack::estimate_mind(scenario.simulator(), Mode::kWalking,
                                          120.0, 20, points, 2.0, scenario.rng());
  out.mind = mind.min_d;

  core::MotionDatasetConfig dcfg;
  dcfg.train_real = 260;
  dcfg.train_fake = 160;
  dcfg.test_real = 60;
  dcfg.test_fake = 60;
  dcfg.points = 40;
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  core::MotionModelConfig mcfg;
  mcfg.hidden = 28;
  mcfg.epochs = 25;
  const core::MotionModels models(dataset, mcfg);
  const auto evals = core::evaluate_models(models, dataset.test);
  out.motion_acc = evals.front().confusion.accuracy();  // classifier C

  core::RssiExperimentConfig rcfg;
  rcfg.total = total;
  rcfg.points = points;
  rcfg.replay_offset_m = out.mind + 0.1;
  rcfg.navigation_offset_m = std::max(3.0, 2.0 * out.mind);
  const auto rssi = core::run_rssi_experiment(scenario, rcfg);
  out.rssi_acc = rssi.confusion.accuracy();
  out.rssi_auc = rssi.auc;
  out.avg_k = rssi.avg_k;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto total = static_cast<std::size_t>(flags.get_int("total", 700));

  std::printf("== indoor extension (paper future work): outdoor vs indoor "
              "walking ==\n\n");

  std::printf("running outdoor world...\n");
  const auto outdoor =
      run_world(core::ScenarioConfig::for_mode(Mode::kWalking), total, 30);
  std::printf("running indoor world...\n");
  const auto indoor = run_world(core::ScenarioConfig::indoor_walking(), total, 30);

  TextTable table({"world", "GPS sigma (m)", "MinD (m/step)", "motion clf acc (C)",
                   "RSSI acc", "RSSI AUC", "avg k"});
  table.add_row({"outdoor (area A)", TextTable::num(outdoor.gps_sigma, 1),
                 TextTable::num(outdoor.mind, 2),
                 TextTable::num(outdoor.motion_acc, 3),
                 TextTable::num(outdoor.rssi_acc, 3),
                 TextTable::num(outdoor.rssi_auc, 3),
                 TextTable::num(outdoor.avg_k, 1)});
  table.add_row({"indoor (mall floor)", TextTable::num(indoor.gps_sigma, 1),
                 TextTable::num(indoor.mind, 2),
                 TextTable::num(indoor.motion_acc, 3),
                 TextTable::num(indoor.rssi_acc, 3),
                 TextTable::num(indoor.rssi_auc, 3),
                 TextTable::num(indoor.avg_k, 1)});
  table.print(std::cout);
  std::printf("\nfindings: indoor GPS noise (i) degrades the motion classifier "
              "and (ii) inflates MinD — a replay only has to hide inside metres "
              "of GPS slack, so the claimed-position RSSI check loses most of "
              "its power too.  This quantifies *why* the paper scopes itself to "
              "outdoor trajectories: indoors, verification needs WiFi-"
              "fingerprint positioning instead of GPS-claimed positions.\n");
  return 0;
}
