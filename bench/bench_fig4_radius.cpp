// Fig. 4 — Influence of the reference radius r on detection accuracy.
//
// Paper: accuracy is irregular below r = 1 m (too few reference points),
// rises with r, peaks at r = 2.5 m, and flattens or dips beyond (irrelevant
// points start to vote).  One curve per scenario.
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto total = static_cast<std::size_t>(flags.get_int("total", 700));
  // The paper's curve is shaped by reference sparsity (their crowdsourced
  // density is ~0.2-0.5 points/m^2): below r = 1 m the reference circle is
  // usually EMPTY, which is what makes small radii unstable.  The collection
  // is thinned to that regime; at full simulated density every radius down to
  // 0.5 m still holds several points and small r trivially wins.
  const double keep = flags.get_double("keep", 0.12);
  const std::vector<double> radii = {0.5, 1.0, 1.5, 2.0, 2.5, 3.5, 5.0};

  std::printf("== Fig. 4: detection accuracy vs reference radius r ==\n");
  std::printf("%zu trajectories per scenario, reference keep=%.2f "
              "(paper-like density)\n\n",
              total, keep);

  TextTable table({"r (m)", "Walking", "Cycling", "Driving"});
  std::vector<std::vector<std::string>> rows(radii.size());
  for (std::size_t i = 0; i < radii.size(); ++i) {
    rows[i].push_back(TextTable::num(radii[i], 1));
  }

  for (Mode mode : kAllModes) {
    core::Scenario scenario(core::ScenarioConfig::for_mode(mode));
    core::RssiExperimentConfig cfg;
    cfg.total = total;
    cfg.reference_keep = keep;
    const auto collected = core::collect_rssi_dataset(scenario, cfg);
    for (std::size_t i = 0; i < radii.size(); ++i) {
      cfg.reference_radius_m = radii[i];
      const auto result = core::run_rssi_experiment_on(scenario, collected, cfg);
      rows[i].push_back(TextTable::num(result.confusion.accuracy(), 3));
      std::printf("  %s r=%.1f -> acc=%.3f (dens=%.2f/m^2, refs/pt=%.1f)\n",
                  mode_name(mode), radii[i], result.confusion.accuracy(),
                  result.ref_density_per_m2, result.avg_refs_per_point);
    }
  }
  std::printf("\n");
  for (auto& row : rows) table.add_row(std::move(row));
  table.print(std::cout);
  std::printf("\npaper (Fig. 4): irregular below 1 m, peak at r = 2.5 m, falling "
              "beyond.\n"
              "measured: irregular/flat below ~1.5 m, falling beyond ~2 m.  The "
              "crossover sits left of the paper's because the simulated GPS error "
              "(sigma = 0.5 m) keeps sub-metre references reliable, whereas the "
              "paper's real urban fixes made r < 1 m unstable.  The dilution "
              "effect (large r hurts) reproduces.\n");
  return 0;
}
