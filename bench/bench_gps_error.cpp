// R determination experiment (Sec. III-C) — GPS error at a fixed position.
//
// Paper protocol: collect 500+ GPS fixes at the same spot, take the average
// coordinate as the true position; the deviation d of each fix follows a
// (half-)normal distribution with sigma ~= 0.5 m, and by the three-sigma rule
// the maximum deviation between two fixes is R = 6 sigma = 3 m.  R is the RPD
// counting radius of the defense.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/trajkit.hpp"

using namespace trajkit;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto fixes = static_cast<std::size_t>(flags.get_int("fixes", 500));

  std::printf("== R experiment: %zu GPS fixes at one position ==\n\n", fixes);

  const sim::GpsErrorModel gps;  // the calibrated receiver model
  Rng rng(flags.get_int("seed", 1234));

  // Collect independent fixes (separate visits, not one correlated stream).
  std::vector<double> east;
  std::vector<double> north;
  std::vector<double> scalar_d;
  for (std::size_t i = 0; i < fixes; ++i) {
    const Enu err = gps.sample_error(rng);
    east.push_back(err.east);
    north.push_back(err.north);
  }
  // The paper's "real position": the average coordinate.
  const double me = mean(east);
  const double mn = mean(north);
  std::vector<double> dev_axis;
  for (std::size_t i = 0; i < fixes; ++i) {
    dev_axis.push_back(east[i] - me);
    dev_axis.push_back(north[i] - mn);
    scalar_d.push_back(std::hypot(east[i] - me, north[i] - mn));
  }
  const double sigma_axis = std::sqrt(variance(dev_axis));
  const double sigma_d = std::sqrt(mean([&] {
    std::vector<double> sq;
    for (double d : scalar_d) sq.push_back(d * d);
    return sq;
  }()));

  // Three-sigma coverage check.
  std::size_t within = 0;
  for (double d : dev_axis) within += std::fabs(d) <= 3.0 * sigma_axis;
  const double coverage =
      static_cast<double>(within) / static_cast<double>(dev_axis.size());

  TextTable table({"quantity", "measured", "paper"});
  table.add_row({"per-axis sigma (m)", TextTable::num(sigma_axis, 3), "0.5"});
  table.add_row({"scalar-d sigma (m)", TextTable::num(sigma_d, 3), "-"});
  table.add_row({"coverage within 3 sigma", TextTable::num(coverage, 4), "0.997"});
  table.add_row({"R = 6 sigma (m)", TextTable::num(6.0 * sigma_axis, 2), "3.0"});
  table.print(std::cout);

  std::printf("\nR = 6 sigma is the RPD counting radius used throughout the "
              "defense (RpdParams::counting_radius_m = 3.0).\n");
  return 0;
}
