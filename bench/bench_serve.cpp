// Serving-layer benchmark: batched VerifierService vs a stateless
// one-request-at-a-time handler.
//
// The baseline models the pre-serving deployment shape: each request is
// analysed with cold per-request RPD state, so every point pays the radius
// query + histogram derivation from scratch.  The service leg runs the same
// requests through submit()/micro-batching with the shared bounded RPD LRU,
// so spatially overlapping requests reuse each other's per-cell statistics.
//
//   bench_serve --total=200 --points=30 --requests=120 --batch=16 --ingest=1000
//
// A payload checksum (FNV-1a over the canonical response strings) is compared
// across the two legs: the speedup must come purely from scheduling and
// caching, never from changing a verdict.  Exit code 0 iff the checksums
// match.
//
// A third, faulty-mode leg replays the same requests under an armed chaos
// schedule (--fault_rate on the dispatch path, a sprinkle of poisoned RPD
// shards; --fault_seed reproduces a run exactly).  It measures what the
// retry + degradation machinery costs and proves that under injected faults
// the service still answers every request (ok or degraded, never dropped).
//
// A fourth, ingestion leg prices the write-ahead journal: the same --ingest
// validated reference points are appended to a bare in-memory vector, to a
// CrowdStore with batched fsync, and to a CrowdStore that fsyncs every
// append.  The overhead column is the slowdown crash-safe ingestion costs
// relative to the in-memory baseline; the recovered store must replay every
// appended point byte-identically or the run fails.
//
// A fifth, motion-sidecar leg arms the same service with an LSTM motion
// model and runs the request mix twice: fp64 lane vs the gated int8
// quantized lane (nn/quant_classifier).  The quant lane's probabilities are
// not bit-identical — the QuantGate budgets that — so the compared stream is
// the *discrete* verdict stream: the (bit-identical) RSSI payload plus the
// motion verdict at threshold 0.5, FNV-digested.  Exit is non-zero on any
// disagreement; the speedup comes from the VNNI int8 GEMM + fused
// polynomial activations and is reported, not asserted.  The default
// --motion_hidden sizes the sidecar so the NN dominates the request cost —
// the regime quantization exists for; at small hidden sizes the RSSI
// evaluation dominates and Amdahl caps the end-to-end gain regardless of
// kernel speed (bench_nn isolates the kernel-level ratios).  --quant_only=1
// runs just this leg (the bench_quant_smoke CTest gate).
#include <chrono>
#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "core/trajkit.hpp"
#include "wifi/crowd_store.hpp"
#include "wifi/validate.hpp"

using namespace trajkit;

namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);  // wires --threads into set_global_threads
  const auto total = static_cast<std::size_t>(flags.get_int("total", 200));
  const auto points = static_cast<std::size_t>(flags.get_int("points", 30));
  const auto request_count = static_cast<std::size_t>(flags.get_int("requests", 120));
  const auto max_batch = static_cast<std::size_t>(flags.get_int("batch", 16));
  const auto cache_capacity = static_cast<std::size_t>(
      flags.get_int("cache", 1 << 16));
  const double fault_rate = flags.get_double("fault_rate", 0.3);
  const auto fault_seed = static_cast<std::uint64_t>(flags.get_int("fault_seed", 42));
  const auto ingest_count =
      static_cast<std::size_t>(flags.get_int("ingest", 1000));
  // Motion-sidecar leg: sized so the NN annotation dominates the batch cost
  // (that is the hot path the quantized lane accelerates).
  const auto motion_hidden =
      static_cast<std::size_t>(flags.get_int("motion_hidden", 384));
  const auto motion_epochs =
      static_cast<std::size_t>(flags.get_int("motion_epochs", 1));
  const auto motion_reps =
      std::max<std::size_t>(1, static_cast<std::size_t>(flags.get_int("reps", 3)));
  const bool quant_only = flags.get_int("quant_only", 0) != 0;

  std::printf("== Serving: stateless per-request baseline vs batched service ==\n");
  std::printf("%zu historical trajectories x %zu points, %zu requests, "
              "max_batch %zu, cache %zu\n\n",
              total, points, request_count, max_batch, cache_capacity);

  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  Rng& rng = scenario.rng();
  const auto collected = scenario.scanned_real(total, points, 2.0);
  const double min_d = attack::paper_mind(Mode::kWalking);

  // Provider-side setup: history -> reference store -> trained detector.
  const std::size_t hist_count = collected.size() * 3 / 4;
  std::vector<wifi::ScannedUpload> history_uploads;
  for (std::size_t i = 0; i < hist_count; ++i) {
    history_uploads.push_back(core::to_upload(collected[i]));
  }
  wifi::RssiDetector detector(wifi::flatten_history(history_uploads), {});

  std::vector<wifi::ScannedUpload> train;
  std::vector<int> labels;
  const std::size_t train_real = hist_count * 3 / 4;
  for (std::size_t i = 0; i < train_real; ++i) {
    auto upload = core::to_upload(collected[i]);
    upload.source_traj_id = static_cast<std::uint32_t>(i);
    train.push_back(std::move(upload));
    labels.push_back(1);
  }
  for (std::size_t i = train_real; i < hist_count; ++i) {
    train.push_back(core::forge_upload(collected[i], min_d + 0.1, 1, rng));
    labels.push_back(0);
  }
  detector.train(train, labels);

  // Request mix: fresh reals plus forged replays of random history, cycled to
  // the requested volume — the "many clients moving through the same city"
  // shape a real service sees, which is what makes the shared cache pay.
  std::vector<wifi::ScannedUpload> pool;
  for (std::size_t i = hist_count; i < collected.size(); ++i) {
    pool.push_back(core::to_upload(collected[i]));
  }
  const std::size_t fresh_count = pool.size();
  for (std::size_t i = 0; i < fresh_count; ++i) {
    const auto& source = collected[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hist_count) - 1))];
    pool.push_back(core::forge_upload(source, min_d + 0.1, 1, rng));
  }
  std::vector<serve::VerificationRequest> requests;
  for (std::size_t r = 0; r < request_count; ++r) {
    requests.push_back({r, pool[r % pool.size()], 0});
  }

  // -- Motion sidecar: fp64 lane vs the gated int8 quantized lane ------------
  auto motion_encoder = std::make_shared<DistAngleEncoder>();
  auto motion_model = [&] {
    std::vector<FeatureSequence> mxs;
    std::vector<int> mys;
    for (std::size_t i = 0; i < train.size(); ++i) {
      if (train[i].positions.size() < 2) continue;
      mxs.push_back(motion_encoder->encode(train[i].positions));
      mys.push_back(labels[i]);
    }
    nn::LstmClassifierConfig mcfg;
    mcfg.hidden_dim = motion_hidden;
    auto model = std::make_shared<nn::LstmClassifier>(mcfg, 5);
    model->train(mxs, mys, motion_epochs);
    return model;
  }();
  // Calibration = the encoder's view of the request mix itself: the exact
  // distribution the quantized lane will serve.
  std::vector<FeatureSequence> calibration;
  for (std::size_t r = 0; r < requests.size() && calibration.size() < 48; ++r) {
    if (requests[r].upload.positions.size() < 2) continue;
    calibration.push_back(motion_encoder->encode(requests[r].upload.positions));
  }

  struct MotionLeg {
    double seconds = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    std::uint64_t checksum = 1469598103934665603ull;
    std::uint64_t quant_batches = 0;
    bool complete = true;
  };
  // Run the request mix through a motion-armed service; the discrete stream
  // digests the (bit-identical) RSSI payload plus the motion verdict bit.
  const auto motion_leg = [&](const serve::MotionPolicy& policy) {
    MotionLeg leg;
    serve::VerifierServiceConfig mcfg;
    mcfg.max_batch = max_batch;
    mcfg.max_queue = request_count + 1;
    mcfg.cache.capacity = cache_capacity;
    mcfg.motion = policy;
    serve::VerifierService service(detector, mcfg);
    double best = -1.0;
    for (std::size_t rep = 0; rep < motion_reps; ++rep) {
      std::vector<std::future<serve::VerdictResponse>> futures;
      futures.reserve(requests.size());
      const double t = now_s();
      for (const auto& request : requests) futures.push_back(service.submit(request));
      std::uint64_t checksum = 1469598103934665603ull;
      for (auto& future : futures) {
        const auto response = future.get();
        if (response.outcome != serve::Outcome::kOk || !response.has_motion_p_real) {
          leg.complete = false;
          continue;
        }
        checksum = fnv1a(checksum, response.report.canonical_string());
        checksum = fnv1a(checksum, response.motion_p_real >= 0.5 ? "1" : "0");
      }
      const double seconds = now_s() - t;
      if (best < 0.0 || seconds < best) best = seconds;
      leg.checksum = checksum;  // identical across reps when complete
    }
    leg.seconds = best;
    const auto c = service.counters();
    leg.p50_us = c.p50_us;
    leg.p99_us = c.p99_us;
    leg.quant_batches = c.motion_quant_batches;
    service.stop();
    return leg;
  };

  serve::MotionPolicy fp64_policy;
  fp64_policy.model = motion_model;
  fp64_policy.encoder = motion_encoder;
  serve::MotionPolicy quant_policy = fp64_policy;
  const auto gate = quant_policy.arm_quantized(calibration, nn::QuantMode::kInt8, 0.1);
  if (!gate.pass) {
    std::printf("FAILED: quantized motion lane did not pass its gate "
                "(max logit delta %.3e, %zu disagreements)\n",
                gate.max_abs_logit_delta, gate.disagreements);
    return 1;
  }
  const MotionLeg fp64_leg = motion_leg(fp64_policy);
  const MotionLeg quant_leg = motion_leg(quant_policy);
  const bool motion_identical = fp64_leg.checksum == quant_leg.checksum;
  const bool motion_complete =
      fp64_leg.complete && quant_leg.complete && quant_leg.quant_batches > 0;

  const auto print_motion = [&] {
    const auto rate = [&](const MotionLeg& leg) {
      return static_cast<double>(request_count) / leg.seconds;
    };
    std::printf("\n");
    TextTable mt({"motion leg", "seconds", "verdicts/s", "p50 (us)", "p99 (us)",
                  "speedup"});
    mt.add_row({"fp64 lane", TextTable::num(fp64_leg.seconds, 3),
                TextTable::num(rate(fp64_leg), 1),
                TextTable::num(fp64_leg.p50_us, 1),
                TextTable::num(fp64_leg.p99_us, 1), "1.00x"});
    mt.add_row({"int8 quant lane", TextTable::num(quant_leg.seconds, 3),
                TextTable::num(rate(quant_leg), 1),
                TextTable::num(quant_leg.p50_us, 1),
                TextTable::num(quant_leg.p99_us, 1),
                TextTable::num(fp64_leg.seconds / quant_leg.seconds, 2) + "x"});
    mt.print(std::cout);
    std::printf("quant gate: max logit delta %.3e over %zu calibration seqs, "
                "verdict checksum %016llx\n",
                gate.max_abs_logit_delta, gate.checked,
                static_cast<unsigned long long>(gate.verdict_checksum));
    std::printf("motion verdict stream fp64/int8 = %016llx / %016llx (%s)\n",
                static_cast<unsigned long long>(fp64_leg.checksum),
                static_cast<unsigned long long>(quant_leg.checksum),
                motion_identical ? "agree" : "DISAGREE");
  };
  if (quant_only) {
    print_motion();
    return motion_identical && motion_complete ? 0 : 1;
  }

  // -- Baseline: stateless, one at a time, cold RPD state per request -------
  const double t0 = now_s();
  std::uint64_t baseline_checksum = 1469598103934665603ull;
  for (const auto& request : requests) {
    detector.set_rpd_cache(
        std::make_shared<wifi::DenseRpdStatsCache>(detector.index().size()));
    baseline_checksum =
        fnv1a(baseline_checksum, detector.analyze(request.upload).canonical_string());
  }
  const double baseline_s = now_s() - t0;

  // -- Service: micro-batched, shared bounded LRU across requests -----------
  serve::VerifierServiceConfig scfg;
  scfg.max_batch = max_batch;
  scfg.max_queue = request_count + 1;
  scfg.cache.capacity = cache_capacity;
  serve::VerifierService service(detector, scfg);
  const double t1 = now_s();
  std::vector<std::future<serve::VerdictResponse>> futures;
  futures.reserve(requests.size());
  for (const auto& request : requests) futures.push_back(service.submit(request));
  std::uint64_t service_checksum = 1469598103934665603ull;
  for (auto& future : futures) {
    const auto response = future.get();
    if (response.outcome != serve::Outcome::kOk) {
      std::printf("request %llu failed: %s\n",
                  static_cast<unsigned long long>(response.request_id),
                  response.error.c_str());
      return 1;
    }
    service_checksum = fnv1a(service_checksum, response.report.canonical_string());
  }
  const double service_s = now_s() - t1;
  service.stop();

  // -- Faulty mode: same requests under an armed chaos schedule --------------
  // Dispatch faults at --fault_rate (retried with backoff, then degraded) and
  // a 1% sprinkle of poisoned RPD shards.  Deterministic in --fault_seed.
  std::size_t faulty_ok = 0;
  std::size_t faulty_degraded = 0;
  std::size_t faulty_dropped = 0;
  double faulty_s = 0.0;
  std::uint64_t faulty_retries = 0;
  {
    FaultScope faults(fault_seed);
    faults.arm(serve::kFaultDispatch, {.probability = fault_rate});
    faults.arm(serve::kFaultRpdShard, {.probability = 0.01});
    serve::VerifierServiceConfig fcfg = scfg;
    fcfg.retry.max_retries = 2;
    serve::VerifierService faulty(detector, fcfg);
    const double t2 = now_s();
    std::vector<std::future<serve::VerdictResponse>> ffutures;
    ffutures.reserve(requests.size());
    for (const auto& request : requests) ffutures.push_back(faulty.submit(request));
    for (auto& future : ffutures) {
      const auto response = future.get();
      if (response.outcome == serve::Outcome::kOk) {
        ++faulty_ok;
      } else if (response.outcome == serve::Outcome::kDegraded) {
        ++faulty_degraded;
      } else {
        ++faulty_dropped;
      }
    }
    faulty_s = now_s() - t2;
    faulty.stop();
    faulty_retries = faulty.counters().retries;
  }

  // -- Ingestion: write-ahead journal overhead vs bare in-memory appends -----
  // Same validated points through three sinks.  The in-memory leg is what
  // ingestion cost before the WAL (validate + push_back); the store legs add
  // encode + CRC frame + journal write, with fsync either batched across the
  // run or paid per append.  Afterwards the store is reopened and must replay
  // every point byte-identically — durability may cost time, never data.
  std::vector<wifi::ReferencePoint> ingest;
  const auto& ref_index = detector.index();
  for (std::size_t i = 0; i < ingest_count; ++i) {
    ingest.push_back(ref_index[i % ref_index.size()]);
  }
  double memory_ingest_s = 0.0;
  {
    std::vector<wifi::ReferencePoint> sink;
    sink.reserve(ingest.size());
    const double t = now_s();
    for (const auto& point : ingest) {
      if (wifi::validate_reference_point(point)) sink.push_back(point);
    }
    memory_ingest_s = now_s() - t;
    if (sink.size() != ingest.size()) {
      std::printf("ingestion baseline rejected a valid point\n");
      return 1;
    }
  }
  const std::string store_dir = "bench_serve_store";
  const auto remove_store = [&store_dir] {
    std::remove(wifi::CrowdStore::snapshot_path(store_dir).c_str());
    std::remove(wifi::CrowdStore::journal_path(store_dir).c_str());
    ::rmdir(store_dir.c_str());
  };
  bool ingest_ok = true;
  const auto store_leg = [&](bool sync_each_append) {
    remove_store();
    double seconds = 0.0;
    {
      auto store = wifi::CrowdStore::open(store_dir, sync_each_append);
      if (!store) {
        std::printf("store open failed: %s\n", store.error().c_str());
        ingest_ok = false;
        return seconds;
      }
      const double t = now_s();
      for (const auto& point : ingest) {
        if (!store.value()->append(point)) ingest_ok = false;
      }
      seconds = now_s() - t;
    }
    // Recovery check: a fresh open replays the journal; every appended point
    // must come back byte-identical (encode_point is the canonical codec).
    auto reopened = wifi::CrowdStore::open(store_dir);
    if (!reopened || reopened.value()->points().size() != ingest.size()) {
      ingest_ok = false;
    } else {
      for (std::size_t i = 0; i < ingest.size(); ++i) {
        if (wifi::CrowdStore::encode_point(reopened.value()->points()[i]) !=
            wifi::CrowdStore::encode_point(ingest[i])) {
          ingest_ok = false;
        }
      }
    }
    return seconds;
  };
  const double journal_batched_s = store_leg(/*sync_each_append=*/false);
  const double journal_fsync_s = store_leg(/*sync_each_append=*/true);
  remove_store();

  const auto counters = service.counters();
  TextTable table({"leg", "seconds", "requests/s", "speedup", "degraded"});
  table.add_row({"stateless baseline", TextTable::num(baseline_s, 3),
                 TextTable::num(static_cast<double>(request_count) / baseline_s, 1),
                 "1.00x", "0"});
  table.add_row({"batched service", TextTable::num(service_s, 3),
                 TextTable::num(static_cast<double>(request_count) / service_s, 1),
                 TextTable::num(baseline_s / service_s, 2) + "x", "0"});
  table.add_row({"faulty service", TextTable::num(faulty_s, 3),
                 TextTable::num(static_cast<double>(request_count) / faulty_s, 1),
                 TextTable::num(baseline_s / faulty_s, 2) + "x",
                 std::to_string(faulty_degraded)});
  table.print(std::cout);
  std::printf("\nfaulty mode (seed %llu, rate %.2f): %zu ok, %zu degraded, "
              "%zu dropped, %llu retries\n",
              static_cast<unsigned long long>(fault_seed), fault_rate, faulty_ok,
              faulty_degraded, faulty_dropped,
              static_cast<unsigned long long>(faulty_retries));

  const auto ingest_rate = [&](double seconds) {
    return seconds > 0.0 ? static_cast<double>(ingest.size()) / seconds : 0.0;
  };
  const auto overhead = [&](double seconds) {
    return memory_ingest_s > 0.0
               ? TextTable::num(seconds / memory_ingest_s, 2) + "x"
               : std::string("n/a");
  };
  std::printf("\n");
  TextTable ingest_table({"ingestion leg", "seconds", "points/s", "overhead"});
  ingest_table.add_row({"in-memory (no WAL)", TextTable::num(memory_ingest_s, 4),
                        TextTable::num(ingest_rate(memory_ingest_s), 1), "1.00x"});
  ingest_table.add_row({"journaled, batched fsync",
                        TextTable::num(journal_batched_s, 4),
                        TextTable::num(ingest_rate(journal_batched_s), 1),
                        overhead(journal_batched_s)});
  ingest_table.add_row({"journaled, fsync each",
                        TextTable::num(journal_fsync_s, 4),
                        TextTable::num(ingest_rate(journal_fsync_s), 1),
                        overhead(journal_fsync_s)});
  ingest_table.print(std::cout);
  std::printf("ingestion recovery: %s\n",
              ingest_ok ? "OK (reopen replayed every point byte-identically)"
                        : "FAILED (recovered store diverged from appends!)");

  std::printf("\nservice counters:\n%s", service.counters_table().c_str());
  std::printf("\nrpd cache hit rate: %.1f%% (%llu hits / %llu lookups)\n",
              100.0 * counters.cache.hit_rate(),
              static_cast<unsigned long long>(counters.cache.hits),
              static_cast<unsigned long long>(counters.cache.hits +
                                              counters.cache.misses));

  print_motion();

  const bool identical = baseline_checksum == service_checksum;
  const bool faulty_complete = faulty_dropped == 0;
  std::printf("checksum baseline = %016llx\n",
              static_cast<unsigned long long>(baseline_checksum));
  std::printf("checksum service  = %016llx\n",
              static_cast<unsigned long long>(service_checksum));
  std::printf("verdicts: %s\n",
              identical ? "OK (byte-identical across serving modes)"
                        : "FAILED (serving changed a verdict!)");
  std::printf("faulty mode: %s\n",
              faulty_complete ? "OK (every request answered)"
                              : "FAILED (requests dropped under faults!)");
  std::printf("motion lanes: %s\n",
              motion_identical && motion_complete
                  ? "OK (quant lane agrees on every discrete verdict)"
                  : "FAILED (quant lane diverged or did not serve!)");
  return identical && faulty_complete && ingest_ok && motion_identical &&
                 motion_complete
             ? 0
             : 1;
}
