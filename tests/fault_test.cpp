// Fault-injection layer: the decision function's purity (same seed/point/
// key/attempt -> same verdict regardless of call order or interleaving),
// fail_first semantics, probability calibration, counters, and FaultScope
// RAII hygiene.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hpp"

namespace trajkit {
namespace {

TEST(FaultInjector, DisarmedNeverFails) {
  FaultInjector faults;
  faults.configure(1);
  EXPECT_FALSE(faults.armed());
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_FALSE(faults.should_fail("anything", key));
  }
  EXPECT_NO_THROW(faults.check("anything", 0));
  EXPECT_EQ(faults.total_injected(), 0u);
}

TEST(FaultInjector, ArmedPointDoesNotAffectOtherPoints) {
  FaultInjector faults;
  faults.configure(1);
  faults.arm("a", {.probability = 1.0});
  EXPECT_TRUE(faults.armed());
  EXPECT_TRUE(faults.should_fail("a", 0));
  EXPECT_FALSE(faults.should_fail("b", 0));
}

TEST(FaultInjector, FailFirstFailsExactlyTheFirstAttempts) {
  FaultInjector faults;
  faults.configure(7);
  faults.arm("p", {.fail_first = 2});
  for (std::uint64_t key : {0ull, 5ull, 999ull}) {
    EXPECT_TRUE(faults.should_fail("p", key, 0)) << key;
    EXPECT_TRUE(faults.should_fail("p", key, 1)) << key;
    EXPECT_FALSE(faults.should_fail("p", key, 2)) << key;
    EXPECT_FALSE(faults.should_fail("p", key, 3)) << key;
  }
}

TEST(FaultInjector, DecisionsArePureInKeyAndAttempt) {
  // Query a grid of (key, attempt) pairs twice — forward then reversed — on
  // two separately-constructed injectors.  Every decision must agree: the
  // verdict depends only on (seed, point, key, attempt), never on history.
  const std::uint64_t seed = 42;
  FaultInjector a;
  a.configure(seed);
  a.arm("p", {.probability = 0.5});
  FaultInjector b;
  b.configure(seed);
  b.arm("p", {.probability = 0.5});

  std::vector<bool> forward;
  for (std::uint64_t key = 0; key < 32; ++key) {
    for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
      forward.push_back(a.should_fail("p", key, attempt));
    }
  }
  std::vector<bool> reversed(forward.size());
  std::size_t i = forward.size();
  for (std::uint64_t key = 32; key-- > 0;) {
    for (std::uint64_t attempt = 4; attempt-- > 0;) {
      reversed[--i] = b.should_fail("p", key, attempt);
    }
  }
  EXPECT_EQ(forward, reversed);
}

TEST(FaultInjector, SeedChangesTheSchedule) {
  auto schedule = [](std::uint64_t seed) {
    FaultInjector f;
    f.configure(seed);
    f.arm("p", {.probability = 0.5});
    std::vector<bool> out;
    for (std::uint64_t key = 0; key < 64; ++key) out.push_back(f.should_fail("p", key));
    return out;
  };
  EXPECT_EQ(schedule(1), schedule(1));
  EXPECT_NE(schedule(1), schedule(2));
}

TEST(FaultInjector, ProbabilityIsRoughlyCalibrated) {
  FaultInjector faults;
  faults.configure(11);
  faults.arm("p", {.probability = 0.3});
  int fails = 0;
  const int trials = 2000;
  for (int key = 0; key < trials; ++key) {
    fails += faults.should_fail("p", static_cast<std::uint64_t>(key)) ? 1 : 0;
  }
  EXPECT_GT(fails, trials * 0.3 - 80);
  EXPECT_LT(fails, trials * 0.3 + 80);
  const auto c = faults.counters("p");
  EXPECT_EQ(c.attempts, static_cast<std::uint64_t>(trials));
  EXPECT_EQ(c.injected, static_cast<std::uint64_t>(fails));
  EXPECT_EQ(faults.total_injected(), static_cast<std::uint64_t>(fails));
}

TEST(FaultInjector, SeqVariantCountsAttemptsPerKey) {
  FaultInjector faults;
  faults.configure(3);
  faults.arm("p", {.fail_first = 1});
  // First call on each key is attempt 0 (fails); the next is attempt 1.
  EXPECT_TRUE(faults.should_fail_seq("p", 10));
  EXPECT_TRUE(faults.should_fail_seq("p", 20));  // separate key, own counter
  EXPECT_FALSE(faults.should_fail_seq("p", 10));
  EXPECT_FALSE(faults.should_fail_seq("p", 20));
}

TEST(FaultInjector, CheckThrowsFaultErrorNamingThePoint) {
  FaultInjector faults;
  faults.configure(5);
  faults.arm("io.save", {.fail_first = 1});
  try {
    faults.check("io.save", 77, 0);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("io.save"), std::string::npos) << e.what();
  }
  // FaultError is catchable as std::runtime_error but carries its own type.
  EXPECT_THROW(faults.check("io.save", 78, 0), std::runtime_error);
  EXPECT_NO_THROW(faults.check("io.save", 77, 1));
}

TEST(FaultInjector, ClearDisarmsAndResetsCounters) {
  FaultInjector faults;
  faults.configure(9);
  faults.arm("p", {.probability = 1.0});
  EXPECT_TRUE(faults.should_fail("p", 0));
  faults.clear();
  EXPECT_FALSE(faults.armed());
  EXPECT_FALSE(faults.should_fail("p", 0));
  EXPECT_EQ(faults.counters("p").attempts, 0u);
  EXPECT_EQ(faults.total_injected(), 0u);
}

TEST(FaultScope, ArmsGlobalAndClearsOnExit) {
  ASSERT_FALSE(global_faults().armed()) << "another test leaked an armed schedule";
  {
    FaultScope scope(123);
    scope.arm("scope.point", {.probability = 1.0});
    EXPECT_TRUE(global_faults().armed());
    EXPECT_TRUE(global_faults().should_fail("scope.point", 4));
  }
  EXPECT_FALSE(global_faults().armed());
  EXPECT_FALSE(global_faults().should_fail("scope.point", 4));
}

}  // namespace
}  // namespace trajkit
