// Quantized verification hot path: kernel contracts, calibration
// determinism, the QuantGate decision contract, artifact round-trips and the
// serving integration.
//
// The quant lane is explicitly NOT bit-identical to the fp64 oracle, so this
// file tests a different contract than kernels_test.cpp: the *integer* side
// (rounding, packing, GEMM accumulation) is asserted exactly against scalar
// references, while the end-to-end lane is asserted through the QuantGate —
// zero thresholded-verdict disagreements and a bounded logit delta against
// the fp64 model that stays resident as the oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/durable/artifact_store.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/classifier.hpp"
#include "nn/kernels/align.hpp"
#include "nn/kernels/quant.hpp"
#include "nn/matrix.hpp"
#include "nn/quant_classifier.hpp"
#include "serve/service.hpp"
#include "serve/shard_service.hpp"
#include "support/fixtures.hpp"
#include "traj/features.hpp"
#include "wifi/crowd_store.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;
namespace qk = nn::kernels;

// ---------------------------------------------------------------------------
// Shared fixtures: a deterministically-trained trend classifier (the nn_test
// toy task) plus calibration / held-out golden trajectory sets.

FeatureSequence make_seq(const std::vector<double>& values, std::size_t dim) {
  FeatureSequence f;
  f.dim = dim;
  f.steps = values.size() / dim;
  f.values = values;
  return f;
}

/// Class 1 trends upward, class 0 downward — separable in a few epochs so
/// gate agreement on held-out samples is meaningful, not vacuous.
void make_trend_dataset(Rng& rng, std::size_t count, std::size_t steps,
                        std::vector<FeatureSequence>& xs, std::vector<int>& ys) {
  for (std::size_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % 2);
    const double slope = label ? 0.1 : -0.1;
    std::vector<double> v;
    double level = rng.uniform(-0.3, 0.3);
    for (std::size_t t = 0; t < steps; ++t) {
      level += slope + rng.normal(0.0, 0.03);
      v.push_back(level);
      v.push_back(rng.normal(0.0, 0.1));
    }
    xs.push_back(make_seq(v, 2));
    ys.push_back(label);
  }
}

nn::LstmClassifier trained_trend_model() {
  Rng rng(6);
  std::vector<FeatureSequence> xs;
  std::vector<int> ys;
  make_trend_dataset(rng, 120, 12, xs, ys);
  nn::LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 8;
  cfg.learning_rate = 5e-3;
  nn::LstmClassifier model(cfg, 1);
  model.train(xs, ys, 25);
  return model;
}

std::vector<FeatureSequence> calibration_set(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<FeatureSequence> xs;
  std::vector<int> ys;
  make_trend_dataset(rng, n, 12, xs, ys);
  return xs;
}

std::string serialized(const nn::QuantizedLstm& q) {
  std::ostringstream os;
  q.save(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Kernel contracts.

TEST(QuantKernels, RoundingContractScalarVsVector) {
  Rng rng(31);
  // Random values plus exact halfway points: half-away rounding is where a
  // vector/scalar divergence would hide.
  std::vector<double> xs;
  for (int i = 0; i < 700; ++i) xs.push_back(rng.uniform(-200.0, 200.0));
  for (int i = -130; i <= 130; ++i) xs.push_back(i + 0.5);
  for (int i = -130; i <= 130; ++i) xs.push_back(i - 0.5);
  const double inv_scale = 1.0;

  std::vector<std::int8_t, qk::AlignedAllocator<std::int8_t>> out(xs.size());
  qk::quantize_i8(xs.data(), xs.size(), inv_scale,
                  reinterpret_cast<qk::qi8*>(out.data()));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::int32_t want = qk::quantize_value(xs[i], inv_scale, qk::kActQmax);
    ASSERT_EQ(static_cast<std::int32_t>(out[i]), want)
        << "element " << i << " value " << xs[i];
  }
}

TEST(QuantKernels, ActivationImageMatchesScalarTranspose) {
  // The GEMM reads lane-major activation images; check both encodings
  // (offset-binary uint8 and signed int16) against quantize_value applied
  // through the transpose, including a non-multiple-of-8 depth and the
  // padded tail.
  Rng rng(59);
  for (std::size_t depth : {3u, 8u, 11u, 24u}) {
    const std::size_t depth_pad = qk::quant_depth_pad(depth);
    std::vector<double, qk::AlignedAllocator<double>> block(depth * 8);
    for (auto& v : block) v = rng.uniform(-40.0, 40.0);
    const double inv_scale = 1.0 / 0.3;

    std::vector<std::uint8_t, qk::AlignedAllocator<std::uint8_t>> u8(
        8 * depth_pad);
    std::vector<std::int16_t, qk::AlignedAllocator<std::int16_t>> i16(
        8 * depth_pad);
    qk::quantize_act_u8(block.data(), depth, depth_pad, inv_scale,
                        reinterpret_cast<qk::qu8*>(u8.data()));
    qk::quantize_act_i16(block.data(), depth, depth_pad, inv_scale,
                         reinterpret_cast<qk::qi16*>(i16.data()));
    for (std::size_t l = 0; l < 8; ++l) {
      for (std::size_t k = 0; k < depth_pad; ++k) {
        const std::int32_t q =
            k < depth
                ? qk::quantize_value(block[k * 8 + l], inv_scale, qk::kActQmax)
                : 0;
        ASSERT_EQ(static_cast<std::int32_t>(u8[l * depth_pad + k]), q + 128)
            << "depth " << depth << " lane " << l << " k " << k;
        ASSERT_EQ(static_cast<std::int32_t>(i16[l * depth_pad + k]), q)
            << "depth " << depth << " lane " << l << " k " << k;
      }
    }
  }
}

// Shapes exercise both padding axes of the VNNI pack: rows pad to
// kQuantGroup = 16 and depth to whole dwords.  The scalar triple loop over
// raw int8 lane values is the ground truth the packed GEMM (VNNI or the
// portable fallback — integer sums are exact either way) must reproduce.
template <typename WT>
void check_gemm_against_scalar(qk::QuantMode mode, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t shapes[][2] = {{1, 3}, {7, 5}, {8, 8}, {13, 9},
                                   {16, 16}, {32, 20}, {33, 21}};
  for (const auto& shape : shapes) {
    const std::size_t rows = shape[0], depth = shape[1];
    const std::size_t depth_pad = qk::quant_depth_pad(depth);
    nn::Matrix w(rows, depth);
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.data()[i] = rng.uniform(-2.0, 2.0);
    }
    std::vector<double> inv_scale(rows);
    for (auto& s : inv_scale) s = 1.0 / rng.uniform(0.01, 0.2);

    std::vector<WT, qk::AlignedAllocator<WT>> pack(
        qk::quant_packed_elems(rows, depth));
    std::vector<std::int64_t> row_sums(rows, 0);
    if (mode == qk::QuantMode::kInt8) {
      qk::pack_quant_rows_i8(w, 0, depth, inv_scale.data(),
                             reinterpret_cast<qk::qi8*>(pack.data()));
      qk::quant_row_sums_i8(reinterpret_cast<const qk::qi8*>(pack.data()),
                            rows, depth, row_sums.data());
    } else {
      qk::pack_quant_rows_i16(w, 0, depth, inv_scale.data(),
                              reinterpret_cast<qk::qi16*>(pack.data()));
    }

    // Raw int8 activation lanes, then the mode's GEMM image: offset-binary
    // uint8 for int8 weights, signed int16 for int16 weights.  Pad entries
    // are q == 0 (the padded weight coefficients are zero anyway).
    std::vector<std::int8_t> x(depth * 8);
    for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    std::vector<std::uint8_t, qk::AlignedAllocator<std::uint8_t>> xu(
        8 * depth_pad, 128);
    std::vector<std::int16_t, qk::AlignedAllocator<std::int16_t>> x16(
        8 * depth_pad, 0);
    for (std::size_t k = 0; k < depth; ++k) {
      for (std::size_t l = 0; l < 8; ++l) {
        xu[l * depth_pad + k] =
            static_cast<std::uint8_t>(static_cast<int>(x[k * 8 + l]) + 128);
        x16[l * depth_pad + k] = x[k * 8 + l];
      }
    }

    std::vector<std::int64_t, qk::AlignedAllocator<std::int64_t>> acc(rows * 8);
    if (mode == qk::QuantMode::kInt8) {
      qk::gemm_q8x8(reinterpret_cast<const qk::qi8*>(pack.data()),
                    row_sums.data(), rows, depth_pad,
                    reinterpret_cast<const qk::qu8*>(xu.data()), acc.data());
    } else {
      qk::gemm_q16x8(reinterpret_cast<const qk::qi16*>(pack.data()), rows,
                     depth_pad,
                     reinterpret_cast<const qk::qi16*>(x16.data()),
                     acc.data());
    }

    const std::int32_t qmax = qk::quant_qmax(mode);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t l = 0; l < 8; ++l) {
        std::int64_t want = 0;
        for (std::size_t k = 0; k < depth; ++k) {
          const std::int64_t qw = qk::quantize_value(w(r, k), inv_scale[r], qmax);
          want += qw * static_cast<std::int64_t>(x[k * 8 + l]);
        }
        ASSERT_EQ(acc[r * 8 + l], want)
            << rows << "x" << depth << " row " << r << " lane " << l;
      }
    }
  }
}

TEST(QuantKernels, GemmInt8MatchesScalarReference) {
  check_gemm_against_scalar<std::int8_t>(qk::QuantMode::kInt8, 41);
}

TEST(QuantKernels, GemmInt16MatchesScalarReference) {
  check_gemm_against_scalar<std::int16_t>(qk::QuantMode::kInt16, 43);
}

TEST(QuantKernels, FastActivationsTrackLibm) {
  // The fast lane budgets ~5e-9 relative error; assert an order of magnitude
  // of headroom under the int8 rounding error the gate absorbs (~1e-2).
  for (double x = -30.0; x <= 30.0; x += 0.0137) {
    EXPECT_NEAR(qk::fast_sigmoid(x), 1.0 / (1.0 + std::exp(-x)), 1e-7) << x;
    EXPECT_NEAR(qk::fast_tanh(x), std::tanh(x), 1e-7) << x;
  }
  for (double x = -80.0; x <= 80.0; x += 0.417) {
    const double want = std::exp(x);
    EXPECT_NEAR(qk::fast_exp(x), want, 1e-7 * want) << x;
  }
  // Saturation: the ±708 exp clamp pins the tails to the limits (the
  // negative sigmoid tail bottoms out at e^-708 ~ 3e-308, not exactly 0).
  EXPECT_EQ(qk::fast_sigmoid(1000.0), 1.0);
  EXPECT_LT(qk::fast_sigmoid(-1000.0), 1e-300);
  EXPECT_EQ(qk::fast_tanh(1000.0), 1.0);
  EXPECT_EQ(qk::fast_tanh(-1000.0), -1.0);
}

TEST(QuantKernels, PackRejectsMisalignedOutput) {
  nn::Matrix w(8, 4, 0.5);
  const double inv_scale[8] = {1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<std::int8_t, qk::AlignedAllocator<std::int8_t>> buf(
      qk::quant_packed_elems(8, 4) + 64);
  // Aligned output: fine.
  EXPECT_NO_THROW(qk::pack_quant_rows_i8(w, 0, 4, inv_scale,
                                         reinterpret_cast<qk::qi8*>(buf.data())));
  // Shift by one byte: the quant pack must fail loudly, not degrade.
  EXPECT_THROW(qk::pack_quant_rows_i8(w, 0, 4, inv_scale,
                                      reinterpret_cast<qk::qi8*>(buf.data() + 1)),
               std::invalid_argument);
  // Out-of-range column slice is rejected before any write.
  EXPECT_THROW(qk::pack_quant_rows_i8(w, 0, 5, inv_scale,
                                      reinterpret_cast<qk::qi8*>(buf.data())),
               std::invalid_argument);
}

TEST(QuantKernels, RequireAligned64DetectsMisalignment) {
  alignas(64) double block[16];
  EXPECT_NO_THROW(qk::require_aligned64(block, "block"));
  EXPECT_THROW(qk::require_aligned64(
                   reinterpret_cast<const char*>(block) + 8, "shifted"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Calibration determinism and the QuantGate.

TEST(QuantizedLstm, CalibrationDeterministicAcrossThreads) {
  const auto model = trained_trend_model();
  const auto calibration = calibration_set(77, 24);

  set_global_threads(1);
  const auto q1 = nn::QuantizedLstm::quantize(model, calibration,
                                              nn::QuantMode::kInt8);
  set_global_threads(4);
  const auto q4 = nn::QuantizedLstm::quantize(model, calibration,
                                              nn::QuantMode::kInt8);
  set_global_threads(0);

  // Byte-identical artifacts, not merely equivalent predictions: the scales
  // come from order-free max-abs reductions, so thread count cannot move
  // a single bit of the serialized image.
  EXPECT_EQ(serialized(q1), serialized(q4));
}

TEST(QuantizedLstm, GatePassesOnHeldOutTrajectories) {
  const auto model = trained_trend_model();
  const auto calibration = calibration_set(77, 24);
  const auto held_out = calibration_set(991, 40);

  // Held-out sequences come from a different stream than calibration, so
  // the logit budget gets headroom over the calibration-set bound.
  for (const auto mode : {nn::QuantMode::kInt8, nn::QuantMode::kInt16}) {
    const auto q = nn::QuantizedLstm::quantize(model, calibration, mode);
    const auto report = nn::quant_gate_check(model, q, held_out, 0.1);
    EXPECT_TRUE(report.pass) << "mode " << static_cast<int>(mode)
                             << ": max delta " << report.max_abs_logit_delta
                             << ", disagreements " << report.disagreements;
    EXPECT_EQ(report.checked, held_out.size());
    EXPECT_EQ(report.disagreements, 0u);
    EXPECT_LE(report.max_abs_logit_delta, 0.1);
    // The decision contract, spelled out: same verdict on every sample.
    for (const auto& x : held_out) {
      EXPECT_EQ(q.predict(x), model.predict(x));
    }
  }
}

TEST(QuantizedLstm, GateNeverPassesOnEmptyCalibration) {
  const auto model = trained_trend_model();
  const auto q = nn::QuantizedLstm::quantize(model, calibration_set(77, 8),
                                             nn::QuantMode::kInt16);
  const auto report = nn::quant_gate_check(model, q, {}, 0.05);
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.checked, 0u);
}

TEST(QuantizedLstm, BatchMatchesSingleBitwise) {
  // Grouping into kLanes panels must not change any sequence's logit: the
  // serving dispatcher mixes trajectories from different requests into one
  // panel, and batch composition must stay out of the payload.
  const auto model = trained_trend_model();
  const auto q = nn::QuantizedLstm::quantize(model, calibration_set(77, 8),
                                             nn::QuantMode::kInt8);
  const auto xs = calibration_set(555, 13);  // deliberately not a lane multiple
  const auto batch = q.predict_proba_batch(xs);
  ASSERT_EQ(batch.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(batch[i], q.predict_proba(xs[i])) << "sequence " << i;
  }
}

// ---------------------------------------------------------------------------
// Persistence: stream round-trip, ArtifactStore epochs, follower adoption.

TEST(QuantizedLstm, StreamRoundTripIsBitIdentical) {
  const auto model = trained_trend_model();
  const auto calibration = calibration_set(77, 16);
  for (const auto mode : {nn::QuantMode::kInt8, nn::QuantMode::kInt16}) {
    const auto q = nn::QuantizedLstm::quantize(model, calibration, mode);
    std::stringstream ss;
    q.save(ss);
    const auto loaded = nn::QuantizedLstm::try_load(ss);
    ASSERT_TRUE(loaded.has_value()) << loaded.error();
    for (const auto& x : calibration) {
      EXPECT_EQ(loaded.value().predict_logit(x), q.predict_logit(x));
    }
    EXPECT_EQ(serialized(loaded.value()), serialized(q));
  }
}

TEST(QuantizedLstm, TryLoadRejectsGarbage) {
  std::istringstream ss("not a quant model");
  const auto r = nn::QuantizedLstm::try_load(ss);
  EXPECT_FALSE(r.has_value());
}

TEST(QuantizedLstm, ArtifactStoreEpochRoundTrip) {
  const std::string dir = "quant_artifact_store";
  const auto model = trained_trend_model();
  const auto calibration = calibration_set(77, 16);
  const auto q = nn::QuantizedLstm::quantize(model, calibration,
                                             nn::QuantMode::kInt8);

  auto store = durable::ArtifactStore::open_dir(dir);
  ASSERT_TRUE(store.has_value()) << store.error();
  const auto epoch = store.value()->publish("motion_quant", q);
  ASSERT_TRUE(epoch.has_value()) << epoch.error();
  EXPECT_EQ(store.value()->current_epoch("motion_quant"), epoch.value());

  // A second publish bumps the epoch; the first stays readable (in-flight
  // work may still be pinned to it).
  const auto epoch2 = store.value()->publish("motion_quant", q);
  ASSERT_TRUE(epoch2.has_value()) << epoch2.error();
  EXPECT_GT(epoch2.value(), epoch.value());

  // Reopen cold (follower adoption shape: a fresh process resolving the
  // durable CURRENT pointer) and compare the serving image byte for byte.
  auto reopened = durable::ArtifactStore::open_dir(dir);
  ASSERT_TRUE(reopened.has_value()) << reopened.error();
  const auto adopted =
      reopened.value()->open<nn::QuantizedLstm>("motion_quant", epoch.value());
  ASSERT_TRUE(adopted.has_value()) << adopted.error();
  EXPECT_EQ(serialized(adopted.value()), serialized(q));
  const auto current = reopened.value()->open<nn::QuantizedLstm>("motion_quant");
  ASSERT_TRUE(current.has_value()) << current.error();
  for (const auto& x : calibration) {
    EXPECT_EQ(current.value().predict_logit(x), q.predict_logit(x));
  }

  for (const std::uint64_t e : {epoch.value(), epoch2.value()}) {
    std::remove(store.value()->artifact_path("motion_quant", e).c_str());
  }
  std::remove(durable::ArtifactStore::current_path(dir).c_str());
  ::rmdir(dir.c_str());
}

void remove_crowd_store(const std::string& dir) {
  for (const char* name : {"/crowd.snapshot", "/crowd.snapshot.tmp",
                           "/crowd.journal", "/crowd.journal.tmp"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
}

TEST(QuantizedLstm, MotionEpochMarkerSurvivesRecoveryAndCompaction) {
  const std::string dir = "quant_motion_epoch_store";
  remove_crowd_store(dir);
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_EQ(store.value()->observed_motion_epoch(), 0u);
    ASSERT_TRUE(store.value()->append_motion_epoch_marker(3).has_value());
    EXPECT_EQ(store.value()->observed_motion_epoch(), 3u);
    // Monotone: a stale marker never lowers the observed epoch.
    ASSERT_TRUE(store.value()->append_motion_epoch_marker(2).has_value());
    EXPECT_EQ(store.value()->observed_motion_epoch(), 3u);
    // Independent of the RSSI detector's model epoch.
    ASSERT_TRUE(store.value()->append_epoch_marker(9).has_value());
    EXPECT_EQ(store.value()->observed_epoch(), 9u);
    EXPECT_EQ(store.value()->observed_motion_epoch(), 3u);
  }
  {
    // Journal replay restores it.
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_EQ(store.value()->observed_motion_epoch(), 3u);
    // Compaction folds it into the v4 snapshot meta.
    ASSERT_TRUE(store.value()->compact().has_value());
  }
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_EQ(store.value()->observed_motion_epoch(), 3u);
    EXPECT_EQ(store.value()->observed_epoch(), 9u);
  }
  remove_crowd_store(dir);
}

TEST(QuantizedLstm, MotionEpochMarkerShipsToFollower) {
  const std::string leader_dir = "quant_ship_leader";
  const std::string follower_dir = "quant_ship_follower";
  remove_crowd_store(leader_dir);
  remove_crowd_store(follower_dir);

  auto leader = serve::ShardService::open_leader(0, leader_dir);
  ASSERT_TRUE(leader.has_value()) << leader.error();
  auto follower = serve::ShardReplica::open(follower_dir);
  ASSERT_TRUE(follower.has_value()) << follower.error();
  leader.value()->attach_follower(follower.value().get());

  const auto seq = leader.value()->ship_motion_marker(5);
  ASSERT_TRUE(seq.has_value()) << seq.error();
  // The ack contract: by the time shipping returns, the follower holds the
  // marker durably and has applied it.
  EXPECT_EQ(leader.value()->store()->observed_motion_epoch(), 5u);
  EXPECT_EQ(follower.value()->store().observed_motion_epoch(), 5u);

  remove_crowd_store(leader_dir);
  remove_crowd_store(follower_dir);
}

// ---------------------------------------------------------------------------
// Serving integration: the gated quant lane behind MotionPolicy.

TEST(ServeQuant, ArmQuantizedInstallsOnlyOnGatePass) {
  serve::MotionPolicy policy;
  // Unarmed policy: arming is a no-op that reports failure.
  EXPECT_FALSE(policy.arm_quantized({}).pass);
  EXPECT_FALSE(policy.quant_armed());

  policy.model = std::make_shared<nn::LstmClassifier>(trained_trend_model());
  policy.encoder = std::make_shared<DistAngleEncoder>();
  // Empty calibration can never pass the gate; fp64 keeps serving.
  EXPECT_FALSE(policy.arm_quantized({}).pass);
  EXPECT_FALSE(policy.quant_armed());
  EXPECT_EQ(policy.quant, nullptr);

  // The bound is per-deployment tuning: this toy model's int8 logit deltas
  // sit near 0.11, so arm with an explicit budget above them.
  const auto report = policy.arm_quantized(calibration_set(77, 24),
                                           nn::QuantMode::kInt8, 0.15);
  EXPECT_TRUE(report.pass) << "max delta " << report.max_abs_logit_delta;
  EXPECT_TRUE(policy.quant_armed());
  ASSERT_NE(policy.quant, nullptr);
  EXPECT_EQ(policy.quant_gate.verdict_checksum, report.verdict_checksum);
}

TEST(ServeQuant, QuantLaneServesMotionVerdictsInService) {
  ts::LinearFieldWorld w;
  const auto probes = w.probe_mix(6);

  serve::VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.motion.model = std::make_shared<nn::LstmClassifier>(trained_trend_model());
  cfg.motion.encoder = std::make_shared<DistAngleEncoder>();
  // Calibrate on the encoder's view of this world's uploads — the
  // distribution the lane will actually serve.
  std::vector<FeatureSequence> calibration;
  for (const auto& u : w.probe_mix(16)) {
    calibration.push_back(cfg.motion.encoder->encode(u.positions));
  }
  const auto report = cfg.motion.arm_quantized(calibration);
  ASSERT_TRUE(report.pass) << "max delta " << report.max_abs_logit_delta;

  // fp64 twin of the same service for the decision-contract comparison.
  serve::VerifierServiceConfig fp_cfg;
  fp_cfg.auto_start = false;
  fp_cfg.motion.model = cfg.motion.model;
  fp_cfg.motion.encoder = cfg.motion.encoder;

  serve::VerifierService quant_service(w.detector(), cfg);
  serve::VerifierService fp_service(w.detector(), fp_cfg);
  std::vector<serve::VerificationRequest> requests;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    requests.push_back({i, probes[i], 0});
  }
  const auto qr = quant_service.verify_batch(requests);
  const auto fr = fp_service.verify_batch(requests);
  ASSERT_EQ(qr.size(), fr.size());
  for (std::size_t i = 0; i < qr.size(); ++i) {
    ASSERT_EQ(qr[i].outcome, serve::Outcome::kOk) << qr[i].error;
    ASSERT_TRUE(qr[i].has_motion_p_real);
    ASSERT_TRUE(fr[i].has_motion_p_real);
    // Not bit-identical — that is the point of the gate.  The *verdict* at
    // the serving threshold must agree, and the probability must sit within
    // the gate's logit budget.
    EXPECT_EQ(qr[i].motion_p_real >= 0.5, fr[i].motion_p_real >= 0.5)
        << "request " << i;
    EXPECT_NEAR(qr[i].motion_p_real, fr[i].motion_p_real, 0.05) << i;
  }
  EXPECT_EQ(quant_service.counters().motion_quant_batches, 1u);
  EXPECT_EQ(fp_service.counters().motion_quant_batches, 0u);
}

}  // namespace
}  // namespace trajkit
