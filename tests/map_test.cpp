// Road network, synthetic city, routing (Dijkstra vs A*) and navigation.
#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "map/city.hpp"
#include "map/nav.hpp"
#include "map/roadnet.hpp"
#include "map/route.hpp"

namespace trajkit::map {
namespace {

/// Small diamond network used by the routing unit tests:
///   0 --local-- 1 --local-- 3
///    \--arterial-- 2 --arterial--/
RoadNetwork make_diamond() {
  RoadNetwork net;
  net.add_node({0, 0});     // 0
  net.add_node({50, 30});   // 1
  net.add_node({60, -40});  // 2
  net.add_node({120, 0});   // 3
  net.add_edge(0, 1, RoadClass::kLocal);
  net.add_edge(1, 3, RoadClass::kLocal);
  net.add_edge(0, 2, RoadClass::kArterial);
  net.add_edge(2, 3, RoadClass::kArterial);
  return net;
}

TEST(RoadNetwork, EdgeLengthsComputed) {
  RoadNetwork net;
  net.add_node({0, 0});
  net.add_node({3, 4});
  const auto e = net.add_edge(0, 1, RoadClass::kLocal);
  EXPECT_DOUBLE_EQ(net.edge(e).length_m, 5.0);
  EXPECT_EQ(net.other_end(e, 0), 1u);
  EXPECT_EQ(net.other_end(e, 1), 0u);
}

TEST(RoadNetwork, RejectsBadEdges) {
  RoadNetwork net;
  net.add_node({0, 0});
  net.add_node({1, 0});
  EXPECT_THROW(net.add_edge(0, 0, RoadClass::kLocal), std::invalid_argument);
  EXPECT_THROW(net.add_edge(0, 5, RoadClass::kLocal), std::out_of_range);
}

TEST(RoadNetwork, ModePermissions) {
  EXPECT_FALSE(mode_allowed(Mode::kDriving, RoadClass::kFootpath));
  EXPECT_TRUE(mode_allowed(Mode::kWalking, RoadClass::kFootpath));
  EXPECT_TRUE(mode_allowed(Mode::kCycling, RoadClass::kFootpath));
  EXPECT_TRUE(mode_allowed(Mode::kDriving, RoadClass::kArterial));
}

TEST(RoadNetwork, SpeedsOrderedByMode) {
  EXPECT_LT(free_flow_speed_mps(Mode::kWalking, RoadClass::kLocal),
            free_flow_speed_mps(Mode::kCycling, RoadClass::kLocal));
  EXPECT_LT(free_flow_speed_mps(Mode::kCycling, RoadClass::kLocal),
            free_flow_speed_mps(Mode::kDriving, RoadClass::kLocal));
  EXPECT_GT(free_flow_speed_mps(Mode::kDriving, RoadClass::kArterial),
            free_flow_speed_mps(Mode::kDriving, RoadClass::kLocal));
}

TEST(RoadNetwork, NearestNodeRespectsMode) {
  RoadNetwork net;
  net.add_node({0, 0});   // footpath-only island near the query
  net.add_node({5, 0});
  net.add_node({100, 0});
  net.add_node({105, 0});
  net.add_edge(0, 1, RoadClass::kFootpath);
  net.add_edge(2, 3, RoadClass::kArterial);
  EXPECT_EQ(net.nearest_node({1, 1}, Mode::kWalking), 0u);
  EXPECT_EQ(net.nearest_node({1, 1}, Mode::kDriving), 2u);  // skips footpath nodes
}

TEST(RoadNetwork, DistanceToNetwork) {
  const auto net = make_diamond();
  EXPECT_NEAR(net.distance_to_network({0, 0}), 0.0, 1e-9);
  EXPECT_GT(net.distance_to_network({0, 100}), 50.0);
}

TEST(Route, DijkstraPrefersFasterArterial) {
  const auto net = make_diamond();
  const auto path = shortest_path(net, 0, 3, Mode::kDriving);
  ASSERT_TRUE(path.has_value());
  // Driving: the arterial route is much faster despite similar length.
  EXPECT_EQ(path->nodes, (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_GT(path->length_m, 0.0);
  EXPECT_GT(path->travel_time_s, 0.0);
}

TEST(Route, UnreachableReturnsNullopt) {
  RoadNetwork net;
  net.add_node({0, 0});
  net.add_node({10, 0});
  net.add_node({100, 0});
  net.add_node({110, 0});
  net.add_edge(0, 1, RoadClass::kLocal);
  net.add_edge(2, 3, RoadClass::kLocal);
  EXPECT_FALSE(shortest_path(net, 0, 3, Mode::kWalking).has_value());
}

TEST(Route, DrivingCannotUseFootpaths) {
  RoadNetwork net;
  net.add_node({0, 0});
  net.add_node({10, 0});
  net.add_edge(0, 1, RoadClass::kFootpath);
  EXPECT_FALSE(shortest_path(net, 0, 1, Mode::kDriving).has_value());
  EXPECT_TRUE(shortest_path(net, 0, 1, Mode::kWalking).has_value());
}

TEST(Route, AStarMatchesDijkstraCost) {
  Rng rng(11);
  const auto net = make_city({.blocks_x = 6, .blocks_y = 6}, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.node_count()) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.node_count()) - 1));
    if (a == b) continue;
    for (Mode mode : kAllModes) {
      const auto d = shortest_path(net, a, b, mode);
      const auto s = astar_path(net, a, b, mode);
      ASSERT_EQ(d.has_value(), s.has_value());
      if (d) EXPECT_NEAR(d->travel_time_s, s->travel_time_s, 1e-6);
    }
  }
}

TEST(Route, PathEndpointsAndPolyline) {
  const auto net = make_diamond();
  const auto path = shortest_path(net, 0, 3, Mode::kWalking);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes.front(), 0u);
  EXPECT_EQ(path->nodes.back(), 3u);
  const auto poly = path_polyline(net, *path);
  EXPECT_EQ(poly.size(), path->nodes.size());
  EXPECT_EQ(poly.front(), net.node(0).pos);
}

TEST(City, GeneratesConnectedWalkableGraph) {
  Rng rng(21);
  const auto net = make_city({.blocks_x = 8, .blocks_y = 7}, rng);
  EXPECT_EQ(net.node_count(), 56u);

  // BFS over all edges (everything is walkable): one component.
  std::vector<bool> seen(net.node_count(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const auto n = frontier.front();
    frontier.pop();
    for (auto e : net.edges_at(n)) {
      const auto m = net.other_end(e, n);
      if (!seen[m]) {
        seen[m] = true;
        ++visited;
        frontier.push(m);
      }
    }
  }
  EXPECT_EQ(visited, net.node_count());
}

TEST(City, DrivingReachableOnArterialSkeleton) {
  Rng rng(22);
  const auto net = make_city({.blocks_x = 6, .blocks_y = 6, .arterial_every = 2}, rng);
  // Any two arterial-line intersections must be mutually drivable.
  const auto p = shortest_path(net, 0, net.node_count() - 2, Mode::kDriving);
  // Node 0 is on arterial lines (0,0); last-but-one may not be, so route from
  // two known arterial corners instead.
  const auto q = shortest_path(net, 0, 4, Mode::kDriving);  // same arterial row
  EXPECT_TRUE(q.has_value());
  (void)p;
}

TEST(City, DeterministicForSeed) {
  Rng rng1(5);
  Rng rng2(5);
  const auto a = make_city({}, rng1);
  const auto b = make_city({}, rng2);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.node(i).pos, b.node(i).pos);
  }
}

TEST(City, RejectsTinyGrids) {
  Rng rng(1);
  EXPECT_THROW(make_city({.blocks_x = 1, .blocks_y = 5}, rng), std::invalid_argument);
}

// Parameterized sweep: navigation routes are mode-feasible and reasonably
// direct for every transport mode.
class NavModeSweep : public ::testing::TestWithParam<Mode> {};

TEST_P(NavModeSweep, RoutesAreFeasibleAndBounded) {
  Rng rng(55);
  const auto net = make_city({.blocks_x = 7, .blocks_y = 7}, rng);
  NavigationService nav(net);
  const Mode mode = GetParam();
  for (int trial = 0; trial < 10; ++trial) {
    const Enu from{rng.uniform(0, 300), rng.uniform(0, 300)};
    const Enu to{rng.uniform(0, 300), rng.uniform(0, 300)};
    const auto route = nav.route({from, to, mode});
    if (!route) continue;  // degenerate same-node request
    // Every polyline vertex is a network node position.
    for (const auto& p : route->polyline) {
      EXPECT_LT(net.distance_to_network(p), 1e-9);
    }
    // Route length bounded below by the snapped straight line and above by a
    // sane detour factor on a connected grid.
    const double direct = distance(route->polyline.front(), route->polyline.back());
    EXPECT_GE(route->length_m, direct - 1e-6);
    EXPECT_LE(route->length_m, 6.0 * direct + 400.0);
    EXPECT_GT(route->recommended_speed_mps, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, NavModeSweep,
                         ::testing::Values(Mode::kWalking, Mode::kCycling,
                                           Mode::kDriving));

TEST(Nav, RouteHasSpeedAndPolyline) {
  Rng rng(31);
  const auto net = make_city({}, rng);
  NavigationService nav(net);
  const auto box = net.bounds();
  const RouteRequest req{{box.min_east, box.min_north},
                         {box.max_east, box.max_north},
                         Mode::kWalking};
  const auto route = nav.route(req);
  ASSERT_TRUE(route.has_value());
  EXPECT_GE(route->polyline.size(), 2u);
  EXPECT_GT(route->length_m, 100.0);
  EXPECT_GT(route->recommended_speed_mps, 0.5);
  EXPECT_LT(route->recommended_speed_mps, 3.0);  // walking speeds
}

TEST(Nav, SampleRouteSpacingAndEndpoints) {
  const std::vector<Enu> poly = {{0, 0}, {100, 0}};
  const auto samples = sample_route(poly, 2.0, 1.0);  // 2 m steps
  ASSERT_GE(samples.size(), 50u);
  EXPECT_EQ(samples.front(), poly.front());
  EXPECT_EQ(samples.back(), poly.back());
  for (std::size_t i = 1; i + 1 < samples.size(); ++i) {
    EXPECT_NEAR(distance(samples[i - 1], samples[i]), 2.0, 1e-9);
  }
}

TEST(Nav, SampleRouteHandlesCorners) {
  const std::vector<Enu> poly = {{0, 0}, {5, 0}, {5, 5}};
  const auto samples = sample_route(poly, 3.0, 1.0);
  EXPECT_EQ(samples.back(), poly.back());
  // Arc-length spacing holds across the corner.
  double total = 0.0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    total += distance(samples[i - 1], samples[i]);
  }
  // Straight-line steps cut the corner, so the summed length is a bit short.
  EXPECT_NEAR(total, 10.0, 1.1);
}

TEST(Nav, SampleRouteValidatesInput) {
  EXPECT_THROW(sample_route({{0, 0}}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_route({{0, 0}, {1, 0}}, 0.0, 1.0), std::invalid_argument);
}

TEST(Nav, RouteDeviationMeasuresDistance) {
  const std::vector<Enu> route = {{0, 0}, {100, 0}};
  const std::vector<Enu> on = {{10, 0}, {50, 0}, {90, 0}};
  const std::vector<Enu> off = {{10, 5}, {50, 5}, {90, 5}};
  EXPECT_NEAR(route_deviation_m(on, route), 0.0, 1e-9);
  EXPECT_NEAR(route_deviation_m(off, route), 5.0, 1e-9);
  EXPECT_THROW(route_deviation_m({}, route), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::map
