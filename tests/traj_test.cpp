// Trajectory container, statistics, CSV round-trips, and — critically — the
// feature encoders' analytic gradients checked against finite differences
// (these gradients drive the C&W attack).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "traj/features.hpp"
#include "traj/io.hpp"
#include "traj/trajectory.hpp"

namespace trajkit {
namespace {

const LocalProjection kProj({0.0, 0.0});

Trajectory make_line(std::size_t n, double step_m, double interval_s = 1.0) {
  std::vector<Enu> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i) * step_m, 0.0});
  }
  return Trajectory::from_enu(pts, kProj, Mode::kWalking, interval_s);
}

TEST(Trajectory, BasicAccessors) {
  const auto t = make_line(5, 2.0);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.interval_s(), 1.0);
  EXPECT_DOUBLE_EQ(t.duration_s(), 4.0);
  EXPECT_EQ(t.mode(), Mode::kWalking);
  EXPECT_NEAR(t.length_m(), 8.0, 1e-6);
}

TEST(Trajectory, RejectsNonIncreasingTimestamps) {
  std::vector<TrajPoint> pts = {{{0, 0}, 0.0}, {{0, 0}, 0.0}};
  EXPECT_THROW(Trajectory(std::move(pts), Mode::kWalking), std::invalid_argument);
}

TEST(Trajectory, FromEnuRejectsBadInterval) {
  EXPECT_THROW(Trajectory::from_enu({{0, 0}}, kProj, Mode::kWalking, 0.0),
               std::invalid_argument);
}

TEST(Trajectory, SpeedsAndAccelerations) {
  const auto t = make_line(4, 3.0, 2.0);  // 1.5 m/s constant
  const auto v = t.speeds_mps();
  ASSERT_EQ(v.size(), 3u);
  for (double s : v) EXPECT_NEAR(s, 1.5, 1e-6);
  const auto a = t.accelerations_mps2();
  ASSERT_EQ(a.size(), 2u);
  for (double x : a) EXPECT_NEAR(x, 0.0, 1e-6);
}

TEST(Trajectory, EnuRoundTrip) {
  const auto t = make_line(6, 1.7);
  const auto pts = t.to_enu(kProj);
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_NEAR(pts[3].east, 5.1, 1e-6);
}

TEST(Trajectory, SetPositionsKeepsTimesAndChecksSize) {
  auto t = make_line(4, 1.0);
  std::vector<Enu> moved = {{0, 1}, {1, 1}, {2, 1}, {3, 1}};
  t.set_positions(moved, kProj);
  EXPECT_NEAR(t.to_enu(kProj)[2].north, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(t[2].time_s, 2.0);
  EXPECT_THROW(t.set_positions({{0, 0}}, kProj), std::invalid_argument);
}

TEST(Trajectory, SliceBoundsChecked) {
  const auto t = make_line(6, 1.0);
  const auto s = t.slice(2, 3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.front().time_s, 2.0);
  EXPECT_THROW(t.slice(4, 3), std::out_of_range);
}

TEST(ModeName, AllModesNamed) {
  EXPECT_STREQ(mode_name(Mode::kWalking), "walking");
  EXPECT_STREQ(mode_name(Mode::kCycling), "cycling");
  EXPECT_STREQ(mode_name(Mode::kDriving), "driving");
}

TEST(Io, CsvRoundTrip) {
  TrajectoryList trajs;
  trajs.push_back(make_line(4, 2.0));
  auto second = make_line(3, 5.0);
  second.set_mode(Mode::kDriving);
  trajs.push_back(second);

  std::stringstream ss;
  write_csv(ss, trajs);
  const auto back = read_csv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].size(), 4u);
  EXPECT_EQ(back[1].mode(), Mode::kDriving);
  EXPECT_NEAR(back[0].length_m(), trajs[0].length_m(), 1e-3);
}

TEST(Io, RandomisedRoundTripSweep) {
  // Fuzz-ish property: any well-formed trajectory list survives a CSV
  // round-trip with metre-level geometry intact.
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    TrajectoryList trajs;
    const int count = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int t = 0; t < count; ++t) {
      std::vector<Enu> pts;
      const int n = 2 + static_cast<int>(rng.uniform_int(0, 20));
      for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(-500, 500), rng.uniform(-500, 500)});
      }
      const Mode mode = kAllModes[static_cast<std::size_t>(rng.uniform_int(0, 2))];
      trajs.push_back(Trajectory::from_enu(pts, kProj, mode,
                                           rng.uniform(0.5, 3.0),
                                           rng.uniform(0, 1e6)));
    }
    std::stringstream ss;
    write_csv(ss, trajs);
    const auto back = read_csv(ss);
    ASSERT_EQ(back.size(), trajs.size());
    for (std::size_t t = 0; t < trajs.size(); ++t) {
      ASSERT_EQ(back[t].size(), trajs[t].size());
      EXPECT_EQ(back[t].mode(), trajs[t].mode());
      const auto a = trajs[t].to_enu(kProj);
      const auto b = back[t].to_enu(kProj);
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].east, b[i].east, 1e-3);
        EXPECT_NEAR(a[i].north, b[i].north, 1e-3);
        EXPECT_NEAR(trajs[t][i].time_s, back[t][i].time_s, 5e-3);
      }
    }
  }
}

TEST(Io, RejectsBadHeaderAndCells) {
  std::stringstream bad_header("wrong\n");
  EXPECT_THROW(read_csv(bad_header), std::runtime_error);
  std::stringstream bad_cell("traj_id,mode,lat,lon,time_s\n0,walking,abc,0,0\n");
  EXPECT_THROW(read_csv(bad_cell), std::runtime_error);
  std::stringstream bad_cols("traj_id,mode,lat,lon,time_s\n0,walking,0,0\n");
  EXPECT_THROW(read_csv(bad_cols), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Feature encoders.

TEST(DistAngleEncoder, EncodesKnownDisplacements) {
  DistAngleEncoder enc(10.0);
  const std::vector<Enu> pts = {{0, 0}, {10, 0}, {10, 10}};
  const auto f = enc.encode(pts);
  EXPECT_EQ(f.steps, 2u);
  EXPECT_EQ(f.dim, 2u);
  EXPECT_NEAR(f.at(0, 0), 1.0, 1e-12);          // 10 m / scale 10
  EXPECT_NEAR(f.at(0, 1), 0.0, 1e-12);          // east
  EXPECT_NEAR(f.at(1, 1), 0.5, 1e-12);          // north = pi/2 / pi
}

TEST(DxDyEncoder, EncodesKnownDisplacements) {
  DxDyEncoder enc(10.0);
  const std::vector<Enu> pts = {{0, 0}, {5, -10}};
  const auto f = enc.encode(pts);
  EXPECT_NEAR(f.at(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(f.at(0, 1), -1.0, 1e-12);
}

TEST(Encoders, RejectTooFewPoints) {
  DistAngleEncoder enc;
  EXPECT_THROW(enc.encode({{0, 0}}), std::invalid_argument);
}

// Finite-difference check of the encoder vector-Jacobian products, over both
// encoders and several random geometries.
struct EncoderCase {
  const char* name;
  bool dist_angle;
  std::uint64_t seed;
};

class EncoderGradient : public ::testing::TestWithParam<EncoderCase> {};

TEST_P(EncoderGradient, MatchesFiniteDifference) {
  const auto param = GetParam();
  Rng rng(param.seed);
  std::vector<Enu> pts;
  for (int i = 0; i < 7; ++i) {
    pts.push_back({rng.uniform(-20, 20), rng.uniform(-20, 20)});
  }
  DistAngleEncoder da(7.0);
  DxDyEncoder dd(7.0);
  const FeatureEncoder& enc =
      param.dist_angle ? static_cast<const FeatureEncoder&>(da) : dd;

  // Random linear functional of the features: L = sum w_ij * f_ij.
  const auto f0 = enc.encode(pts);
  std::vector<double> w(f0.values.size());
  for (auto& x : w) x = rng.uniform(-1, 1);
  auto loss = [&](const std::vector<Enu>& p) {
    const auto f = enc.encode(p);
    double total = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) total += w[i] * f.values[i];
    return total;
  };

  // Analytic gradient via backprop of dL/df = w.
  FeatureSequence dfeat = f0;
  dfeat.values = w;
  std::vector<Enu> grad(pts.size(), Enu{});
  enc.backprop(pts, dfeat, grad);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (int axis = 0; axis < 2; ++axis) {
      auto plus = pts;
      auto minus = pts;
      double& pv = axis == 0 ? plus[i].east : plus[i].north;
      double& mv = axis == 0 ? minus[i].east : minus[i].north;
      pv += eps;
      mv -= eps;
      const double numeric = (loss(plus) - loss(minus)) / (2 * eps);
      const double analytic = axis == 0 ? grad[i].east : grad[i].north;
      EXPECT_NEAR(analytic, numeric, 1e-5)
          << param.name << " point " << i << " axis " << axis;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EncoderGradient,
    ::testing::Values(EncoderCase{"dist_angle_a", true, 11},
                      EncoderCase{"dist_angle_b", true, 12},
                      EncoderCase{"dist_angle_c", true, 13},
                      EncoderCase{"dx_dy_a", false, 21},
                      EncoderCase{"dx_dy_b", false, 22}));

TEST(MotionSummary, DimensionsAndNames) {
  const auto t = make_line(10, 2.0);
  const auto f = motion_summary_features(t, kProj);
  EXPECT_EQ(f.size(), motion_summary_feature_names().size());
  EXPECT_EQ(f.size(), 34u);  // 6 location + 7 series * 4 stats
}

TEST(MotionSummary, ConstantSpeedLineHasZeroAcceleration) {
  const auto t = make_line(10, 2.0);
  const auto names = motion_summary_feature_names();
  const auto f = motion_summary_features(t, kProj);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "speed_mean") EXPECT_NEAR(f[i], 2.0, 1e-6);
    if (names[i] == "accel_mean") EXPECT_NEAR(f[i], 0.0, 1e-6);
    if (names[i] == "speed_std") EXPECT_NEAR(f[i], 0.0, 1e-6);
  }
}

TEST(MotionSummary, RequiresThreePoints) {
  const auto t = make_line(2, 1.0);
  EXPECT_THROW(motion_summary_features(t, kProj), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit
