// Forgery attacks: naive noise, the smooth replay perturbation, MinD
// estimation and the C&W adversarial generator against a trained model.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/cw.hpp"
#include "attack/gradient_baselines.hpp"
#include "attack/mind.hpp"
#include "attack/naive.hpp"
#include "attack/replay.hpp"
#include "common/stats.hpp"
#include "dtw/dtw.hpp"
#include "map/city.hpp"
#include "sim/dataset.hpp"

namespace trajkit::attack {
namespace {

std::vector<Enu> straight_line(std::size_t n, double step) {
  std::vector<Enu> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i) * step, 0.0});
  }
  return pts;
}

TEST(NaiveAttack, AddsNoiseOfRequestedMagnitude) {
  Rng rng(1);
  const auto pts = straight_line(500, 2.0);
  const auto noisy = naive_noise_attack(pts, rng, 0.5);
  ASSERT_EQ(noisy.size(), pts.size());
  RunningStats err;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    err.add(noisy[i].east - pts[i].east);
    err.add(noisy[i].north - pts[i].north);
  }
  EXPECT_NEAR(err.mean(), 0.0, 0.1);
  EXPECT_NEAR(err.stddev(), 0.5, 0.06);
}

TEST(NaiveAttack, ZeroSigmaIsIdentity) {
  Rng rng(2);
  const auto pts = straight_line(5, 1.0);
  EXPECT_EQ(naive_noise_attack(pts, rng, 0.0), pts);
  EXPECT_THROW(naive_noise_attack(pts, rng, -1.0), std::invalid_argument);
}

TEST(ReplayPerturbation, HitsTargetDtwNorm) {
  Rng rng(3);
  const auto hist = straight_line(40, 2.0);
  for (double target : {0.8, 1.3, 2.5}) {
    const auto fake = smooth_replay_perturbation(hist, target, rng);
    const double achieved = dtw_normalized(hist, fake);
    EXPECT_NEAR(achieved, target, target * 0.25) << "target " << target;
  }
}

TEST(ReplayPerturbation, EndpointsPinned) {
  Rng rng(4);
  const auto hist = straight_line(20, 3.0);
  const auto fake = smooth_replay_perturbation(hist, 1.5, rng);
  EXPECT_EQ(fake.front(), hist.front());
  EXPECT_EQ(fake.back(), hist.back());
}

TEST(ReplayPerturbation, DisplacementIsSmooth) {
  Rng rng(5);
  const auto hist = straight_line(60, 2.0);
  const auto fake = smooth_replay_perturbation(hist, 1.5, rng);
  // Correlated displacements: consecutive displacement deltas stay small
  // relative to the overall displacement scale.
  RunningStats disp;
  RunningStats delta;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    disp.add(distance(fake[i], hist[i]));
    if (i > 0) {
      const Enu d1 = fake[i] - hist[i];
      const Enu d0 = fake[i - 1] - hist[i - 1];
      delta.add((d1 - d0).norm());
    }
  }
  EXPECT_LT(delta.mean(), disp.mean());
}

TEST(ReplayPerturbation, ValidatesInput) {
  Rng rng(6);
  EXPECT_THROW(smooth_replay_perturbation(straight_line(2, 1.0), 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(smooth_replay_perturbation(straight_line(5, 1.0), 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(smooth_replay_perturbation(straight_line(5, 1.0), 1.0, rng, 1.0),
               std::invalid_argument);
}

TEST(Mind, SameRouteRunsAreApartButBounded) {
  Rng city_rng(7);
  const auto net = map::make_city({.blocks_x = 6, .blocks_y = 6}, city_rng);
  const sim::TrajectorySimulator simulator(net);
  Rng rng(8);
  const auto est =
      estimate_mind(simulator, Mode::kWalking, 200.0, 10, 40, 1.0, rng);
  // Two genuine runs of the same route are never identical (GPS + human
  // variation) but also stay within a few metres of each other.
  EXPECT_GT(est.min_d, 0.05);
  EXPECT_LT(est.min_d, 5.0);
  EXPECT_GE(est.mean_d, est.min_d);
  EXPECT_GE(est.max_d, est.mean_d);
  EXPECT_EQ(est.repetitions, 10u);
}

TEST(Mind, PaperValuesPerMode) {
  EXPECT_DOUBLE_EQ(paper_mind(Mode::kWalking), 1.2);
  EXPECT_DOUBLE_EQ(paper_mind(Mode::kCycling), 1.5);
  EXPECT_DOUBLE_EQ(paper_mind(Mode::kDriving), 1.4);
}

TEST(Mind, RequiresTwoRepetitions) {
  Rng city_rng(9);
  const auto net = map::make_city({}, city_rng);
  const sim::TrajectorySimulator simulator(net);
  Rng rng(10);
  EXPECT_THROW(estimate_mind(simulator, Mode::kWalking, 100.0, 1, 20, 1.0, rng),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// C&W attack against a genuinely trained (small) model.

class CwAttackFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng city_rng(11);
    net_ = new map::RoadNetwork(map::make_city({.blocks_x = 6, .blocks_y = 6},
                                               city_rng));
    simulator_ = new sim::TrajectorySimulator(*net_);
    encoder_ = new DistAngleEncoder();

    // Small but real training set: genuine vs naive-replay trajectories.
    Rng rng(12);
    std::vector<FeatureSequence> xs;
    std::vector<int> ys;
    for (int i = 0; i < 240; ++i) {
      if (i % 4 == 3) {
        // Naive navigation fake: constant-speed resample + noise.
        const auto nav = simulator_->navigation_trajectory(Mode::kWalking, 32, 1.0, rng);
        const auto pts = nav.reported.to_enu(sim::sim_projection());
        xs.push_back(encoder_->encode(naive_noise_attack(pts, rng)));
        ys.push_back(0);
        continue;
      }
      const auto traj = simulator_->simulate_real(Mode::kWalking, 32, 1.0, rng);
      auto pts = traj.reported.to_enu(sim::sim_projection());
      if (i % 2 == 0) {
        xs.push_back(encoder_->encode(pts));
        ys.push_back(1);
      } else {
        xs.push_back(encoder_->encode(naive_noise_attack(pts, rng)));
        ys.push_back(0);
      }
    }
    nn::LstmClassifierConfig cfg;
    cfg.input_dim = 2;
    cfg.hidden_dim = 32;
    cfg.learning_rate = 3e-3;
    model_ = new nn::LstmClassifier(cfg, 13);
    model_->train(xs, ys, 50);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete encoder_;
    delete simulator_;
    delete net_;
  }

  static map::RoadNetwork* net_;
  static sim::TrajectorySimulator* simulator_;
  static DistAngleEncoder* encoder_;
  static nn::LstmClassifier* model_;
};

map::RoadNetwork* CwAttackFixture::net_ = nullptr;
sim::TrajectorySimulator* CwAttackFixture::simulator_ = nullptr;
DistAngleEncoder* CwAttackFixture::encoder_ = nullptr;
nn::LstmClassifier* CwAttackFixture::model_ = nullptr;

TEST_F(CwAttackFixture, ModelActuallyDetectsNaiveAttacks) {
  Rng rng(14);
  int caught = 0;
  int passed = 0;
  for (int i = 0; i < 20; ++i) {
    const auto traj = simulator_->simulate_real(Mode::kWalking, 32, 1.0, rng);
    auto pts = traj.reported.to_enu(sim::sim_projection());
    passed += model_->predict(encoder_->encode(pts)) == 1;
    caught += model_->predict(encoder_->encode(naive_noise_attack(pts, rng))) == 0;
  }
  EXPECT_GE(passed, 14);
  EXPECT_GE(caught, 14);
}

TEST_F(CwAttackFixture, ReplayAttackBecomesAdversarialAtTargetDistance) {
  Rng rng(15);
  const auto traj = simulator_->simulate_real(Mode::kWalking, 32, 1.0, rng);
  const auto hist = traj.reported.to_enu(sim::sim_projection());

  CwConfig cfg;
  cfg.iterations = 300;
  const CwAttacker attacker(*model_, *encoder_, cfg);
  const auto result = attacker.forge_replay(hist, 1.2, 0.1);

  EXPECT_TRUE(result.adversarial);
  EXPECT_GE(result.p_real, 0.5);
  // Not a trivial replay: clearly away from the historical trace...
  EXPECT_GT(result.dtw_norm, 0.6);
  // ...but not an implausible detour either.
  EXPECT_LT(result.dtw_norm, 4.0);
  // Endpoints honoured.
  EXPECT_EQ(result.points.front(), hist.front());
  EXPECT_EQ(result.points.back(), hist.back());
}

TEST_F(CwAttackFixture, NavigationAttackStaysNearRoute) {
  Rng rng(16);
  const auto nav = simulator_->navigation_trajectory(Mode::kWalking, 32, 1.0, rng);
  const auto reference = nav.reported.to_enu(sim::sim_projection());
  // The naive navigation attack (resample + noise, Sec. IV-A2) is mostly
  // flagged; individual samples can slip through a model this small, so the
  // check is statistical.
  Rng noise_rng(160);
  int flagged = 0;
  for (int i = 0; i < 10; ++i) {
    const auto other =
        simulator_->navigation_trajectory(Mode::kWalking, 32, 1.0, noise_rng);
    const auto pts = other.reported.to_enu(sim::sim_projection());
    flagged += model_->predict(encoder_->encode(
                   naive_noise_attack(pts, noise_rng))) == 0;
  }
  EXPECT_GE(flagged, 6);

  CwConfig cfg;
  cfg.iterations = 300;
  const CwAttacker attacker(*model_, *encoder_, cfg);
  const auto result = attacker.forge_navigation(reference);
  // ...while the adversarial version passes and stays close to the route.
  EXPECT_TRUE(result.adversarial);
  EXPECT_LT(result.dtw_norm, 5.0);
}

TEST_F(CwAttackFixture, HistoryIsRecordedAtStride) {
  Rng rng(17);
  const auto traj = simulator_->simulate_real(Mode::kWalking, 32, 1.0, rng);
  const auto hist = traj.reported.to_enu(sim::sim_projection());
  CwConfig cfg;
  cfg.iterations = 100;
  cfg.history_stride = 10;
  const CwAttacker attacker(*model_, *encoder_, cfg);
  const auto result = attacker.forge_replay(hist, 1.2);
  ASSERT_GE(result.history.size(), 10u);
  EXPECT_EQ(result.history.front().iteration, 0u);
  // Wall time is monotone.
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].seconds, result.history[i - 1].seconds);
  }
}

TEST_F(CwAttackFixture, ReplayForgeryIsDeterministic) {
  Rng rng(25);
  const auto traj = simulator_->simulate_real(Mode::kWalking, 32, 1.0, rng);
  const auto hist = traj.reported.to_enu(sim::sim_projection());
  CwConfig cfg;
  cfg.iterations = 80;
  const CwAttacker attacker(*model_, *encoder_, cfg);
  const auto a = attacker.forge_replay(hist, 1.2);
  const auto b = attacker.forge_replay(hist, 1.2);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i], b.points[i]);
  }
}

TEST_F(CwAttackFixture, PgdCrossesBoundaryWithinBudget) {
  Rng rng(18);
  const auto traj = simulator_->simulate_real(Mode::kWalking, 32, 1.0, rng);
  auto reference = traj.reported.to_enu(sim::sim_projection());
  reference = naive_noise_attack(reference, rng);  // start from a flagged fake

  GradientAttackConfig cfg;
  cfg.epsilon_m = 2.0;
  cfg.steps = 60;
  const GradientAttacker attacker(*model_, *encoder_, cfg);
  const auto result = attacker.pgd(reference);
  EXPECT_TRUE(result.adversarial);
  // The box projection really constrains the perturbation.
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_LE(std::fabs(result.points[i].east - reference[i].east), 2.0 + 1e-9);
    EXPECT_LE(std::fabs(result.points[i].north - reference[i].north), 2.0 + 1e-9);
  }
  // Endpoints pinned.
  EXPECT_EQ(result.points.front(), reference.front());
  EXPECT_EQ(result.points.back(), reference.back());
}

TEST_F(CwAttackFixture, FgsmIsWeakerThanPgd) {
  Rng rng(19);
  std::size_t fgsm_wins = 0;
  std::size_t pgd_wins = 0;
  const GradientAttacker attacker(*model_, *encoder_, {});
  for (int i = 0; i < 8; ++i) {
    const auto traj = simulator_->simulate_real(Mode::kWalking, 32, 1.0, rng);
    auto reference = traj.reported.to_enu(sim::sim_projection());
    reference = naive_noise_attack(reference, rng);
    fgsm_wins += attacker.fgsm(reference).adversarial;
    pgd_wins += attacker.pgd(reference).adversarial;
  }
  EXPECT_GE(pgd_wins, fgsm_wins);
  EXPECT_GE(pgd_wins, 6u);
}

TEST_F(CwAttackFixture, GradientAttacksCannotTargetReplayBand) {
  // Unlike C&W's Eq. 2, FGSM/PGD have no DTW control: their outputs sit at
  // whatever distance the gradient walk produced, typically far below MinD —
  // i.e. detectable replays.
  Rng rng(20);
  const auto traj = simulator_->simulate_real(Mode::kWalking, 32, 1.0, rng);
  const auto reference = traj.reported.to_enu(sim::sim_projection());
  const GradientAttacker attacker(*model_, *encoder_, {});
  const auto result = attacker.pgd(reference);
  EXPECT_LT(result.dtw_norm, 1.2);  // below MinD: the replay check wins
}

TEST_F(CwAttackFixture, GradientAttackerValidatesInput) {
  const GradientAttacker attacker(*model_, *encoder_, {});
  EXPECT_THROW(attacker.pgd({{0, 0}, {1, 1}}), std::invalid_argument);
  GradientAttackConfig bad;
  bad.epsilon_m = 0.0;
  EXPECT_THROW(GradientAttacker(*model_, *encoder_, bad), std::invalid_argument);
}

TEST_F(CwAttackFixture, ValidatesInput) {
  const CwAttacker attacker(*model_, *encoder_, {});
  EXPECT_THROW(attacker.forge_navigation({{0, 0}, {1, 1}}), std::invalid_argument);
  EXPECT_THROW(attacker.forge_replay(straight_line(5, 1.0), -1.0),
               std::invalid_argument);
  CwConfig bad;
  bad.iterations = 0;
  EXPECT_THROW(CwAttacker(*model_, *encoder_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::attack
