// Geo-sharded verification: shard-vs-oracle bitwise equivalence, router
// split/merge properties, consistent-hash stability, replication and
// leader-kill failover.
//
// The contract under test (serve/shard_router.hpp): a trajectory split at
// shard boundaries, fanned out to per-shard slice detectors and merged again
// produces the *bit-identical* verdict payload of the unsharded oracle, for
// any shard count, any thread count, and any boundary-crossing pattern — and
// the replication layer never loses an acknowledged upload, even when the
// leader is killed at every journal-shipping fault point.
//
// Fork discipline (tests/support/crash.hpp): failover children are I/O-only
// — worlds and models are built in the parent, children open stores and
// ingest, and no child creates a thread (ShardService construction spawns
// nothing; workers are opt-in via start()).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/durable/journal.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "serve/service.hpp"
#include "serve/shard_router.hpp"
#include "serve/shard_service.hpp"
#include "support/crash.hpp"
#include "support/fixtures.hpp"
#include "support/golden.hpp"
#include "wifi/crowd_store.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;

void remove_store(const std::string& dir) {
  for (const char* name : {"/crowd.snapshot", "/crowd.snapshot.tmp",
                           "/crowd.journal", "/crowd.journal.tmp"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
}

Enu random_area_pos(Rng& rng, const ts::LinearWorldConfig& cfg) {
  const double lo = cfg.margin_m;
  const double hi = cfg.area_m - cfg.margin_m;
  return {rng.uniform(lo, hi), rng.uniform(lo, hi)};
}

/// A genuine upload over caller-chosen positions (scan = the analytic field
/// heard where the point claims to be).
wifi::ScannedUpload upload_at(const std::vector<Enu>& positions) {
  wifi::ScannedUpload u;
  for (const Enu& p : positions) {
    u.positions.push_back(p);
    u.scans.push_back({{1, ts::LinearFieldWorld::field_rssi(p)}});
  }
  return u;
}

/// Build an upload that crosses shard-ownership boundaries exactly
/// `crossings` times under `router`: the first `crossings` steps move to a
/// position owned by a different shard, the rest stay inside the previous
/// point's tile.  Rejection-sampled but fully deterministic for a fixed rng.
wifi::ScannedUpload crossing_upload(const serve::ShardRouter& router,
                                    const ts::LinearWorldConfig& cfg,
                                    std::size_t crossings, Rng& rng) {
  const double tile = router.config().tile_m;
  std::vector<Enu> positions;
  positions.push_back(random_area_pos(rng, cfg));
  auto owner = [&](const Enu& p) {
    return router.ring().owner_of(tile_of(p, tile));
  };
  while (positions.size() < cfg.upload_points) {
    const Enu prev = positions.back();
    if (positions.size() <= crossings) {
      // Need an ownership change: sample until the owner differs.
      const std::size_t before = positions.size();
      for (int tries = 0; tries < 500; ++tries) {
        const Enu p = random_area_pos(rng, cfg);
        if (owner(p) != owner(prev)) {
          positions.push_back(p);
          break;
        }
      }
      if (positions.size() == before) {
        ADD_FAILURE() << "no ownership boundary reachable from ("
                      << prev.east << ", " << prev.north << ")";
        positions.push_back(random_area_pos(rng, cfg));  // terminate the loop
      }
    } else {
      // Stay put: jitter within the previous point's own tile.
      const TileId t = tile_of(prev, tile);
      const double lo_e = std::max(cfg.margin_m, double(t.tx) * tile);
      const double hi_e = std::min(cfg.area_m - cfg.margin_m,
                                   double(t.tx + 1) * tile - 1e-6);
      const double lo_n = std::max(cfg.margin_m, double(t.ty) * tile);
      const double hi_n = std::min(cfg.area_m - cfg.margin_m,
                                   double(t.ty + 1) * tile - 1e-6);
      positions.push_back({rng.uniform(lo_e, hi_e), rng.uniform(lo_n, hi_n)});
    }
  }
  return upload_at(positions);
}

// ---------------------------------------------------------------------------
// Shard-vs-oracle bitwise equivalence

TEST(ShardEquivalence, BitwiseEqualAcrossShardAndThreadCounts) {
  // 10-point uploads so crafted trajectories can cross up to 8 boundaries
  // (9 segments); train pairs stay at the fixture default.
  ts::LinearWorldConfig cfg;
  cfg.upload_points = 10;
  ts::LinearFieldWorld w(cfg);

  // The oracle payloads: analyze() is thread-count invariant (PR 1), so one
  // capture serves every (shards, threads) combination.
  std::vector<wifi::ScannedUpload> uploads;
  Rng rng(2026);
  for (int i = 0; i < 20; ++i) uploads.push_back(w.upload(i % 2 == 0, rng));
  std::vector<std::string> oracle;
  for (const auto& u : uploads) {
    oracle.push_back(w.detector().analyze(u).canonical_string());
  }

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t threads : {1u, 4u}) {
      set_global_threads(threads);
      serve::ShardRouterConfig rc;
      rc.shards = shards;
      rc.tile_m = 8.0;
      serve::ShardRouter router(w.detector(), rc);

      for (std::size_t i = 0; i < uploads.size(); ++i) {
        const auto response = router.verify(uploads[i], i);
        ASSERT_EQ(response.outcome, serve::Outcome::kOk)
            << "shards=" << shards << " threads=" << threads << ": "
            << response.error;
        EXPECT_EQ(response.report.canonical_string(), oracle[i])
            << "shards=" << shards << " threads=" << threads << " upload=" << i;
      }

      // Adversarial boundary coverage: trajectories crossing exactly
      // 1..8 shard boundaries (shard count permitting) stay bit-equal too.
      if (shards > 1) {
        Rng crossing_rng(31 * shards + threads);
        for (std::size_t crossings = 1; crossings <= 8; ++crossings) {
          const auto u = crossing_upload(router, cfg, crossings, crossing_rng);
          ASSERT_EQ(u.positions.size(), cfg.upload_points);
          ASSERT_EQ(router.split(u).size(), crossings + 1)
              << "shards=" << shards << " crossings=" << crossings;
          const auto response = router.verify(u);
          ASSERT_EQ(response.outcome, serve::Outcome::kOk) << response.error;
          EXPECT_EQ(response.report.canonical_string(),
                    w.detector().analyze(u).canonical_string())
              << "shards=" << shards << " threads=" << threads
              << " crossings=" << crossings;
        }
      }
    }
  }
  set_global_threads(1);
}

TEST(ShardEquivalence, MatchesSingleVerifierServiceOracle) {
  ts::LinearFieldWorld w;
  // Capture through the single-shard serving path: the full VerdictResponse
  // canonical payload (id + outcome + report) must match the router's.
  std::vector<wifi::ScannedUpload> probes = w.probe_mix(6);

  serve::VerifierServiceConfig sc;
  sc.auto_start = false;
  serve::VerifierService service(w.detector(), sc);

  serve::ShardRouterConfig rc;
  rc.shards = 4;
  serve::ShardRouter router(w.detector(), rc);

  for (const auto& probe : probes) {
    const auto want = service.verify_now(probe);
    ASSERT_EQ(want.outcome, serve::Outcome::kOk);
    const auto got = router.verify(probe, want.request_id);
    EXPECT_EQ(got.canonical_string(), want.canonical_string());
  }
}

TEST(ShardEquivalence, ShardSlicesCoverHaloAndPreserveGlobalOrder) {
  ts::LinearFieldWorld w;
  serve::ShardRouterConfig rc;
  rc.shards = 4;
  serve::ShardRouter router(w.detector(), rc);
  EXPECT_DOUBLE_EQ(router.halo_m(),
                   w.detector().config().confidence.reference_radius_m +
                       w.detector().config().confidence.rpd.counting_radius_m);

  const auto& index = w.detector().index();
  for (std::size_t s = 0; s < router.shards(); ++s) {
    const auto& slice = router.shard(s).detector().index();
    // Slice grid geometry is the oracle's.
    EXPECT_EQ(slice.bounds().min_east, index.bounds().min_east);
    EXPECT_EQ(slice.bounds().max_north, index.bounds().max_north);
    // Slices are stable-order subsequences of the global set.
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      while (cursor < index.size() &&
             !(index[cursor].pos == slice[i].pos &&
               index[cursor].scan == slice[i].scan)) {
        ++cursor;
      }
      ASSERT_LT(cursor, index.size())
          << "shard " << s << " slice entry " << i
          << " is not in global order";
      ++cursor;
    }
    // Every point a shard owns carries its full halo: all global points
    // within halo_m of an owned point's position are in the slice.
    for (std::size_t i = 0; i < slice.size(); ++i) {
      const std::size_t owner = router.ring().owner_of(
          tile_of(slice[i].pos, router.config().tile_m));
      if (owner != s) continue;  // halo entry, not owned
      const auto wanted = index.within(slice[i].pos, router.halo_m());
      const auto have = slice.within(slice[i].pos, router.halo_m());
      EXPECT_EQ(have.size(), wanted.size())
          << "shard " << s << " misses halo neighbours of owned point " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Router split/merge unit tests

TEST(ShardRouterSplit, TrajectoryInsideOneTileIsOneSegment) {
  ts::LinearFieldWorld w;
  serve::ShardRouterConfig rc;
  rc.shards = 8;
  serve::ShardRouter router(w.detector(), rc);

  // All points inside tile (0, 0) — ownership cannot change.
  const auto u = upload_at({{3.0, 3.0}, {4.5, 5.0}, {7.9, 7.9}, {2.1, 6.0}});
  const auto segments = router.split(u);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].begin, 0u);
  EXPECT_EQ(segments[0].end, u.positions.size());
  EXPECT_EQ(segments[0].shard, router.ring().owner_of(tile_of({3.0, 3.0}, 8.0)));
}

TEST(ShardRouterSplit, BoundaryPinnedPointBelongsToItsFloorTile) {
  // A point exactly on a tile edge floors into the east/north tile, so the
  // split is deterministic, not round-off luck.
  EXPECT_EQ(tile_of({8.0, 0.0}, 8.0), (TileId{1, 0}));
  EXPECT_EQ(tile_of({7.999999, 0.0}, 8.0), (TileId{0, 0}));
  EXPECT_EQ(tile_of({0.0, 16.0}, 8.0), (TileId{0, 2}));
  EXPECT_EQ(tile_of({-0.5, 8.0}, 8.0), (TileId{-1, 1}));

  ts::LinearFieldWorld w;
  serve::ShardRouterConfig rc;
  rc.shards = 4;
  serve::ShardRouter router(w.detector(), rc);
  const auto u = upload_at({{7.9, 5.0}, {8.0, 5.0}, {8.1, 5.0}});
  const auto segments = router.split(u);
  const std::size_t west = router.ring().owner_of({0, 0});
  const std::size_t east = router.ring().owner_of({1, 0});
  if (west == east) {
    ASSERT_EQ(segments.size(), 1u);
  } else {
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].end, 1u) << "the pinned point belongs east";
    EXPECT_EQ(segments[0].shard, west);
    EXPECT_EQ(segments[1].begin, 1u);
    EXPECT_EQ(segments[1].shard, east);
  }
}

TEST(ShardRouterSplit, AlternatingOwnersYieldSinglePointSegments) {
  ts::LinearWorldConfig cfg;
  cfg.upload_points = 10;
  ts::LinearFieldWorld w(cfg);
  serve::ShardRouterConfig rc;
  rc.shards = 8;
  serve::ShardRouter router(w.detector(), rc);

  // Every step changes owner => every segment is a single point.
  Rng rng(7);
  const auto u = crossing_upload(router, cfg, cfg.upload_points - 1, rng);
  const auto segments = router.split(u);
  ASSERT_EQ(segments.size(), u.positions.size());
  for (const auto& seg : segments) EXPECT_EQ(seg.end - seg.begin, 1u);
}

TEST(ShardRouterSplit, SplitNeverProducesEmptyOrOverlappingSegments) {
  ts::LinearWorldConfig cfg;
  ts::LinearFieldWorld w(cfg);
  serve::ShardRouterConfig rc;
  rc.shards = 8;
  rc.tile_m = 4.0;  // small tiles: many crossings
  serve::ShardRouter router(w.detector(), rc);

  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto walk = ts::random_walk_enu(rng, 12, 9.0, {15.0, 15.0});
    const auto u = upload_at(walk);
    const auto segments = router.split(u);
    std::size_t expect_begin = 0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      EXPECT_EQ(segments[i].begin, expect_begin) << "gap or overlap";
      EXPECT_LT(segments[i].begin, segments[i].end) << "empty segment";
      EXPECT_LT(segments[i].shard, router.shards());
      if (i > 0) {
        EXPECT_NE(segments[i].shard, segments[i - 1].shard)
            << "adjacent segments with one owner must have been merged";
      }
      expect_begin = segments[i].end;
    }
    EXPECT_EQ(expect_begin, u.positions.size()) << "segments must cover [0, n)";
  }

  wifi::ScannedUpload empty;
  EXPECT_TRUE(router.split(empty).empty());
}

// ---------------------------------------------------------------------------
// Consistent-hash ring

TEST(ConsistentHashRing, DeterministicAndBalanced) {
  const serve::ConsistentHashRing a(8, 64, 42);
  const serve::ConsistentHashRing b(8, 64, 42);
  std::vector<std::size_t> owned(8, 0);
  for (std::int64_t ty = 0; ty < 40; ++ty) {
    for (std::int64_t tx = 0; tx < 40; ++tx) {
      const std::size_t o = a.owner_of({tx, ty});
      EXPECT_EQ(o, b.owner_of({tx, ty}));
      ASSERT_LT(o, 8u);
      ++owned[o];
    }
  }
  // 1600 tiles over 8 shards: perfectly even would be 200 each; vnode
  // placement is hash-random, so only assert no shard is starved or hogging.
  for (std::size_t s = 0; s < owned.size(); ++s) {
    EXPECT_GT(owned[s], 40u) << "shard " << s << " starved";
    EXPECT_LT(owned[s], 800u) << "shard " << s << " owns half the world";
  }
}

TEST(ConsistentHashRing, GrowingTheFleetOnlyMovesTilesToTheNewShard) {
  for (const std::size_t n : {1u, 2u, 4u, 7u}) {
    const serve::ConsistentHashRing before(n, 64, 7);
    const serve::ConsistentHashRing after(n + 1, 64, 7);
    std::size_t moved = 0;
    std::size_t tiles = 0;
    for (std::int64_t ty = -20; ty < 20; ++ty) {
      for (std::int64_t tx = -20; tx < 20; ++tx) {
        const std::size_t o1 = before.owner_of({tx, ty});
        const std::size_t o2 = after.owner_of({tx, ty});
        ++tiles;
        if (o1 != o2) {
          ++moved;
          EXPECT_EQ(o2, n) << "a tile may only move to the new shard";
        }
      }
    }
    // Expected churn is ~tiles/(n+1); allow a generous factor for vnode
    // placement variance but reject full reshuffles.
    EXPECT_LT(moved, tiles * 2 / (n + 1) + tiles / 10)
        << "n=" << n << ": consistent hashing must not reshuffle the world";
    EXPECT_GT(moved, 0u) << "n=" << n << ": the new shard must own something";
  }
}

// ---------------------------------------------------------------------------
// Replication: leader -> follower shipping, cold start, promotion

wifi::ReferencePoint ingest_point(int i) {
  return {{double(i % 28) + 1.0, double((i * 7) % 28) + 1.0},
          {{1, -45 - (i % 40)}},
          static_cast<std::uint32_t>(i / 10)};
}

TEST(ShardReplication, AckImpliesFollowerDurability) {
  const std::string leader_dir = "shard_test_leader";
  const std::string follower_dir = "shard_test_follower";
  remove_store(leader_dir);
  remove_store(follower_dir);

  auto leader = serve::ShardService::open_leader(0, leader_dir);
  ASSERT_TRUE(leader.has_value()) << leader.error();
  auto follower = serve::ShardReplica::open(follower_dir);
  ASSERT_TRUE(follower.has_value()) << follower.error();
  leader.value()->attach_follower(follower.value().get());

  for (int i = 0; i < 20; ++i) {
    auto seq = leader.value()->ingest(ingest_point(i));
    ASSERT_TRUE(seq.has_value()) << seq.error();
    EXPECT_EQ(seq.value(), static_cast<std::uint64_t>(i));
    // The ack contract: by the time ingest returns, the follower holds it.
    EXPECT_EQ(follower.value()->next_seq(), seq.value() + 1);
  }
  EXPECT_EQ(leader.value()->acked_frames(), 20u);

  const auto& lp = leader.value()->store()->points();
  const auto& fp = follower.value()->store().points();
  ASSERT_EQ(lp.size(), fp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) {
    EXPECT_EQ(wifi::CrowdStore::encode_point(lp[i]),
              wifi::CrowdStore::encode_point(fp[i]));
  }

  remove_store(leader_dir);
  remove_store(follower_dir);
}

TEST(ShardReplication, ApplyFrameSkipsStaleAndRefusesGaps) {
  const std::string dir = "shard_test_replica_seq";
  remove_store(dir);
  auto replica = serve::ShardReplica::open(dir);
  ASSERT_TRUE(replica.has_value()) << replica.error();

  const std::string frame0 = wifi::CrowdStore::encode_point(ingest_point(0));
  const std::string frame1 = wifi::CrowdStore::encode_point(ingest_point(1));

  EXPECT_TRUE(replica.value()->apply_frame(0, frame0).value());
  // Redelivery of an applied frame is an idempotent no-op, not an error.
  EXPECT_FALSE(replica.value()->apply_frame(0, frame0).value());
  EXPECT_EQ(replica.value()->store().points().size(), 1u);
  // A gap means lost frames: refuse loudly instead of diverging.
  auto gap = replica.value()->apply_frame(5, frame1);
  ASSERT_FALSE(gap.has_value());
  EXPECT_NE(gap.error().find("gap"), std::string::npos);
  EXPECT_TRUE(replica.value()->apply_frame(1, frame1).value());
  EXPECT_EQ(replica.value()->next_seq(), 2u);

  remove_store(dir);
}

TEST(ShardReplication, FollowerColdStartsFromSnapshotPlusJournalTail) {
  const std::string leader_dir = "shard_test_cold_leader";
  const std::string follower_dir = "shard_test_cold_follower";
  remove_store(leader_dir);
  remove_store(follower_dir);

  auto leader = serve::ShardService::open_leader(0, leader_dir);
  ASSERT_TRUE(leader.has_value()) << leader.error();
  // 30 points folded into a snapshot, 10 more sitting in the journal tail:
  // the bootstrap must read both.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(leader.value()->ingest(ingest_point(i)).has_value());
  }
  ASSERT_TRUE(leader.value()->compact().has_value());
  for (int i = 30; i < 40; ++i) {
    ASSERT_TRUE(leader.value()->ingest(ingest_point(i)).has_value());
  }

  auto follower =
      serve::ShardReplica::bootstrap(leader_dir, follower_dir);
  ASSERT_TRUE(follower.has_value()) << follower.error();
  ASSERT_EQ(follower.value()->store().points().size(), 40u);
  EXPECT_EQ(follower.value()->next_seq(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(wifi::CrowdStore::encode_point(follower.value()->store().points()[i]),
              wifi::CrowdStore::encode_point(leader.value()->store()->points()[i]));
  }

  // The bootstrapped follower joins live replication seamlessly.
  leader.value()->attach_follower(follower.value().get());
  ASSERT_TRUE(leader.value()->ingest(ingest_point(40)).has_value());
  EXPECT_EQ(follower.value()->store().points().size(), 41u);

  remove_store(leader_dir);
  remove_store(follower_dir);
}

// ---------------------------------------------------------------------------
// Failover: kill the leader at every shipping fault point

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Seqs acknowledged by the child, one per complete line of the ack log (a
/// torn final line — the write the crash interrupted — is ignored, exactly
/// like a torn journal tail).
std::vector<std::uint64_t> read_acked(const std::string& path) {
  std::vector<std::uint64_t> acked;
  const auto image = ts::snapshot_file(path);
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = image.bytes.find('\n', start);
    if (nl == std::string::npos) break;  // a torn trailing write is ignored
    acked.push_back(std::stoull(image.bytes.substr(start, nl - start)));
    start = nl + 1;
  }
  return acked;
}

TEST(ShardFailover, LeaderKillAtEveryShippingFaultPointLosesNoAckedUpload) {
  const std::string leader_dir = "shard_test_failover_leader";
  const std::string follower_dir = "shard_test_failover_follower";
  const std::string takeover_dir = "shard_test_failover_takeover";
  const std::string model_path = "shard_test_failover_model.tmp";
  const std::string ack_path = "shard_test_failover_acks.tmp";

  // Parent-side world (forking after thread-free setup only): the reference
  // set the child will stream through the leader, plus the trained model the
  // promoted follower serves with.
  ts::LinearFieldWorld w;
  w.detector().save_file(model_path);
  const auto& index = w.detector().index();

  // The full shipping matrix: the leader's own WAL append (torn frame /
  // complete-but-unsynced frame), the frame in flight to the follower, and
  // the applied-but-unacknowledged gap.
  const std::vector<const char*> points = {
      durable::kFaultAppendPartial, durable::kFaultAppendSync,
      serve::kFaultShipFrame, serve::kFaultShipApplied};

  for (const char* point : points) {
    remove_store(leader_dir);
    remove_store(follower_dir);
    remove_store(takeover_dir);
    std::remove(ack_path.c_str());

    const auto child = ts::run_in_child([&] {
      auto leader = serve::ShardService::open_leader(
          0, leader_dir, /*sync_each_append=*/false);
      if (!leader.has_value()) ::_exit(71);
      auto follower =
          serve::ShardReplica::open(follower_dir, /*sync_each_append=*/false);
      if (!follower.has_value()) ::_exit(71);
      leader.value()->attach_follower(follower.value().get());

      const int ack_fd =
          ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (ack_fd < 0) ::_exit(71);

      // Phase 1 — clean ingestion of the whole reference set; each returned
      // seq is recorded as acknowledged only after ingest() returned it.
      for (std::size_t i = 0; i < index.size(); ++i) {
        auto seq = leader.value()->ingest(index[i]);
        if (!seq.has_value()) ::_exit(72);
        const std::string line = std::to_string(seq.value()) + "\n";
        if (::write(ack_fd, line.data(), line.size()) !=
            static_cast<ssize_t>(line.size())) {
          ::_exit(73);
        }
      }

      // Phase 2 — arm the kill and keep ingesting: the first operation to
      // consult `point` takes the process down mid-flight.
      FaultScope scope(1);
      scope.arm(point, {0.0, 1, FaultAction::kCrash});
      for (int j = 0; j < 3; ++j) {
        auto seq = leader.value()->ingest(
            {{25.0 + j, 3.0}, {{7, -60 - j}}, 4242u});
        if (seq.has_value()) {
          const std::string line = std::to_string(seq.value()) + "\n";
          (void)!::write(ack_fd, line.data(), line.size());
        }
      }
      ::_exit(0);
    });
    ASSERT_TRUE(child.crashed_at_point())
        << point << ": child " << child.describe();

    // Every acknowledged seq is exactly the clean prefix: the armed ingest
    // crashed before its acknowledgement could be recorded.
    const auto acked = read_acked(ack_path);
    ASSERT_EQ(acked.size(), index.size()) << point;
    for (std::size_t i = 0; i < acked.size(); ++i) {
      ASSERT_EQ(acked[i], i) << point;
    }

    // Promote the follower: its recovered store must hold every acknowledged
    // upload (kFaultShipApplied legitimately leaves one unacked extra — the
    // at-least-once tail the seq discipline absorbs on redelivery).
    auto promoted = wifi::CrowdStore::open(follower_dir);
    ASSERT_TRUE(promoted.has_value()) << point << ": " << promoted.error();
    const auto& recovered = promoted.value()->points();
    ASSERT_GE(recovered.size(), index.size()) << point;
    const bool applied_unacked =
        std::string_view(point) == serve::kFaultShipApplied;
    EXPECT_EQ(recovered.size(), index.size() + (applied_unacked ? 1 : 0))
        << point;
    for (std::size_t i = 0; i < index.size(); ++i) {
      ASSERT_EQ(wifi::CrowdStore::encode_point(recovered[i]),
                wifi::CrowdStore::encode_point(index[i]))
          << point << ": acknowledged upload " << i << " lost or mutated";
    }
    promoted.value().reset();

    // A replacement follower can also cold-start straight off the dead
    // leader's directory (snapshot + journal tail): it must hold at least
    // the acknowledged prefix too (the leader's own WAL may durably hold
    // one extra in-flight frame, depending on where the kill landed).
    auto takeover = serve::ShardReplica::bootstrap(leader_dir, takeover_dir);
    ASSERT_TRUE(takeover.has_value()) << point << ": " << takeover.error();
    ASSERT_GE(takeover.value()->store().points().size(), index.size()) << point;
    for (std::size_t i = 0; i < index.size(); ++i) {
      ASSERT_EQ(
          wifi::CrowdStore::encode_point(takeover.value()->store().points()[i]),
          wifi::CrowdStore::encode_point(index[i]))
          << point;
    }

    // Golden reproduction: when the follower holds exactly the acknowledged
    // set, a service promoted from it serves the committed golden verdicts
    // bit for bit (the same goldens golden_test pins for the oracle).
    if (!applied_unacked) {
      serve::VerifierServiceConfig config;
      config.auto_start = false;
      auto service = serve::VerifierService::try_create_from_store(
          follower_dir, model_path, config);
      ASSERT_TRUE(service.has_value()) << point << ": " << service.error();
      ASSERT_TRUE(service.value()->has_detector()) << point;

      ts::LinearFieldWorld draws;
      std::string out;
      std::uint64_t checksum = 1469598103934665603ull;
      for (const auto& upload : draws.probe_mix(6)) {
        const auto response = service.value()->verify_now(upload);
        ASSERT_EQ(response.outcome, serve::Outcome::kOk) << point;
        const std::string payload = response.report.canonical_string();
        checksum ^= fnv1a(payload);
        out += payload;
        out += '\n';
      }
      out += "fnv1a_xor=" + hex64(checksum) + '\n';
      EXPECT_TRUE(ts::matches_golden("verdict_checksums.txt", out)) << point;
    } else {
      // The extra unacked point shifts the reference set, so goldens do not
      // apply; the promoted service must still serve healthy verdicts.
      serve::VerifierServiceConfig config;
      config.auto_start = false;
      auto service = serve::VerifierService::try_create_from_store(
          follower_dir, model_path, config);
      ASSERT_TRUE(service.has_value()) << point << ": " << service.error();
      ts::LinearFieldWorld draws;
      const auto response = service.value()->verify_now(draws.upload(true));
      EXPECT_EQ(response.outcome, serve::Outcome::kOk) << point;
    }
  }

  remove_store(leader_dir);
  remove_store(follower_dir);
  remove_store(takeover_dir);
  std::remove(model_path.c_str());
  std::remove(ack_path.c_str());
}

// ---------------------------------------------------------------------------
// Concurrent router fan-out (the TSan target): many client threads hammer
// one router, whose per-shard workers and pool fan-out share each shard's
// shard-locked RPD LRU.  serve_test's cache tests only ever counted hits
// from one thread; this is the missing cross-thread exercise.

void hammer_router(serve::ShardRouter& router,
                   const std::vector<wifi::ScannedUpload>& pool,
                   const std::vector<std::string>& oracle) {
  constexpr int kClients = 4;
  constexpr int kIters = 10;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t idx = (c * kIters + i) % pool.size();
        const auto response = router.verify(pool[idx], idx);
        if (response.outcome != serve::Outcome::kOk ||
            response.report.canonical_string() != oracle[idx]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ShardRouterTsan, ConcurrentFanOutKeepsShardCachesCoherent) {
  ts::LinearFieldWorld w;
  std::vector<wifi::ScannedUpload> pool = w.probe_mix(8);
  std::vector<std::string> oracle;
  for (const auto& u : pool) {
    oracle.push_back(w.detector().analyze(u).canonical_string());
  }

  set_global_threads(4);
  for (const bool workers : {false, true}) {
    serve::ShardRouterConfig rc;
    rc.shards = 4;
    rc.start_workers = workers;
    // A deliberately tiny cache: concurrent lookups contend on the shard
    // locks *and* race rebuild-vs-evict, the exact interleavings TSan needs
    // to see to certify the locking.
    rc.cache.capacity = 64;
    rc.cache.shards = 2;
    serve::ShardRouter router(w.detector(), rc);
    hammer_router(router, pool, oracle);

    std::uint64_t cache_traffic = 0;
    for (std::size_t s = 0; s < router.shards(); ++s) {
      const auto stats = router.shard(s).cache()->stats();
      cache_traffic += stats.hits + stats.misses;
    }
    EXPECT_GT(cache_traffic, 0u)
        << "fan-out must actually exercise the shard-locked caches";
    const auto counters = router.counters();
    EXPECT_EQ(counters.requests, 40u);
    EXPECT_EQ(counters.errors, 0u);
    EXPECT_GE(counters.segments, counters.requests);
  }
  set_global_threads(1);
}

}  // namespace
}  // namespace trajkit
