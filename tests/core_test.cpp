// Core facade: scenario construction, dataset builders, the motion-model
// pipeline and the RSSI experiment pipeline (scaled down).
#include <gtest/gtest.h>

#include "core/motion_pipeline.hpp"
#include "core/rssi_pipeline.hpp"
#include "core/scenario.hpp"

namespace trajkit::core {
namespace {

TEST(ScenarioConfig, PerModeDefaultsDiffer) {
  const auto walk = ScenarioConfig::for_mode(Mode::kWalking);
  const auto drive = ScenarioConfig::for_mode(Mode::kDriving);
  EXPECT_EQ(walk.mode, Mode::kWalking);
  EXPECT_EQ(drive.mode, Mode::kDriving);
  // Area C is bigger and its APs sit farther from the road.
  EXPECT_GT(drive.city.blocks_x, walk.city.blocks_x);
  EXPECT_GT(drive.wifi.ap_road_offset_m, walk.wifi.ap_road_offset_m);
}

TEST(ScenarioConfig, IndoorVariantDiffersInTheRightDirections) {
  const auto outdoor = ScenarioConfig::for_mode(Mode::kWalking);
  const auto indoor = ScenarioConfig::indoor_walking();
  EXPECT_GT(indoor.gps.sigma_m, outdoor.gps.sigma_m);           // worse GPS
  EXPECT_LT(indoor.city.block_size_m, outdoor.city.block_size_m);  // corridors
  EXPECT_LT(indoor.wifi.ap_road_offset_m, outdoor.wifi.ap_road_offset_m);
  // The indoor world is buildable and produces trajectories.
  Scenario scenario(indoor);
  const auto trajs = scenario.real_trajectories(2, 20, 2.0);
  EXPECT_EQ(trajs.size(), 2u);
}

TEST(Scenario, BuildsWorld) {
  Scenario scenario(ScenarioConfig::for_mode(Mode::kWalking));
  EXPECT_GT(scenario.network().node_count(), 10u);
  EXPECT_GT(scenario.network().edge_count(), 10u);
  EXPECT_EQ(scenario.wifi().aps().size(),
            ScenarioConfig::for_mode(Mode::kWalking).wifi.ap_count);
}

TEST(Scenario, DeterministicForSameSeed) {
  Scenario a(ScenarioConfig::for_mode(Mode::kCycling));
  Scenario b(ScenarioConfig::for_mode(Mode::kCycling));
  const auto ta = a.real_trajectories(2, 20, 1.0);
  const auto tb = b.real_trajectories(2, 20, 1.0);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].reported.size(), tb[i].reported.size());
    for (std::size_t j = 0; j < ta[i].reported.size(); ++j) {
      EXPECT_EQ(ta[i].reported[j].pos, tb[i].reported[j].pos);
    }
  }
}

TEST(Scenario, BatchBuildersProduceRequestedCounts) {
  Scenario scenario(ScenarioConfig::for_mode(Mode::kWalking));
  EXPECT_EQ(scenario.real_trajectories(3, 25, 1.0).size(), 3u);
  EXPECT_EQ(scenario.navigation_trajectories(2, 25, 1.0).size(), 2u);
  const auto scanned = scenario.scanned_real(2, 15, 2.0);
  ASSERT_EQ(scanned.size(), 2u);
  EXPECT_EQ(scanned[0].scans.size(), 15u);
}

TEST(MotionDataset, LabelsAndCounts) {
  Scenario scenario(ScenarioConfig::for_mode(Mode::kWalking));
  MotionDatasetConfig cfg;
  cfg.train_real = 20;
  cfg.train_fake = 10;
  cfg.test_real = 8;
  cfg.test_fake = 6;
  cfg.points = 24;
  const auto ds = build_motion_dataset(scenario, cfg);
  EXPECT_EQ(ds.train.size(), 30u);
  EXPECT_EQ(ds.test.size(), 14u);

  std::size_t train_real = 0;
  for (const auto& s : ds.train) train_real += s.label == 1;
  EXPECT_EQ(train_real, 20u);
  for (const auto& s : ds.train) {
    EXPECT_EQ(s.points.size(), 24u);
    EXPECT_EQ(s.trajectory.size(), 24u);
  }
}

TEST(MotionModels, TrainPredictEvaluate) {
  Scenario scenario(ScenarioConfig::for_mode(Mode::kWalking));
  MotionDatasetConfig dcfg;
  dcfg.train_real = 60;
  dcfg.train_fake = 40;
  dcfg.test_real = 20;
  dcfg.test_fake = 20;
  dcfg.points = 32;
  const auto ds = build_motion_dataset(scenario, dcfg);

  MotionModelConfig mcfg;
  mcfg.hidden = 12;
  mcfg.epochs = 10;
  mcfg.xgb.num_trees = 40;
  const MotionModels models(ds, mcfg);

  const auto preds = models.predict_all(ds.test.front());
  EXPECT_EQ(preds.size(), 4u);
  EXPECT_EQ(models.predict("XGBoost", ds.test.front()),
            preds[1]);
  EXPECT_THROW(models.predict("nope", ds.test.front()), std::invalid_argument);

  const auto evals = evaluate_models(models, ds.test);
  ASSERT_EQ(evals.size(), 4u);
  EXPECT_EQ(evals[0].name, "C(LSTM)");
  EXPECT_EQ(evals[0].confusion.total(), ds.test.size());
  // XGBoost on summary features separates these easily even at tiny scale.
  EXPECT_GT(evals[1].confusion.accuracy(), 0.8);
}

TEST(RssiPipeline, ForgeUploadPerturbsPositionsAndRssi) {
  Scenario scenario(ScenarioConfig::for_mode(Mode::kWalking));
  const auto scanned = scenario.scanned_real(1, 20, 2.0).front();
  Rng rng(1);
  const auto fake = forge_upload(scanned, 1.5, 1, rng);
  ASSERT_EQ(fake.positions.size(), 20u);
  ASSERT_EQ(fake.scans.size(), 20u);

  const auto hist = scanned.reported.to_enu(sim::sim_projection());
  bool moved = false;
  for (std::size_t i = 1; i + 1 < hist.size(); ++i) {
    if (distance(hist[i], fake.positions[i]) > 0.3) moved = true;
  }
  EXPECT_TRUE(moved);
  // RSSI disturbance stays within +-1 dB of the original.
  for (std::size_t i = 0; i < fake.scans.size(); ++i) {
    ASSERT_EQ(fake.scans[i].size(), scanned.scans[i].size());
    for (std::size_t a = 0; a < fake.scans[i].size(); ++a) {
      EXPECT_LE(std::abs(fake.scans[i][a].rssi_dbm - scanned.scans[i][a].rssi_dbm), 1);
      EXPECT_EQ(fake.scans[i][a].mac, scanned.scans[i][a].mac);
    }
  }
}

TEST(RssiPipeline, ToUploadPreservesShape) {
  Scenario scenario(ScenarioConfig::for_mode(Mode::kWalking));
  const auto scanned = scenario.scanned_real(1, 12, 2.0).front();
  const auto upload = to_upload(scanned);
  EXPECT_EQ(upload.positions.size(), 12u);
  EXPECT_EQ(upload.scans.size(), 12u);
  EXPECT_EQ(upload.source_traj_id, wifi::kNoTrajectory);
}

TEST(RssiPipeline, SmallExperimentBeatsChance) {
  Scenario scenario(ScenarioConfig::for_mode(Mode::kWalking));
  RssiExperimentConfig cfg;
  // Paper-default 30 points per trajectory; at 20 points / 250 trajectories
  // the accuracy of individual seeds straddles the 0.6 threshold (seed
  // lottery), while at this scale every probed seed clears it with margin.
  cfg.total = 400;
  cfg.points = 30;
  const auto result = run_rssi_experiment(scenario, cfg);
  EXPECT_EQ(result.confusion.total(), 160u);  // 80 fresh real + 80 fake
  EXPECT_GT(result.confusion.accuracy(), 0.6);
  EXPECT_GT(result.auc, 0.65);  // threshold-free: well above chance
  EXPECT_GT(result.avg_k, 1.0);
  EXPECT_GT(result.avg_refs_per_point, 0.5);
  EXPECT_GT(result.ref_density_per_m2, 0.0);
}

TEST(RssiPipeline, RejectsTinyTotals) {
  Scenario scenario(ScenarioConfig::for_mode(Mode::kWalking));
  RssiExperimentConfig cfg;
  cfg.total = 10;
  EXPECT_THROW(run_rssi_experiment(scenario, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::core
