// Online-model hot-swap: incremental RPD maintenance, the versioned artifact
// store, and zero-downtime epoch publication.
//
// The contract under test (serve/service.hpp publish_epoch, serve/
// shard_service.hpp hot_swap, common/durable/artifact_store.hpp):
//
//   * appending crowd points and republishing through the incremental path
//     (affected-key invalidation + LRU carry-forward + pinned index bounds)
//     yields verdicts bitwise-identical to a stop-the-world rebuild — for
//     random append orders and thread counts;
//   * an epoch publish drops no in-flight request: holders of the old
//     detector snapshot finish on their epoch while the flip happens;
//   * a crash anywhere between the artifact commit and the CURRENT flip
//     recovers to the old epoch, and the next publish lands strictly above
//     every orphan (fork harness, tests/support/crash.hpp);
//   * followers learn epochs from the same WAL shipping that carries the
//     points, and a store-backed shard adopts them via refresh_from_store.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/durable/artifact_store.hpp"
#include "common/durable/durable_file.hpp"
#include "common/durable/journal.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "gbt/booster.hpp"
#include "serve/service.hpp"
#include "serve/shard_service.hpp"
#include "support/crash.hpp"
#include "support/fixtures.hpp"
#include "wifi/crowd_store.hpp"
#include "wifi/detector.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;

void remove_store(const std::string& dir) {
  for (const char* name : {"/crowd.snapshot", "/crowd.snapshot.tmp",
                           "/crowd.journal", "/crowd.journal.tmp"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
}

void remove_artifacts(const std::string& dir, const std::string& kind) {
  for (std::uint64_t epoch = 1; epoch <= 32; ++epoch) {
    std::remove((dir + "/" + kind + "." + std::to_string(epoch)).c_str());
    std::remove(
        (dir + "/" + kind + "." + std::to_string(epoch) + ".tmp").c_str());
  }
  std::remove((dir + "/CURRENT").c_str());
  std::remove((dir + "/CURRENT.tmp").c_str());
  ::rmdir(dir.c_str());
}

/// The reference set a detector was assembled over, in index order — the
/// ingestion order a crowd store must replay to rebuild the same index.
std::vector<wifi::ReferencePoint> index_points(const wifi::RssiDetector& d) {
  std::vector<wifi::ReferencePoint> points;
  points.reserve(d.index().size());
  for (std::size_t i = 0; i < d.index().size(); ++i) points.push_back(d.index()[i]);
  return points;
}

/// Fresh crowd points inside the world's area (analytic field scans, so the
/// detector keeps seeing self-consistent data).
std::vector<wifi::ReferencePoint> tail_points(const ts::LinearWorldConfig& cfg,
                                              std::size_t n, Rng& rng,
                                              std::uint32_t traj_base) {
  std::vector<wifi::ReferencePoint> points;
  for (std::size_t i = 0; i < n; ++i) {
    const Enu p{rng.uniform(cfg.margin_m, cfg.area_m - cfg.margin_m),
                rng.uniform(cfg.margin_m, cfg.area_m - cfg.margin_m)};
    points.push_back({p,
                      {{1, ts::LinearFieldWorld::field_rssi(p)}},
                      traj_base + static_cast<std::uint32_t>(i / 5)});
  }
  return points;
}

std::vector<serve::VerificationRequest> as_requests(
    const std::vector<wifi::ScannedUpload>& uploads) {
  std::vector<serve::VerificationRequest> requests;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    requests.push_back({i + 1, uploads[i], 0});
  }
  return requests;
}

/// The stop-the-world oracle: rebuild from scratch over the store's full
/// point set under the same pinned grid bounds, with a cold default cache.
std::unique_ptr<wifi::RssiDetector> oracle_rebuild(
    const wifi::CrowdStore& store, const wifi::RssiDetector& like,
    const BoundingBox& bounds) {
  return wifi::RssiDetector::assemble(store.points(), like.config(),
                                      like.classifier(), like.trained_points(),
                                      bounds);
}

// ---------------------------------------------------------------------------
// Epoch markers on the WAL

TEST(Hotswap, EpochMarkerCodecRoundTripsAndRejectsMalformed) {
  EXPECT_EQ(wifi::CrowdStore::encode_epoch_marker(12), "#epoch 12");
  std::uint64_t epoch = 0;
  EXPECT_TRUE(wifi::CrowdStore::is_epoch_marker("#epoch 12", &epoch));
  EXPECT_EQ(epoch, 12u);
  EXPECT_TRUE(wifi::CrowdStore::is_epoch_marker("#epoch 1"));

  EXPECT_FALSE(wifi::CrowdStore::is_epoch_marker(""));
  EXPECT_FALSE(wifi::CrowdStore::is_epoch_marker("#epoch "));
  EXPECT_FALSE(wifi::CrowdStore::is_epoch_marker("#epoch x"));
  EXPECT_FALSE(wifi::CrowdStore::is_epoch_marker("#epoch 1x"));
  EXPECT_FALSE(wifi::CrowdStore::is_epoch_marker("#epochs 3"));
  EXPECT_FALSE(wifi::CrowdStore::is_epoch_marker("1 2 0 1 1 -50"));
  // Oversized digit strings are rejected rather than overflowed.
  EXPECT_FALSE(
      wifi::CrowdStore::is_epoch_marker("#epoch 123456789012345678901"));
}

TEST(Hotswap, StoreRecoversObservedEpochFromJournalAndSnapshot) {
  const std::string dir = "hotswap_test_epoch_store";
  remove_store(dir);

  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    ASSERT_TRUE(
        store.value()->append({{5.0, 5.0}, {{1, -45}}, 0}).has_value());
    ASSERT_TRUE(store.value()->append_epoch_marker(3).has_value());
    // Markers are monotone: a stale/lower epoch never lowers the observation.
    ASSERT_TRUE(store.value()->append_epoch_marker(2).has_value());
    EXPECT_EQ(store.value()->observed_epoch(), 3u);
  }
  {
    // Journal replay path: the markers are control frames on the WAL.
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_EQ(store.value()->observed_epoch(), 3u);
    EXPECT_EQ(store.value()->points().size(), 1u);
    ASSERT_TRUE(store.value()->compact().has_value());
  }
  {
    // Snapshot path: compaction folded the epoch into the v2 meta record.
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_EQ(store.value()->observed_epoch(), 3u);
    EXPECT_EQ(store.value()->open_stats().replayed_records, 0u);
  }

  // An unknown control frame is a hard replay error, not silent data loss:
  // '#' payloads are reserved, and a store must not guess at their meaning.
  {
    auto journal = durable::Journal::open(wifi::CrowdStore::journal_path(dir),
                                          wifi::CrowdStore::journal_tag());
    ASSERT_TRUE(journal.has_value()) << journal.error();
    ASSERT_TRUE(journal.value()->append("#bogus 1").has_value());
  }
  auto reopened = wifi::CrowdStore::open(dir);
  ASSERT_FALSE(reopened.has_value());
  EXPECT_NE(reopened.error().find("unknown control frame"), std::string::npos)
      << reopened.error();
  remove_store(dir);
}

// ---------------------------------------------------------------------------
// Incremental cell statistics

TEST(Hotswap, CompactionReusesIncrementalCellStatsVerifiedAgainstRecompute) {
  const std::string dir = "hotswap_test_cellstats_store";
  remove_store(dir);
  Rng rng(41);
  const ts::LinearWorldConfig cfg;
  const auto points = tail_points(cfg, 60, rng, 100);

  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    store.value()->set_verify_cell_stats(true);  // reuse must match recompute
    for (const auto& p : points) {
      ASSERT_TRUE(store.value()->append(p).has_value());
    }
    EXPECT_EQ(store.value()->cell_stats().point_count(), points.size());

    // The incremental grid equals a from-scratch pass over the same points.
    wifi::CellStatsGrid fresh(store.value()->cell_stats().cell_size_m());
    for (const auto& p : points) fresh.add(p);
    EXPECT_EQ(store.value()->cell_stats(), fresh);
    EXPECT_EQ(store.value()->cell_stats().checksum(), fresh.checksum());

    auto compacted = store.value()->compact();
    ASSERT_TRUE(compacted.has_value()) << compacted.error();
  }
  {
    // The snapshot carries the grid: reopen restores it without a rescan, and
    // appends keep extending it incrementally.
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    store.value()->set_verify_cell_stats(true);
    EXPECT_EQ(store.value()->cell_stats().point_count(), points.size());
    wifi::CellStatsGrid fresh(store.value()->cell_stats().cell_size_m());
    for (const auto& p : points) fresh.add(p);
    EXPECT_EQ(store.value()->cell_stats(), fresh);

    ASSERT_TRUE(store.value()->append(points.front()).has_value());
    fresh.add(points.front());
    ASSERT_TRUE(store.value()->compact().has_value()) << "verified recompact";
    EXPECT_EQ(store.value()->cell_stats(), fresh);
  }
  remove_store(dir);
}

// ---------------------------------------------------------------------------
// Versioned artifact store

TEST(Artifact, PublishReadRoundTripWithMonotoneEpochs) {
  const std::string dir = "hotswap_test_artifacts_basic";
  remove_artifacts(dir, "blob");

  auto store = durable::ArtifactStore::open_dir(dir);
  ASSERT_TRUE(store.has_value()) << store.error();
  EXPECT_EQ(store.value()->current_epoch("blob"), 0u);

  for (std::uint64_t i = 1; i <= 3; ++i) {
    auto epoch =
        store.value()->publish_payload("blob", "payload " + std::to_string(i));
    ASSERT_TRUE(epoch.has_value()) << epoch.error();
    EXPECT_EQ(epoch.value(), i);
    EXPECT_EQ(store.value()->current_epoch("blob"), i);
  }
  // Every epoch stays readable after later publishes — in-flight work can
  // finish on the epoch it started on.
  for (std::uint64_t i = 1; i <= 3; ++i) {
    auto payload = store.value()->read_payload("blob", i);
    ASSERT_TRUE(payload.has_value()) << payload.error();
    EXPECT_EQ(payload.value(), "payload " + std::to_string(i));
  }
  auto live = store.value()->read_payload("blob", durable::ArtifactStore::kCurrentEpoch);
  ASSERT_TRUE(live.has_value()) << live.error();
  EXPECT_EQ(live.value(), "payload 3");

  // The CURRENT pointer is durable: a fresh open resumes at the live epoch.
  auto reopened = durable::ArtifactStore::open_dir(dir);
  ASSERT_TRUE(reopened.has_value()) << reopened.error();
  EXPECT_EQ(reopened.value()->current_epoch("blob"), 3u);

  // Orphan files (the crash-between-stages residue) are never overwritten:
  // the next publish probes past every epoch on disk.
  { std::ofstream orphan(dir + "/blob.7"); orphan << "orphan"; }
  auto epoch = reopened.value()->publish_payload("blob", "after orphan");
  ASSERT_TRUE(epoch.has_value()) << epoch.error();
  EXPECT_EQ(epoch.value(), 8u);
  EXPECT_EQ(reopened.value()->current_epoch("blob"), 8u);

  // Kinds are path components and validated as such.
  EXPECT_FALSE(reopened.value()->publish_payload("Bad Kind!", "x").has_value());
  EXPECT_FALSE(reopened.value()->publish_payload("", "x").has_value());
  remove_artifacts(dir, "blob");
}

TEST(Artifact, StaleArtifactTmpFilesReclaimedOnOpen) {
  const std::string dir = "hotswap_test_artifacts_tmp";
  remove_artifacts(dir, "blob");

  {
    auto store = durable::ArtifactStore::open_dir(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    ASSERT_TRUE(store.value()->publish_payload("blob", "payload 1").has_value());
  }

  // A crash inside the stage-1 DurableWriter commit strands the artifact's
  // temp file (name known only to the crashed process), plus possibly a
  // CURRENT flip temp.  Neighbours that merely *look* temp-ish must survive:
  // they are not artifact publishes and not ours to delete.
  const auto touch = [&](const std::string& name) {
    std::ofstream out(dir + "/" + name);
    out << "stale";
  };
  touch("blob.2.tmp");     // crashed publish — must be reclaimed
  touch("CURRENT.tmp");    // crashed flip — must be reclaimed (old behavior)
  touch("blob.x.tmp");     // non-numeric epoch: not an artifact temp
  touch("Blob.3.tmp");     // invalid kind (uppercase): not an artifact temp
  touch("notes.txt.tmp");  // unrelated user file

  auto reopened = durable::ArtifactStore::open_dir(dir);
  ASSERT_TRUE(reopened.has_value()) << reopened.error();

  struct stat st {};
  EXPECT_NE(::stat((dir + "/blob.2.tmp").c_str(), &st), 0);
  EXPECT_NE(::stat((dir + "/CURRENT.tmp").c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/blob.x.tmp").c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/Blob.3.tmp").c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/notes.txt.tmp").c_str(), &st), 0);

  // A reclaimed temp is not an orphan *artifact*: the next publish proceeds
  // from CURRENT, not from the crashed epoch number.
  EXPECT_EQ(reopened.value()->current_epoch("blob"), 1u);
  auto epoch = reopened.value()->publish_payload("blob", "payload 2");
  ASSERT_TRUE(epoch.has_value()) << epoch.error();
  EXPECT_EQ(epoch.value(), 2u);

  std::remove((dir + "/blob.x.tmp").c_str());
  std::remove((dir + "/Blob.3.tmp").c_str());
  std::remove((dir + "/notes.txt.tmp").c_str());
  remove_artifacts(dir, "blob");
}

TEST(Artifact, TypedCodecRoundTripsDetectorAndClassifier) {
  const std::string dir = "hotswap_test_artifacts_typed";
  remove_artifacts(dir, "detector");
  remove_artifacts(dir, "gbt");
  ts::LinearFieldWorld w;

  auto store = durable::ArtifactStore::open_dir(dir);
  ASSERT_TRUE(store.has_value()) << store.error();

  auto epoch = store.value()->publish<wifi::RssiDetector>("detector", w.detector());
  ASSERT_TRUE(epoch.has_value()) << epoch.error();
  auto loaded = store.value()->open<wifi::RssiDetector>("detector");
  ASSERT_TRUE(loaded.has_value()) << loaded.error();

  Rng rng(7001);
  for (int trial = 0; trial < 6; ++trial) {
    const auto upload = w.upload(trial % 2 == 0, rng);
    const auto expect = w.detector().analyze(upload);
    const auto got = loaded.value()->analyze(upload);
    EXPECT_EQ(got.verdict, expect.verdict) << "trial " << trial;
    EXPECT_EQ(got.features, expect.features) << "trial " << trial;
    EXPECT_EQ(got.point_scores, expect.point_scores) << "trial " << trial;
  }

  // The classifier family goes through the same one surface.
  auto gbt_epoch = store.value()->publish<gbt::GbtClassifier>(
      "gbt", w.detector().classifier());
  ASSERT_TRUE(gbt_epoch.has_value()) << gbt_epoch.error();
  auto gbt = store.value()->open<gbt::GbtClassifier>("gbt");
  ASSERT_TRUE(gbt.has_value()) << gbt.error();

  // Missing kinds and epochs fail through Expected, never throw.
  EXPECT_FALSE(store.value()->open<wifi::RssiDetector>("missing").has_value());
  EXPECT_FALSE(store.value()->open<wifi::RssiDetector>("detector", 99).has_value());
  remove_artifacts(dir, "detector");
  remove_artifacts(dir, "gbt");
}

// ---------------------------------------------------------------------------
// publish_epoch: incremental refresh == stop-the-world oracle

TEST(Hotswap, PublishEpochMatchesOracleRebuildBitForBit) {
  const std::string store_dir = "hotswap_test_publish_store";
  const std::string artifact_dir = "hotswap_test_publish_artifacts";
  remove_store(store_dir);
  remove_artifacts(artifact_dir, "detector");

  ts::LinearFieldWorld w;
  const auto initial = index_points(w.detector());
  auto store = wifi::CrowdStore::open(store_dir, /*sync_each_append=*/false);
  ASSERT_TRUE(store.has_value()) << store.error();
  for (const auto& p : initial) ASSERT_TRUE(store.value()->append(p).has_value());

  serve::VerifierServiceConfig config;
  config.auto_start = false;
  auto service = std::make_unique<serve::VerifierService>(
      wifi::RssiDetector::assemble(initial, w.detector().config(),
                                   w.detector().classifier(),
                                   w.detector().trained_points()),
      config);
  const BoundingBox bounds = service->detector().index().bounds();
  EXPECT_EQ(service->epoch(), 0u);
  EXPECT_EQ(service->published_points(), initial.size());

  auto artifacts = durable::ArtifactStore::open_dir(artifact_dir);
  ASSERT_TRUE(artifacts.has_value()) << artifacts.error();

  const auto probes = w.probe_mix(10);
  const auto requests = as_requests(probes);
  // Warm the shared LRU so the carry-forward path has resident entries whose
  // correctness the oracle comparison below actually exercises.
  service->verify_batch(requests);

  Rng rng(91);
  for (std::uint64_t round = 1; round <= 2; ++round) {
    for (const auto& p : tail_points(w.config(), 25, rng, 1000 * round)) {
      ASSERT_TRUE(store.value()->append(p).has_value());
    }
    auto epoch = service->publish_epoch(*store.value(), artifacts.value().get());
    ASSERT_TRUE(epoch.has_value()) << epoch.error();
    EXPECT_EQ(epoch.value(), round);
    EXPECT_EQ(service->epoch(), round);
    EXPECT_EQ(service->published_points(), store.value()->points().size());
    EXPECT_EQ(artifacts.value()->current_epoch("detector"), round);
    EXPECT_EQ(store.value()->observed_epoch(), round);

    // Checksum equality at the epoch boundary: carried-forward cache entries
    // plus targeted invalidation must be indistinguishable from a cold
    // rebuild over the full store.
    const auto oracle = oracle_rebuild(*store.value(), service->detector(), bounds);
    const auto responses = service->verify_batch(requests);
    ASSERT_EQ(responses.size(), probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const auto expect = oracle->analyze(probes[i]);
      ASSERT_EQ(responses[i].outcome, serve::Outcome::kOk);
      EXPECT_EQ(responses[i].report.verdict, expect.verdict) << "probe " << i;
      EXPECT_EQ(responses[i].report.features, expect.features) << "probe " << i;
      EXPECT_EQ(responses[i].report.point_scores, expect.point_scores)
          << "probe " << i;
      EXPECT_EQ(responses[i].report.p_real, expect.p_real) << "probe " << i;
    }
  }

  // Cold restart from the artifact store serves the last published epoch.
  auto restarted = serve::VerifierService::try_create_from_artifacts(
      artifact_dir, config);
  ASSERT_TRUE(restarted.has_value()) << restarted.error();
  EXPECT_EQ(restarted.value()->epoch(), 2u);
  const auto expect = service->verify_now(probes[0]);
  const auto got = restarted.value()->verify_now(probes[0]);
  EXPECT_EQ(got.report.features, expect.report.features);
  EXPECT_EQ(got.report.verdict, expect.report.verdict);

  remove_store(store_dir);
  remove_artifacts(artifact_dir, "detector");
}

TEST(Hotswap, IncrementalRefreshMatchesRebuildAcrossOrdersAndThreads) {
  // Property: for random append orders of the same tail and thread counts
  // {1, 4}, N appends + an invalidation-scoped publish produce verdicts
  // bitwise-identical to a from-scratch rebuild over the same point order.
  ts::LinearWorldConfig small;
  small.history_points = 240;
  small.train_pairs = 16;
  small.trees = 8;
  ts::LinearFieldWorld w(small);
  const auto initial = index_points(w.detector());
  const auto probes = w.probe_mix(6);
  const auto requests = as_requests(probes);
  Rng rng(173);
  const auto tail = tail_points(small, 30, rng, 5000);

  const std::string store_dir = "hotswap_test_property_store";
  for (const std::uint64_t order_seed : {11ull, 23ull}) {
    auto shuffled = tail;
    Rng order_rng(order_seed);
    order_rng.shuffle(shuffled);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("order " + std::to_string(order_seed) + " threads " +
                   std::to_string(threads));
      set_global_threads(threads);
      remove_store(store_dir);
      auto store = wifi::CrowdStore::open(store_dir, false);
      ASSERT_TRUE(store.has_value()) << store.error();
      for (const auto& p : initial) {
        ASSERT_TRUE(store.value()->append(p).has_value());
      }

      serve::VerifierServiceConfig config;
      config.auto_start = false;
      serve::VerifierService service(
          wifi::RssiDetector::assemble(initial, w.detector().config(),
                                       w.detector().classifier(),
                                       w.detector().trained_points()),
          config);
      const BoundingBox bounds = service.detector().index().bounds();
      service.verify_batch(requests);  // resident entries to carry forward

      for (const auto& p : shuffled) {
        ASSERT_TRUE(store.value()->append(p).has_value());
      }
      auto epoch = service.publish_epoch(*store.value());
      ASSERT_TRUE(epoch.has_value()) << epoch.error();

      const auto oracle = oracle_rebuild(*store.value(), service.detector(), bounds);
      const auto responses = service.verify_batch(requests);
      for (std::size_t i = 0; i < probes.size(); ++i) {
        const auto expect = oracle->analyze(probes[i]);
        ASSERT_EQ(responses[i].outcome, serve::Outcome::kOk);
        EXPECT_EQ(responses[i].report.features, expect.features) << "probe " << i;
        EXPECT_EQ(responses[i].report.point_scores, expect.point_scores)
            << "probe " << i;
        EXPECT_EQ(responses[i].report.verdict, expect.verdict) << "probe " << i;
      }
    }
  }
  set_global_threads(0);
  remove_store(store_dir);
}

// ---------------------------------------------------------------------------
// Zero-downtime: concurrent swaps drop nothing

TEST(Hotswap, ConcurrentPublishDropsNoInFlightRequests) {
  const std::string store_dir = "hotswap_test_concurrent_store";
  remove_store(store_dir);

  ts::LinearWorldConfig small;
  small.history_points = 240;
  small.train_pairs = 16;
  small.trees = 8;
  ts::LinearFieldWorld w(small);
  const auto initial = index_points(w.detector());
  auto store = wifi::CrowdStore::open(store_dir, false);
  ASSERT_TRUE(store.has_value()) << store.error();
  for (const auto& p : initial) ASSERT_TRUE(store.value()->append(p).has_value());

  serve::VerifierServiceConfig config;
  config.max_queue = 4096;
  serve::VerifierService service(
      wifi::RssiDetector::assemble(initial, w.detector().config(),
                                   w.detector().classifier(),
                                   w.detector().trained_points()),
      config);

  const auto probes = w.probe_mix(8);
  constexpr std::size_t kRequests = 120;
  std::vector<std::future<serve::VerdictResponse>> futures;
  futures.reserve(kRequests);

  // Publish three epochs while the submission stream is in flight; every
  // request must come back kOk — served by whichever epoch it snapshotted.
  std::thread publisher([&] {
    Rng rng(311);
    for (int round = 0; round < 3; ++round) {
      for (const auto& p : tail_points(small, 10, rng, 9000 + 100 * round)) {
        auto seq = store.value()->append(p);
        if (!seq) { ADD_FAILURE() << seq.error(); return; }
      }
      auto epoch = service.publish_epoch(*store.value());
      if (!epoch) { ADD_FAILURE() << epoch.error(); return; }
    }
  });
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(service.submit({i + 1, probes[i % probes.size()], 0}));
  }
  publisher.join();

  std::size_t ok = 0;
  for (auto& f : futures) {
    const auto response = f.get();
    EXPECT_EQ(response.outcome, serve::Outcome::kOk)
        << serve::outcome_name(response.outcome) << " " << response.error;
    ok += response.outcome == serve::Outcome::kOk;
  }
  EXPECT_EQ(ok, kRequests);
  EXPECT_EQ(service.epoch(), 3u);
  service.stop();
  const auto counters = service.counters();
  EXPECT_EQ(counters.received, kRequests);
  EXPECT_EQ(counters.completed, kRequests);
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(counters.errors, 0u);
  remove_store(store_dir);
}

// ---------------------------------------------------------------------------
// Crash walk of the publish path

TEST(Hotswap, PublishCrashBeforeCurrentFlipRecoversOldEpoch) {
  const std::string store_dir = "hotswap_test_crash_store";
  const std::string artifact_dir = "hotswap_test_crash_artifacts";
  remove_store(store_dir);
  remove_artifacts(artifact_dir, "detector");

  ts::LinearWorldConfig small;
  small.history_points = 200;
  small.train_pairs = 12;
  small.trees = 8;
  ts::LinearFieldWorld w(small);
  const auto initial = index_points(w.detector());
  auto store = wifi::CrowdStore::open(store_dir, false);
  ASSERT_TRUE(store.has_value()) << store.error();
  for (const auto& p : initial) ASSERT_TRUE(store.value()->append(p).has_value());

  serve::VerifierServiceConfig config;
  config.auto_start = false;  // children must stay single-threaded
  serve::VerifierService service(
      wifi::RssiDetector::assemble(initial, w.detector().config(),
                                   w.detector().classifier(),
                                   w.detector().trained_points()),
      config);
  auto artifacts = durable::ArtifactStore::open_dir(artifact_dir);
  ASSERT_TRUE(artifacts.has_value()) << artifacts.error();

  // Epoch 1 is the committed old world every crash must fall back to.
  auto first = service.publish_epoch(*store.value(), artifacts.value().get());
  ASSERT_TRUE(first.has_value()) << first.error();
  ASSERT_EQ(first.value(), 1u);
  const std::string current_path =
      durable::ArtifactStore::current_path(artifact_dir);
  const ts::FileImage committed = ts::snapshot_file(current_path);
  ASSERT_TRUE(committed.exists);

  Rng rng(59);
  for (const auto& p : tail_points(small, 15, rng, 7000)) {
    ASSERT_TRUE(store.value()->append(p).has_value());
  }

  // Crash matrix: every atomic-write step of the artifact commit, plus the
  // explicit gap between the commit and the CURRENT flip.  In every case the
  // flip never happened, so CURRENT must be byte-identical to the old image
  // and a restart serves epoch 1.
  std::vector<std::string> points(std::begin(durable::kAtomicWritePoints),
                                  std::end(durable::kAtomicWritePoints));
  points.push_back(durable::kFaultPublishCurrent);
  for (const auto& point : points) {
    SCOPED_TRACE(point);
    const auto child = ts::crash_child_at(point, [&] {
      auto epoch = service.publish_epoch(*store.value(), artifacts.value().get());
      if (epoch.has_value()) _exit(70);  // the crash point must fire first
    });
    ASSERT_TRUE(child.crashed_at_point()) << child.describe();
    EXPECT_EQ(ts::snapshot_file(current_path), committed);

    auto survivor = serve::VerifierService::try_create_from_artifacts(
        artifact_dir, config);
    ASSERT_TRUE(survivor.has_value()) << survivor.error();
    EXPECT_EQ(survivor.value()->epoch(), 1u);
  }
  // The kFaultPublishCurrent child committed its artifact before dying: the
  // orphan is on disk even though CURRENT never learned about it.
  EXPECT_TRUE(ts::snapshot_file(artifacts.value()->artifact_path("detector", 2))
                  .exists);

  // Recovery publish: the next epoch lands strictly above every orphan, and
  // the restarted service serves it.
  auto recovered = service.publish_epoch(*store.value(), artifacts.value().get());
  ASSERT_TRUE(recovered.has_value()) << recovered.error();
  EXPECT_GT(recovered.value(), 2u);
  auto restarted = serve::VerifierService::try_create_from_artifacts(
      artifact_dir, config);
  ASSERT_TRUE(restarted.has_value()) << restarted.error();
  EXPECT_EQ(restarted.value()->epoch(), recovered.value());

  remove_store(store_dir);
  remove_artifacts(artifact_dir, "detector");
}

// ---------------------------------------------------------------------------
// Follower epoch adoption over WAL shipping

TEST(Hotswap, FollowerAdoptsEpochFromWalShippingAndRefreshes) {
  const std::string leader_dir = "hotswap_test_ship_leader";
  const std::string follower_dir = "hotswap_test_ship_follower";
  remove_store(leader_dir);
  remove_store(follower_dir);

  ts::LinearWorldConfig small;
  small.history_points = 200;
  small.train_pairs = 12;
  small.trees = 8;
  ts::LinearFieldWorld w(small);

  auto leader = serve::ShardService::open_leader(0, leader_dir);
  ASSERT_TRUE(leader.has_value()) << leader.error();
  auto follower = serve::ShardReplica::open(follower_dir);
  ASSERT_TRUE(follower.has_value()) << follower.error();
  leader.value()->attach_follower(follower.value().get());

  Rng rng(83);
  for (const auto& p : tail_points(small, 30, rng, 0)) {
    ASSERT_TRUE(leader.value()->ingest(p).has_value());
  }

  // The marker rides the same acknowledged shipping path as the points: by
  // the time ship_epoch_marker returns, the follower has durably observed it.
  auto seq = leader.value()->ship_epoch_marker(3);
  ASSERT_TRUE(seq.has_value()) << seq.error();
  EXPECT_EQ(leader.value()->store()->observed_epoch(), 3u);
  EXPECT_EQ(follower.value()->store().observed_epoch(), 3u);
  EXPECT_EQ(follower.value()->store().points().size(), 30u);

  // Promotion shape: arm verification on the store-backed shard and adopt the
  // store's observed epoch.
  const BoundingBox bounds =
      wifi::ReferenceIndex::natural_bounds(leader.value()->store()->points());
  auto armed = leader.value()->arm_verification(
      w.detector().config(), w.detector().classifier(),
      w.detector().trained_points(), bounds);
  ASSERT_TRUE(armed.has_value()) << armed.error();
  EXPECT_EQ(leader.value()->epoch(), 3u);

  // More crowd data, a new epoch marker, then refresh: the shard rebuilds its
  // slice through the hot-swap path and serves the marker's epoch.
  for (const auto& p : tail_points(small, 12, rng, 500)) {
    ASSERT_TRUE(leader.value()->ingest(p).has_value());
  }
  ASSERT_TRUE(leader.value()->ship_epoch_marker(4).has_value());
  EXPECT_EQ(follower.value()->store().observed_epoch(), 4u);
  auto refreshed = leader.value()->refresh_from_store();
  ASSERT_TRUE(refreshed.has_value()) << refreshed.error();
  EXPECT_EQ(refreshed.value(), 4u);
  EXPECT_EQ(leader.value()->epoch(), 4u);

  // The refreshed shard answers segment features bitwise-equal to an oracle
  // assembled from scratch over the store under the same pinned bounds.
  const auto oracle = wifi::RssiDetector::assemble(
      leader.value()->store()->points(), w.detector().config(),
      w.detector().classifier(), w.detector().trained_points(), bounds);
  wifi::ScannedUpload upload;
  for (const Enu& p : {Enu{5.0, 5.0}, Enu{10.0, 8.0}, Enu{15.0, 12.0},
                       Enu{20.0, 16.0}}) {
    upload.positions.push_back(p);
    upload.scans.push_back({{1, ts::LinearFieldWorld::field_rssi(p)}});
  }
  std::vector<double> expect_features;
  std::vector<double> expect_scores;
  oracle->segment_features(upload, expect_features, expect_scores);
  const std::size_t top_k = w.detector().config().confidence.top_k;
  std::vector<double> features(2 * top_k * upload.positions.size(), 0.0);
  std::vector<double> scores(upload.positions.size(), 0.0);
  leader.value()->evaluate_segment(upload, 0, upload.positions.size(),
                                   features.data(), scores.data());
  EXPECT_EQ(features, expect_features);
  EXPECT_EQ(scores, expect_scores);

  remove_store(leader_dir);
  remove_store(follower_dir);
}

}  // namespace
}  // namespace trajkit
