// RNG determinism and distribution sanity, stats helpers, classification
// metrics, the table printer and the CLI flag parser.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/counters.hpp"
#include "common/expected.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace trajkit {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ChanceProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(7);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) {
    ++counts[rng.weighted_index({1.0, 2.0, 6.0})];
  }
  EXPECT_NEAR(counts[0] / 9000.0, 1.0 / 9.0, 0.02);
  EXPECT_NEAR(counts[2] / 9000.0, 6.0 / 9.0, 0.02);
}

TEST(Rng, WeightedIndexDegenerateCases) {
  Rng rng(8);
  EXPECT_EQ(rng.weighted_index({}), 0u);
  EXPECT_EQ(rng.weighted_index({0.0, 0.0}), 0u);
  EXPECT_EQ(rng.weighted_index({0.0, 5.0, 0.0}), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(10);
  Rng child = a.split();
  // The child stream should not replicate the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == child.next();
  EXPECT_LT(same, 2);
}

TEST(Stats, MeanStdPercentile) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 5.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(11);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
  EXPECT_EQ(rs.count(), xs.size());
}

TEST(Metrics, ConfusionMatrixPositiveClassIsFake) {
  ConfusionMatrix cm;
  cm.add(0, 0);  // fake caught -> TP
  cm.add(0, 1);  // fake missed -> FN
  cm.add(1, 1);  // real passed -> TN
  cm.add(1, 0);  // real flagged -> FP
  EXPECT_EQ(cm.true_positive, 1u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.true_negative, 1u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.5);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.5);
}

TEST(Metrics, PerfectAndDegenerate) {
  ConfusionMatrix perfect;
  perfect.add(0, 0);
  perfect.add(1, 1);
  EXPECT_DOUBLE_EQ(perfect.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(perfect.f1(), 1.0);

  ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);
}

TEST(Metrics, EvaluateBinaryChecksSizes) {
  EXPECT_THROW(evaluate_binary({1, 0}, {1}), std::invalid_argument);
  const auto cm = evaluate_binary({1, 0, 0}, {1, 0, 1});
  EXPECT_EQ(cm.total(), 3u);
  EXPECT_EQ(cm.true_positive, 1u);
}

TEST(Metrics, RocAucPerfectAndRandomAndInverted) {
  // Perfect separation.
  EXPECT_DOUBLE_EQ(roc_auc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
  // Perfectly inverted scores.
  EXPECT_DOUBLE_EQ(roc_auc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
  // All-tied scores: chance level.
  EXPECT_DOUBLE_EQ(roc_auc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
  // Degenerate single-class labels.
  EXPECT_DOUBLE_EQ(roc_auc({1, 1}, {0.1, 0.9}), 0.5);
  EXPECT_THROW(roc_auc({1}, {0.1, 0.2}), std::invalid_argument);
}

TEST(Metrics, RocAucMatchesPairCounting) {
  Rng rng(12);
  std::vector<int> truth;
  std::vector<double> scores;
  for (int i = 0; i < 60; ++i) {
    truth.push_back(rng.chance(0.5) ? 1 : 0);
    scores.push_back(rng.uniform(0.0, 1.0));
  }
  // Brute-force pair counting.
  double wins = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < truth.size(); ++a) {
    for (std::size_t b = 0; b < truth.size(); ++b) {
      if (truth[a] == 1 && truth[b] == 0) {
        ++pairs;
        if (scores[a] > scores[b]) wins += 1.0;
        if (scores[a] == scores[b]) wins += 0.5;
      }
    }
  }
  EXPECT_NEAR(roc_auc(truth, scores), wins / static_cast<double>(pairs), 1e-12);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 2)});
  t.add_row({"b", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1.50  |"), std::string::npos);
  EXPECT_NE(s.find("|-------|-------|"), std::string::npos);
}

TEST(Table, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Cli, ParsesTypedFlags) {
  const char* argv[] = {"prog", "--count=42", "--rate=0.5", "--name=x", "--flag"};
  CliFlags flags(5, argv);
  EXPECT_EQ(flags.get_int("count", 0), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(flags.get("name", ""), "x");
  EXPECT_TRUE(flags.get_bool("flag", false));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliFlags(2, argv), std::invalid_argument);
}

TEST(Expected, HoldsValueOrError) {
  Expected<int, std::string> ok(41);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 41);
  EXPECT_EQ(ok.value_or(-1), 41);
  EXPECT_THROW(ok.error(), std::logic_error);

  const auto bad = Expected<int, std::string>::failure("nope");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(Expected, MovesValueOutOfRvalue) {
  Expected<std::unique_ptr<int>, std::string> ok(std::make_unique<int>(7));
  const auto moved = std::move(ok).value();
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(*moved, 7);
}

TEST(Expected, UnexpectedHelperBuildsFailures) {
  const Expected<int, std::string> bad = unexpected(std::string("broken"));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "broken");
}

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p50_us(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99_us(), 0.0);
}

TEST(LatencyHistogram, QuantilesLandWithinBucketResolution) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add_us(i);
  EXPECT_EQ(h.count(), 1000u);
  // Log-bucketed with 4 sub-buckets per octave: ~13% worst-case relative
  // error per estimate.
  EXPECT_NEAR(h.p50_us(), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(h.p95_us(), 950.0, 950.0 * 0.15);
  EXPECT_NEAR(h.p99_us(), 990.0, 990.0 * 0.15);
}

TEST(LatencyHistogram, HandlesOutliersAndClampsNegatives) {
  LatencyHistogram h;
  h.add_us(-50);  // clamps to zero rather than corrupting a bucket
  for (int i = 0; i < 98; ++i) h.add_us(100);
  h.add_us(1'000'000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.p50_us(), 100.0, 100.0 * 0.15);
  EXPECT_GT(h.quantile_us(0.999), 100'000.0);
}

TEST(Clock, ManualClockAdvancesOnDemand) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now_us(), 100);
  clock.advance_us(50);
  EXPECT_EQ(clock.now_us(), 150);
}

TEST(Clock, SteadyClockIsMonotonic) {
  const Clock& clock = steady_clock();
  const auto a = clock.now_us();
  const auto b = clock.now_us();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace trajkit
