// Chaos harness: randomized fault schedules driven through the full
// submit -> dispatch -> verify -> respond path.
//
// The properties under test are the serving layer's partial-failure contract:
//
//   1. No dropped or hung responses — every submitted future resolves, and
//      resolves to kOk or kDegraded (never an error, never abandoned), no
//      matter which fault points fire.
//   2. Determinism under chaos — with the breaker off, a (seed, schedule)
//      pair produces byte-identical canonical payloads for --threads 1, 2
//      and 4 and for any submission order, degraded verdicts included.
//      Reproducing a chaos failure is therefore just re-running with the
//      printed seed.
//   3. Degraded start — an unloadable model (injected at the load fault
//      point) still yields a service that answers every request.
//
// The world is the shared scenario-backed fixture (tests/support); per-test
// schedules are armed through FaultScope so nothing leaks across tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "serve/service.hpp"
#include "support/fixtures.hpp"
#include "wifi/detector.hpp"

namespace trajkit::serve {
namespace {

namespace ts = test_support;

class Chaos : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_global_threads(1);  // build the world identically regardless of pool
    world_ = new ts::ScenarioServiceWorld();
    set_global_threads(0);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static ts::ScenarioServiceWorld* world_;
};

ts::ScenarioServiceWorld* Chaos::world_ = nullptr;

/// Run every probe through a freshly-armed service and return the
/// canonical payloads joined in request-id order.
std::string run_schedule(ts::ScenarioServiceWorld& world, std::uint64_t seed,
                         const std::vector<std::size_t>& order,
                         std::size_t threads) {
  set_global_threads(threads);
  FaultScope faults(seed);
  faults.arm(kFaultDispatch, {.probability = 0.4});
  faults.arm(kFaultRpdShard, {.probability = 0.02});

  ManualClock clock;  // backoff advances virtual time; the test never sleeps
  VerifierServiceConfig cfg;
  cfg.max_batch = 2;  // several micro-batches per run
  cfg.retry.max_retries = 1;
  cfg.cache.capacity = 32;
  cfg.cache.shards = 2;
  VerifierService service(*world.detector, cfg, &clock);

  std::vector<std::future<VerdictResponse>> futures(order.size());
  for (const std::size_t idx : order) {
    futures[idx] = service.submit({idx, world.probes[idx], 0});
  }
  std::string all;
  for (auto& future : futures) {
    all += future.get().canonical_string();
    all += '\n';
  }
  set_global_threads(0);
  return all;
}

TEST_F(Chaos, FaultScheduleIsThreadAndOrderInvariant) {
  const std::uint64_t seed = 20220707;  // the paper's venue, ICDCS'22
  std::vector<std::size_t> forward(world_->probes.size());
  for (std::size_t i = 0; i < forward.size(); ++i) forward[i] = i;
  std::vector<std::size_t> reversed(forward.rbegin(), forward.rend());
  std::vector<std::size_t> shuffled = forward;
  Rng(99).shuffle(shuffled);

  const std::string reference = run_schedule(*world_, seed, forward, 1);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " reference:\n" + reference);
  // The schedule must actually exercise both paths, or the test is vacuous.
  ASSERT_NE(reference.find("outcome=ok"), std::string::npos);
  ASSERT_NE(reference.find("outcome=degraded"), std::string::npos);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const auto& order : {forward, reversed, shuffled}) {
      EXPECT_EQ(run_schedule(*world_, seed, order, threads), reference)
          << "threads=" << threads;
    }
  }
}

TEST_F(Chaos, DifferentSeedsProduceDifferentSchedules) {
  std::vector<std::size_t> forward(world_->probes.size());
  for (std::size_t i = 0; i < forward.size(); ++i) forward[i] = i;
  // Sanity: the fault schedule actually depends on the seed (otherwise the
  // invariance test above could pass by never injecting anything).
  const auto a = run_schedule(*world_, 1, forward, 1);
  const auto b = run_schedule(*world_, 2, forward, 1);
  const auto c = run_schedule(*world_, 3, forward, 1);
  EXPECT_TRUE(a != b || b != c) << "three seeds, one schedule?";
}

TEST_F(Chaos, NoDroppedResponsesAcrossRandomSchedules) {
  // Several seeds, several requests per probe, threads = 4, tiny batches:
  // every future must resolve to kOk or kDegraded, and the counters must
  // account for every single request.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    set_global_threads(4);
    FaultScope faults(seed);
    faults.arm(kFaultDispatch, {.probability = 0.5});
    faults.arm(kFaultRpdShard, {.probability = 0.05});

    ManualClock clock;
    VerifierServiceConfig cfg;
    cfg.max_batch = 3;
    cfg.retry.max_retries = 2;
    VerifierService service(*world_->detector, cfg, &clock);

    const std::size_t n = world_->probes.size() * 4;
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    Rng(seed).shuffle(order);

    std::vector<std::future<VerdictResponse>> futures(n);
    for (const std::size_t id : order) {
      futures[id] = service.submit({id, world_->probes[id % world_->probes.size()], 0});
    }
    std::size_t ok = 0;
    std::size_t degraded = 0;
    for (std::size_t id = 0; id < n; ++id) {
      const auto response = futures[id].get();  // resolves — or the test hangs
      EXPECT_EQ(response.request_id, id);
      ASSERT_TRUE(response.outcome == Outcome::kOk ||
                  response.outcome == Outcome::kDegraded)
          << "seed " << seed << " request " << id << ": "
          << outcome_name(response.outcome) << " " << response.error;
      (response.outcome == Outcome::kOk ? ok : degraded)++;
    }
    service.stop();
    const auto c = service.counters();
    EXPECT_EQ(c.received, n) << "seed " << seed;
    EXPECT_EQ(c.completed, ok) << "seed " << seed;
    EXPECT_EQ(c.degraded, degraded) << "seed " << seed;
    EXPECT_EQ(c.completed + c.degraded, n) << "seed " << seed;
    EXPECT_EQ(c.errors, 0u) << "seed " << seed;
    set_global_threads(0);
  }
}

TEST_F(Chaos, BreakerShedsLoadUnderSustainedFaults) {
  // With the breaker armed and the dispatch path failing persistently, the
  // service must still answer everything (degraded) and record the trip.
  set_global_threads(2);
  FaultScope faults(5);
  faults.arm(kFaultDispatch, {.probability = 1.0});

  ManualClock clock;
  VerifierServiceConfig cfg;
  cfg.max_batch = 2;
  cfg.retry.max_retries = 0;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.cooldown_us = 1000000;
  VerifierService service(*world_->detector, cfg, &clock);

  std::vector<std::future<VerdictResponse>> futures;
  for (std::size_t i = 0; i < 12; ++i) {
    futures.push_back(service.submit({i, world_->probes[i % world_->probes.size()], 0}));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, Outcome::kDegraded);
  }
  service.stop();
  const auto c = service.counters();
  EXPECT_EQ(c.degraded, 12u);
  EXPECT_GE(c.breaker_opens, 1u);
  EXPECT_TRUE(service.breaker_open());
  set_global_threads(0);
}

TEST_F(Chaos, UnloadableModelStillAnswersEverything) {
  // The acceptance shape: the model file is unloadable (injected at the load
  // fault point), yet a degraded-start service answers every request through
  // the rule-based fallback — zero dropped, zero hung — and says so in the
  // counters.
  const char* path = "chaos_test_model.tmp";
  world_->detector->save_file(path);

  VerifierServiceConfig cfg;
  cfg.max_batch = 2;
  cfg.fallback.allow_degraded_start = true;
  std::unique_ptr<VerifierService> service;
  {
    FaultScope faults(7);
    faults.arm(wifi::kFaultDetectorLoad, {.probability = 1.0});
    auto service_or = VerifierService::try_create_from_file(path, cfg);
    ASSERT_TRUE(service_or.has_value()) << service_or.error();
    service = std::move(service_or).value();
  }
  std::remove(path);
  ASSERT_FALSE(service->has_detector());

  const std::size_t n = world_->probes.size() * 3;
  std::vector<std::future<VerdictResponse>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(
        service->submit({i, world_->probes[i % world_->probes.size()], 0}));
  }
  for (auto& future : futures) {
    const auto response = future.get();
    EXPECT_EQ(response.outcome, Outcome::kDegraded);
    EXPECT_EQ(response.degraded_reason, "detector_unavailable");
    EXPECT_EQ(response.report.point_scores.size(),
              world_->probes.front().positions.size());
  }
  service->stop();
  const auto c = service->counters();
  EXPECT_EQ(c.received, n);
  EXPECT_EQ(c.degraded, n);
  EXPECT_EQ(c.completed, 0u);
  EXPECT_EQ(c.errors, 0u);
}

TEST_F(Chaos, DegradedStartPayloadsAreThreadInvariantToo) {
  // Even the pure-fallback path obeys the determinism contract.
  auto run = [&](std::size_t threads) {
    set_global_threads(threads);
    VerifierServiceConfig cfg;
    cfg.max_batch = 2;
    cfg.fallback.allow_degraded_start = true;
    FaultScope faults(7);
    faults.arm(wifi::kFaultDetectorLoad, {.probability = 1.0});
    const char* path = "chaos_test_model_inv.tmp";
    world_->detector->save_file(path);
    auto service_or = VerifierService::try_create_from_file(path, cfg);
    std::remove(path);
    std::string all;
    if (!service_or.has_value()) return all;
    auto service = std::move(service_or).value();
    std::vector<std::future<VerdictResponse>> futures;
    for (std::size_t i = 0; i < world_->probes.size(); ++i) {
      futures.push_back(service->submit({i, world_->probes[i], 0}));
    }
    for (auto& future : futures) {
      all += future.get().canonical_string();
      all += '\n';
    }
    set_global_threads(0);
    return all;
  };
  const auto reference = run(1);
  ASSERT_NE(reference.find("outcome=degraded"), std::string::npos);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(4), reference);
}

}  // namespace
}  // namespace trajkit::serve
