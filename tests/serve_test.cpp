// Serving layer: VerifierService micro-batching, admission control,
// deadlines, the shared bounded RPD LRU, and model round-trips through the
// non-throwing loaders.
//
// The detector fixture mirrors wifi_test's synthetic world: a linear RSSI
// field over a 30x30 m area, real uploads scanned where they claim to be and
// fakes whose claimed positions are shifted 15 m east of where the (genuine)
// scans were heard.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "serve/rpd_lru_cache.hpp"
#include "serve/service.hpp"
#include "wifi/detector.hpp"

namespace trajkit::serve {
namespace {

int field(const Enu& p) { return static_cast<int>(std::lround(-40.0 - p.east)); }

constexpr std::size_t kUploadPoints = 6;

/// A small trained detector plus a generator of real/forged probe uploads.
struct World {
  Rng rng{7};
  std::unique_ptr<wifi::RssiDetector> detector;

  World() {
    std::vector<wifi::ReferencePoint> history;
    for (int i = 0; i < 600; ++i) {
      const Enu p{rng.uniform(0, 30), rng.uniform(0, 30)};
      history.push_back(
          {p, {{1, field(p)}}, static_cast<std::uint32_t>(i / 10)});
    }
    wifi::RssiDetectorConfig cfg;
    cfg.confidence.reference_radius_m = 3.0;
    cfg.confidence.top_k = 2;
    cfg.classifier.num_trees = 15;
    detector = std::make_unique<wifi::RssiDetector>(std::move(history), cfg);

    std::vector<wifi::ScannedUpload> train;
    std::vector<int> labels;
    for (int i = 0; i < 30; ++i) {
      train.push_back(upload(true));
      labels.push_back(1);
      train.push_back(upload(false));
      labels.push_back(0);
    }
    detector->train(train, labels);
  }

  wifi::ScannedUpload upload(bool real) {
    wifi::ScannedUpload u;
    for (std::size_t j = 0; j < kUploadPoints; ++j) {
      const Enu p{rng.uniform(2, 28), rng.uniform(2, 28)};
      u.positions.push_back(p);
      const Enu heard = real ? p : Enu{p.east + 15.0, p.north};
      u.scans.push_back({{1, field(heard)}});
    }
    return u;
  }
};

std::vector<wifi::ScannedUpload> probe_mix(World& w, std::size_t n) {
  std::vector<wifi::ScannedUpload> probes;
  for (std::size_t i = 0; i < n; ++i) probes.push_back(w.upload(i % 2 == 0));
  return probes;
}

TEST(VerifierService, SyncBatchMatchesDetectorAnalyze) {
  World w;
  const auto probes = probe_mix(w, 8);
  // Reference verdicts straight off the detector, before the service swaps
  // in its shared cache (cache policy must not be able to change them).
  std::vector<std::string> want;
  for (const auto& u : probes) want.push_back(w.detector->analyze(u).canonical_string());

  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(*w.detector, cfg);
  std::vector<VerificationRequest> requests;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    requests.push_back({i, probes[i], 0});
  }
  const auto responses = service.verify_batch(requests);
  ASSERT_EQ(responses.size(), probes.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].request_id, i);
    ASSERT_EQ(responses[i].outcome, Outcome::kOk) << responses[i].error;
    EXPECT_EQ(responses[i].report.canonical_string(), want[i]);
  }
}

TEST(VerifierService, SubmitResolvesFuturesViaDispatcher) {
  World w;
  const auto probes = probe_mix(w, 6);
  std::vector<std::string> want;
  for (const auto& u : probes) want.push_back(w.detector->analyze(u).canonical_string());

  VerifierServiceConfig cfg;
  cfg.max_batch = 2;  // force several micro-batches
  VerifierService service(*w.detector, cfg);
  EXPECT_TRUE(service.running());
  std::vector<std::future<VerdictResponse>> futures;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    futures.push_back(service.submit({i, probes[i], 0}));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto response = futures[i].get();
    EXPECT_EQ(response.request_id, i);
    ASSERT_EQ(response.outcome, Outcome::kOk) << response.error;
    EXPECT_EQ(response.report.canonical_string(), want[i]);
    EXPECT_GE(response.compute_us, 0);
  }
  service.stop();
  EXPECT_FALSE(service.running());
  const auto c = service.counters();
  EXPECT_EQ(c.received, probes.size());
  EXPECT_EQ(c.completed, probes.size());
  EXPECT_EQ(c.rejected, 0u);
  EXPECT_GE(c.batches, (probes.size() + cfg.max_batch - 1) / cfg.max_batch);
}

TEST(VerifierService, AdmissionRejectsBeyondQueueLimit) {
  World w;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;  // nothing drains until start()
  cfg.max_queue = 2;
  VerifierService service(*w.detector, cfg);

  auto f1 = service.submit({1, w.upload(true), 0});
  auto f2 = service.submit({2, w.upload(true), 0});
  auto f3 = service.submit({3, w.upload(true), 0});
  // The third future must already be resolved — rejected at admission.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().outcome, Outcome::kRejected);

  service.start();
  EXPECT_EQ(f1.get().outcome, Outcome::kOk);
  EXPECT_EQ(f2.get().outcome, Outcome::kOk);
  const auto c = service.counters();
  EXPECT_EQ(c.received, 3u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.rejected, 1u);
}

TEST(VerifierService, ExpiredDeadlinesTimeOutWithoutEvaluation) {
  World w;
  ManualClock clock;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(*w.detector, cfg, &clock);

  auto stale = service.submit({1, w.upload(true), /*deadline_us=*/100});
  auto fresh = service.submit({2, w.upload(true), /*deadline_us=*/0});
  clock.advance_us(1000);  // the stale request's queueing budget expires
  service.start();
  const auto stale_response = stale.get();
  EXPECT_EQ(stale_response.outcome, Outcome::kTimedOut);
  EXPECT_GE(stale_response.queue_us, 1000);
  EXPECT_EQ(fresh.get().outcome, Outcome::kOk);
  const auto c = service.counters();
  EXPECT_EQ(c.timed_out, 1u);
  EXPECT_EQ(c.completed, 1u);
}

TEST(VerifierService, MalformedUploadComesBackAsError) {
  World w;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(*w.detector, cfg);

  wifi::ScannedUpload wrong_length;  // trained on kUploadPoints, send 2
  wrong_length.positions = {{5, 5}, {6, 5}};
  wrong_length.scans = {{{1, -45}}, {{1, -46}}};
  const auto response = service.verify_now(wrong_length);
  EXPECT_EQ(response.outcome, Outcome::kError);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.counters().errors, 1u);
}

TEST(VerifierService, DestructionRejectsUndrainedRequests) {
  World w;
  std::future<VerdictResponse> orphan;
  {
    VerifierServiceConfig cfg;
    cfg.auto_start = false;
    VerifierService service(*w.detector, cfg);
    orphan = service.submit({9, w.upload(true), 0});
  }
  ASSERT_EQ(orphan.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(orphan.get().outcome, Outcome::kRejected);
}

TEST(VerifierService, SaveTryLoadServeRoundTrip) {
  World w;
  const auto probes = probe_mix(w, 6);
  std::vector<std::string> want;
  for (const auto& u : probes) want.push_back(w.detector->analyze(u).canonical_string());

  const char* path = "serve_test_model.tmp";
  w.detector->save_file(path);
  auto service_or = VerifierService::try_create_from_file(path);
  std::remove(path);
  ASSERT_TRUE(service_or.has_value()) << service_or.error();
  const auto service = std::move(service_or).value();
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto response = service->verify_now(probes[i]);
    ASSERT_EQ(response.outcome, Outcome::kOk) << response.error;
    EXPECT_EQ(response.report.canonical_string(), want[i])
        << "upload " << i << " diverged after save -> try_load -> serve";
  }
}

TEST(VerifierService, TryCreateFromMissingFileReportsError) {
  auto service_or = VerifierService::try_create_from_file("no-such-model.tmp");
  ASSERT_FALSE(service_or.has_value());
  EXPECT_NE(service_or.error().find("cannot open"), std::string::npos)
      << service_or.error();
}

TEST(VerifierService, CountersTableListsCacheAndLatency) {
  World w;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(*w.detector, cfg);
  (void)service.verify_now(w.upload(true));
  const std::string table = service.counters_table();
  for (const char* row : {"requests received", "completed", "micro-batches",
                          "rpd cache hit rate", "latency p50 (us)"}) {
    EXPECT_NE(table.find(row), std::string::npos) << "missing row: " << row;
  }
}

TEST(RpdLruCache, TinyCapacityEvictsWithoutChangingVerdicts) {
  World w;
  const auto probes = probe_mix(w, 10);
  std::vector<std::string> want;
  for (const auto& u : probes) want.push_back(w.detector->analyze(u).canonical_string());

  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.cache.capacity = 8;  // absurdly small: constant churn
  cfg.cache.shards = 1;
  VerifierService service(*w.detector, cfg);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto response = service.verify_now(probes[i]);
    ASSERT_EQ(response.outcome, Outcome::kOk) << response.error;
    EXPECT_EQ(response.report.canonical_string(), want[i])
        << "eviction changed the verdict payload of upload " << i;
  }
  ASSERT_NE(service.shared_cache(), nullptr);
  const auto stats = service.shared_cache()->stats();
  EXPECT_GT(stats.evictions, 0u) << "capacity 8 should have churned";
  EXPECT_LE(service.shared_cache()->size(), 8u);
}

TEST(RpdLruCache, CountsHitsAndMisses) {
  ShardedRpdLruCache cache({/*capacity=*/4, /*shards=*/2});
  std::size_t builds = 0;
  auto build = [&] {
    ++builds;
    return wifi::RpdPointStats{};
  };
  (void)cache.get_or_build(1, build);
  (void)cache.get_or_build(1, build);
  (void)cache.get_or_build(2, build);
  EXPECT_EQ(builds, 2u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NEAR(stats.hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST(RpdLruCache, EvictsLeastRecentlyUsedFirst) {
  ShardedRpdLruCache cache({/*capacity=*/2, /*shards=*/1});
  std::size_t builds = 0;
  auto build = [&] {
    ++builds;
    return wifi::RpdPointStats{};
  };
  (void)cache.get_or_build(1, build);
  (void)cache.get_or_build(2, build);
  (void)cache.get_or_build(1, build);  // touch 1: now 2 is the LRU entry
  (void)cache.get_or_build(3, build);  // evicts 2
  (void)cache.get_or_build(1, build);  // still resident
  EXPECT_EQ(builds, 3u);
  (void)cache.get_or_build(2, build);  // gone: rebuilt
  EXPECT_EQ(builds, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(RpdLruCache, ValidatesConfig) {
  EXPECT_THROW(ShardedRpdLruCache({0, 4}), std::invalid_argument);
  EXPECT_THROW(ShardedRpdLruCache({16, 0}), std::invalid_argument);
  // More shards than capacity clamps rather than throwing.
  const ShardedRpdLruCache cache({2, 64});
  EXPECT_EQ(cache.config().shards, 2u);
}

TEST(VerifierService, RejectsNullAndMisconfigured) {
  World w;
  EXPECT_THROW(VerifierService(std::unique_ptr<wifi::RssiDetector>(), {}),
               std::invalid_argument);
  VerifierServiceConfig zero_batch;
  zero_batch.max_batch = 0;
  EXPECT_THROW(VerifierService(*w.detector, zero_batch), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::serve
