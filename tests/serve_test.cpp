// Serving layer: VerifierService micro-batching, admission control,
// deadlines, the shared bounded RPD LRU, model round-trips through the
// non-throwing loaders, and the partial-failure machinery — retry with
// deterministic backoff, the circuit breaker, and rule-based degradation.
//
// The detector fixture is the shared linear-field world from tests/support
// (field value = -40 - east dBm over a 30x30 m area; fakes shifted 15 m
// east).  Randomised failure schedules live in chaos_test; this file pins the
// per-feature semantics with hand-picked schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "baseline/rule_based.hpp"
#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "serve/rpd_lru_cache.hpp"
#include "serve/service.hpp"
#include "support/fixtures.hpp"
#include "wifi/detector.hpp"

namespace trajkit::serve {
namespace {

namespace ts = test_support;

TEST(VerifierService, SyncBatchMatchesDetectorAnalyze) {
  ts::LinearFieldWorld w;
  const auto probes = w.probe_mix(8);
  // Reference verdicts straight off the detector, before the service swaps
  // in its shared cache (cache policy must not be able to change them).
  std::vector<std::string> want;
  for (const auto& u : probes) want.push_back(w.detector().analyze(u).canonical_string());

  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(w.detector(), cfg);
  std::vector<VerificationRequest> requests;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    requests.push_back({i, probes[i], 0});
  }
  const auto responses = service.verify_batch(requests);
  ASSERT_EQ(responses.size(), probes.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].request_id, i);
    ASSERT_EQ(responses[i].outcome, Outcome::kOk) << responses[i].error;
    EXPECT_EQ(responses[i].report.canonical_string(), want[i]);
  }
}

TEST(VerifierService, MotionSidecarAnnotatesOkResponses) {
  ts::LinearFieldWorld w;
  const auto probes = w.probe_mix(6);

  // The sidecar model's verdict must be a pure function of (model, upload):
  // reference probabilities straight off the classifier, one at a time.
  auto encoder = std::make_shared<DistAngleEncoder>();
  nn::LstmClassifierConfig mc;
  mc.hidden_dim = 8;
  auto model = std::make_shared<nn::LstmClassifier>(mc, 7);
  std::vector<double> want;
  for (const auto& u : probes) {
    want.push_back(model->predict_proba(encoder->encode(u.positions)));
  }

  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.motion.model = model;
  cfg.motion.encoder = encoder;
  VerifierService service(w.detector(), cfg);
  std::vector<VerificationRequest> requests;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    requests.push_back({i, probes[i], 0});
  }
  const auto responses = service.verify_batch(requests);
  ASSERT_EQ(responses.size(), probes.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].outcome, Outcome::kOk) << responses[i].error;
    ASSERT_TRUE(responses[i].has_motion_p_real);
    // Bitwise: the batched sidecar pass must match the per-sample call.
    EXPECT_EQ(responses[i].motion_p_real, want[i]) << "request " << i;
    EXPECT_NE(responses[i].canonical_string().find("motion_p_real="),
              std::string::npos);
  }

  // The sync single-upload path goes through the same annotation.
  const auto single = service.verify_now(probes[0]);
  ASSERT_EQ(single.outcome, Outcome::kOk);
  ASSERT_TRUE(single.has_motion_p_real);
  EXPECT_EQ(single.motion_p_real, want[0]);
}

TEST(VerifierService, MotionSidecarAbsentWhenUnarmed) {
  ts::LinearFieldWorld w;
  const auto upload = w.probe_mix(1)[0];
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(w.detector(), cfg);  // no motion policy
  const auto response = service.verify_now(upload);
  ASSERT_EQ(response.outcome, Outcome::kOk) << response.error;
  EXPECT_FALSE(response.has_motion_p_real);
  EXPECT_EQ(response.canonical_string().find("motion_p_real="), std::string::npos);
}

TEST(VerifierService, SubmitResolvesFuturesViaDispatcher) {
  ts::LinearFieldWorld w;
  const auto probes = w.probe_mix(6);
  std::vector<std::string> want;
  for (const auto& u : probes) want.push_back(w.detector().analyze(u).canonical_string());

  VerifierServiceConfig cfg;
  cfg.max_batch = 2;  // force several micro-batches
  VerifierService service(w.detector(), cfg);
  EXPECT_TRUE(service.running());
  std::vector<std::future<VerdictResponse>> futures;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    futures.push_back(service.submit({i, probes[i], 0}));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto response = futures[i].get();
    EXPECT_EQ(response.request_id, i);
    ASSERT_EQ(response.outcome, Outcome::kOk) << response.error;
    EXPECT_EQ(response.report.canonical_string(), want[i]);
    EXPECT_GE(response.compute_us, 0);
  }
  service.stop();
  EXPECT_FALSE(service.running());
  const auto c = service.counters();
  EXPECT_EQ(c.received, probes.size());
  EXPECT_EQ(c.completed, probes.size());
  EXPECT_EQ(c.rejected, 0u);
  EXPECT_GE(c.batches, (probes.size() + cfg.max_batch - 1) / cfg.max_batch);
}

TEST(VerifierService, AdmissionRejectsBeyondQueueLimit) {
  ts::LinearFieldWorld w;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;  // nothing drains until start()
  cfg.max_queue = 2;
  VerifierService service(w.detector(), cfg);

  auto f1 = service.submit({1, w.upload(true), 0});
  auto f2 = service.submit({2, w.upload(true), 0});
  auto f3 = service.submit({3, w.upload(true), 0});
  // The third future must already be resolved — rejected at admission.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().outcome, Outcome::kRejected);

  service.start();
  EXPECT_EQ(f1.get().outcome, Outcome::kOk);
  EXPECT_EQ(f2.get().outcome, Outcome::kOk);
  const auto c = service.counters();
  EXPECT_EQ(c.received, 3u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.rejected, 1u);
}

TEST(VerifierService, ExpiredDeadlinesTimeOutWithoutEvaluation) {
  ts::LinearFieldWorld w;
  ManualClock clock;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(w.detector(), cfg, &clock);

  auto stale = service.submit({1, w.upload(true), /*deadline_us=*/100});
  auto fresh = service.submit({2, w.upload(true), /*deadline_us=*/0});
  clock.advance_us(1000);  // the stale request's queueing budget expires
  service.start();
  const auto stale_response = stale.get();
  EXPECT_EQ(stale_response.outcome, Outcome::kTimedOut);
  EXPECT_GE(stale_response.queue_us, 1000);
  EXPECT_EQ(fresh.get().outcome, Outcome::kOk);
  const auto c = service.counters();
  EXPECT_EQ(c.timed_out, 1u);
  EXPECT_EQ(c.completed, 1u);
}

TEST(VerifierService, MalformedUploadComesBackAsError) {
  ts::LinearFieldWorld w;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(w.detector(), cfg);

  wifi::ScannedUpload wrong_length;  // trained on 6 points, send 2
  wrong_length.positions = {{5, 5}, {6, 5}};
  wrong_length.scans = {{{1, -45}}, {{1, -46}}};
  const auto response = service.verify_now(wrong_length);
  EXPECT_EQ(response.outcome, Outcome::kError);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.counters().errors, 1u);
}

TEST(VerifierService, DestructionRejectsUndrainedRequests) {
  ts::LinearFieldWorld w;
  std::future<VerdictResponse> orphan;
  {
    VerifierServiceConfig cfg;
    cfg.auto_start = false;
    VerifierService service(w.detector(), cfg);
    orphan = service.submit({9, w.upload(true), 0});
  }
  ASSERT_EQ(orphan.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(orphan.get().outcome, Outcome::kRejected);
}

TEST(VerifierService, SaveTryLoadServeRoundTrip) {
  ts::LinearFieldWorld w;
  const auto probes = w.probe_mix(6);
  std::vector<std::string> want;
  for (const auto& u : probes) want.push_back(w.detector().analyze(u).canonical_string());

  const char* path = "serve_test_model.tmp";
  w.detector().save_file(path);
  auto service_or = VerifierService::try_create_from_file(path);
  std::remove(path);
  ASSERT_TRUE(service_or.has_value()) << service_or.error();
  const auto service = std::move(service_or).value();
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto response = service->verify_now(probes[i]);
    ASSERT_EQ(response.outcome, Outcome::kOk) << response.error;
    EXPECT_EQ(response.report.canonical_string(), want[i])
        << "upload " << i << " diverged after save -> try_load -> serve";
  }
}

TEST(VerifierService, TryCreateFromMissingFileReportsError) {
  auto service_or = VerifierService::try_create_from_file("no-such-model.tmp");
  ASSERT_FALSE(service_or.has_value());
  EXPECT_NE(service_or.error().find("cannot open"), std::string::npos)
      << service_or.error();
}

TEST(VerifierService, CountersTableListsCacheAndLatency) {
  ts::LinearFieldWorld w;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  VerifierService service(w.detector(), cfg);
  (void)service.verify_now(w.upload(true));
  const std::string table = service.counters_table();
  for (const char* row : {"requests received", "completed", "micro-batches",
                          "degraded (fallback)", "retries", "breaker opens",
                          "rpd cache hit rate", "latency p50 (us)"}) {
    EXPECT_NE(table.find(row), std::string::npos) << "missing row: " << row;
  }
}

// ---------------------------------------------------------------------------
// Partial failure: retry, degradation, circuit breaker, degraded start.

TEST(VerifierService, RetryRecoversTransientFaultsAtConfiguredAttempt) {
  ts::LinearFieldWorld w;
  const auto probe = w.upload(true);
  const std::string want = w.detector().analyze(probe).canonical_string();

  ManualClock clock;  // backoff advances the clock instead of sleeping
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.retry.max_retries = 2;
  VerifierService service(w.detector(), cfg, &clock);

  FaultScope faults(1);
  faults.arm(kFaultDispatch, {.fail_first = 2});  // attempts 0,1 fail; 2 works
  const auto response = service.verify_now(probe);
  ASSERT_EQ(response.outcome, Outcome::kOk) << response.degraded_reason;
  EXPECT_EQ(response.report.canonical_string(), want)
      << "a retried evaluation must produce the same payload as a clean one";
  const auto c = service.counters();
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.degraded, 0u);
  EXPECT_GT(clock.now_us(), 0) << "backoff should have consumed manual time";
}

TEST(VerifierService, ExhaustedRetriesDegradeToRuleBasedFallback) {
  ts::LinearFieldWorld w;
  const auto probe = w.upload(true);

  ManualClock clock;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.retry.max_retries = 1;
  VerifierService service(w.detector(), cfg, &clock);

  FaultScope faults(1);
  faults.arm(kFaultDispatch, {.fail_first = 5});  // outlives max_retries
  const auto response = service.verify_now(probe);
  ASSERT_EQ(response.outcome, Outcome::kDegraded);
  EXPECT_NE(response.degraded_reason.find(kFaultDispatch), std::string::npos)
      << response.degraded_reason;
  // The fallback verdict is the rule-based checker's, over claimed positions.
  const auto fallback = baseline::RuleBasedDetector::for_mode(Mode::kWalking);
  EXPECT_EQ(response.report.verdict,
            fallback.verify_points(probe.positions, cfg.fallback.interval_s));
  EXPECT_EQ(response.report.point_scores.size(), probe.positions.size());
  const auto c = service.counters();
  EXPECT_EQ(c.degraded, 1u);
  EXPECT_EQ(c.retries, 1u);
  EXPECT_EQ(c.completed, 0u);
}

TEST(VerifierService, FallbackCatchesTeleportingUploads) {
  ts::LinearFieldWorld w;
  wifi::ScannedUpload teleport;  // 6 points, one impossible 500 m jump
  for (int j = 0; j < 6; ++j) {
    const double east = j == 3 ? 500.0 : j * 1.0;
    teleport.positions.push_back({east, 0.0});
    // Clamp the scan into physical range: the forgery lives in the claimed
    // positions, and an unclamped field value at 500 m east (-540 dBm) would
    // be rejected by input validation before the fallback ever ran.
    const int rssi =
        std::max(ts::LinearFieldWorld::field_rssi({east, 0.0}), -100);
    teleport.scans.push_back({{1, rssi}});
  }

  ManualClock clock;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.retry.max_retries = 0;
  VerifierService service(w.detector(), cfg, &clock);
  FaultScope faults(1);
  faults.arm(kFaultDispatch, {.probability = 1.0});
  const auto response = service.verify_now(teleport);
  ASSERT_EQ(response.outcome, Outcome::kDegraded);
  EXPECT_EQ(response.report.verdict, 0) << "rule checker must flag the jump";
  EXPECT_LT(response.report.p_real, 1.0);
}

TEST(VerifierService, DisabledFallbackTurnsExhaustionIntoError) {
  ts::LinearFieldWorld w;
  ManualClock clock;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.retry.max_retries = 0;
  cfg.fallback.enabled = false;
  VerifierService service(w.detector(), cfg, &clock);
  FaultScope faults(1);
  faults.arm(kFaultDispatch, {.probability = 1.0});
  const auto response = service.verify_now(w.upload(true));
  EXPECT_EQ(response.outcome, Outcome::kError);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.counters().errors, 1u);
}

TEST(VerifierService, BackoffDelaysGrowAndStayDeterministic) {
  ts::LinearFieldWorld w;
  auto total_backoff = [&](std::uint64_t jitter_seed) {
    ManualClock clock;
    VerifierServiceConfig cfg;
    cfg.auto_start = false;
    cfg.retry.max_retries = 3;
    cfg.retry.jitter_seed = jitter_seed;
    VerifierService service(w.detector(), cfg, &clock);
    FaultScope faults(1);
    faults.arm(kFaultDispatch, {.fail_first = 3});
    (void)service.verify_now(w.upload(true));
    return clock.now_us();
  };
  const auto a = total_backoff(0);
  // Identical schedule replays to the microsecond; a different jitter seed
  // lands elsewhere in the [0.5, 1.5) band.  (The upload contents differ per
  // call — delays depend only on request id and jitter seed, by design.)
  EXPECT_EQ(a, total_backoff(0));
  EXPECT_NE(a, total_backoff(99));
  // Three delays at base 50 us, multiplier 2, jitter in [0.5, 1.5):
  // bounded by [0.5, 1.5) * (50 + 100 + 200).
  EXPECT_GE(a, 175);
  EXPECT_LT(a, 525);
}

TEST(VerifierService, BreakerOpensShedsLoadAndRecovers) {
  ts::LinearFieldWorld w;
  ManualClock clock;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.retry.max_retries = 0;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_us = 1000;
  VerifierService service(w.detector(), cfg, &clock);

  const auto probe = w.upload(true);
  {
    FaultScope faults(1);
    faults.arm(kFaultDispatch, {.probability = 1.0});
    // Two exhausted evaluations trip the breaker...
    EXPECT_EQ(service.verify_now(probe).outcome, Outcome::kDegraded);
    EXPECT_FALSE(service.breaker_open());
    EXPECT_EQ(service.verify_now(probe).outcome, Outcome::kDegraded);
    EXPECT_TRUE(service.breaker_open());
    // ...after which requests degrade without touching the detector.
    const auto shed = service.verify_now(probe);
    EXPECT_EQ(shed.outcome, Outcome::kDegraded);
    EXPECT_EQ(shed.degraded_reason, "breaker_open");
  }
  // Faults cleared but the breaker still cooling down: still shedding.
  EXPECT_EQ(service.verify_now(probe).degraded_reason, "breaker_open");
  clock.advance_us(cfg.breaker.cooldown_us + 1);
  EXPECT_FALSE(service.breaker_open());
  EXPECT_EQ(service.verify_now(probe).outcome, Outcome::kOk);
  const auto c = service.counters();
  EXPECT_EQ(c.breaker_opens, 1u);
  EXPECT_EQ(c.degraded, 4u);
  EXPECT_EQ(c.completed, 1u);
}

TEST(VerifierService, DegradedStartServesWithoutADetector) {
  // The model file cannot load (injected), but degraded start is allowed:
  // the service comes up detector-less and answers through the fallback.
  ts::LinearFieldWorld w;
  const char* path = "serve_test_degraded_model.tmp";
  w.detector().save_file(path);

  VerifierServiceConfig cfg;
  cfg.fallback.allow_degraded_start = true;
  std::unique_ptr<VerifierService> service;
  {
    FaultScope faults(1);
    faults.arm(wifi::kFaultDetectorLoad, {.probability = 1.0});
    auto service_or = VerifierService::try_create_from_file(path, cfg);
    ASSERT_TRUE(service_or.has_value()) << service_or.error();
    service = std::move(service_or).value();
  }
  std::remove(path);
  EXPECT_FALSE(service->has_detector());

  const auto probes = w.probe_mix(4);
  std::vector<std::future<VerdictResponse>> futures;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    futures.push_back(service->submit({i, probes[i], 0}));
  }
  for (auto& future : futures) {
    const auto response = future.get();
    EXPECT_EQ(response.outcome, Outcome::kDegraded);
    EXPECT_EQ(response.degraded_reason, "detector_unavailable");
  }
  const auto c = service->counters();
  EXPECT_EQ(c.degraded, probes.size());
  EXPECT_EQ(c.completed, 0u);
}

TEST(VerifierService, DegradedStartStillRefusedWhenDisallowed) {
  ts::LinearFieldWorld w;
  const char* path = "serve_test_refused_model.tmp";
  w.detector().save_file(path);
  {
    FaultScope faults(1);
    faults.arm(wifi::kFaultDetectorLoad, {.probability = 1.0});
    const auto service_or = VerifierService::try_create_from_file(path);
    EXPECT_FALSE(service_or.has_value());
  }
  std::remove(path);
}

TEST(DetectorIo, SaveFaultSurfacesAsFaultError) {
  ts::LinearFieldWorld w;
  FaultScope faults(1);
  faults.arm(wifi::kFaultDetectorSave, {.probability = 1.0});
  EXPECT_THROW(w.detector().save_file("serve_test_unwritten.tmp"), FaultError);
}

TEST(VerifierService, PoisonedRpdShardDegradesInsteadOfCrashing) {
  ts::LinearFieldWorld w;
  ManualClock clock;
  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.retry.max_retries = 1;
  VerifierService service(w.detector(), cfg, &clock);
  FaultScope faults(1);
  faults.arm(kFaultRpdShard, {.probability = 1.0});  // every shard poisoned
  const auto response = service.verify_now(w.upload(true));
  ASSERT_EQ(response.outcome, Outcome::kDegraded);
  EXPECT_NE(response.degraded_reason.find(kFaultRpdShard), std::string::npos)
      << response.degraded_reason;
}

// ---------------------------------------------------------------------------
// Shared RPD LRU

TEST(RpdLruCache, TinyCapacityEvictsWithoutChangingVerdicts) {
  ts::LinearFieldWorld w;
  const auto probes = w.probe_mix(10);
  std::vector<std::string> want;
  for (const auto& u : probes) want.push_back(w.detector().analyze(u).canonical_string());

  VerifierServiceConfig cfg;
  cfg.auto_start = false;
  cfg.cache.capacity = 8;  // absurdly small: constant churn
  cfg.cache.shards = 1;
  VerifierService service(w.detector(), cfg);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto response = service.verify_now(probes[i]);
    ASSERT_EQ(response.outcome, Outcome::kOk) << response.error;
    EXPECT_EQ(response.report.canonical_string(), want[i])
        << "eviction changed the verdict payload of upload " << i;
  }
  ASSERT_NE(service.shared_cache(), nullptr);
  const auto stats = service.shared_cache()->stats();
  EXPECT_GT(stats.evictions, 0u) << "capacity 8 should have churned";
  EXPECT_LE(service.shared_cache()->size(), 8u);
}

TEST(RpdLruCache, CountsHitsAndMisses) {
  ShardedRpdLruCache cache({/*capacity=*/4, /*shards=*/2});
  std::size_t builds = 0;
  auto build = [&] {
    ++builds;
    return wifi::RpdPointStats{};
  };
  (void)cache.get_or_build(1, build);
  (void)cache.get_or_build(1, build);
  (void)cache.get_or_build(2, build);
  EXPECT_EQ(builds, 2u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NEAR(stats.hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST(RpdLruCache, EvictsLeastRecentlyUsedFirst) {
  ShardedRpdLruCache cache({/*capacity=*/2, /*shards=*/1});
  std::size_t builds = 0;
  auto build = [&] {
    ++builds;
    return wifi::RpdPointStats{};
  };
  (void)cache.get_or_build(1, build);
  (void)cache.get_or_build(2, build);
  (void)cache.get_or_build(1, build);  // touch 1: now 2 is the LRU entry
  (void)cache.get_or_build(3, build);  // evicts 2
  (void)cache.get_or_build(1, build);  // still resident
  EXPECT_EQ(builds, 3u);
  (void)cache.get_or_build(2, build);  // gone: rebuilt
  EXPECT_EQ(builds, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(RpdLruCache, ValidatesConfig) {
  EXPECT_THROW(ShardedRpdLruCache({0, 4}), std::invalid_argument);
  EXPECT_THROW(ShardedRpdLruCache({16, 0}), std::invalid_argument);
  // More shards than capacity clamps rather than throwing.
  const ShardedRpdLruCache cache({2, 64});
  EXPECT_EQ(cache.config().shards, 2u);
}

TEST(VerifierService, RejectsNullAndMisconfigured) {
  ts::LinearFieldWorld w;
  EXPECT_THROW(VerifierService(std::unique_ptr<wifi::RssiDetector>(), {}),
               std::invalid_argument);
  VerifierServiceConfig zero_batch;
  zero_batch.max_batch = 0;
  EXPECT_THROW(VerifierService(w.detector(), zero_batch), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::serve
