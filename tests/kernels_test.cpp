// Batched kernel layer vs the naive reference kernels: every comparison in
// this file is for BIT-identity (EXPECT_EQ on doubles, no tolerance).  The
// packed GEMMs, the batched LSTM/GRU runners and the classifier's batched
// backend must reproduce the reference matvec path exactly — that is the
// determinism contract the kernel layer was built under (see DESIGN.md).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/classifier.hpp"
#include "nn/gru.hpp"
#include "nn/kernels/align.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/kernels/rnn_batched.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"

namespace trajkit::nn {
namespace {

using kernels::BatchSpec;
using kernels::kLanes;
using kernels::Packed;
using kernels::Workspace;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-2.0, 2.0);
  return m;
}

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

FeatureSequence random_sequence(std::size_t steps, std::size_t dim, Rng& rng) {
  FeatureSequence x;
  x.steps = steps;
  x.dim = dim;
  x.values = random_vec(steps * dim, rng);
  return x;
}

/// Extract one lane of a block sequence into flat steps x rows layout.
std::vector<double> extract_lane(const double* blocks, std::size_t rows,
                                 std::size_t lanes, std::size_t steps,
                                 std::size_t lane) {
  std::vector<double> out(steps * rows);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t r = 0; r < rows; ++r) {
      out[t * rows + r] = blocks[t * rows * lanes + r * lanes + lane];
    }
  }
  return out;
}

void expect_bits_equal(const std::vector<double>& a, const std::vector<double>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at element " << i;
  }
}

void expect_matrix_equal(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " diverges at element " << i;
  }
}

const std::size_t kShapes[][2] = {{1, 1},  {3, 2},  {7, 5},  {8, 8},
                                  {9, 4},  {16, 3}, {20, 17}, {33, 12}};

TEST(Kernels, GemvWxMatchesGemvAcc) {
  Rng rng(11);
  for (const auto& shape : kShapes) {
    const std::size_t rows = shape[0], depth = shape[1];
    const Matrix w = random_matrix(rows, depth, rng);
    const std::vector<double> bias = random_vec(rows, rng);
    const std::vector<double> x = random_vec(depth, rng);

    std::vector<double> ref(bias);
    gemv_acc(w, x.data(), ref.data());

    Workspace ws;
    const Packed p = kernels::pack_rows(w, ws);
    std::vector<double> got(rows, -99.0);
    kernels::gemv_wx(p, bias.data(), x.data(), got.data());
    expect_bits_equal(ref, got, "gemv_wx");

    // Null bias == zero seed.
    std::vector<double> ref0(rows, 0.0);
    gemv_acc(w, x.data(), ref0.data());
    std::vector<double> got0(rows, -99.0);
    kernels::gemv_wx(p, nullptr, x.data(), got0.data());
    expect_bits_equal(ref0, got0, "gemv_wx null bias");
  }
}

TEST(Kernels, GemmWx8MatchesPerLane) {
  Rng rng(12);
  for (const auto& shape : kShapes) {
    const std::size_t rows = shape[0], depth = shape[1];
    const Matrix w = random_matrix(rows, depth, rng);
    const std::vector<double> bias = random_vec(rows, rng);
    const std::vector<double> xb = random_vec(depth * kLanes, rng);

    Workspace ws;
    const Packed p = kernels::pack_rows(w, ws);
    std::vector<double> got(rows * kLanes, -99.0);
    kernels::gemm_wx8(p, bias.data(), xb.data(), got.data());

    for (std::size_t l = 0; l < kLanes; ++l) {
      std::vector<double> x(depth);
      for (std::size_t k = 0; k < depth; ++k) x[k] = xb[k * kLanes + l];
      std::vector<double> ref(bias);
      gemv_acc(w, x.data(), ref.data());
      for (std::size_t r = 0; r < rows; ++r) {
        ASSERT_EQ(ref[r], got[r * kLanes + l]) << "lane " << l << " row " << r;
      }
    }
  }
}

TEST(Kernels, AccseqMatchesGemvTAcc) {
  Rng rng(13);
  for (const auto& shape : kShapes) {
    const std::size_t rows = shape[0], cols = shape[1];
    const Matrix w = random_matrix(rows, cols, rng);
    const std::vector<double> x = random_vec(rows, rng);
    const std::vector<double> seed = random_vec(cols, rng);

    std::vector<double> ref(seed);
    gemv_t_acc(w, x.data(), ref.data());

    Workspace ws;
    const Packed pt = kernels::pack_transpose(w, ws);
    std::vector<double> got(seed);
    kernels::gemv_accseq(pt, x.data(), got.data());
    expect_bits_equal(ref, got, "gemv_accseq");
  }
}

TEST(Kernels, Accseq8MatchesPerLane) {
  Rng rng(14);
  for (const auto& shape : kShapes) {
    const std::size_t rows = shape[0], cols = shape[1];
    const Matrix w = random_matrix(rows, cols, rng);
    const std::vector<double> xb = random_vec(rows * kLanes, rng);
    const std::vector<double> seed = random_vec(cols * kLanes, rng);

    Workspace ws;
    const Packed pt = kernels::pack_transpose(w, ws);
    std::vector<double> got(seed);
    kernels::gemm_accseq8(pt, xb.data(), got.data());

    for (std::size_t l = 0; l < kLanes; ++l) {
      std::vector<double> x(rows);
      for (std::size_t r = 0; r < rows; ++r) x[r] = xb[r * kLanes + l];
      std::vector<double> ref(cols);
      for (std::size_t c = 0; c < cols; ++c) ref[c] = seed[c * kLanes + l];
      gemv_t_acc(w, x.data(), ref.data());
      for (std::size_t c = 0; c < cols; ++c) {
        ASSERT_EQ(ref[c], got[c * kLanes + l]) << "lane " << l << " col " << c;
      }
    }
  }
}

TEST(Kernels, TdescMatchesRank1Sequence) {
  Rng rng(15);
  for (const auto& shape : kShapes) {
    const std::size_t rows = shape[0], cols = shape[1];
    for (std::size_t tsteps : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
      // a is rows x tsteps (t minor); bm is tsteps x cols.
      const std::vector<double> a = random_vec(rows * tsteps, rng);
      const std::vector<double> bm = random_vec(tsteps * cols, rng);
      Matrix seed = random_matrix(rows, cols, rng);

      for (std::size_t t_stop : {std::size_t{0}, std::size_t{1}}) {
        Matrix ref = seed;
        std::vector<double> at(rows);
        for (std::size_t t = tsteps; t-- > t_stop;) {
          for (std::size_t r = 0; r < rows; ++r) at[r] = a[r * tsteps + t];
          rank1_acc(ref, 1.0, at.data(), bm.data() + t * cols);
        }
        Matrix got = seed;
        kernels::gemm_acc_tdesc(a.data(), rows, tsteps, bm.data(), cols, t_stop,
                                got);
        expect_matrix_equal(ref, got, "gemm_acc_tdesc");
      }

      Matrix dref(rows, 1);
      for (std::size_t r = 0; r < rows; ++r) dref(r, 0) = rng.uniform(-1.0, 1.0);
      Matrix dgot = dref;
      for (std::size_t t = tsteps; t-- > 0;) {
        for (std::size_t r = 0; r < rows; ++r) dref(r, 0) += a[r * tsteps + t];
      }
      kernels::rowsum_acc_tdesc(a.data(), rows, tsteps, dgot);
      expect_matrix_equal(dref, dgot, "rowsum_acc_tdesc");
    }
  }
}

/// Build lane-minor input blocks (zero-padded) from per-sample sequences.
std::vector<double> make_xblocks(const std::vector<FeatureSequence>& xs,
                                 std::size_t max_steps, std::size_t lanes) {
  const std::size_t dim = xs[0].dim;
  std::vector<double> blocks(max_steps * dim * lanes, 0.0);
  for (std::size_t b = 0; b < xs.size(); ++b) {
    for (std::size_t t = 0; t < xs[b].steps; ++t) {
      for (std::size_t c = 0; c < dim; ++c) {
        blocks[t * dim * lanes + c * lanes + b] = xs[b].values[t * dim + c];
      }
    }
  }
  return blocks;
}

struct RaggedCase {
  std::vector<FeatureSequence> xs;
  std::vector<std::size_t> steps;
  BatchSpec spec;
};

RaggedCase make_ragged(std::size_t batch, std::size_t dim, std::size_t max_steps,
                       Rng& rng, bool ragged) {
  RaggedCase c;
  c.steps.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    c.steps[b] =
        ragged ? static_cast<std::size_t>(
                     rng.uniform_int(1, static_cast<std::int64_t>(max_steps)))
               : max_steps;
    c.xs.push_back(random_sequence(c.steps[b], dim, rng));
  }
  // Make sure at least one sample spans the full window.
  c.steps[0] = max_steps;
  c.xs[0] = random_sequence(max_steps, dim, rng);
  c.spec.batch = batch;
  c.spec.lanes = batch == 1 ? 1 : kLanes;
  c.spec.max_steps = max_steps;
  c.spec.steps = c.steps.data();
  return c;
}

TEST(Kernels, LstmBatchedForwardMatchesReference) {
  Rng rng(21);
  for (const std::size_t hidden : {3u, 8u, 13u}) {
    for (const std::size_t batch : {1u, 3u, 8u}) {
      Rng wrng(100 + hidden);
      const LstmLayer layer(4, hidden, wrng);
      RaggedCase c = make_ragged(batch, 4, 9, rng, true);
      Workspace ws;
      const auto tr = kernels::lstm_forward_batched(
          layer, make_xblocks(c.xs, 9, c.spec.lanes).data(), c.spec, ws);
      for (std::size_t b = 0; b < batch; ++b) {
        const LstmTrace ref = layer.forward(c.xs[b].values, c.steps[b]);
        expect_bits_equal(ref.hiddens,
                          extract_lane(tr.hiddens, hidden, c.spec.lanes,
                                       c.steps[b], b),
                          "lstm hiddens");
        expect_bits_equal(ref.cells,
                          extract_lane(tr.cells, hidden, c.spec.lanes,
                                       c.steps[b], b),
                          "lstm cells");
        expect_bits_equal(ref.gates,
                          extract_lane(tr.gates, 4 * hidden, c.spec.lanes,
                                       c.steps[b], b),
                          "lstm gates");
      }
    }
  }
}

TEST(Kernels, LstmBatchedBackwardMatchesReference) {
  Rng rng(22);
  for (const std::size_t hidden : {3u, 8u, 13u}) {
    for (const std::size_t batch : {1u, 3u, 8u}) {
      Rng wrng(200 + hidden);
      LstmLayer layer(4, hidden, wrng);
      RaggedCase c = make_ragged(batch, 4, 9, rng, true);
      const std::size_t L = c.spec.lanes;

      // dh_last mode: reference accumulates sample by sample in batch order.
      std::vector<std::vector<double>> dh_last(batch);
      std::vector<double> dh_flat;
      for (std::size_t b = 0; b < batch; ++b) {
        dh_last[b] = random_vec(hidden, rng);
        dh_flat.insert(dh_flat.end(), dh_last[b].begin(), dh_last[b].end());
      }

      layer.zero_grad();
      std::vector<std::vector<double>> ref_dx(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        const LstmTrace tr = layer.forward(c.xs[b].values, c.steps[b]);
        layer.backward(tr, dh_last[b], &ref_dx[b]);
      }
      const Matrix ref_dw = layer.weight_grad();
      const Matrix ref_db = layer.bias_grad();

      Workspace ws;
      const auto btr = kernels::lstm_forward_batched(
          layer, make_xblocks(c.xs, 9, L).data(), c.spec, ws);
      Matrix dw(4 * hidden, 4 + hidden), db(4 * hidden, 1);
      std::vector<double> dx_blocks(9 * 4 * L, 0.0);
      kernels::lstm_backward_batched(layer, btr, c.spec, dh_flat.data(), nullptr,
                                     dx_blocks.data(),
                                     kernels::LstmGrads{&dw, &db}, ws);
      expect_matrix_equal(ref_dw, dw, "lstm dw");
      expect_matrix_equal(ref_db, db, "lstm db");
      for (std::size_t b = 0; b < batch; ++b) {
        expect_bits_equal(ref_dx[b],
                          extract_lane(dx_blocks.data(), 4, L, c.steps[b], b),
                          "lstm dx");
      }
    }
  }
}

TEST(Kernels, LstmBatchedBackwardSeqMatchesReference) {
  Rng rng(23);
  const std::size_t hidden = 7, dim = 3, max_steps = 8;
  Rng wrng(77);
  LstmLayer layer(dim, hidden, wrng);
  RaggedCase c = make_ragged(5, dim, max_steps, rng, true);
  const std::size_t L = c.spec.lanes;

  // Per-step injections, zero past each sample's length (as an upper layer
  // would produce).
  std::vector<std::vector<double>> inj(c.xs.size());
  std::vector<double> inj_blocks(max_steps * hidden * L, 0.0);
  for (std::size_t b = 0; b < c.xs.size(); ++b) {
    inj[b] = random_vec(c.steps[b] * hidden, rng);
    for (std::size_t t = 0; t < c.steps[b]; ++t) {
      for (std::size_t k = 0; k < hidden; ++k) {
        inj_blocks[t * hidden * L + k * L + b] = inj[b][t * hidden + k];
      }
    }
  }

  layer.zero_grad();
  std::vector<std::vector<double>> ref_dx(c.xs.size());
  for (std::size_t b = 0; b < c.xs.size(); ++b) {
    const LstmTrace tr = layer.forward(c.xs[b].values, c.steps[b]);
    layer.backward_seq(tr, inj[b], &ref_dx[b]);
  }

  Workspace ws;
  const auto btr = kernels::lstm_forward_batched(
      layer, make_xblocks(c.xs, max_steps, L).data(), c.spec, ws);
  Matrix dw(4 * hidden, dim + hidden), db(4 * hidden, 1);
  std::vector<double> dx_blocks(max_steps * dim * L, 0.0);
  kernels::lstm_backward_batched(layer, btr, c.spec, nullptr, inj_blocks.data(),
                                 dx_blocks.data(), kernels::LstmGrads{&dw, &db},
                                 ws);
  expect_matrix_equal(layer.weight_grad(), dw, "lstm seq dw");
  expect_matrix_equal(layer.bias_grad(), db, "lstm seq db");
  for (std::size_t b = 0; b < c.xs.size(); ++b) {
    expect_bits_equal(ref_dx[b],
                      extract_lane(dx_blocks.data(), dim, L, c.steps[b], b),
                      "lstm seq dx");
  }
}

TEST(Kernels, GruBatchedForwardMatchesReference) {
  Rng rng(24);
  for (const std::size_t hidden : {3u, 8u, 13u}) {
    for (const std::size_t batch : {1u, 4u, 8u}) {
      Rng wrng(300 + hidden);
      const GruLayer layer(4, hidden, wrng);
      RaggedCase c = make_ragged(batch, 4, 9, rng, true);
      Workspace ws;
      const auto tr = kernels::gru_forward_batched(
          layer, make_xblocks(c.xs, 9, c.spec.lanes).data(), c.spec, ws);
      for (std::size_t b = 0; b < batch; ++b) {
        const GruTrace ref = layer.forward(c.xs[b].values, c.steps[b]);
        expect_bits_equal(ref.hiddens,
                          extract_lane(tr.hiddens, hidden, c.spec.lanes,
                                       c.steps[b], b),
                          "gru hiddens");
        expect_bits_equal(ref.n_cand,
                          extract_lane(tr.n_cand, hidden, c.spec.lanes,
                                       c.steps[b], b),
                          "gru n_cand");
        expect_bits_equal(ref.nh_pre,
                          extract_lane(tr.nh_pre, hidden, c.spec.lanes,
                                       c.steps[b], b),
                          "gru nh_pre");
      }
    }
  }
}

TEST(Kernels, GruBatchedBackwardMatchesReference) {
  Rng rng(25);
  for (const std::size_t hidden : {3u, 8u, 13u}) {
    for (const std::size_t batch : {1u, 4u, 8u}) {
      Rng wrng(400 + hidden);
      GruLayer layer(4, hidden, wrng);
      RaggedCase c = make_ragged(batch, 4, 9, rng, true);
      const std::size_t L = c.spec.lanes;

      std::vector<std::vector<double>> dh_last(batch);
      std::vector<double> dh_flat;
      for (std::size_t b = 0; b < batch; ++b) {
        dh_last[b] = random_vec(hidden, rng);
        dh_flat.insert(dh_flat.end(), dh_last[b].begin(), dh_last[b].end());
      }

      layer.zero_grad();
      std::vector<std::vector<double>> ref_dx(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        const GruTrace tr = layer.forward(c.xs[b].values, c.steps[b]);
        // GruLayer exposes only backward_seq; final-state objective == zeros
        // except the last block.
        std::vector<double> dh_seq(c.steps[b] * hidden, 0.0);
        std::copy(dh_last[b].begin(), dh_last[b].end(),
                  dh_seq.end() - static_cast<std::ptrdiff_t>(hidden));
        layer.backward_seq(tr, dh_seq, &ref_dx[b]);
      }

      Workspace ws;
      const auto btr = kernels::gru_forward_batched(
          layer, make_xblocks(c.xs, 9, L).data(), c.spec, ws);
      Matrix dw_gates(2 * hidden, 4 + hidden), db_gates(2 * hidden, 1);
      Matrix dw_nx(hidden, 4), dw_nh(hidden, hidden);
      Matrix db_nx(hidden, 1), db_nh(hidden, 1);
      std::vector<double> dx_blocks(9 * 4 * L, 0.0);
      kernels::gru_backward_batched(
          layer, btr, c.spec, dh_flat.data(), nullptr, dx_blocks.data(),
          kernels::GruGrads{&dw_gates, &db_gates, &dw_nx, &dw_nh, &db_nx,
                            &db_nh},
          ws);
      expect_matrix_equal(layer.gate_weight_grad(), dw_gates, "gru dw_gates");
      expect_matrix_equal(layer.gate_bias_grad(), db_gates, "gru db_gates");
      expect_matrix_equal(layer.cand_x_weight_grad(), dw_nx, "gru dw_nx");
      expect_matrix_equal(layer.cand_h_weight_grad(), dw_nh, "gru dw_nh");
      expect_matrix_equal(layer.cand_x_bias_grad(), db_nx, "gru db_nx");
      expect_matrix_equal(layer.cand_h_bias_grad(), db_nh, "gru db_nh");
      for (std::size_t b = 0; b < batch; ++b) {
        expect_bits_equal(ref_dx[b],
                          extract_lane(dx_blocks.data(), 4, L, c.steps[b], b),
                          "gru dx");
      }
    }
  }
}

/// One-shot zero-seeded GRU backward_seq injection path (per-step injections,
/// like a stacked net) against the batched dh_blocks mode.
TEST(Kernels, GruBatchedBackwardSeqMatchesReference) {
  Rng rng(26);
  const std::size_t hidden = 6, dim = 3, max_steps = 7;
  Rng wrng(88);
  GruLayer layer(dim, hidden, wrng);
  RaggedCase c = make_ragged(4, dim, max_steps, rng, true);
  const std::size_t L = c.spec.lanes;

  std::vector<std::vector<double>> inj(c.xs.size());
  std::vector<double> inj_blocks(max_steps * hidden * L, 0.0);
  for (std::size_t b = 0; b < c.xs.size(); ++b) {
    inj[b] = random_vec(c.steps[b] * hidden, rng);
    for (std::size_t t = 0; t < c.steps[b]; ++t) {
      for (std::size_t k = 0; k < hidden; ++k) {
        inj_blocks[t * hidden * L + k * L + b] = inj[b][t * hidden + k];
      }
    }
  }

  layer.zero_grad();
  std::vector<std::vector<double>> ref_dx(c.xs.size());
  for (std::size_t b = 0; b < c.xs.size(); ++b) {
    const GruTrace tr = layer.forward(c.xs[b].values, c.steps[b]);
    layer.backward_seq(tr, inj[b], &ref_dx[b]);
  }

  Workspace ws;
  const auto btr = kernels::gru_forward_batched(
      layer, make_xblocks(c.xs, max_steps, L).data(), c.spec, ws);
  Matrix dw_gates(2 * hidden, dim + hidden), db_gates(2 * hidden, 1);
  Matrix dw_nx(hidden, dim), dw_nh(hidden, hidden);
  Matrix db_nx(hidden, 1), db_nh(hidden, 1);
  kernels::gru_backward_batched(
      layer, btr, c.spec, nullptr, inj_blocks.data(), nullptr,
      kernels::GruGrads{&dw_gates, &db_gates, &dw_nx, &dw_nh, &db_nx, &db_nh},
      ws);
  expect_matrix_equal(layer.gate_weight_grad(), dw_gates, "gru seq dw_gates");
  expect_matrix_equal(layer.cand_h_weight_grad(), dw_nh, "gru seq dw_nh");
  expect_matrix_equal(layer.cand_h_bias_grad(), db_nh, "gru seq db_nh");
}

LstmClassifierConfig small_config(std::size_t layers, NnBackend backend) {
  LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 10;
  cfg.num_layers = layers;
  cfg.batch_size = 6;  // deliberately not a multiple of the chunk grain
  cfg.backend = backend;
  return cfg;
}

std::vector<FeatureSequence> random_dataset(std::size_t n, Rng& rng) {
  std::vector<FeatureSequence> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(
        random_sequence(static_cast<std::size_t>(rng.uniform_int(3, 12)), 2, rng));
  }
  return xs;
}

TEST(Kernels, ClassifierPredictBackendsBitIdentical) {
  Rng rng(31);
  for (const std::size_t layers : {1u, 2u, 3u}) {
    const LstmClassifier ref(small_config(layers, NnBackend::kReference), 9001);
    const LstmClassifier bat(small_config(layers, NnBackend::kBatched), 9001);
    const auto xs = random_dataset(11, rng);
    const auto batch_probs = bat.predict_proba_batch(xs);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double p_ref = ref.predict_proba(xs[i]);
      ASSERT_EQ(p_ref, bat.predict_proba(xs[i])) << "layers=" << layers;
      ASSERT_EQ(p_ref, batch_probs[i]) << "grouped, layers=" << layers;
    }
  }
}

TEST(Kernels, ClassifierInputGradientBackendsBitIdentical) {
  Rng rng(32);
  for (const std::size_t layers : {1u, 2u}) {
    const LstmClassifier ref(small_config(layers, NnBackend::kReference), 417);
    const LstmClassifier bat(small_config(layers, NnBackend::kBatched), 417);
    for (int trial = 0; trial < 5; ++trial) {
      const FeatureSequence x = random_sequence(
          static_cast<std::size_t>(rng.uniform_int(4, 11)), 2, rng);
      FeatureSequence dref, dbat;
      const double lr = ref.loss_and_input_gradient(x, 1, &dref);
      const double lb = bat.loss_and_input_gradient(x, 1, &dbat);
      ASSERT_EQ(lr, lb);
      expect_bits_equal(dref.values, dbat.values, "input gradient");
    }
  }
}

TEST(Kernels, ClassifierTrainingBackendsBitIdentical) {
  Rng rng(33);
  for (const std::size_t layers : {1u, 2u}) {
    LstmClassifier ref(small_config(layers, NnBackend::kReference), 5150);
    LstmClassifier bat(small_config(layers, NnBackend::kBatched), 5150);
    const auto xs = random_dataset(14, rng);
    std::vector<int> ys;
    for (std::size_t i = 0; i < xs.size(); ++i) ys.push_back(i % 2 ? 1 : 0);

    const TrainReport rr = ref.train(xs, ys, 2);
    const TrainReport rb = bat.train(xs, ys, 2);
    expect_bits_equal(rr.epoch_loss, rb.epoch_loss, "epoch loss");
    expect_bits_equal(rr.epoch_accuracy, rb.epoch_accuracy, "epoch accuracy");

    // The trained weights themselves must agree bit for bit.
    std::ostringstream sr, sb;
    ref.save(sr);
    bat.save(sb);
    ASSERT_EQ(sr.str(), sb.str()) << "trained model text, layers=" << layers;
  }
}

TEST(Kernels, WorkspaceReusesMemoryAcrossResets) {
  Workspace ws;
  double* a = ws.take(100);
  double* b = ws.take(1000);
  ASSERT_NE(a, b);
  ws.reset();
  EXPECT_EQ(a, ws.take(100));
  EXPECT_EQ(b, ws.take(1000));
  // Blocks are 64-byte aligned.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
}

}  // namespace
}  // namespace trajkit::nn
