// Trajectory preprocessing (resampling, smoothing, stay points, gap
// splitting) and HMM map matching.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "map/city.hpp"
#include "map/matcher.hpp"
#include "sim/dataset.hpp"
#include "traj/preprocess.hpp"

namespace trajkit {
namespace {

const LocalProjection kProj({0.0, 0.0});

Trajectory make_traj(const std::vector<Enu>& pts, const std::vector<double>& times,
                     Mode mode = Mode::kWalking) {
  std::vector<TrajPoint> tp;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tp.push_back({kProj.to_latlon(pts[i]), times[i]});
  }
  return Trajectory(std::move(tp), mode);
}

TEST(Resample, UniformOutputFromIrregularInput) {
  // Positions on a line at irregular times; resampled at 1 s.
  const auto t = make_traj({{0, 0}, {2, 0}, {10, 0}}, {0.0, 2.0, 10.0});
  const auto r = resample_uniform(t, 1.0);
  ASSERT_EQ(r.size(), 11u);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i].time_s, static_cast<double>(i), 1e-9);
    EXPECT_NEAR(r.to_enu(kProj)[i].east, static_cast<double>(i), 1e-6);
  }
}

TEST(Resample, DownsamplesToo) {
  std::vector<Enu> pts;
  std::vector<double> times;
  for (int i = 0; i < 21; ++i) {
    pts.push_back({i * 1.0, 0.0});
    times.push_back(i * 1.0);
  }
  const auto r = resample_uniform(make_traj(pts, times), 5.0);
  EXPECT_EQ(r.size(), 5u);  // t = 0, 5, 10, 15, 20
  EXPECT_NEAR(r.to_enu(kProj)[1].east, 5.0, 1e-6);
}

TEST(Resample, Validates) {
  const auto t = make_traj({{0, 0}, {1, 0}}, {0.0, 1.0});
  EXPECT_THROW(resample_uniform(t, 0.0), std::invalid_argument);
}

TEST(Smooth, ReducesNoiseButKeepsShape) {
  Rng rng(1);
  std::vector<Enu> pts;
  std::vector<double> times;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({i * 2.0 + rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)});
    times.push_back(i * 1.0);
  }
  const auto t = make_traj(pts, times);
  const auto s = moving_average_smooth(t, 2, kProj);
  ASSERT_EQ(s.size(), t.size());

  // Lateral (north) deviation from the true line y = 0 shrinks.
  double rough = 0.0;
  double smooth = 0.0;
  const auto sp = s.to_enu(kProj);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    rough += std::fabs(pts[i].north);
    smooth += std::fabs(sp[i].north);
  }
  EXPECT_LT(smooth, rough * 0.7);
  // Timestamps untouched.
  EXPECT_DOUBLE_EQ(s[10].time_s, t[10].time_s);
}

TEST(Smooth, ZeroWindowIsIdentity) {
  const auto t = make_traj({{0, 0}, {3, 1}, {6, 0}}, {0, 1, 2});
  const auto s = moving_average_smooth(t, 0, kProj);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(s.to_enu(kProj)[i].east, t.to_enu(kProj)[i].east, 1e-9);
  }
}

TEST(StayPoints, DetectsDwellBetweenMovement) {
  std::vector<Enu> pts;
  std::vector<double> times;
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {  // walk east
    pts.push_back({i * 3.0, 0.0});
    times.push_back(t++);
  }
  for (int i = 0; i < 30; ++i) {  // dwell at (30, 0)
    pts.push_back({30.0 + (i % 2) * 0.5, 0.0});
    times.push_back(t++);
  }
  for (int i = 1; i <= 10; ++i) {  // walk on
    pts.push_back({30.0 + i * 3.0, 0.0});
    times.push_back(t++);
  }
  const auto sps = detect_stay_points(make_traj(pts, times), kProj, 5.0, 20.0);
  ASSERT_EQ(sps.size(), 1u);
  EXPECT_NEAR(sps[0].centroid.east, 30.0, 1.5);
  EXPECT_GE(sps[0].duration_s(), 20.0);
  EXPECT_GE(sps[0].first_index, 8u);
}

TEST(StayPoints, NoneOnSteadyMovement) {
  std::vector<Enu> pts;
  std::vector<double> times;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({i * 2.0, 0.0});
    times.push_back(i * 1.0);
  }
  EXPECT_TRUE(detect_stay_points(make_traj(pts, times), kProj, 5.0, 10.0).empty());
}

TEST(SplitOnGaps, CutsAtTimestampHoles) {
  const auto t = make_traj({{0, 0}, {1, 0}, {2, 0}, {50, 0}, {51, 0}},
                           {0.0, 1.0, 2.0, 60.0, 61.0});
  const auto segments = split_on_gaps(t, 5.0);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].size(), 3u);
  EXPECT_EQ(segments[1].size(), 2u);
}

TEST(SplitOnGaps, DropsSingletonSegments) {
  const auto t = make_traj({{0, 0}, {100, 0}, {101, 0}}, {0.0, 60.0, 61.0});
  const auto segments = split_on_gaps(t, 5.0);
  ASSERT_EQ(segments.size(), 1u);  // the leading lone point is dropped
  EXPECT_EQ(segments[0].size(), 2u);
}

TEST(Resample, SinglePairEndpointsExact) {
  const auto t = make_traj({{0, 0}, {10, 0}}, {0.0, 4.0});
  const auto r = resample_uniform(t, 2.0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r.to_enu(kProj)[0].east, 0.0, 1e-9);
  EXPECT_NEAR(r.to_enu(kProj)[1].east, 5.0, 1e-6);
  EXPECT_NEAR(r.to_enu(kProj)[2].east, 10.0, 1e-6);
}

TEST(StayPoints, TwoSeparateDwells) {
  std::vector<Enu> pts;
  std::vector<double> times;
  double t = 0.0;
  auto dwell = [&](Enu where, int ticks) {
    for (int i = 0; i < ticks; ++i) {
      pts.push_back({where.east + (i % 2) * 0.3, where.north});
      times.push_back(t++);
    }
  };
  auto walk = [&](Enu from, Enu to, int ticks) {
    for (int i = 1; i <= ticks; ++i) {
      const double f = static_cast<double>(i) / ticks;
      pts.push_back(from + (to - from) * f);
      times.push_back(t++);
    }
  };
  dwell({0, 0}, 25);
  walk({0, 0}, {60, 0}, 15);
  dwell({60, 0}, 25);
  const auto sps = detect_stay_points(make_traj(pts, times), kProj, 4.0, 15.0);
  ASSERT_EQ(sps.size(), 2u);
  EXPECT_NEAR(sps[0].centroid.east, 0.0, 2.0);
  EXPECT_NEAR(sps[1].centroid.east, 60.0, 2.0);
  EXPECT_LT(sps[0].depart_s, sps[1].arrive_s);
}

TEST(SplitOnGaps, NoGapsReturnsWhole) {
  const auto t = make_traj({{0, 0}, {1, 0}, {2, 0}}, {0.0, 1.0, 2.0});
  const auto segments = split_on_gaps(t, 5.0);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].size(), 3u);
}

TEST(Preprocess, ValidatesParameters) {
  const auto t = make_traj({{0, 0}, {1, 0}, {2, 0}}, {0.0, 1.0, 2.0});
  EXPECT_THROW(detect_stay_points(t, kProj, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(detect_stay_points(t, kProj, 5.0, 0.0), std::invalid_argument);
  EXPECT_THROW(split_on_gaps(t, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Map matching.

TEST(MapMatcher, SnapsNoisyTraceToItsRoad) {
  Rng rng(2);
  const auto net = map::make_city({.blocks_x = 5, .blocks_y = 5}, rng);
  const sim::TrajectorySimulator simulator(net);
  const auto traj = simulator.simulate_real(Mode::kWalking, 30, 1.0, rng);

  const map::MapMatcher matcher(net);
  const auto result = matcher.match(traj.reported.to_enu(sim::sim_projection()));
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->points.size(), 30u);
  // Genuine on-road traces snap within GPS error.
  EXPECT_LT(result->mean_offset_m, 2.5);
  // Every snapped point is on the network.
  for (const auto& mp : result->points) {
    EXPECT_LT(net.distance_to_network(mp.snapped), 1e-6);
  }
}

TEST(MapMatcher, RejectsOffMapTrajectory) {
  Rng rng(3);
  const auto net = map::make_city({.blocks_x = 4, .blocks_y = 4}, rng);
  const map::MapMatcher matcher(net);
  // A trace far outside the city bounds.
  std::vector<Enu> off = {{5000, 5000}, {5010, 5000}, {5020, 5000}};
  EXPECT_FALSE(matcher.match(off).has_value());
}

TEST(MapMatcher, ForgedTrajectoryStillMatchesItsRoute) {
  // Route rationality of the replay forgery: the perturbed trace must still
  // map-match with small offsets.
  Rng rng(4);
  const auto net = map::make_city({.blocks_x = 5, .blocks_y = 5}, rng);
  const sim::TrajectorySimulator simulator(net);
  const auto traj = simulator.simulate_real(Mode::kWalking, 30, 1.0, rng);
  const auto hist = traj.reported.to_enu(sim::sim_projection());

  const map::MapMatcher matcher(net);
  const auto matched = matcher.match(hist);
  ASSERT_TRUE(matched.has_value());
  // 1.4 m/step displacement keeps the trace within matching tolerance.
  EXPECT_LT(matched->mean_offset_m + 1.4, matcher.config().max_candidate_distance_m);
}

TEST(MapMatcher, ValidatesInput) {
  Rng rng(5);
  const auto net = map::make_city({.blocks_x = 3, .blocks_y = 3}, rng);
  const map::MapMatcher matcher(net);
  EXPECT_THROW(matcher.match({{0, 0}}), std::invalid_argument);
  map::MatchConfig bad;
  bad.gps_sigma_m = 0.0;
  EXPECT_THROW(map::MapMatcher(net, bad), std::invalid_argument);
}

TEST(MapMatcher, PrefersContinuousPathOverNearestEdge) {
  // Two parallel roads 12 m apart; the trace runs along the north one but one
  // noisy fix leans toward the south road.  HMM continuity should keep the
  // match on the north road.
  map::RoadNetwork net;
  const auto a0 = net.add_node({0, 0});
  const auto a1 = net.add_node({100, 0});
  const auto b0 = net.add_node({0, 12});
  const auto b1 = net.add_node({100, 12});
  net.add_edge(a0, a1, map::RoadClass::kLocal);
  const auto north_edge = net.add_edge(b0, b1, map::RoadClass::kLocal);

  std::vector<Enu> trace;
  for (int i = 0; i <= 10; ++i) trace.push_back({i * 10.0, 11.0});
  trace[5].north = 5.4;  // an outlier fix leaning to the south road

  map::MatchConfig cfg;
  cfg.gps_sigma_m = 4.0;
  const map::MapMatcher matcher(net, cfg);
  const auto result = matcher.match(trace);
  ASSERT_TRUE(result.has_value());
  std::size_t on_north = 0;
  for (const auto& mp : result->points) on_north += mp.edge == north_edge;
  EXPECT_GE(on_north, 10u);  // at most the outlier itself may flip
}

}  // namespace
}  // namespace trajkit
