// Golden regression pins: the numeric contract of the detector for a fixed
// seed, committed as text under tests/golden/.
//
// Two artifacts are pinned:
//   * the Eq. 8 feature vectors of one real and one forged upload from the
//     shared linear-field world — any change to RPD estimation (Eq. 4),
//     weighting (Eqs. 5-6), confidence (Eq. 7) or feature layout moves these;
//   * the canonical verdict payloads of a probe mix plus their fnv1a
//     checksum — the serving layer's byte-exact contract.
//
// If a change is intentional, regenerate with
//   TRAJKIT_UPDATE_GOLDEN=1 ctest -R Golden
// and review the git diff; an unexpected diff means the paper's numbers
// moved.  Goldens are bit-exact doubles (%.17g): safe because this repo
// builds on one fixed toolchain and machine.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "attack/cw.hpp"
#include "common/rng.hpp"
#include "nn/classifier.hpp"
#include "support/fixtures.hpp"
#include "support/golden.hpp"
#include "traj/features.hpp"
#include "wifi/detector.hpp"
#include "wifi/features.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

TEST(Golden, Eq8FeatureVectorsArePinned) {
  ts::LinearFieldWorld w;  // default config: seed 7, 30x30 m, 6-point uploads
  std::string out;
  for (const bool real : {true, false}) {
    const auto upload = w.upload(real);
    const auto features = wifi::trajectory_features(w.detector().confidence(), upload);
    out += real ? "real" : "fake";
    out += '\n';
    for (const double v : features) {
      out += ts::canonical_double(v);
      out += '\n';
    }
  }
  EXPECT_TRUE(ts::matches_golden("eq8_features.txt", out));
}

TEST(Golden, VerdictPayloadsAndChecksumArePinned) {
  ts::LinearFieldWorld w;
  std::string out;
  std::uint64_t checksum = 1469598103934665603ull;
  for (const auto& upload : w.probe_mix(6)) {
    const std::string payload = w.detector().analyze(upload).canonical_string();
    checksum ^= fnv1a(payload);  // order-insensitive fold per payload
    out += payload;
    out += '\n';
  }
  out += "fnv1a_xor=" + hex64(checksum) + '\n';
  EXPECT_TRUE(ts::matches_golden("verdict_checksums.txt", out));
}

std::vector<Enu> golden_walk(Rng& rng, std::size_t n, double step) {
  std::vector<Enu> pts = {{0.0, 0.0}};
  for (std::size_t i = 1; i < n; ++i) {
    pts.push_back({pts.back().east + rng.uniform(0.5, step),
                   pts.back().north + rng.uniform(-step / 2, step / 2)});
  }
  return pts;
}

/// A small deterministically-trained classifier shared by the nn goldens:
/// "real" samples drift steadily east, "fake" samples jitter in place, so a
/// few epochs separate them and the pinned logits are meaningful.
nn::LstmClassifier golden_classifier(const DistAngleEncoder& encoder) {
  Rng rng(42);
  std::vector<FeatureSequence> xs;
  std::vector<int> ys;
  for (int i = 0; i < 24; ++i) {
    const std::size_t n = 18 + static_cast<std::size_t>(rng.uniform_int(0, 10));
    const bool real = i % 2 == 0;
    auto pts = golden_walk(rng, n, real ? 4.0 : 1.0);
    xs.push_back(encoder.encode(pts));
    ys.push_back(real ? 1 : 0);
  }
  nn::LstmClassifierConfig cfg;
  cfg.hidden_dim = 12;
  cfg.batch_size = 8;
  nn::LstmClassifier model(cfg, 5);
  model.train(xs, ys, 3);
  return model;
}

TEST(Golden, ClassifierLogitsArePinned) {
  // Pins the whole nn stack — init, Adam training and inference through the
  // batched kernels — and asserts the reference backend produces the same
  // bits before pinning, so a kernel regression fails twice over.
  const DistAngleEncoder encoder;
  auto model = golden_classifier(encoder);

  Rng rng(4242);
  std::string out;
  for (int k = 0; k < 8; ++k) {
    const auto pts = golden_walk(rng, 16 + 3 * static_cast<std::size_t>(k),
                                 k % 2 == 0 ? 4.0 : 1.0);
    const auto x = encoder.encode(pts);
    model.set_backend(nn::NnBackend::kBatched);
    const double batched = model.predict_proba(x);
    model.set_backend(nn::NnBackend::kReference);
    const double reference = model.predict_proba(x);
    ASSERT_EQ(batched, reference) << "sample " << k;  // bitwise backend parity
    out += ts::canonical_double(batched);
    out += '\n';
  }
  EXPECT_TRUE(ts::matches_golden("nn_logits.txt", out));
}

TEST(Golden, CwAttackOutputIsPinned) {
  // One full navigation attack, pinned end to end: iterate points, p_real and
  // normalised DTW.  Runs twice — pruned-exact DTW and the reference DP — and
  // asserts bitwise equality first: the fast path must not be able to move
  // the attack by even one ulp.
  const DistAngleEncoder encoder;
  const auto model = golden_classifier(encoder);

  Rng rng(7);
  const auto route = golden_walk(rng, 40, 4.0);

  attack::CwConfig ac;
  ac.iterations = 60;
  ac.history_stride = 20;
  ac.fast_dtw = true;
  const auto fast = attack::CwAttacker(model, encoder, ac).forge_navigation(route);
  ac.fast_dtw = false;
  const auto slow = attack::CwAttacker(model, encoder, ac).forge_navigation(route);

  ASSERT_EQ(fast.points.size(), slow.points.size());
  for (std::size_t i = 0; i < fast.points.size(); ++i) {
    ASSERT_EQ(fast.points[i].east, slow.points[i].east) << "point " << i;
    ASSERT_EQ(fast.points[i].north, slow.points[i].north) << "point " << i;
  }
  ASSERT_EQ(fast.p_real, slow.p_real);
  ASSERT_EQ(fast.dtw_norm, slow.dtw_norm);

  std::string out = "p_real=" + ts::canonical_double(fast.p_real) + '\n';
  out += "dtw_norm=" + ts::canonical_double(fast.dtw_norm) + '\n';
  out += "adversarial=" + std::to_string(fast.adversarial ? 1 : 0) + '\n';
  for (const auto& p : fast.points) {
    out += ts::canonical_double(p.east);
    out += ' ';
    out += ts::canonical_double(p.north);
    out += '\n';
  }
  EXPECT_TRUE(ts::matches_golden("cw_attack_points.txt", out));
}

}  // namespace
}  // namespace trajkit
