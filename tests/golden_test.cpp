// Golden regression pins: the numeric contract of the detector for a fixed
// seed, committed as text under tests/golden/.
//
// Two artifacts are pinned:
//   * the Eq. 8 feature vectors of one real and one forged upload from the
//     shared linear-field world — any change to RPD estimation (Eq. 4),
//     weighting (Eqs. 5-6), confidence (Eq. 7) or feature layout moves these;
//   * the canonical verdict payloads of a probe mix plus their fnv1a
//     checksum — the serving layer's byte-exact contract.
//
// If a change is intentional, regenerate with
//   TRAJKIT_UPDATE_GOLDEN=1 ctest -R Golden
// and review the git diff; an unexpected diff means the paper's numbers
// moved.  Goldens are bit-exact doubles (%.17g): safe because this repo
// builds on one fixed toolchain and machine.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "support/fixtures.hpp"
#include "support/golden.hpp"
#include "wifi/detector.hpp"
#include "wifi/features.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

TEST(Golden, Eq8FeatureVectorsArePinned) {
  ts::LinearFieldWorld w;  // default config: seed 7, 30x30 m, 6-point uploads
  std::string out;
  for (const bool real : {true, false}) {
    const auto upload = w.upload(real);
    const auto features = wifi::trajectory_features(w.detector().confidence(), upload);
    out += real ? "real" : "fake";
    out += '\n';
    for (const double v : features) {
      out += ts::canonical_double(v);
      out += '\n';
    }
  }
  EXPECT_TRUE(ts::matches_golden("eq8_features.txt", out));
}

TEST(Golden, VerdictPayloadsAndChecksumArePinned) {
  ts::LinearFieldWorld w;
  std::string out;
  std::uint64_t checksum = 1469598103934665603ull;
  for (const auto& upload : w.probe_mix(6)) {
    const std::string payload = w.detector().analyze(upload).canonical_string();
    checksum ^= fnv1a(payload);  // order-insensitive fold per payload
    out += payload;
    out += '\n';
  }
  out += "fnv1a_xor=" + hex64(checksum) + '\n';
  EXPECT_TRUE(ts::matches_golden("verdict_checksums.txt", out));
}

}  // namespace
}  // namespace trajkit
