// Simulation substrate: GPS error statistics, mobility dynamics invariants,
// the WiFi radio environment and dataset builders.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "map/city.hpp"
#include "sim/dataset.hpp"
#include "sim/gps.hpp"
#include "sim/mobility.hpp"
#include "sim/wifi_world.hpp"

namespace trajkit::sim {
namespace {

map::RoadNetwork test_city(std::uint64_t seed = 1) {
  Rng rng(seed);
  return map::make_city({.blocks_x = 6, .blocks_y = 6, .block_size_m = 50.0}, rng);
}

TEST(Gps, StationarySigmaMatchesConfig) {
  GpsErrorModel gps({.sigma_m = 0.5, .correlation = 0.8});
  Rng rng(1);
  RunningStats east;
  // Collect stationary draws: first error of many independent sequences.
  for (int i = 0; i < 4000; ++i) {
    const auto noisy = gps.corrupt({{0, 0}}, rng);
    east.add(noisy[0].east);
  }
  EXPECT_NEAR(east.mean(), 0.0, 0.05);
  EXPECT_NEAR(east.stddev(), 0.5, 0.05);
}

TEST(Gps, ConsecutiveErrorsAreCorrelated) {
  GpsErrorModel gps({.sigma_m = 0.5, .correlation = 0.9});
  Rng rng(2);
  // Correlated errors => per-step increments much smaller than i.i.d.
  const std::vector<Enu> truth(200, Enu{0, 0});
  const auto noisy = gps.corrupt(truth, rng);
  RunningStats increments;
  for (std::size_t i = 1; i < noisy.size(); ++i) {
    increments.add(distance(noisy[i], noisy[i - 1]));
  }
  // i.i.d. per-axis sigma 0.5 would give mean 2D increment ~0.89 m;
  // rho = 0.9 shrinks it by sqrt(2(1-rho)) ~ 0.45.
  EXPECT_LT(increments.mean(), 0.55);
  EXPECT_GT(increments.mean(), 0.15);
}

TEST(Gps, ZeroNoiseIsIdentity) {
  GpsErrorModel gps({.sigma_m = 0.0, .correlation = 0.0});
  Rng rng(3);
  const std::vector<Enu> truth = {{1, 2}, {3, 4}};
  const auto noisy = gps.corrupt(truth, rng);
  EXPECT_EQ(noisy[0], truth[0]);
  EXPECT_EQ(noisy[1], truth[1]);
}

TEST(Gps, ValidatesConfig) {
  EXPECT_THROW(GpsErrorModel({.sigma_m = -1.0}), std::invalid_argument);
  EXPECT_THROW(GpsErrorModel({.sigma_m = 0.5, .correlation = 1.0}),
               std::invalid_argument);
}

TEST(Mobility, ModeParamsOrdered) {
  const auto walk = MobilityParams::for_mode(Mode::kWalking);
  const auto cycle = MobilityParams::for_mode(Mode::kCycling);
  const auto drive = MobilityParams::for_mode(Mode::kDriving);
  EXPECT_LT(walk.mean_speed_mps, cycle.mean_speed_mps);
  EXPECT_LT(cycle.mean_speed_mps, drive.mean_speed_mps);
}

TEST(Mobility, SpeedsRespectDynamicLimits) {
  Rng rng(4);
  const std::vector<Enu> route = {{0, 0}, {500, 0}};
  const auto params = MobilityParams::for_mode(Mode::kWalking);
  const auto pts = simulate_motion(route, params, 1.0, 120, rng);
  ASSERT_GT(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double v = distance(pts[i], pts[i - 1]);
    // Hard ceiling: OU clamp at mean + 3 sigma.
    EXPECT_LE(v, params.mean_speed_mps + 3.0 * params.speed_stddev + 1e-6);
  }
}

TEST(Mobility, SpeedVariesUnlikeConstantResampling) {
  Rng rng(5);
  const std::vector<Enu> route = {{0, 0}, {400, 0}};
  const auto pts =
      simulate_motion(route, MobilityParams::for_mode(Mode::kWalking), 1.0, 150, rng);
  std::vector<double> speeds;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    speeds.push_back(distance(pts[i], pts[i - 1]));
  }
  EXPECT_GT(stddev(speeds), 0.05);  // human speed is never constant
}

TEST(Mobility, StaysOnRoutePolyline) {
  Rng rng(6);
  const std::vector<Enu> route = {{0, 0}, {100, 0}, {100, 100}};
  const auto pts =
      simulate_motion(route, MobilityParams::for_mode(Mode::kCycling), 1.0, 80, rng);
  for (const auto& p : pts) {
    EXPECT_LT(point_polyline_distance(p, route), 1e-6);
  }
}

TEST(Mobility, FirstPointIsRouteStart) {
  Rng rng(7);
  const std::vector<Enu> route = {{5, 7}, {50, 7}};
  const auto pts =
      simulate_motion(route, MobilityParams::for_mode(Mode::kWalking), 1.0, 10, rng);
  EXPECT_EQ(pts.front(), route.front());
}

TEST(Mobility, ValidatesInput) {
  Rng rng(8);
  const auto params = MobilityParams::for_mode(Mode::kWalking);
  EXPECT_THROW(simulate_motion({{0, 0}}, params, 1.0, 10, rng), std::invalid_argument);
  EXPECT_THROW(simulate_motion({{0, 0}, {1, 0}}, params, 0.0, 10, rng),
               std::invalid_argument);
}

TEST(WifiWorld, DeploysRequestedAps) {
  Rng rng(9);
  const auto net = test_city();
  const auto world = WifiWorld::deploy(net, {.ap_count = 120}, rng);
  EXPECT_EQ(world.aps().size(), 120u);
  // APs line the streets: all within the expanded bounds.
  const auto box = net.bounds().expanded(30.0);
  for (const auto& ap : world.aps()) EXPECT_TRUE(box.contains(ap.pos()));
}

TEST(WifiWorld, ScanSortedAndAboveFloor) {
  Rng rng(10);
  const auto net = test_city();
  WifiWorldConfig cfg;
  cfg.ap_count = 200;
  const auto world = WifiWorld::deploy(net, cfg, rng);
  const auto scan = world.scan({120, 120}, rng);
  ASSERT_FALSE(scan.empty());
  for (std::size_t i = 1; i < scan.size(); ++i) {
    EXPECT_GE(scan[i - 1].rssi_dbm, scan[i].rssi_dbm);
  }
  for (const auto& obs : scan) {
    EXPECT_GE(obs.rssi_dbm, cfg.visibility_floor_dbm);
  }
}

TEST(WifiWorld, MacsAreUnique) {
  Rng rng(11);
  const auto world = WifiWorld::deploy(test_city(), {.ap_count = 300}, rng);
  std::set<std::uint64_t> macs;
  for (const auto& ap : world.aps()) macs.insert(ap.mac());
  EXPECT_EQ(macs.size(), 300u);
}

TEST(WifiWorld, RssiDecaysWithDistance) {
  Rng rng(12);
  const auto world = WifiWorld::deploy(test_city(), {.ap_count = 50}, rng);
  const auto& ap = world.aps().front();
  const double near = ap.mean_rssi_dbm(ap.pos() + Enu{2, 0});
  const double far = ap.mean_rssi_dbm(ap.pos() + Enu{60, 0});
  EXPECT_GT(near, far + 10.0);
}

TEST(WifiWorld, ShadowingIsDeterministicAndBounded) {
  Rng rng(13);
  WifiWorldConfig cfg;
  cfg.ap_count = 10;
  cfg.shadow_sigma_db = 3.0;
  const auto world = WifiWorld::deploy(test_city(), cfg, rng);
  const auto& ap = world.aps().front();
  const Enu p{37.5, 81.25};
  EXPECT_DOUBLE_EQ(ap.shadow_db(p), ap.shadow_db(p));  // pure function of place
  // Hard amplitude bound: K components of amplitude sigma*sqrt(2/K).
  const double bound =
      3.0 * std::sqrt(2.0 * AccessPoint::kShadowComponents);  // loose
  for (int i = 0; i < 50; ++i) {
    const Enu q{rng.uniform(0, 300), rng.uniform(0, 300)};
    EXPECT_LE(std::fabs(ap.shadow_db(q)), bound);
  }
}

TEST(WifiWorld, RepeatScansAtSameSpotShareStrongAps) {
  Rng rng(14);
  const auto world = WifiWorld::deploy(test_city(), {.ap_count = 250}, rng);
  const Enu spot{130, 140};
  const auto s1 = world.scan(spot, rng);
  const auto s2 = world.scan(spot, rng);
  ASSERT_GE(s1.size(), 3u);
  // The strongest AP should re-appear with a similar value (device noise only).
  int rssi2 = 0;
  ASSERT_TRUE(wifi::scan_lookup(s2, s1.front().mac, rssi2));
  EXPECT_NEAR(static_cast<double>(s1.front().rssi_dbm), static_cast<double>(rssi2),
              6.0);
}

TEST(Dataset, SimulateRealProducesExactPointCount) {
  const auto net = test_city();
  TrajectorySimulator simulator(net);
  Rng rng(15);
  for (Mode mode : kAllModes) {
    const auto traj = simulator.simulate_real(mode, 40, 1.0, rng);
    EXPECT_EQ(traj.reported.size(), 40u);
    EXPECT_EQ(traj.true_positions.size(), 40u);
    EXPECT_EQ(traj.reported.mode(), mode);
    EXPECT_GE(traj.route.size(), 2u);
  }
}

TEST(Dataset, ReportedDiffersFromTruthByGpsNoise) {
  const auto net = test_city();
  TrajectorySimulator simulator(net, {.sigma_m = 0.5, .correlation = 0.8});
  Rng rng(16);
  const auto traj = simulator.simulate_real(Mode::kWalking, 50, 1.0, rng);
  const auto reported = traj.reported.to_enu(sim_projection());
  RunningStats err;
  for (std::size_t i = 0; i < reported.size(); ++i) {
    err.add(distance(reported[i], traj.true_positions[i]));
  }
  EXPECT_GT(err.mean(), 0.2);
  EXPECT_LT(err.mean(), 2.0);
}

TEST(Dataset, NavigationTrajectoryIsConstantSpeed) {
  const auto net = test_city();
  TrajectorySimulator simulator(net);
  Rng rng(17);
  const auto traj = simulator.navigation_trajectory(Mode::kWalking, 30, 1.0, rng);
  EXPECT_EQ(traj.reported.size(), 30u);
  const auto speeds = traj.reported.speeds_mps();
  // Constant-speed resampling: negligible variation (corners shorten steps a
  // touch, so allow a small tolerance).
  EXPECT_LT(stddev(speeds), 0.15);
}

TEST(Dataset, RandomRouteRespectsMinLength) {
  const auto net = test_city();
  TrajectorySimulator simulator(net);
  Rng rng(18);
  for (int i = 0; i < 5; ++i) {
    const auto route = simulator.random_route(Mode::kWalking, 400.0, rng);
    double total = 0.0;
    for (std::size_t j = 1; j < route.size(); ++j) {
      total += distance(route[j - 1], route[j]);
    }
    EXPECT_GE(total, 400.0);
  }
}

TEST(Dataset, AttachScansOnePerPoint) {
  const auto net = test_city();
  TrajectorySimulator simulator(net);
  Rng rng(19);
  const auto world = WifiWorld::deploy(net, {.ap_count = 300}, rng);
  const auto traj = simulator.simulate_real(Mode::kWalking, 20, 2.0, rng);
  const auto scanned = attach_scans(traj, world, rng);
  EXPECT_EQ(scanned.scans.size(), 20u);
  EXPECT_EQ(scanned.reported.size(), 20u);
}

// Parameterized sweep: dataset invariants hold for every transport mode.
class ModeSweep : public ::testing::TestWithParam<Mode> {};

TEST_P(ModeSweep, RealTrajectoriesRespectModePhysics) {
  const auto net = test_city(40);
  TrajectorySimulator simulator(net);
  Rng rng(41);
  const Mode mode = GetParam();
  const auto params = MobilityParams::for_mode(mode);
  const auto traj = simulator.simulate_real(mode, 30, 1.0, rng);
  const auto speeds = traj.reported.speeds_mps();
  for (double v : speeds) {
    // GPS noise can add ~2 m/step of apparent speed on top of the kinematic
    // ceiling.
    EXPECT_LE(v, params.mean_speed_mps + 3.0 * params.speed_stddev + 2.5);
  }
}

TEST_P(ModeSweep, TruePositionsStayOnRoute) {
  const auto net = test_city(42);
  TrajectorySimulator simulator(net);
  Rng rng(43);
  const auto traj = simulator.simulate_real(GetParam(), 25, 1.0, rng);
  for (const auto& p : traj.true_positions) {
    EXPECT_LT(point_polyline_distance(p, traj.route), 1e-6);
  }
}

TEST_P(ModeSweep, ScanDeterministicGivenSameRngState) {
  const auto net = test_city(44);
  Rng deploy_rng(45);
  const auto world = WifiWorld::deploy(net, {.ap_count = 150}, deploy_rng);
  Rng a(46);
  Rng b(46);
  const Enu pos{100, 100};
  EXPECT_EQ(world.scan(pos, a), world.scan(pos, b));
  (void)GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeSweep,
                         ::testing::Values(Mode::kWalking, Mode::kCycling,
                                           Mode::kDriving));

TEST(Dataset, SimProjectionRoundTrips) {
  const Enu p{123.4, -56.7};
  const auto ll = sim_projection().to_latlon(p);
  const auto back = sim_projection().to_enu(ll);
  EXPECT_NEAR(back.east, p.east, 1e-9);
  EXPECT_NEAR(back.north, p.north, 1e-9);
}

}  // namespace
}  // namespace trajkit::sim
