// Cross-process shard transport under deterministic network chaos.
//
// Three layers under test, bottom up:
//
//   net/frame + net/rpc   wire codecs: length-prefixed CRC frames and the
//                         line-oriented shard protocol (%.17g doubles, so a
//                         feature vector round-trips bit-exactly).
//   net/sim               the deterministic chaos transport: every fault
//                         fate is a pure function of (seed, endpoint, leg,
//                         key, attempt), so a schedule that breaks the
//                         protocol replays bit-identically from the seed —
//                         including across thread counts (NetSimDeterminism).
//   serve/net_shard       the shard protocol over a Transport: WAL frame
//                         shipping with bounded deterministic retry, leader
//                         lease + fencing, hedged segment fan-out, and gap
//                         repair in both directions (leader-push backfill,
//                         follower-pull journal tail).
//
// The acceptance contract mirrors tests/shard_test.cpp's: under every
// injected fault schedule no acknowledged append is lost and the follower
// converges to the leader's store byte for byte; remote segment evaluation
// is bitwise-equal to local, over SimNet and over real Unix sockets with the
// server in a genuinely separate forked process.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/frame.hpp"
#include "net/rpc.hpp"
#include "net/sim.hpp"
#include "net/uds.hpp"
#include "serve/net_shard.hpp"
#include "serve/shard_router.hpp"
#include "serve/shard_service.hpp"
#include "support/fixtures.hpp"
#include "wifi/crowd_store.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;

void remove_store(const std::string& dir) {
  for (const char* name : {"/crowd.snapshot", "/crowd.snapshot.tmp",
                           "/crowd.journal", "/crowd.journal.tmp"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
}

wifi::ReferencePoint ingest_point(int i) {
  return {{double(i % 28) + 1.0, double((i * 7) % 28) + 1.0},
          {{1, -45 - (i % 40)}},
          static_cast<std::uint32_t>(i / 10)};
}

/// Leader and follower stores hold byte-identical point sequences.
void expect_stores_equal(const wifi::CrowdStore& leader,
                         const wifi::CrowdStore& follower) {
  ASSERT_EQ(leader.points().size(), follower.points().size());
  for (std::size_t i = 0; i < leader.points().size(); ++i) {
    EXPECT_EQ(wifi::CrowdStore::encode_point(leader.points()[i]),
              wifi::CrowdStore::encode_point(follower.points()[i]))
        << "point " << i;
  }
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(NetFrame, RoundTripsArbitraryPayloads) {
  for (const std::string& payload :
       {std::string(), std::string("hello"), std::string("a\nb\0c", 5),
        std::string(100000, 'x')}) {
    const std::string wire = net::encode_frame(42, payload);
    ASSERT_GE(wire.size(), net::kFrameHeaderBytes);
    auto header = net::decode_frame_header(wire);
    ASSERT_TRUE(header.has_value()) << header.error();
    EXPECT_EQ(header.value().msg_id, 42u);
    EXPECT_EQ(header.value().payload_len, payload.size());
    std::uint64_t msg_id = 0;
    auto decoded = net::decode_frame(wire, &msg_id);
    ASSERT_TRUE(decoded.has_value()) << decoded.error();
    EXPECT_EQ(decoded.value(), payload);
    EXPECT_EQ(msg_id, 42u);
  }
}

TEST(NetFrame, RejectsCorruption) {
  std::string wire = net::encode_frame(7, "payload bytes");
  // Bad magic.
  std::string bad = wire;
  bad[0] = 'X';
  EXPECT_FALSE(net::decode_frame_header(bad).has_value());
  // Flipped payload byte fails the CRC.
  bad = wire;
  bad[net::kFrameHeaderBytes] ^= 0x01;
  auto header = net::decode_frame_header(bad);
  ASSERT_TRUE(header.has_value());
  EXPECT_FALSE(
      net::check_frame_payload(header.value(),
                               std::string_view(bad).substr(net::kFrameHeaderBytes))
          .has_value());
  // Truncated header.
  EXPECT_FALSE(net::decode_frame_header(wire.substr(0, 10)).has_value());
  // Trailing garbage after a complete frame.
  EXPECT_FALSE(net::decode_frame(wire + "extra").has_value());
}

// ---------------------------------------------------------------------------
// RPC codec

TEST(NetRpc, ApplyAndResponsesRoundTrip) {
  net::ApplyRequest apply{3, 17, 0xabcdef01u, std::string("p 1 2\n#x\0y", 10)};
  EXPECT_EQ(net::peek_verb(net::encode_apply(apply)), net::Verb::kApply);
  auto decoded = net::decode_apply(net::encode_apply(apply));
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value().term, 3u);
  EXPECT_EQ(decoded.value().seq, 17u);
  EXPECT_EQ(decoded.value().uploader, apply.uploader);
  EXPECT_EQ(decoded.value().payload, apply.payload);

  using Status = net::FrameResponse::Status;
  for (const Status status : {Status::kApplied, Status::kStale, Status::kGap,
                              Status::kFenced}) {
    net::FrameResponse response{status, 99, ""};
    auto back = net::decode_frame_response(net::encode_frame_response(response));
    ASSERT_TRUE(back.has_value()) << back.error();
    EXPECT_EQ(back.value().status, status);
    EXPECT_EQ(back.value().value, 99u);
  }
  net::FrameResponse err{Status::kError, 0, "follower: on\nfire"};
  auto back = net::decode_frame_response(net::encode_frame_response(err));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back.value().status, Status::kError);
  EXPECT_EQ(back.value().error, "follower: on\nfire");
}

TEST(NetRpc, HeartbeatAndTailRoundTrip) {
  auto hb = net::decode_heartbeat(net::encode_heartbeat({5, 1234}));
  ASSERT_TRUE(hb.has_value()) << hb.error();
  EXPECT_EQ(hb.value().term, 5u);
  EXPECT_EQ(hb.value().leader_next_seq, 1234u);

  auto tail_req = net::decode_tail(net::encode_tail({7, 128}));
  ASSERT_TRUE(tail_req.has_value()) << tail_req.error();
  EXPECT_EQ(tail_req.value().from_seq, 7u);
  EXPECT_EQ(tail_req.value().max_frames, 128u);

  std::vector<net::TailFrame> frames = {
      {7, 1, "first\npayload"}, {8, 0, ""}, {9, 2, std::string("\0\1", 2)}};
  auto back = net::decode_tail_response(net::encode_tail_response(frames));
  ASSERT_TRUE(back.has_value()) << back.error();
  ASSERT_EQ(back.value().size(), 3u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(back.value()[i].seq, frames[i].seq);
    EXPECT_EQ(back.value()[i].uploader, frames[i].uploader);
    EXPECT_EQ(back.value()[i].payload, frames[i].payload);
  }
  // Error responses surface as failures with the message.
  auto failed = net::decode_tail_response(net::encode_rpc_error("compacted: x"));
  ASSERT_FALSE(failed.has_value());
  EXPECT_NE(failed.error().find("compacted"), std::string::npos);
}

TEST(NetRpc, SegmentRoundTripIsBitExact) {
  net::SegmentRequest request;
  request.top_k = 2;
  request.upload.source_traj_id = 77;
  Rng rng(404);
  for (int i = 0; i < 5; ++i) {
    request.upload.positions.push_back(
        {rng.uniform(-1e4, 1e4), rng.uniform(0.0, 1e-7)});
    request.upload.scans.push_back(
        {{std::uint64_t(rng.uniform_int(0, 1 << 30)),
          -int(rng.uniform_int(30, 90))},
         {42, -77}});
  }
  auto decoded = net::decode_segment(net::encode_segment(request));
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value().top_k, 2u);
  EXPECT_EQ(decoded.value().upload.source_traj_id, 77u);
  ASSERT_EQ(decoded.value().upload.positions.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    // Bitwise: %.17g round-trips IEEE-754 doubles exactly.
    EXPECT_EQ(std::memcmp(&decoded.value().upload.positions[i],
                          &request.upload.positions[i], sizeof(Enu)),
              0);
    EXPECT_EQ(decoded.value().upload.scans[i], request.upload.scans[i]);
  }

  net::SegmentResponse response;
  for (int i = 0; i < 20; ++i) {
    response.features.push_back(rng.uniform(-1.0, 1.0) * 1e-13);
    response.scores.push_back(rng.uniform(0.0, 1.0));
  }
  auto back = net::decode_segment_response(net::encode_segment_response(response));
  ASSERT_TRUE(back.has_value()) << back.error();
  ASSERT_EQ(back.value().features.size(), response.features.size());
  EXPECT_EQ(std::memcmp(back.value().features.data(), response.features.data(),
                        response.features.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(back.value().scores.data(), response.scores.data(),
                        response.scores.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// Deterministic backoff

TEST(NetBackoff, DeterministicJitteredAndCapped) {
  serve::RetryPolicy retry;  // base 50us, x2, cap 5000us
  for (std::uint64_t key : {0ull, 1ull, 77ull}) {
    for (std::size_t attempt = 0; attempt < 4; ++attempt) {
      const auto a = serve::net_backoff_delay_us(retry, key, attempt);
      const auto b = serve::net_backoff_delay_us(retry, key, attempt);
      EXPECT_EQ(a, b) << "key=" << key << " attempt=" << attempt;
      const double nominal = 50.0 * std::pow(2.0, double(attempt));
      EXPECT_GE(a, std::int64_t(nominal * 0.5) - 1);
      EXPECT_LE(a, std::min<std::int64_t>(5000, std::int64_t(nominal * 1.5) + 1));
    }
  }
  // Different keys draw different jitter (not a constant schedule).
  bool differs = false;
  for (std::uint64_t key = 0; key < 16 && !differs; ++key) {
    differs = serve::net_backoff_delay_us(retry, key, 1) !=
              serve::net_backoff_delay_us(retry, key + 100, 1);
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// SimNet fault anatomy

TEST(NetSimFaults, DropTimesOutWithoutDelivery) {
  net::SimNet sim(1);
  std::atomic<int> served{0};
  sim.bind("ep", [&](const std::string& r) {
    served.fetch_add(1);
    return r;
  });
  net::SimFaultSpec faults;
  faults.drop = 1.0;
  sim.set_faults("ep", faults);
  const auto result = sim.call("ep", "x", {50'000, 1, 0});
  EXPECT_EQ(result.status, net::CallStatus::kTimeout);
  EXPECT_EQ(served.load(), 0);
  EXPECT_EQ(sim.stats().dropped, 1u);
}

TEST(NetSimFaults, FailFirstDropsExactlyThePrefix) {
  net::SimNet sim(2);
  sim.bind("ep", [](const std::string& r) { return "ok:" + r; });
  net::SimFaultSpec faults;
  faults.fail_first = 2;
  sim.set_faults("ep", faults);
  EXPECT_EQ(sim.call("ep", "x", {50'000, 9, 0}).status,
            net::CallStatus::kTimeout);
  EXPECT_EQ(sim.call("ep", "x", {50'000, 9, 1}).status,
            net::CallStatus::kTimeout);
  const auto third = sim.call("ep", "x", {50'000, 9, 2});
  EXPECT_EQ(third.status, net::CallStatus::kOk);
  EXPECT_EQ(third.payload, "ok:x");
}

TEST(NetSimFaults, DuplicateRunsHandlerTwiceReturnsOneResponse) {
  net::SimNet sim(3);
  std::atomic<int> served{0};
  sim.bind("ep", [&](const std::string& r) {
    served.fetch_add(1);
    return r;
  });
  net::SimFaultSpec faults;
  faults.duplicate = 1.0;
  sim.set_faults("ep", faults);
  const auto result = sim.call("ep", "x", {50'000, 4, 0});
  EXPECT_EQ(result.status, net::CallStatus::kOk);
  EXPECT_EQ(served.load(), 2);
  EXPECT_EQ(sim.stats().duplicated, 1u);
}

TEST(NetSimFaults, ReorderDeliversParkedRequestAfterItsSuccessor) {
  net::SimNet sim(4);
  std::vector<std::string> order;
  sim.bind("ep", [&](const std::string& r) {
    order.push_back(r);
    return r;
  });
  net::SimFaultSpec faults;
  faults.reorder = 1.0;
  sim.set_faults("ep", faults);
  // First call parks (kTimeout, nothing delivered yet)...
  EXPECT_EQ(sim.call("ep", "first", {50'000, 0, 0}).status,
            net::CallStatus::kTimeout);
  EXPECT_TRUE(order.empty());
  sim.clear_faults();
  // ...the next call through flushes it out of order: successor first.
  EXPECT_EQ(sim.call("ep", "second", {50'000, 1, 0}).status,
            net::CallStatus::kOk);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "second");
  EXPECT_EQ(order[1], "first");
  EXPECT_EQ(sim.stats().reordered, 1u);
  EXPECT_EQ(sim.stats().late, 1u);
}

TEST(NetSimFaults, DelayPastDeadlineRunsHandlerButTimesOut) {
  net::SimNet sim(5);
  std::atomic<int> served{0};
  sim.bind("ep", [&](const std::string& r) {
    served.fetch_add(1);
    return r;
  });
  net::SimFaultSpec faults;
  faults.delay = 1.0;
  faults.delay_min_us = 1000;
  faults.delay_max_us = 1000;
  sim.set_faults("ep", {}, faults);  // response leg
  // Deadline under the delay: handler ran, response discarded ("ack lost").
  EXPECT_EQ(sim.call("ep", "x", {500, 0, 0}).status, net::CallStatus::kTimeout);
  EXPECT_EQ(served.load(), 1);
  EXPECT_EQ(sim.stats().late, 1u);
  // Deadline over the delay: same draw, delivered.
  EXPECT_EQ(sim.call("ep", "x", {5000, 0, 0}).status, net::CallStatus::kOk);
}

TEST(NetSimFaults, PartitionsAndUnreachable) {
  net::SimNet sim(6);
  std::atomic<int> served{0};
  sim.bind("ep", [&](const std::string& r) {
    served.fetch_add(1);
    return r;
  });

  sim.partition("ep", net::SimNet::Partition::kInbound);
  EXPECT_EQ(sim.call("ep", "x", {50'000, 0, 0}).status,
            net::CallStatus::kTimeout);
  EXPECT_EQ(served.load(), 0);  // requests die before the handler

  sim.partition("ep", net::SimNet::Partition::kOutbound);
  EXPECT_EQ(sim.call("ep", "x", {50'000, 0, 1}).status,
            net::CallStatus::kTimeout);
  EXPECT_EQ(served.load(), 1);  // applied, ack lost

  sim.partition("ep", net::SimNet::Partition::kFull);
  EXPECT_EQ(sim.call("ep", "x", {50'000, 0, 2}).status,
            net::CallStatus::kTimeout);
  EXPECT_EQ(served.load(), 1);

  sim.heal("ep");
  EXPECT_EQ(sim.call("ep", "x", {50'000, 0, 3}).status, net::CallStatus::kOk);

  sim.unbind("ep");
  EXPECT_EQ(sim.call("ep", "x", {50'000, 0, 4}).status,
            net::CallStatus::kUnreachable);
  EXPECT_EQ(sim.call("never-bound", "x", {50'000, 0, 0}).status,
            net::CallStatus::kUnreachable);
}

// ---------------------------------------------------------------------------
// SimNet determinism across thread counts

TEST(NetSimDeterminism, FaultFatesReplayBitIdenticallyAcrossThreadCounts) {
  // One fault schedule, the same 600 logical calls (200 keys x 3 attempts),
  // issued serially and then from 4 threads: every call's outcome must be
  // identical, because a fate depends only on (seed, endpoint, leg, key,
  // attempt) — never on scheduling.  (Reorder is excluded here: parked-
  // delivery *order* is arrival-order by design; its draws still replay.)
  constexpr std::uint64_t kSeed = 0xc0ffee;
  constexpr std::size_t kKeys = 200;
  constexpr std::size_t kAttempts = 3;
  net::SimFaultSpec req;
  req.drop = 0.3;
  req.duplicate = 0.2;
  req.delay = 0.4;
  req.delay_min_us = 10;
  req.delay_max_us = 200;
  net::SimFaultSpec resp;
  resp.drop = 0.2;
  resp.delay = 0.5;
  resp.delay_min_us = 10;
  resp.delay_max_us = 120;

  const auto run = [&](std::size_t threads) {
    net::SimNet sim(kSeed);
    sim.bind("ep", [](const std::string& r) { return r; });
    sim.set_faults("ep", req, resp);
    std::vector<net::CallStatus> statuses(kKeys * kAttempts);
    const auto worker = [&](std::size_t tid) {
      for (std::size_t key = tid; key < kKeys; key += threads) {
        for (std::size_t attempt = 0; attempt < kAttempts; ++attempt) {
          statuses[key * kAttempts + attempt] =
              sim.call("ep", "req-" + std::to_string(key), {100, key, attempt})
                  .status;
        }
      }
    };
    if (threads == 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
      for (auto& t : pool) t.join();
    }
    return std::make_pair(statuses, sim.stats());
  };

  const auto [serial, serial_stats] = run(1);
  const auto [parallel, parallel_stats] = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "call " << i;
  }
  EXPECT_EQ(serial_stats.dropped, parallel_stats.dropped);
  EXPECT_EQ(serial_stats.duplicated, parallel_stats.duplicated);
  EXPECT_EQ(serial_stats.delivered, parallel_stats.delivered);
  EXPECT_EQ(serial_stats.late, parallel_stats.late);
  // The schedule actually bit: some calls failed, some survived.
  EXPECT_GT(serial_stats.dropped, 0u);
  EXPECT_GT(serial_stats.delivered, 0u);
}

// ---------------------------------------------------------------------------
// WAL shipping over the transport

struct NetWorld {
  net::SimNet sim{0xd15ea5e};
  std::string leader_dir;
  std::string follower_dir;
  std::unique_ptr<serve::ShardService> leader;
  std::unique_ptr<serve::ShardReplica> replica;
  std::shared_ptr<serve::FollowerNode> node;
  std::unique_ptr<serve::RemoteFollower> remote;

  NetWorld(const std::string& tag, serve::NetCallPolicy policy = {},
           std::size_t required_acks = serve::kAllFollowers,
           bool self_repair = false) {
    leader_dir = "net_test_" + tag + "_leader";
    follower_dir = "net_test_" + tag + "_follower";
    remove_store(leader_dir);
    remove_store(follower_dir);

    serve::ShardServiceConfig cfg;
    cfg.required_follower_acks = required_acks;
    auto l = serve::ShardService::open_leader(0, leader_dir, true, cfg);
    if (!l.has_value()) throw std::runtime_error(l.error());
    leader = std::move(l.value());
    auto r = serve::ShardReplica::open(follower_dir);
    if (!r.has_value()) throw std::runtime_error(r.error());
    replica = std::move(r.value());
    if (self_repair) {
      node = std::make_shared<serve::FollowerNode>(*replica, sim, "leader-tail",
                                                   policy);
    } else {
      node = std::make_shared<serve::FollowerNode>(*replica);
    }
    sim.bind("follower", node->handler());
    sim.bind("leader-tail", serve::make_tail_handler(leader_dir));
    remote = std::make_unique<serve::RemoteFollower>(sim, "follower", policy);
    remote->set_backfill_journal(leader_dir);
    leader->attach_follower(remote.get());
  }

  ~NetWorld() {
    remove_store(leader_dir);
    remove_store(follower_dir);
  }
};

TEST(NetShipping, CleanTransportConvergesBitwise) {
  NetWorld w("clean");
  for (int i = 0; i < 25; ++i) {
    auto seq = w.leader->ingest(ingest_point(i));
    ASSERT_TRUE(seq.has_value()) << seq.error();
    EXPECT_EQ(w.replica->next_seq(), seq.value() + 1);
  }
  EXPECT_EQ(w.leader->acked_frames(), 25u);
  expect_stores_equal(*w.leader->store(), w.replica->store());
  EXPECT_EQ(w.remote->stats().rpcs, 25u);
  EXPECT_EQ(w.remote->stats().retries, 0u);
}

TEST(NetShipping, BoundedRetryAbsorbsRequestDropPrefix) {
  NetWorld w("reqdrop");
  net::SimFaultSpec faults;
  faults.fail_first = 2;  // attempts 0 and 1 drop; attempt 2 (last) lands
  w.sim.set_faults("follower", faults);
  for (int i = 0; i < 10; ++i) {
    auto seq = w.leader->ingest(ingest_point(i));
    ASSERT_TRUE(seq.has_value()) << seq.error();
  }
  expect_stores_equal(*w.leader->store(), w.replica->store());
  EXPECT_EQ(w.remote->stats().retries, 20u);  // 2 per frame, deterministic
  EXPECT_EQ(w.remote->stats().timeouts, 20u);
}

TEST(NetShipping, LostAcksRetryIntoIdempotentStale) {
  NetWorld w("ackdrop");
  net::SimFaultSpec resp;
  resp.fail_first = 1;  // every frame applies, first ack is always lost
  w.sim.set_faults("follower", {}, resp);
  for (int i = 0; i < 10; ++i) {
    auto seq = w.leader->ingest(ingest_point(i));
    ASSERT_TRUE(seq.has_value()) << seq.error();
  }
  // The retry found the frame already applied ("stale") — applied exactly
  // once despite redelivery, and the ack contract held.
  EXPECT_EQ(w.replica->store().points().size(), 10u);
  expect_stores_equal(*w.leader->store(), w.replica->store());
  EXPECT_EQ(w.remote->stats().retries, 10u);
}

TEST(NetShipping, DuplicateDeliveryIsIdempotent) {
  NetWorld w("dup");
  net::SimFaultSpec faults;
  faults.duplicate = 1.0;  // every frame delivered twice
  w.sim.set_faults("follower", faults);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(w.leader->ingest(ingest_point(i)).has_value());
  }
  EXPECT_EQ(w.sim.stats().duplicated, 10u);
  EXPECT_EQ(w.replica->store().points().size(), 10u);
  expect_stores_equal(*w.leader->store(), w.replica->store());
}

TEST(NetShipping, ReorderedFramesRecoverThroughRetryAndSeqDiscipline) {
  NetWorld w("reorder");
  net::SimFaultSpec faults;
  faults.reorder = 0.4;
  w.sim.set_faults("follower", faults);
  // Quorum is all-followers: an ingest whose ship ultimately failed reports
  // the error; the acked ones must be on the follower regardless.
  std::uint64_t acked = 0;
  for (int i = 0; i < 40; ++i) {
    if (w.leader->ingest(ingest_point(i)).has_value()) ++acked;
  }
  EXPECT_GT(w.sim.stats().reordered, 0u);
  EXPECT_EQ(w.leader->acked_frames(), acked);
  // Every acked frame is durably on the follower (the ack contract).  The
  // follower may additionally hold unacked frames (late/duplicate delivery
  // after the caller gave up) — at-least-once, never lost-after-ack.
  EXPECT_GE(w.replica->store().points().size(), acked);
  const auto& lp = w.leader->store()->points();
  const auto& fp = w.replica->store().points();
  for (std::size_t i = 0; i < fp.size(); ++i) {
    EXPECT_EQ(wifi::CrowdStore::encode_point(fp[i]),
              wifi::CrowdStore::encode_point(lp[i]));
  }
}

TEST(NetShipping, ChaosDropsOnBothLegsNeverLoseAckedAppends) {
  serve::NetCallPolicy policy;
  NetWorld w("chaos", policy, /*required_acks=*/0);
  net::SimFaultSpec req;
  req.drop = 0.25;
  net::SimFaultSpec resp;
  resp.drop = 0.25;
  w.sim.set_faults("follower", req, resp);

  for (int i = 0; i < 60; ++i) {
    // Quorum 0: ingest acks on leader durability alone; the follower lags
    // under drops and converges through leader-push gap backfill.
    auto seq = w.leader->ingest(ingest_point(i));
    ASSERT_TRUE(seq.has_value()) << seq.error();
  }
  // Heal and ship one more frame: its gap backfill (if the tail was lost)
  // brings the follower to exact convergence.
  w.sim.clear_faults();
  ASSERT_TRUE(w.leader->ingest(ingest_point(60)).has_value());
  EXPECT_EQ(w.replica->next_seq(), 61u);
  expect_stores_equal(*w.leader->store(), w.replica->store());
  EXPECT_GT(w.remote->stats().timeouts, 0u);
}

TEST(NetShipping, PartitionAtEveryShippingStepLosesNoAckedAppend) {
  using Partition = net::SimNet::Partition;
  constexpr int kFrames = 8;
  for (const Partition mode :
       {Partition::kInbound, Partition::kOutbound, Partition::kFull}) {
    for (int cut_at = 0; cut_at <= kFrames; ++cut_at) {
      NetWorld w("cut", {}, /*required_acks=*/0);
      for (int i = 0; i < kFrames; ++i) {
        if (i == cut_at) w.sim.partition("follower", mode);
        auto seq = w.leader->ingest(ingest_point(i));
        ASSERT_TRUE(seq.has_value())
            << "mode=" << int(mode) << " cut=" << cut_at << ": " << seq.error();
      }
      w.sim.heal("follower");
      // Post-heal: the next shipped frame triggers leader-push repair.
      ASSERT_TRUE(w.leader->ingest(ingest_point(kFrames)).has_value());
      EXPECT_EQ(w.replica->next_seq(), std::uint64_t(kFrames) + 1)
          << "mode=" << int(mode) << " cut=" << cut_at;
      expect_stores_equal(*w.leader->store(), w.replica->store());
      if (cut_at < kFrames && mode != Partition::kOutbound) {
        // Inbound/full cuts starve the follower, so convergence had to go
        // through gap backfill.  (An outbound cut loses only acks — the
        // frames applied, so there is no gap to repair.)
        EXPECT_GT(w.remote->stats().gap_backfills, 0u)
            << "mode=" << int(mode) << " cut=" << cut_at;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Gap repair: leader push and follower pull

TEST(NetGapRepair, LeaderPushBackfillsPartitionedFollower) {
  NetWorld w("push", {}, /*required_acks=*/0);
  ASSERT_TRUE(w.leader->ingest(ingest_point(0)).has_value());
  w.sim.partition("follower", net::SimNet::Partition::kFull);
  for (int i = 1; i < 12; ++i) {
    ASSERT_TRUE(w.leader->ingest(ingest_point(i)).has_value());
  }
  EXPECT_EQ(w.replica->next_seq(), 1u);  // missed everything since the cut
  w.sim.heal("follower");
  ASSERT_TRUE(w.leader->ingest(ingest_point(12)).has_value());
  EXPECT_EQ(w.replica->next_seq(), 13u);
  expect_stores_equal(*w.leader->store(), w.replica->store());
  EXPECT_GE(w.remote->stats().gap_backfills, 1u);
}

TEST(NetGapRepair, FollowerPullsJournalTailAfterHeartbeat) {
  serve::NetCallPolicy policy;
  policy.tail_chunk = 4;  // force several pull rounds
  NetWorld w("pull", policy, /*required_acks=*/0, /*self_repair=*/true);
  w.remote->set_backfill_journal("");  // pull path only: no leader push

  w.sim.partition("follower", net::SimNet::Partition::kFull);
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(w.leader->ingest(ingest_point(i)).has_value());
  }
  w.sim.heal("follower");
  EXPECT_EQ(w.replica->next_seq(), 0u);

  // The heartbeat tells the follower how far the leader is; the follower
  // pulls the missing tail itself — convergence with no new writes at all.
  EXPECT_EQ(w.leader->send_heartbeats(), 1u);
  EXPECT_EQ(w.replica->leader_next_seen(), 11u);
  auto repaired = w.node->repair_if_behind();
  ASSERT_TRUE(repaired.has_value()) << repaired.error();
  EXPECT_EQ(repaired.value(), 11u);
  expect_stores_equal(*w.leader->store(), w.replica->store());
  EXPECT_GE(w.node->stats().gap_backfills, 1u);
  // Already converged: repair_if_behind is a no-op now.
  ASSERT_TRUE(w.node->repair_if_behind().has_value());
  EXPECT_EQ(w.replica->next_seq(), 11u);
}

TEST(NetGapRepair, FollowerSelfRepairsWhenFrameArrivesAhead) {
  NetWorld w("selfrepair", {}, /*required_acks=*/0, /*self_repair=*/true);
  w.remote->set_backfill_journal("");  // the follower must fix itself

  w.sim.partition("follower", net::SimNet::Partition::kFull);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(w.leader->ingest(ingest_point(i)).has_value());
  }
  w.sim.heal("follower");
  // The next shipped frame arrives ahead of the follower's next_seq: the
  // node pulls the gap from the leader's tail endpoint *before* applying,
  // so the ship succeeds first try — no gap response, no leader backfill.
  ASSERT_TRUE(w.leader->ingest(ingest_point(7)).has_value());
  EXPECT_EQ(w.replica->next_seq(), 8u);
  expect_stores_equal(*w.leader->store(), w.replica->store());
  EXPECT_GE(w.node->stats().gap_backfills, 1u);
  EXPECT_EQ(w.remote->stats().gap_backfills, 0u);
}

TEST(NetGapRepair, CompactedTailDemandsRebootstrap) {
  serve::NetCallPolicy policy;
  NetWorld w("compact", policy, /*required_acks=*/0, /*self_repair=*/true);
  w.remote->set_backfill_journal("");

  w.sim.partition("follower", net::SimNet::Partition::kFull);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(w.leader->ingest(ingest_point(i)).has_value());
  }
  // The frames the follower is missing get folded into the snapshot...
  ASSERT_TRUE(w.leader->compact().has_value());
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(w.leader->ingest(ingest_point(i)).has_value());
  }
  w.sim.heal("follower");
  ASSERT_EQ(w.leader->send_heartbeats(), 1u);

  // ...so repair must refuse loudly instead of inventing them.
  auto repaired = w.node->repair_if_behind();
  ASSERT_FALSE(repaired.has_value());
  EXPECT_NE(repaired.error().find("compacted"), std::string::npos)
      << repaired.error();

  // The tail handler itself reports the compaction.
  const auto raw = w.sim.call("leader-tail", net::encode_tail({0, 0}),
                              {500'000, 0, 0});
  ASSERT_EQ(raw.status, net::CallStatus::kOk);
  auto frames = net::decode_tail_response(raw.payload);
  ASSERT_FALSE(frames.has_value());
  EXPECT_NE(frames.error().find("compacted"), std::string::npos);

  // A real re-bootstrap (snapshot + journal tail) converges.
  const std::string reboot_dir = "net_test_compact_reboot";
  remove_store(reboot_dir);
  auto fresh = serve::ShardReplica::bootstrap(w.leader_dir, reboot_dir);
  ASSERT_TRUE(fresh.has_value()) << fresh.error();
  expect_stores_equal(*w.leader->store(), fresh.value()->store());
  remove_store(reboot_dir);
}

// ---------------------------------------------------------------------------
// Leader lease, heartbeats, fencing

TEST(NetLease, HeartbeatRenewsLeaseUnderManualClock) {
  const std::string dir = "net_test_lease";
  remove_store(dir);
  auto replica = serve::ShardReplica::open(dir);
  ASSERT_TRUE(replica.has_value()) << replica.error();
  ManualClock clock(1000);
  replica.value()->set_clock(&clock);

  EXPECT_FALSE(replica.value()->leader_alive(500));  // no heartbeat yet
  auto acked = replica.value()->heartbeat(0, 0);
  ASSERT_TRUE(acked.has_value()) << acked.error();
  EXPECT_TRUE(replica.value()->leader_alive(500));
  clock.advance_us(400);
  EXPECT_TRUE(replica.value()->leader_alive(500));
  clock.advance_us(200);
  EXPECT_FALSE(replica.value()->leader_alive(500));  // lease lapsed
  ASSERT_TRUE(replica.value()->heartbeat(0, 0).has_value());
  EXPECT_TRUE(replica.value()->leader_alive(500));  // renewed

  remove_store(dir);
}

TEST(NetLease, PromotedFollowerFencesTheOldLeader) {
  NetWorld w("fence");
  ASSERT_TRUE(w.leader->ingest(ingest_point(0)).has_value());
  EXPECT_EQ(w.leader->send_heartbeats(), 1u);
  EXPECT_EQ(w.replica->leader_next_seen(), 1u);

  // Lease lapse observed -> the follower promotes, bumping the term.
  EXPECT_EQ(w.replica->promote(), 1u);
  EXPECT_EQ(w.replica->term(), 1u);

  // The old leader (term 0) is now fenced on both verbs: its quorum cannot
  // be met, so split-brain writes fail loudly.
  auto stale = w.leader->ingest(ingest_point(1));
  ASSERT_FALSE(stale.has_value());
  EXPECT_NE(stale.error().find("fenced"), std::string::npos) << stale.error();
  EXPECT_EQ(w.leader->send_heartbeats(), 0u);
  EXPECT_GE(w.remote->stats().fenced, 2u);
  EXPECT_GE(w.leader->follower_failures()[0], 2u);

  // A leader that legitimately resumes at a higher term writes again; the
  // fenced ingest's leader-durable frame ships through gap backfill.
  w.leader->set_term(2);
  ASSERT_TRUE(w.leader->ingest(ingest_point(2)).has_value());
  EXPECT_EQ(w.replica->term(), 2u);
  expect_stores_equal(*w.leader->store(), w.replica->store());
}

// ---------------------------------------------------------------------------
// Hedged segment fan-out + router integration

TEST(NetHedge, StragglingPrimaryHedgesToReplicaBitwise) {
  ts::LinearFieldWorld world;
  serve::ShardRouterConfig rc;
  rc.shards = 1;
  serve::ShardRouter router(world.detector(), rc);
  const std::size_t top_k = world.detector().config().confidence.top_k;

  net::SimNet sim(0xbeef);
  sim.bind("seg-a", serve::make_segment_handler(router.shard(0)));
  sim.bind("seg-b", serve::make_segment_handler(router.shard(0)));
  // The primary straggles: every request delayed past the hedge deadline
  // (the handler still runs — a genuine straggler, not a dead node).
  net::SimFaultSpec slow;
  slow.delay = 1.0;
  slow.delay_min_us = 20'000;
  slow.delay_max_us = 20'000;
  sim.set_faults("seg-a", slow);

  serve::NetCallPolicy policy;  // hedge at 10ms, full deadline 50ms
  serve::RemoteSegmentClient client(sim, {"seg-a", "seg-b"}, top_k, policy);

  Rng rng(7);
  const auto upload = world.upload(true, rng);
  const std::size_t n = upload.positions.size();
  std::vector<double> f_local(2 * top_k * n), s_local(n);
  router.shard(0).evaluate_segment(upload, 0, n, f_local.data(), s_local.data());
  std::vector<double> f_remote(2 * top_k * n), s_remote(n);
  client.evaluate(upload, 0, n, f_remote.data(), s_remote.data());

  EXPECT_EQ(std::memcmp(f_local.data(), f_remote.data(),
                        f_local.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(s_local.data(), s_remote.data(),
                        s_local.size() * sizeof(double)),
            0);
  EXPECT_EQ(client.stats().hedges, 1u);
  EXPECT_EQ(client.stats().rpcs, 2u);
  EXPECT_EQ(client.stats().retries, 0u);
}

TEST(NetRouterRemote, RemoteSegmentsMatchOracleAndDegradeLocally) {
  ts::LinearWorldConfig cfg;
  cfg.upload_points = 10;
  ts::LinearFieldWorld world(cfg);
  serve::ShardRouterConfig rc;
  rc.shards = 4;
  serve::ShardRouter router(world.detector(), rc);
  const std::size_t top_k = world.detector().config().confidence.top_k;

  // Loopback topology: every shard's segments are served over the transport
  // by that same shard's detector — the bits cannot differ, which is exactly
  // the property the wire must preserve.
  net::SimNet sim(0xfeed);
  for (std::size_t s = 0; s < router.shards(); ++s) {
    sim.bind("shard-" + std::to_string(s),
             serve::make_segment_handler(router.shard(s)));
    router.set_remote_evaluator(
        s, std::make_shared<serve::RemoteSegmentClient>(
               sim, std::vector<std::string>{"shard-" + std::to_string(s)},
               top_k));
  }

  Rng rng(11);
  std::vector<wifi::ScannedUpload> uploads;
  for (int i = 0; i < 8; ++i) uploads.push_back(world.upload(i % 2 == 0, rng));

  for (std::size_t i = 0; i < uploads.size(); ++i) {
    const auto response = router.verify(uploads[i], i);
    ASSERT_EQ(response.outcome, serve::Outcome::kOk) << response.error;
    EXPECT_EQ(response.report.canonical_string(),
              world.detector().analyze(uploads[i]).canonical_string())
        << "upload " << i;
  }
  auto counters = router.counters();
  EXPECT_GT(counters.remote_segments, 0u);
  EXPECT_EQ(counters.degraded_shard_verdicts, 0u);
  EXPECT_EQ(counters.latency_count, uploads.size());

  // Partition the whole remote fleet: every verdict must still match the
  // oracle bit for bit — served by the resident slices — and the degradation
  // must be visible in the counters.
  for (std::size_t s = 0; s < router.shards(); ++s) {
    sim.partition("shard-" + std::to_string(s), net::SimNet::Partition::kFull);
  }
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    const auto response = router.verify(uploads[i], 100 + i);
    ASSERT_EQ(response.outcome, serve::Outcome::kOk) << response.error;
    EXPECT_EQ(response.report.canonical_string(),
              world.detector().analyze(uploads[i]).canonical_string());
  }
  counters = router.counters();
  EXPECT_EQ(counters.degraded_shard_verdicts, uploads.size());
  EXPECT_EQ(counters.latency_count, 2 * uploads.size());
  std::uint64_t fleet_timeouts = 0;
  for (const auto& stats : counters.per_shard_net) {
    fleet_timeouts += stats.timeouts;
  }
  EXPECT_GT(fleet_timeouts, 0u);
}

// ---------------------------------------------------------------------------
// Unix-domain sockets: real frames, real processes

TEST(NetUds, EchoRoundTripAndDeadlines) {
  const std::string path = "net_test_uds_echo.sock";
  ::unlink(path.c_str());
  net::UdsServer server(path, [](const std::string& r) { return "echo:" + r; });
  auto started = server.start();
  ASSERT_TRUE(started.has_value()) << started.error();

  net::UdsTransport transport;
  const auto result = transport.call(path, "ping", {1'000'000, 0, 0});
  ASSERT_EQ(result.status, net::CallStatus::kOk) << result.payload;
  EXPECT_EQ(result.payload, "echo:ping");
  // Payloads with embedded newlines/NULs survive the framing.
  const std::string blob("a\n\0b", 4);
  const auto blob_result = transport.call(path, blob, {1'000'000, 0, 1});
  ASSERT_EQ(blob_result.status, net::CallStatus::kOk);
  EXPECT_EQ(blob_result.payload, "echo:" + blob);
  EXPECT_EQ(server.served(), 2u);
  server.stop();

  // A dead endpoint is refused (kUnreachable), not timed out.
  const auto dead = transport.call(path, "ping", {1'000'000, 0, 2});
  EXPECT_EQ(dead.status, net::CallStatus::kUnreachable);
}

TEST(NetUds, SlowHandlerHitsDeadlineThenRecovers) {
  const std::string path = "net_test_uds_slow.sock";
  ::unlink(path.c_str());
  std::atomic<bool> slow{true};
  net::UdsServer server(path, [&](const std::string& r) {
    if (slow.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return r;
  });
  ASSERT_TRUE(server.start().has_value());

  net::UdsTransport transport;
  const auto timed_out = transport.call(path, "x", {10'000, 0, 0});
  EXPECT_EQ(timed_out.status, net::CallStatus::kTimeout);
  // The timed-out connection was closed, so the late response cannot leak
  // into the next call; a fresh connection serves it cleanly.
  slow.store(false);
  const auto retry = transport.call(path, "y", {2'000'000, 0, 1});
  ASSERT_EQ(retry.status, net::CallStatus::kOk) << retry.payload;
  EXPECT_EQ(retry.payload, "y");
  server.stop();
}

TEST(NetUds, SegmentEvaluationOverRealSocketsIsBitwise) {
  ts::LinearFieldWorld world;
  serve::ShardRouterConfig rc;
  rc.shards = 1;
  serve::ShardRouter router(world.detector(), rc);
  const std::size_t top_k = world.detector().config().confidence.top_k;

  const std::string path = "net_test_uds_seg.sock";
  ::unlink(path.c_str());
  net::UdsServer server(path, serve::make_segment_handler(router.shard(0)));
  ASSERT_TRUE(server.start().has_value());

  net::UdsTransport transport;
  serve::NetCallPolicy policy;
  policy.rpc_deadline_us = 2'000'000;  // real I/O: generous deadline
  serve::RemoteSegmentClient client(transport, {path}, top_k, policy);

  Rng rng(13);
  const auto upload = world.upload(false, rng);
  const std::size_t n = upload.positions.size();
  std::vector<double> f_local(2 * top_k * n), s_local(n);
  router.shard(0).evaluate_segment(upload, 0, n, f_local.data(), s_local.data());
  std::vector<double> f_remote(2 * top_k * n), s_remote(n);
  client.evaluate(upload, 0, n, f_remote.data(), s_remote.data());
  EXPECT_EQ(std::memcmp(f_local.data(), f_remote.data(),
                        f_local.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(s_local.data(), s_remote.data(),
                        s_local.size() * sizeof(double)),
            0);
  server.stop();
}

TEST(NetUds, CrossProcessReplicationConvergesBitwise) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "fork + server threads in the child is unsupported by TSan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "fork + server threads in the child is unsupported by TSan";
#endif
#endif
  const std::string leader_dir = "net_test_xproc_leader";
  const std::string follower_dir = "net_test_xproc_follower";
  const std::string sock_path = "net_test_xproc.sock";
  const std::string stop_path = "net_test_xproc.stop";
  remove_store(leader_dir);
  remove_store(follower_dir);
  ::unlink(sock_path.c_str());
  ::unlink(stop_path.c_str());

  // The follower lives in a genuinely separate process: its own ShardReplica
  // over its own WAL, served through a real socket.  (Fork happens while
  // this process has no live threads — every prior server was stop()ed.)
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto replica = serve::ShardReplica::open(follower_dir);
    if (!replica.has_value()) ::_exit(71);
    serve::FollowerNode node(*replica.value());
    net::UdsServer server(sock_path, node.handler());
    if (!server.start().has_value()) ::_exit(71);
    for (int i = 0; i < 6000; ++i) {  // ~30s guard
      struct stat st;
      if (::stat(stop_path.c_str(), &st) == 0) {
        server.stop();
        ::_exit(0);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ::_exit(75);
  }

  // Wait for the child's socket to come up.
  bool socket_up = false;
  for (int i = 0; i < 2000 && !socket_up; ++i) {
    struct stat st;
    socket_up = ::stat(sock_path.c_str(), &st) == 0;
    if (!socket_up) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(socket_up) << "child server never bound " << sock_path;

  auto leader = serve::ShardService::open_leader(0, leader_dir);
  ASSERT_TRUE(leader.has_value()) << leader.error();
  net::UdsTransport transport;
  serve::NetCallPolicy policy;
  policy.rpc_deadline_us = 2'000'000;
  serve::RemoteFollower remote(transport, sock_path, policy);
  leader.value()->attach_follower(&remote);

  for (int i = 0; i < 20; ++i) {
    auto seq = leader.value()->ingest(ingest_point(i));
    ASSERT_TRUE(seq.has_value()) << seq.error();
  }
  EXPECT_EQ(leader.value()->send_heartbeats(), 1u);
  EXPECT_EQ(leader.value()->acked_frames(), 20u);

  // Stop the child and examine its on-disk state from this process.
  std::FILE* stop = std::fopen(stop_path.c_str(), "w");
  ASSERT_NE(stop, nullptr);
  std::fclose(stop);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "child killed by signal " << WTERMSIG(status);
  ASSERT_EQ(WEXITSTATUS(status), 0);

  auto follower = serve::ShardReplica::open(follower_dir);
  ASSERT_TRUE(follower.has_value()) << follower.error();
  EXPECT_EQ(follower.value()->next_seq(), 20u);
  expect_stores_equal(*leader.value()->store(), follower.value()->store());

  remove_store(leader_dir);
  remove_store(follower_dir);
  ::unlink(sock_path.c_str());
  ::unlink(stop_path.c_str());
}

}  // namespace
}  // namespace trajkit
