// Neural-network library: matrix ops, LSTM forward/backward gradient checks
// against finite differences (parameters AND inputs, single and stacked
// layers), Adam convergence, classifier learning and serialisation.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/adam.hpp"
#include "nn/classifier.hpp"
#include "nn/dense.hpp"
#include "nn/gru.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"

namespace trajkit::nn {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.row(0)[1], -2.0);
}

TEST(Matrix, GemvAccumulates) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const double x[2] = {1.0, -1.0};
  double y[2] = {10.0, 10.0};
  gemv_acc(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10 - 1);
  EXPECT_DOUBLE_EQ(y[1], 10 - 1);
}

TEST(Matrix, GemvTransposedAccumulates) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const double x[2] = {1.0, 1.0};
  double y[2] = {0.0, 0.0};
  gemv_t_acc(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, Rank1Accumulates) {
  Matrix m(2, 2, 0.0);
  const double x[2] = {1.0, 2.0};
  const double y[2] = {3.0, 4.0};
  rank1_acc(m, 0.5, x, y);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST(Matrix, AxpyAndNorm) {
  Matrix a(1, 3, 1.0);
  Matrix b(1, 3, 2.0);
  a.axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 12.0);
  Matrix wrong(2, 2);
  EXPECT_THROW(a.axpy(1.0, wrong), std::invalid_argument);
}

TEST(Sigmoid, StableAtExtremes) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
}

TEST(SigmoidBce, LossAndGradient) {
  double g = 0.0;
  const double l1 = sigmoid_bce_loss(0.0, 1, &g);
  EXPECT_NEAR(l1, std::log(2.0), 1e-12);
  EXPECT_NEAR(g, -0.5, 1e-12);
  const double l0 = sigmoid_bce_loss(0.0, 0, &g);
  EXPECT_NEAR(l0, std::log(2.0), 1e-12);
  EXPECT_NEAR(g, 0.5, 1e-12);
  // Large logits do not overflow.
  EXPECT_TRUE(std::isfinite(sigmoid_bce_loss(1000.0, 0, &g)));
}

TEST(Dense, ForwardBackwardGradientCheck) {
  Rng rng(1);
  DenseLayer layer(3, 2, rng);
  const std::vector<double> x = {0.5, -1.0, 2.0};
  const std::vector<double> dy = {1.0, -0.5};

  layer.zero_grad();
  const auto y0 = layer.forward(x);
  const auto dx = layer.backward(x, dy);

  // Loss L = dy . y; finite-difference the weights.
  auto loss = [&] {
    const auto y = layer.forward(x);
    return dy[0] * y[0] + dy[1] * y[1];
  };
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      const double save = layer.weights()(r, c);
      layer.weights()(r, c) = save + eps;
      const double up = loss();
      layer.weights()(r, c) = save - eps;
      const double down = loss();
      layer.weights()(r, c) = save;
      EXPECT_NEAR(layer.weight_grad()(r, c), (up - down) / (2 * eps), 1e-6);
    }
  }
  // Input gradient: dL/dx = W^T dy.
  for (std::size_t c = 0; c < 3; ++c) {
    double expected = 0.0;
    for (std::size_t r = 0; r < 2; ++r) expected += layer.weights()(r, c) * dy[r];
    EXPECT_NEAR(dx[c], expected, 1e-12);
  }
  (void)y0;
}

// --------------------------------------------------------------------------
// LSTM gradient checks.

std::vector<double> random_sequence(Rng& rng, std::size_t steps, std::size_t dim) {
  std::vector<double> xs(steps * dim);
  for (auto& v : xs) v = rng.uniform(-1, 1);
  return xs;
}

/// Scalar loss: dot(final hidden state, w).
double lstm_loss(const LstmLayer& layer, const std::vector<double>& xs,
                 std::size_t steps, const std::vector<double>& w) {
  const auto trace = layer.forward(xs, steps);
  const std::size_t h = layer.hidden_dim();
  double total = 0.0;
  for (std::size_t k = 0; k < h; ++k) {
    total += w[k] * trace.hiddens[(steps - 1) * h + k];
  }
  return total;
}

TEST(Lstm, ParameterGradientMatchesFiniteDifference) {
  Rng rng(2);
  LstmLayer layer(2, 4, rng);
  const std::size_t steps = 6;
  const auto xs = random_sequence(rng, steps, 2);
  std::vector<double> w(4);
  for (auto& v : w) v = rng.uniform(-1, 1);

  layer.zero_grad();
  const auto trace = layer.forward(xs, steps);
  layer.backward(trace, w, nullptr);

  const double eps = 1e-6;
  // Sample a spread of weight entries (full sweep is slow and redundant).
  for (std::size_t idx = 0; idx < layer.weights().size(); idx += 7) {
    const std::size_t r = idx / layer.weights().cols();
    const std::size_t c = idx % layer.weights().cols();
    const double save = layer.weights()(r, c);
    layer.weights()(r, c) = save + eps;
    const double up = lstm_loss(layer, xs, steps, w);
    layer.weights()(r, c) = save - eps;
    const double down = lstm_loss(layer, xs, steps, w);
    layer.weights()(r, c) = save;
    EXPECT_NEAR(layer.weight_grad()(r, c), (up - down) / (2 * eps), 1e-5)
        << "weight (" << r << "," << c << ")";
  }
  for (std::size_t r = 0; r < layer.bias().rows(); r += 3) {
    const double save = layer.bias()(r, 0);
    layer.bias()(r, 0) = save + eps;
    const double up = lstm_loss(layer, xs, steps, w);
    layer.bias()(r, 0) = save - eps;
    const double down = lstm_loss(layer, xs, steps, w);
    layer.bias()(r, 0) = save;
    EXPECT_NEAR(layer.bias_grad()(r, 0), (up - down) / (2 * eps), 1e-5);
  }
}

TEST(Lstm, InputGradientMatchesFiniteDifference) {
  Rng rng(3);
  LstmLayer layer(3, 5, rng);
  const std::size_t steps = 5;
  auto xs = random_sequence(rng, steps, 3);
  std::vector<double> w(5);
  for (auto& v : w) v = rng.uniform(-1, 1);

  layer.zero_grad();
  const auto trace = layer.forward(xs, steps);
  std::vector<double> dx;
  layer.backward(trace, w, &dx);
  ASSERT_EQ(dx.size(), xs.size());

  const double eps = 1e-6;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double save = xs[i];
    xs[i] = save + eps;
    const double up = lstm_loss(layer, xs, steps, w);
    xs[i] = save - eps;
    const double down = lstm_loss(layer, xs, steps, w);
    xs[i] = save;
    EXPECT_NEAR(dx[i], (up - down) / (2 * eps), 1e-5) << "input " << i;
  }
}

TEST(Lstm, SequenceInjectionGradientMatchesFiniteDifference) {
  // backward_seq with gradient injected at every step (the stacked-LSTM path).
  Rng rng(4);
  LstmLayer layer(2, 3, rng);
  const std::size_t steps = 4;
  auto xs = random_sequence(rng, steps, 2);
  std::vector<double> w(steps * 3);
  for (auto& v : w) v = rng.uniform(-1, 1);

  auto loss = [&](const std::vector<double>& input) {
    const auto trace = layer.forward(input, steps);
    double total = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) total += w[i] * trace.hiddens[i];
    return total;
  };

  layer.zero_grad();
  const auto trace = layer.forward(xs, steps);
  std::vector<double> dx;
  layer.backward_seq(trace, w, &dx);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double save = xs[i];
    xs[i] = save + eps;
    const double up = loss(xs);
    xs[i] = save - eps;
    const double down = loss(xs);
    xs[i] = save;
    EXPECT_NEAR(dx[i], (up - down) / (2 * eps), 1e-5) << "input " << i;
  }
}

TEST(Lstm, RejectsBadShapes) {
  Rng rng(5);
  LstmLayer layer(2, 3, rng);
  EXPECT_THROW(layer.forward({1.0, 2.0, 3.0}, 2), std::invalid_argument);
  EXPECT_THROW(layer.forward({}, 0), std::invalid_argument);
  const auto trace = layer.forward({1, 2, 3, 4}, 2);
  EXPECT_THROW(layer.backward(trace, {1.0}, nullptr), std::invalid_argument);
}

// --------------------------------------------------------------------------
// GRU gradient checks.

double gru_loss(const GruLayer& layer, const std::vector<double>& xs,
                std::size_t steps, const std::vector<double>& w) {
  const auto trace = layer.forward(xs, steps);
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) total += w[i] * trace.hiddens[i];
  return total;
}

TEST(Gru, ForwardShapesAndBoundedHidden) {
  Rng rng(20);
  GruLayer layer(2, 4, rng);
  const auto xs = random_sequence(rng, 6, 2);
  const auto trace = layer.forward(xs, 6);
  EXPECT_EQ(trace.hiddens.size(), 24u);
  for (double h : trace.hiddens) {
    EXPECT_LE(std::fabs(h), 1.0 + 1e-12);  // convex mix of tanh and history
  }
  EXPECT_THROW(layer.forward({1.0}, 1), std::invalid_argument);
}

TEST(Gru, ParameterGradientMatchesFiniteDifference) {
  Rng rng(21);
  GruLayer layer(2, 3, rng);
  const std::size_t steps = 5;
  const auto xs = random_sequence(rng, steps, 2);
  std::vector<double> w(steps * 3);
  for (auto& v : w) v = rng.uniform(-1, 1);

  layer.zero_grad();
  const auto trace = layer.forward(xs, steps);
  layer.backward_seq(trace, w, nullptr);

  const double eps = 1e-6;
  auto check_matrix = [&](Matrix& param, Matrix& grad, const char* name) {
    for (std::size_t idx = 0; idx < param.size(); idx += 3) {
      const std::size_t r = idx / param.cols();
      const std::size_t c = idx % param.cols();
      const double save = param(r, c);
      param(r, c) = save + eps;
      const double up = gru_loss(layer, xs, steps, w);
      param(r, c) = save - eps;
      const double down = gru_loss(layer, xs, steps, w);
      param(r, c) = save;
      EXPECT_NEAR(grad(r, c), (up - down) / (2 * eps), 1e-5)
          << name << " (" << r << "," << c << ")";
    }
  };
  check_matrix(layer.gate_weights(), layer.gate_weight_grad(), "w_gates");
  check_matrix(layer.gate_bias(), layer.gate_bias_grad(), "b_gates");
  check_matrix(layer.cand_x_weights(), layer.cand_x_weight_grad(), "w_nx");
  check_matrix(layer.cand_h_weights(), layer.cand_h_weight_grad(), "w_nh");
  check_matrix(layer.cand_x_bias(), layer.cand_x_bias_grad(), "b_nx");
  check_matrix(layer.cand_h_bias(), layer.cand_h_bias_grad(), "b_nh");
}

TEST(Gru, InputGradientMatchesFiniteDifference) {
  Rng rng(22);
  GruLayer layer(3, 4, rng);
  const std::size_t steps = 4;
  auto xs = random_sequence(rng, steps, 3);
  std::vector<double> w(steps * 4);
  for (auto& v : w) v = rng.uniform(-1, 1);

  layer.zero_grad();
  const auto trace = layer.forward(xs, steps);
  std::vector<double> dx;
  layer.backward_seq(trace, w, &dx);
  ASSERT_EQ(dx.size(), xs.size());

  const double eps = 1e-6;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double save = xs[i];
    xs[i] = save + eps;
    const double up = gru_loss(layer, xs, steps, w);
    xs[i] = save - eps;
    const double down = gru_loss(layer, xs, steps, w);
    xs[i] = save;
    EXPECT_NEAR(dx[i], (up - down) / (2 * eps), 1e-5) << "input " << i;
  }
}

TEST(Adam, MinimisesQuadratic) {
  // One-parameter problem: minimise (x - 3)^2.
  Matrix x(1, 1, 0.0);
  Matrix g(1, 1, 0.0);
  Adam opt(AdamConfig{0.1});
  opt.attach(&x, &g);
  for (int i = 0; i < 500; ++i) {
    g(0, 0) = 2.0 * (x(0, 0) - 3.0);
    opt.step();
  }
  EXPECT_NEAR(x(0, 0), 3.0, 1e-3);
}

TEST(Adam, AttachValidatesShapes) {
  Matrix x(1, 2);
  Matrix g(2, 1);
  Adam opt;
  EXPECT_THROW(opt.attach(&x, &g), std::invalid_argument);
  EXPECT_THROW(opt.attach(nullptr, &g), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Classifier.

FeatureSequence make_seq(const std::vector<double>& values, std::size_t dim) {
  FeatureSequence f;
  f.dim = dim;
  f.steps = values.size() / dim;
  f.values = values;
  return f;
}

/// Toy task: class 1 sequences trend upward, class 0 downward.
void make_toy_dataset(Rng& rng, std::size_t count, std::size_t steps,
                      std::vector<FeatureSequence>& xs, std::vector<int>& ys) {
  for (std::size_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % 2);
    const double slope = label ? 0.1 : -0.1;
    std::vector<double> v;
    double level = rng.uniform(-0.3, 0.3);
    for (std::size_t t = 0; t < steps; ++t) {
      level += slope + rng.normal(0.0, 0.03);
      v.push_back(level);
      v.push_back(rng.normal(0.0, 0.1));
    }
    xs.push_back(make_seq(v, 2));
    ys.push_back(label);
  }
}

TEST(LstmClassifier, LearnsToyTrendTask) {
  Rng rng(6);
  std::vector<FeatureSequence> xs;
  std::vector<int> ys;
  make_toy_dataset(rng, 120, 12, xs, ys);

  LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 8;
  cfg.learning_rate = 5e-3;
  LstmClassifier model(cfg, 1);
  const auto report = model.train(xs, ys, 25);
  EXPECT_GT(report.epoch_accuracy.back(), 0.95);

  std::vector<FeatureSequence> test_xs;
  std::vector<int> test_ys;
  make_toy_dataset(rng, 40, 12, test_xs, test_ys);
  int correct = 0;
  for (std::size_t i = 0; i < test_xs.size(); ++i) {
    correct += model.predict(test_xs[i]) == test_ys[i];
  }
  EXPECT_GT(correct, 36);  // > 90%
}

TEST(LstmClassifier, InputGradientMatchesFiniteDifference) {
  Rng rng(7);
  LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 6;
  cfg.num_layers = 2;  // exercise the stacked path
  LstmClassifier model(cfg, 3);

  auto x = make_seq(random_sequence(rng, 5, 2), 2);
  FeatureSequence dx;
  const double loss = model.loss_and_input_gradient(x, 1, &dx);
  EXPECT_GT(loss, 0.0);
  ASSERT_EQ(dx.values.size(), x.values.size());

  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.values.size(); ++i) {
    const double save = x.values[i];
    x.values[i] = save + eps;
    const double up = model.loss_and_input_gradient(x, 1, nullptr);
    x.values[i] = save - eps;
    const double down = model.loss_and_input_gradient(x, 1, nullptr);
    x.values[i] = save;
    EXPECT_NEAR(dx.values[i], (up - down) / (2 * eps), 1e-5) << "feature " << i;
  }
}

TEST(LstmClassifier, PredictProbaIsCalibratedToLoss) {
  Rng rng(8);
  LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 4;
  LstmClassifier model(cfg, 4);
  const auto x = make_seq(random_sequence(rng, 6, 2), 2);
  const double p = model.predict_proba(x);
  const double ce = model.loss_and_input_gradient(x, 1, nullptr);
  EXPECT_NEAR(p, std::exp(-ce), 1e-9);  // CE toward "real" = -log p(real)
}

TEST(LstmClassifier, TrainingIsDeterministic) {
  Rng rng(10);
  std::vector<FeatureSequence> xs;
  std::vector<int> ys;
  make_toy_dataset(rng, 40, 8, xs, ys);
  LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 6;
  LstmClassifier a(cfg, 7);
  LstmClassifier b(cfg, 7);
  a.train(xs, ys, 5);
  b.train(xs, ys, 5);
  for (const auto& x : xs) {
    EXPECT_DOUBLE_EQ(a.predict_proba(x), b.predict_proba(x));
  }
}

TEST(LstmClassifier, SaveLoadRoundTrip) {
  Rng rng(9);
  LstmClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 5;
  cfg.num_layers = 2;
  LstmClassifier model(cfg, 5);

  std::stringstream ss;
  model.save(ss);
  const auto loaded = LstmClassifier::load(ss);

  for (int k = 0; k < 10; ++k) {
    const auto x = make_seq(random_sequence(rng, 7, 2), 2);
    EXPECT_NEAR(model.predict_proba(x), loaded.predict_proba(x), 1e-12);
  }
}

TEST(LstmClassifier, LoadRejectsGarbage) {
  std::stringstream ss("not_a_model 1 2 3");
  EXPECT_THROW(LstmClassifier::load(ss), std::runtime_error);
}

TEST(LstmClassifier, ValidatesConfigAndInputs) {
  LstmClassifierConfig cfg;
  cfg.num_layers = 0;
  EXPECT_THROW(LstmClassifier(cfg, 1), std::invalid_argument);

  LstmClassifierConfig ok;
  ok.input_dim = 2;
  ok.hidden_dim = 4;
  LstmClassifier model(ok, 1);
  const auto bad = make_seq({1, 2, 3}, 3);
  EXPECT_THROW(model.predict_proba(bad), std::invalid_argument);
  EXPECT_THROW(model.train({}, {}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::nn
