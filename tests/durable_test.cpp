// Durability layer tests: CRC-32, atomic writes, the framed container, the
// write-ahead journal, the crowd store, validated loaders and a deterministic
// corruption fuzz over every persisted format.
//
// The corruption contract under test: *any* single-byte corruption or
// truncation of a committed artifact is a clean Expected error (or, for the
// journal's append region, a deterministic torn-tail truncation back to an
// exact record prefix) — never garbage accepted, never UB.  The fuzz offsets
// come from counter-based RNG substreams, so a failure names a reproducible
// byte.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/durable/crc32.hpp"
#include "common/durable/durable_file.hpp"
#include "common/durable/journal.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "gbt/booster.hpp"
#include "nn/classifier.hpp"
#include "nn/quant_classifier.hpp"
#include "support/crash.hpp"
#include "support/fixtures.hpp"
#include "traj/io.hpp"
#include "wifi/crowd_store.hpp"
#include "wifi/detector.hpp"
#include "wifi/validate.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;
using durable::DurableWriter;

std::string slurp(const std::string& path) { return ts::snapshot_file(path).bytes; }

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.is_open()) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void remove_tree(const std::string& dir) {
  std::remove((dir + "/crowd.snapshot").c_str());
  std::remove((dir + "/crowd.journal").c_str());
  ::rmdir(dir.c_str());
}

// ---------------------------------------------------------------------------
// CRC-32

TEST(Crc32, MatchesIeeeKnownAnswer) {
  // The canonical CRC-32 check value (IEEE 802.3, poly 0xEDB88320).
  EXPECT_EQ(durable::crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(durable::crc32(std::string_view("")), 0u);
}

TEST(Crc32, ChainsAcrossSplits) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = durable::crc32(data.data(), data.size());
  for (const std::size_t split : {std::size_t{0}, std::size_t{1}, data.size() / 2,
                                  data.size()}) {
    const std::uint32_t head = durable::crc32(data.data(), split);
    const std::uint32_t chained =
        durable::crc32(data.data() + split, data.size() - split, head);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// Atomic replace

TEST(AtomicWrite, WritesAndReplaces) {
  const std::string path = "durable_test_atomic.tmp";
  ASSERT_TRUE(durable::write_file_atomic(path, "first").has_value());
  EXPECT_EQ(slurp(path), "first");
  ASSERT_TRUE(durable::write_file_atomic(path, "second, longer content").has_value());
  EXPECT_EQ(slurp(path), "second, longer content");
  std::remove(path.c_str());
}

TEST(AtomicWrite, InjectedFailureLeavesPreviousFileAndNoTemp) {
  const std::string path = "durable_test_atomic_fault.tmp";
  ASSERT_TRUE(durable::write_file_atomic(path, "survivor").has_value());
  for (const char* point : durable::kAtomicWritePoints) {
    if (std::string_view(point) == durable::kFaultDirSync) continue;  // post-commit
    FaultScope faults(3);
    faults.arm(point, {.fail_first = 1});
    const auto written = durable::write_file_atomic(path, "clobber");
    EXPECT_FALSE(written.has_value()) << point;
    EXPECT_EQ(slurp(path), "survivor") << point;
    EXPECT_EQ(ts::snapshot_file(path + ".tmp").exists, false) << point;
  }
  // kFaultDirSync fails *after* the rename: the new content is in place.
  {
    FaultScope faults(3);
    faults.arm(durable::kFaultDirSync, {.fail_first = 1});
    EXPECT_FALSE(durable::write_file_atomic(path, "landed").has_value());
    EXPECT_EQ(slurp(path), "landed");
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Framed container

TEST(DurableContainer, RoundTripsRecords) {
  DurableWriter writer("unit_tag", 7);
  writer.add_record("alpha");
  writer.add_record("");  // empty record is legal
  writer.add_record(std::string(1000, 'z'));
  const std::string bytes = writer.bytes();

  const auto parsed = durable::parse_durable(bytes, "unit_tag");
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(parsed.value().version, 7u);
  ASSERT_EQ(parsed.value().records.size(), 3u);
  EXPECT_EQ(parsed.value().records[0], "alpha");
  EXPECT_EQ(parsed.value().records[1], "");
  EXPECT_EQ(parsed.value().records[2], std::string(1000, 'z'));
}

TEST(DurableContainer, RejectsTagMismatch) {
  DurableWriter writer("right_tag", 1);
  writer.add_record("payload");
  const auto parsed = durable::parse_durable(writer.bytes(), "wrong_tag");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().find("tag"), std::string::npos) << parsed.error();
}

TEST(DurableContainer, EveryTruncationIsRejected) {
  DurableWriter writer("trunc_tag", 1);
  writer.add_record("some payload worth checking");
  writer.add_record("and another");
  const std::string bytes = writer.bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto parsed =
        durable::parse_durable(std::string_view(bytes).substr(0, len), "trunc_tag");
    EXPECT_FALSE(parsed.has_value()) << "prefix of " << len << " bytes accepted";
  }
  EXPECT_TRUE(durable::parse_durable(bytes, "trunc_tag").has_value());
}

TEST(DurableContainer, EverySingleByteFlipIsRejected) {
  DurableWriter writer("flip_tag", 2);
  writer.add_record("payload one");
  writer.add_record("payload two");
  const std::string bytes = writer.bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x80, 0xFF}) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(static_cast<unsigned char>(mutated[i]) ^ mask);
      const auto parsed = durable::parse_durable(mutated, "flip_tag");
      EXPECT_FALSE(parsed.has_value())
          << "flip mask 0x" << std::hex << int(mask) << " at byte " << std::dec << i
          << " accepted";
    }
  }
}

TEST(DurableContainer, TrailingGarbageIsRejected) {
  DurableWriter writer("tail_tag", 1);
  writer.add_record("payload");
  const auto parsed = durable::parse_durable(writer.bytes() + "extra", "tail_tag");
  EXPECT_FALSE(parsed.has_value());
}

TEST(DurableContainer, RoundTripsBeyond16BitRecordCount) {
  // Regression: the parse-side record cap used to be 65,536 while writers
  // (the crowd snapshot holds up to 5M points) could legally commit far more
  // — the file wrote fine and could never be read back.
  constexpr std::size_t kCount = 70'000;
  DurableWriter writer("big_tag", 1);
  for (std::size_t i = 0; i < kCount; ++i) {
    writer.add_record(std::to_string(i));
  }
  const auto parsed = durable::parse_durable(writer.bytes(), "big_tag");
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  ASSERT_EQ(parsed.value().records.size(), kCount);
  EXPECT_EQ(parsed.value().records[0], "0");
  EXPECT_EQ(parsed.value().records[kCount - 1], std::to_string(kCount - 1));
}

TEST(DurableContainer, RejectsImplausibleClaimedRecordCount) {
  DurableWriter writer("count_tag", 1);
  writer.add_record("only record");
  std::string bytes = writer.bytes();
  // magic(8) + tag_len(4) + tag + version(4), then the u32 record count.
  const std::size_t count_offset = 8 + 4 + std::strlen("count_tag") + 4;

  // More records than the remaining bytes could physically hold.
  std::uint32_t claimed = 1000;
  std::memcpy(&bytes[count_offset], &claimed, sizeof claimed);
  auto parsed = durable::parse_durable(bytes, "count_tag");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().find("implausible"), std::string::npos) << parsed.error();

  // Past the global cap the writer enforces.
  claimed = static_cast<std::uint32_t>(durable::kMaxDurableRecords + 1);
  std::memcpy(&bytes[count_offset], &claimed, sizeof claimed);
  parsed = durable::parse_durable(bytes, "count_tag");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().find("implausible"), std::string::npos) << parsed.error();
}

// ---------------------------------------------------------------------------
// Journal

TEST(Journal, AppendsAndRecovers) {
  const std::string path = "durable_test_journal.tmp";
  std::remove(path.c_str());
  {
    auto journal = durable::Journal::open(path, "unit_journal", 5);
    ASSERT_TRUE(journal.has_value()) << journal.error();
    EXPECT_EQ(journal.value()->next_seq(), 5u);
    EXPECT_EQ(journal.value()->append("rec a").value(), 5u);
    EXPECT_EQ(journal.value()->append("rec b").value(), 6u);
    EXPECT_EQ(journal.value()->append("").value(), 7u);
  }
  auto reopened = durable::Journal::open(path, "unit_journal");
  ASSERT_TRUE(reopened.has_value()) << reopened.error();
  const auto& rec = reopened.value()->recovery();
  EXPECT_EQ(rec.truncated_bytes, 0u);
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records[0].seq, 5u);
  EXPECT_EQ(rec.records[0].payload, "rec a");
  EXPECT_EQ(rec.records[2].payload, "");
  EXPECT_EQ(reopened.value()->next_seq(), 8u);
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsTruncatedToExactRecordPrefix) {
  const std::string path = "durable_test_journal_torn.tmp";
  std::remove(path.c_str());
  std::vector<std::string> payloads = {"first record", "second record",
                                       "third record"};
  {
    auto journal = durable::Journal::open(path, "torn_journal");
    ASSERT_TRUE(journal.has_value());
    for (const auto& p : payloads) ASSERT_TRUE(journal.value()->append(p));
  }
  const std::string intact = slurp(path);
  // Find where record 2 starts by re-measuring after two appends.
  std::remove(path.c_str());
  {
    auto journal = durable::Journal::open(path, "torn_journal");
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal.value()->append(payloads[0]));
    ASSERT_TRUE(journal.value()->append(payloads[1]));
  }
  const std::size_t two_records = slurp(path).size();

  // Every truncation length between "two records" and "three records" must
  // recover exactly the first two and cut the file back.
  for (std::size_t len = two_records; len < intact.size(); ++len) {
    write_raw(path, intact.substr(0, len));
    auto journal = durable::Journal::open(path, "torn_journal");
    ASSERT_TRUE(journal.has_value()) << "len " << len << ": " << journal.error();
    const auto& rec = journal.value()->recovery();
    ASSERT_EQ(rec.records.size(), 2u) << "len " << len;
    EXPECT_EQ(rec.records[0].payload, payloads[0]);
    EXPECT_EQ(rec.records[1].payload, payloads[1]);
    EXPECT_EQ(rec.truncated_bytes, len - two_records) << "len " << len;
    journal.value().reset();  // close before measuring
    EXPECT_EQ(slurp(path).size(), two_records) << "len " << len;
    // Recovery is stable: a second open finds a clean two-record journal.
    auto again = durable::Journal::open(path, "torn_journal");
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again.value()->recovery().records.size(), 2u);
    EXPECT_EQ(again.value()->recovery().truncated_bytes, 0u);
  }
  std::remove(path.c_str());
}

TEST(Journal, AppendContinuesAfterTornTailRecovery) {
  const std::string path = "durable_test_journal_cont.tmp";
  std::remove(path.c_str());
  {
    auto journal = durable::Journal::open(path, "cont_journal");
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal.value()->append("keep me"));
    ASSERT_TRUE(journal.value()->append("torn soon"));
  }
  const std::string intact = slurp(path);
  write_raw(path, intact.substr(0, intact.size() - 3));  // tear the tail
  {
    auto journal = durable::Journal::open(path, "cont_journal");
    ASSERT_TRUE(journal.has_value());
    ASSERT_EQ(journal.value()->recovery().records.size(), 1u);
    EXPECT_EQ(journal.value()->next_seq(), 1u);
    EXPECT_EQ(journal.value()->append("after recovery").value(), 1u);
  }
  auto journal = durable::Journal::open(path, "cont_journal");
  ASSERT_TRUE(journal.has_value());
  ASSERT_EQ(journal.value()->recovery().records.size(), 2u);
  EXPECT_EQ(journal.value()->recovery().records[1].payload, "after recovery");
  std::remove(path.c_str());
}

TEST(Journal, FailedAppendRollsBackAndAckedRecordsSurviveReopen) {
  // The WAL-contract regression: a failed append used to leave its torn
  // frame in the file while the journal stayed usable, so later acknowledged
  // appends landed *after* the tear — and the next open() truncated them all
  // away.  Now the failure rolls the file back, the retry is acknowledged at
  // a clean offset, and reopen recovers every acked record.
  const std::string path = "durable_test_journal_rollback.tmp";
  for (const char* point :
       {durable::kFaultAppendPartial, durable::kFaultAppendSync}) {
    std::remove(path.c_str());
    {
      auto journal = durable::Journal::open(path, "rollback_journal");
      ASSERT_TRUE(journal.has_value()) << journal.error();
      ASSERT_TRUE(journal.value()->append("committed").has_value());
      const std::size_t committed_size = slurp(path).size();

      FaultScope faults(7);
      faults.arm(point, {.fail_first = 1});
      EXPECT_FALSE(journal.value()->append("doomed").has_value()) << point;
      // No torn bytes linger: the file is back at its pre-append size.
      EXPECT_EQ(slurp(path).size(), committed_size) << point;
      // The journal stays usable and the retry takes the failed seq.
      auto seq = journal.value()->append("retried");
      ASSERT_TRUE(seq.has_value()) << point << ": " << seq.error();
      EXPECT_EQ(seq.value(), 1u) << point;
    }
    auto reopened = durable::Journal::open(path, "rollback_journal");
    ASSERT_TRUE(reopened.has_value()) << point << ": " << reopened.error();
    const auto& rec = reopened.value()->recovery();
    EXPECT_EQ(rec.truncated_bytes, 0u) << point;
    ASSERT_EQ(rec.records.size(), 2u) << point;
    EXPECT_EQ(rec.records[0].payload, "committed") << point;
    EXPECT_EQ(rec.records[1].payload, "retried") << point;
  }
  std::remove(path.c_str());
}

TEST(Journal, OpenRemovesStaleTempFile) {
  // A crash between open and rename inside an atomic journal create/reset
  // strands `<path>.tmp`; nothing else owns that name, so open() reclaims it.
  const std::string path = "durable_test_journal_stale.tmp";
  std::remove(path.c_str());
  { ASSERT_TRUE(durable::Journal::open(path, "stale_journal").has_value()); }
  write_raw(path + ".tmp", "stale bytes from a crashed atomic write");
  {
    auto journal = durable::Journal::open(path, "stale_journal");
    ASSERT_TRUE(journal.has_value()) << journal.error();
  }
  EXPECT_FALSE(ts::snapshot_file(path + ".tmp").exists);
  std::remove(path.c_str());
}

TEST(Journal, DamagedHeaderIsAnErrorNotARecovery) {
  const std::string path = "durable_test_journal_hdr.tmp";
  std::remove(path.c_str());
  {
    auto journal = durable::Journal::open(path, "hdr_journal");
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal.value()->append("record"));
  }
  std::string bytes = slurp(path);
  bytes[2] ^= 0x40;  // damage the magic
  write_raw(path, bytes);
  auto journal = durable::Journal::open(path, "hdr_journal");
  ASSERT_FALSE(journal.has_value());
  EXPECT_NE(journal.error().find("magic"), std::string::npos) << journal.error();
  std::remove(path.c_str());
}

TEST(Journal, TagMismatchIsAnError) {
  const std::string path = "durable_test_journal_tag.tmp";
  std::remove(path.c_str());
  ASSERT_TRUE(durable::Journal::open(path, "tag_a").has_value());
  auto journal = durable::Journal::open(path, "tag_b");
  ASSERT_FALSE(journal.has_value());
  EXPECT_NE(journal.error().find("tag"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, PoisonProvenanceFramesRoundTripAndMixWithAnonymous) {
  // v2 frames carry the uploader id; anonymous appends keep the v1 frame.
  // Both kinds interleave freely in one journal and recover with their
  // provenance intact.
  const std::string path = "durable_test_journal_prov.tmp";
  std::remove(path.c_str());
  const std::vector<std::pair<std::string, std::uint64_t>> frames = {
      {"stamped a", 11},
      {"anonymous b", 0},
      {"stamped c", ~0ull},
      {"", 42},  // empty payload still carries provenance
  };
  {
    auto journal = durable::Journal::open(path, "prov_journal");
    ASSERT_TRUE(journal.has_value()) << journal.error();
    for (const auto& [payload, uploader] : frames) {
      ASSERT_TRUE(journal.value()->append(payload, uploader).has_value());
    }
  }
  auto reopened = durable::Journal::open(path, "prov_journal");
  ASSERT_TRUE(reopened.has_value()) << reopened.error();
  const auto& rec = reopened.value()->recovery();
  EXPECT_EQ(rec.truncated_bytes, 0u);
  ASSERT_EQ(rec.records.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(rec.records[i].payload, frames[i].first) << i;
    EXPECT_EQ(rec.records[i].uploader, frames[i].second) << i;
  }
  // Appending continues across the recovered mix.
  EXPECT_EQ(reopened.value()->append("tail", 7).value(), frames.size());
  std::remove(path.c_str());
}

TEST(Journal, PoisonAnonymousJournalStaysByteCompatibleWithV1) {
  // A journal that never saw a provenance-stamped append must contain no v2
  // frame magic at all — pre-provenance readers (and the format contract)
  // see exactly the bytes the old writer produced.
  const std::string path = "durable_test_journal_v1compat.tmp";
  std::remove(path.c_str());
  {
    auto journal = durable::Journal::open(path, "compat_journal");
    ASSERT_TRUE(journal.has_value());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(journal.value()->append("plain " + std::to_string(i)).has_value());
    }
  }
  const std::string bytes = slurp(path);
  EXPECT_EQ(bytes.find("TKJ2"), std::string::npos);
  EXPECT_NE(bytes.find("TKJR"), std::string::npos);
  // Recovery reports every record as anonymous.
  auto journal = durable::Journal::open(path, "compat_journal");
  ASSERT_TRUE(journal.has_value());
  for (const auto& record : journal.value()->recovery().records) {
    EXPECT_EQ(record.uploader, 0u);
  }
  std::remove(path.c_str());
}

TEST(Journal, PoisonTornTailAfterProvenanceFrameTruncatesToExactPrefix) {
  // The torn-tail walk of TornTailIsTruncatedToExactRecordPrefix, with the
  // victim frame a v2 provenance frame: every truncation inside it recovers
  // the committed prefix — payloads *and* uploader ids — and cuts the file.
  const std::string path = "durable_test_journal_prov_torn.tmp";
  std::remove(path.c_str());
  const std::vector<std::pair<std::string, std::uint64_t>> committed = {
      {"anon first", 0}, {"stamped second", 31}};
  {
    auto journal = durable::Journal::open(path, "prov_torn_journal");
    ASSERT_TRUE(journal.has_value());
    for (const auto& [payload, uploader] : committed) {
      ASSERT_TRUE(journal.value()->append(payload, uploader).has_value());
    }
  }
  const std::size_t two_records = slurp(path).size();
  {
    auto journal = durable::Journal::open(path, "prov_torn_journal");
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal.value()->append("doomed third", 77).has_value());
  }
  const std::string intact = slurp(path);
  ASSERT_GT(intact.size(), two_records);
  for (std::size_t len = two_records; len < intact.size(); ++len) {
    write_raw(path, intact.substr(0, len));
    auto journal = durable::Journal::open(path, "prov_torn_journal");
    ASSERT_TRUE(journal.has_value()) << "len " << len << ": " << journal.error();
    const auto& rec = journal.value()->recovery();
    ASSERT_EQ(rec.records.size(), committed.size()) << "len " << len;
    for (std::size_t i = 0; i < committed.size(); ++i) {
      EXPECT_EQ(rec.records[i].payload, committed[i].first) << "len " << len;
      EXPECT_EQ(rec.records[i].uploader, committed[i].second) << "len " << len;
    }
    EXPECT_EQ(rec.truncated_bytes, len - two_records) << "len " << len;
    journal.value().reset();
    EXPECT_EQ(slurp(path).size(), two_records) << "len " << len;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Model formats: durable round trip + legacy back-compat + validation

TEST(DurableModels, LstmSaveFileIsDurableAndRoundTrips) {
  nn::LstmClassifierConfig cfg;
  cfg.hidden_dim = 6;
  cfg.batch_size = 4;
  const nn::LstmClassifier model(cfg, 11);
  const std::string path = "durable_test_lstm.tmp";
  model.save_file(path);
  EXPECT_TRUE(durable::file_has_durable_magic(path));

  auto loaded = nn::LstmClassifier::try_load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  std::ostringstream a, b;
  model.save(a);
  loaded.value().save(b);
  EXPECT_EQ(a.str(), b.str());
  std::remove(path.c_str());
}

TEST(DurableModels, LstmLegacyBareTextStillLoads) {
  nn::LstmClassifierConfig cfg;
  cfg.hidden_dim = 5;
  const nn::LstmClassifier model(cfg, 3);
  const std::string path = "durable_test_lstm_legacy.tmp";
  {
    std::ofstream os(path);
    model.save(os);  // the pre-durable on-disk format
  }
  EXPECT_FALSE(durable::file_has_durable_magic(path));
  auto loaded = nn::LstmClassifier::try_load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  std::ostringstream a, b;
  model.save(a);
  loaded.value().save(b);
  EXPECT_EQ(a.str(), b.str());
  std::remove(path.c_str());
}

TEST(DurableModels, LstmRejectsImplausibleArchitecture) {
  std::istringstream is(
      "trajkit_lstm_classifier_v1\n2 999999999 1 0.001 5 16\n");
  auto loaded = nn::LstmClassifier::try_load(is);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("implausible"), std::string::npos);
}

TEST(DurableModels, LstmRejectsNonFiniteWeights) {
  nn::LstmClassifierConfig cfg;
  cfg.hidden_dim = 4;
  const nn::LstmClassifier model(cfg, 1);
  std::ostringstream os;
  model.save(os);
  std::string text = os.str();
  // Replace the final weight token with "nan".
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.pop_back();
  }
  text = text.substr(0, text.find_last_of(" \n") + 1) + "nan\n";
  std::istringstream is(text);
  auto loaded = nn::LstmClassifier::try_load(is);
  // libstdc++ streams refuse to extract "nan" at all, so this trips either
  // the parse failure or the explicit finiteness check — both clean errors.
  ASSERT_FALSE(loaded.has_value());
}

gbt::GbtClassifier small_trained_gbt() {
  gbt::GbtConfig cfg;
  cfg.num_trees = 6;
  cfg.max_depth = 3;
  gbt::GbtClassifier model(cfg);
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 60; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    x.push_back({a, b});
    y.push_back(a + 0.3 * b > 0.0 ? 1 : 0);
  }
  model.train(x, y);
  return model;
}

TEST(DurableModels, GbtSaveFileIsDurableAndRoundTrips) {
  const auto model = small_trained_gbt();
  const std::string path = "durable_test_gbt.tmp";
  model.save_file(path);
  EXPECT_TRUE(durable::file_has_durable_magic(path));
  auto loaded = gbt::GbtClassifier::try_load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  std::ostringstream a, b;
  model.save(a);
  loaded.value().save(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(model.predict_proba({0.4, -0.2}), loaded.value().predict_proba({0.4, -0.2}));
  std::remove(path.c_str());
}

TEST(DurableModels, GbtLegacyBareTextStillLoads) {
  const auto model = small_trained_gbt();
  const std::string path = "durable_test_gbt_legacy.tmp";
  {
    std::ofstream os(path);
    model.save(os);
  }
  auto loaded = gbt::GbtClassifier::try_load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(model.predict_proba({0.1, 0.9}), loaded.value().predict_proba({0.1, 0.9}));
  std::remove(path.c_str());
}

TEST(DurableModels, GbtRejectsCyclicTreeTopology) {
  // Node 0 claims itself as its left child: without the monotone-child check
  // this is an infinite predict() loop.
  std::istringstream is(
      "trajkit_gbt_v1\n"
      "1 3 0.1 32 1 0 1 1 42\n"
      "0 1\n"
      "3\n"
      "0 0.5 0 0 2 0.1 0.2\n"
      "-1 0 0 -1 -1 0.3 0\n"
      "-1 0 0 -1 -1 0.4 0\n");
  auto loaded = gbt::GbtClassifier::try_load(is);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("child"), std::string::npos) << loaded.error();
}

TEST(DurableModels, GbtRejectsOutOfRangeChildIndex) {
  std::istringstream is(
      "trajkit_gbt_v1\n"
      "1 3 0.1 32 1 0 1 1 42\n"
      "0 1\n"
      "1\n"
      "0 0.5 0 7 8 0.1 0.2\n");
  auto loaded = gbt::GbtClassifier::try_load(is);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("child"), std::string::npos) << loaded.error();
}

TEST(DurableModels, DetectorSaveFileIsDurableAndServesIdentically) {
  ts::LinearFieldWorld w;
  const auto probes = w.probe_mix(4);
  const std::string path = "durable_test_detector.tmp";
  w.detector().save_file(path);
  EXPECT_TRUE(durable::file_has_durable_magic(path));
  auto loaded = wifi::RssiDetector::try_load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  for (const auto& probe : probes) {
    EXPECT_EQ(w.detector().analyze(probe).canonical_string(),
              loaded.value()->analyze(probe).canonical_string());
  }
  std::remove(path.c_str());
}

TEST(DurableModels, DetectorLegacyBareTextStillLoads) {
  ts::LinearFieldWorld w;
  const std::string path = "durable_test_detector_legacy.tmp";
  {
    std::ofstream os(path);
    w.detector().save(os);  // the pre-durable on-disk format
  }
  EXPECT_FALSE(durable::file_has_durable_magic(path));
  auto loaded = wifi::RssiDetector::try_load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  const auto probe = w.upload(true);
  EXPECT_EQ(w.detector().analyze(probe).canonical_string(),
            loaded.value()->analyze(probe).canonical_string());
  std::remove(path.c_str());
}

TEST(DurableModels, DetectorRejectsOversizedScanHeader) {
  ts::LinearFieldWorld w;
  std::ostringstream os;
  w.detector().save(os);
  std::string text = os.str();
  // Rewrite the first reference point's scan length to an absurd value.
  std::istringstream scan_for(text);
  std::string line;
  std::getline(scan_for, line);  // magic
  std::getline(scan_for, line);  // config
  std::getline(scan_for, line);  // trained points
  std::getline(scan_for, line);  // ref count
  const auto point_start = static_cast<std::size_t>(scan_for.tellg());
  std::getline(scan_for, line);  // first reference point
  std::istringstream fields(line);
  std::string east, north, traj;
  fields >> east >> north >> traj;
  const std::string prefix = east + ' ' + north + ' ' + traj + ' ';
  text.replace(point_start, line.size(), prefix + "999999");
  std::istringstream is(text);
  auto loaded = wifi::RssiDetector::try_load(is);
  ASSERT_FALSE(loaded.has_value());
}

// ---------------------------------------------------------------------------
// Deterministic corruption fuzz over every durable-framed artifact

void fuzz_reject_all(const std::string& label, const std::string& intact,
                     const std::function<bool(const std::string&)>& accepts,
                     std::uint64_t seed, int trials) {
  ASSERT_TRUE(accepts(intact)) << label << ": intact bytes must load";
  for (int t = 0; t < trials; ++t) {
    Rng rng = Rng::substream(seed, static_cast<std::uint64_t>(t));
    std::string mutated = intact;
    const auto offset = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(intact.size()) - 1));
    const auto mask = static_cast<unsigned char>(rng.uniform_int(1, 255));
    mutated[offset] =
        static_cast<char>(static_cast<unsigned char>(mutated[offset]) ^ mask);
    EXPECT_FALSE(accepts(mutated))
        << label << ": flip 0x" << std::hex << int(mask) << std::dec
        << " at byte " << offset << " (trial " << t << ") accepted";

    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(intact.size()) - 1));
    EXPECT_FALSE(accepts(intact.substr(0, cut)))
        << label << ": truncation to " << cut << " bytes (trial " << t
        << ") accepted";
  }
}

TEST(CorruptionFuzz, LstmModelFileRejectsEveryMutation) {
  nn::LstmClassifierConfig cfg;
  cfg.hidden_dim = 5;
  const nn::LstmClassifier model(cfg, 2);
  const std::string path = "durable_test_fuzz_lstm.tmp";
  model.save_file(path);
  const std::string intact = slurp(path);
  fuzz_reject_all("lstm", intact,
                  [&](const std::string& bytes) {
                    write_raw(path, bytes);
                    return nn::LstmClassifier::try_load_file(path).has_value();
                  },
                  0xF17A, 48);
  std::remove(path.c_str());
}

TEST(CorruptionFuzz, QuantLstmFileRejectsEveryMutation) {
  // The quantized serving image ("quant_lstm" container): packed int8
  // weights, per-gate scales, activation scales.  Any flipped or missing
  // byte must fail the load — a silently-perturbed quant model would serve
  // wrong verdicts while claiming to have passed its gate.
  nn::LstmClassifierConfig cfg;
  cfg.hidden_dim = 5;
  const nn::LstmClassifier model(cfg, 2);
  Rng rng(91);
  std::vector<FeatureSequence> calibration;
  for (int i = 0; i < 4; ++i) {
    FeatureSequence x;
    x.dim = 2;
    x.steps = 6;
    for (std::size_t k = 0; k < x.steps * x.dim; ++k) {
      x.values.push_back(rng.uniform(-1.0, 1.0));
    }
    calibration.push_back(std::move(x));
  }
  const auto quant =
      nn::QuantizedLstm::quantize(model, calibration, nn::QuantMode::kInt8);
  const std::string path = "durable_test_fuzz_quant.tmp";
  quant.save_file(path);
  const std::string intact = slurp(path);
  fuzz_reject_all("quant lstm", intact,
                  [&](const std::string& bytes) {
                    write_raw(path, bytes);
                    return nn::QuantizedLstm::try_load_file(path).has_value();
                  },
                  0x9A47, 48);
  std::remove(path.c_str());
}

TEST(CorruptionFuzz, GbtModelFileRejectsEveryMutation) {
  const auto model = small_trained_gbt();
  const std::string path = "durable_test_fuzz_gbt.tmp";
  model.save_file(path);
  const std::string intact = slurp(path);
  fuzz_reject_all("gbt", intact,
                  [&](const std::string& bytes) {
                    write_raw(path, bytes);
                    return gbt::GbtClassifier::try_load_file(path).has_value();
                  },
                  0xF17B, 48);
  std::remove(path.c_str());
}

TEST(CorruptionFuzz, DetectorModelFileRejectsEveryMutation) {
  ts::LinearFieldWorld w;
  const std::string path = "durable_test_fuzz_detector.tmp";
  w.detector().save_file(path);
  const std::string intact = slurp(path);
  fuzz_reject_all("detector", intact,
                  [&](const std::string& bytes) {
                    write_raw(path, bytes);
                    return wifi::RssiDetector::try_load_file(path).has_value();
                  },
                  0xF17C, 32);
  std::remove(path.c_str());
}

TEST(CorruptionFuzz, CrowdSnapshotRejectsEveryMutation) {
  const std::string dir = "durable_test_fuzz_store";
  remove_tree(dir);
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(store.value()
                      ->append({{double(i), double(i) / 2}, {{5, -50 - i}}, 1u})
                      .has_value());
    }
    ASSERT_TRUE(store.value()->compact().has_value());
  }
  const std::string snap = wifi::CrowdStore::snapshot_path(dir);
  const std::string intact = slurp(snap);
  fuzz_reject_all("crowd snapshot", intact,
                  [&](const std::string& bytes) {
                    write_raw(snap, bytes);
                    return wifi::CrowdStore::open(dir).has_value();
                  },
                  0xF17D, 48);
  remove_tree(dir);
}

TEST(CorruptionFuzz, JournalMutationsRecoverAPrefixOrFailCleanly) {
  const std::string path = "durable_test_fuzz_journal.tmp";
  std::remove(path.c_str());
  std::vector<std::string> payloads;
  {
    auto journal = durable::Journal::open(path, "fuzz_journal");
    ASSERT_TRUE(journal.has_value());
    for (int i = 0; i < 6; ++i) {
      payloads.push_back("payload " + std::to_string(i));
      ASSERT_TRUE(journal.value()->append(payloads.back()).has_value());
    }
  }
  const std::string intact = slurp(path);
  for (int t = 0; t < 64; ++t) {
    Rng rng = Rng::substream(0xF17E, static_cast<std::uint64_t>(t));
    std::string mutated = intact;
    const auto offset = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(intact.size()) - 1));
    const auto mask = static_cast<unsigned char>(rng.uniform_int(1, 255));
    mutated[offset] =
        static_cast<char>(static_cast<unsigned char>(mutated[offset]) ^ mask);
    write_raw(path, mutated);
    auto journal = durable::Journal::open(path, "fuzz_journal");
    if (!journal.has_value()) continue;  // header damage: clean error
    // Record-region damage: recovery must be an exact payload prefix.
    const auto& records = journal.value()->recovery().records;
    ASSERT_LE(records.size(), payloads.size()) << "trial " << t;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].payload, payloads[i])
          << "trial " << t << ": flip 0x" << std::hex << int(mask) << std::dec
          << " at byte " << offset << " produced a non-prefix recovery";
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptionFuzz, PoisonProvenanceJournalRecoversAPairPrefixOrFailsCleanly) {
  // The journal fuzz contract extended to v2 frames: any single-byte flip in
  // a provenance-framed journal either fails the open cleanly (header
  // damage) or recovers an exact prefix of the committed (payload, uploader)
  // pairs — a flipped uploader field must take its whole frame (and the
  // tail) with it, never survive as a different identity.
  const std::string path = "durable_test_fuzz_journal_prov.tmp";
  std::remove(path.c_str());
  std::vector<std::pair<std::string, std::uint64_t>> committed;
  {
    auto journal = durable::Journal::open(path, "fuzz_prov_journal");
    ASSERT_TRUE(journal.has_value());
    for (int i = 0; i < 6; ++i) {
      committed.emplace_back("payload " + std::to_string(i),
                             i % 2 ? 0 : 1000 + static_cast<std::uint64_t>(i));
      ASSERT_TRUE(journal.value()
                      ->append(committed.back().first, committed.back().second)
                      .has_value());
    }
  }
  const std::string intact = slurp(path);
  for (int t = 0; t < 64; ++t) {
    Rng rng = Rng::substream(0xF17F, static_cast<std::uint64_t>(t));
    std::string mutated = intact;
    const auto offset = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(intact.size()) - 1));
    const auto mask = static_cast<unsigned char>(rng.uniform_int(1, 255));
    mutated[offset] =
        static_cast<char>(static_cast<unsigned char>(mutated[offset]) ^ mask);
    write_raw(path, mutated);
    auto journal = durable::Journal::open(path, "fuzz_prov_journal");
    if (!journal.has_value()) continue;  // header damage: clean error
    const auto& records = journal.value()->recovery().records;
    ASSERT_LE(records.size(), committed.size()) << "trial " << t;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].payload, committed[i].first)
          << "trial " << t << ": flip 0x" << std::hex << int(mask) << std::dec
          << " at byte " << offset << " produced a non-prefix recovery";
      EXPECT_EQ(records[i].uploader, committed[i].second)
          << "trial " << t << ": flip 0x" << std::hex << int(mask) << std::dec
          << " at byte " << offset << " forged a provenance stamp";
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptionFuzz, PoisonedCrowdSnapshotRejectsEveryMutation) {
  // The v3 snapshot carries three extra trailing records (cell stats,
  // provenance grid, reputation book).  Re-run the snapshot corruption fuzz
  // over a store whose snapshot actually exercises them: provenance-stamped
  // points and a quarantined uploader.
  const std::string dir = "durable_test_fuzz_poison_store";
  remove_tree(dir);
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(store.value()
                      ->append({{double(i), double(i) / 2}, {{5, -50 - i}}, 1u},
                               static_cast<wifi::UploaderId>(1 + i % 3))
                      .has_value());
    }
    ASSERT_TRUE(store.value()->append_quarantine_marker(2).has_value());
    ASSERT_TRUE(store.value()->compact().has_value());
  }
  const std::string snap = wifi::CrowdStore::snapshot_path(dir);
  const std::string intact = slurp(snap);
  fuzz_reject_all("poisoned crowd snapshot", intact,
                  [&](const std::string& bytes) {
                    write_raw(snap, bytes);
                    return wifi::CrowdStore::open(dir).has_value();
                  },
                  0xF180, 48);
  remove_tree(dir);
}

// ---------------------------------------------------------------------------
// Trajectory CSV hardening

TrajectoryList one_walk() {
  std::vector<TrajPoint> pts;
  for (int i = 0; i < 5; ++i) {
    pts.push_back({{40.0 + i * 1e-5, -75.0 + i * 1e-5}, double(i)});
  }
  TrajectoryList out;
  out.emplace_back(std::move(pts), Mode::kWalking);
  return out;
}

TEST(TrajCsv, AtomicWriteRoundTrips) {
  const std::string path = "durable_test_traj.csv.tmp";
  const auto trajs = one_walk();
  write_csv_file(path, trajs);
  auto loaded = try_read_csv_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].points().size(), 5u);
  std::remove(path.c_str());
}

TEST(TrajCsv, RejectsNonFiniteCoordinates) {
  std::istringstream is(
      "traj_id,mode,lat,lon,time_s\n"
      "0,walking,40.0,-75.0,0\n"
      "0,walking,nan,-75.0,1\n");
  auto loaded = try_read_csv(is);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("non-finite"), std::string::npos) << loaded.error();
}

TEST(TrajCsv, RejectsOutOfRangeCoordinates) {
  std::istringstream is(
      "traj_id,mode,lat,lon,time_s\n"
      "0,walking,91.0,-75.0,0\n");
  auto loaded = try_read_csv(is);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("out of range"), std::string::npos);
}

TEST(TrajCsv, RejectsNonMonotoneTimestamps) {
  std::istringstream is(
      "traj_id,mode,lat,lon,time_s\n"
      "0,walking,40.0,-75.0,0\n"
      "0,walking,40.1,-75.0,2\n"
      "0,walking,40.2,-75.0,1\n");
  auto loaded = try_read_csv(is);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("non-increasing"), std::string::npos);
}

TEST(TrajCsv, RejectsDuplicateTimestamps) {
  std::istringstream is(
      "traj_id,mode,lat,lon,time_s\n"
      "0,walking,40.0,-75.0,1\n"
      "0,walking,40.1,-75.0,1\n");
  auto loaded = try_read_csv(is);
  ASSERT_FALSE(loaded.has_value());
}

TEST(TrajCsv, RejectsHugeNumericCells) {
  // std::stod would throw out_of_range here; historically uncaught.
  std::istringstream is(
      "traj_id,mode,lat,lon,time_s\n"
      "0,walking,40.0,-75.0,1e100000\n");
  auto loaded = try_read_csv(is);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("non-numeric"), std::string::npos);
}

TEST(TrajCsv, SeparateTrajectoriesMayRestartTime) {
  std::istringstream is(
      "traj_id,mode,lat,lon,time_s\n"
      "0,walking,40.0,-75.0,5\n"
      "0,walking,40.1,-75.0,6\n"
      "1,cycling,41.0,-75.0,0\n"
      "1,cycling,41.1,-75.0,1\n");
  auto loaded = try_read_csv(is);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(loaded.value().size(), 2u);
}

// ---------------------------------------------------------------------------
// Upload / scan validation

TEST(Validate, AcceptsPlausibleScan) {
  EXPECT_TRUE(wifi::validate_scan({{1, -45}, {2, -85}}).has_value());
}

TEST(Validate, RejectsAbsurdRssi) {
  EXPECT_FALSE(wifi::validate_scan({{1, -500}}).has_value());
  EXPECT_FALSE(wifi::validate_scan({{1, 99}}).has_value());
  EXPECT_TRUE(wifi::validate_scan({{1, wifi::kMinValidRssiDbm}}).has_value());
  EXPECT_TRUE(wifi::validate_scan({{1, wifi::kMaxValidRssiDbm}}).has_value());
}

TEST(Validate, RejectsOversizedApList) {
  wifi::WifiScan huge;
  for (std::size_t i = 0; i <= wifi::kMaxScanAps; ++i) {
    huge.push_back({i, -60});
  }
  EXPECT_FALSE(wifi::validate_scan(huge).has_value());
}

TEST(Validate, RejectsNonFiniteUploadPositions) {
  wifi::ScannedUpload upload;
  upload.positions = {{0.0, 0.0}, {std::numeric_limits<double>::quiet_NaN(), 1.0}};
  upload.scans = {{{1, -50}}, {{1, -51}}};
  EXPECT_FALSE(wifi::validate_upload(upload).has_value());
  upload.positions[1] = {std::numeric_limits<double>::infinity(), 1.0};
  EXPECT_FALSE(wifi::validate_upload(upload).has_value());
  upload.positions[1] = {2.0, 1.0};
  EXPECT_TRUE(wifi::validate_upload(upload).has_value());
}

TEST(Validate, RejectsMisalignedAndEmptyUploads) {
  wifi::ScannedUpload upload;
  EXPECT_FALSE(wifi::validate_upload(upload).has_value());  // empty
  upload.positions = {{0.0, 0.0}};
  EXPECT_FALSE(wifi::validate_upload(upload).has_value());  // no scans
  upload.scans = {{{1, -50}}};
  EXPECT_TRUE(wifi::validate_upload(upload).has_value());
}

// ---------------------------------------------------------------------------
// Crowd store

wifi::ReferencePoint sample_point(int i) {
  return {{double(i), 0.5 * i}, {{std::uint64_t(i % 3 + 1), -40 - i}}, 7u};
}

TEST(CrowdStore, AppendsPersistAcrossReopen) {
  const std::string dir = "durable_test_store_reopen";
  remove_tree(dir);
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    for (int i = 0; i < 5; ++i) {
      auto seq = store.value()->append(sample_point(i));
      ASSERT_TRUE(seq.has_value()) << seq.error();
      EXPECT_EQ(seq.value(), std::uint64_t(i));
    }
  }
  auto store = wifi::CrowdStore::open(dir);
  ASSERT_TRUE(store.has_value()) << store.error();
  ASSERT_EQ(store.value()->points().size(), 5u);
  EXPECT_EQ(store.value()->open_stats().replayed_records, 5u);
  EXPECT_EQ(store.value()->open_stats().snapshot_points, 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(store.value()->points()[i].pos.east, double(i));
    EXPECT_EQ(store.value()->points()[i].scan, sample_point(i).scan);
  }
  remove_tree(dir);
}

TEST(CrowdStore, CompactionFoldsJournalIntoSnapshot) {
  const std::string dir = "durable_test_store_compact";
  remove_tree(dir);
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value());
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(store.value()->append(sample_point(i)));
    ASSERT_TRUE(store.value()->compact().has_value());
    EXPECT_EQ(store.value()->journaled_since_snapshot(), 0u);
    // Post-compaction appends land in the (fresh) journal.
    ASSERT_TRUE(store.value()->append(sample_point(4)));
    EXPECT_EQ(store.value()->next_seq(), 5u);
  }
  auto store = wifi::CrowdStore::open(dir);
  ASSERT_TRUE(store.has_value()) << store.error();
  EXPECT_EQ(store.value()->open_stats().snapshot_points, 4u);
  EXPECT_EQ(store.value()->open_stats().replayed_records, 1u);
  ASSERT_EQ(store.value()->points().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(store.value()->points()[i].pos.east, double(i));
  }
  remove_tree(dir);
}

TEST(CrowdStore, CompactionBeyond16BitPointCountSurvivesReopen) {
  // Regression for the bricked-store bug: with >65,535 points the snapshot
  // used to commit fine (and reset the journal, discarding the WAL copy)
  // but tripped the old parse-side record cap on every reopen.
  const std::string dir = "durable_test_store_big";
  remove_tree(dir);
  constexpr std::size_t kPoints = 66'000;  // past the old 65,536 cap
  {
    auto store = wifi::CrowdStore::open(dir, /*sync_each_append=*/false);
    ASSERT_TRUE(store.has_value()) << store.error();
    for (std::size_t i = 0; i < kPoints; ++i) {
      const wifi::ReferencePoint p{
          {double(i % 1000), double(i / 1000)}, {{1, -50}}, 3u};
      ASSERT_TRUE(store.value()->append(p).has_value()) << "point " << i;
    }
    ASSERT_TRUE(store.value()->compact().has_value());
  }
  auto store = wifi::CrowdStore::open(dir, /*sync_each_append=*/false);
  ASSERT_TRUE(store.has_value()) << store.error();
  EXPECT_EQ(store.value()->open_stats().snapshot_points, kPoints);
  ASSERT_EQ(store.value()->points().size(), kPoints);
  EXPECT_EQ(store.value()->points().back().pos.east, double((kPoints - 1) % 1000));
  EXPECT_EQ(store.value()->points().back().pos.north, double((kPoints - 1) / 1000));
  remove_tree(dir);
}

TEST(CrowdStore, OpenRemovesStaleSnapshotTemp) {
  const std::string dir = "durable_test_store_stale";
  remove_tree(dir);
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    ASSERT_TRUE(store.value()->append(sample_point(0)).has_value());
  }
  const std::string stale = wifi::CrowdStore::snapshot_path(dir) + ".tmp";
  write_raw(stale, "stale bytes from a crashed snapshot commit");
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
  }
  EXPECT_FALSE(ts::snapshot_file(stale).exists);
  remove_tree(dir);
}

TEST(CrowdStore, FailureBetweenCompactStagesLosesAndDuplicatesNothing) {
  const std::string dir = "durable_test_store_between";
  remove_tree(dir);
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.value()->append(sample_point(i)));
    FaultScope faults(5);
    faults.arm(wifi::kFaultStoreCompact, {.fail_first = 1});
    // Snapshot commits, then the injected fault stops compact() before the
    // journal reset — exactly the state a crash there would leave.
    EXPECT_FALSE(store.value()->compact().has_value());
  }
  auto store = wifi::CrowdStore::open(dir);
  ASSERT_TRUE(store.has_value()) << store.error();
  EXPECT_EQ(store.value()->open_stats().snapshot_points, 3u);
  EXPECT_EQ(store.value()->open_stats().skipped_stale, 3u)
      << "journal records covered by the snapshot must be skipped, not re-applied";
  EXPECT_EQ(store.value()->open_stats().replayed_records, 0u);
  ASSERT_EQ(store.value()->points().size(), 3u);
  // The interrupted compaction is simply re-runnable.
  ASSERT_TRUE(store.value()->compact().has_value());
  EXPECT_EQ(store.value()->next_seq(), 3u);
  ASSERT_TRUE(store.value()->append(sample_point(3)));
  EXPECT_EQ(store.value()->points().size(), 4u);
  remove_tree(dir);
}

TEST(CrowdStore, RejectsInvalidPoints) {
  const std::string dir = "durable_test_store_invalid";
  remove_tree(dir);
  auto store = wifi::CrowdStore::open(dir);
  ASSERT_TRUE(store.has_value());
  wifi::ReferencePoint bad = sample_point(0);
  bad.scan[0].rssi_dbm = -999;
  EXPECT_FALSE(store.value()->append(bad).has_value());
  bad = sample_point(0);
  bad.pos.east = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(store.value()->append(bad).has_value());
  EXPECT_TRUE(store.value()->points().empty());
  EXPECT_EQ(store.value()->next_seq(), 0u);
  remove_tree(dir);
}

TEST(CrowdStore, PointCodecRoundTripsExactDoubles) {
  wifi::ReferencePoint p{{1.0 / 3.0, -2.0e-17}, {{123456789012345ull, -77}}, 42u};
  const auto decoded = wifi::CrowdStore::decode_point(wifi::CrowdStore::encode_point(p));
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value().pos.east, p.pos.east);
  EXPECT_EQ(decoded.value().pos.north, p.pos.north);
  EXPECT_EQ(decoded.value().traj_id, p.traj_id);
  EXPECT_EQ(decoded.value().scan, p.scan);
}

}  // namespace
}  // namespace trajkit
