// Geodesy primitives: projections, distances, bearings, polyline geometry.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "geo/geo.hpp"

namespace trajkit {
namespace {

TEST(Distance, EuclideanBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Distance, SymmetricAndNonNegative) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Enu a{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Enu b{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
    EXPECT_GE(distance(a, b), 0.0);
  }
}

TEST(Haversine, KnownDistanceOneDegreeLat) {
  // One degree of latitude is ~111.2 km on the mean sphere.
  const double d = haversine_m({0.0, 0.0}, {1.0, 0.0});
  EXPECT_NEAR(d, 111195.0, 50.0);
}

TEST(Haversine, ZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(haversine_m({32.06, 118.78}, {32.06, 118.78}), 0.0);
}

TEST(Heading, CardinalDirections) {
  EXPECT_NEAR(heading_rad({0, 0}, {1, 0}), 0.0, 1e-12);          // east
  EXPECT_NEAR(heading_rad({0, 0}, {0, 1}), M_PI / 2, 1e-12);     // north
  EXPECT_NEAR(std::fabs(heading_rad({0, 0}, {-1, 0})), M_PI, 1e-12);  // west
  EXPECT_NEAR(heading_rad({0, 0}, {0, -1}), -M_PI / 2, 1e-12);   // south
}

TEST(Heading, DiffWrapsAround) {
  EXPECT_NEAR(heading_diff(3.0, -3.0), 2 * M_PI - 6.0, 1e-12);
  EXPECT_NEAR(heading_diff(0.1, 0.3), 0.2, 1e-12);
  EXPECT_NEAR(heading_diff(0.3, 0.1), -0.2, 1e-12);
}

TEST(LocalProjection, RoundTripsExactlyAtCityScale) {
  const LocalProjection proj({32.0603, 118.7969});  // Nanjing
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Enu p{rng.uniform(-2000, 2000), rng.uniform(-2000, 2000)};
    const Enu q = proj.to_enu(proj.to_latlon(p));
    EXPECT_NEAR(p.east, q.east, 1e-6);
    EXPECT_NEAR(p.north, q.north, 1e-6);
  }
}

TEST(LocalProjection, AgreesWithHaversineNearOrigin) {
  const LocalProjection proj({32.0603, 118.7969});
  const Enu a{120.0, -340.0};
  const Enu b{-80.0, 95.0};
  const double metric = distance(a, b);
  const double geodesic = haversine_m(proj.to_latlon(a), proj.to_latlon(b));
  EXPECT_NEAR(metric, geodesic, metric * 1e-4 + 0.01);
}

TEST(LocalProjection, VectorOverloadsMatchScalar) {
  const LocalProjection proj({10.0, 20.0});
  const std::vector<Enu> pts = {{1, 2}, {-3, 4}, {0, 0}};
  const auto lls = proj.to_latlon(pts);
  const auto back = proj.to_enu(lls);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(back[i].east, pts[i].east, 1e-9);
    EXPECT_NEAR(back[i].north, pts[i].north, 1e-9);
  }
}

TEST(BoundingBox, OfPointsAndContains) {
  const auto box = BoundingBox::of({{0, 0}, {10, -5}, {3, 7}});
  EXPECT_DOUBLE_EQ(box.min_east, 0.0);
  EXPECT_DOUBLE_EQ(box.max_east, 10.0);
  EXPECT_DOUBLE_EQ(box.min_north, -5.0);
  EXPECT_DOUBLE_EQ(box.max_north, 7.0);
  EXPECT_TRUE(box.contains({5, 0}));
  EXPECT_FALSE(box.contains({11, 0}));
  EXPECT_DOUBLE_EQ(box.area(), 120.0);
}

TEST(BoundingBox, ExpandedGrowsEverySide) {
  const auto box = BoundingBox::of({{0, 0}, {10, 10}}).expanded(2.0);
  EXPECT_DOUBLE_EQ(box.min_east, -2.0);
  EXPECT_DOUBLE_EQ(box.max_north, 12.0);
  EXPECT_TRUE(box.contains({-1, 11}));
}

TEST(PointSegment, ProjectionCases) {
  // Perpendicular foot inside the segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 3}, {0, 0}, {10, 0}), 3.0);
  // Clamped to the endpoints.
  EXPECT_DOUBLE_EQ(point_segment_distance({-3, 4}, {0, 0}, {10, 0}), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({13, 4}, {0, 0}, {10, 0}), 5.0);
  // Degenerate zero-length segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(PointPolyline, PicksClosestSegment) {
  const std::vector<Enu> poly = {{0, 0}, {10, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(point_polyline_distance({5, 2}, poly), 2.0);
  EXPECT_DOUBLE_EQ(point_polyline_distance({12, 5}, poly), 2.0);
  EXPECT_TRUE(std::isinf(point_polyline_distance({0, 0}, {})));
  EXPECT_DOUBLE_EQ(point_polyline_distance({3, 4}, {{0, 0}}), 5.0);
}

// Property sweep: the distance to a polyline is never larger than the
// distance to any of its vertices.
class PolylineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PolylineProperty, BoundedByVertexDistance) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Enu> poly;
  for (int i = 0; i < 8; ++i) {
    poly.push_back({rng.uniform(-50, 50), rng.uniform(-50, 50)});
  }
  const Enu p{rng.uniform(-80, 80), rng.uniform(-80, 80)};
  const double d = point_polyline_distance(p, poly);
  for (const auto& v : poly) EXPECT_LE(d, distance(p, v) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolylineProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace trajkit
