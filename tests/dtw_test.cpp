// DTW value, path, banded variant and the optimal-alignment subgradient.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "dtw/dtw.hpp"
#include "dtw/soft_dtw.hpp"

namespace trajkit {
namespace {

std::vector<Enu> random_walk(Rng& rng, std::size_t n, double step = 3.0) {
  std::vector<Enu> pts = {{0, 0}};
  for (std::size_t i = 1; i < n; ++i) {
    pts.push_back({pts.back().east + rng.uniform(-step, step),
                   pts.back().north + rng.uniform(-step, step)});
  }
  return pts;
}

TEST(Dtw, IdenticalSequencesHaveZeroDistance) {
  Rng rng(1);
  const auto a = random_walk(rng, 20);
  const auto r = dtw(a, a);
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
  // The alignment of identical sequences is the diagonal.
  ASSERT_EQ(r.path.size(), 20u);
  for (std::size_t i = 0; i < r.path.size(); ++i) {
    EXPECT_EQ(r.path[i].i, i);
    EXPECT_EQ(r.path[i].j, i);
  }
}

TEST(Dtw, SymmetricValue) {
  Rng rng(2);
  for (int k = 0; k < 5; ++k) {
    const auto a = random_walk(rng, 15);
    const auto b = random_walk(rng, 18);
    EXPECT_NEAR(dtw(a, b).distance, dtw(b, a).distance, 1e-9);
  }
}

TEST(Dtw, SinglePointSequences) {
  const auto r = dtw({{0, 0}}, {{3, 4}});
  EXPECT_DOUBLE_EQ(r.distance, 5.0);
  ASSERT_EQ(r.path.size(), 1u);
}

TEST(Dtw, RejectsEmptyInput) {
  EXPECT_THROW(dtw({}, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(dtw_distance({{0, 0}}, {}), std::invalid_argument);
}

TEST(Dtw, KnownSmallCase) {
  // b equals a with one repeated point; DTW should absorb the repeat freely.
  const std::vector<Enu> a = {{0, 0}, {1, 0}, {2, 0}};
  const std::vector<Enu> b = {{0, 0}, {1, 0}, {1, 0}, {2, 0}};
  EXPECT_NEAR(dtw(a, b).distance, 0.0, 1e-12);
}

TEST(Dtw, PathIsMonotoneAndContiguous) {
  Rng rng(3);
  const auto a = random_walk(rng, 12);
  const auto b = random_walk(rng, 17);
  const auto r = dtw(a, b);
  EXPECT_EQ(r.path.front().i, 0u);
  EXPECT_EQ(r.path.front().j, 0u);
  EXPECT_EQ(r.path.back().i, a.size() - 1);
  EXPECT_EQ(r.path.back().j, b.size() - 1);
  for (std::size_t k = 1; k < r.path.size(); ++k) {
    const auto di = r.path[k].i - r.path[k - 1].i;
    const auto dj = r.path[k].j - r.path[k - 1].j;
    EXPECT_TRUE((di == 0 || di == 1) && (dj == 0 || dj == 1));
    EXPECT_TRUE(di + dj >= 1);
  }
}

TEST(Dtw, StreamingDistanceMatchesFull) {
  Rng rng(4);
  for (int k = 0; k < 8; ++k) {
    const auto a = random_walk(rng, 10 + k);
    const auto b = random_walk(rng, 14);
    EXPECT_NEAR(dtw(a, b).distance, dtw_distance(a, b), 1e-9);
    EXPECT_NEAR(dtw(b, a).distance, dtw_distance(b, a), 1e-9);
  }
}

TEST(DtwBanded, WideBandEqualsFull) {
  Rng rng(5);
  const auto a = random_walk(rng, 25);
  const auto b = random_walk(rng, 25);
  EXPECT_NEAR(dtw_banded(a, b, 25).distance, dtw(a, b).distance, 1e-9);
}

TEST(DtwBanded, NarrowBandUpperBoundsFull) {
  Rng rng(6);
  for (int k = 0; k < 6; ++k) {
    const auto a = random_walk(rng, 30);
    const auto b = random_walk(rng, 30);
    const double full = dtw(a, b).distance;
    const double banded = dtw_banded(a, b, 3).distance;
    EXPECT_GE(banded, full - 1e-9);  // constraining can only increase cost
  }
}

TEST(DtwBanded, BandWidensToCoverLengthDifference) {
  // With very different lengths even band=0 must remain feasible.
  Rng rng(7);
  const auto a = random_walk(rng, 5);
  const auto b = random_walk(rng, 20);
  const auto r = dtw_banded(a, b, 0);
  EXPECT_TRUE(std::isfinite(r.distance));
}

TEST(DtwPruned, BitIdenticalToFullOnRandomPairs) {
  // The pruned DP must reproduce dtw() exactly — distance bitwise AND the
  // alignment path index-for-index — across shapes, bands and separations.
  Rng rng(1234);
  for (int pair = 0; pair < 200; ++pair) {
    const std::size_t na = 2 + static_cast<std::size_t>(rng.uniform_int(0, 30));
    const std::size_t nb = 2 + static_cast<std::size_t>(rng.uniform_int(0, 30));
    const auto a = random_walk(rng, na);
    auto b = random_walk(rng, nb);
    if (pair % 3 == 0) {
      // Nearby pair (the attack regime): b is a perturbation of a's prefix.
      b = a;
      b.resize(std::min(na, nb));
      for (auto& p : b) {
        p.east += rng.uniform(-1.0, 1.0);
        p.north += rng.uniform(-1.0, 1.0);
      }
    }
    const std::size_t band = static_cast<std::size_t>(rng.uniform_int(0, 8));
    const auto full = dtw(a, b);
    const auto pruned = dtw_pruned(a, b, band);
    ASSERT_EQ(full.distance, pruned.distance) << "pair " << pair;  // bitwise
    ASSERT_EQ(full.path.size(), pruned.path.size()) << "pair " << pair;
    for (std::size_t k = 0; k < full.path.size(); ++k) {
      ASSERT_EQ(full.path[k].i, pruned.path[k].i) << "pair " << pair << " k " << k;
      ASSERT_EQ(full.path[k].j, pruned.path[k].j) << "pair " << pair << " k " << k;
    }
  }
}

TEST(DtwPruned, HandlesDegenerateShapes) {
  const std::vector<Enu> single = {{1.0, 2.0}};
  const auto line = std::vector<Enu>{{0, 0}, {5, 0}, {10, 0}};
  EXPECT_EQ(dtw_pruned(single, single, 0).distance, dtw(single, single).distance);
  EXPECT_EQ(dtw_pruned(single, line, 0).distance, dtw(single, line).distance);
  EXPECT_EQ(dtw_pruned(line, single, 0).distance, dtw(line, single).distance);
  EXPECT_THROW(dtw_pruned({}, line), std::invalid_argument);
}

TEST(DtwEarlyAbandon, ExactUnderThresholdInfAbove) {
  Rng rng(555);
  for (int pair = 0; pair < 100; ++pair) {
    const auto a = random_walk(rng, 15 + pair % 7);
    const auto b = random_walk(rng, 12 + pair % 5);
    const double exact = dtw_distance(a, b);
    // Generous threshold: result must be the exact distance, bitwise.
    EXPECT_EQ(dtw_distance(a, b, exact * 2.0 + 1.0), exact) << "pair " << pair;
    // Threshold at the exact value: not provably above, still exact.
    EXPECT_EQ(dtw_distance(a, b, exact), exact) << "pair " << pair;
    // Threshold strictly below: the DP may abandon or overshoot, but it must
    // never report a value below the true distance (callers treat anything
    // above the threshold as "skip", so only underestimates would be bugs).
    const double r = dtw_distance(a, b, exact * 0.5);
    EXPECT_GE(r, exact) << "pair " << pair;
  }
}

TEST(DtwEarlyAbandon, AbandonsDistantPair) {
  // Two far-apart straight lines: every row minimum exceeds the threshold
  // immediately, so the result is +inf (and the caller skips the pair).
  std::vector<Enu> a;
  std::vector<Enu> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back({i * 1.0, 0.0});
    b.push_back({i * 1.0, 1000.0});
  }
  EXPECT_TRUE(std::isinf(dtw_distance(a, b, 10.0)));
}

TEST(DtwNormalized, PureTranslationEqualsOffset) {
  std::vector<Enu> a;
  std::vector<Enu> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back({i * 5.0, 0.0});
    b.push_back({i * 5.0, 2.0});  // constant 2 m lateral offset
  }
  EXPECT_NEAR(dtw_normalized(a, b), 2.0, 1e-9);
}

TEST(DtwGradient, MatchesFiniteDifference) {
  Rng rng(8);
  const auto a = random_walk(rng, 10);
  auto b = random_walk(rng, 10);

  std::vector<Enu> grad(b.size(), Enu{});
  const double value = dtw_gradient(a, b, grad);
  EXPECT_NEAR(value, dtw(a, b).distance, 1e-9);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < b.size(); ++i) {
    for (int axis = 0; axis < 2; ++axis) {
      auto plus = b;
      auto minus = b;
      (axis == 0 ? plus[i].east : plus[i].north) += eps;
      (axis == 0 ? minus[i].east : minus[i].north) -= eps;
      const double numeric =
          (dtw(a, plus).distance - dtw(a, minus).distance) / (2 * eps);
      const double analytic = axis == 0 ? grad[i].east : grad[i].north;
      // The subgradient holds the alignment fixed; tiny epsilon keeps the
      // optimal path unchanged so the values must agree.
      EXPECT_NEAR(analytic, numeric, 1e-4) << "point " << i << " axis " << axis;
    }
  }
}

TEST(DtwGradient, RejectsWrongBufferSize) {
  std::vector<Enu> grad(2);
  EXPECT_THROW(dtw_gradient({{0, 0}}, {{1, 1}}, grad), std::invalid_argument);
}

TEST(DtwGradient, DescentStepReducesDistance) {
  Rng rng(9);
  const auto a = random_walk(rng, 15);
  auto b = random_walk(rng, 15);
  const double before = dtw(a, b).distance;
  std::vector<Enu> grad(b.size(), Enu{});
  dtw_gradient(a, b, grad);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i].east -= 0.05 * grad[i].east;
    b[i].north -= 0.05 * grad[i].north;
  }
  EXPECT_LT(dtw(a, b).distance, before);
}

// Property sweep: triangle-like bound DTW(a,c) <= DTW(a,b) + DTW(b,c) does
// NOT hold for DTW in general, but non-negativity and identity do.
class DtwProperty : public ::testing::TestWithParam<int> {};

TEST_P(DtwProperty, NonNegativeAndZeroOnlyOnSelf) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto a = random_walk(rng, 12);
  auto b = a;
  b[5].east += 1.0;
  EXPECT_GT(dtw(a, b).distance, 0.0);
  EXPECT_GE(dtw(a, random_walk(rng, 9)).distance, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwProperty, ::testing::Range(0, 8));

TEST(DtwProperties, TwoHundredRandomPairs) {
  // Property sweep over 200 random pairs: symmetry, identity, non-negativity,
  // and agreement between the path-recovering and streaming variants.
  Rng rng(4242);
  for (int pair = 0; pair < 200; ++pair) {
    const std::size_t na = 2 + static_cast<std::size_t>(rng.uniform_int(0, 18));
    const std::size_t nb = 2 + static_cast<std::size_t>(rng.uniform_int(0, 18));
    const auto a = random_walk(rng, na);
    const auto b = random_walk(rng, nb);

    const double ab = dtw(a, b).distance;
    const double ba = dtw(b, a).distance;
    EXPECT_NEAR(ab, ba, 1e-9) << "pair " << pair;          // symmetry
    EXPECT_GE(ab, 0.0) << "pair " << pair;                 // non-negativity
    EXPECT_NEAR(dtw(a, a).distance, 0.0, 1e-9) << "pair " << pair;  // identity
    EXPECT_NEAR(ab, dtw_distance(a, b), 1e-9) << "pair " << pair;
  }
}

TEST(DtwProperties, SoftDtwConvergesToHardDtwAsGammaShrinks) {
  // soft_dtw uses squared-Euclidean local costs, so its gamma -> 0 limit is
  // the squared-cost DTW value, computed here by an exact DP.  Sweep random
  // pairs and a shrinking gamma ladder; the gap must shrink monotonically (up
  // to noise) and vanish at the bottom rung.
  Rng rng(777);
  for (int pair = 0; pair < 20; ++pair) {
    const auto a = random_walk(rng, 10);
    const auto b = random_walk(rng, 11);

    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<double> cost(n * m, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const double d = distance_sq(a[i], b[j]);
        if (i == 0 && j == 0) {
          cost[0] = d;
          continue;
        }
        double best = std::numeric_limits<double>::infinity();
        if (i > 0 && j > 0) best = std::min(best, cost[(i - 1) * m + j - 1]);
        if (i > 0) best = std::min(best, cost[(i - 1) * m + j]);
        if (j > 0) best = std::min(best, cost[i * m + j - 1]);
        cost[i * m + j] = best + d;
      }
    }
    const double hard = cost[n * m - 1];

    double prev_gap = std::numeric_limits<double>::infinity();
    for (const double gamma : {1.0, 0.1, 0.01, 0.001}) {
      const double soft = soft_dtw(a, b, gamma);
      EXPECT_LE(soft, hard + 1e-6) << "pair " << pair;  // soft-min <= min
      const double gap = hard - soft;
      EXPECT_LE(gap, prev_gap + 1e-9) << "pair " << pair << " gamma " << gamma;
      prev_gap = gap;
    }
    EXPECT_NEAR(soft_dtw(a, b, 0.001), hard, std::max(0.5, 0.01 * hard))
        << "pair " << pair;
  }
}

// ---------------------------------------------------------------------------
// Soft-DTW.

TEST(SoftDtw, ApproachesSquaredDtwAsGammaShrinks) {
  Rng rng(30);
  const auto a = random_walk(rng, 12);
  const auto b = random_walk(rng, 12);
  // Exact squared-cost DTW via a local DP (the Euclidean-cost optimal path
  // is not optimal for squared costs, so dtw()'s path cannot be reused).
  double hard;
  {
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<double> cost(n * m, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const double d = distance_sq(a[i], b[j]);
        if (i == 0 && j == 0) {
          cost[0] = d;
          continue;
        }
        double best = std::numeric_limits<double>::infinity();
        if (i > 0 && j > 0) best = std::min(best, cost[(i - 1) * m + j - 1]);
        if (i > 0) best = std::min(best, cost[(i - 1) * m + j]);
        if (j > 0) best = std::min(best, cost[i * m + j - 1]);
        cost[i * m + j] = best + d;
      }
    }
    hard = cost[n * m - 1];
  }
  const double s_tight = soft_dtw(a, b, 0.01);
  const double s_loose = soft_dtw(a, b, 10.0);
  // Soft-DTW lower-bounds the (squared-cost) DTW and tightens as gamma -> 0.
  EXPECT_LE(s_tight, hard + 1e-6);
  EXPECT_LE(s_loose, s_tight + 1e-9);
  EXPECT_NEAR(s_tight, hard, std::max(1.0, 0.05 * hard));
}

TEST(SoftDtw, ZeroForIdenticalSequencesAtSmallGamma) {
  Rng rng(31);
  const auto a = random_walk(rng, 10);
  // Identical sequences: value can go slightly negative (softmin < min).
  EXPECT_LT(std::fabs(soft_dtw(a, a, 0.01)), 1.0);
}

TEST(SoftDtw, GradientMatchesFiniteDifference) {
  Rng rng(32);
  const auto a = random_walk(rng, 8);
  auto b = random_walk(rng, 9);
  const double gamma = 1.0;

  std::vector<Enu> grad(b.size(), Enu{});
  const double value = soft_dtw_gradient(a, b, gamma, grad);
  EXPECT_NEAR(value, soft_dtw(a, b, gamma), 1e-9);

  const double eps = 1e-5;
  for (std::size_t i = 0; i < b.size(); ++i) {
    for (int axis = 0; axis < 2; ++axis) {
      auto plus = b;
      auto minus = b;
      (axis == 0 ? plus[i].east : plus[i].north) += eps;
      (axis == 0 ? minus[i].east : minus[i].north) -= eps;
      const double numeric =
          (soft_dtw(a, plus, gamma) - soft_dtw(a, minus, gamma)) / (2 * eps);
      const double analytic = axis == 0 ? grad[i].east : grad[i].north;
      EXPECT_NEAR(analytic, numeric, 1e-3 * std::max(1.0, std::fabs(numeric)))
          << "point " << i << " axis " << axis;
    }
  }
}

TEST(SoftDtw, ValidatesInput) {
  EXPECT_THROW(soft_dtw({}, {{0, 0}}, 1.0), std::invalid_argument);
  EXPECT_THROW(soft_dtw({{0, 0}}, {{0, 0}}, 0.0), std::invalid_argument);
  std::vector<Enu> db(3);
  EXPECT_THROW(soft_dtw_gradient({{0, 0}}, {{1, 1}}, 1.0, db), std::invalid_argument);
}

TEST(SoftDtw, DescentStepReducesValue) {
  Rng rng(33);
  const auto a = random_walk(rng, 12);
  auto b = random_walk(rng, 12);
  const double before = soft_dtw(a, b, 1.0);
  std::vector<Enu> grad(b.size(), Enu{});
  soft_dtw_gradient(a, b, 1.0, grad);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i].east -= 1e-3 * grad[i].east;
    b[i].north -= 1e-3 * grad[i].north;
  }
  EXPECT_LT(soft_dtw(a, b, 1.0), before);
}

}  // namespace
}  // namespace trajkit
