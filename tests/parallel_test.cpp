// ThreadPool / parallel_for / parallel_map_reduce unit tests, plus the RNG
// sub-stream scheme that makes parallel simulation deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace trajkit {
namespace {

/// Run `fn` under a global pool of `n` threads, restoring a multi-thread pool
/// afterwards so test order does not matter.
template <typename Fn>
void with_threads(std::size_t n, Fn&& fn) {
  set_global_threads(n);
  fn();
  set_global_threads(0);
}

TEST(ThreadPool, SizeCountsCallerThread) {
  ThreadPool pool1(1);
  EXPECT_EQ(pool1.size(), 1u);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.size(), 4u);
  ThreadPool pool0(0);  // clamped: the caller always exists
  EXPECT_EQ(pool0.size(), 1u);
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 257;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run_chunks(kChunks, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (std::size_t c = 0; c < kChunks; ++c) EXPECT_EQ(hits[c].load(), 1);
}

TEST(ThreadPool, ZeroChunksIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.run_chunks(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  with_threads(4, [] {
    std::atomic<int> calls{0};
    parallel_for(5, 5, 1, [&](std::size_t) { ++calls; });
    parallel_for(7, 3, 1, [&](std::size_t) { ++calls; });  // end < begin
    EXPECT_EQ(calls.load(), 0);
  });
}

TEST(ParallelFor, GrainLargerThanRangeStillCoversAllIndices) {
  with_threads(4, [] {
    std::vector<int> hits(10, 0);
    parallel_for(0, 10, 1000, [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1);
  });
}

TEST(ParallelFor, ZeroGrainIsClampedToOne) {
  with_threads(2, [] {
    std::vector<int> hits(16, 0);
    parallel_for(0, 16, 0, [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1);
  });
}

TEST(ParallelFor, CoversOffsetRanges) {
  with_threads(4, [] {
    std::atomic<std::uint64_t> sum{0};
    parallel_for(100, 200, 7, [&](std::size_t i) { sum += i; });
    std::uint64_t expect = 0;
    for (std::size_t i = 100; i < 200; ++i) expect += i;
    EXPECT_EQ(sum.load(), expect);
  });
}

TEST(ParallelFor, ExceptionsPropagateToCaller) {
  with_threads(4, [] {
    EXPECT_THROW(
        parallel_for(0, 100, 1,
                     [&](std::size_t i) {
                       if (i == 37) throw std::runtime_error("chunk 37 failed");
                     }),
        std::runtime_error);
  });
}

TEST(ParallelFor, LowestIndexExceptionWinsDeterministically) {
  for (const std::size_t threads : {1u, 4u}) {
    with_threads(threads, [] {
      try {
        parallel_for(0, 64, 1, [&](std::size_t i) {
          if (i == 11 || i == 52) throw std::runtime_error(std::to_string(i));
        });
        FAIL() << "expected an exception";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "11");
      }
    });
  }
}

TEST(ParallelFor, NestedUseIsSerializedNotDeadlocked) {
  with_threads(4, [] {
    EXPECT_FALSE(ThreadPool::in_parallel_region());
    std::vector<std::array<int, 8>> inner_hits(8, std::array<int, 8>{});
    std::atomic<int> nested_regions{0};
    parallel_for(0, 8, 1, [&](std::size_t i) {
      EXPECT_TRUE(ThreadPool::in_parallel_region());
      const auto outer_thread = std::this_thread::get_id();
      parallel_for(0, 8, 1, [&, outer_thread](std::size_t j) {
        // Inner region must execute inline on the same worker.
        EXPECT_EQ(std::this_thread::get_id(), outer_thread);
        ++inner_hits[i][j];
      });
      ++nested_regions;
    });
    EXPECT_FALSE(ThreadPool::in_parallel_region());
    EXPECT_EQ(nested_regions.load(), 8);
    for (const auto& row : inner_hits) {
      for (int h : row) EXPECT_EQ(h, 1);
    }
  });
}

TEST(ParallelFor, StressTenThousandTinyTasks) {
  with_threads(4, [] {
    constexpr std::size_t kTasks = 10000;
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::atomic<int>> hits(kTasks);
    parallel_for(0, kTasks, 1, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
    for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
  });
}

TEST(ParallelMapReduce, SumsInIndexOrderRegardlessOfThreads) {
  // The partial vectors are concatenated in chunk order, so the result must
  // be the identity permutation for every thread count.
  for (const std::size_t threads : {1u, 2u, 5u}) {
    with_threads(threads, [] {
      const auto ordered = parallel_map_reduce(
          0, 103, 10, std::vector<std::size_t>{},
          [](std::size_t lo, std::size_t hi) {
            std::vector<std::size_t> part;
            for (std::size_t i = lo; i < hi; ++i) part.push_back(i);
            return part;
          },
          [](std::vector<std::size_t> acc, std::vector<std::size_t> part) {
            acc.insert(acc.end(), part.begin(), part.end());
            return acc;
          });
      ASSERT_EQ(ordered.size(), 103u);
      for (std::size_t i = 0; i < ordered.size(); ++i) EXPECT_EQ(ordered[i], i);
    });
  }
}

TEST(ParallelMapReduce, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  // Awkwardly-scaled addends make the sum order-sensitive; identical results
  // across thread counts prove the reduction order is fixed.
  std::vector<double> values(1000);
  Rng rng(99);
  for (auto& v : values) v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform_int(-8, 8));
  auto run = [&] {
    return parallel_map_reduce(
        0, values.size(), 13, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](double acc, double part) { return acc + part; });
  };
  set_global_threads(1);
  const double serial = run();
  set_global_threads(2);
  const double two = run();
  set_global_threads(8);
  const double eight = run();
  set_global_threads(0);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(ParallelMapReduce, EmptyRangeReturnsInit) {
  with_threads(4, [] {
    const int v = parallel_map_reduce(
        3, 3, 1, 42, [](std::size_t, std::size_t) { return 0; },
        [](int a, int b) { return a + b; });
    EXPECT_EQ(v, 42);
  });
}

TEST(GlobalThreads, SetAndAutoResolve) {
  set_global_threads(3);
  EXPECT_EQ(global_threads(), 3u);
  // 0 = auto: the TRAJKIT_THREADS env override wins when set.
  setenv("TRAJKIT_THREADS", "5", 1);
  set_global_threads(0);
  EXPECT_EQ(global_threads(), 5u);
  unsetenv("TRAJKIT_THREADS");
  set_global_threads(0);
  EXPECT_GE(global_threads(), 1u);
}

TEST(GlobalThreads, RejectsReconfigurationInsideRegion) {
  with_threads(2, [] {
    EXPECT_THROW(parallel_for(0, 4, 1, [&](std::size_t) { set_global_threads(3); }),
                 std::logic_error);
  });
}

TEST(RngSubstream, IsAPureFunctionOfKeyAndIndex) {
  Rng a = Rng::substream(123, 7);
  Rng b = Rng::substream(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngSubstream, AdjacentIndicesAreDecorrelated) {
  // Distinct streams and no obvious collisions over a modest window.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    firsts.insert(Rng::substream(42, i).next());
  }
  EXPECT_EQ(firsts.size(), 1000u);
  // Crude uniformity check on the leading bit of each stream's first draw.
  int ones = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ones += (Rng::substream(7, i).next() >> 63) & 1;
  }
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 600);
}

TEST(RngSubstream, DoesNotPerturbParentStream) {
  Rng parent1(5);
  Rng parent2(5);
  (void)Rng::substream(parent1.next(), 0);
  (void)parent2.next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(parent1.next(), parent2.next());
}

}  // namespace
}  // namespace trajkit
