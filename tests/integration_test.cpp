// End-to-end integration: the paper's full attack/defense story on one
// shared (small) world.
//
//   1. provider trains motion classifiers on real vs naive fakes — naive
//      attacks are caught;
//   2. attacker runs the C&W replay attack against classifier C — the
//      adversarial forgeries now pass C *and transfer* to models the
//      attacker never saw;
//   3. provider deploys the RSSI defense — the same class of forgeries is
//      caught again.
#include <gtest/gtest.h>

#include "core/motion_pipeline.hpp"
#include "core/rssi_pipeline.hpp"
#include "core/scenario.hpp"
#include "attack/cw.hpp"
#include "attack/mind.hpp"
#include "support/fixtures.hpp"

namespace trajkit {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The shared small walking-mode world from the test toolkit.
    scenario_ = new core::Scenario(test_support::small_scenario_config());

    core::MotionDatasetConfig dcfg;
    dcfg.train_real = 260;
    dcfg.train_fake = 160;
    dcfg.test_real = 40;
    dcfg.test_fake = 40;
    dcfg.points = 40;
    dataset_ = new core::MotionDataset(core::build_motion_dataset(*scenario_, dcfg));

    core::MotionModelConfig mcfg;
    mcfg.hidden = 24;
    mcfg.epochs = 32;
    models_ = new core::MotionModels(*dataset_, mcfg);
  }

  static void TearDownTestSuite() {
    delete models_;
    delete dataset_;
    delete scenario_;
  }

  static core::Scenario* scenario_;
  static core::MotionDataset* dataset_;
  static core::MotionModels* models_;
};

core::Scenario* EndToEnd::scenario_ = nullptr;
core::MotionDataset* EndToEnd::dataset_ = nullptr;
core::MotionModels* EndToEnd::models_ = nullptr;

TEST_F(EndToEnd, Step1_NaiveAttacksAreCaught) {
  const auto evals = core::evaluate_models(*models_, dataset_->test);
  for (const auto& eval : evals) {
    EXPECT_GT(eval.confusion.accuracy(), 0.8) << eval.name;
  }
}

TEST_F(EndToEnd, Step2_AdversarialForgeryPassesAndTransfers) {
  attack::CwConfig cfg;
  cfg.iterations = 350;
  const attack::CwAttacker attacker(models_->model_c(), models_->dist_angle_encoder(),
                                    cfg);

  int fooled_c = 0;
  int fooled_transfer = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    const auto hist =
        scenario_->real_trajectories(1, 40, 1.0).front().reported.to_enu(
            sim::sim_projection());
    const auto forged = attacker.forge_replay(hist, attack::paper_mind(Mode::kWalking));
    if (!forged.adversarial) continue;
    ++fooled_c;

    core::MotionSample sample;
    sample.points = forged.points;
    sample.trajectory =
        Trajectory::from_enu(forged.points, sim::sim_projection(), Mode::kWalking, 1.0);
    sample.label = 0;
    // Transfer: LSTM-1 and LSTM-2 never saw these adversarial examples.
    const auto preds = models_->predict_all(sample);
    if (preds[2] == 1 || preds[3] == 1) ++fooled_transfer;
  }
  EXPECT_GE(fooled_c, trials - 1);         // C is directly attacked
  EXPECT_GE(fooled_transfer, trials / 2);  // transferability (Table II shape)
}

TEST_F(EndToEnd, Step3_RssiDefenseCatchesForgeries) {
  core::RssiExperimentConfig cfg;
  cfg.total = 400;
  cfg.points = 24;
  const auto result = core::run_rssi_experiment(*scenario_, cfg);
  // Detection well above chance at this scale; the paper-scale benches push
  // this above 0.9 (see bench_table4).
  EXPECT_GT(result.confusion.accuracy(), 0.68);
  EXPECT_GT(result.confusion.recall(), 0.6);
}

TEST_F(EndToEnd, ForgedTrajectoriesRemainRouteRational) {
  attack::CwConfig cfg;
  cfg.iterations = 250;
  const attack::CwAttacker attacker(models_->model_c(), models_->dist_angle_encoder(),
                                    cfg);
  const auto traj = scenario_->real_trajectories(1, 40, 1.0).front();
  const auto hist = traj.reported.to_enu(sim::sim_projection());
  const auto forged = attacker.forge_replay(hist, attack::paper_mind(Mode::kWalking));

  // The forgery must stay within GPS-plausible distance of the road system.
  double worst = 0.0;
  for (const auto& p : forged.points) {
    worst = std::max(worst, scenario_->network().distance_to_network(p));
  }
  EXPECT_LT(worst, 12.0);
}

}  // namespace
}  // namespace trajkit
