// Equivalence guarantees for the deprecated single-shot detector API: every
// wrapper (features / predict_proba / verify / point_scores) must agree
// exactly with the corresponding field of analyze()'s VerdictReport, for any
// upload — the wrappers are documented as thin views over analyze and the
// migration away from them relies on that being true.
//
// Property-style: instead of one hand-built upload, sweep a stream of random
// real and forged uploads from the shared linear-field world through every
// wrapper.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "support/fixtures.hpp"
#include "wifi/detector.hpp"

namespace trajkit::wifi {
namespace {

namespace ts = test_support;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Equivalence, WrappersMatchAnalyzeAcrossRandomUploads) {
  ts::LinearFieldWorld w;
  RssiDetector& detector = w.detector();
  Rng rng(1001);  // caller-owned stream: the sweep, not the world fixture
  for (int trial = 0; trial < 12; ++trial) {
    const auto upload = w.upload(trial % 2 == 0, rng);
    const auto report = detector.analyze(upload);
    SCOPED_TRACE("trial " + std::to_string(trial));
    EXPECT_EQ(detector.features(upload), report.features);
    EXPECT_DOUBLE_EQ(detector.predict_proba(upload), report.p_real);
    EXPECT_EQ(detector.verify(upload), report.verdict);
    EXPECT_EQ(detector.point_scores(upload), report.point_scores);
    EXPECT_EQ(report.threshold, detector.config().threshold);
  }
}

TEST(Equivalence, ThresholdedVerifyMatchesReportProbability) {
  ts::LinearFieldWorld w;
  RssiDetector& detector = w.detector();
  Rng rng(2002);
  for (int trial = 0; trial < 6; ++trial) {
    const auto upload = w.upload(trial % 2 == 0, rng);
    const double p = detector.analyze(upload).p_real;
    for (const double threshold : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      EXPECT_EQ(detector.verify(upload, threshold), p >= threshold ? 1 : 0)
          << "trial " << trial << " threshold " << threshold;
    }
    // The exact-boundary case is inclusive: p >= threshold passes.
    EXPECT_EQ(detector.verify(upload, p), 1);
  }
}

TEST(Equivalence, PointScoresAreUntrainedSafeAndUnchangedByTraining) {
  // point_scores only needs the reference index, so it must work before
  // train() — and training must not change it (the classifier sits beside
  // the confidence pipeline, not inside it).
  Rng rng(55);
  std::vector<ReferencePoint> history;
  for (int i = 0; i < 400; ++i) {
    const Enu p{rng.uniform(0, 30), rng.uniform(0, 30)};
    history.push_back({p, {{1, ts::LinearFieldWorld::field_rssi(p)}}, kNoTrajectory});
  }
  RssiDetectorConfig cfg;
  cfg.classifier.num_trees = 8;
  RssiDetector detector(history, cfg);

  auto make_upload = [&](bool real) {
    ScannedUpload u;
    for (int j = 0; j < 4; ++j) {
      const Enu p{rng.uniform(5, 25), rng.uniform(5, 25)};
      u.positions.push_back(p);
      const Enu heard = real ? p : Enu{p.east + 12.0, p.north};
      u.scans.push_back({{1, ts::LinearFieldWorld::field_rssi(heard)}});
    }
    return u;
  };

  const auto probe = make_upload(true);
  const auto before = detector.point_scores(probe);  // untrained: must not throw
  ASSERT_EQ(before.size(), probe.positions.size());

  std::vector<ScannedUpload> train;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    train.push_back(make_upload(true));
    labels.push_back(1);
    train.push_back(make_upload(false));
    labels.push_back(0);
  }
  detector.train(train, labels);
  EXPECT_EQ(detector.analyze(probe).point_scores, before);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace trajkit::wifi
