// Equivalence guarantees for the split detector surface: the geo-shard /
// serving decomposition segment_features() + classify_features() must agree
// exactly with the single-shot analyze() for any upload — the sharded router
// and the hot-swap oracle comparisons rely on that being true bit for bit.
//
// Property-style: instead of one hand-built upload, sweep a stream of random
// real and forged uploads from the shared linear-field world through both
// paths.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "support/fixtures.hpp"
#include "wifi/detector.hpp"

namespace trajkit::wifi {
namespace {

namespace ts = test_support;

TEST(Equivalence, SplitPipelineMatchesAnalyzeAcrossRandomUploads) {
  ts::LinearFieldWorld w;
  RssiDetector& detector = w.detector();
  Rng rng(1001);  // caller-owned stream: the sweep, not the world fixture
  for (int trial = 0; trial < 12; ++trial) {
    const auto upload = w.upload(trial % 2 == 0, rng);
    const auto report = detector.analyze(upload);
    SCOPED_TRACE("trial " + std::to_string(trial));

    std::vector<double> features;
    std::vector<double> scores;
    detector.segment_features(upload, features, scores);
    EXPECT_EQ(features, report.features);
    EXPECT_EQ(scores, report.point_scores);

    const auto merged = detector.classify_features(features, scores);
    EXPECT_EQ(merged.verdict, report.verdict);
    EXPECT_DOUBLE_EQ(merged.p_real, report.p_real);
    EXPECT_EQ(merged.features, report.features);
    EXPECT_EQ(merged.point_scores, report.point_scores);
    EXPECT_EQ(report.threshold, detector.config().threshold);
  }
}

TEST(Equivalence, VerdictIsInclusiveAtTheConfiguredThreshold) {
  // verdict = 1 iff p_real >= threshold, for whatever threshold the detector
  // was configured with — including the exact-boundary case.
  ts::LinearFieldWorld w;
  RssiDetector& detector = w.detector();
  Rng rng(2002);
  for (int trial = 0; trial < 6; ++trial) {
    const auto upload = w.upload(trial % 2 == 0, rng);
    const auto report = detector.analyze(upload);
    EXPECT_EQ(report.verdict, report.p_real >= report.threshold ? 1 : 0)
        << "trial " << trial;
  }
}

TEST(Equivalence, SegmentFeaturesAreUntrainedSafeAndUnchangedByTraining) {
  // segment_features only needs the reference index, so it must work before
  // train() — and training must not change it (the classifier sits beside
  // the confidence pipeline, not inside it).
  Rng rng(55);
  std::vector<ReferencePoint> history;
  for (int i = 0; i < 400; ++i) {
    const Enu p{rng.uniform(0, 30), rng.uniform(0, 30)};
    history.push_back({p, {{1, ts::LinearFieldWorld::field_rssi(p)}}, kNoTrajectory});
  }
  RssiDetectorConfig cfg;
  cfg.classifier.num_trees = 8;
  RssiDetector detector(history, cfg);

  auto make_upload = [&](bool real) {
    ScannedUpload u;
    for (int j = 0; j < 4; ++j) {
      const Enu p{rng.uniform(5, 25), rng.uniform(5, 25)};
      u.positions.push_back(p);
      const Enu heard = real ? p : Enu{p.east + 12.0, p.north};
      u.scans.push_back({{1, ts::LinearFieldWorld::field_rssi(heard)}});
    }
    return u;
  };

  const auto probe = make_upload(true);
  std::vector<double> features;
  std::vector<double> before;
  detector.segment_features(probe, features, before);  // untrained: must not throw
  ASSERT_EQ(before.size(), probe.positions.size());

  std::vector<ScannedUpload> train;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    train.push_back(make_upload(true));
    labels.push_back(1);
    train.push_back(make_upload(false));
    labels.push_back(0);
  }
  detector.train(train, labels);
  EXPECT_EQ(detector.analyze(probe).point_scores, before);
}

}  // namespace
}  // namespace trajkit::wifi
