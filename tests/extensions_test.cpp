// Extensions beyond the paper's core: the accelerometer side-channel and
// consistency check, and the black-box SPSA attack.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/naive.hpp"
#include "attack/replay.hpp"
#include "attack/spsa.hpp"
#include "baseline/accel_check.hpp"
#include "common/stats.hpp"
#include "core/motion_pipeline.hpp"
#include "core/scenario.hpp"
#include "sim/accelerometer.hpp"

namespace trajkit {
namespace {

TEST(Accelerometer, ConstantSpeedReadsNearBounceFloor) {
  Rng rng(1);
  std::vector<Enu> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({i * 1.4, 0.0});
  const auto accel =
      sim::synthesize_accelerometer(pts, 1.0, Mode::kDriving, {}, rng);
  ASSERT_EQ(accel.size(), 50u);
  double total = 0.0;
  for (double a : accel) {
    EXPECT_GE(a, 0.0);
    total += a;
  }
  // Driving bounce floor is 0.05; constant speed => tiny readings.
  EXPECT_LT(total / 50.0, 0.4);
}

TEST(Accelerometer, SpeedChangeShowsUp) {
  Rng rng(2);
  std::vector<Enu> pts;
  double x = 0.0;
  for (int i = 0; i < 40; ++i) {
    x += i < 20 ? 1.0 : 3.0;  // speed jumps from 1 to 3 m/s at i = 20
    pts.push_back({x, 0.0});
  }
  const auto accel =
      sim::synthesize_accelerometer(pts, 1.0, Mode::kDriving, {}, rng);
  EXPECT_GT(accel[20], 1.0);  // the 2 m/s^2 jump at sample 20 dominates noise
  EXPECT_LT(accel[10], 1.0);
}

TEST(Accelerometer, ValidatesInput) {
  Rng rng(3);
  EXPECT_THROW(sim::synthesize_accelerometer({{0, 0}, {1, 0}}, 1.0, Mode::kWalking,
                                             {}, rng),
               std::invalid_argument);
  EXPECT_THROW(sim::synthesize_accelerometer({{0, 0}, {1, 0}, {2, 0}}, 0.0,
                                             Mode::kWalking, {}, rng),
               std::invalid_argument);
}

TEST(AccelCheck, GenuineUploadsBeatFabricatedSensorData) {
  // Genuine: IMU synthesised from the true motion; fabricated: all-zero
  // sensor stream with a constant-speed navigation fake.
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  Rng rng(4);
  const baseline::AccelConsistencyCheck check({.tolerance_mps2 = 1.0});

  std::vector<double> genuine_gaps;
  std::vector<double> fabricated_gaps;
  for (int i = 0; i < 10; ++i) {
    const auto real = scenario.real_trajectories(1, 40, 1.0).front();
    const auto accel =
        sim::synthesize_accelerometer(real.true_positions, 1.0, Mode::kWalking, {}, rng);
    genuine_gaps.push_back(check.mean_gap_mps2(
        real.reported.to_enu(sim::sim_projection()), accel, 1.0));

    const auto nav = scenario.navigation_trajectories(1, 40, 1.0).front();
    const auto positions = attack::naive_noise_attack(
        nav.reported.to_enu(sim::sim_projection()), rng);
    const std::vector<double> zeros(positions.size(), 0.0);
    fabricated_gaps.push_back(check.mean_gap_mps2(positions, zeros, 1.0));
  }
  // Fabricated sensor streams are systematically less consistent.
  EXPECT_GT(mean(fabricated_gaps), mean(genuine_gaps));
}

TEST(AccelCheck, ReplayedSensorStreamEscapes) {
  // A full replay (positions smoothly perturbed, IMU stream replayed) stays
  // kinematically consistent — the check cannot catch it, which is the
  // paper's motivation for the RSSI defense.
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  Rng rng(5);
  const baseline::AccelConsistencyCheck check;

  const auto real = scenario.real_trajectories(1, 40, 1.0).front();
  const auto accel =
      sim::synthesize_accelerometer(real.true_positions, 1.0, Mode::kWalking, {}, rng);
  const auto genuine_gap = check.mean_gap_mps2(
      real.reported.to_enu(sim::sim_projection()), accel, 1.0);

  const auto forged_positions = attack::smooth_replay_perturbation(
      real.reported.to_enu(sim::sim_projection()), 1.3, rng, 0.997);
  const auto replay_gap = check.mean_gap_mps2(forged_positions, accel, 1.0);
  // Smooth perturbation adds almost no second-derivative energy.
  EXPECT_LT(replay_gap, genuine_gap + 0.3);
}

TEST(AccelCheck, ValidatesInput) {
  const baseline::AccelConsistencyCheck check;
  EXPECT_THROW(check.verify({{0, 0}, {1, 0}}, {0.0, 0.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(check.verify({{0, 0}, {1, 0}, {2, 0}}, {0.0, 0.0, 0.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(baseline::AccelConsistencyCheck({.tolerance_mps2 = 0.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SPSA black-box attack.

TEST(Spsa, MaximisesSmoothSyntheticOracle) {
  // Oracle: score peaks when every interior point sits at north = +2.
  const std::size_t n = 10;
  std::vector<Enu> reference;
  for (std::size_t i = 0; i < n; ++i) {
    reference.push_back({static_cast<double>(i) * 3.0, 0.0});
  }
  const auto oracle = [](const std::vector<Enu>& pts) {
    double penalty = 0.0;
    for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
      penalty += (pts[i].north - 2.0) * (pts[i].north - 2.0);
    }
    return std::exp(-penalty / static_cast<double>(pts.size()));
  };

  attack::SpsaConfig cfg;
  cfg.steps = 400;
  cfg.epsilon_m = 3.0;
  const auto result = attack::spsa_attack(reference, oracle, cfg);
  EXPECT_TRUE(result.succeeded);
  EXPECT_GT(result.final_score, oracle(reference));
  // Endpoints pinned and the box respected.
  EXPECT_EQ(result.points.front(), reference.front());
  EXPECT_EQ(result.points.back(), reference.back());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(std::fabs(result.points[i].north - reference[i].north), 3.0 + 1e-9);
  }
}

TEST(Spsa, CountsQueries) {
  std::vector<Enu> reference = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::size_t calls = 0;
  const auto oracle = [&calls](const std::vector<Enu>&) {
    ++calls;
    return 0.0;  // never adversarial: runs the full budget
  };
  attack::SpsaConfig cfg;
  cfg.steps = 10;
  const auto result = attack::spsa_attack(reference, oracle, cfg);
  EXPECT_EQ(result.queries, calls);
  EXPECT_FALSE(result.succeeded);
  EXPECT_GE(calls, 30u);  // 3 oracle calls per step + final
}

TEST(Spsa, ValidatesInput) {
  const auto oracle = [](const std::vector<Enu>&) { return 0.0; };
  EXPECT_THROW(attack::spsa_attack({{0, 0}, {1, 0}}, oracle, {}),
               std::invalid_argument);
  EXPECT_THROW(
      attack::spsa_attack({{0, 0}, {1, 0}, {2, 0}}, attack::ScoreOracle{}, {}),
      std::invalid_argument);
  attack::SpsaConfig bad;
  bad.steps = 0;
  EXPECT_THROW(attack::spsa_attack({{0, 0}, {1, 0}, {2, 0}}, oracle, bad),
               std::invalid_argument);
}

TEST(Spsa, BeatsRealDetectorThroughScoresOnly) {
  // Black-box attack against a genuinely trained LSTM oracle: no gradients,
  // only p(real) queries.
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  core::MotionDatasetConfig dcfg;
  dcfg.train_real = 120;
  dcfg.train_fake = 80;
  dcfg.test_real = 10;
  dcfg.test_fake = 10;
  dcfg.points = 32;
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  core::MotionModelConfig mcfg;
  mcfg.hidden = 16;
  mcfg.epochs = 20;
  const core::MotionModels models(dataset, mcfg);

  const auto& model = models.model_c();
  const auto& encoder = models.dist_angle_encoder();
  const auto oracle = [&](const std::vector<Enu>& pts) {
    return model.predict_proba(encoder.encode(pts));
  };

  // Start from a flagged naive replay.
  Rng rng(6);
  std::size_t wins = 0;
  for (int trial = 0; trial < 4; ++trial) {
    auto reference = scenario.real_trajectories(1, dcfg.points, 1.0)
                         .front()
                         .reported.to_enu(sim::sim_projection());
    reference = attack::naive_noise_attack(reference, rng);
    if (oracle(reference) >= 0.5) continue;  // already passes; trivial
    attack::SpsaConfig cfg;
    cfg.steps = 250;
    cfg.seed = static_cast<std::uint64_t>(trial) + 11;
    const auto result = attack::spsa_attack(reference, oracle, cfg);
    wins += result.succeeded;
  }
  EXPECT_GE(wins, 1u);  // black-box attacks work, just less reliably than C&W
}

}  // namespace
}  // namespace trajkit
