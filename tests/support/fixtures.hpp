// Shared test fixtures and property-based generators.
//
// Before this toolkit existed, serve_test, wifi_test and determinism_test
// each carried a private copy of the same synthetic world: a linear RSSI
// field over a small area, real uploads scanned where they claim to be, and
// fakes whose claimed positions are shifted east of where the (genuine)
// scans were heard.  The copies drifted in area size, shift distance and
// training volume, so a fixture bug had to be fixed N times.  This header is
// the one copy, parameterised:
//
//   * LinearFieldWorld — the cheap analytic world (field value = -40 - east
//     dBm) with a trained detector and real/forged upload generators.  Fully
//     deterministic for a fixed config, which is what lets golden_test pin
//     its feature vectors.
//   * ScenarioServiceWorld — the expensive simulator-backed world
//     (core::Scenario) with a trained detector and a mixed probe set, the
//     shape the serving determinism and chaos tests drive.
//   * random_walk_enu / random_upload_pair — property-style generators for
//     tests that sweep many random inputs rather than one fixture.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/rssi_pipeline.hpp"
#include "core/scenario.hpp"
#include "wifi/detector.hpp"

namespace trajkit::test_support {

// ---------------------------------------------------------------------------
// Linear-field world

struct LinearWorldConfig {
  std::uint64_t seed = 7;
  double area_m = 30.0;       ///< world is [0, area_m]^2
  double margin_m = 2.0;      ///< uploads keep this far from the edges
  int history_points = 600;   ///< crowdsourced reference points
  std::uint32_t points_per_trajectory = 10;  ///< history traj-id granularity
  std::size_t upload_points = 6;             ///< points per generated upload
  double fake_shift_m = 15.0; ///< forged scans heard this far east of claim
  int train_pairs = 30;       ///< (real, fake) pairs used to train
  int trees = 15;             ///< classifier size
  double reference_radius_m = 3.0;
  int top_k = 2;
};

class LinearFieldWorld {
 public:
  LinearFieldWorld() : LinearFieldWorld(LinearWorldConfig{}) {}
  explicit LinearFieldWorld(const LinearWorldConfig& config);

  /// The analytic RSSI field: 1 dB per metre east.
  static int field_rssi(const Enu& p);

  /// Draw an upload from the world's own stream (stateful, deterministic in
  /// call order).
  wifi::ScannedUpload upload(bool real);
  /// Draw an upload from a caller-owned stream (property-based sweeps).
  wifi::ScannedUpload upload(bool real, Rng& rng) const;
  /// n uploads alternating real/forged, starting real.
  std::vector<wifi::ScannedUpload> probe_mix(std::size_t n);

  wifi::RssiDetector& detector() { return *detector_; }
  const LinearWorldConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

 private:
  LinearWorldConfig config_;
  Rng rng_;
  std::unique_ptr<wifi::RssiDetector> detector_;
};

// ---------------------------------------------------------------------------
// Scenario-backed serving world

struct ScenarioWorldConfig {
  std::size_t total = 12;      ///< scanned trajectories collected
  std::size_t points = 15;     ///< points per trajectory
  double interval_s = 2.0;
  std::size_t history = 9;     ///< collected[0, history) become the store
  int trees = 10;
  std::size_t fresh_probes = 3;   ///< collected tail served as real probes
  std::size_t forged_probes = 3;  ///< forged replays of history as probes
  double forge_offset_m = 2.0;
};

/// Simulator world + trained detector + probe mix, built once and shared by
/// the serving determinism and chaos tests (and mirroring bench_serve).
struct ScenarioServiceWorld {
  ScenarioServiceWorld() : ScenarioServiceWorld(ScenarioWorldConfig{}) {}
  explicit ScenarioServiceWorld(const ScenarioWorldConfig& config);

  std::unique_ptr<core::Scenario> scenario;
  std::unique_ptr<wifi::RssiDetector> detector;
  std::vector<wifi::ScannedUpload> probes;
};

/// The shared small walking-mode scenario (integration/determinism tests).
core::ScenarioConfig small_scenario_config();

// ---------------------------------------------------------------------------
// Property-style generators

/// Random-walk ENU trajectory: n points, uniform step length in
/// [0, max_step_m], uniform heading, starting at `start`.
std::vector<Enu> random_walk_enu(Rng& rng, std::size_t n, double max_step_m,
                                 Enu start = {});

}  // namespace trajkit::test_support
