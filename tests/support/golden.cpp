#include "support/golden.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef TRAJKIT_GOLDEN_DIR
#error "TRAJKIT_GOLDEN_DIR must be defined by the build (see tests/CMakeLists.txt)"
#endif

namespace trajkit::test_support {
namespace {

std::string first_divergence(const std::string& want, const std::string& got) {
  std::istringstream ws(want);
  std::istringstream gs(got);
  std::string wline;
  std::string gline;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool have_w = static_cast<bool>(std::getline(ws, wline));
    const bool have_g = static_cast<bool>(std::getline(gs, gline));
    if (!have_w && !have_g) return "contents identical (trailing bytes differ?)";
    if (wline != gline || have_w != have_g) {
      std::ostringstream out;
      out << "first divergence at line " << line << ":\n  golden: "
          << (have_w ? wline : "<eof>") << "\n  actual: "
          << (have_g ? gline : "<eof>");
      return out.str();
    }
  }
}

}  // namespace

std::string golden_dir() { return TRAJKIT_GOLDEN_DIR; }

bool update_golden_mode() {
  const char* env = std::getenv("TRAJKIT_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

::testing::AssertionResult matches_golden(const std::string& name,
                                          const std::string& actual) {
  const std::string path = golden_dir() + "/" + name;
  if (update_golden_mode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return ::testing::AssertionFailure()
             << "cannot write golden file " << path;
    }
    out << actual;
    return ::testing::AssertionSuccess() << "golden file " << name << " updated";
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ::testing::AssertionFailure()
           << "missing golden file " << path
           << " — regenerate with: TRAJKIT_UPDATE_GOLDEN=1 ctest -R Golden";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string want = buf.str();
  if (want == actual) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "golden mismatch for " << name << " (" << first_divergence(want, actual)
         << ")\nif the change is intentional, regenerate with: "
            "TRAJKIT_UPDATE_GOLDEN=1 ctest -R Golden and review the diff";
}

std::string canonical_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace trajkit::test_support
