#include "support/crash.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace trajkit::test_support {

std::string ChildResult::describe() const {
  if (exited) return "exited with code " + std::to_string(exit_code);
  return "killed by signal " + std::to_string(signal);
}

ChildResult run_in_child(const std::function<void()>& body) {
  ChildResult result;
  const pid_t pid = ::fork();
  if (pid < 0) {
    // Report as a bogus non-exit; the caller's assertion will print it.
    result.signal = -1;
    return result;
  }
  if (pid == 0) {
    // Child: run the body and _exit without ever unwinding back into gtest.
    try {
      body();
    } catch (...) {
      ::_exit(70);
    }
    ::_exit(0);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    result.signal = -2;
    return result;
  }
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signal = WTERMSIG(status);
  }
  return result;
}

ChildResult crash_child_at(const std::string& point,
                           const std::function<void()>& body,
                           std::uint64_t seed) {
  return run_in_child([&] {
    // Armed directly (not via FaultScope): the child never returns, so RAII
    // cleanup would be dead code, and the parent's injector is untouched.
    global_faults().configure(seed);
    global_faults().arm(point,
                        {.fail_first = 1, .action = FaultAction::kCrash});
    body();
  });
}

FileImage snapshot_file(const std::string& path) {
  FileImage image;
  std::ifstream is(path, std::ios::binary);
  if (!is) return image;
  std::ostringstream buf;
  buf << is.rdbuf();
  image.exists = true;
  image.bytes = buf.str();
  return image;
}

}  // namespace trajkit::test_support
