// Kill-at-fault-point crash harness.
//
// The durability contract ("a crash at any byte leaves either the pre-image
// or the post-image") cannot be proven in-process: a real crash takes the
// page cache, the stack and every destructor with it.  So the harness forks:
// the child arms one named fault point with FaultAction::kCrash
// (fail_first = 1 — the first hit _exit()s the process, no unwinding, no
// flushes) and runs the operation under test; the parent reaps it, asserts
// it died at the injected point (exit code kCrashExitCode) and then examines
// the surviving on-disk state from a process that never saw the crash.
//
// Children must treat themselves as I/O-only: build all worlds/models in the
// parent *before* forking, and never create threads in the child.
#pragma once

#include <functional>
#include <string>

#include "common/fault.hpp"

namespace trajkit::test_support {

/// How a forked child terminated.
struct ChildResult {
  bool exited = false;   ///< normal exit (vs signal)
  int exit_code = -1;    ///< WEXITSTATUS when exited
  int signal = 0;        ///< terminating signal when !exited

  /// Child died exactly at an armed kCrash fault point.
  bool crashed_at_point() const { return exited && exit_code == kCrashExitCode; }
  /// Child ran to completion (body returned normally).
  bool completed() const { return exited && exit_code == 0; }

  std::string describe() const;
};

/// Fork and run `body` in the child.  The child _exit(0)s when body returns,
/// _exit(70) on an escaped exception.  Returns how the child died.
ChildResult run_in_child(const std::function<void()>& body);

/// Fork a child that arms `point` with {fail_first = 1, kCrash} under the
/// given fault seed and then runs `body`: the first operation to consult the
/// point dies mid-flight.  A point the body never reaches yields completed().
ChildResult crash_child_at(const std::string& point,
                           const std::function<void()>& body,
                           std::uint64_t seed = 1);

/// Slurp a file; empty-with-flag when it does not exist (distinguishes "no
/// file" from "empty file" for pre/post-image comparisons).
struct FileImage {
  bool exists = false;
  std::string bytes;

  friend bool operator==(const FileImage&, const FileImage&) = default;
};
FileImage snapshot_file(const std::string& path);

}  // namespace trajkit::test_support
