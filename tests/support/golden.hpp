// Golden-file helper for regression pinning.
//
// A golden test renders some deterministic artifact (a feature vector, a
// canonical verdict payload) to text and compares it byte-for-byte against a
// committed file under tests/golden/.  Because the toolchain and machine are
// fixed for this repo, bit-exact floating-point goldens are safe to bake.
//
// Workflow:
//   * normal run      — mismatch fails the test and prints a unified-ish diff
//     (first differing line) plus the regeneration command;
//   * TRAJKIT_UPDATE_GOLDEN=1 ctest -R Golden — rewrites every golden file
//     from the current build and passes.  Inspect the git diff before
//     committing: an unexpected change here means the numeric contract moved.
//
// The golden directory is injected at compile time (TRAJKIT_GOLDEN_DIR points
// at the source tree, not the build tree) so updates land in version control.
#pragma once

#include <gtest/gtest.h>

#include <string>

namespace trajkit::test_support {

/// Absolute path of the committed golden directory.
std::string golden_dir();

/// True when TRAJKIT_UPDATE_GOLDEN is set to a non-empty, non-"0" value.
bool update_golden_mode();

/// Compare `actual` against tests/golden/<name>.  In update mode, (re)writes
/// the file instead and succeeds.
::testing::AssertionResult matches_golden(const std::string& name,
                                          const std::string& actual);

/// Render a double exactly as the serving layer's canonical payloads do
/// (%.17g — round-trips the bit pattern), so goldens and payloads agree on
/// formatting.
std::string canonical_double(double value);

}  // namespace trajkit::test_support
