#include "support/fixtures.hpp"

#include <cmath>
#include <utility>

namespace trajkit::test_support {

LinearFieldWorld::LinearFieldWorld(const LinearWorldConfig& config)
    : config_(config), rng_(config.seed) {
  std::vector<wifi::ReferencePoint> history;
  for (int i = 0; i < config_.history_points; ++i) {
    const Enu p{rng_.uniform(0, config_.area_m), rng_.uniform(0, config_.area_m)};
    history.push_back({p,
                       {{1, field_rssi(p)}},
                       static_cast<std::uint32_t>(i) / config_.points_per_trajectory});
  }
  wifi::RssiDetectorConfig cfg;
  cfg.confidence.reference_radius_m = config_.reference_radius_m;
  cfg.confidence.top_k = config_.top_k;
  cfg.classifier.num_trees = config_.trees;
  detector_ = std::make_unique<wifi::RssiDetector>(std::move(history), cfg);

  std::vector<wifi::ScannedUpload> train;
  std::vector<int> labels;
  for (int i = 0; i < config_.train_pairs; ++i) {
    train.push_back(upload(true));
    labels.push_back(1);
    train.push_back(upload(false));
    labels.push_back(0);
  }
  detector_->train(train, labels);
}

int LinearFieldWorld::field_rssi(const Enu& p) {
  return static_cast<int>(std::lround(-40.0 - p.east));
}

wifi::ScannedUpload LinearFieldWorld::upload(bool real) {
  return upload(real, rng_);
}

wifi::ScannedUpload LinearFieldWorld::upload(bool real, Rng& rng) const {
  const double lo = config_.margin_m;
  const double hi = config_.area_m - config_.margin_m;
  wifi::ScannedUpload u;
  for (std::size_t j = 0; j < config_.upload_points; ++j) {
    const Enu p{rng.uniform(lo, hi), rng.uniform(lo, hi)};
    u.positions.push_back(p);
    const Enu heard = real ? p : Enu{p.east + config_.fake_shift_m, p.north};
    u.scans.push_back({{1, field_rssi(heard)}});
  }
  return u;
}

std::vector<wifi::ScannedUpload> LinearFieldWorld::probe_mix(std::size_t n) {
  std::vector<wifi::ScannedUpload> probes;
  probes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) probes.push_back(upload(i % 2 == 0));
  return probes;
}

ScenarioServiceWorld::ScenarioServiceWorld(const ScenarioWorldConfig& config) {
  scenario = std::make_unique<core::Scenario>(small_scenario_config());
  const auto batch =
      scenario->scanned_real(config.total, config.points, config.interval_s);
  Rng& rng = scenario->rng();

  std::vector<wifi::ScannedUpload> history;
  for (std::size_t i = 0; i < config.history; ++i) {
    history.push_back(core::to_upload(batch[i]));
  }
  wifi::RssiDetectorConfig cfg;
  cfg.classifier.num_trees = config.trees;
  detector = std::make_unique<wifi::RssiDetector>(wifi::flatten_history(history), cfg);

  std::vector<wifi::ScannedUpload> train;
  std::vector<int> labels;
  for (std::size_t i = 0; i < config.history; ++i) {
    auto upload = core::to_upload(batch[i]);
    upload.source_traj_id = static_cast<std::uint32_t>(i);
    train.push_back(std::move(upload));
    labels.push_back(1);
  }
  for (std::size_t i = config.history; i < config.total; ++i) {
    train.push_back(core::forge_upload(batch[i], config.forge_offset_m, 1, rng));
    labels.push_back(0);
  }
  detector->train(train, labels);

  for (std::size_t i = 0; i < config.fresh_probes; ++i) {
    probes.push_back(core::to_upload(batch[config.history + i]));
  }
  for (std::size_t i = 0; i < config.forged_probes; ++i) {
    probes.push_back(core::forge_upload(batch[i], config.forge_offset_m, 1, rng));
  }
}

core::ScenarioConfig small_scenario_config() {
  return core::ScenarioConfig::for_mode(Mode::kWalking);
}

std::vector<Enu> random_walk_enu(Rng& rng, std::size_t n, double max_step_m,
                                 Enu start) {
  std::vector<Enu> pts;
  pts.reserve(n);
  Enu p = start;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(p);
    const double step = rng.uniform(0.0, max_step_m);
    const double heading = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    p.east += step * std::cos(heading);
    p.north += step * std::sin(heading);
  }
  return pts;
}

}  // namespace trajkit::test_support
