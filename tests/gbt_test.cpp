// Gradient-boosted trees: binning, single-tree fitting, booster learning,
// feature importance and serialisation.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "gbt/binning.hpp"
#include "gbt/booster.hpp"
#include "gbt/tree.hpp"

namespace trajkit::gbt {
namespace {

TEST(FeatureBins, MonotoneMapping) {
  const std::vector<double> col = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto bins = FeatureBins::fit(col, 4);
  std::uint16_t prev = 0;
  for (double v = 0.0; v <= 11.0; v += 0.5) {
    const auto b = bins.bin_of(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_LT(bins.bin_of(1.0), bins.bin_of(10.0));
}

TEST(FeatureBins, ConstantFeatureSingleBin) {
  const auto bins = FeatureBins::fit({5, 5, 5, 5}, 8);
  EXPECT_EQ(bins.bin_of(4.0), bins.bin_of(5.0));
  EXPECT_LE(bins.bin_count(), 2u);
}

TEST(FeatureBins, RejectsBadInput) {
  EXPECT_THROW(FeatureBins::fit({}, 4), std::invalid_argument);
  EXPECT_THROW(FeatureBins::fit({1.0}, 1), std::invalid_argument);
  EXPECT_THROW(FeatureBins::fit({std::nan("")}, 4), std::invalid_argument);
}

TEST(BinnedMatrix, ShapeAndRaggedCheck) {
  const std::vector<std::vector<double>> x = {{1, 10}, {2, 20}, {3, 30}};
  const auto m = BinnedMatrix::fit_transform(x, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_LE(m.at(0, 0), m.at(2, 0));

  EXPECT_THROW(BinnedMatrix::fit_transform({{1, 2}, {3}}, 4), std::invalid_argument);
  EXPECT_THROW(BinnedMatrix::fit_transform({}, 4), std::invalid_argument);
}

TEST(Tree, FitsSimpleThresholdSplit) {
  // y = 1 iff x0 > 5; gradients from a half-trained logistic model.
  std::vector<std::vector<double>> x;
  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<std::size_t> rows;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i), 0.0});
    const double label = i > 5 ? 1.0 : 0.0;
    grad.push_back(0.5 - label);  // p = 0.5 everywhere
    hess.push_back(0.25);
    rows.push_back(static_cast<std::size_t>(i));
  }
  const auto binned = BinnedMatrix::fit_transform(x, 16);
  const auto tree = Tree::grow(binned, grad, hess, rows, {});

  // Leaves should separate the classes with opposite signs.
  EXPECT_GT(tree.predict({10.0, 0.0}), 0.5);
  EXPECT_LT(tree.predict({2.0, 0.0}), -0.5);
}

TEST(Tree, PureNodeStaysLeaf) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}, {3.0}};
  const std::vector<double> grad = {0.2, 0.2, 0.2};
  const std::vector<double> hess = {0.25, 0.25, 0.25};
  const auto binned = BinnedMatrix::fit_transform(x, 8);
  TreeConfig cfg;
  cfg.gamma = 10.0;  // no split clears this bar
  const auto tree = Tree::grow(binned, grad, hess, {0, 1, 2}, cfg);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_LT(tree.nodes()[0].leaf_value, 0.0);  // -G/(H+lambda)
}

TEST(Tree, RespectsMaxDepth) {
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<std::size_t> rows;
  for (int i = 0; i < 200; ++i) {
    x.push_back({rng.uniform(0, 1), rng.uniform(0, 1)});
    grad.push_back(rng.uniform(-1, 1));
    hess.push_back(0.25);
    rows.push_back(static_cast<std::size_t>(i));
  }
  const auto binned = BinnedMatrix::fit_transform(x, 16);
  TreeConfig cfg;
  cfg.max_depth = 2;
  const auto tree = Tree::grow(binned, grad, hess, rows, cfg);
  // Depth 2 => at most 1 + 2 + 4 = 7 nodes.
  EXPECT_LE(tree.nodes().size(), 7u);
}

TEST(Tree, SaveLoadRoundTrip) {
  std::vector<std::vector<double>> x = {{0.0}, {1.0}, {2.0}, {3.0}};
  const std::vector<double> grad = {0.5, 0.5, -0.5, -0.5};
  const std::vector<double> hess = {0.25, 0.25, 0.25, 0.25};
  const auto binned = BinnedMatrix::fit_transform(x, 8);
  const auto tree = Tree::grow(binned, grad, hess, {0, 1, 2, 3}, {});

  std::stringstream ss;
  tree.save(ss);
  const auto loaded = Tree::load(ss);
  for (double v = -1.0; v < 5.0; v += 0.25) {
    EXPECT_DOUBLE_EQ(tree.predict({v}), loaded.predict({v}));
  }
}

TEST(Booster, LearnsLinearlySeparableData) {
  Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    x.push_back({a, b});
    y.push_back(a + b > 0 ? 1 : 0);
  }
  GbtConfig cfg;
  cfg.num_trees = 40;
  GbtClassifier model(cfg);
  model.train(x, y);

  int correct = 0;
  for (int i = 0; i < 400; ++i) correct += model.predict(x[i]) == y[i];
  EXPECT_GT(correct, 380);
}

TEST(Booster, LearnsXorWithDepth) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 600; ++i) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    x.push_back({a, b});
    y.push_back((a > 0) != (b > 0) ? 1 : 0);  // XOR: needs depth >= 2
  }
  GbtConfig cfg;
  cfg.num_trees = 60;
  cfg.max_depth = 3;
  GbtClassifier model(cfg);
  model.train(x, y);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) correct += model.predict(x[i]) == y[i];
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(x.size()), 0.95);
}

TEST(Booster, TrainLoglossDecreases) {
  Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back({rng.uniform(-1, 1)});
    y.push_back(x.back()[0] > 0.2 ? 1 : 0);
  }
  std::vector<double> losses;
  GbtConfig cfg;
  cfg.num_trees = 30;
  GbtClassifier model(cfg);
  model.train(x, y, [&](std::size_t, double loss) { losses.push_back(loss); });
  ASSERT_EQ(losses.size(), 30u);
  EXPECT_LT(losses.back(), losses.front() * 0.5);
}

TEST(Booster, FeatureImportanceIdentifiesSignal) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    const double signal = rng.uniform(-1, 1);
    x.push_back({rng.uniform(-1, 1), signal, rng.uniform(-1, 1)});
    y.push_back(signal > 0 ? 1 : 0);
  }
  GbtConfig cfg;
  cfg.num_trees = 30;
  GbtClassifier model(cfg);
  model.train(x, y);
  const auto importance = model.feature_importance(3);
  EXPECT_GT(importance[1], importance[0]);
  EXPECT_GT(importance[1], importance[2]);
  EXPECT_NEAR(importance[0] + importance[1] + importance[2], 1.0, 1e-9);
}

TEST(Booster, SubsamplingStillLearns) {
  Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    x.push_back({rng.uniform(-1, 1)});
    y.push_back(x.back()[0] > 0 ? 1 : 0);
  }
  GbtConfig cfg;
  cfg.num_trees = 50;
  cfg.subsample = 0.5;
  GbtClassifier model(cfg);
  model.train(x, y);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) correct += model.predict(x[i]) == y[i];
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(x.size()), 0.95);
}

TEST(Booster, SaveLoadRoundTrip) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({rng.uniform(-1, 1), rng.uniform(-1, 1)});
    y.push_back(x.back()[0] > 0 ? 1 : 0);
  }
  GbtConfig cfg;
  cfg.num_trees = 10;
  GbtClassifier model(cfg);
  model.train(x, y);

  std::stringstream ss;
  model.save(ss);
  const auto loaded = GbtClassifier::load(ss);
  EXPECT_EQ(loaded.tree_count(), model.tree_count());
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> row = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    EXPECT_NEAR(model.predict_proba(row), loaded.predict_proba(row), 1e-12);
  }
}

TEST(Booster, PriorBaseScoreForImbalancedLabels) {
  // With no informative features, predictions collapse to the class prior.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({1.0});
    y.push_back(i < 90 ? 1 : 0);
  }
  GbtConfig cfg;
  cfg.num_trees = 5;
  GbtClassifier model(cfg);
  model.train(x, y);
  EXPECT_NEAR(model.predict_proba({1.0}), 0.9, 0.05);
}

TEST(Booster, SingleClassLabelsPredictThatClass) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(1);
  }
  GbtConfig cfg;
  cfg.num_trees = 5;
  GbtClassifier model(cfg);
  model.train(x, y);
  EXPECT_GT(model.predict_proba({25.0}), 0.95);
}

TEST(Booster, DeterministicForSameSeed) {
  Rng rng(8);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back({rng.uniform(-1, 1), rng.uniform(-1, 1)});
    y.push_back(x.back()[0] > 0 ? 1 : 0);
  }
  GbtConfig cfg;
  cfg.num_trees = 20;
  cfg.subsample = 0.7;
  cfg.seed = 99;
  GbtClassifier a(cfg);
  GbtClassifier b(cfg);
  a.train(x, y);
  b.train(x, y);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> row = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    EXPECT_DOUBLE_EQ(a.predict_proba(row), b.predict_proba(row));
  }
}

TEST(Booster, MonotoneFeatureLearnsMonotoneScore) {
  // y = 1 iff x > 0: the predicted probability should be (weakly) higher for
  // clearly positive inputs than clearly negative ones.
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back({rng.uniform(-1, 1)});
    y.push_back(x.back()[0] > 0 ? 1 : 0);
  }
  GbtConfig cfg;
  cfg.num_trees = 30;
  GbtClassifier model(cfg);
  model.train(x, y);
  EXPECT_GT(model.predict_proba({0.8}), model.predict_proba({-0.8}) + 0.5);
}

TEST(Tree, LoadRejectsGarbage) {
  std::stringstream ss("not a tree");
  EXPECT_THROW(Tree::load(ss), std::runtime_error);
}

TEST(Booster, LoadRejectsGarbage) {
  std::stringstream ss("junk");
  EXPECT_THROW(GbtClassifier::load(ss), std::runtime_error);
}

TEST(Booster, ValidatesConfigAndData) {
  GbtConfig bad;
  bad.subsample = 0.0;
  EXPECT_THROW(GbtClassifier{bad}, std::invalid_argument);
  bad = {};
  bad.num_trees = 0;
  EXPECT_THROW(GbtClassifier{bad}, std::invalid_argument);

  GbtClassifier model;
  EXPECT_THROW(model.train({}, {}), std::invalid_argument);
  EXPECT_THROW(model.train({{1.0}}, {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::gbt
