// Determinism regression tests: for a fixed seed, every parallelised hot
// path must produce byte-identical results for --threads 1, 2 and
// hardware_concurrency().  This is the invariant that makes the paper's
// experiments (Tables I-IV, Figs. 3-6) reproducible regardless of machine.
//
// All comparisons are exact (EXPECT_EQ on doubles, no tolerance): the
// execution layer guarantees identical work decomposition and index-ordered
// reductions, so even floating-point results must match bit-for-bit.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/rssi_pipeline.hpp"
#include "core/scenario.hpp"
#include "nn/classifier.hpp"
#include "serve/service.hpp"
#include "support/fixtures.hpp"
#include "wifi/detector.hpp"

namespace trajkit {
namespace {

std::vector<std::size_t> thread_counts() {
  const std::size_t hw = std::thread::hardware_concurrency() > 0
                             ? std::thread::hardware_concurrency()
                             : 1;
  return {1, 2, hw};
}

/// Flatten everything observable about a scanned batch into one vector of
/// doubles for exact comparison.
std::vector<double> fingerprint(const std::vector<sim::ScannedTrajectory>& batch) {
  std::vector<double> out;
  for (const auto& traj : batch) {
    const auto pts = traj.reported.to_enu(sim::sim_projection());
    for (const auto& p : pts) {
      out.push_back(p.east);
      out.push_back(p.north);
    }
    for (const auto& p : traj.true_positions) {
      out.push_back(p.east);
      out.push_back(p.north);
    }
    for (const auto& scan : traj.scans) {
      out.push_back(static_cast<double>(scan.size()));
      for (const auto& obs : scan) {
        out.push_back(static_cast<double>(obs.mac));
        out.push_back(static_cast<double>(obs.rssi_dbm));
      }
    }
  }
  return out;
}

std::vector<sim::ScannedTrajectory> generate_batch() {
  core::Scenario scenario(test_support::small_scenario_config());
  return scenario.scanned_real(10, 20, 2.0);
}

TEST(Determinism, DatasetGenerationIsThreadCountInvariant) {
  set_global_threads(1);
  const auto reference = fingerprint(generate_batch());
  ASSERT_FALSE(reference.empty());
  for (const std::size_t n : thread_counts()) {
    set_global_threads(n);
    EXPECT_EQ(fingerprint(generate_batch()), reference) << "threads=" << n;
  }
  set_global_threads(0);
}

TEST(Determinism, DetectorFeatureVectorsAreThreadCountInvariant) {
  // Build the world once (serially), then featurise under different pools.
  set_global_threads(1);
  const auto batch = generate_batch();
  std::vector<wifi::ScannedUpload> uploads;
  for (const auto& traj : batch) uploads.push_back(core::to_upload(traj));
  // Fresh upload featurised against a reference store built from the batch.
  const auto probe = uploads.back();
  uploads.pop_back();

  auto features_of = [&] {
    wifi::RssiDetector detector(wifi::flatten_history(uploads), {});
    return wifi::trajectory_features(detector.confidence(), probe);
  };
  const auto reference = features_of();
  ASSERT_FALSE(reference.empty());
  for (const std::size_t n : thread_counts()) {
    set_global_threads(n);
    EXPECT_EQ(features_of(), reference) << "threads=" << n;
  }
  set_global_threads(0);
}

TEST(Determinism, ClassifierLossTraceIsThreadCountInvariant) {
  // Synthetic two-class sequence data; fixed model seed.  The minibatch
  // gradient accumulation must reduce in chunk index order, so the whole
  // loss trace — every Adam step included — matches exactly.
  const std::size_t samples = 48;
  std::vector<FeatureSequence> xs;
  std::vector<int> ys;
  Rng rng(1234);
  for (std::size_t s = 0; s < samples; ++s) {
    FeatureSequence x;
    x.steps = 12;
    x.dim = 2;
    const int label = s % 2;
    for (std::size_t t = 0; t < x.steps; ++t) {
      x.values.push_back(rng.normal(label ? 0.5 : -0.5, 1.0));
      x.values.push_back(rng.normal(0.0, 1.0));
    }
    xs.push_back(std::move(x));
    ys.push_back(label);
  }

  auto train_trace = [&] {
    nn::LstmClassifierConfig cfg;
    cfg.input_dim = 2;
    cfg.hidden_dim = 8;
    nn::LstmClassifier model(cfg, /*seed=*/77);
    return model.train(xs, ys, /*epochs=*/3).epoch_loss;
  };

  set_global_threads(1);
  const auto reference = train_trace();
  ASSERT_EQ(reference.size(), 3u);
  for (const std::size_t n : thread_counts()) {
    set_global_threads(n);
    EXPECT_EQ(train_trace(), reference) << "threads=" << n;
  }
  set_global_threads(0);
}

TEST(Determinism, ServiceResponsesAreThreadAndOrderInvariant) {
  // The serving layer's contract: a VerdictResponse payload is a pure
  // function of (model, upload).  Micro-batch composition, submission order,
  // dispatcher timing, thread count and LRU eviction must all be invisible
  // in the canonical payload strings.
  set_global_threads(1);
  // Shared scenario-backed serving world (tests/support): trained detector
  // plus a 3-real / 3-forged probe mix.
  test_support::ScenarioServiceWorld world;
  wifi::RssiDetector& detector = *world.detector;
  const std::vector<wifi::ScannedUpload>& probes = world.probes;

  auto canonical = [&](const std::vector<std::size_t>& order, std::size_t threads) {
    set_global_threads(threads);
    serve::VerifierServiceConfig scfg;
    scfg.max_batch = 2;        // several micro-batches per run
    scfg.cache.capacity = 32;  // small enough that eviction stays active
    scfg.cache.shards = 2;
    serve::VerifierService service(detector, scfg);
    std::vector<std::future<serve::VerdictResponse>> futures(order.size());
    for (const std::size_t idx : order) {
      futures[idx] = service.submit({idx, probes[idx], 0});
    }
    std::string all;
    for (auto& future : futures) {
      all += future.get().canonical_string();
      all += '\n';
    }
    return all;
  };

  const std::vector<std::size_t> forward = {0, 1, 2, 3, 4, 5};
  const std::vector<std::size_t> reversed = {5, 4, 3, 2, 1, 0};
  const std::vector<std::size_t> shuffled = {3, 0, 5, 1, 4, 2};
  const std::string reference = canonical(forward, 1);
  ASSERT_NE(reference.find("outcome=ok"), std::string::npos);
  for (const std::size_t n : thread_counts()) {
    for (const auto& order : {forward, reversed, shuffled}) {
      EXPECT_EQ(canonical(order, n), reference) << "threads=" << n;
    }
  }
  set_global_threads(0);
}

TEST(Determinism, FullRssiExperimentIsThreadCountInvariant) {
  // End-to-end guard: collection, reference store, detector training and
  // parallel evaluation all under one roof.  Coarse but decisive — if any
  // stage leaks thread-count dependence, the confusion matrix or AUC moves.
  auto run = [] {
    core::Scenario scenario(test_support::small_scenario_config());
    core::RssiExperimentConfig cfg;
    cfg.total = 40;
    cfg.points = 12;
    const auto r = core::run_rssi_experiment(scenario, cfg);
    return std::make_tuple(r.auc, r.confusion.accuracy(), r.avg_k,
                           r.avg_refs_per_point);
  };
  set_global_threads(1);
  const auto reference = run();
  for (const std::size_t n : thread_counts()) {
    set_global_threads(n);
    EXPECT_EQ(run(), reference) << "threads=" << n;
  }
  set_global_threads(0);
}

}  // namespace
}  // namespace trajkit
