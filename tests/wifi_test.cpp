// WiFi RSSI defense: spatial index, RPD estimation (Eq. 4), weights
// (Eqs. 5-6), confidence (Eq. 7), feature vector (Eq. 8), detector J.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "support/fixtures.hpp"
#include "wifi/confidence.hpp"
#include "wifi/detector.hpp"
#include "wifi/features.hpp"
#include "wifi/refindex.hpp"
#include "wifi/rpd.hpp"

namespace trajkit::wifi {
namespace {

namespace ts = test_support;

ReferencePoint ref(double east, double north, WifiScan scan,
                   std::uint32_t traj = kNoTrajectory) {
  return {{east, north}, std::move(scan), traj};
}

TEST(ScanLookup, FindsAndMisses) {
  const WifiScan scan = {{10, -40}, {20, -55}};
  int out = 0;
  EXPECT_TRUE(scan_lookup(scan, 20, out));
  EXPECT_EQ(out, -55);
  EXPECT_FALSE(scan_lookup(scan, 99, out));
}

TEST(ReferenceIndex, RadiusQueryMatchesBruteForce) {
  Rng rng(1);
  std::vector<ReferencePoint> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(ref(rng.uniform(0, 100), rng.uniform(0, 100), {}));
  }
  const ReferenceIndex index(pts);
  for (int trial = 0; trial < 20; ++trial) {
    const Enu center{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double radius = rng.uniform(1.0, 20.0);
    auto got = index.within(center, radius);
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (distance(pts[i].pos, center) <= radius) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "trial " << trial;
    EXPECT_EQ(index.count_within(center, radius), want.size());
  }
}

TEST(ReferenceIndex, ExclusionDropsOneTrajectory) {
  std::vector<ReferencePoint> pts = {
      ref(0, 0, {}, 7), ref(1, 0, {}, 7), ref(0, 1, {}, 8)};
  const ReferenceIndex index(pts);
  EXPECT_EQ(index.within({0, 0}, 5.0).size(), 3u);
  EXPECT_EQ(index.within({0, 0}, 5.0, 7).size(), 1u);
  EXPECT_EQ(index.within({0, 0}, 5.0, 8).size(), 2u);
}

TEST(ReferenceIndex, EmptyAndBoundary) {
  const ReferenceIndex empty({});
  EXPECT_TRUE(empty.within({0, 0}, 100.0).empty());

  // Inclusive radius boundary.
  const ReferenceIndex one({ref(3, 4, {})});
  EXPECT_EQ(one.within({0, 0}, 5.0).size(), 1u);
  EXPECT_EQ(one.within({0, 0}, 4.999).size(), 0u);
}

TEST(Rpd, ExactMatchRatio) {
  // Counting circle of H contains 4 points; mac 1 reads -50 twice, -52 once,
  // absent once => RPD(-50) = 2/4, RPD(-52) = 1/4, RPD(-60) = 0.
  std::vector<ReferencePoint> pts = {
      ref(0, 0, {{1, -50}}),
      ref(1, 0, {{1, -50}}),
      ref(0, 1, {{1, -52}}),
      ref(1, 1, {{2, -70}}),
  };
  const ReferenceIndex index(pts);
  const RpdEstimator rpd(index, {.counting_radius_m = 3.0});
  EXPECT_DOUBLE_EQ(rpd.rpd(0, 1, -50), 0.5);
  EXPECT_DOUBLE_EQ(rpd.rpd(0, 1, -52), 0.25);
  EXPECT_DOUBLE_EQ(rpd.rpd(0, 1, -60), 0.0);
  EXPECT_DOUBLE_EQ(rpd.rpd(0, 99, -50), 0.0);  // unknown AP
  EXPECT_EQ(rpd.counting_size(0), 4u);
}

TEST(Rpd, ToleranceSmoothsMatches) {
  std::vector<ReferencePoint> pts = {
      ref(0, 0, {{1, -50}}),
      ref(1, 0, {{1, -51}}),
  };
  const ReferenceIndex index(pts);
  const RpdEstimator exact(index, {.counting_radius_m = 3.0, .rssi_tolerance_db = 0});
  const RpdEstimator smooth(index, {.counting_radius_m = 3.0, .rssi_tolerance_db = 1});
  EXPECT_DOUBLE_EQ(exact.rpd(0, 1, -50), 0.5);
  EXPECT_DOUBLE_EQ(smooth.rpd(0, 1, -50), 1.0);
}

TEST(Rpd, DensityAndTheta2Monotone) {
  // Two clusters of different density.
  std::vector<ReferencePoint> dense;
  for (int i = 0; i < 20; ++i) {
    dense.push_back(ref(i * 0.1, 0, {}));
  }
  dense.push_back(ref(100, 100, {}));  // isolated point
  const ReferenceIndex index(dense);
  const RpdEstimator rpd(index, {.counting_radius_m = 3.0});
  EXPECT_GT(rpd.density(0), rpd.density(20));
  EXPECT_GT(rpd.theta2(0), rpd.theta2(20));
  EXPECT_GT(rpd.theta2(0), 0.0);
  EXPECT_LT(rpd.theta2(0), 1.0);
}

TEST(Rpd, ValidatesParams) {
  const ReferenceIndex index({ref(0, 0, {})});
  EXPECT_THROW(RpdEstimator(index, {.counting_radius_m = 0.0}), std::invalid_argument);
  EXPECT_THROW(RpdEstimator(index, {.counting_radius_m = 1.0, .theta2_base = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(
      RpdEstimator(index, {.counting_radius_m = 1.0, .rssi_tolerance_db = -1}),
      std::invalid_argument);
}

TEST(Confidence, PerfectAgreementGivesHighPhi) {
  // All reference points in a tight cluster agree: mac 1 reads -50.
  std::vector<ReferencePoint> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(ref(i * 0.3, 0, {{1, -50}}));
  }
  const ReferenceIndex index(pts);
  const ConfidenceEstimator estimator(index, {.reference_radius_m = 2.5, .top_k = 4});
  const auto good = estimator.point_confidence({1.0, 0.2}, {{1, -50}});
  ASSERT_EQ(good.size(), 1u);
  const auto bad = estimator.point_confidence({1.0, 0.2}, {{1, -60}});
  EXPECT_GT(good[0].phi, 10.0 * bad[0].phi + 1e-9);
  EXPECT_GT(good[0].num_refs, 0u);
}

TEST(Confidence, CloserReferencesWeighMore) {
  // Two references with conflicting readings; the nearer one should dominate.
  // The RPD counting radius is kept below their separation so each reference
  // votes from its own histogram.
  std::vector<ReferencePoint> pts = {
      ref(0.2, 0, {{1, -50}}),  // near, says -50
      ref(2.4, 0, {{1, -70}}),  // far, says -70
  };
  const ReferenceIndex index(pts);
  ConfidenceParams params;
  params.reference_radius_m = 2.5;
  params.top_k = 1;
  params.rpd.counting_radius_m = 1.0;
  const ConfidenceEstimator estimator(index, params);
  const auto at_near = estimator.point_confidence({0.0, 0.0}, {{1, -50}});
  const auto at_far = estimator.point_confidence({0.0, 0.0}, {{1, -70}});
  EXPECT_GT(at_near[0].phi, at_far[0].phi);
}

TEST(Confidence, NoReferencesMeansZeroPhi) {
  const ReferenceIndex index({ref(100, 100, {{1, -40}})});
  const ConfidenceEstimator estimator(index, {.reference_radius_m = 2.5});
  const auto out = estimator.point_confidence({0, 0}, {{1, -40}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].phi, 0.0);
  EXPECT_EQ(out[0].num_refs, 0u);
  EXPECT_EQ(estimator.reference_count({0, 0}), 0u);
}

TEST(Confidence, TopKTruncatesScan) {
  const ReferenceIndex index({ref(0, 0, {{1, -40}, {2, -50}, {3, -60}})});
  const ConfidenceEstimator estimator(index, {.reference_radius_m = 2.5, .top_k = 2});
  const auto out =
      estimator.point_confidence({0.5, 0}, {{1, -40}, {2, -50}, {3, -60}});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].mac, 1u);
  EXPECT_EQ(out[1].mac, 2u);
}

TEST(Confidence, AblationSwitchesChangeWeights) {
  std::vector<ReferencePoint> pts = {
      ref(0.2, 0, {{1, -50}}),
      ref(2.0, 0, {{1, -50}}),
  };
  const ReferenceIndex index(pts);
  ConfidenceParams with;
  with.reference_radius_m = 2.5;
  ConfidenceParams without = with;
  without.use_theta1 = false;
  without.use_theta2 = false;
  const ConfidenceEstimator a(index, with);
  const ConfidenceEstimator b(index, without);
  // Without theta2 damping, phi is the plain average of RPDs = 1.0.
  EXPECT_NEAR(b.point_confidence({0, 0}, {{1, -50}})[0].phi, 1.0, 1e-9);
  EXPECT_LT(a.point_confidence({0, 0}, {{1, -50}})[0].phi, 1.0);
}

TEST(Features, WidthAndPadding) {
  const ReferenceIndex index({ref(0, 0, {{1, -40}})});
  const ConfidenceEstimator estimator(index, {.reference_radius_m = 2.5, .top_k = 3});
  ScannedUpload upload;
  upload.positions = {{0, 0}, {1, 0}};
  upload.scans = {{{1, -40}}, {}};  // second point heard nothing
  const auto f = trajectory_features(estimator, upload);
  EXPECT_EQ(f.size(), trajectory_feature_width(estimator, 2));
  EXPECT_EQ(f.size(), 12u);  // 2 points * 3 aps * 2 values
  // Padding entries are zero.
  for (std::size_t i = 2; i < 6; ++i) EXPECT_DOUBLE_EQ(f[i], 0.0);
  for (std::size_t i = 6; i < 12; ++i) EXPECT_DOUBLE_EQ(f[i], 0.0);
}

TEST(Features, MismatchedUploadRejected) {
  const ReferenceIndex index({ref(0, 0, {})});
  const ConfidenceEstimator estimator(index, {});
  ScannedUpload upload;
  upload.positions = {{0, 0}};
  upload.scans = {};
  EXPECT_THROW(trajectory_features(estimator, upload), std::invalid_argument);
}

TEST(Detector, SeparatesMatchingFromMismatchedRssi) {
  // Synthetic world: a spatial RSSI field rssi(x) = -40 - x (1 dB per metre).
  // Real uploads report the field value at their position; fakes report the
  // field value 10 m away.  The detector must learn the difference.
  ts::LinearWorldConfig cfg;
  cfg.seed = 2;
  cfg.area_m = 40.0;
  cfg.margin_m = 5.0;
  cfg.history_points = 2000;
  cfg.upload_points = 5;
  cfg.fake_shift_m = 10.0;
  cfg.train_pairs = 60;
  cfg.trees = 40;
  cfg.reference_radius_m = 2.5;
  ts::LinearFieldWorld w(cfg);

  int correct = 0;
  for (int i = 0; i < 40; ++i) {
    correct += w.detector().analyze(w.upload(true)).verdict == 1;
    correct += w.detector().analyze(w.upload(false)).verdict == 0;
  }
  EXPECT_GT(correct, 72);  // > 90%
}

TEST(Detector, SaveLoadRoundTrip) {
  ts::LinearWorldConfig cfg;
  cfg.seed = 3;
  cfg.margin_m = 5.0;
  cfg.history_points = 500;
  cfg.upload_points = 4;
  cfg.fake_shift_m = 8.0;
  ts::LinearFieldWorld w(cfg);

  std::stringstream ss;
  w.detector().save(ss);
  const auto loaded = RssiDetector::load(ss);
  ASSERT_EQ(loaded->index().size(), w.detector().index().size());
  for (int i = 0; i < 20; ++i) {
    const auto upload = w.upload(i % 2 == 0);
    EXPECT_NEAR(w.detector().analyze(upload).p_real, loaded->analyze(upload).p_real,
                1e-12);
  }
}

TEST(Detector, LoadRejectsGarbage) {
  std::stringstream ss("definitely_not_a_detector");
  EXPECT_THROW(RssiDetector::load(ss), std::runtime_error);
}

TEST(Detector, TryLoadReportsGarbageAsError) {
  std::stringstream ss("definitely_not_a_detector");
  const auto result = RssiDetector::try_load(ss);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("bad magic"), std::string::npos) << result.error();
}

TEST(Detector, ThresholdPersistsThroughSaveLoad) {
  RssiDetectorConfig cfg;
  cfg.threshold = 0.65;
  RssiDetector detector({ref(0, 0, {{1, -50}})}, cfg);
  std::stringstream ss;
  detector.save(ss);
  const auto loaded = RssiDetector::load(ss);
  EXPECT_DOUBLE_EQ(loaded->config().threshold, 0.65);
}

TEST(Detector, RejectsOutOfRangeThreshold) {
  RssiDetectorConfig cfg;
  cfg.threshold = 1.5;
  EXPECT_THROW(RssiDetector({ref(0, 0, {})}, cfg), std::invalid_argument);
}

TEST(Detector, TryLoadAcceptsThresholdlessV1Format) {
  RssiDetectorConfig cfg;
  cfg.threshold = 0.8;
  RssiDetector detector({ref(0, 0, {{1, -50}})}, cfg);
  std::stringstream v2;
  detector.save(v2);

  // Rewrite the v2 header as v1: old magic, no threshold on the config line.
  std::string text = v2.str();
  const auto magic_end = text.find('\n');
  const auto config_end = text.find('\n', magic_end + 1);
  std::string config_line = text.substr(magic_end + 1, config_end - magic_end - 1);
  config_line.erase(config_line.rfind(' '));  // drop the trailing threshold
  std::stringstream v1("trajkit_rssi_detector_v1\n" + config_line +
                       text.substr(config_end));

  const auto loaded = RssiDetector::try_load(v1);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  // v1 models predate the persisted threshold; they get the default.
  EXPECT_DOUBLE_EQ(loaded.value()->config().threshold, 0.5);
}

// Deprecated wrapper/analyze agreement lives in tests/equivalence_test.cpp
// (property sweep over random uploads and thresholds).

TEST(Detector, PointScoresLocaliseMismatchedStretch) {
  Rng rng(4);
  auto field = [](const Enu& p) {
    return ts::LinearFieldWorld::field_rssi(p);
  };
  std::vector<ReferencePoint> history;
  for (int i = 0; i < 3000; ++i) {
    const Enu p{rng.uniform(0, 60), rng.uniform(0, 60)};
    history.push_back(ref(p.east, p.north, {{1, field(p)}}));
  }
  RssiDetector detector(history, {});

  // First half consistent, second half claims positions 20 m away from where
  // the (genuine) scans were heard.
  ScannedUpload upload;
  for (int j = 0; j < 10; ++j) {
    const Enu p{10.0 + j * 3.0, 30.0};
    // The synthetic field varies with east, so the fraud must shift east.
    upload.positions.push_back(j < 5 ? p : Enu{p.east + 20.0, p.north});
    upload.scans.push_back({{1, field(p)}});
  }
  // segment_features is untrained-safe (it only needs the reference index),
  // which is exactly why this test can skip training the classifier.
  std::vector<double> features;
  std::vector<double> scores;
  detector.segment_features(upload, features, scores);
  ASSERT_EQ(scores.size(), 10u);
  double good = 0.0;
  double bad = 0.0;
  for (int j = 0; j < 5; ++j) good += scores[j];
  for (int j = 5; j < 10; ++j) bad += scores[j];
  EXPECT_GT(good, 4.0 * bad + 1e-9);
}

TEST(Detector, RequiresTrainingBeforeVerify) {
  RssiDetector detector({ref(0, 0, {})}, {});
  ScannedUpload upload;
  upload.positions = {{0, 0}};
  upload.scans = {{}};
  EXPECT_THROW(detector.analyze(upload), std::logic_error);
}

TEST(Detector, RejectsUnevenUploadLengths) {
  RssiDetector detector({ref(0, 0, {})}, {});
  ScannedUpload a;
  a.positions = {{0, 0}};
  a.scans = {{}};
  ScannedUpload b;
  b.positions = {{0, 0}, {1, 0}};
  b.scans = {{}, {}};
  EXPECT_THROW(detector.train({a, b}, {1, 0}), std::invalid_argument);
}

TEST(Detector, FlattenHistoryTagsAndChecks) {
  std::vector<ScannedUpload> history(2);
  history[0].positions = {{0, 0}, {1, 0}};
  history[0].scans = {{}, {}};
  history[1].positions = {{2, 0}};
  history[1].scans = {{}};
  const auto flat = flatten_history(history);
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat[0].traj_id, 0u);
  EXPECT_EQ(flat[1].traj_id, 0u);
  EXPECT_EQ(flat[2].traj_id, 1u);

  std::vector<ScannedUpload> bad(1);
  bad[0].positions = {{0, 0}};
  EXPECT_THROW(flatten_history(bad), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::wifi
