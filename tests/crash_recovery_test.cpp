// Kill-at-fault-point crash recovery: the durability contract proven with
// real process deaths.
//
// Every test forks a child (tests/support/crash.hpp) that arms one named
// fault point with FaultAction::kCrash and runs a persistence operation; the
// child _exit()s at that exact step, taking its stack and buffers with it.
// The parent then examines the surviving on-disk state:
//
//   * atomic model saves leave exactly the pre-image (crash at or before the
//     rename) or exactly the post-image (crash after) — never a hybrid;
//   * a journal append crash leaves a torn tail that the next open truncates
//     back to an exact record prefix;
//   * a compaction crash at any step loses nothing and duplicates nothing;
//   * a VerifierService cold-started from the crashed-and-recovered store
//     reproduces the committed golden Eq. 8 features and verdict checksums
//     bit for bit.
//
// Children are I/O-only: every world/model is built in the parent before the
// fork, and no child creates threads.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/durable/durable_file.hpp"
#include "common/durable/journal.hpp"
#include "gbt/booster.hpp"
#include "nn/classifier.hpp"
#include "serve/service.hpp"
#include "support/crash.hpp"
#include "support/fixtures.hpp"
#include "support/golden.hpp"
#include "wifi/crowd_store.hpp"
#include "wifi/detector.hpp"
#include "wifi/features.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;

void remove_store(const std::string& dir) {
  for (const char* name : {"/crowd.snapshot", "/crowd.snapshot.tmp",
                           "/crowd.journal", "/crowd.journal.tmp"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
}

// ---------------------------------------------------------------------------
// Atomic save crash matrix
//
// For every fault point on the atomic write path, crash a child mid-save of
// a *new* artifact over a committed *old* one and assert the survivor is
// byte-exactly one of the two images — and still loads.

struct SaveCrashCase {
  std::string path;
  std::function<void()> save_old;   ///< commit the pre-image (runs in parent)
  std::function<void()> save_new;   ///< the operation the child crashes in
  std::function<bool()> loads;      ///< post-crash load succeeds
};

void run_save_crash_matrix(const SaveCrashCase& c) {
  c.save_old();
  const ts::FileImage pre = ts::snapshot_file(c.path);
  ASSERT_TRUE(pre.exists);
  c.save_new();
  const ts::FileImage post = ts::snapshot_file(c.path);
  ASSERT_NE(pre.bytes, post.bytes) << "pre/post images must differ to be told apart";

  for (const char* point : durable::kAtomicWritePoints) {
    c.save_old();  // restore the pre-image committed state
    const auto child = ts::crash_child_at(point, c.save_new);
    ASSERT_TRUE(child.crashed_at_point())
        << point << ": child " << child.describe();
    const ts::FileImage image = ts::snapshot_file(c.path);
    ASSERT_TRUE(image.exists) << point;
    if (std::string_view(point) == durable::kFaultDirSync) {
      // The rename already landed; only the directory fsync was lost.
      EXPECT_EQ(image.bytes, post.bytes) << point << ": expected the post-image";
    } else {
      EXPECT_EQ(image.bytes, pre.bytes) << point << ": expected the pre-image";
    }
    EXPECT_TRUE(c.loads()) << point << ": surviving image must load";
  }
  std::remove(c.path.c_str());
  std::remove((c.path + ".tmp").c_str());
}

TEST(CrashRecovery, DetectorSaveCrashLeavesPreOrPostImage) {
  // Two worlds with different seeds: distinguishable images, both loadable.
  ts::LinearFieldWorld old_world;
  ts::LinearWorldConfig new_cfg;
  new_cfg.seed = 11;
  ts::LinearFieldWorld new_world(new_cfg);
  const std::string path = "crash_test_detector.tmp";
  run_save_crash_matrix({
      path,
      [&] { old_world.detector().save_file(path); },
      [&] { new_world.detector().save_file(path); },
      [&] { return wifi::RssiDetector::try_load_file(path).has_value(); },
  });
}

TEST(CrashRecovery, LstmSaveCrashLeavesPreOrPostImage) {
  nn::LstmClassifierConfig cfg;
  cfg.hidden_dim = 6;
  const nn::LstmClassifier old_model(cfg, 1);
  const nn::LstmClassifier new_model(cfg, 2);
  const std::string path = "crash_test_lstm.tmp";
  run_save_crash_matrix({
      path,
      [&] { old_model.save_file(path); },
      [&] { new_model.save_file(path); },
      [&] { return nn::LstmClassifier::try_load_file(path).has_value(); },
  });
}

gbt::GbtClassifier tiny_gbt(std::uint64_t seed) {
  gbt::GbtConfig cfg;
  cfg.num_trees = 4;
  cfg.max_depth = 3;
  cfg.seed = seed;
  gbt::GbtClassifier model(cfg);
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 40; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    x.push_back({a, rng.uniform(-1.0, 1.0)});
    y.push_back(a > 0.0 ? 1 : 0);
  }
  model.train(x, y);
  return model;
}

TEST(CrashRecovery, GbtSaveCrashLeavesPreOrPostImage) {
  const auto old_model = tiny_gbt(3);
  const auto new_model = tiny_gbt(4);
  const std::string path = "crash_test_gbt.tmp";
  run_save_crash_matrix({
      path,
      [&] { old_model.save_file(path); },
      [&] { new_model.save_file(path); },
      [&] { return gbt::GbtClassifier::try_load_file(path).has_value(); },
  });
}

// ---------------------------------------------------------------------------
// Journal append crash matrix

TEST(CrashRecovery, JournalAppendCrashRecoversAnExactPrefix) {
  const std::string path = "crash_test_journal.tmp";
  const std::vector<std::string> committed = {"committed zero", "committed one"};

  struct AppendCase {
    const char* point;
    std::size_t expect_records;  ///< intact records after recovery
  };
  // A crash mid-frame tears the tail (the new record is lost, truncated off);
  // a crash after the frame but before fsync leaves a complete record — the
  // process page cache survives _exit, so recovery sees the post-image.
  const AppendCase cases[] = {
      {durable::kFaultAppendPartial, committed.size()},
      {durable::kFaultAppendSync, committed.size() + 1},
  };

  for (const auto& c : cases) {
    std::remove(path.c_str());
    {
      auto journal = durable::Journal::open(path, "crash_journal");
      ASSERT_TRUE(journal.has_value()) << journal.error();
      for (const auto& payload : committed) {
        ASSERT_TRUE(journal.value()->append(payload).has_value());
      }
    }
    const std::size_t committed_size = ts::snapshot_file(path).bytes.size();

    const auto child = ts::crash_child_at(c.point, [&] {
      auto journal = durable::Journal::open(path, "crash_journal");
      if (!journal.has_value()) ::_exit(71);
      (void)journal.value()->append("crashing append");
    });
    ASSERT_TRUE(child.crashed_at_point())
        << c.point << ": child " << child.describe();

    auto journal = durable::Journal::open(path, "crash_journal");
    ASSERT_TRUE(journal.has_value()) << c.point << ": " << journal.error();
    const auto& rec = journal.value()->recovery();
    ASSERT_EQ(rec.records.size(), c.expect_records) << c.point;
    for (std::size_t i = 0; i < committed.size(); ++i) {
      EXPECT_EQ(rec.records[i].payload, committed[i]) << c.point;
    }
    if (c.expect_records > committed.size()) {
      EXPECT_EQ(rec.records.back().payload, "crashing append") << c.point;
      EXPECT_EQ(rec.truncated_bytes, 0u) << c.point;
    } else {
      EXPECT_GT(rec.truncated_bytes, 0u)
          << c.point << ": a torn tail must have been cut";
    }
    // Recovery physically truncated the tear: the file is frame-aligned again
    // and appending continues from the recovered seq.
    journal.value().reset();
    EXPECT_GE(ts::snapshot_file(path).bytes.size(), committed_size) << c.point;
    auto reopened = durable::Journal::open(path, "crash_journal");
    ASSERT_TRUE(reopened.has_value());
    EXPECT_EQ(reopened.value()->recovery().truncated_bytes, 0u) << c.point;
    EXPECT_EQ(reopened.value()->append("after crash").value(),
              static_cast<std::uint64_t>(c.expect_records))
        << c.point;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Compaction crash matrix

TEST(CrashRecovery, CompactionCrashLosesAndDuplicatesNothing) {
  const std::string dir = "crash_test_store";
  std::vector<wifi::ReferencePoint> expected;
  for (int i = 0; i < 5; ++i) {
    expected.push_back(
        {{double(i), 2.0 * i}, {{std::uint64_t(i + 1), -45 - i}}, 9u});
  }

  // Every step compaction can die at: the five atomic-write points of the
  // snapshot commit, the gap between the two stages, and the journal reset.
  std::vector<const char*> points(std::begin(durable::kAtomicWritePoints),
                                  std::end(durable::kAtomicWritePoints));
  points.push_back(wifi::kFaultStoreCompact);
  points.push_back(durable::kFaultJournalReset);

  for (const char* point : points) {
    remove_store(dir);
    {
      auto store = wifi::CrowdStore::open(dir);
      ASSERT_TRUE(store.has_value()) << store.error();
      for (const auto& p : expected) {
        ASSERT_TRUE(store.value()->append(p).has_value());
      }
    }

    const auto child = ts::crash_child_at(point, [&] {
      auto store = wifi::CrowdStore::open(dir);
      if (!store.has_value()) ::_exit(71);
      (void)store.value()->compact();
    });
    ASSERT_TRUE(child.crashed_at_point())
        << point << ": child " << child.describe();

    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << point << ": " << store.error();
    ASSERT_EQ(store.value()->points().size(), expected.size()) << point;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(store.value()->points()[i].pos.east, expected[i].pos.east) << point;
      EXPECT_EQ(store.value()->points()[i].pos.north, expected[i].pos.north) << point;
      EXPECT_EQ(store.value()->points()[i].scan, expected[i].scan) << point;
      EXPECT_EQ(store.value()->points()[i].traj_id, expected[i].traj_id) << point;
    }
    // The store stays fully operational: re-compaction and appends succeed.
    ASSERT_TRUE(store.value()->compact().has_value()) << point;
    auto seq = store.value()->append(expected[0]);
    ASSERT_TRUE(seq.has_value()) << point << ": " << seq.error();
    EXPECT_EQ(store.value()->points().size(), expected.size() + 1) << point;
  }
  remove_store(dir);
}

TEST(CrashRecovery, PoisonQuarantineStateSurvivesEveryCompactionCrash) {
  // The adversarial-layer state (per-uploader provenance, reputation scores,
  // quarantine verdicts) rides the same snapshot + journal machinery as the
  // points — so a crash at any compaction step must leave a store that still
  // knows exactly who is quarantined, with the scores bitwise intact.
  const std::string dir = "crash_test_poison_store";

  std::vector<const char*> points(std::begin(durable::kAtomicWritePoints),
                                  std::end(durable::kAtomicWritePoints));
  points.push_back(wifi::kFaultStoreCompact);
  points.push_back(durable::kFaultJournalReset);

  for (const char* point : points) {
    remove_store(dir);
    std::string reputation;
    std::uint64_t provenance_fnv = 0;
    std::size_t trusted = 0;
    {
      auto store = wifi::CrowdStore::open(dir);
      ASSERT_TRUE(store.has_value()) << store.error();
      // Three uploaders agree about one cell; a review quarantines one of
      // them, and a fourth is cleared after a (mistaken) quarantine — both
      // marker kinds sit in the journal when the compaction crash hits.
      for (int i = 0; i < 9; ++i) {
        ASSERT_TRUE(store.value()
                        ->append({{1.0 + 0.1 * i, 1.0}, {{5, -50}}, 1u},
                                 static_cast<wifi::UploaderId>(1 + i % 3))
                        .has_value());
      }
      ASSERT_TRUE(store.value()->append_quarantine_marker(2).has_value());
      ASSERT_TRUE(store.value()->append_quarantine_marker(9).has_value());
      ASSERT_TRUE(store.value()->append_clear_marker(9).has_value());
      reputation = store.value()->reputation().serialize();
      provenance_fnv = store.value()->provenance().checksum();
      trusted = store.value()->trusted_points().size();
      ASSERT_LT(trusted, store.value()->points().size());
    }

    const auto child = ts::crash_child_at(point, [&] {
      auto store = wifi::CrowdStore::open(dir);
      if (!store.has_value()) ::_exit(71);
      (void)store.value()->compact();
    });
    ASSERT_TRUE(child.crashed_at_point())
        << point << ": child " << child.describe();

    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << point << ": " << store.error();
    EXPECT_EQ(store.value()->reputation().serialize(), reputation) << point;
    EXPECT_EQ(store.value()->provenance().checksum(), provenance_fnv) << point;
    EXPECT_TRUE(store.value()->reputation().is_quarantined(2)) << point;
    EXPECT_FALSE(store.value()->reputation().is_quarantined(9)) << point;
    EXPECT_EQ(store.value()->trusted_points().size(), trusted) << point;
    // Still operational: the review can proceed after the crash.
    ASSERT_TRUE(store.value()->compact().has_value()) << point;
    ASSERT_TRUE(store.value()->append_clear_marker(2).has_value()) << point;
    EXPECT_EQ(store.value()->trusted_points().size(),
              store.value()->points().size())
        << point;
  }
  remove_store(dir);
}

TEST(CrashRecovery, PoisonQuarantineMarkerAppendCrashIsAtomic) {
  // A crash inside the journal append of a "#quarantine" control frame
  // leaves either a store that never heard of the review (torn frame,
  // truncated) or one that fully applied it on replay — never a half state.
  const std::string dir = "crash_test_poison_marker";

  struct MarkerCase {
    const char* point;
    bool expect_applied;  ///< marker survives (page cache outlives _exit)
  };
  const MarkerCase cases[] = {
      {durable::kFaultAppendPartial, false},
      {durable::kFaultAppendSync, true},
  };

  for (const auto& c : cases) {
    remove_store(dir);
    {
      auto store = wifi::CrowdStore::open(dir);
      ASSERT_TRUE(store.has_value()) << store.error();
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(store.value()
                        ->append({{1.0 + 0.1 * i, 1.0}, {{5, -50}}, 1u},
                                 static_cast<wifi::UploaderId>(1 + i))
                        .has_value());
      }
    }

    const auto child = ts::crash_child_at(c.point, [&] {
      auto store = wifi::CrowdStore::open(dir);
      if (!store.has_value()) ::_exit(71);
      (void)store.value()->append_quarantine_marker(3);
    });
    ASSERT_TRUE(child.crashed_at_point())
        << c.point << ": child " << child.describe();

    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << c.point << ": " << store.error();
    EXPECT_EQ(store.value()->points().size(), 4u) << c.point;
    EXPECT_EQ(store.value()->reputation().is_quarantined(3), c.expect_applied)
        << c.point;
    EXPECT_EQ(store.value()->trusted_points().size(), c.expect_applied ? 3u : 4u)
        << c.point;
    // Either way the review path still works from here.
    ASSERT_TRUE(store.value()->append_quarantine_marker(3).has_value()) << c.point;
    EXPECT_TRUE(store.value()->reputation().is_quarantined(3)) << c.point;
  }
  remove_store(dir);
}

// ---------------------------------------------------------------------------
// End to end: cold start from a crashed store reproduces the goldens

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

TEST(CrashRecovery, RecoveredServiceServesGoldenVerdicts) {
  const std::string dir = "crash_test_golden_store";
  const std::string model_path = "crash_test_golden_model.tmp";
  remove_store(dir);

  // The provider's state, persisted the deployment way: the trained model
  // file plus a crowd store holding the reference set, point by point.
  ts::LinearFieldWorld w;
  w.detector().save_file(model_path);
  {
    auto store = wifi::CrowdStore::open(dir, /*sync_each_append=*/false);
    ASSERT_TRUE(store.has_value()) << store.error();
    const auto& index = w.detector().index();
    for (std::size_t i = 0; i < index.size(); ++i) {
      ASSERT_TRUE(store.value()->append(index[i]).has_value()) << i;
    }
  }

  // Crash the store twice: once mid-snapshot-commit (old snapshot survives,
  // journal intact) and once between the compact stages (new snapshot
  // committed, journal stale).  Recovery must shrug off both.
  for (const char* point : {durable::kFaultRename, wifi::kFaultStoreCompact}) {
    const auto child = ts::crash_child_at(point, [&] {
      auto store = wifi::CrowdStore::open(dir, /*sync_each_append=*/false);
      if (!store.has_value()) ::_exit(71);
      (void)store.value()->compact();
    });
    ASSERT_TRUE(child.crashed_at_point())
        << point << ": child " << child.describe();
  }

  serve::VerifierServiceConfig config;
  config.auto_start = false;
  auto service =
      serve::VerifierService::try_create_from_store(dir, model_path, config);
  ASSERT_TRUE(service.has_value()) << service.error();
  ASSERT_TRUE(service.value()->has_detector());

  // Golden 1 — the Eq. 8 feature vectors, with golden_test's exact draw
  // order: a fresh world's first real and first forged upload.
  {
    ts::LinearFieldWorld draws;
    std::string out;
    for (const bool real : {true, false}) {
      const auto upload = draws.upload(real);
      const auto features = wifi::trajectory_features(
          service.value()->detector().confidence(), upload);
      out += real ? "real" : "fake";
      out += '\n';
      for (const double v : features) {
        out += ts::canonical_double(v);
        out += '\n';
      }
    }
    EXPECT_TRUE(ts::matches_golden("eq8_features.txt", out));
  }

  // Golden 2 — the canonical verdict payloads and their checksum, served
  // through the recovered service's synchronous path.
  {
    ts::LinearFieldWorld draws;
    std::string out;
    std::uint64_t checksum = 1469598103934665603ull;
    for (const auto& upload : draws.probe_mix(6)) {
      const auto response = service.value()->verify_now(upload);
      ASSERT_EQ(response.outcome, serve::Outcome::kOk);
      const std::string payload = response.report.canonical_string();
      checksum ^= fnv1a(payload);
      out += payload;
      out += '\n';
    }
    out += "fnv1a_xor=" + hex64(checksum) + '\n';
    EXPECT_TRUE(ts::matches_golden("verdict_checksums.txt", out));
  }

  remove_store(dir);
  std::remove(model_path.c_str());
}

TEST(CrashRecovery, AppendCrashStillColdStartsTheService) {
  const std::string dir = "crash_test_append_store";
  const std::string model_path = "crash_test_append_model.tmp";
  remove_store(dir);

  ts::LinearFieldWorld w;
  w.detector().save_file(model_path);
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          store.value()->append({{double(i), 0.0}, {{1, -50}}, 2u}).has_value());
    }
  }
  // Die mid-append: the torn record must vanish, the three committed ones
  // must serve.
  const auto child = ts::crash_child_at(durable::kFaultAppendPartial, [&] {
    auto store = wifi::CrowdStore::open(dir);
    if (!store.has_value()) ::_exit(71);
    (void)store.value()->append({{99.0, 99.0}, {{1, -50}}, 2u});
  });
  ASSERT_TRUE(child.crashed_at_point()) << child.describe();

  serve::VerifierServiceConfig config;
  config.auto_start = false;
  auto service =
      serve::VerifierService::try_create_from_store(dir, model_path, config);
  ASSERT_TRUE(service.has_value()) << service.error();
  ASSERT_TRUE(service.value()->has_detector());
  EXPECT_EQ(service.value()->detector().index().size(), 3u);

  remove_store(dir);
  std::remove(model_path.c_str());
}

TEST(CrashRecovery, UnloadableModelDegradedStartsFromStore) {
  const std::string dir = "crash_test_degraded_store";
  remove_store(dir);
  { ASSERT_TRUE(wifi::CrowdStore::open(dir).has_value()); }

  serve::VerifierServiceConfig config;
  config.auto_start = false;
  config.fallback.allow_degraded_start = true;
  auto service = serve::VerifierService::try_create_from_store(
      dir, "crash_test_no_such_model.tmp", config);
  ASSERT_TRUE(service.has_value()) << service.error();
  EXPECT_FALSE(service.value()->has_detector());

  wifi::ScannedUpload upload;
  upload.positions = {{0.0, 0.0}, {1.0, 0.0}};
  upload.scans = {{{1, -50}}, {{1, -51}}};
  const auto response = service.value()->verify_now(upload);
  EXPECT_EQ(response.outcome, serve::Outcome::kDegraded);
  remove_store(dir);
}

}  // namespace
}  // namespace trajkit
