// Related-work defense baselines: rule-based plausibility checks, the
// server-side replay traversal, and coarse RSSI-signature verification.
#include <gtest/gtest.h>

#include "attack/naive.hpp"
#include "attack/replay.hpp"
#include "baseline/replay_check.hpp"
#include "baseline/rssi_similarity.hpp"
#include "baseline/rule_based.hpp"
#include "core/scenario.hpp"
#include "dtw/dtw.hpp"

namespace trajkit::baseline {
namespace {

const LocalProjection& proj() { return sim::sim_projection(); }

Trajectory line_trajectory(std::size_t n, double step_m, double interval_s = 1.0) {
  std::vector<Enu> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i) * step_m, 0.0});
  }
  return Trajectory::from_enu(pts, proj(), Mode::kWalking, interval_s);
}

TEST(RuleBased, PassesPlausibleWalk) {
  const auto t = line_trajectory(20, 1.4);  // 1.4 m/s constant walk
  const auto detector = RuleBasedDetector::for_mode(Mode::kWalking);
  EXPECT_TRUE(detector.check(t, proj()).empty());
  EXPECT_EQ(detector.verify(t, proj()), 1);
}

TEST(RuleBased, FlagsOverspeed) {
  const auto t = line_trajectory(10, 8.0);  // 8 m/s "walk"
  const auto detector = RuleBasedDetector::for_mode(Mode::kWalking);
  const auto violations = detector.check(t, proj());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().rule, "overspeed");
  EXPECT_EQ(detector.verify(t, proj()), 0);
}

TEST(RuleBased, FlagsTeleport) {
  std::vector<Enu> pts = {{0, 0}, {1, 0}, {2, 0}, {200, 0}, {201, 0}};
  const auto t = Trajectory::from_enu(pts, proj(), Mode::kDriving, 1.0);
  const auto detector = RuleBasedDetector::for_mode(Mode::kDriving);
  bool teleport = false;
  for (const auto& v : detector.check(t, proj())) teleport |= v.rule == "teleport";
  EXPECT_TRUE(teleport);
}

TEST(RuleBased, FlagsFrozenTrajectory) {
  std::vector<Enu> pts(10, Enu{5, 5});
  std::vector<TrajPoint> tp;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tp.push_back({proj().to_latlon(pts[i]), static_cast<double>(i)});
  }
  const Trajectory t(std::move(tp), Mode::kWalking);
  const auto detector = RuleBasedDetector::for_mode(Mode::kWalking);
  bool frozen = false;
  for (const auto& v : detector.check(t, proj())) frozen |= v.rule == "no_progress";
  EXPECT_TRUE(frozen);
}

TEST(RuleBased, FlagsAccelSpike) {
  // Alternate 0 m and 3 m steps: accel |3-0|/1 = 3 m/s^2 > walking limit.
  std::vector<Enu> pts = {{0, 0}};
  for (int i = 1; i < 12; ++i) {
    pts.push_back({pts.back().east + ((i % 2) ? 3.0 : 0.0), 0.0});
  }
  // De-duplicate positions slightly so timestamps stay valid.
  const auto t = Trajectory::from_enu(pts, proj(), Mode::kWalking, 1.0);
  const auto detector = RuleBasedDetector::for_mode(Mode::kWalking);
  bool spike = false;
  for (const auto& v : detector.check(t, proj())) spike |= v.rule == "overaccel";
  EXPECT_TRUE(spike);
}

TEST(RuleBased, ShortTrajectoryRejected) {
  const auto t = line_trajectory(2, 1.0);
  const auto detector = RuleBasedDetector::for_mode(Mode::kWalking);
  EXPECT_EQ(detector.verify(t, proj()), 0);
}

TEST(RuleBased, RealSimulatedTrajectoriesPass) {
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kCycling));
  const auto detector = RuleBasedDetector::for_mode(Mode::kCycling);
  std::size_t passed = 0;
  for (const auto& traj : scenario.real_trajectories(20, 40, 1.0)) {
    passed += detector.verify(traj.reported, proj()) == 1;
  }
  EXPECT_GE(passed, 18u);
}

// ---------------------------------------------------------------------------

TEST(ReplayCheck, CatchesNaiveReplayButNotFreshTrajectory) {
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  ReplayDetector detector({.min_d = 1.2});

  std::vector<std::vector<Enu>> records;
  for (const auto& traj : scenario.real_trajectories(12, 40, 1.0)) {
    records.push_back(traj.reported.to_enu(proj()));
    detector.add_history(records.back());
  }
  EXPECT_EQ(detector.history_size(), 12u);

  Rng rng(5);
  // Naive replay of a record: caught.
  const auto replay = attack::naive_noise_attack(records[3], rng);
  EXPECT_EQ(detector.verify(replay), 0);
  const auto match = detector.closest(replay);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->history_index, 3u);
  EXPECT_LT(match->dtw_norm, 1.2);

  // Fresh trajectories: not replays.
  std::size_t passed = 0;
  for (const auto& traj : scenario.real_trajectories(10, 40, 1.0)) {
    passed += detector.verify(traj.reported.to_enu(proj())) == 1;
  }
  EXPECT_GE(passed, 9u);
}

TEST(ReplayCheck, MindTargetedForgeryEscapes) {
  // The adversarial replay sits just above MinD — exactly out of reach.
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  ReplayDetector detector({.min_d = 1.2});
  const auto record = scenario.real_trajectories(1, 40, 1.0)
                          .front()
                          .reported.to_enu(proj());
  detector.add_history(record);
  Rng rng(6);
  const auto forged = attack::smooth_replay_perturbation(record, 1.4, rng, 0.997);
  EXPECT_EQ(detector.verify(forged), 1);
}

TEST(ReplayCheck, EndpointPrefilterSkipsDistantRecords) {
  ReplayDetector detector({.min_d = 1.2, .endpoint_prefilter_m = 10.0});
  std::vector<Enu> far;
  for (int i = 0; i < 10; ++i) far.push_back({1000.0 + i, 1000.0});
  detector.add_history(far);
  std::vector<Enu> upload;
  for (int i = 0; i < 10; ++i) upload.push_back({static_cast<double>(i), 0.0});
  EXPECT_FALSE(detector.closest(upload).has_value());
  EXPECT_EQ(detector.verify(upload), 1);
}

TEST(ReplayCheck, ValidatesInput) {
  EXPECT_THROW(ReplayDetector({.min_d = 0.0}), std::invalid_argument);
  ReplayDetector detector;
  EXPECT_THROW(detector.add_history({{0, 0}}), std::invalid_argument);
  EXPECT_THROW(detector.verify({{0, 0}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------

TEST(RssiSimilarity, AcceptsConsistentAndFlagsShiftedSignatures) {
  // Linear RSSI field: 1 dB per metre east.
  Rng rng(7);
  std::vector<wifi::ReferencePoint> refs;
  for (int i = 0; i < 3000; ++i) {
    const Enu p{rng.uniform(0, 60), rng.uniform(0, 60)};
    refs.push_back({p, {{1, static_cast<int>(std::lround(-40.0 - p.east))}}, 0});
  }
  const wifi::ReferenceIndex index(std::move(refs));
  const RssiSimilarityDetector detector(index, {.reference_radius_m = 10.0,
                                                .tolerance_db = 6.0});

  std::vector<Enu> positions;
  std::vector<wifi::WifiScan> good;
  std::vector<wifi::WifiScan> shifted;
  for (int j = 0; j < 8; ++j) {
    const Enu p{10.0 + j * 4.0, 30.0};
    positions.push_back(p);
    good.push_back({{1, static_cast<int>(std::lround(-40.0 - p.east))}});
    // 30 m east of the claim: a gross mismatch even for a coarse signature.
    shifted.push_back({{1, static_cast<int>(std::lround(-40.0 - p.east - 30.0))}});
  }
  EXPECT_EQ(detector.verify(positions, good), 1);
  EXPECT_EQ(detector.verify(positions, shifted), 0);
  EXPECT_LT(detector.mean_deviation_db(positions, good),
            detector.mean_deviation_db(positions, shifted));
}

TEST(RssiSimilarity, SlightNoiseReplayEscapes) {
  // The paper's criticism: a replay with slight noise stays well inside the
  // coarse tolerance.  Positions shifted ~1.4 m, RSSIs +-1 dB.
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  const auto history = scenario.scanned_real(40, 30, 2.0);
  std::vector<wifi::ReferencePoint> refs;
  for (const auto& traj : history) {
    const auto pts = traj.reported.to_enu(proj());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      refs.push_back({pts[i], traj.scans[i], 0});
    }
  }
  const wifi::ReferenceIndex index(std::move(refs));
  const RssiSimilarityDetector detector(index, {});

  Rng rng(8);
  std::size_t escaped = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& source = history[i];
    auto positions = source.reported.to_enu(proj());
    positions = attack::smooth_replay_perturbation(positions, 1.4, rng, 0.997);
    auto scans = source.scans;
    for (auto& scan : scans) {
      for (auto& obs : scan) {
        obs.rssi_dbm += static_cast<int>(rng.uniform_int(-1, 1));
      }
    }
    escaped += detector.verify(positions, scans) == 1;
  }
  EXPECT_GE(escaped, 8u);  // the coarse signature cannot catch the replay
}

TEST(RssiSimilarity, MissingHistoryIsSuspicious) {
  const wifi::ReferenceIndex index({{{1000, 1000}, {{1, -50}}, 0}});
  const RssiSimilarityDetector detector(index, {});
  // Upload far from any history: no matchable APs -> flagged.
  EXPECT_EQ(detector.verify({{0, 0}}, {{{2, -60}}}), 0);
}

TEST(RssiSimilarity, ValidatesInput) {
  const wifi::ReferenceIndex index({{{0, 0}, {}, 0}});
  EXPECT_THROW(RssiSimilarityDetector(index, {.reference_radius_m = 0.0}),
               std::invalid_argument);
  const RssiSimilarityDetector detector(index, {});
  EXPECT_THROW(detector.verify({{0, 0}}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace trajkit::baseline
