// Adversarial-crowdsourcing battery: uploader provenance, robust per-cell
// aggregation, reputation scoring, quarantine, and the rate cap — the
// defenses the crowd store raises against the paper's data-poisoning threat
// (colluding uploaders feeding forged RSSI history into the reference store
// the whole detector leans on).
//
// The scenario every store-level test shares: an honest crowd of distinct
// uploaders seeds the full grid with the analytic linear field
// (tests/support/fixtures: rssi = -40 - east dBm), then a small ring of
// coordinated poisoners floods a 2x2-cell patch with observations shifted
// 15 dB (the same cell-shift attack bench_poison sweeps).  The properties
// pinned here:
//
//   * the observation-weighted pooled mean is dragged by the flood while the
//     witness-weighted robust consensus (median of per-uploader means) holds;
//   * with trimming disabled the robust path answers bitwise from the pooled
//     accumulators (the exact-mean oracle contract);
//   * every poisoner's reputation decays to auto-quarantine, no honest
//     uploader's does, and quarantine/clear round-trips through journal
//     replay, compaction and reopen;
//   * reopening a store replays the adversarial state bitwise, arrival-order
//     shuffles of the flood never change the quarantine verdict, and the
//     global thread count is irrelevant to ingestion state;
//   * the per-uploader rate cap refuses floods at admission, deterministically.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "serve/shard_service.hpp"
#include "support/fixtures.hpp"
#include "support/golden.hpp"
#include "wifi/cell_stats.hpp"
#include "wifi/crowd_store.hpp"
#include "wifi/provenance.hpp"
#include "wifi/reputation.hpp"
#include "wifi/validate.hpp"

namespace trajkit {
namespace {

namespace ts = test_support;
using wifi::kAnonymousUploader;
using wifi::UploaderId;

void remove_store(const std::string& dir) {
  for (const char* name : {"/crowd.snapshot", "/crowd.snapshot.tmp",
                           "/crowd.journal", "/crowd.journal.tmp"}) {
    std::remove((dir + name).c_str());
  }
  ::rmdir(dir.c_str());
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

int field_rssi(const Enu& p) { return ts::LinearFieldWorld::field_rssi(p); }

wifi::ReferencePoint field_point(const Enu& pos, double heard_shift_east = 0.0) {
  const Enu heard{pos.east + heard_shift_east, pos.north};
  return {pos, {{1, field_rssi(heard)}}, 1u};
}

// ---------------------------------------------------------------------------
// The shared Sybil-flood scenario
//
// 8x8 grid of 4 m cells.  Honest uploaders 1..4 each drop one observation in
// every cell (distinct in-cell offsets, so their per-cell means differ by a
// couple of dB — inside the agreement tolerance).  Poisoners 900..902 then
// flood the patch cells cx, cy in {2, 3} with kRounds observations each,
// every one shifted kShiftM east through the field (-15 dB).

constexpr int kGridCells = 8;
constexpr double kCellM = 4.0;
constexpr double kShiftM = 15.0;
constexpr int kRounds = 3;
constexpr UploaderId kHonest[] = {1, 2, 3, 4};
constexpr UploaderId kPoisoners[] = {900, 901, 902};
constexpr Enu kPatchProbe{10.0, 10.0};  // inside patch cell (2, 2)

Enu honest_pos(UploaderId u, int cx, int cy) {
  return {cx * kCellM + 0.8 + 0.6 * static_cast<double>(u),
          cy * kCellM + 2.0};
}

std::vector<std::pair<wifi::ReferencePoint, UploaderId>> honest_appends() {
  std::vector<std::pair<wifi::ReferencePoint, UploaderId>> out;
  for (const UploaderId u : kHonest) {
    for (int cx = 0; cx < kGridCells; ++cx) {
      for (int cy = 0; cy < kGridCells; ++cy) {
        out.emplace_back(field_point(honest_pos(u, cx, cy)), u);
      }
    }
  }
  return out;
}

std::vector<std::pair<wifi::ReferencePoint, UploaderId>> poison_appends() {
  std::vector<std::pair<wifi::ReferencePoint, UploaderId>> out;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < std::size(kPoisoners); ++i) {
      for (int cx = 2; cx <= 3; ++cx) {
        for (int cy = 2; cy <= 3; ++cy) {
          const Enu pos{cx * kCellM + 2.0 + 0.1 * static_cast<double>(i),
                        cy * kCellM + 2.0};
          out.emplace_back(field_point(pos, kShiftM), kPoisoners[i]);
        }
      }
    }
  }
  return out;
}

std::unique_ptr<wifi::CrowdStore> build_poisoned_store(const std::string& dir) {
  auto store = wifi::CrowdStore::open(dir);
  EXPECT_TRUE(store.has_value()) << store.error();
  for (const auto& [point, uploader] : honest_appends()) {
    EXPECT_TRUE(store.value()->append(point, uploader).has_value());
  }
  for (const auto& [point, uploader] : poison_appends()) {
    EXPECT_TRUE(store.value()->append(point, uploader).has_value());
  }
  return std::move(store).value();
}

// ---------------------------------------------------------------------------
// Trimmed-mean arithmetic

TEST(Poison, TrimmedMeanMatchesItsSpec) {
  // trim = 0: plain mean.
  EXPECT_DOUBLE_EQ(wifi::trimmed_mean({1.0, 2.0, 3.0, 10.0}, 0.0), 4.0);
  // trim >= 0.5 degenerates to the median, odd and even.
  EXPECT_DOUBLE_EQ(wifi::trimmed_mean({5.0, 1.0, 9.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(wifi::trimmed_mean({4.0, 1.0, 9.0, 6.0}, 0.7), 5.0);
  // trim = 0.25 over 4 values drops one from each end.
  EXPECT_DOUBLE_EQ(wifi::trimmed_mean({-100.0, 1.0, 3.0, 100.0}, 0.25), 2.0);
  // The cap: trimming may never consume every value.
  EXPECT_DOUBLE_EQ(wifi::trimmed_mean({7.0}, 0.49), 7.0);
  EXPECT_DOUBLE_EQ(wifi::trimmed_mean({2.0, 4.0}, 0.49), 3.0);
  // trim 0.2 over 5 witnesses drops one from each end: the -65 outlier goes,
  // and so does the honest extreme -49.
  EXPECT_DOUBLE_EQ(wifi::trimmed_mean({-65.0, -50.0, -51.0, -49.0, -50.0}, 0.2),
                   (-51.0 - 50.0 - 50.0) / 3.0);
}

// ---------------------------------------------------------------------------
// Provenance grid

TEST(Poison, ProvenanceGridRoundTripsSerialisation) {
  wifi::ProvenanceGrid grid;
  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    const Enu pos{rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)};
    const UploaderId u = static_cast<UploaderId>(rng.uniform_int(0, 5));
    grid.add({pos, {{1, field_rssi(pos)}, {2, -60}}, 1u}, u);
  }
  const std::string text = grid.serialize();
  auto parsed = wifi::ProvenanceGrid::deserialize(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_TRUE(parsed.value() == grid);
  EXPECT_EQ(parsed.value().checksum(), grid.checksum());
  EXPECT_EQ(parsed.value().serialize(), text);

  EXPECT_FALSE(wifi::ProvenanceGrid::deserialize("nonsense").has_value());
  EXPECT_FALSE(wifi::ProvenanceGrid::deserialize("provgrid 9 4 0 0\n").has_value());
}

TEST(Poison, UploaderMeansExcludeTheScoredWitness) {
  wifi::ProvenanceGrid grid;
  const Enu pos{1.0, 1.0};
  grid.add({pos, {{7, -50}}, 1u}, 1);
  grid.add({pos, {{7, -52}}, 1u}, 2);
  grid.add({pos, {{7, -90}}, 1u}, 3);
  EXPECT_EQ(grid.uploader_means(pos, 7).size(), 3u);
  const auto excl = grid.uploader_means(pos, 7, 3);
  ASSERT_EQ(excl.size(), 2u);
  EXPECT_DOUBLE_EQ(excl[0], -50.0);
  EXPECT_DOUBLE_EQ(excl[1], -52.0);
  // Excluding the anonymous uploader excludes nobody (anonymous is the
  // "no identity" sentinel, not an identity).
  EXPECT_EQ(grid.uploader_means(pos, 7, kAnonymousUploader).size(), 3u);
}

// ---------------------------------------------------------------------------
// Robust aggregation vs the Sybil flood

TEST(Poison, SybilFloodDragsPooledMeanButNotRobustConsensus) {
  wifi::CellStatsGrid pooled;
  wifi::ProvenanceGrid prov;
  const Enu pos{1.0, 1.0};
  auto add = [&](int rssi, UploaderId u) {
    const wifi::ReferencePoint p{pos, {{7, rssi}}, 1u};
    pooled.add(p);
    prov.add(p, u);
  };
  // Five honest witnesses, one observation each.
  for (UploaderId u = 1; u <= 5; ++u) add(-50, u);
  // Two colluders flood 40 shifted observations each: the pooled mean weighs
  // observations, so the flood owns it; the robust median weighs witnesses.
  for (int i = 0; i < 40; ++i) {
    add(-90, 600);
    add(-90, 601);
  }
  const wifi::RobustCellAggregator median(pooled, prov, {0.5, 2});
  double robust = 0.0;
  ASSERT_TRUE(median.estimate(pos, 7, &robust));
  EXPECT_DOUBLE_EQ(robust, -50.0);

  const wifi::RobustCellAggregator exact(pooled, prov, {0.0, 2});
  double mean = 0.0;
  ASSERT_TRUE(exact.estimate(pos, 7, &mean));
  EXPECT_LT(mean, -80.0);  // 80 of 85 observations are the flood

  // A trim wide enough to drop both colluding witnesses (floor(0.3 * 7) = 2
  // from each end) also survives this minority without going all the way to
  // the median.
  const wifi::RobustCellAggregator trimmed(pooled, prov, {0.3, 2});
  double light = 0.0;
  ASSERT_TRUE(trimmed.estimate(pos, 7, &light));
  EXPECT_DOUBLE_EQ(light, -50.0);
}

TEST(Poison, TrimZeroIsBitwiseThePooledMean) {
  wifi::CellStatsGrid pooled;
  wifi::ProvenanceGrid prov;
  Rng rng(23);
  for (int i = 0; i < 400; ++i) {
    const Enu pos{rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)};
    const std::uint64_t mac = static_cast<std::uint64_t>(rng.uniform_int(1, 3));
    const int rssi = static_cast<int>(rng.uniform_int(-90, -40));
    const UploaderId u = static_cast<UploaderId>(rng.uniform_int(0, 7));
    const wifi::ReferencePoint p{pos, {{mac, rssi}}, 1u};
    pooled.add(p);
    prov.add(p, u);
  }
  const wifi::RobustCellAggregator agg(pooled, prov, {0.0, 2});
  std::size_t checked = 0;
  for (const auto& [key, cell] : pooled.cells()) {
    const Enu probe{(static_cast<double>(key.first) + 0.5) * pooled.cell_size_m(),
                    (static_cast<double>(key.second) + 0.5) * pooled.cell_size_m()};
    for (const auto& [mac, stats] : cell.aps) {
      double estimate = 0.0;
      ASSERT_TRUE(agg.estimate(probe, mac, &estimate));
      const double oracle = stats.mean();
      // Bitwise, not approximately: the trim = 0 path must answer from the
      // very same accumulators the pre-provenance estimator used.
      std::uint64_t est_bits = 0, oracle_bits = 0;
      std::memcpy(&est_bits, &estimate, sizeof est_bits);
      std::memcpy(&oracle_bits, &oracle, sizeof oracle_bits);
      EXPECT_EQ(est_bits, oracle_bits)
          << "cell (" << key.first << ", " << key.second << ") mac " << mac;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50u);
}

// ---------------------------------------------------------------------------
// Reputation

TEST(PoisonReputation, AgreementIsToleranceThenLinearFalloff) {
  const wifi::ReputationParams p;  // tol 4 dB, falloff 8 dB
  EXPECT_DOUBLE_EQ(wifi::ReputationBook::agreement(0.0, p), 1.0);
  EXPECT_DOUBLE_EQ(wifi::ReputationBook::agreement(-4.0, p), 1.0);
  EXPECT_DOUBLE_EQ(wifi::ReputationBook::agreement(8.0, p), 0.5);
  EXPECT_DOUBLE_EQ(wifi::ReputationBook::agreement(-12.0, p), 0.0);
  EXPECT_DOUBLE_EQ(wifi::ReputationBook::agreement(40.0, p), 0.0);
}

TEST(PoisonReputation, ScoresAreMonotoneUnderAgreementAndDecayUnderDissent) {
  const wifi::ReputationParams params;
  wifi::ReputationBook book;
  // Perfect agreement never lowers a score.
  double prev = 1.0;
  for (int i = 0; i < 20; ++i) {
    book.observe(5, 1.0, params);
    const double score = book.record(5).score;
    EXPECT_GE(score, prev);
    prev = score;
  }
  EXPECT_FALSE(book.is_quarantined(5));
  // Total dissent strictly lowers it every time, down to auto-quarantine.
  prev = book.record(5).score;
  bool crossed = false;
  for (int i = 0; i < 40; ++i) {
    book.observe(5, 0.0, params);
    const double score = book.record(5).score;
    EXPECT_LT(score, prev);
    prev = score;
    if (book.is_quarantined(5)) {
      crossed = true;
      break;
    }
  }
  EXPECT_TRUE(crossed);
  EXPECT_LT(book.record(5).score, params.quarantine_below);
  // Anonymous is never tracked.
  book.observe(kAnonymousUploader, 0.0, params);
  EXPECT_TRUE(book.record(kAnonymousUploader) == wifi::UploaderRecord{});
}

TEST(PoisonReputation, BookSerialisationRoundTripsAndValidates) {
  const wifi::ReputationParams params;
  wifi::ReputationBook book;
  for (int i = 0; i < 9; ++i) book.observe(3, i % 2 ? 1.0 : 0.25, params);
  book.quarantine(8);
  auto parsed = wifi::ReputationBook::deserialize(book.serialize());
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_TRUE(parsed.value() == book);

  EXPECT_FALSE(wifi::ReputationBook::deserialize("garbage").has_value());
  EXPECT_FALSE(
      wifi::ReputationBook::deserialize("repbook 1 1\n7 1.5 3 0\n").has_value());
  EXPECT_FALSE(
      wifi::ReputationBook::deserialize("repbook 1 1\n0 0.5 3 0\n").has_value());
  EXPECT_FALSE(wifi::ReputationBook::deserialize("repbook 1 2\n7 0.5 3 0\n7 0.5 3 0\n")
                   .has_value());
}

// ---------------------------------------------------------------------------
// The store under the coordinated flood

TEST(Poison, CoordinatedPoisonersAreAutoQuarantinedAndHonestCrowdIsNot) {
  const std::string dir = "poison_test_flood";
  remove_store(dir);
  auto store = build_poisoned_store(dir);

  for (const UploaderId u : kPoisoners) {
    EXPECT_TRUE(store->reputation().is_quarantined(u)) << "poisoner " << u;
  }
  double min_honest = 1.0;
  for (const UploaderId u : kHonest) {
    EXPECT_FALSE(store->reputation().is_quarantined(u)) << "honest " << u;
    min_honest = std::min(min_honest, store->reputation().record(u).score);
  }
  double max_poison = 0.0;
  for (const UploaderId u : kPoisoners) {
    max_poison = std::max(max_poison, store->reputation().record(u).score);
  }
  // The scores separate cleanly — this margin is what gives bench_poison its
  // detection AUC of 1 at every swept poison fraction.
  EXPECT_GT(min_honest, max_poison + 0.3);

  const std::size_t honest_count = honest_appends().size();
  const std::size_t poison_count = poison_appends().size();
  EXPECT_EQ(store->points().size(), honest_count + poison_count);
  EXPECT_EQ(store->trusted_points().size(), honest_count);
  EXPECT_EQ(store->quarantined_point_count(), poison_count);

  // In the flooded patch cell the pooled mean moved by several dB; the
  // witness-weighted median barely noticed.
  const wifi::RobustCellAggregator robust(store->cell_stats(), store->provenance(),
                                          store->aggregation_params());
  const wifi::RobustCellAggregator pooled(store->cell_stats(), store->provenance(),
                                          {0.0, 2});
  const double honest_field = static_cast<double>(field_rssi(kPatchProbe));
  double robust_est = 0.0, pooled_est = 0.0;
  ASSERT_TRUE(robust.estimate(kPatchProbe, 1, &robust_est));
  ASSERT_TRUE(pooled.estimate(kPatchProbe, 1, &pooled_est));
  EXPECT_NEAR(robust_est, honest_field, 3.0);
  EXPECT_LT(pooled_est, robust_est - 5.0);
}

TEST(Poison, QuarantineAndClearMarkersRoundTripThroughRecovery) {
  const std::string dir = "poison_test_review";
  remove_store(dir);
  const UploaderId suspect = 42;
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    ASSERT_TRUE(store.value()->append(field_point({5.0, 5.0}), suspect).has_value());
    ASSERT_TRUE(store.value()->append(field_point({6.0, 5.0})).has_value());
    EXPECT_EQ(store.value()->trusted_points().size(), 2u);
    ASSERT_TRUE(store.value()->append_quarantine_marker(suspect).has_value());
    EXPECT_TRUE(store.value()->reputation().is_quarantined(suspect));
    EXPECT_EQ(store.value()->trusted_points().size(), 1u);
    EXPECT_EQ(store.value()->quarantined_point_count(), 1u);
  }
  {
    // Journal replay restores the review verdict.
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_TRUE(store.value()->reputation().is_quarantined(suspect));
    EXPECT_EQ(store.value()->quarantined_point_count(), 1u);
    ASSERT_TRUE(store.value()->compact().has_value());
  }
  {
    // So does the v3 snapshot after compaction folded the journal away.
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_EQ(store.value()->journaled_since_snapshot(), 0u);
    EXPECT_TRUE(store.value()->reputation().is_quarantined(suspect));
    EXPECT_EQ(store.value()->trusted_points().size(), 1u);
    // Review clears the uploader: a fresh record, points trusted again.
    ASSERT_TRUE(store.value()->append_clear_marker(suspect).has_value());
    EXPECT_FALSE(store.value()->reputation().is_quarantined(suspect));
    EXPECT_TRUE(store.value()->reputation().record(suspect) ==
                wifi::UploaderRecord{});
    EXPECT_EQ(store.value()->trusted_points().size(), 2u);
  }
  {
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_FALSE(store.value()->reputation().is_quarantined(suspect));
    EXPECT_EQ(store.value()->trusted_points().size(), 2u);
  }
  remove_store(dir);
}

TEST(Poison, UnknownControlFramesAreRejected) {
  const std::string dir = "poison_test_ctrl";
  remove_store(dir);
  auto store = wifi::CrowdStore::open(dir);
  ASSERT_TRUE(store.has_value()) << store.error();
  for (const char* bogus : {"#demote 3", "#epoch x", "#quarantine", "#clear -1",
                            "#epoch 184467440737095516160"}) {
    auto appended = store.value()->append_control(bogus);
    EXPECT_FALSE(appended.has_value()) << bogus;
    EXPECT_NE(appended.error().find("unknown control frame"), std::string::npos)
        << appended.error();
  }
  // Nothing bogus was journaled: reopen sees a clean, empty store.
  store.value().reset();
  auto reopened = wifi::CrowdStore::open(dir);
  ASSERT_TRUE(reopened.has_value()) << reopened.error();
  EXPECT_EQ(reopened.value()->open_stats().replayed_records, 0u);
  remove_store(dir);
}

// ---------------------------------------------------------------------------
// Determinism of the adversarial layer

TEST(PoisonDeterminism, ReopenReplaysAdversarialStateBitwise) {
  const std::string dir = "poison_test_replay";
  remove_store(dir);
  std::uint64_t cells_fnv = 0, prov_fnv = 0;
  std::string reputation;
  {
    auto store = build_poisoned_store(dir);
    ASSERT_TRUE(store->append_quarantine_marker(77).has_value());
    cells_fnv = store->cell_stats().checksum();
    prov_fnv = store->provenance().checksum();
    reputation = store->reputation().serialize();
  }
  {
    // Journal-tail replay rescored every append — bitwise the same state.
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_EQ(store.value()->cell_stats().checksum(), cells_fnv);
    EXPECT_EQ(store.value()->provenance().checksum(), prov_fnv);
    EXPECT_EQ(store.value()->reputation().serialize(), reputation);
    // Compaction with the debug recompute check on: the incremental grids
    // must match a from-scratch rebuild exactly.
    store.value()->set_verify_cell_stats(true);
    ASSERT_TRUE(store.value()->compact().has_value());
  }
  {
    // Snapshot-only recovery (journal folded away) — still the same state.
    auto store = wifi::CrowdStore::open(dir);
    ASSERT_TRUE(store.has_value()) << store.error();
    EXPECT_EQ(store.value()->open_stats().replayed_records, 0u);
    EXPECT_EQ(store.value()->cell_stats().checksum(), cells_fnv);
    EXPECT_EQ(store.value()->provenance().checksum(), prov_fnv);
    EXPECT_EQ(store.value()->reputation().serialize(), reputation);
  }
  remove_store(dir);
}

TEST(PoisonDeterminism, FloodOrderAndThreadCountNeverChangeTheVerdict) {
  // The quarantine verdict must be a property of *what* was uploaded, not of
  // arrival interleaving or of the global thread count: shuffle the flood
  // under different seeds and thread settings and demand the same outcome.
  const std::string dir = "poison_test_shuffle";
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_global_threads(threads);
    for (const std::uint64_t trial : {0ull, 1ull, 2ull}) {
      remove_store(dir);
      auto store = wifi::CrowdStore::open(dir);
      ASSERT_TRUE(store.has_value()) << store.error();
      for (const auto& [point, uploader] : honest_appends()) {
        ASSERT_TRUE(store.value()->append(point, uploader).has_value());
      }
      auto flood = poison_appends();
      Rng rng = Rng::substream(0xBADC0DE, trial);
      rng.shuffle(flood);
      for (const auto& [point, uploader] : flood) {
        ASSERT_TRUE(store.value()->append(point, uploader).has_value());
      }
      for (const UploaderId u : kPoisoners) {
        EXPECT_TRUE(store.value()->reputation().is_quarantined(u))
            << "threads " << threads << " trial " << trial << " poisoner " << u;
      }
      for (const UploaderId u : kHonest) {
        EXPECT_FALSE(store.value()->reputation().is_quarantined(u))
            << "threads " << threads << " trial " << trial << " honest " << u;
      }
    }
  }
  set_global_threads(0);
  remove_store(dir);
}

// ---------------------------------------------------------------------------
// Rate cap

TEST(PoisonRateLimit, WindowCapAdmitsThenRefusesThenSlides) {
  wifi::UploaderRateLimiter limiter({.window_appends = 10, .max_per_uploader = 3});
  for (const std::uint64_t tick : {0u, 1u, 2u}) {
    EXPECT_TRUE(limiter.admit(7, tick).has_value());
  }
  auto refused = limiter.admit(7, 3);
  ASSERT_FALSE(refused.has_value());
  EXPECT_NE(refused.error().find("rate cap exceeded"), std::string::npos)
      << refused.error();
  // A refused admission consumes no budget; the window slides on append
  // ordinals, so by tick 12 the three admissions from ticks 0..2 expired.
  EXPECT_FALSE(limiter.admit(7, 9).has_value());
  EXPECT_TRUE(limiter.admit(7, 12).has_value());
  // Anonymous uploads and other uploaders are unaffected throughout.
  EXPECT_TRUE(limiter.admit(kAnonymousUploader, 3).has_value());
  EXPECT_TRUE(limiter.admit(8, 3).has_value());
  // A disabled policy admits everything.
  wifi::UploaderRateLimiter off;
  for (std::uint64_t t = 0; t < 100; ++t) EXPECT_TRUE(off.admit(7, t).has_value());
}

TEST(PoisonRateLimit, WindowBoundaryIsExactOnAppendOrdinals) {
  // An admission at tick t expires exactly at t + window_appends — not one
  // append earlier, not one later.  window=5/max=2 makes every edge visible.
  wifi::UploaderRateLimiter limiter({.window_appends = 5, .max_per_uploader = 2});
  EXPECT_TRUE(limiter.admit(7, 0).has_value());
  EXPECT_TRUE(limiter.admit(7, 1).has_value());
  // Budget exhausted for the whole of [0, 5): the admission from tick 0 is
  // still inside the window at tick 4 (0 + 5 > 4).
  for (const std::uint64_t tick : {2u, 3u, 4u}) {
    EXPECT_FALSE(limiter.admit(7, tick).has_value()) << "tick " << tick;
  }
  // tick 5 is the exact edge: 0 + 5 <= 5 expires the first admission.
  EXPECT_TRUE(limiter.admit(7, 5).has_value());
  // The window now holds {1, 5}; a second admission at the same ordinal must
  // refuse (1 + 5 > 5), and the next edge opens at tick 6.
  EXPECT_FALSE(limiter.admit(7, 5).has_value());
  EXPECT_TRUE(limiter.admit(7, 6).has_value());
  // Far-future tick: everything expired, full budget again.
  EXPECT_TRUE(limiter.admit(7, 100).has_value());
  EXPECT_TRUE(limiter.admit(7, 100).has_value());
  EXPECT_FALSE(limiter.admit(7, 100).has_value());
}

TEST(PoisonRateLimit, ReplayIsExemptFromATunedDownCap) {
  // Admission runs at append time only.  Records the store durably accepted
  // under yesterday's policy must replay in full under today's stricter one —
  // re-litigating history would refuse to recover an acked journal.
  const std::string dir = "poison_test_rate_replay";
  remove_store(dir);
  const std::size_t kAccepted = 6;
  {
    auto store = wifi::CrowdStore::open(dir);  // no cap configured
    ASSERT_TRUE(store.has_value()) << store.error();
    for (std::size_t i = 0; i < kAccepted; ++i) {
      ASSERT_TRUE(
          store.value()->append(field_point({double(i), 1.0}), 7).has_value());
    }
  }
  wifi::CrowdStore::Tuning tuning;
  tuning.rate_policy = {.window_appends = 100, .max_per_uploader = 1};
  auto store = wifi::CrowdStore::open(dir, true, tuning);
  ASSERT_TRUE(store.has_value()) << store.error();
  // All six journaled appends survived replay despite exceeding today's cap.
  EXPECT_EQ(store.value()->points().size(), kAccepted);
  // The cap applies to *fresh* traffic from a clean window: one admission,
  // then refusal — and the refusal journals nothing.
  EXPECT_TRUE(
      store.value()->append(field_point({8.0, 1.0}), 7).has_value());
  const std::uint64_t next = store.value()->next_seq();
  auto refused = store.value()->append(field_point({9.0, 1.0}), 7);
  ASSERT_FALSE(refused.has_value());
  EXPECT_NE(refused.error().find("rate cap exceeded"), std::string::npos);
  EXPECT_EQ(store.value()->next_seq(), next);
  EXPECT_EQ(store.value()->points().size(), kAccepted + 1);
  remove_store(dir);
}

TEST(PoisonRateLimit, StoreRefusesFloodsAtAdmissionDeterministically) {
  const std::string dir = "poison_test_rate";
  remove_store(dir);
  wifi::CrowdStore::Tuning tuning;
  tuning.rate_policy = {.window_appends = 100, .max_per_uploader = 5};
  auto store = wifi::CrowdStore::open(dir, true, tuning);
  ASSERT_TRUE(store.has_value()) << store.error();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        store.value()->append(field_point({double(i), 1.0}), 7).has_value());
  }
  const std::uint64_t next = store.value()->next_seq();
  auto refused = store.value()->append(field_point({5.0, 1.0}), 7);
  ASSERT_FALSE(refused.has_value());
  EXPECT_NE(refused.error().find("rate cap exceeded"), std::string::npos)
      << refused.error();
  // The refusal journaled nothing and mutated nothing.
  EXPECT_EQ(store.value()->next_seq(), next);
  EXPECT_EQ(store.value()->points().size(), 5u);
  // Anonymous and differently-identified uploads still land.
  EXPECT_TRUE(store.value()->append(field_point({6.0, 1.0})).has_value());
  EXPECT_TRUE(store.value()->append(field_point({7.0, 1.0}), 8).has_value());
  remove_store(dir);
}

// ---------------------------------------------------------------------------
// Replication carries provenance and review actions

TEST(Poison, ReplicationShipsProvenanceAndQuarantineToFollowers) {
  const std::string leader_dir = "poison_test_leader";
  const std::string follower_dir = "poison_test_follower";
  const std::string boot_dir = "poison_test_boot";
  remove_store(leader_dir);
  remove_store(follower_dir);
  remove_store(boot_dir);

  auto leader = serve::ShardService::open_leader(0, leader_dir);
  ASSERT_TRUE(leader.has_value()) << leader.error();
  auto follower = serve::ShardReplica::open(follower_dir);
  ASSERT_TRUE(follower.has_value()) << follower.error();
  leader.value()->attach_follower(follower.value().get());

  for (const auto& [point, uploader] : honest_appends()) {
    ASSERT_TRUE(leader.value()->ingest(point, uploader).has_value());
  }
  for (const auto& [point, uploader] : poison_appends()) {
    ASSERT_TRUE(leader.value()->ingest(point, uploader).has_value());
  }
  ASSERT_TRUE(leader.value()
                  ->ship_control(wifi::CrowdStore::encode_quarantine_marker(77))
                  .has_value());

  const wifi::CrowdStore& ls = *leader.value()->store();
  const wifi::CrowdStore& fs = follower.value()->store();
  // The follower rescored the same frames under the same params: bitwise the
  // same adversarial state, including the auto- and review quarantines.
  EXPECT_EQ(fs.provenance().checksum(), ls.provenance().checksum());
  EXPECT_EQ(fs.cell_stats().checksum(), ls.cell_stats().checksum());
  EXPECT_EQ(fs.reputation().serialize(), ls.reputation().serialize());
  for (const UploaderId u : kPoisoners) {
    EXPECT_TRUE(fs.reputation().is_quarantined(u)) << u;
  }
  EXPECT_TRUE(fs.reputation().is_quarantined(77));

  // A cold bootstrap from the leader's on-disk state converges to it too.
  auto booted = serve::ShardReplica::bootstrap(leader_dir, boot_dir);
  ASSERT_TRUE(booted.has_value()) << booted.error();
  EXPECT_EQ(booted.value()->store().provenance().checksum(),
            ls.provenance().checksum());
  EXPECT_EQ(booted.value()->store().reputation().serialize(),
            ls.reputation().serialize());

  remove_store(leader_dir);
  remove_store(follower_dir);
  remove_store(boot_dir);
}

// ---------------------------------------------------------------------------
// Golden pin: the poisoned-store scenario's full adversarial verdict

TEST(Golden, PoisonedStoreAdversarialStateIsPinned) {
  const std::string dir = "poison_test_golden";
  remove_store(dir);
  auto store = build_poisoned_store(dir);

  std::string out;
  out += "points=" + std::to_string(store->points().size());
  out += " trusted=" + std::to_string(store->trusted_points().size());
  out += " quarantined_points=" + std::to_string(store->quarantined_point_count());
  out += '\n';
  const wifi::RobustCellAggregator robust(store->cell_stats(), store->provenance(),
                                          store->aggregation_params());
  const wifi::RobustCellAggregator pooled(store->cell_stats(), store->provenance(),
                                          {0.0, 2});
  for (int cx = 2; cx <= 3; ++cx) {
    for (int cy = 2; cy <= 3; ++cy) {
      const Enu probe{(cx + 0.5) * kCellM, (cy + 0.5) * kCellM};
      double r = 0.0, m = 0.0;
      ASSERT_TRUE(robust.estimate(probe, 1, &r));
      ASSERT_TRUE(pooled.estimate(probe, 1, &m));
      out += "cell " + std::to_string(cx) + ' ' + std::to_string(cy) +
             " robust=" + ts::canonical_double(r) +
             " pooled=" + ts::canonical_double(m) + '\n';
    }
  }
  out += "reputation:\n";
  out += store->reputation().serialize();
  out += "provenance_fnv=" + hex64(store->provenance().checksum()) + '\n';
  out += "cellstats_fnv=" + hex64(store->cell_stats().checksum()) + '\n';
  EXPECT_TRUE(ts::matches_golden("poison_adversarial_state.txt", out));
  remove_store(dir);
}

}  // namespace
}  // namespace trajkit
