// Car-hailing mileage audit — the paper's motivating scenario.
//
// A ride-hailing platform pays drivers by recorded mileage.  A malicious
// driver replays a previous trip's GPS trace, adversarially perturbed to
// (a) look like genuine driving and (b) inflate the counted distance.
// The platform audits trips in two stages:
//   stage 1: the motion classifier — the adversarial forgery passes;
//   stage 2: the WiFi RSSI check  — the forgery is caught, because the
//            replayed scans do not match the crowdsourced RSSI distributions
//            along the claimed (shifted) positions.
#include <cstdio>

#include "core/trajkit.hpp"

using namespace trajkit;

int main() {
  std::printf("== car-hailing mileage audit ==\n\n");

  // Area C: the commercial main road (driving scenario).
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kDriving));
  const std::size_t trip_points = 48;

  // ---- The platform's infrastructure ------------------------------------
  std::printf("[platform] training the trip-audit motion classifier...\n");
  core::MotionDatasetConfig dcfg;
  dcfg.train_real = 180;
  dcfg.train_fake = 120;
  dcfg.test_real = 30;
  dcfg.test_fake = 30;
  dcfg.points = trip_points;
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  core::MotionModelConfig mcfg;
  mcfg.hidden = 24;
  mcfg.epochs = 18;
  const core::MotionModels models(dataset, mcfg);

  std::printf("[platform] building the crowdsourced RSSI history...\n");
  core::RssiExperimentConfig rssi_cfg;
  rssi_cfg.total = 400;
  rssi_cfg.points = 30;

  // ---- The driver's forgery ----------------------------------------------
  std::printf("\n[driver] recording one genuine trip...\n");
  const auto trip = scenario.real_trajectories(1, trip_points, 1.0).front();
  const auto trip_pts = trip.reported.to_enu(sim::sim_projection());
  const double true_km = trip.reported.length_m() / 1000.0;

  std::printf("[driver] forging a replayed trip with the C&W attack...\n");
  attack::CwConfig cw;
  cw.iterations = 300;
  const attack::CwAttacker attacker(models.model_c(), models.dist_angle_encoder(), cw);
  const auto forged = attacker.forge_replay(trip_pts, attack::paper_mind(Mode::kDriving));
  const auto forged_traj =
      Trajectory::from_enu(forged.points, sim::sim_projection(), Mode::kDriving, 1.0);
  const double claimed_km = forged_traj.length_m() / 1000.0;

  std::printf("  true trip:    %.3f km\n", true_km);
  std::printf("  claimed trip: %.3f km (%+.1f%% mileage)\n", claimed_km,
              100.0 * (claimed_km - true_km) / true_km);
  std::printf("  DTW to history: %.2f m/step (MinD=%.1f => not a detectable replay)\n",
              forged.dtw_norm, attack::paper_mind(Mode::kDriving));

  // ---- Stage 1: motion audit ---------------------------------------------
  core::MotionSample sample;
  sample.points = forged.points;
  sample.trajectory = forged_traj;
  sample.label = 0;
  const auto verdicts = models.predict_all(sample);
  std::printf("\n[audit stage 1] motion classifiers on the forged trip:\n");
  const auto& names = core::MotionModels::model_names();
  for (std::size_t m = 0; m < names.size(); ++m) {
    std::printf("  %-8s says: %s\n", names[m].c_str(),
                verdicts[m] == 1 ? "GENUINE (fooled)" : "FORGED");
  }

  // ---- Stage 2: RSSI audit ------------------------------------------------
  std::printf("\n[audit stage 2] WiFi RSSI check over the whole fleet:\n");
  const auto result = core::run_rssi_experiment(scenario, rssi_cfg);
  std::printf("  fleet-level detection: %s\n", result.confusion.summary().c_str());
  std::printf("  (each fake trip replays its scans +-1 dB at positions shifted "
              "past MinD)\n");

  std::printf("\nconclusion: motion characteristics alone cannot stop the "
              "mileage fraud; the RSSI cross-check can.\n");
  return 0;
}
