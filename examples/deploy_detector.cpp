// Deployment walkthrough: train the RSSI detector once, persist it, reload it
// in a "serving" process, and localise which stretch of an upload is forged.
//
// This is the operational side a provider actually needs: the crowdsourced
// reference store plus the trained classifier travel together in one model
// file, and per-point suspicion scores let an auditor see *where* a partly
// forged trip deviates (e.g. a driver splicing a detour into a real trip).
#include <cstdio>

#include "core/trajkit.hpp"

using namespace trajkit;

int main() {
  std::printf("== detector deployment walkthrough ==\n\n");
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  Rng& rng = scenario.rng();
  const double min_d = attack::paper_mind(Mode::kWalking);

  // ---- Training process ---------------------------------------------------
  std::printf("[train] collecting history and training the detector...\n");
  const auto history = scenario.scanned_real(350, 30, 2.0);
  std::vector<wifi::ScannedUpload> history_uploads;
  for (const auto& t : history) history_uploads.push_back(core::to_upload(t));

  wifi::RssiDetectorConfig cfg;
  cfg.confidence.reference_radius_m = 2.5;
  wifi::RssiDetector detector(wifi::flatten_history(history_uploads), cfg);

  std::vector<wifi::ScannedUpload> train;
  std::vector<int> labels;
  for (std::size_t i = 0; i < 260; ++i) {
    auto upload = core::to_upload(history[i]);
    upload.source_traj_id = static_cast<std::uint32_t>(i);
    train.push_back(std::move(upload));
    labels.push_back(1);
  }
  for (std::size_t i = 260; i < history.size(); ++i) {
    train.push_back(core::forge_upload(history[i], min_d + 0.1, 1, rng));
    labels.push_back(0);
    train.push_back(core::forge_upload(history[i], 3.0, 1, rng));
    labels.push_back(0);
  }
  detector.train(train, labels);

  const char* model_path = "rssi_detector.model";
  detector.save_file(model_path);
  std::printf("[train] saved detector (%zu reference points) to %s\n",
              detector.index().size(), model_path);

  // ---- Serving process ----------------------------------------------------
  // A deployment loads models it didn't write itself, so the non-throwing
  // try_* path is the right one: a bad path or corrupt file comes back as an
  // error string, not an exception across the service boundary.
  const auto broken = serve::VerifierService::try_create_from_file("no-such.model");
  std::printf("\n[serve] probing a missing model file: %s\n",
              broken ? "unexpectedly loaded" : broken.error().c_str());

  std::printf("[serve] bringing up a VerifierService from %s...\n", model_path);
  auto service_or = serve::VerifierService::try_create_from_file(model_path);
  if (!service_or) {
    std::printf("[serve] failed to load model: %s\n", service_or.error().c_str());
    return 1;
  }
  const auto service = std::move(service_or).value();

  // A partly-forged upload: the user really walked the whole trip (the scans
  // are genuine throughout), but claims a different position for the second
  // half — e.g. a detour that inflates the billed distance.  The claimed
  // positions drift 25 m away from where the scans were actually heard.
  const auto genuine = scenario.scanned_real(1, 30, 2.0).front();
  auto upload = core::to_upload(genuine);
  for (std::size_t j = 15; j < 30; ++j) {
    const double ramp = static_cast<double>(j - 14) / 15.0;  // smooth drift out
    upload.positions[j].east += 25.0 * ramp;
  }

  // Submit like a client would and block on the future.  One analyze() call
  // yields the verdict, the probability and the per-point suspicion profile.
  auto future = service->submit({/*id=*/1, upload, /*deadline_us=*/0});
  const serve::VerdictResponse response = future.get();
  if (response.outcome != serve::Outcome::kOk) {
    std::printf("[serve] request failed: %s (%s)\n",
                serve::outcome_name(response.outcome), response.error.c_str());
    return 1;
  }
  const wifi::VerdictReport& report = response.report;
  std::printf("[serve] whole-trajectory verdict: J=%d (p_real=%.3f, "
              "threshold=%.2f)\n",
              report.verdict, report.p_real, report.threshold);

  const auto& scores = report.point_scores;
  double first_half = 0.0;
  double second_half = 0.0;
  std::printf("[serve] per-point confidence profile:\n  ");
  for (std::size_t j = 0; j < scores.size(); ++j) {
    std::printf("%c", scores[j] > 0.01 ? '#' : '.');
    (j < 15 ? first_half : second_half) += scores[j];
  }
  std::printf("   ('#' = crowd-supported, '.' = unsupported)\n");
  std::printf("[serve] mean confidence: points 0-14 %.4f vs points 15-29 %.4f\n",
              first_half / 15.0, second_half / 15.0);
  std::printf("\nthe fabricated detour shows up as the low-confidence stretch "
              "— auditors can localise the forgery, not just flag the trip.\n");

  std::printf("\n[serve] service counters:\n%s", service->counters_table().c_str());
  return 0;
}
