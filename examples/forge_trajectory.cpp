// Attacker's-eye walkthrough of both forgery scenarios (Sec. II-B), with the
// forged trajectories dumped as CSV for inspection.
//
//   1. replay attack     — perturb an owned historical trajectory to sit just
//                          above MinD while the classifier calls it real;
//   2. navigation attack — fetch a route + speed from the navigation service,
//                          sample it, and perturb it into a "human" trace.
//
// Writes forged_replay.csv / forged_navigation.csv into the working
// directory (format: traj_id,mode,lat,lon,time_s; ids 0 = reference,
// 1 = forgery).
#include <cstdio>

#include "core/trajkit.hpp"

using namespace trajkit;

int main() {
  std::printf("== trajectory forgery walkthrough ==\n\n");
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kCycling));
  const std::size_t points = 48;

  // The classifier the attacker trains to mimic the provider's detector
  // (trajectory datasets are public — Sec. II-A assumption).
  std::printf("training the attacker's surrogate classifier...\n");
  core::MotionDatasetConfig dcfg;
  dcfg.train_real = 200;
  dcfg.train_fake = 120;
  dcfg.test_real = 30;
  dcfg.test_fake = 30;
  dcfg.points = points;
  const auto dataset = core::build_motion_dataset(scenario, dcfg);
  core::MotionModelConfig mcfg;
  mcfg.hidden = 24;
  mcfg.epochs = 20;
  const core::MotionModels models(dataset, mcfg);

  attack::CwConfig cw;
  cw.iterations = 350;
  const attack::CwAttacker attacker(models.model_c(), models.dist_angle_encoder(), cw);

  // ---- Scenario 1: replay -------------------------------------------------
  std::printf("\n-- replay attack --\n");
  const auto historical = scenario.real_trajectories(1, points, 1.0).front();
  const auto hist_pts = historical.reported.to_enu(sim::sim_projection());

  // MinD measured the way the paper does it: repeat one route and take the
  // minimum pairwise normalised DTW.
  const auto mind = attack::estimate_mind(scenario.simulator(), Mode::kCycling, 200.0,
                                          20, points, 1.0, scenario.rng());
  std::printf("measured MinD on this map: %.2f m/step (paper: %.1f)\n", mind.min_d,
              attack::paper_mind(Mode::kCycling));

  const auto replay = attacker.forge_replay(hist_pts, mind.min_d);
  std::printf("forged replay: adversarial=%s p(real)=%.3f DTW=%.2f m/step\n",
              replay.adversarial ? "yes" : "no", replay.p_real, replay.dtw_norm);

  TrajectoryList replay_dump;
  replay_dump.push_back(historical.reported);
  replay_dump.push_back(
      Trajectory::from_enu(replay.points, sim::sim_projection(), Mode::kCycling, 1.0));
  write_csv_file("forged_replay.csv", replay_dump);
  std::printf("wrote forged_replay.csv\n");

  // ---- Scenario 2: navigation ---------------------------------------------
  std::printf("\n-- navigation attack --\n");
  const auto nav = scenario.navigation_trajectories(1, points, 1.0).front();
  std::printf("navigation service suggested a %.0f m route\n",
              nav.reported.length_m());

  // The AN sample goes through the naive attack first (Sec. IV-A2).
  auto reference = nav.reported.to_enu(sim::sim_projection());
  reference = attack::naive_noise_attack(reference, scenario.rng());
  const auto forged = attacker.forge_navigation(reference);
  std::printf("forged navigation: adversarial=%s p(real)=%.3f DTW=%.2f m/step\n",
              forged.adversarial ? "yes" : "no", forged.p_real, forged.dtw_norm);

  // Route rationality: the forgery stays within GPS error of the road system.
  double worst_offroad = 0.0;
  for (const auto& p : forged.points) {
    worst_offroad = std::max(worst_offroad, scenario.network().distance_to_network(p));
  }
  std::printf("max distance from the road network: %.1f m\n", worst_offroad);

  TrajectoryList nav_dump;
  nav_dump.push_back(nav.reported);
  nav_dump.push_back(
      Trajectory::from_enu(forged.points, sim::sim_projection(), Mode::kCycling, 1.0));
  write_csv_file("forged_navigation.csv", nav_dump);
  std::printf("wrote forged_navigation.csv\n");
  return 0;
}
