// Quickstart: forge a trajectory, fool the motion classifier, get caught by
// the RSSI detector.
//
// This is the paper's whole story in ~100 lines:
//   1. build a simulated commercial area (roads + GPS + WiFi),
//   2. train the provider's LSTM motion classifier on real vs naive fakes,
//   3. run the C&W replay attack — the forged trajectory passes the motion
//      classifier,
//   4. run the RSSI defense — the same forgery is caught, because its
//      replayed WiFi scans do not match the crowdsourced RSSI distributions
//      at the claimed positions.
#include <cstdio>

#include "core/trajkit.hpp"

using namespace trajkit;

int main() {
  std::printf("== trajkit quickstart ==\n\n");

  // 1. A walking-scenario world (the paper's area A).
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));
  std::printf("world: %zu road nodes, %zu edges, %zu WiFi APs\n",
              scenario.network().node_count(), scenario.network().edge_count(),
              scenario.wifi().aps().size());

  // 2. The provider's motion classifier (target model C).
  core::MotionDatasetConfig data_cfg;
  data_cfg.train_real = 220;
  data_cfg.train_fake = 140;
  data_cfg.test_real = 50;
  data_cfg.test_fake = 50;
  data_cfg.points = 48;
  const auto dataset = core::build_motion_dataset(scenario, data_cfg);

  core::MotionModelConfig model_cfg;
  model_cfg.hidden = 28;
  model_cfg.epochs = 22;
  std::printf("training the 4 motion classifiers on %zu trajectories...\n",
              dataset.train.size());
  core::MotionModels models(dataset, model_cfg);
  for (const auto& eval : core::evaluate_models(models, dataset.test)) {
    std::printf("  %-8s vs naive attacks: %s\n", eval.name.c_str(),
                eval.confusion.summary().c_str());
  }

  // 3. The attacker's C&W replay forgery against model C.
  const auto history = scenario.real_trajectories(1, data_cfg.points, 1.0).front();
  const auto hist_pts = history.reported.to_enu(sim::sim_projection());

  attack::CwConfig cw_cfg;
  cw_cfg.iterations = 300;
  attack::CwAttacker attacker(models.model_c(), models.dist_angle_encoder(), cw_cfg);
  const double min_d = attack::paper_mind(Mode::kWalking);
  const auto forged = attacker.forge_replay(hist_pts, min_d);
  std::printf("\nC&W replay attack: adversarial=%s  p(real)=%.3f  "
              "DTW/step=%.2f m (MinD=%.1f)\n",
              forged.adversarial ? "yes" : "no", forged.p_real, forged.dtw_norm,
              min_d);

  // 4. The RSSI defense catches the same style of forgery.
  std::printf("\nrunning the WiFi RSSI defense experiment (scaled down)...\n");
  core::RssiExperimentConfig rssi_cfg;
  rssi_cfg.total = 320;
  const auto result = core::run_rssi_experiment(scenario, rssi_cfg);
  std::printf("  RSSI detector: %s\n", result.confusion.summary().c_str());
  std::printf("  avg APs per scan k=%.1f, avg reference points within r=%.1f\n",
              result.avg_k, result.avg_refs_per_point);

  std::printf("\ndone: the forgery beats the motion classifier but not the "
              "RSSI check.\n");
  return 0;
}
