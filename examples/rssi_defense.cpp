// Defender's-eye walkthrough of the RSSI verification pipeline (Sec. III),
// showing the internal quantities — reference points, RPDs, theta weights,
// per-AP confidences — for one real and one forged upload.
#include <cstdio>

#include "core/trajkit.hpp"

using namespace trajkit;

int main() {
  std::printf("== WiFi RSSI defense walkthrough ==\n\n");
  core::Scenario scenario(core::ScenarioConfig::for_mode(Mode::kWalking));

  // Crowdsourced history: the provider's H.
  std::printf("collecting crowdsourced history (this is the LSP's asset)...\n");
  const auto history = scenario.scanned_real(300, 30, 2.0);
  std::vector<wifi::ScannedUpload> history_uploads;
  for (const auto& traj : history) history_uploads.push_back(core::to_upload(traj));
  auto refs = wifi::flatten_history(history_uploads);
  std::printf("history: %zu trajectories -> %zu reference points\n\n", history.size(),
              refs.size());

  wifi::RssiDetectorConfig cfg;
  cfg.confidence.reference_radius_m = 2.5;
  cfg.confidence.top_k = 8;
  wifi::RssiDetector detector(std::move(refs), cfg);

  // One fresh real upload and one forged replay of a historical trajectory.
  const auto fresh = scenario.scanned_real(1, 30, 2.0).front();
  const auto real_upload = core::to_upload(fresh);
  const auto fake_upload = core::forge_upload(
      history.front(), attack::paper_mind(Mode::kWalking) + 0.1, 1, scenario.rng());

  // Inspect the per-point verification quantities.
  auto inspect = [&](const char* label, const wifi::ScannedUpload& upload) {
    std::printf("-- %s --\n", label);
    const auto& estimator = detector.confidence();
    double phi_total = 0.0;
    std::size_t ap_total = 0;
    for (std::size_t j = 0; j < upload.positions.size(); j += 10) {
      const auto confidences =
          estimator.point_confidence(upload.positions[j], upload.scans[j]);
      std::printf("  point %2zu: %2zu refs within r; strongest APs:", j,
                  estimator.reference_count(upload.positions[j]));
      for (std::size_t a = 0; a < std::min<std::size_t>(3, confidences.size()); ++a) {
        std::printf("  [%d dBm phi=%.3f n=%zu]", confidences[a].rssi_dbm,
                    confidences[a].phi, confidences[a].num_refs);
      }
      std::printf("\n");
      for (const auto& c : confidences) {
        phi_total += c.phi;
        ++ap_total;
      }
    }
    std::printf("  mean phi over sampled points: %.4f\n\n",
                ap_total ? phi_total / static_cast<double>(ap_total) : 0.0);
  };
  inspect("fresh real upload", real_upload);
  inspect("forged replay upload", fake_upload);

  // Train J the way the evaluation protocol does: historical reals (with
  // leave-own-trajectory-out) plus two forgeries per fake source.
  std::printf("training the J classifier...\n");
  std::vector<wifi::ScannedUpload> train;
  std::vector<int> labels;
  for (std::size_t i = 0; i < 225; ++i) {
    auto upload = core::to_upload(history[i]);
    upload.source_traj_id = static_cast<std::uint32_t>(i);
    train.push_back(std::move(upload));
    labels.push_back(1);
  }
  const double min_d = attack::paper_mind(Mode::kWalking);
  for (std::size_t i = 225; i < 300; ++i) {
    train.push_back(core::forge_upload(history[i], min_d + 0.1, 1, scenario.rng()));
    labels.push_back(0);
    train.push_back(core::forge_upload(history[i], 3.0, 1, scenario.rng()));
    labels.push_back(0);
  }
  detector.train(train, labels);

  // Verdicts on a batch of fresh reals and fresh forgeries.  (Individual
  // uploads at this toy scale can be misjudged — the detector is statistical;
  // bench_table4_detection runs the full-scale protocol.)
  std::printf("\nverdicts over a fresh batch (J = 1 real, 0 forged):\n");
  std::size_t real_ok = 0;
  std::size_t fake_ok = 0;
  const std::size_t batch = 15;
  const auto fresh_batch = scenario.scanned_real(batch, 30, 2.0);
  for (std::size_t i = 0; i < batch; ++i) {
    real_ok += detector.analyze(core::to_upload(fresh_batch[i])).verdict == 1;
    const auto& source = history[static_cast<std::size_t>(
        scenario.rng().uniform_int(0, static_cast<std::int64_t>(history.size()) - 1))];
    fake_ok += detector
                   .analyze(core::forge_upload(source, min_d + 0.1, 1,
                                               scenario.rng()))
                   .verdict == 0;
  }
  std::printf("  fresh reals accepted      : %zu/%zu\n", real_ok, batch);
  std::printf("  fresh forgeries caught    : %zu/%zu\n", fake_ok, batch);
  return 0;
}
