// Trajectory representation.
//
// Following the paper (Sec. II-A), a trajectory is a time-ordered sequence of
// [lat, lon, time] samples taken at a fixed interval.  trajkit stores both
// the geographic coordinates and — because all numerical work happens in the
// local metric frame — offers projected ENU views and metric statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geo.hpp"

namespace trajkit {

/// Transport mode of a trajectory; drives both the mobility simulator and
/// the per-mode MinD thresholds.
enum class Mode { kWalking, kCycling, kDriving };

/// Human-readable mode name ("walking" / "cycling" / "driving").
const char* mode_name(Mode m);

/// All modes, in paper order.
inline constexpr Mode kAllModes[] = {Mode::kWalking, Mode::kCycling, Mode::kDriving};

/// One GPS sample: position plus Unix timestamp (seconds).
struct TrajPoint {
  LatLon pos;
  double time_s = 0.0;
};

/// A time-ordered GPS trajectory with a fixed sampling interval.
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(std::vector<TrajPoint> points, Mode mode);

  /// Build from ENU positions sampled every `interval_s` seconds starting at
  /// `t0_s`, projecting back to lat/lon with `proj`.
  static Trajectory from_enu(const std::vector<Enu>& pts, const LocalProjection& proj,
                             Mode mode, double interval_s, double t0_s = 0.0);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TrajPoint& operator[](std::size_t i) const { return points_[i]; }
  const std::vector<TrajPoint>& points() const { return points_; }
  Mode mode() const { return mode_; }
  void set_mode(Mode m) { mode_ = m; }

  const TrajPoint& front() const { return points_.front(); }
  const TrajPoint& back() const { return points_.back(); }

  /// Sampling interval, inferred from the first two timestamps (0 for < 2 pts).
  double interval_s() const;
  /// Total duration in seconds.
  double duration_s() const;

  /// ENU projection of all positions.
  std::vector<Enu> to_enu(const LocalProjection& proj) const;

  /// Replace all positions from ENU coordinates, keeping timestamps and mode.
  /// The point count must match.
  void set_positions(const std::vector<Enu>& pts, const LocalProjection& proj);

  /// Path length: sum of consecutive haversine distances, metres.
  double length_m() const;

  /// Per-step speeds (m/s); size() - 1 entries.
  std::vector<double> speeds_mps() const;

  /// Per-step accelerations (m/s^2); size() - 2 entries.
  std::vector<double> accelerations_mps2() const;

  /// Keep only points [first, first+count).
  Trajectory slice(std::size_t first, std::size_t count) const;

 private:
  std::vector<TrajPoint> points_;
  Mode mode_ = Mode::kWalking;
};

/// Convenience dataset alias used throughout sim/attack/wifi.
using TrajectoryList = std::vector<Trajectory>;

}  // namespace trajkit
