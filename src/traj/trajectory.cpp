#include "traj/trajectory.hpp"

#include <stdexcept>

namespace trajkit {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kWalking: return "walking";
    case Mode::kCycling: return "cycling";
    case Mode::kDriving: return "driving";
  }
  return "unknown";
}

Trajectory::Trajectory(std::vector<TrajPoint> points, Mode mode)
    : points_(std::move(points)), mode_(mode) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].time_s <= points_[i - 1].time_s) {
      throw std::invalid_argument("Trajectory: timestamps must be strictly increasing");
    }
  }
}

Trajectory Trajectory::from_enu(const std::vector<Enu>& pts, const LocalProjection& proj,
                                Mode mode, double interval_s, double t0_s) {
  if (interval_s <= 0.0) {
    throw std::invalid_argument("Trajectory::from_enu: interval must be positive");
  }
  std::vector<TrajPoint> points;
  points.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    points.push_back({proj.to_latlon(pts[i]), t0_s + static_cast<double>(i) * interval_s});
  }
  return Trajectory(std::move(points), mode);
}

double Trajectory::interval_s() const {
  if (points_.size() < 2) return 0.0;
  return points_[1].time_s - points_[0].time_s;
}

double Trajectory::duration_s() const {
  if (points_.size() < 2) return 0.0;
  return points_.back().time_s - points_.front().time_s;
}

std::vector<Enu> Trajectory::to_enu(const LocalProjection& proj) const {
  std::vector<Enu> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(proj.to_enu(p.pos));
  return out;
}

void Trajectory::set_positions(const std::vector<Enu>& pts, const LocalProjection& proj) {
  if (pts.size() != points_.size()) {
    throw std::invalid_argument("Trajectory::set_positions: point count mismatch");
  }
  for (std::size_t i = 0; i < pts.size(); ++i) points_[i].pos = proj.to_latlon(pts[i]);
}

double Trajectory::length_m() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    total += haversine_m(points_[i - 1].pos, points_[i].pos);
  }
  return total;
}

std::vector<double> Trajectory::speeds_mps() const {
  std::vector<double> out;
  if (points_.size() < 2) return out;
  out.reserve(points_.size() - 1);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dt = points_[i].time_s - points_[i - 1].time_s;
    out.push_back(haversine_m(points_[i - 1].pos, points_[i].pos) / dt);
  }
  return out;
}

std::vector<double> Trajectory::accelerations_mps2() const {
  const auto v = speeds_mps();
  std::vector<double> out;
  if (v.size() < 2) return out;
  out.reserve(v.size() - 1);
  const double dt = interval_s();
  for (std::size_t i = 1; i < v.size(); ++i) out.push_back((v[i] - v[i - 1]) / dt);
  return out;
}

Trajectory Trajectory::slice(std::size_t first, std::size_t count) const {
  if (first + count > points_.size()) {
    throw std::out_of_range("Trajectory::slice: range out of bounds");
  }
  std::vector<TrajPoint> pts(points_.begin() + static_cast<std::ptrdiff_t>(first),
                             points_.begin() + static_cast<std::ptrdiff_t>(first + count));
  return Trajectory(std::move(pts), mode_);
}

}  // namespace trajkit
