#include "traj/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trajkit {

Trajectory resample_uniform(const Trajectory& traj, double interval_s) {
  if (traj.size() < 2) {
    throw std::invalid_argument("resample_uniform: need >= 2 points");
  }
  if (interval_s <= 0.0) {
    throw std::invalid_argument("resample_uniform: interval must be positive");
  }
  const auto& pts = traj.points();
  std::vector<TrajPoint> out;
  const double t0 = pts.front().time_s;
  const double t_end = pts.back().time_s;
  std::size_t seg = 0;
  for (double t = t0; t <= t_end + 1e-9; t += interval_s) {
    while (seg + 2 < pts.size() && pts[seg + 1].time_s < t) ++seg;
    const auto& a = pts[seg];
    const auto& b = pts[seg + 1];
    const double span = b.time_s - a.time_s;
    const double f = std::clamp((t - a.time_s) / span, 0.0, 1.0);
    out.push_back({{a.pos.lat + f * (b.pos.lat - a.pos.lat),
                    a.pos.lon + f * (b.pos.lon - a.pos.lon)},
                   t});
  }
  return Trajectory(std::move(out), traj.mode());
}

Trajectory moving_average_smooth(const Trajectory& traj, std::size_t half_window,
                                 const LocalProjection& proj) {
  if (traj.size() < 2) {
    throw std::invalid_argument("moving_average_smooth: need >= 2 points");
  }
  const auto pts = traj.to_enu(proj);
  std::vector<Enu> smoothed(pts.size());
  const auto n = pts.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half_window ? i - half_window : 0;
    const std::size_t hi = std::min(n - 1, i + half_window);
    Enu sum{};
    for (std::size_t j = lo; j <= hi; ++j) sum = sum + pts[j];
    smoothed[i] = sum * (1.0 / static_cast<double>(hi - lo + 1));
  }
  Trajectory out = traj;
  out.set_positions(smoothed, proj);
  return out;
}

std::vector<StayPoint> detect_stay_points(const Trajectory& traj,
                                          const LocalProjection& proj,
                                          double radius_m, double min_duration_s) {
  if (radius_m <= 0.0 || min_duration_s <= 0.0) {
    throw std::invalid_argument("detect_stay_points: bad parameters");
  }
  const auto pts = traj.to_enu(proj);
  std::vector<StayPoint> out;
  std::size_t i = 0;
  while (i < pts.size()) {
    std::size_t j = i + 1;
    while (j < pts.size() && distance(pts[i], pts[j]) <= radius_m) ++j;
    const double duration = traj[j - 1].time_s - traj[i].time_s;
    if (j > i + 1 && duration >= min_duration_s) {
      Enu centroid{};
      for (std::size_t k = i; k < j; ++k) centroid = centroid + pts[k];
      centroid = centroid * (1.0 / static_cast<double>(j - i));
      out.push_back({centroid, traj[i].time_s, traj[j - 1].time_s, i, j - 1});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<Trajectory> split_on_gaps(const Trajectory& traj, double max_gap_s) {
  if (max_gap_s <= 0.0) {
    throw std::invalid_argument("split_on_gaps: gap must be positive");
  }
  std::vector<Trajectory> out;
  const auto& pts = traj.points();
  std::size_t start = 0;
  auto flush = [&](std::size_t end) {  // [start, end)
    if (end - start >= 2) {
      std::vector<TrajPoint> seg(pts.begin() + static_cast<std::ptrdiff_t>(start),
                                 pts.begin() + static_cast<std::ptrdiff_t>(end));
      out.emplace_back(std::move(seg), traj.mode());
    }
  };
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].time_s - pts[i - 1].time_s > max_gap_s) {
      flush(i);
      start = i;
    }
  }
  flush(pts.size());
  return out;
}

}  // namespace trajkit
