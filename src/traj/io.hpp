// CSV serialization for trajectories.
//
// Format (one file per trajectory list):
//   traj_id,mode,lat,lon,time_s
// Rows of a trajectory are consecutive and time-ordered, ids are contiguous
// from 0.  This is the interchange format used by the examples to dump
// forged trajectories for inspection (e.g. plotting them on a map).
//
// Writers commit atomically (temp + rename via common/durable), so a crash
// mid-dump never leaves a half-written CSV.  Readers validate: coordinates
// must be finite and in range, timestamps finite and strictly increasing
// within a trajectory — malformed rows are a clean error, never a silently
// garbled trajectory.
#pragma once

#include <iosfwd>
#include <string>

#include "common/expected.hpp"
#include "traj/trajectory.hpp"

namespace trajkit {

/// Write a trajectory list as CSV (with header).
void write_csv(std::ostream& os, const TrajectoryList& trajs);
/// Atomic file variant: writes a temp file and renames it into place.
void write_csv_file(const std::string& path, const TrajectoryList& trajs);

/// Parse the CSV produced by write_csv.  Throws std::runtime_error on
/// malformed input (bad header, non-numeric or non-finite cell, out-of-range
/// coordinates, non-increasing timestamps).
TrajectoryList read_csv(std::istream& is);
TrajectoryList read_csv_file(const std::string& path);

/// Non-throwing variants of the readers: malformed input comes back as a
/// diagnostic string instead of an exception.
Expected<TrajectoryList, std::string> try_read_csv(std::istream& is);
Expected<TrajectoryList, std::string> try_read_csv_file(const std::string& path);

}  // namespace trajkit
