// CSV serialization for trajectories.
//
// Format (one file per trajectory list):
//   traj_id,mode,lat,lon,time_s
// Rows of a trajectory are consecutive and time-ordered, ids are contiguous
// from 0.  This is the interchange format used by the examples to dump
// forged trajectories for inspection (e.g. plotting them on a map).
#pragma once

#include <iosfwd>
#include <string>

#include "traj/trajectory.hpp"

namespace trajkit {

/// Write a trajectory list as CSV (with header).
void write_csv(std::ostream& os, const TrajectoryList& trajs);
void write_csv_file(const std::string& path, const TrajectoryList& trajs);

/// Parse the CSV produced by write_csv.  Throws std::runtime_error on
/// malformed input (bad header, non-numeric cell, unordered timestamps).
TrajectoryList read_csv(std::istream& is);
TrajectoryList read_csv_file(const std::string& path);

}  // namespace trajkit
