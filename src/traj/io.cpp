#include "traj/io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/durable/durable_file.hpp"

namespace trajkit {
namespace {

// A CSV under parse is untrusted input: bound the row count so a runaway (or
// hostile) file cannot exhaust memory before the first bad cell is hit.
constexpr std::size_t kMaxCsvRows = 50'000'000;

Expected<Mode, std::string> parse_mode(const std::string& s) {
  using Result = Expected<Mode, std::string>;
  if (s == "walking") return Result(Mode::kWalking);
  if (s == "cycling") return Result(Mode::kCycling);
  if (s == "driving") return Result(Mode::kDriving);
  return Result::failure("unknown mode '" + s + "'");
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void write_csv(std::ostream& os, const TrajectoryList& trajs) {
  os << "traj_id,mode,lat,lon,time_s\n";
  os.precision(10);
  for (std::size_t id = 0; id < trajs.size(); ++id) {
    for (const auto& p : trajs[id].points()) {
      os << id << ',' << mode_name(trajs[id].mode()) << ',' << p.pos.lat << ','
         << p.pos.lon << ',' << p.time_s << '\n';
    }
  }
}

void write_csv_file(const std::string& path, const TrajectoryList& trajs) {
  std::ostringstream os;
  write_csv(os, trajs);
  auto written = durable::write_file_atomic(path, os.str());
  if (!written) {
    throw std::runtime_error("write_csv_file: " + written.error());
  }
}

Expected<TrajectoryList, std::string> try_read_csv(std::istream& is) {
  using Result = Expected<TrajectoryList, std::string>;
  std::string line;
  if (!std::getline(is, line) || line != "traj_id,mode,lat,lon,time_s") {
    return Result::failure("read_csv: missing or bad header");
  }
  // id -> (mode, points); ids must be contiguous but rows of one id must be
  // consecutive, so a simple current-id accumulator suffices.
  TrajectoryList out;
  std::vector<TrajPoint> current;
  Mode current_mode = Mode::kWalking;
  long current_id = -1;
  auto flush = [&] {
    if (!current.empty()) out.emplace_back(std::move(current), current_mode);
    current.clear();
  };
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (lineno > kMaxCsvRows) {
      return Result::failure("read_csv: too many rows");
    }
    const auto at_line = [&] { return " at line " + std::to_string(lineno); };
    const auto cells = split_csv_line(line);
    if (cells.size() != 5) {
      return Result::failure("read_csv: bad column count" + at_line());
    }
    long id = 0;
    TrajPoint p{};
    try {
      id = std::stol(cells[0]);
      p = {{std::stod(cells[2]), std::stod(cells[3])}, std::stod(cells[4])};
    } catch (const std::exception&) {  // invalid_argument or out_of_range
      return Result::failure("read_csv: non-numeric cell" + at_line());
    }
    if (!std::isfinite(p.pos.lat) || !std::isfinite(p.pos.lon) ||
        !std::isfinite(p.time_s)) {
      return Result::failure("read_csv: non-finite value" + at_line());
    }
    if (p.pos.lat < -90.0 || p.pos.lat > 90.0 || p.pos.lon < -180.0 ||
        p.pos.lon > 180.0) {
      return Result::failure("read_csv: coordinate out of range" + at_line());
    }
    if (id != current_id) {
      flush();
      current_id = id;
      auto mode = parse_mode(cells[1]);
      if (!mode) return Result::failure("read_csv: " + mode.error() + at_line());
      current_mode = mode.value();
    } else if (!current.empty() && p.time_s <= current.back().time_s) {
      // Duplicate or backwards timestamps would give zero/negative dt, which
      // poisons every speed/turn feature downstream (Eq. 8).
      return Result::failure("read_csv: non-increasing timestamp" + at_line());
    }
    current.push_back(p);
  }
  flush();
  return Result(std::move(out));
}

TrajectoryList read_csv(std::istream& is) {
  auto result = try_read_csv(is);
  if (!result) throw std::runtime_error(result.error());
  return std::move(result).value();
}

Expected<TrajectoryList, std::string> try_read_csv_file(const std::string& path) {
  using Result = Expected<TrajectoryList, std::string>;
  std::ifstream is(path);
  if (!is) return Result::failure("read_csv_file: cannot open " + path);
  return try_read_csv(is);
}

TrajectoryList read_csv_file(const std::string& path) {
  auto result = try_read_csv_file(path);
  if (!result) throw std::runtime_error(result.error());
  return std::move(result).value();
}

}  // namespace trajkit
