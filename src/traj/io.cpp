#include "traj/io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace trajkit {
namespace {

Mode parse_mode(const std::string& s) {
  if (s == "walking") return Mode::kWalking;
  if (s == "cycling") return Mode::kCycling;
  if (s == "driving") return Mode::kDriving;
  throw std::runtime_error("read_csv: unknown mode '" + s + "'");
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void write_csv(std::ostream& os, const TrajectoryList& trajs) {
  os << "traj_id,mode,lat,lon,time_s\n";
  os.precision(10);
  for (std::size_t id = 0; id < trajs.size(); ++id) {
    for (const auto& p : trajs[id].points()) {
      os << id << ',' << mode_name(trajs[id].mode()) << ',' << p.pos.lat << ','
         << p.pos.lon << ',' << p.time_s << '\n';
    }
  }
}

void write_csv_file(const std::string& path, const TrajectoryList& trajs) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(os, trajs);
}

TrajectoryList read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "traj_id,mode,lat,lon,time_s") {
    throw std::runtime_error("read_csv: missing or bad header");
  }
  // id -> (mode, points); ids must be contiguous but rows of one id must be
  // consecutive, so a simple current-id accumulator suffices.
  TrajectoryList out;
  std::vector<TrajPoint> current;
  Mode current_mode = Mode::kWalking;
  long current_id = -1;
  auto flush = [&] {
    if (!current.empty()) out.emplace_back(std::move(current), current_mode);
    current.clear();
  };
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 5) {
      throw std::runtime_error("read_csv: bad column count at line " +
                               std::to_string(lineno));
    }
    try {
      const long id = std::stol(cells[0]);
      if (id != current_id) {
        flush();
        current_id = id;
        current_mode = parse_mode(cells[1]);
      }
      current.push_back({{std::stod(cells[2]), std::stod(cells[3])}, std::stod(cells[4])});
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("read_csv: non-numeric cell at line " +
                               std::to_string(lineno));
    }
  }
  flush();
  return out;
}

TrajectoryList read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(is);
}

}  // namespace trajkit
