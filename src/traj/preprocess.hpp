// Trajectory preprocessing utilities.
//
// Real LSP pipelines never consume raw GPS uploads directly: sampling rates
// differ per device, fixes drop out, and traces carry noise bursts.  These
// are the standard cleaning passes used before the detection pipelines:
//   * resample_uniform — linear-interpolation resampling to a fixed interval
//     (the paper preprocesses OSM traces to 1 s intervals the same way);
//   * moving_average_smooth — box smoothing of positions;
//   * detect_stay_points — classic stay-point extraction (Li/Zheng style):
//     maximal time windows whose positions stay within a distance bound;
//   * split_on_gaps — cut a trace at timestamp gaps.
#pragma once

#include <vector>

#include "traj/trajectory.hpp"

namespace trajkit {

/// Resample to a fixed interval by linear interpolation along time.
/// The first/last samples coincide with the original endpoints' times.
Trajectory resample_uniform(const Trajectory& traj, double interval_s);

/// Centered moving-average position smoothing with the given half window
/// (window = 2*half + 1 samples, truncated at the ends).  Timestamps are
/// unchanged.
Trajectory moving_average_smooth(const Trajectory& traj, std::size_t half_window,
                                 const LocalProjection& proj);

/// A dwell episode: the user stayed within `radius` for at least `min_time`.
struct StayPoint {
  Enu centroid;
  double arrive_s = 0.0;
  double depart_s = 0.0;
  std::size_t first_index = 0;
  std::size_t last_index = 0;

  double duration_s() const { return depart_s - arrive_s; }
};

/// Classic stay-point detection: scan for maximal windows whose members all
/// lie within `radius_m` of the window anchor and whose duration reaches
/// `min_duration_s`.
std::vector<StayPoint> detect_stay_points(const Trajectory& traj,
                                          const LocalProjection& proj,
                                          double radius_m, double min_duration_s);

/// Split wherever consecutive timestamps differ by more than `max_gap_s`.
/// Segments shorter than 2 points are dropped.
std::vector<Trajectory> split_on_gaps(const Trajectory& traj, double max_gap_s);

}  // namespace trajkit
