// Feature extraction from trajectories, with analytic gradients.
//
// The paper's classifiers consume per-step displacement features:
//   * classifier C and LSTM-2:  Δ(P_i, P_{i+1}) = (Edu, Angle)   (Sec. IV-A2)
//   * LSTM-1:                   Δ(P_i, P_{i+1}) = (dx, dy)        (Sec. IV-A4)
//   * XGBoost:                  fixed-length location + state summary features
//
// The C&W attack differentiates the classifier loss w.r.t. the raw ENU
// coordinates, so each sequential encoder also exposes the vector-Jacobian
// product of its encoding (backprop()).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geo/geo.hpp"
#include "traj/trajectory.hpp"

namespace trajkit {

/// Dense per-step feature matrix: `steps` rows of `dim` features, row-major.
struct FeatureSequence {
  std::size_t steps = 0;
  std::size_t dim = 0;
  std::vector<double> values;

  double at(std::size_t step, std::size_t d) const { return values[step * dim + d]; }
  double& at(std::size_t step, std::size_t d) { return values[step * dim + d]; }
};

/// Differentiable encoder from ENU point sequences to per-step features.
class FeatureEncoder {
 public:
  virtual ~FeatureEncoder() = default;

  /// Features per step.
  virtual std::size_t dim() const = 0;
  virtual std::string name() const = 0;

  /// Encode an n-point trajectory into n-1 feature steps.
  virtual FeatureSequence encode(const std::vector<Enu>& pts) const = 0;

  /// Accumulate d(loss)/d(points) given d(loss)/d(features).
  /// `dpts` must have pts.size() entries and is accumulated into (+=).
  virtual void backprop(const std::vector<Enu>& pts, const FeatureSequence& dfeat,
                        std::vector<Enu>& dpts) const = 0;
};

/// (Euclidean step length, heading angle) features — the paper's Δ for
/// classifier C.  Length is scaled by 1/length_scale_m, angle by 1/pi, so
/// both features live in comparable ranges for LSTM training.
class DistAngleEncoder final : public FeatureEncoder {
 public:
  explicit DistAngleEncoder(double length_scale_m = 5.0);

  std::size_t dim() const override { return 2; }
  std::string name() const override { return "dist_angle"; }
  FeatureSequence encode(const std::vector<Enu>& pts) const override;
  void backprop(const std::vector<Enu>& pts, const FeatureSequence& dfeat,
                std::vector<Enu>& dpts) const override;

 private:
  double length_scale_m_;
};

/// (dx, dy) displacement features — the paper's Δ for LSTM-1.
class DxDyEncoder final : public FeatureEncoder {
 public:
  explicit DxDyEncoder(double length_scale_m = 2.0);

  std::size_t dim() const override { return 2; }
  std::string name() const override { return "dx_dy"; }
  FeatureSequence encode(const std::vector<Enu>& pts) const override;
  void backprop(const std::vector<Enu>& pts, const FeatureSequence& dfeat,
                std::vector<Enu>& dpts) const override;

 private:
  double length_scale_m_;
};

/// Fixed-length summary features for the XGBoost motion classifier
/// (Sec. IV-A4): start/end position and time, plus mean/std/min/max of speed
/// and acceleration overall and per axis, and the per-axis velocity
/// difference.
std::vector<double> motion_summary_features(const Trajectory& traj,
                                            const LocalProjection& proj);

/// Names of motion_summary_features entries, for feature-importance reports.
std::vector<std::string> motion_summary_feature_names();

}  // namespace trajkit
