#include "traj/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace trajkit {
namespace {

// Guards the 1/r terms of the distance/angle Jacobians at zero displacement.
constexpr double kEpsM = 1e-9;

void check_backprop_shapes(const std::vector<Enu>& pts, const FeatureSequence& dfeat,
                           const std::vector<Enu>& dpts, std::size_t dim) {
  if (pts.size() < 2) throw std::invalid_argument("backprop: need >= 2 points");
  if (dfeat.steps != pts.size() - 1 || dfeat.dim != dim) {
    throw std::invalid_argument("backprop: feature gradient shape mismatch");
  }
  if (dpts.size() != pts.size()) {
    throw std::invalid_argument("backprop: dpts size mismatch");
  }
}

void append_stats(std::vector<double>& out, const std::vector<double>& xs) {
  out.push_back(mean(xs));
  out.push_back(stddev(xs));
  out.push_back(min_of(xs));
  out.push_back(max_of(xs));
}

}  // namespace

DistAngleEncoder::DistAngleEncoder(double length_scale_m)
    : length_scale_m_(length_scale_m) {
  if (length_scale_m <= 0.0) {
    throw std::invalid_argument("DistAngleEncoder: scale must be positive");
  }
}

FeatureSequence DistAngleEncoder::encode(const std::vector<Enu>& pts) const {
  if (pts.size() < 2) throw std::invalid_argument("encode: need >= 2 points");
  FeatureSequence seq;
  seq.steps = pts.size() - 1;
  seq.dim = 2;
  seq.values.resize(seq.steps * 2);
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const double de = pts[i + 1].east - pts[i].east;
    const double dn = pts[i + 1].north - pts[i].north;
    seq.at(i, 0) = std::hypot(de, dn) / length_scale_m_;
    seq.at(i, 1) = std::atan2(dn, de) / M_PI;
  }
  return seq;
}

void DistAngleEncoder::backprop(const std::vector<Enu>& pts, const FeatureSequence& dfeat,
                                std::vector<Enu>& dpts) const {
  check_backprop_shapes(pts, dfeat, dpts, 2);
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const double de = pts[i + 1].east - pts[i].east;
    const double dn = pts[i + 1].north - pts[i].north;
    const double r = std::max(std::hypot(de, dn), kEpsM);
    const double r_sq = std::max(de * de + dn * dn, kEpsM * kEpsM);

    // d(dist_scaled)/d(de, dn)
    const double g_dist = dfeat.at(i, 0) / length_scale_m_;
    double g_de = g_dist * de / r;
    double g_dn = g_dist * dn / r;

    // d(angle_scaled)/d(de, dn); angle = atan2(dn, de)
    const double g_ang = dfeat.at(i, 1) / M_PI;
    g_de += g_ang * (-dn / r_sq);
    g_dn += g_ang * (de / r_sq);

    dpts[i + 1].east += g_de;
    dpts[i + 1].north += g_dn;
    dpts[i].east -= g_de;
    dpts[i].north -= g_dn;
  }
}

DxDyEncoder::DxDyEncoder(double length_scale_m) : length_scale_m_(length_scale_m) {
  if (length_scale_m <= 0.0) {
    throw std::invalid_argument("DxDyEncoder: scale must be positive");
  }
}

FeatureSequence DxDyEncoder::encode(const std::vector<Enu>& pts) const {
  if (pts.size() < 2) throw std::invalid_argument("encode: need >= 2 points");
  FeatureSequence seq;
  seq.steps = pts.size() - 1;
  seq.dim = 2;
  seq.values.resize(seq.steps * 2);
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    seq.at(i, 0) = (pts[i + 1].east - pts[i].east) / length_scale_m_;
    seq.at(i, 1) = (pts[i + 1].north - pts[i].north) / length_scale_m_;
  }
  return seq;
}

void DxDyEncoder::backprop(const std::vector<Enu>& pts, const FeatureSequence& dfeat,
                           std::vector<Enu>& dpts) const {
  check_backprop_shapes(pts, dfeat, dpts, 2);
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const double g_de = dfeat.at(i, 0) / length_scale_m_;
    const double g_dn = dfeat.at(i, 1) / length_scale_m_;
    dpts[i + 1].east += g_de;
    dpts[i + 1].north += g_dn;
    dpts[i].east -= g_de;
    dpts[i].north -= g_dn;
  }
}

std::vector<double> motion_summary_features(const Trajectory& traj,
                                            const LocalProjection& proj) {
  if (traj.size() < 3) {
    throw std::invalid_argument("motion_summary_features: need >= 3 points");
  }
  const auto pts = traj.to_enu(proj);
  const double dt = traj.interval_s();

  std::vector<double> ve, vn, speed;
  ve.reserve(pts.size() - 1);
  vn.reserve(pts.size() - 1);
  speed.reserve(pts.size() - 1);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double de = (pts[i].east - pts[i - 1].east) / dt;
    const double dn = (pts[i].north - pts[i - 1].north) / dt;
    ve.push_back(de);
    vn.push_back(dn);
    speed.push_back(std::hypot(de, dn));
  }
  std::vector<double> ae, an, acc;
  for (std::size_t i = 1; i < speed.size(); ++i) {
    ae.push_back((ve[i] - ve[i - 1]) / dt);
    an.push_back((vn[i] - vn[i - 1]) / dt);
    acc.push_back((speed[i] - speed[i - 1]) / dt);
  }
  std::vector<double> vdiff;  // per-step |v_east - v_north| ("velocity difference
                              // in longitude and latitude" of Sec. IV-A4)
  vdiff.reserve(ve.size());
  for (std::size_t i = 0; i < ve.size(); ++i) vdiff.push_back(std::fabs(ve[i] - vn[i]));

  std::vector<double> out;
  out.reserve(40);
  // Location features: start/end position and time.
  out.push_back(pts.front().east);
  out.push_back(pts.front().north);
  out.push_back(pts.back().east);
  out.push_back(pts.back().north);
  out.push_back(traj.front().time_s);
  out.push_back(traj.back().time_s);
  // State features: mean/std/min/max of each motion series.
  append_stats(out, speed);
  append_stats(out, acc);
  append_stats(out, ve);
  append_stats(out, ae);
  append_stats(out, vn);
  append_stats(out, an);
  append_stats(out, vdiff);
  return out;
}

std::vector<std::string> motion_summary_feature_names() {
  std::vector<std::string> names = {"start_east", "start_north", "end_east",
                                    "end_north",  "start_time",  "end_time"};
  for (const char* series :
       {"speed", "accel", "v_east", "a_east", "v_north", "a_north", "vdiff"}) {
    for (const char* stat : {"mean", "std", "min", "max"}) {
      names.push_back(std::string(series) + "_" + stat);
    }
  }
  return names;
}

}  // namespace trajkit
