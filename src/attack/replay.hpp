// Scalable geometric replay forgery.
//
// The full C&W attack (cw.hpp) needs a trained target model and hundreds of
// gradient iterations per trajectory.  Its *geometric outcome* for the replay
// scenario, however, is simple: a smoothly-perturbed copy of the historical
// trajectory whose normalised DTW distance sits just above MinD (so it is
// neither a detectable replay nor an implausible detour).  The RSSI
// experiments (Sec. IV-B) need thousands of such fakes, so this header
// provides a direct sampler of that outcome: endpoint-pinned, temporally
// correlated displacements rescaled to hit a target normalised DTW.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geo/geo.hpp"

namespace trajkit::attack {

/// Perturb `historical` into a replay forgery at normalised DTW distance
/// ~= `target_dtw_norm` (metres per alignment step).  Endpoints are kept
/// fixed; displacements are AR(1)-correlated (smooth, human-plausible).
std::vector<Enu> smooth_replay_perturbation(const std::vector<Enu>& historical,
                                            double target_dtw_norm, Rng& rng,
                                            double correlation = 0.9);

}  // namespace trajkit::attack
