// FGSM and PGD baselines for trajectory adversarial examples.
//
// The paper uses the optimization-based C&W attack (cw.hpp).  These two
// classic gradient attacks are the natural baselines from the adversarial
// examples literature (Szegedy et al., the paper's reference [24] line of
// work) and let the benchmarks quantify what the C&W machinery buys:
//   * FGSM — one signed-gradient step of size epsilon per coordinate;
//   * PGD  — iterated signed steps projected back into the L-infinity ball
//     of radius epsilon around the reference trajectory.
// Both pin the endpoints like the C&W attack (P_1 = S, P_n = D).  Neither
// controls DTW, so they cannot target the replay-distance band — which is
// exactly the gap the benchmarks demonstrate.
#pragma once

#include <vector>

#include "geo/geo.hpp"
#include "nn/classifier.hpp"
#include "traj/features.hpp"

namespace trajkit::attack {

struct GradientAttackConfig {
  double epsilon_m = 2.0;     ///< L-infinity budget per coordinate, metres
  double step_size_m = 0.25;  ///< PGD step size
  std::size_t steps = 40;     ///< PGD iterations (FGSM ignores this)
};

struct GradientAttackResult {
  std::vector<Enu> points;
  bool adversarial = false;
  double p_real = 0.0;
  double dtw_norm = 0.0;  ///< normalised DTW to the reference
};

class GradientAttacker {
 public:
  /// `model` and `encoder` must outlive the attacker.
  GradientAttacker(const nn::LstmClassifier& model, const FeatureEncoder& encoder,
                   GradientAttackConfig config = {});

  /// Single-step fast gradient sign attack.
  GradientAttackResult fgsm(const std::vector<Enu>& reference) const;

  /// Projected gradient descent within the epsilon box.
  GradientAttackResult pgd(const std::vector<Enu>& reference) const;

  const GradientAttackConfig& config() const { return config_; }

 private:
  GradientAttackResult run(const std::vector<Enu>& reference, std::size_t steps,
                           double step_size) const;

  const nn::LstmClassifier* model_;
  const FeatureEncoder* encoder_;
  GradientAttackConfig config_;
};

}  // namespace trajkit::attack
