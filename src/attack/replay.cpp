#include "attack/replay.hpp"

#include <cmath>
#include <stdexcept>

#include "dtw/dtw.hpp"

namespace trajkit::attack {

std::vector<Enu> smooth_replay_perturbation(const std::vector<Enu>& historical,
                                            double target_dtw_norm, Rng& rng,
                                            double correlation) {
  if (historical.size() < 3) {
    throw std::invalid_argument("smooth_replay_perturbation: need >= 3 points");
  }
  if (target_dtw_norm <= 0.0) {
    throw std::invalid_argument("smooth_replay_perturbation: target must be positive");
  }
  if (correlation < 0.0 || correlation >= 1.0) {
    throw std::invalid_argument("smooth_replay_perturbation: bad correlation");
  }
  const std::size_t n = historical.size();

  // AR(1) displacement field, tapered to zero at both endpoints.
  const double innovation = std::sqrt(1.0 - correlation * correlation);
  std::vector<Enu> disp(n);
  Enu e{rng.normal(), rng.normal()};
  for (std::size_t i = 0; i < n; ++i) {
    e = {correlation * e.east + innovation * rng.normal(),
         correlation * e.north + innovation * rng.normal()};
    const double taper =
        std::sin(M_PI * static_cast<double>(i) / static_cast<double>(n - 1));
    disp[i] = e * taper;
  }

  // Rescale toward the target: normalised DTW is close to linear in the
  // displacement magnitude, so two fixed-point passes suffice.
  double scale = target_dtw_norm;  // unit-variance field => first guess
  std::vector<Enu> out(n);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < n; ++i) out[i] = historical[i] + disp[i] * scale;
    out.front() = historical.front();
    out.back() = historical.back();
    const double achieved = dtw_normalized(historical, out);
    if (achieved <= 1e-9) break;
    scale *= target_dtw_norm / achieved;
  }
  return out;
}

}  // namespace trajkit::attack
