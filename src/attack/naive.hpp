// Naive forgery attacks (Sec. IV-A2).
//
// These are the baseline attacks the target classifiers are trained against:
//   * naive replay  — re-upload a historical trajectory with small i.i.d.
//     noise N(0, 0.25 m^2) per axis (the paper's experimentally measured GPS
//     error magnitude);
//   * naive navigation — upload a constant-speed navigation resample, with
//     the same noise "to avoid being directly detected by the defender
//     through the direction of displacement per second".
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geo/geo.hpp"

namespace trajkit::attack {

/// Per-axis standard deviation of the naive-attack noise (sigma^2 = 0.25).
inline constexpr double kNaiveNoiseSigmaM = 0.5;

/// Historical/navigation ENU points + fresh i.i.d. Gaussian noise.
std::vector<Enu> naive_noise_attack(const std::vector<Enu>& points, Rng& rng,
                                    double sigma_m = kNaiveNoiseSigmaM);

}  // namespace trajkit::attack
