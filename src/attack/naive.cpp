#include "attack/naive.hpp"

#include <stdexcept>

namespace trajkit::attack {

std::vector<Enu> naive_noise_attack(const std::vector<Enu>& points, Rng& rng,
                                    double sigma_m) {
  if (sigma_m < 0.0) {
    throw std::invalid_argument("naive_noise_attack: sigma must be non-negative");
  }
  std::vector<Enu> out;
  out.reserve(points.size());
  for (const auto& p : points) {
    out.push_back({p.east + rng.normal(0.0, sigma_m),
                   p.north + rng.normal(0.0, sigma_m)});
  }
  return out;
}

}  // namespace trajkit::attack
