#include "attack/cw.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "attack/replay.hpp"
#include "dtw/dtw.hpp"

namespace trajkit::attack {
namespace {

constexpr double kEpsM = 1e-9;

/// Normalised DTW value and its subgradient w.r.t. `x` in one DP pass.
/// The pruned variant is bit-identical to dtw() (distance and path), so the
/// fast_dtw switch cannot change any attack trajectory or loss.
double dtw_norm_and_grad(const std::vector<Enu>& ref, const std::vector<Enu>& x,
                         std::vector<Enu>& dx, bool fast, std::size_t band) {
  const auto r = fast ? dtw_pruned(ref, x, band) : dtw(ref, x);
  const double inv_len = 1.0 / static_cast<double>(r.path.size());
  for (const auto& pair : r.path) {
    const Enu& p = ref[pair.i];
    const Enu& q = x[pair.j];
    const double d = std::max(distance(p, q), kEpsM);
    dx[pair.j].east += inv_len * (q.east - p.east) / d;
    dx[pair.j].north += inv_len * (q.north - p.north) / d;
  }
  return r.distance * inv_len;
}

/// Minimal Adam state over a flat Enu vector.
struct EnuAdam {
  explicit EnuAdam(std::size_t n) : m(n, Enu{}), v(n, Enu{}) {}

  void step(std::vector<Enu>& x, const std::vector<Enu>& g, double lr) {
    ++t;
    const double c1 = 1.0 - std::pow(0.9, static_cast<double>(t));
    const double c2 = 1.0 - std::pow(0.999, static_cast<double>(t));
    for (std::size_t i = 0; i < x.size(); ++i) {
      m[i].east = 0.9 * m[i].east + 0.1 * g[i].east;
      m[i].north = 0.9 * m[i].north + 0.1 * g[i].north;
      v[i].east = 0.999 * v[i].east + 0.001 * g[i].east * g[i].east;
      v[i].north = 0.999 * v[i].north + 0.001 * g[i].north * g[i].north;
      x[i].east -= lr * (m[i].east / c1) / (std::sqrt(v[i].east / c2) + 1e-8);
      x[i].north -= lr * (m[i].north / c1) / (std::sqrt(v[i].north / c2) + 1e-8);
    }
  }

  std::vector<Enu> m;
  std::vector<Enu> v;
  std::size_t t = 0;
};

}  // namespace

CwAttacker::CwAttacker(const nn::LstmClassifier& model, const FeatureEncoder& encoder,
                       CwConfig config)
    : model_(&model), encoder_(&encoder), config_(config) {
  if (config_.iterations == 0) {
    throw std::invalid_argument("CwAttacker: need at least one iteration");
  }
}

CwResult CwAttacker::forge_navigation(const std::vector<Enu>& reference) const {
  return run(reference, LossKind::kNavigation, 0.0, 0.0);
}

CwResult CwAttacker::forge_replay(const std::vector<Enu>& historical, double min_d,
                                  double delta) const {
  if (min_d < 0.0) throw std::invalid_argument("forge_replay: min_d must be >= 0");
  return run(historical, LossKind::kReplay, min_d, delta);
}

CwResult CwAttacker::run(const std::vector<Enu>& reference, LossKind kind,
                         double min_d, double delta) const {
  if (reference.size() < 3) {
    throw std::invalid_argument("CwAttacker: reference needs >= 3 points");
  }
  const std::size_t n = reference.size();
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  // Starting point.  For the replay scenario the iterate starts at a smooth
  // correlated perturbation already sitting at the target distance: gradient
  // descent then only nudges it across the decision boundary, which keeps
  // the motion statistics human-plausible (and the attack transferable to
  // models it never saw).  The navigation scenario starts on the route.
  std::vector<Enu> x(reference);
  if (kind == LossKind::kReplay) {
    Rng init_rng(config_.seed);
    x = smooth_replay_perturbation(reference, min_d + delta, init_rng,
                                   config_.init_correlation);
  }
  EnuAdam adam(n);
  double lambda = config_.lambda_init;

  CwResult result;
  result.points = x;
  double best_score = -1.0;  // selection score among adversarial iterates

  std::vector<Enu> grad(n, Enu{});
  std::vector<Enu> dpts_ce(n, Enu{});
  FeatureSequence dfeat;  // hoisted: keeps its buffer across iterations

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    const FeatureSequence feat = encoder_->encode(x);
    const double ce = model_->loss_and_input_gradient(feat, /*target=*/1, &dfeat);
    const double p_real = std::exp(-ce);

    std::fill(dpts_ce.begin(), dpts_ce.end(), Enu{});
    encoder_->backprop(x, dfeat, dpts_ce);

    std::fill(grad.begin(), grad.end(), Enu{});
    const double dtw_norm = dtw_norm_and_grad(reference, x, grad,
                                              config_.fast_dtw, config_.dtw_band);

    double dist_loss = dtw_norm;
    double dtw_sign = 1.0;
    if (kind == LossKind::kReplay) {
      // loss2 = max(D, 2*(min_d + delta) - D): V-shaped around min_d + delta.
      const double mirrored = 2.0 * (min_d + delta) - dtw_norm;
      if (mirrored > dtw_norm) {
        dist_loss = mirrored;
        dtw_sign = -1.0;
      }
    }
    const double total_loss = lambda * ce + dist_loss;

    for (std::size_t i = 0; i < n; ++i) {
      grad[i].east = dtw_sign * grad[i].east + lambda * dpts_ce[i].east;
      grad[i].north = dtw_sign * grad[i].north + lambda * dpts_ce[i].north;
    }
    // Low-pass the gradient: high-frequency point-wise updates would give
    // the forgery inhuman acceleration statistics that transfer models catch.
    for (std::size_t pass = 0; pass < config_.grad_smoothing; ++pass) {
      Enu prev = grad.front();
      for (std::size_t i = 1; i + 1 < n; ++i) {
        const Enu current = grad[i];
        grad[i] = prev * 0.25 + current * 0.5 + grad[i + 1] * 0.25;
        prev = current;
      }
    }
    // Endpoint constraint: P_1 = S and P_n = D stay fixed.
    grad.front() = Enu{};
    grad.back() = Enu{};

    adam.step(x, grad, config_.learning_rate);
    x.front() = reference.front();
    x.back() = reference.back();

    const bool adversarial = p_real >= 0.5;
    if (adversarial && result.first_adversarial_iteration == kNeverAdversarial) {
      result.first_adversarial_iteration = iter;
    }
    if (adversarial) {
      // Keep the adversarial iterate that best satisfies the route constraint.
      double score = 0.0;
      if (kind == LossKind::kNavigation) {
        score = 1.0 / (1.0 + dtw_norm);
      } else {
        const bool valid = dtw_norm >= min_d;
        score = (valid ? 2.0 : 1.0) /
                (1.0 + std::fabs(dtw_norm - (min_d + delta)));
      }
      if (score > best_score) {
        best_score = score;
        result.points = x;
        result.p_real = p_real;
        result.dtw_norm = dtw_norm;
        result.adversarial = true;
      }
    }

    // The paper's "automatically adjusted" lambda.
    if (!adversarial) {
      lambda = std::min(config_.lambda_max, lambda * config_.lambda_up);
    } else if (p_real > config_.adversarial_margin) {
      lambda = std::max(config_.lambda_min, lambda * config_.lambda_down);
    }

    if (iter % config_.history_stride == 0 || iter + 1 == config_.iterations) {
      const double best = result.adversarial ? result.dtw_norm : -1.0;
      result.history.push_back({iter, elapsed_s(), dtw_norm, p_real, total_loss, best});
    }
  }

  if (!result.adversarial) {
    // No adversarial iterate found: report the final state honestly.
    result.points = x;
    const FeatureSequence feat = encoder_->encode(result.points);
    result.p_real = model_->predict_proba(feat);
    result.dtw_norm = dtw_normalized(reference, result.points);
    result.adversarial = result.p_real >= 0.5;
  }
  return result;
}

}  // namespace trajkit::attack
