// Black-box (score-only) adversarial attack via SPSA.
//
// The C&W attack assumes the attacker can train a surrogate and take
// gradients.  If the provider instead exposes only a score (e.g. an API that
// returns a risk value per uploaded trajectory), the attacker can still
// estimate gradients from queries: simultaneous perturbation stochastic
// approximation (SPSA) samples a random +-1 direction Delta and uses
//   g ~= [f(x + c Delta) - f(x - c Delta)] / (2c) * Delta^-1
// Two queries per step, no model access.  Extension beyond the paper: it
// bounds how much secrecy of the detector actually buys the provider.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "geo/geo.hpp"

namespace trajkit::attack {

struct SpsaConfig {
  std::size_t steps = 300;
  double perturbation_m = 0.3;  ///< c: finite-difference probe size
  double step_size_m = 0.25;    ///< gradient-descent step
  double epsilon_m = 3.0;       ///< L-infinity budget around the reference
  std::uint64_t seed = 7;
};

struct SpsaResult {
  std::vector<Enu> points;
  double final_score = 0.0;  ///< the oracle's score at the returned points
  std::size_t queries = 0;
  bool succeeded = false;    ///< final score >= 0.5
};

/// Oracle: maps candidate trajectory points to a "realness" score in [0, 1].
using ScoreOracle = std::function<double(const std::vector<Enu>&)>;

/// Maximise the oracle score within the epsilon box, endpoints pinned.
SpsaResult spsa_attack(const std::vector<Enu>& reference, const ScoreOracle& oracle,
                       const SpsaConfig& config = {});

}  // namespace trajkit::attack
