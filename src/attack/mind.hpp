// MinD estimation (Sec. IV-A3).
//
// MinD is the lower bound of the normalised DTW distance between two genuine
// traversals of the same route — the paper walks a 200 m route 50 times and
// takes the minimum pairwise distance (1.2 / 1.5 / 1.4 for walking, cycling,
// driving).  A replayed trajectory closer than MinD to a historical record is
// trivially flagged as a replay, so the replay attack targets a distance just
// above it.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sim/dataset.hpp"
#include "traj/trajectory.hpp"

namespace trajkit::attack {

struct MindEstimate {
  double min_d = 0.0;   ///< minimum pairwise normalised DTW (the MinD bound)
  double mean_d = 0.0;  ///< mean pairwise normalised DTW
  double max_d = 0.0;
  std::size_t repetitions = 0;
};

/// Traverse one fixed route `repetitions` times with the mode's mobility
/// dynamics and GPS error, and compute pairwise normalised DTW statistics.
MindEstimate estimate_mind(const sim::TrajectorySimulator& simulator, Mode mode,
                           double route_length_m, std::size_t repetitions,
                           std::size_t points, double interval_s, Rng& rng);

/// The simulated traversals estimate_mind computes its statistics over,
/// exposed so callers (bench_mind, tests) can run several estimators over one
/// set of runs.  estimate_mind == estimate_mind_over(mind_runs(...)).
std::vector<std::vector<Enu>> mind_runs(const sim::TrajectorySimulator& simulator,
                                        Mode mode, double route_length_m,
                                        std::size_t repetitions, std::size_t points,
                                        double interval_s, Rng& rng);

/// Full pairwise min/mean/max over precomputed runs (the reference leg).
MindEstimate estimate_mind_over(const std::vector<std::vector<Enu>>& runs);

/// MinD only, via the early-abandoning fast leg: a pair whose *raw* DTW
/// provably exceeds min_so_far * (n + m - 1) cannot beat the minimum after
/// path-length normalisation (the path has at most n + m - 1 pairs), so its
/// DP is abandoned early and the normalised distance never computed.
/// Surviving pairs go through the same dtw_normalized as the reference leg —
/// the returned minimum is bitwise identical to estimate_mind_over().min_d.
double estimate_mind_fast(const std::vector<std::vector<Enu>>& runs);

/// Paper-reported MinD values per mode (metres per alignment step):
/// 1.2 (walking), 1.5 (cycling), 1.4 (driving).  Used as defaults when the
/// caller does not run its own estimate.
double paper_mind(Mode mode);

}  // namespace trajkit::attack
