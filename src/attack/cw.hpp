// C&W-style adversarial trajectory generation (Sec. II-B).
//
// Starting from a reference trajectory T (a navigation route sample or a
// historical trajectory), gradient descent searches for a perturbation that
// makes the target LSTM classifier label the trajectory "real" while keeping
// it consistent with the road system:
//
//   navigation attack (Eq. 1):  loss = lambda * CE(f(T'), real) + DTW(T, T')
//   replay attack   (Eq. 2/3):  loss = lambda * CE(f(T'), real) + loss2,
//     loss2 = max( DTW(T,T'), 2*(MinD + delta) - DTW(T,T') )
//
// DTW is normalised (metres per alignment pair) so MinD matches the paper's
// per-metre thresholds.  Gradients flow through the feature encoder
// (analytic Jacobian) and through DTW (optimal-alignment subgradient); the
// perturbation is optimised with Adam, endpoints pinned (P_1 = S, P_n = D).
// lambda is adapted automatically: up while still classified fake, gently
// down once comfortably adversarial — the paper's "automatically adjusted"
// lambda_1/lambda_2.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/geo.hpp"
#include "nn/classifier.hpp"
#include "traj/features.hpp"

namespace trajkit::attack {

struct CwConfig {
  std::size_t iterations = 400;
  double learning_rate = 0.15;    ///< Adam step in metres
  std::uint64_t seed = 99;        ///< seeds the smooth replay initialisation
  double init_correlation = 0.997;  ///< smoothness of the replay start point
  std::size_t grad_smoothing = 0;   ///< optional [1/4,1/2,1/4] passes over the
                                    ///< gradient (ablation: trades attack power
                                    ///< for smoothness)
  double lambda_init = 20.0;
  double lambda_up = 1.08;        ///< multiplier while classified fake
  double lambda_down = 0.99;      ///< multiplier once comfortably real
  double lambda_min = 1e-2;
  double lambda_max = 1e5;
  double adversarial_margin = 0.9;  ///< "comfortably real" probability
  std::size_t history_stride = 25;  ///< record telemetry every N iterations
  /// Use the pruned-exact DTW (banded upper bound + pruned full DP) in the
  /// inner loop.  Bit-identical distance, path and therefore losses — this is
  /// purely a speed knob; `false` selects the plain O(n*m) reference DP.
  bool fast_dtw = true;
  /// Sakoe-Chiba band of the upper-bound pass.  Any value is exact (the bound
  /// only controls pruning strength); small bands suit the attack loop, where
  /// the candidate stays a near-diagonal perturbation of the reference route,
  /// so the slope-corridor bound (band 0) is already tight.
  std::size_t dtw_band = 0;
};

/// One telemetry sample of an attack run (Fig. 3 series).
struct CwHistoryEntry {
  std::size_t iteration = 0;
  double seconds = 0.0;    ///< wall time since the attack started
  double dtw_norm = 0.0;   ///< normalised DTW of the current iterate
  double p_real = 0.0;     ///< classifier confidence in "real"
  double loss = 0.0;
  /// Normalised DTW of the best adversarial example found so far, or -1 while
  /// none exists — the quantity Fig. 3 plots (drops fast, then plateaus).
  double best_dtw = -1.0;
};

inline constexpr std::size_t kNeverAdversarial = static_cast<std::size_t>(-1);

struct CwResult {
  std::vector<Enu> points;      ///< best adversarial iterate (or last iterate)
  bool adversarial = false;     ///< classifier says "real" at the end
  double p_real = 0.0;
  double dtw_norm = 0.0;        ///< normalised DTW(T, T') of `points`
  std::size_t first_adversarial_iteration = kNeverAdversarial;
  std::vector<CwHistoryEntry> history;
};

class CwAttacker {
 public:
  /// `model` and `encoder` must outlive the attacker.  The encoder must be
  /// the one the target model was trained with.
  CwAttacker(const nn::LstmClassifier& model, const FeatureEncoder& encoder,
             CwConfig config = {});

  /// Navigation attack: pull T' toward the reference route sample while
  /// crossing the decision boundary (Eq. 1).
  CwResult forge_navigation(const std::vector<Enu>& reference) const;

  /// Replay attack: keep T' at normalised-DTW ~= min_d + delta from the
  /// historical trajectory (Eq. 2/3).
  CwResult forge_replay(const std::vector<Enu>& historical, double min_d,
                        double delta = 0.1) const;

  const CwConfig& config() const { return config_; }

 private:
  enum class LossKind { kNavigation, kReplay };
  CwResult run(const std::vector<Enu>& reference, LossKind kind, double min_d,
               double delta) const;

  const nn::LstmClassifier* model_;
  const FeatureEncoder* encoder_;
  CwConfig config_;
};

}  // namespace trajkit::attack
