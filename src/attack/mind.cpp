#include "attack/mind.hpp"

#include <algorithm>
#include <stdexcept>

#include "dtw/dtw.hpp"

namespace trajkit::attack {

std::vector<std::vector<Enu>> mind_runs(const sim::TrajectorySimulator& simulator,
                                        Mode mode, double route_length_m,
                                        std::size_t repetitions, std::size_t points,
                                        double interval_s, Rng& rng) {
  if (repetitions < 2) {
    throw std::invalid_argument("estimate_mind: need >= 2 repetitions");
  }
  const auto route = simulator.random_route(mode, route_length_m, rng);

  std::vector<std::vector<Enu>> runs;
  runs.reserve(repetitions);
  for (std::size_t i = 0; i < repetitions; ++i) {
    const auto sim = simulator.simulate_on_route(route, mode, points, interval_s, rng);
    runs.push_back(sim.reported.to_enu(sim::sim_projection()));
  }
  return runs;
}

MindEstimate estimate_mind_over(const std::vector<std::vector<Enu>>& runs) {
  MindEstimate est;
  est.repetitions = runs.size();
  est.min_d = std::numeric_limits<double>::infinity();
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      const double d = dtw_normalized(runs[i], runs[j]);
      est.min_d = std::min(est.min_d, d);
      est.max_d = std::max(est.max_d, d);
      total += d;
      ++pairs;
    }
  }
  est.mean_d = total / static_cast<double>(pairs);
  return est;
}

double estimate_mind_fast(const std::vector<std::vector<Enu>>& runs) {
  double min_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      const std::size_t plen_max = runs[i].size() + runs[j].size() - 1;
      // Skip bound: normalised = raw / path_len with path_len <= plen_max, so
      // raw > min_d * plen_max means the pair cannot lower the minimum.  The
      // 1e-12 relative slack absorbs the rounding of the bound product — far
      // wider than a few ulps, far tighter than any real pairwise gap — so a
      // pair is only ever skipped when its normalised distance provably
      // rounds to >= min_d, keeping the minimum bitwise identical.
      const double bound = min_d == std::numeric_limits<double>::infinity()
                               ? min_d
                               : min_d * static_cast<double>(plen_max) *
                                     (1.0 + 1e-12);
      const double raw = dtw_distance(runs[i], runs[j], bound);
      if (raw > bound) continue;  // abandoned or provably above the minimum
      // Survivors need the path length for normalisation; the pruned DP
      // returns dtw()'s distance and path bit-for-bit, so the normalised
      // value matches dtw_normalized exactly at a fraction of the cost.
      const auto r = dtw_pruned(runs[i], runs[j]);
      min_d = std::min(min_d, r.distance / static_cast<double>(r.path.size()));
    }
  }
  return min_d;
}

MindEstimate estimate_mind(const sim::TrajectorySimulator& simulator, Mode mode,
                           double route_length_m, std::size_t repetitions,
                           std::size_t points, double interval_s, Rng& rng) {
  return estimate_mind_over(
      mind_runs(simulator, mode, route_length_m, repetitions, points, interval_s, rng));
}

double paper_mind(Mode mode) {
  switch (mode) {
    case Mode::kWalking: return 1.2;
    case Mode::kCycling: return 1.5;
    case Mode::kDriving: return 1.4;
  }
  return 1.2;
}

}  // namespace trajkit::attack
