#include "attack/mind.hpp"

#include <algorithm>
#include <stdexcept>

#include "dtw/dtw.hpp"

namespace trajkit::attack {

MindEstimate estimate_mind(const sim::TrajectorySimulator& simulator, Mode mode,
                           double route_length_m, std::size_t repetitions,
                           std::size_t points, double interval_s, Rng& rng) {
  if (repetitions < 2) {
    throw std::invalid_argument("estimate_mind: need >= 2 repetitions");
  }
  const auto route = simulator.random_route(mode, route_length_m, rng);

  std::vector<std::vector<Enu>> runs;
  runs.reserve(repetitions);
  for (std::size_t i = 0; i < repetitions; ++i) {
    const auto sim = simulator.simulate_on_route(route, mode, points, interval_s, rng);
    runs.push_back(sim.reported.to_enu(sim::sim_projection()));
  }

  MindEstimate est;
  est.repetitions = repetitions;
  est.min_d = std::numeric_limits<double>::infinity();
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      const double d = dtw_normalized(runs[i], runs[j]);
      est.min_d = std::min(est.min_d, d);
      est.max_d = std::max(est.max_d, d);
      total += d;
      ++pairs;
    }
  }
  est.mean_d = total / static_cast<double>(pairs);
  return est;
}

double paper_mind(Mode mode) {
  switch (mode) {
    case Mode::kWalking: return 1.2;
    case Mode::kCycling: return 1.5;
    case Mode::kDriving: return 1.4;
  }
  return 1.2;
}

}  // namespace trajkit::attack
