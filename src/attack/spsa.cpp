#include "attack/spsa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trajkit::attack {

SpsaResult spsa_attack(const std::vector<Enu>& reference, const ScoreOracle& oracle,
                       const SpsaConfig& config) {
  if (reference.size() < 3) {
    throw std::invalid_argument("spsa_attack: reference needs >= 3 points");
  }
  if (!oracle) throw std::invalid_argument("spsa_attack: null oracle");
  if (config.perturbation_m <= 0.0 || config.step_size_m <= 0.0 ||
      config.epsilon_m <= 0.0 || config.steps == 0) {
    throw std::invalid_argument("spsa_attack: bad config");
  }

  const std::size_t n = reference.size();
  Rng rng(config.seed);
  std::vector<Enu> x(reference);
  std::vector<double> delta(2 * n);  // +-1 probe direction per coordinate

  SpsaResult result;
  auto clamp_box = [&](std::vector<Enu>& p) {
    for (std::size_t i = 1; i + 1 < n; ++i) {
      p[i].east = std::clamp(p[i].east, reference[i].east - config.epsilon_m,
                             reference[i].east + config.epsilon_m);
      p[i].north = std::clamp(p[i].north, reference[i].north - config.epsilon_m,
                              reference[i].north + config.epsilon_m);
    }
    p.front() = reference.front();
    p.back() = reference.back();
  };

  std::vector<Enu> plus(n);
  std::vector<Enu> minus(n);
  for (std::size_t step = 0; step < config.steps; ++step) {
    for (auto& d : delta) d = rng.chance(0.5) ? 1.0 : -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Enu probe{config.perturbation_m * delta[2 * i],
                      config.perturbation_m * delta[2 * i + 1]};
      plus[i] = x[i] + probe;
      minus[i] = x[i] - probe;
    }
    clamp_box(plus);
    clamp_box(minus);
    const double f_plus = oracle(plus);
    const double f_minus = oracle(minus);
    result.queries += 2;

    // Ascend the score: g_i = (f+ - f-) / (2c delta_i); step = a * sign-free g.
    const double scale =
        (f_plus - f_minus) / (2.0 * config.perturbation_m);
    for (std::size_t i = 1; i + 1 < n; ++i) {
      x[i].east += config.step_size_m * scale / delta[2 * i];
      x[i].north += config.step_size_m * scale / delta[2 * i + 1];
    }
    clamp_box(x);

    if (oracle(x) >= 0.5) {
      ++result.queries;
      break;  // adversarial — stop querying
    }
    ++result.queries;
  }

  result.points = std::move(x);
  result.final_score = oracle(result.points);
  ++result.queries;
  result.succeeded = result.final_score >= 0.5;
  return result;
}

}  // namespace trajkit::attack
