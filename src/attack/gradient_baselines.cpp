#include "attack/gradient_baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dtw/dtw.hpp"

namespace trajkit::attack {
namespace {

double sign(double x) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); }

}  // namespace

GradientAttacker::GradientAttacker(const nn::LstmClassifier& model,
                                   const FeatureEncoder& encoder,
                                   GradientAttackConfig config)
    : model_(&model), encoder_(&encoder), config_(config) {
  if (config_.epsilon_m <= 0.0 || config_.step_size_m <= 0.0 || config_.steps == 0) {
    throw std::invalid_argument("GradientAttacker: bad config");
  }
}

GradientAttackResult GradientAttacker::fgsm(const std::vector<Enu>& reference) const {
  return run(reference, 1, config_.epsilon_m);
}

GradientAttackResult GradientAttacker::pgd(const std::vector<Enu>& reference) const {
  return run(reference, config_.steps, config_.step_size_m);
}

GradientAttackResult GradientAttacker::run(const std::vector<Enu>& reference,
                                           std::size_t steps, double step_size) const {
  if (reference.size() < 3) {
    throw std::invalid_argument("GradientAttacker: reference needs >= 3 points");
  }
  const std::size_t n = reference.size();
  std::vector<Enu> x(reference);
  std::vector<Enu> grad(n);

  for (std::size_t step = 0; step < steps; ++step) {
    const FeatureSequence feat = encoder_->encode(x);
    FeatureSequence dfeat;
    const double ce = model_->loss_and_input_gradient(feat, /*target=*/1, &dfeat);
    if (std::exp(-ce) >= 0.5 && steps > 1) break;  // PGD stops once adversarial

    std::fill(grad.begin(), grad.end(), Enu{});
    encoder_->backprop(x, dfeat, grad);

    for (std::size_t i = 1; i + 1 < n; ++i) {  // endpoints pinned
      x[i].east -= step_size * sign(grad[i].east);
      x[i].north -= step_size * sign(grad[i].north);
      // Project back into the epsilon box around the reference.
      x[i].east = std::clamp(x[i].east, reference[i].east - config_.epsilon_m,
                             reference[i].east + config_.epsilon_m);
      x[i].north = std::clamp(x[i].north, reference[i].north - config_.epsilon_m,
                              reference[i].north + config_.epsilon_m);
    }
  }

  GradientAttackResult result;
  result.points = std::move(x);
  result.p_real = model_->predict_proba(encoder_->encode(result.points));
  result.adversarial = result.p_real >= 0.5;
  result.dtw_norm = dtw_normalized(reference, result.points);
  return result;
}

}  // namespace trajkit::attack
