#include "baseline/replay_check.hpp"

#include <stdexcept>

#include "dtw/dtw.hpp"

namespace trajkit::baseline {

ReplayDetector::ReplayDetector(ReplayCheckConfig config) : config_(config) {
  if (config_.min_d <= 0.0) {
    throw std::invalid_argument("ReplayDetector: min_d must be positive");
  }
}

void ReplayDetector::add_history(std::vector<Enu> trajectory) {
  if (trajectory.size() < 2) {
    throw std::invalid_argument("ReplayDetector: history trajectory too short");
  }
  history_.push_back(std::move(trajectory));
}

std::optional<ReplayMatch> ReplayDetector::closest(
    const std::vector<Enu>& upload) const {
  if (upload.size() < 2) {
    throw std::invalid_argument("ReplayDetector: upload too short");
  }
  std::optional<ReplayMatch> best;
  for (std::size_t h = 0; h < history_.size(); ++h) {
    const auto& record = history_[h];
    // Cheap prefilter: a replay shares (approximately) its endpoints.
    if (distance(record.front(), upload.front()) > config_.endpoint_prefilter_m ||
        distance(record.back(), upload.back()) > config_.endpoint_prefilter_m) {
      continue;
    }
    const auto r = dtw_banded(record, upload, config_.dtw_band);
    const double norm = r.distance / static_cast<double>(r.path.size());
    if (!best || norm < best->dtw_norm) best = ReplayMatch{h, norm};
  }
  return best;
}

int ReplayDetector::verify(const std::vector<Enu>& upload) const {
  const auto match = closest(upload);
  return (match && match->dtw_norm < config_.min_d) ? 0 : 1;
}

}  // namespace trajkit::baseline
