#include "baseline/rssi_similarity.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace trajkit::baseline {

RssiSimilarityDetector::RssiSimilarityDetector(const wifi::ReferenceIndex& index,
                                               RssiSimilarityConfig config)
    : index_(&index), config_(config) {
  if (config_.reference_radius_m <= 0.0 || config_.tolerance_db <= 0.0) {
    throw std::invalid_argument("RssiSimilarityDetector: bad config");
  }
}

double RssiSimilarityDetector::mean_deviation_db(
    const std::vector<Enu>& positions, const std::vector<wifi::WifiScan>& scans) const {
  if (positions.size() != scans.size() || positions.empty()) {
    throw std::invalid_argument("RssiSimilarityDetector: bad upload");
  }
  double deviation_total = 0.0;
  std::size_t matched = 0;
  std::size_t reported = 0;

  for (std::size_t p = 0; p < positions.size(); ++p) {
    reported += scans[p].size();
    const auto refs = index_->within(positions[p], config_.reference_radius_m);
    if (refs.empty()) continue;
    // Local average RSSI per AP over the coarse bucket.
    std::unordered_map<std::uint64_t, std::pair<double, std::size_t>> sums;
    for (std::size_t h : refs) {
      for (const auto& obs : (*index_)[h].scan) {
        auto& slot = sums[obs.mac];
        slot.first += obs.rssi_dbm;
        ++slot.second;
      }
    }
    for (const auto& obs : scans[p]) {
      const auto it = sums.find(obs.mac);
      if (it == sums.end()) continue;
      const double local_mean =
          it->second.first / static_cast<double>(it->second.second);
      deviation_total += std::fabs(static_cast<double>(obs.rssi_dbm) - local_mean);
      ++matched;
    }
  }

  if (reported == 0 ||
      static_cast<double>(matched) <
          config_.min_match_fraction * static_cast<double>(reported)) {
    return 1e9;  // signature cannot be established — suspicious by itself
  }
  return deviation_total / static_cast<double>(matched);
}

int RssiSimilarityDetector::verify(const std::vector<Enu>& positions,
                                   const std::vector<wifi::WifiScan>& scans) const {
  return mean_deviation_db(positions, scans) <= config_.tolerance_db ? 1 : 0;
}

}  // namespace trajkit::baseline
