// Rule-based trajectory verification — the "methods based on rules" baseline
// of the paper's related work (He et al. [34], Polakis et al. [35]).
//
// Heuristic physical-plausibility checks per transport mode: maximum speed,
// maximum acceleration, teleport detection (single-step jumps), and minimum
// progress.  Cheap and effective against crude spoofing, but — as the paper
// argues — defeated by replaying any genuinely-recorded trajectory, and a
// fortiori by the adversarial forgeries, whose motion statistics are
// indistinguishable from real ones by construction.
#pragma once

#include <string>
#include <vector>

#include "traj/trajectory.hpp"

namespace trajkit::baseline {

struct RuleThresholds {
  double max_speed_mps = 2.5;
  double max_accel_mps2 = 1.5;
  double max_step_jump_m = 15.0;  ///< teleport guard (single displacement)
  double min_progress_m = 5.0;    ///< total displacement floor (anti-freeze)

  /// Generous per-mode physical limits.
  static RuleThresholds for_mode(Mode mode);
};

/// One fired rule, for audit logs.
struct RuleViolation {
  std::string rule;
  std::size_t point_index = 0;
  double value = 0.0;
  double limit = 0.0;
};

class RuleBasedDetector {
 public:
  explicit RuleBasedDetector(RuleThresholds thresholds);
  static RuleBasedDetector for_mode(Mode mode);

  /// All violations of the trajectory (empty = passes).
  std::vector<RuleViolation> check(const Trajectory& traj,
                                   const LocalProjection& proj) const;

  /// Violations over a bare ENU point sequence sampled every `interval_s`
  /// seconds — the serving-layer fallback path, where uploads arrive already
  /// projected and no lat/lon round-trip is wanted.
  std::vector<RuleViolation> check_points(const std::vector<Enu>& pts,
                                          double interval_s) const;

  /// The J-style verdict: 1 = plausible, 0 = flagged.
  int verify(const Trajectory& traj, const LocalProjection& proj) const;

  /// J-style verdict over ENU points (see check_points).
  int verify_points(const std::vector<Enu>& pts, double interval_s) const;

  const RuleThresholds& thresholds() const { return thresholds_; }

 private:
  RuleThresholds thresholds_;
};

}  // namespace trajkit::baseline
