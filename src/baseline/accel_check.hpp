// Accelerometer consistency check — an extension the paper teases.
//
// The provider compares the acceleration implied by the *claimed* positions
// against the acceleration magnitudes the client's IMU reported.  A forger
// who only hooks the GPS pipe uploads sensor values inconsistent with the
// fabricated motion (e.g. a constant-speed navigation fake whose IMU says the
// user was bouncing along at 0.5 m/s^2); a full replay forger can replay the
// IMU stream too, and because the paper's replay perturbation is smooth, the
// replayed stream stays kinematically consistent — which is why the RSSI
// check (not this one) is the paper's answer to replays.
#pragma once

#include <vector>

#include "geo/geo.hpp"

namespace trajkit::baseline {

struct AccelCheckConfig {
  double tolerance_mps2 = 0.8;  ///< allowed mean |claimed - reported| gap
};

class AccelConsistencyCheck {
 public:
  explicit AccelConsistencyCheck(AccelCheckConfig config = {});

  /// Mean absolute gap between position-implied and reported acceleration
  /// magnitudes, m/s^2 (computed from the third sample on).
  double mean_gap_mps2(const std::vector<Enu>& claimed_positions,
                       const std::vector<double>& reported_accel,
                       double interval_s) const;

  /// 1 = consistent, 0 = flagged.
  int verify(const std::vector<Enu>& claimed_positions,
             const std::vector<double>& reported_accel, double interval_s) const;

  const AccelCheckConfig& config() const { return config_; }

 private:
  AccelCheckConfig config_;
};

}  // namespace trajkit::baseline
