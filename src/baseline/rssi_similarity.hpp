// Coarse RSSI-signature verification — the "methods based on environmental
// signal" baseline (Zhang et al. [15] style).
//
// For each uploaded point, the mean absolute RSSI difference to the *average*
// RSSI of each common AP among nearby reference points is computed; the
// trajectory passes if the mean deviation stays under a tolerance.  This is
// the coarse-signature design the paper criticises: "the accuracy of the
// proposed signatures is too coarse, i.e., the range of data variation
// allowed is too big.  As a result, malicious users easily escape from being
// detected by replaying their historical data with slight noises."  The
// defense-baselines benchmark demonstrates exactly that escape, and how the
// paper's RPD/Phi detector closes it.
#pragma once

#include "wifi/refindex.hpp"

namespace trajkit::baseline {

struct RssiSimilarityConfig {
  double reference_radius_m = 10.0;  ///< coarse spatial bucket
  double tolerance_db = 8.0;         ///< allowed mean |RSSI - mean| deviation
  double min_match_fraction = 0.3;   ///< required overlap of APs with history
};

class RssiSimilarityDetector {
 public:
  /// `index` must outlive the detector.
  RssiSimilarityDetector(const wifi::ReferenceIndex& index,
                         RssiSimilarityConfig config = {});

  /// Mean absolute deviation of the upload's RSSIs from the local averages,
  /// dB; returns a large sentinel when too few APs match history.
  double mean_deviation_db(const std::vector<Enu>& positions,
                           const std::vector<wifi::WifiScan>& scans) const;

  /// 1 = signature consistent with history, 0 = flagged.
  int verify(const std::vector<Enu>& positions,
             const std::vector<wifi::WifiScan>& scans) const;

  const RssiSimilarityConfig& config() const { return config_; }

 private:
  const wifi::ReferenceIndex* index_;
  RssiSimilarityConfig config_;
};

}  // namespace trajkit::baseline
