// Server-side replay check.
//
// The paper's Sec. II-B observes that a plain replay is trivially detectable:
// "as the server has the records too, the server can simply traverse its
// records and differentiate whether the new trajectory is a real one or a
// replay."  This detector is that traversal, done efficiently: candidate
// historical trajectories are pre-filtered by endpoint proximity, then the
// normalised (banded) DTW to each candidate is compared against the per-mode
// MinD bound — any upload closer than MinD to some record is a replay.
//
// It catches naive replays (DTW ~ noise level << MinD) and forces the
// adversarial replay attack to target DTW > MinD, which is exactly the
// constraint Eq. 2 encodes.
#pragma once

#include <optional>
#include <vector>

#include "geo/geo.hpp"
#include "traj/trajectory.hpp"

namespace trajkit::baseline {

struct ReplayCheckConfig {
  double min_d = 1.2;              ///< replay threshold (normalised DTW, m/step)
  double endpoint_prefilter_m = 60.0;  ///< skip records with distant endpoints
  std::size_t dtw_band = 16;       ///< Sakoe-Chiba band for the DTW scans
};

/// Result of one check: the closest historical record, if any was compared.
struct ReplayMatch {
  std::size_t history_index = 0;
  double dtw_norm = 0.0;
};

class ReplayDetector {
 public:
  explicit ReplayDetector(ReplayCheckConfig config = {});

  /// Register a historical trajectory (ENU points).
  void add_history(std::vector<Enu> trajectory);
  std::size_t history_size() const { return history_.size(); }

  /// Closest record by normalised DTW (after the endpoint prefilter);
  /// std::nullopt when nothing survives the prefilter.
  std::optional<ReplayMatch> closest(const std::vector<Enu>& upload) const;

  /// 1 = not a replay (or no comparable record), 0 = replay of some record.
  int verify(const std::vector<Enu>& upload) const;

  const ReplayCheckConfig& config() const { return config_; }

 private:
  ReplayCheckConfig config_;
  std::vector<std::vector<Enu>> history_;
};

}  // namespace trajkit::baseline
