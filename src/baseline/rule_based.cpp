#include "baseline/rule_based.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::baseline {

RuleThresholds RuleThresholds::for_mode(Mode mode) {
  RuleThresholds t;
  switch (mode) {
    case Mode::kWalking:
      t.max_speed_mps = 3.5;     // brisk jog allowance
      t.max_accel_mps2 = 2.5;
      t.max_step_jump_m = 10.0;
      break;
    case Mode::kCycling:
      t.max_speed_mps = 12.0;
      t.max_accel_mps2 = 3.5;
      t.max_step_jump_m = 25.0;
      break;
    case Mode::kDriving:
      t.max_speed_mps = 33.0;    // ~120 km/h
      t.max_accel_mps2 = 5.0;
      t.max_step_jump_m = 60.0;
      break;
  }
  return t;
}

RuleBasedDetector::RuleBasedDetector(RuleThresholds thresholds)
    : thresholds_(thresholds) {
  if (thresholds_.max_speed_mps <= 0.0 || thresholds_.max_accel_mps2 <= 0.0) {
    throw std::invalid_argument("RuleBasedDetector: thresholds must be positive");
  }
}

RuleBasedDetector RuleBasedDetector::for_mode(Mode mode) {
  return RuleBasedDetector(RuleThresholds::for_mode(mode));
}

std::vector<RuleViolation> RuleBasedDetector::check(const Trajectory& traj,
                                                    const LocalProjection& proj) const {
  return check_points(traj.to_enu(proj), traj.interval_s());
}

std::vector<RuleViolation> RuleBasedDetector::check_points(
    const std::vector<Enu>& pts, double interval_s) const {
  std::vector<RuleViolation> violations;
  if (pts.size() < 3) {
    violations.push_back({"too_short", 0, static_cast<double>(pts.size()), 3.0});
    return violations;
  }
  const double dt = interval_s;

  double total_progress = 0.0;
  double prev_speed = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double step = distance(pts[i - 1], pts[i]);
    total_progress += step;
    if (step > thresholds_.max_step_jump_m) {
      violations.push_back({"teleport", i, step, thresholds_.max_step_jump_m});
    }
    const double speed = step / dt;
    if (speed > thresholds_.max_speed_mps) {
      violations.push_back({"overspeed", i, speed, thresholds_.max_speed_mps});
    }
    if (i > 1) {
      const double accel = std::fabs(speed - prev_speed) / dt;
      if (accel > thresholds_.max_accel_mps2) {
        violations.push_back({"overaccel", i, accel, thresholds_.max_accel_mps2});
      }
    }
    prev_speed = speed;
  }
  if (total_progress < thresholds_.min_progress_m) {
    violations.push_back({"no_progress", pts.size() - 1, total_progress,
                          thresholds_.min_progress_m});
  }
  return violations;
}

int RuleBasedDetector::verify(const Trajectory& traj,
                              const LocalProjection& proj) const {
  return check(traj, proj).empty() ? 1 : 0;
}

int RuleBasedDetector::verify_points(const std::vector<Enu>& pts,
                                     double interval_s) const {
  return check_points(pts, interval_s).empty() ? 1 : 0;
}

}  // namespace trajkit::baseline
