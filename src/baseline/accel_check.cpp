#include "baseline/accel_check.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::baseline {

AccelConsistencyCheck::AccelConsistencyCheck(AccelCheckConfig config)
    : config_(config) {
  if (config_.tolerance_mps2 <= 0.0) {
    throw std::invalid_argument("AccelConsistencyCheck: tolerance must be positive");
  }
}

double AccelConsistencyCheck::mean_gap_mps2(
    const std::vector<Enu>& claimed_positions,
    const std::vector<double>& reported_accel, double interval_s) const {
  if (claimed_positions.size() != reported_accel.size() ||
      claimed_positions.size() < 3) {
    throw std::invalid_argument("AccelConsistencyCheck: bad upload");
  }
  if (interval_s <= 0.0) {
    throw std::invalid_argument("AccelConsistencyCheck: bad interval");
  }
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 2; i < claimed_positions.size(); ++i) {
    const Enu v1 =
        (claimed_positions[i - 1] - claimed_positions[i - 2]) * (1.0 / interval_s);
    const Enu v2 =
        (claimed_positions[i] - claimed_positions[i - 1]) * (1.0 / interval_s);
    const double implied = (v2 - v1).norm() / interval_s;
    total += std::fabs(implied - reported_accel[i]);
    ++count;
  }
  return total / static_cast<double>(count);
}

int AccelConsistencyCheck::verify(const std::vector<Enu>& claimed_positions,
                                  const std::vector<double>& reported_accel,
                                  double interval_s) const {
  return mean_gap_mps2(claimed_positions, reported_accel, interval_s) <=
                 config_.tolerance_mps2
             ? 1
             : 0;
}

}  // namespace trajkit::baseline
