// Road network substrate.
//
// The paper obtains "rational routes" from a commercial navigation service
// (Amap) and real trajectories from OpenStreetMap.  Offline, we build the
// equivalent substrate ourselves: a road graph (synthetic city generator in
// city.hpp), shortest-path routing (route.hpp) and a navigation facade that
// returns a polyline plus a recommended speed (nav.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "geo/geo.hpp"
#include "traj/trajectory.hpp"

namespace trajkit::map {

/// Road classification; drives speed limits and mode accessibility.
enum class RoadClass {
  kFootpath,  ///< pedestrians/cyclists only
  kLocal,     ///< local street, all modes, low speed
  kArterial,  ///< main road, all modes, higher driving speed
};

struct RoadNode {
  Enu pos;
};

struct RoadEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  double length_m = 0.0;
  RoadClass road_class = RoadClass::kLocal;
};

/// Whether `mode` may traverse a road of class `rc`.
bool mode_allowed(Mode mode, RoadClass rc);

/// Free-flow speed of `mode` on a road of class `rc`, m/s.
double free_flow_speed_mps(Mode mode, RoadClass rc);

/// Undirected road graph with adjacency lists.
class RoadNetwork {
 public:
  std::size_t add_node(Enu pos);
  /// Add an undirected edge; length is computed from the endpoints.
  /// Returns the edge id.  Self-loops are rejected.
  std::size_t add_edge(std::size_t a, std::size_t b, RoadClass rc);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const RoadNode& node(std::size_t i) const { return nodes_[i]; }
  const RoadEdge& edge(std::size_t i) const { return edges_[i]; }
  const std::vector<std::size_t>& edges_at(std::size_t node) const {
    return adjacency_[node];
  }

  /// Other endpoint of edge e relative to node n.
  std::size_t other_end(std::size_t e, std::size_t n) const;

  /// Closest node to a position that is reachable by `mode` (has at least one
  /// traversable incident edge).  Linear scan; networks here are small.
  std::size_t nearest_node(const Enu& p, Mode mode) const;

  /// Distance from p to the closest edge segment of the network, metres.
  /// This is the "route rationality" primitive: a trajectory whose points all
  /// stay within GPS error of some road is map-consistent.
  double distance_to_network(const Enu& p) const;

  /// Bounding box of all nodes.
  BoundingBox bounds() const;

 private:
  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace trajkit::map
