// HMM map matching (Newson-Krumm style, simplified).
//
// The paper's route-rationality requirement is that a forged trajectory,
// "when projected to the map, should briefly match a reasonable walking,
// cycling, or driving route".  This matcher performs that projection
// properly: a hidden Markov model whose states are candidate road-edge
// projections of each GPS point, with
//   emission    p(z_t | s) ~ exp(-d(z_t, s)^2 / (2 sigma^2))
//   transition  p(s' | s) ~ exp(-|d_snap - d_gps| / beta)
// solved by Viterbi.  (The exact Newson-Krumm transition uses network
// distance between snapped points; the Euclidean surrogate used here is a
// standard simplification that is accurate at the 1-2 s sampling intervals
// of this project and keeps matching O(points x candidates^2).)
#pragma once

#include <optional>
#include <vector>

#include "map/roadnet.hpp"

namespace trajkit::map {

struct MatchConfig {
  double gps_sigma_m = 4.0;      ///< emission standard deviation
  double transition_beta_m = 3.0;
  double max_candidate_distance_m = 30.0;
  std::size_t max_candidates = 6;  ///< candidate edges per point
};

/// One matched point: the chosen edge and the snapped position on it.
struct MatchedPoint {
  std::size_t edge = 0;
  double fraction = 0.0;  ///< position along the edge, in [0, 1] from node a
  Enu snapped;
  double offset_m = 0.0;  ///< distance from the GPS fix to the snap
};

struct MatchResult {
  std::vector<MatchedPoint> points;
  double mean_offset_m = 0.0;  ///< route-rationality score (small = on-road)
  double max_offset_m = 0.0;
};

class MapMatcher {
 public:
  /// `network` must outlive the matcher.
  explicit MapMatcher(const RoadNetwork& network, MatchConfig config = {});

  /// Match a trajectory; std::nullopt if some point has no candidate edge
  /// within the distance bound (the trajectory is then grossly off-map).
  std::optional<MatchResult> match(const std::vector<Enu>& trajectory) const;

  const MatchConfig& config() const { return config_; }

 private:
  struct Candidate {
    std::size_t edge;
    double fraction;
    Enu snapped;
    double offset_m;
  };
  std::vector<Candidate> candidates_for(const Enu& p) const;

  const RoadNetwork* network_;
  MatchConfig config_;
};

}  // namespace trajkit::map
