// Synthetic city generator.
//
// Produces the road substrate the experiments run on: a jittered block grid
// with arterial roads every few lines, occasional missing segments (so routes
// are non-trivial), a few diagonal connectors, and footpath-only edges that
// cars must avoid.  The defaults model the paper's commercial evaluation
// areas (a few hectares, dense storefront streets).
#pragma once

#include "common/rng.hpp"
#include "map/roadnet.hpp"

namespace trajkit::map {

struct CityConfig {
  std::size_t blocks_x = 8;        ///< intersections along east axis
  std::size_t blocks_y = 8;        ///< intersections along north axis
  double block_size_m = 55.0;      ///< nominal block edge length
  double jitter_m = 6.0;           ///< per-intersection position jitter
  std::size_t arterial_every = 3;  ///< every k-th grid line is an arterial
  double drop_probability = 0.08;  ///< chance a grid segment is missing
  double diagonal_probability = 0.06;  ///< chance of a block diagonal connector
  double footpath_probability = 0.10;  ///< chance a local street is footpath-only
};

/// Generate a connected road network.  Dropped segments are re-inserted if
/// they would disconnect the graph, so any two nodes are mutually reachable
/// on foot (driving reachability is guaranteed on the arterial skeleton).
RoadNetwork make_city(const CityConfig& config, Rng& rng);

}  // namespace trajkit::map
