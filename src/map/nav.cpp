#include "map/nav.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::map {

std::optional<RouteResult> NavigationService::route(const RouteRequest& request) const {
  const std::size_t from = network_->nearest_node(request.from, request.mode);
  const std::size_t to = network_->nearest_node(request.to, request.mode);
  if (from == to) return std::nullopt;  // degenerate request
  const auto path = shortest_path(*network_, from, to, request.mode);
  if (!path) return std::nullopt;
  RouteResult result;
  result.polyline = path_polyline(*network_, *path);
  result.length_m = path->length_m;
  result.travel_time_s = path->travel_time_s;
  result.recommended_speed_mps =
      path->travel_time_s > 0.0 ? path->length_m / path->travel_time_s : 0.0;
  return result;
}

std::vector<Enu> sample_route(const std::vector<Enu>& polyline, double speed_mps,
                              double interval_s) {
  if (polyline.size() < 2) {
    throw std::invalid_argument("sample_route: need a polyline of >= 2 points");
  }
  if (speed_mps <= 0.0 || interval_s <= 0.0) {
    throw std::invalid_argument("sample_route: speed and interval must be positive");
  }
  std::vector<Enu> out;
  out.push_back(polyline.front());
  const double step_m = speed_mps * interval_s;

  std::size_t seg = 0;
  double seg_offset = 0.0;  // metres already consumed on segment `seg`
  while (seg + 1 < polyline.size()) {
    double remaining = step_m;
    Enu pos{};
    bool emitted = false;
    while (seg + 1 < polyline.size()) {
      const double seg_len = distance(polyline[seg], polyline[seg + 1]);
      const double left_on_seg = seg_len - seg_offset;
      if (remaining < left_on_seg) {
        seg_offset += remaining;
        const double t = seg_len > 0.0 ? seg_offset / seg_len : 0.0;
        pos = polyline[seg] + (polyline[seg + 1] - polyline[seg]) * t;
        emitted = true;
        break;
      }
      remaining -= left_on_seg;
      ++seg;
      seg_offset = 0.0;
    }
    if (!emitted) break;
    out.push_back(pos);
  }
  if (distance(out.back(), polyline.back()) > 1e-9) out.push_back(polyline.back());
  return out;
}

double route_deviation_m(const std::vector<Enu>& trajectory,
                         const std::vector<Enu>& route) {
  if (trajectory.empty()) {
    throw std::invalid_argument("route_deviation_m: empty trajectory");
  }
  double total = 0.0;
  for (const auto& p : trajectory) total += point_polyline_distance(p, route);
  return total / static_cast<double>(trajectory.size());
}

}  // namespace trajkit::map
