#include "map/matcher.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace trajkit::map {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

MapMatcher::MapMatcher(const RoadNetwork& network, MatchConfig config)
    : network_(&network), config_(config) {
  if (config_.gps_sigma_m <= 0.0 || config_.transition_beta_m <= 0.0 ||
      config_.max_candidates == 0) {
    throw std::invalid_argument("MapMatcher: bad config");
  }
}

std::vector<MapMatcher::Candidate> MapMatcher::candidates_for(const Enu& p) const {
  std::vector<Candidate> out;
  for (std::size_t e = 0; e < network_->edge_count(); ++e) {
    const auto& edge = network_->edge(e);
    const Enu a = network_->node(edge.a).pos;
    const Enu b = network_->node(edge.b).pos;
    const Enu ab = b - a;
    const double len_sq = ab.east * ab.east + ab.north * ab.north;
    double t = 0.0;
    if (len_sq > 0.0) {
      const Enu ap = p - a;
      t = std::clamp((ap.east * ab.east + ap.north * ab.north) / len_sq, 0.0, 1.0);
    }
    const Enu snapped = a + ab * t;
    const double d = distance(p, snapped);
    if (d <= config_.max_candidate_distance_m) {
      out.push_back({e, t, snapped, d});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Candidate& x, const Candidate& y) { return x.offset_m < y.offset_m; });
  if (out.size() > config_.max_candidates) out.resize(config_.max_candidates);
  return out;
}

std::optional<MatchResult> MapMatcher::match(const std::vector<Enu>& trajectory) const {
  if (trajectory.size() < 2) {
    throw std::invalid_argument("MapMatcher::match: need >= 2 points");
  }
  const std::size_t n = trajectory.size();
  const double inv_two_sigma_sq =
      1.0 / (2.0 * config_.gps_sigma_m * config_.gps_sigma_m);

  std::vector<std::vector<Candidate>> layers(n);
  for (std::size_t t = 0; t < n; ++t) {
    layers[t] = candidates_for(trajectory[t]);
    if (layers[t].empty()) return std::nullopt;  // grossly off-map point
  }

  // Viterbi in log space.
  std::vector<std::vector<double>> score(n);
  std::vector<std::vector<std::size_t>> back(n);
  score[0].resize(layers[0].size());
  back[0].assign(layers[0].size(), 0);
  for (std::size_t c = 0; c < layers[0].size(); ++c) {
    score[0][c] = -layers[0][c].offset_m * layers[0][c].offset_m * inv_two_sigma_sq;
  }
  for (std::size_t t = 1; t < n; ++t) {
    const double gps_step = distance(trajectory[t - 1], trajectory[t]);
    score[t].assign(layers[t].size(), kNegInf);
    back[t].assign(layers[t].size(), 0);
    for (std::size_t c = 0; c < layers[t].size(); ++c) {
      const Candidate& cur = layers[t][c];
      const double emission = -cur.offset_m * cur.offset_m * inv_two_sigma_sq;
      for (std::size_t p = 0; p < layers[t - 1].size(); ++p) {
        const Candidate& prev = layers[t - 1][p];
        const double snap_step = distance(prev.snapped, cur.snapped);
        const double transition =
            -std::fabs(snap_step - gps_step) / config_.transition_beta_m;
        const double total = score[t - 1][p] + transition + emission;
        if (total > score[t][c]) {
          score[t][c] = total;
          back[t][c] = p;
        }
      }
    }
  }

  // Backtrack the best terminal state.
  std::size_t best = 0;
  for (std::size_t c = 1; c < layers[n - 1].size(); ++c) {
    if (score[n - 1][c] > score[n - 1][best]) best = c;
  }
  MatchResult result;
  result.points.resize(n);
  std::size_t state = best;
  for (std::size_t t = n; t-- > 0;) {
    const Candidate& c = layers[t][state];
    result.points[t] = {c.edge, c.fraction, c.snapped, c.offset_m};
    if (t > 0) state = back[t][state];
  }
  double total_offset = 0.0;
  for (const auto& mp : result.points) {
    total_offset += mp.offset_m;
    result.max_offset_m = std::max(result.max_offset_m, mp.offset_m);
  }
  result.mean_offset_m = total_offset / static_cast<double>(n);
  return result;
}

}  // namespace trajkit::map
