#include "map/city.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace trajkit::map {
namespace {

/// Union-find for the connectivity repair pass.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool merge(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

struct Segment {
  std::size_t a;
  std::size_t b;
  RoadClass road_class;
};

}  // namespace

RoadNetwork make_city(const CityConfig& config, Rng& rng) {
  if (config.blocks_x < 2 || config.blocks_y < 2) {
    throw std::invalid_argument("make_city: need at least a 2x2 grid");
  }
  RoadNetwork net;
  const std::size_t nx = config.blocks_x;
  const std::size_t ny = config.blocks_y;
  auto node_id = [nx](std::size_t ix, std::size_t iy) { return iy * nx + ix; };

  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const Enu pos{static_cast<double>(ix) * config.block_size_m +
                        rng.uniform(-config.jitter_m, config.jitter_m),
                    static_cast<double>(iy) * config.block_size_m +
                        rng.uniform(-config.jitter_m, config.jitter_m)};
      net.add_node(pos);
    }
  }

  auto line_is_arterial = [&](std::size_t index) {
    return config.arterial_every > 0 && index % config.arterial_every == 0;
  };
  auto classify_local = [&]() {
    return rng.chance(config.footpath_probability) ? RoadClass::kFootpath
                                                   : RoadClass::kLocal;
  };

  std::vector<Segment> kept;
  std::vector<Segment> dropped;
  auto consider = [&](std::size_t a, std::size_t b, bool arterial) {
    const RoadClass rc = arterial ? RoadClass::kArterial : classify_local();
    // Arterials form the guaranteed-connected driving skeleton: never drop.
    if (!arterial && rng.chance(config.drop_probability)) {
      dropped.push_back({a, b, rc});
    } else {
      kept.push_back({a, b, rc});
    }
  };

  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix + 1 < nx; ++ix) {
      consider(node_id(ix, iy), node_id(ix + 1, iy), line_is_arterial(iy));
    }
  }
  for (std::size_t ix = 0; ix < nx; ++ix) {
    for (std::size_t iy = 0; iy + 1 < ny; ++iy) {
      consider(node_id(ix, iy), node_id(ix, iy + 1), line_is_arterial(ix));
    }
  }
  // Occasional diagonal connectors inside a block.
  for (std::size_t iy = 0; iy + 1 < ny; ++iy) {
    for (std::size_t ix = 0; ix + 1 < nx; ++ix) {
      if (rng.chance(config.diagonal_probability)) {
        kept.push_back({node_id(ix, iy), node_id(ix + 1, iy + 1), RoadClass::kLocal});
      }
    }
  }

  DisjointSet components(nx * ny);
  for (const auto& s : kept) {
    net.add_edge(s.a, s.b, s.road_class);
    components.merge(s.a, s.b);
  }
  // Re-insert dropped segments whose absence disconnects the graph.
  for (const auto& s : dropped) {
    if (components.merge(s.a, s.b)) net.add_edge(s.a, s.b, s.road_class);
  }
  return net;
}

}  // namespace trajkit::map
