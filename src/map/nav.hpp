// Navigation service facade — the offline stand-in for Amap/Google routing
// used by the navigation-attack scenario (Sec. II-B).
//
// Given start/end positions and a transport mode it returns what the paper's
// attacker fetches from the commercial service: a route polyline and a
// recommended average speed.  It also offers uniform resampling of a route at
// a fixed time interval, which is how the AN dataset trajectories are drawn.
#pragma once

#include <optional>
#include <vector>

#include "map/route.hpp"

namespace trajkit::map {

struct RouteRequest {
  Enu from;
  Enu to;
  Mode mode = Mode::kWalking;
};

struct RouteResult {
  std::vector<Enu> polyline;      ///< road-node positions from snap(from) to snap(to)
  double length_m = 0.0;
  double travel_time_s = 0.0;
  double recommended_speed_mps = 0.0;  ///< length / travel time
};

class NavigationService {
 public:
  explicit NavigationService(const RoadNetwork& network) : network_(&network) {}

  /// Plan a route; std::nullopt when no mode-feasible path exists.
  std::optional<RouteResult> route(const RouteRequest& request) const;

  const RoadNetwork& network() const { return *network_; }

 private:
  const RoadNetwork* network_;
};

/// Walk the polyline at constant `speed_mps`, emitting a position every
/// `interval_s` seconds — the paper's "sample at 1 s intervals on the route
/// based on this speed".  The final point is the polyline end.
std::vector<Enu> sample_route(const std::vector<Enu>& polyline, double speed_mps,
                              double interval_s);

/// Mean distance from trajectory points to the route polyline, metres.  The
/// route-rationality score used to validate forged trajectories.
double route_deviation_m(const std::vector<Enu>& trajectory,
                         const std::vector<Enu>& route);

}  // namespace trajkit::map
