#include "map/roadnet.hpp"

#include <limits>
#include <stdexcept>

namespace trajkit::map {

bool mode_allowed(Mode mode, RoadClass rc) {
  if (rc == RoadClass::kFootpath) return mode != Mode::kDriving;
  return true;
}

double free_flow_speed_mps(Mode mode, RoadClass rc) {
  switch (mode) {
    case Mode::kWalking:
      return 1.4;
    case Mode::kCycling:
      return rc == RoadClass::kArterial ? 5.5 : 4.5;
    case Mode::kDriving:
      return rc == RoadClass::kArterial ? 13.9 : 8.3;  // ~50 / ~30 km/h
  }
  return 1.0;
}

std::size_t RoadNetwork::add_node(Enu pos) {
  nodes_.push_back({pos});
  adjacency_.emplace_back();
  return nodes_.size() - 1;
}

std::size_t RoadNetwork::add_edge(std::size_t a, std::size_t b, RoadClass rc) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("RoadNetwork::add_edge: node out of range");
  }
  if (a == b) throw std::invalid_argument("RoadNetwork::add_edge: self-loop");
  RoadEdge e;
  e.a = a;
  e.b = b;
  e.length_m = distance(nodes_[a].pos, nodes_[b].pos);
  e.road_class = rc;
  edges_.push_back(e);
  const std::size_t id = edges_.size() - 1;
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  return id;
}

std::size_t RoadNetwork::other_end(std::size_t e, std::size_t n) const {
  const RoadEdge& edge = edges_[e];
  return edge.a == n ? edge.b : edge.a;
}

std::size_t RoadNetwork::nearest_node(const Enu& p, Mode mode) const {
  if (nodes_.empty()) throw std::logic_error("RoadNetwork: empty network");
  std::size_t best = nodes_.size();
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    bool reachable = false;
    for (std::size_t e : adjacency_[i]) {
      if (mode_allowed(mode, edges_[e].road_class)) {
        reachable = true;
        break;
      }
    }
    if (!reachable) continue;
    const double d = distance_sq(p, nodes_[i].pos);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  if (best == nodes_.size()) {
    throw std::logic_error("RoadNetwork: no node reachable by mode");
  }
  return best;
}

double RoadNetwork::distance_to_network(const Enu& p) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : edges_) {
    best = std::min(best, point_segment_distance(p, nodes_[e.a].pos, nodes_[e.b].pos));
  }
  return best;
}

BoundingBox RoadNetwork::bounds() const {
  std::vector<Enu> pts;
  pts.reserve(nodes_.size());
  for (const auto& n : nodes_) pts.push_back(n.pos);
  return BoundingBox::of(pts);
}

}  // namespace trajkit::map
