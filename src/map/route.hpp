// Shortest-path routing over the road network.
//
// Dijkstra and A* with per-mode edge costs: cost = length / free-flow speed,
// i.e. routes minimise travel time for the requested transport mode, and
// edges the mode may not traverse are skipped entirely.
#pragma once

#include <optional>
#include <vector>

#include "map/roadnet.hpp"

namespace trajkit::map {

/// A routed path: node ids plus aggregate cost.
struct Path {
  std::vector<std::size_t> nodes;
  double travel_time_s = 0.0;
  double length_m = 0.0;
};

/// Dijkstra shortest-travel-time path; std::nullopt if unreachable by mode.
std::optional<Path> shortest_path(const RoadNetwork& net, std::size_t from,
                                  std::size_t to, Mode mode);

/// A* with a straight-line/top-speed admissible heuristic.  Produces the same
/// path cost as Dijkstra but expands fewer nodes; used by the micro-bench.
std::optional<Path> astar_path(const RoadNetwork& net, std::size_t from,
                               std::size_t to, Mode mode);

/// Polyline of node positions along a path.
std::vector<Enu> path_polyline(const RoadNetwork& net, const Path& path);

}  // namespace trajkit::map
