#include "map/route.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace trajkit::map {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double priority;
  std::size_t node;
  bool operator>(const QueueEntry& o) const { return priority > o.priority; }
};

/// Shared Dijkstra/A* core; `heuristic(n)` must be admissible (0 for Dijkstra).
template <typename Heuristic>
std::optional<Path> search(const RoadNetwork& net, std::size_t from, std::size_t to,
                           Mode mode, Heuristic heuristic) {
  if (from >= net.node_count() || to >= net.node_count()) {
    throw std::out_of_range("route: node id out of range");
  }
  std::vector<double> dist(net.node_count(), kInf);
  std::vector<std::size_t> prev(net.node_count(), net.node_count());
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> open;

  dist[from] = 0.0;
  open.push({heuristic(from), from});
  while (!open.empty()) {
    const auto [priority, n] = open.top();
    open.pop();
    if (n == to) break;
    if (priority > dist[n] + heuristic(n) + 1e-12) continue;  // stale entry
    for (std::size_t e : net.edges_at(n)) {
      const RoadEdge& edge = net.edge(e);
      if (!mode_allowed(mode, edge.road_class)) continue;
      const std::size_t m = net.other_end(e, n);
      const double cost = edge.length_m / free_flow_speed_mps(mode, edge.road_class);
      if (dist[n] + cost < dist[m]) {
        dist[m] = dist[n] + cost;
        prev[m] = n;
        open.push({dist[m] + heuristic(m), m});
      }
    }
  }
  if (dist[to] == kInf) return std::nullopt;

  Path path;
  path.travel_time_s = dist[to];
  for (std::size_t n = to; n != net.node_count(); n = prev[n]) {
    path.nodes.push_back(n);
    if (n == from) break;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  for (std::size_t i = 1; i < path.nodes.size(); ++i) {
    path.length_m += distance(net.node(path.nodes[i - 1]).pos,
                              net.node(path.nodes[i]).pos);
  }
  return path;
}

}  // namespace

std::optional<Path> shortest_path(const RoadNetwork& net, std::size_t from,
                                  std::size_t to, Mode mode) {
  return search(net, from, to, mode, [](std::size_t) { return 0.0; });
}

std::optional<Path> astar_path(const RoadNetwork& net, std::size_t from,
                               std::size_t to, Mode mode) {
  const Enu goal = net.node(to).pos;
  // Straight-line distance at the mode's best speed never overestimates time.
  const double top_speed = std::max(free_flow_speed_mps(mode, RoadClass::kArterial),
                                    free_flow_speed_mps(mode, RoadClass::kLocal));
  return search(net, from, to, mode, [&, top_speed](std::size_t n) {
    return distance(net.node(n).pos, goal) / top_speed;
  });
}

std::vector<Enu> path_polyline(const RoadNetwork& net, const Path& path) {
  std::vector<Enu> out;
  out.reserve(path.nodes.size());
  for (std::size_t n : path.nodes) out.push_back(net.node(n).pos);
  return out;
}

}  // namespace trajkit::map
