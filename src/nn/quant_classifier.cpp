#include "nn/quant_classifier.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/durable/durable_file.hpp"

namespace trajkit::nn {

namespace {

constexpr const char* kMagic = "trajkit_quant_lstm_v1";
constexpr const char* kDurableTag = "quant_lstm";
constexpr std::uint32_t kDurableVersion = 1;

// Same plausibility bounds as the fp64 model loader (serialize.cpp): a
// corrupt header must fail before it can demand a huge allocation.
constexpr std::size_t kMaxDim = 65536;
constexpr std::size_t kMaxLayers = 64;

kernels::Workspace& local_workspace() {
  thread_local kernels::Workspace ws;
  return ws;
}

double max_abs(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) {
    const double a = x < 0.0 ? -x : x;
    if (a > best) best = a;
  }
  return best;
}

/// A max-abs over a weight block maps to the symmetric scale that places the
/// largest magnitude exactly on the integer grid edge; an all-zero block
/// scales by 1 (every value quantizes to 0 either way).
double scale_for(double maxabs, std::int32_t qmax) {
  return maxabs > 0.0 ? maxabs / static_cast<double>(qmax) : 1.0;
}

void write_doubles(std::ostream& os, const double* p, std::size_t n) {
  os << std::setprecision(17);
  for (std::size_t i = 0; i < n; ++i) {
    os << p[i] << (((i + 1) % 8 == 0) ? '\n' : ' ');
  }
  os << '\n';
}

std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) {
  h ^= b;
  return h * 1099511628211ULL;
}

}  // namespace

QuantizedLstm QuantizedLstm::quantize(
    const LstmClassifier& model, const std::vector<FeatureSequence>& calibration,
    QuantMode mode) {
  if (calibration.empty()) {
    throw std::invalid_argument("quantize: empty calibration set");
  }
  QuantizedLstm q;
  q.mode_ = mode;
  q.input_dim_ = model.config().input_dim;
  q.hidden_dim_ = model.config().hidden_dim;
  const std::size_t nl = model.layer_count();
  const std::int32_t qmax = kernels::quant_qmax(mode);

  // Calibration pass through the fp64 reference layers, per sample in set
  // order: per-layer max-abs of the input stream and of the layer's own
  // hidden outputs.  Max-abs is an order-free reduction, so this is
  // bit-identical on every thread count by construction.
  std::vector<double> max_in(nl, 0.0), max_h(nl, 0.0);
  for (const auto& x : calibration) {
    if (x.dim != q.input_dim_ || x.steps == 0) {
      throw std::invalid_argument("quantize: calibration sequence shape mismatch");
    }
    std::vector<double> cur = x.values;
    for (std::size_t l = 0; l < nl; ++l) {
      max_in[l] = std::max(max_in[l], max_abs(cur));
      LstmTrace tr = model.layer(l).forward(cur, x.steps);
      cur = std::move(tr.hiddens);
      max_h[l] = std::max(max_h[l], max_abs(cur));
    }
  }

  q.layers_.resize(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    const LstmLayer& ref = model.layer(l);
    Layer& out = q.layers_[l];
    out.input = ref.input_dim();
    out.hidden = ref.hidden_dim();
    const std::size_t I = out.input, H = out.hidden;
    const Matrix& w = ref.weights();

    // Per-gate symmetric weight scales, input/recurrent halves separately.
    std::vector<double> inv_x(4 * H), inv_h(4 * H);
    for (std::size_t g = 0; g < 4; ++g) {
      out.sw_x[g] =
          scale_for(kernels::max_abs_block(w, g * H, (g + 1) * H, 0, I), qmax);
      out.sw_h[g] = scale_for(
          kernels::max_abs_block(w, g * H, (g + 1) * H, I, I + H), qmax);
      for (std::size_t r = g * H; r < (g + 1) * H; ++r) {
        inv_x[r] = 1.0 / out.sw_x[g];
        inv_h[r] = 1.0 / out.sw_h[g];
      }
    }
    // Static activation scales from the calibration maxima.  The first
    // layer's input half sees raw features; stacked layers and every
    // recurrent half see tanh-bounded hidden state.
    out.sx = scale_for(max_in[l], kernels::kActQmax);
    out.sh = scale_for(max_h[l], kernels::kActQmax);

    out.bias.assign(ref.bias().data(), ref.bias().data() + 4 * H);
    out.wx.resize(kernels::quant_packed_bytes(4 * H, I, mode));
    out.wh.resize(kernels::quant_packed_bytes(4 * H, H, mode));
    if (mode == QuantMode::kInt8) {
      kernels::pack_quant_rows_i8(w, 0, I, inv_x.data(),
                                  reinterpret_cast<kernels::qi8*>(out.wx.data()));
      kernels::pack_quant_rows_i8(w, I, I + H, inv_h.data(),
                                  reinterpret_cast<kernels::qi8*>(out.wh.data()));
    } else {
      kernels::pack_quant_rows_i16(
          w, 0, I, inv_x.data(), reinterpret_cast<kernels::qi16*>(out.wx.data()));
      kernels::pack_quant_rows_i16(
          w, I, I + H, inv_h.data(),
          reinterpret_cast<kernels::qi16*>(out.wh.data()));
    }
    derive_row_sums(out, mode);
  }

  const Matrix& hw = model.head_layer().weights();
  q.head_w_.assign(hw.data(), hw.data() + q.hidden_dim_);
  q.head_b_ = model.head_layer().bias()(0, 0);
  return q;
}

void QuantizedLstm::derive_row_sums(Layer& l, QuantMode mode) {
  if (mode != QuantMode::kInt8) return;
  l.wx_row_sums.resize(4 * l.hidden);
  l.wh_row_sums.resize(4 * l.hidden);
  kernels::quant_row_sums_i8(reinterpret_cast<const kernels::qi8*>(l.wx.data()),
                             4 * l.hidden, l.input, l.wx_row_sums.data());
  kernels::quant_row_sums_i8(reinterpret_cast<const kernels::qi8*>(l.wh.data()),
                             4 * l.hidden, l.hidden, l.wh_row_sums.data());
}

kernels::QuantLstmLayerView QuantizedLstm::view_of(const Layer& l) const {
  kernels::QuantLstmLayerView v;
  v.mode = mode_;
  v.wx = l.wx.data();
  v.wh = l.wh.data();
  if (mode_ == QuantMode::kInt8) {
    v.wx_row_sums = l.wx_row_sums.data();
    v.wh_row_sums = l.wh_row_sums.data();
  }
  v.bias = l.bias.data();
  for (std::size_t g = 0; g < 4; ++g) {
    v.sw_x[g] = l.sw_x[g];
    v.sw_h[g] = l.sw_h[g];
  }
  v.sx = l.sx;
  v.sh = l.sh;
  v.input = l.input;
  v.hidden = l.hidden;
  return v;
}

void QuantizedLstm::predict_logit_group(const FeatureSequence* const* xs,
                                        std::size_t batch, double* logits) const {
  const std::size_t I = input_dim_;
  const std::size_t H = hidden_dim_;
  const std::size_t L = kernels::kLanes;
  std::size_t steps_buf[kernels::kLanes];
  std::size_t max_steps = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    if (xs[b]->dim != I) {
      throw std::invalid_argument("QuantizedLstm: feature dim mismatch");
    }
    if (xs[b]->steps == 0) {
      throw std::invalid_argument("QuantizedLstm: empty sequence");
    }
    steps_buf[b] = xs[b]->steps;
    max_steps = std::max(max_steps, xs[b]->steps);
  }
  kernels::BatchSpec spec;
  spec.batch = batch;
  spec.lanes = L;  // the quant lane always runs full-width blocks
  spec.max_steps = max_steps;
  spec.steps = steps_buf;

  kernels::Workspace& ws = local_workspace();
  ws.reset();
  double* xblocks = ws.take_zero(max_steps * I * L);
  for (std::size_t b = 0; b < batch; ++b) {
    const double* v = xs[b]->values.data();
    for (std::size_t t = 0; t < steps_buf[b]; ++t) {
      double* blk = xblocks + t * I * L;
      for (std::size_t c = 0; c < I; ++c) blk[c * L + b] = v[t * I + c];
    }
  }

  const double* input = xblocks;
  for (const Layer& l : layers_) {
    input = kernels::lstm_forward_quant(view_of(l), input, spec, ws);
  }

  for (std::size_t b = 0; b < batch; ++b) {
    const double* blk = input + (steps_buf[b] - 1) * H * L;
    double acc = 0.0;
    for (std::size_t c = 0; c < H; ++c) acc += head_w_[c] * blk[c * L + b];
    logits[b] = head_b_ + acc;
  }
}

double QuantizedLstm::predict_logit(const FeatureSequence& x) const {
  const FeatureSequence* px = &x;
  double logit = 0.0;
  predict_logit_group(&px, 1, &logit);
  return logit;
}

double QuantizedLstm::predict_proba(const FeatureSequence& x) const {
  return sigmoid(predict_logit(x));
}

int QuantizedLstm::predict(const FeatureSequence& x, double threshold) const {
  return predict_proba(x) >= threshold ? 1 : 0;
}

std::vector<double> QuantizedLstm::predict_logit_batch(
    const std::vector<FeatureSequence>& xs) const {
  std::vector<double> out(xs.size(), 0.0);
  for (std::size_t i = 0; i < xs.size();) {
    const std::size_t bsz = std::min(kernels::kLanes, xs.size() - i);
    const FeatureSequence* ptrs[kernels::kLanes];
    for (std::size_t k = 0; k < bsz; ++k) ptrs[k] = &xs[i + k];
    predict_logit_group(ptrs, bsz, out.data() + i);
    i += bsz;
  }
  return out;
}

std::vector<double> QuantizedLstm::predict_proba_batch(
    const std::vector<FeatureSequence>& xs) const {
  std::vector<double> out = predict_logit_batch(xs);
  for (double& v : out) v = sigmoid(v);
  return out;
}

void QuantizedLstm::save(std::ostream& os) const {
  os << kMagic << '\n';
  os << (mode_ == QuantMode::kInt8 ? 8 : 16) << ' ' << input_dim_ << ' '
     << hidden_dim_ << ' ' << layers_.size() << '\n';
  for (const Layer& l : layers_) {
    os << l.input << ' ' << l.hidden << '\n';
    const double scales[10] = {l.sw_x[0], l.sw_x[1], l.sw_x[2], l.sw_x[3],
                               l.sw_h[0], l.sw_h[1], l.sw_h[2], l.sw_h[3],
                               l.sx,      l.sh};
    write_doubles(os, scales, 10);
    write_doubles(os, l.bias.data(), l.bias.size());
    // The packed integer images serialize verbatim (the VNNI dot-product
    // layout is part of the format): loaders drop them straight into aligned
    // buffers and re-derive the row sums.
    const std::size_t nx = kernels::quant_packed_elems(4 * l.hidden, l.input);
    const std::size_t nh = kernels::quant_packed_elems(4 * l.hidden, l.hidden);
    for (const auto& [buf, n] : {std::pair{&l.wx, nx}, std::pair{&l.wh, nh}}) {
      os << n << '\n';
      for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t v =
            mode_ == QuantMode::kInt8
                ? static_cast<std::int32_t>(
                      reinterpret_cast<const kernels::qi8*>(buf->data())[i])
                : static_cast<std::int32_t>(
                      reinterpret_cast<const kernels::qi16*>(buf->data())[i]);
        os << v << (((i + 1) % 16 == 0) ? '\n' : ' ');
      }
      os << '\n';
    }
  }
  write_doubles(os, head_w_.data(), head_w_.size());
  os << std::setprecision(17) << head_b_ << '\n';
}

Expected<QuantizedLstm, std::string> QuantizedLstm::try_load(std::istream& is) {
  using Result = Expected<QuantizedLstm, std::string>;
  std::string magic;
  if (!(is >> magic) || magic != kMagic) {
    return Result::failure("quant model load: bad magic");
  }
  int mode_bits = 0;
  std::size_t input = 0, hidden = 0, nl = 0;
  if (!(is >> mode_bits >> input >> hidden >> nl)) {
    return Result::failure("quant model load: bad header");
  }
  if ((mode_bits != 8 && mode_bits != 16) || input == 0 || input > kMaxDim ||
      hidden == 0 || hidden > kMaxDim || nl == 0 || nl > kMaxLayers) {
    return Result::failure("quant model load: implausible architecture");
  }
  QuantizedLstm q;
  q.mode_ = mode_bits == 8 ? QuantMode::kInt8 : QuantMode::kInt16;
  q.input_dim_ = input;
  q.hidden_dim_ = hidden;
  const std::int32_t qmax = kernels::quant_qmax(q.mode_);
  q.layers_.resize(nl);
  for (std::size_t li = 0; li < nl; ++li) {
    Layer& l = q.layers_[li];
    if (!(is >> l.input >> l.hidden)) {
      return Result::failure("quant model load: bad layer header");
    }
    const std::size_t want_in = li == 0 ? input : hidden;
    if (l.input != want_in || l.hidden != hidden) {
      return Result::failure("quant model load: layer shape mismatch");
    }
    double scales[10];
    for (double& s : scales) {
      if (!(is >> s) || !std::isfinite(s) || s <= 0.0) {
        return Result::failure("quant model load: bad scale");
      }
    }
    for (std::size_t g = 0; g < 4; ++g) {
      l.sw_x[g] = scales[g];
      l.sw_h[g] = scales[4 + g];
    }
    l.sx = scales[8];
    l.sh = scales[9];
    l.bias.resize(4 * l.hidden);
    for (double& b : l.bias) {
      if (!(is >> b) || !std::isfinite(b)) {
        return Result::failure("quant model load: bad bias");
      }
    }
    const std::size_t nx = kernels::quant_packed_elems(4 * l.hidden, l.input);
    const std::size_t nh = kernels::quant_packed_elems(4 * l.hidden, l.hidden);
    l.wx.resize(kernels::quant_packed_bytes(4 * l.hidden, l.input, q.mode_));
    l.wh.resize(kernels::quant_packed_bytes(4 * l.hidden, l.hidden, q.mode_));
    for (const auto& [buf, n] : {std::pair{&l.wx, nx}, std::pair{&l.wh, nh}}) {
      std::size_t count = 0;
      if (!(is >> count) || count != n) {
        return Result::failure("quant model load: bad pack size");
      }
      for (std::size_t i = 0; i < n; ++i) {
        std::int32_t v = 0;
        if (!(is >> v) || v < -qmax || v > qmax) {
          return Result::failure("quant model load: weight out of range");
        }
        if (q.mode_ == QuantMode::kInt8) {
          reinterpret_cast<kernels::qi8*>(buf->data())[i] =
              static_cast<kernels::qi8>(v);
        } else {
          reinterpret_cast<kernels::qi16*>(buf->data())[i] =
              static_cast<kernels::qi16>(v);
        }
      }
    }
    derive_row_sums(l, q.mode_);
  }
  q.head_w_.resize(hidden);
  for (double& w : q.head_w_) {
    if (!(is >> w) || !std::isfinite(w)) {
      return Result::failure("quant model load: bad head weight");
    }
  }
  if (!(is >> q.head_b_) || !std::isfinite(q.head_b_)) {
    return Result::failure("quant model load: bad head bias");
  }
  return Result(std::move(q));
}

void QuantizedLstm::save_file(const std::string& path) const {
  std::ostringstream payload;
  save(payload);
  durable::DurableWriter writer(kDurableTag, kDurableVersion);
  writer.add_record(payload.str());
  auto committed = writer.commit(path);
  if (!committed) {
    throw std::runtime_error("quant model save: " + committed.error());
  }
}

Expected<QuantizedLstm, std::string> QuantizedLstm::try_load_file(
    const std::string& path) {
  using Result = Expected<QuantizedLstm, std::string>;
  if (!durable::file_has_durable_magic(path)) {
    return Result::failure("quant model load: not a durable container: " + path);
  }
  auto contents = durable::read_durable_file(path, kDurableTag);
  if (!contents) return Result::failure("quant model load: " + contents.error());
  if (contents.value().records.size() != 1) {
    return Result::failure("quant model load: unexpected record count");
  }
  std::istringstream is(contents.value().records[0]);
  return try_load(is);
}

QuantGateReport quant_gate_check(const LstmClassifier& ref,
                                 const QuantizedLstm& quant,
                                 const std::vector<FeatureSequence>& calibration,
                                 double logit_delta_bound, double threshold) {
  QuantGateReport rep;
  rep.logit_delta_bound = logit_delta_bound;
  rep.threshold = threshold;
  rep.checked = calibration.size();
  if (calibration.empty()) return rep;  // an empty gate never passes

  const std::vector<double> ref_logits = ref.predict_logit_batch(calibration);
  const std::vector<double> q_logits = quant.predict_logit_batch(calibration);
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < calibration.size(); ++i) {
    const int vr = sigmoid(ref_logits[i]) >= threshold ? 1 : 0;
    const int vq = sigmoid(q_logits[i]) >= threshold ? 1 : 0;
    if (vr != vq) ++rep.disagreements;
    const double d = std::abs(ref_logits[i] - q_logits[i]);
    rep.max_abs_logit_delta = std::max(rep.max_abs_logit_delta, d);
    h = fnv1a_byte(h, static_cast<std::uint8_t>(vr));
    h = fnv1a_byte(h, static_cast<std::uint8_t>(vq));
  }
  rep.verdict_checksum = h;
  rep.pass =
      rep.disagreements == 0 && rep.max_abs_logit_delta <= logit_delta_bound;
  return rep;
}

}  // namespace trajkit::nn
