// LSTM-based binary trajectory classifier.
//
// This is the paper's target model C (1 LSTM layer + sigmoid head over the
// final hidden state) and, with num_layers = 2, the LSTM-2 variant of
// Sec. IV-A4.  Label convention: 1 = real trajectory, 0 = fake.
//
// Besides train/predict, the classifier exposes
// loss_and_input_gradient() — the cross-entropy loss toward a target label
// together with its gradient w.r.t. the input feature sequence, which is the
// model-side half of the C&W adversarial attack (Sec. II-B).
//
// Two execution backends produce bit-identical results: the per-sample
// reference layers (LstmLayer) and the packed-GEMM batched kernel path
// (nn/kernels), which packs up to kernels::kLanes sequences per timestep into
// one GEMM and reuses workspace arenas instead of allocating per call.  The
// batched path is the default; the reference path is kept as the oracle that
// tests and benches compare against.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/durable/artifact_store.hpp"
#include "common/expected.hpp"
#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/dense.hpp"
#include "nn/kernels/rnn_batched.hpp"
#include "nn/lstm.hpp"
#include "traj/features.hpp"

namespace trajkit::nn {

/// Runtime execution backend.  Never serialized — a saved model loads with
/// the default and produces the same bits either way.
enum class NnBackend {
  kReference,  ///< per-sample naive matvec layers (original implementation)
  kBatched,    ///< packed-GEMM batched kernels (bit-identical, faster)
};

struct LstmClassifierConfig {
  std::size_t input_dim = 2;
  std::size_t hidden_dim = 64;
  std::size_t num_layers = 1;  ///< 1 = classifier C, 2 = LSTM-2
  double learning_rate = 1e-3;
  double grad_clip = 5.0;      ///< global gradient-norm clip
  std::size_t batch_size = 16;
  NnBackend backend = NnBackend::kBatched;
};

/// Per-epoch training telemetry.
struct TrainReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

class LstmClassifier {
 public:
  LstmClassifier(LstmClassifierConfig config, std::uint64_t seed);

  const LstmClassifierConfig& config() const { return config_; }
  void set_backend(NnBackend backend) { config_.backend = backend; }

  /// Mini-batch Adam training.  `xs[i]` must have dim == config.input_dim.
  /// `progress` (optional) is called after each epoch with (epoch, loss, acc).
  TrainReport train(const std::vector<FeatureSequence>& xs, const std::vector<int>& ys,
                    std::size_t epochs,
                    const std::function<void(std::size_t, double, double)>& progress = {});

  /// Probability that the sequence is a real trajectory.
  double predict_proba(const FeatureSequence& x) const;

  /// Probabilities for a whole set of sequences, grouped kernels::kLanes at a
  /// time through the batched path (bit-identical to predict_proba per
  /// sequence; honours the backend switch for oracle comparisons).
  std::vector<double> predict_proba_batch(const std::vector<FeatureSequence>& xs) const;

  /// Pre-sigmoid head output (predict_proba == sigmoid of this).  Exposed so
  /// the quantized serving lane's QuantGate can bound its logit delta against
  /// this fp64 oracle (nn/quant_classifier.hpp).
  double predict_logit(const FeatureSequence& x) const;
  std::vector<double> predict_logit_batch(const std::vector<FeatureSequence>& xs) const;

  /// Read-only parameter access for derived inference artifacts (the int8 /
  /// int16 quantizer reads weights and runs its calibration pass through the
  /// reference layers).
  std::size_t layer_count() const { return layers_.size(); }
  const LstmLayer& layer(std::size_t l) const { return layers_[l]; }
  const DenseLayer& head_layer() const { return head_; }

  /// Hard decision at the given threshold (1 = real, 0 = fake).
  int predict(const FeatureSequence& x, double threshold = 0.5) const;

  /// Cross-entropy of the model output toward `target_label`, plus its
  /// gradient w.r.t. the input features (overwritten into `dx` if non-null).
  /// Parameter gradients are left untouched by the batched backend; the
  /// reference backend clobbers them as scratch (training re-zeroes them).
  double loss_and_input_gradient(const FeatureSequence& x, int target_label,
                                 FeatureSequence* dx) const;

  /// Serialise to / from a text stream (architecture + weights).
  void save(std::ostream& os) const;
  static LstmClassifier load(std::istream& is);

  /// File persistence.  save_file commits a CRC-framed durable container
  /// atomically (common/durable); load_file/try_load_file read both that
  /// format and the original bare-text files (back-compat).
  void save_file(const std::string& path) const;
  static LstmClassifier load_file(const std::string& path);

  /// Non-throwing loaders: every malformed input — bad magic, truncation,
  /// CRC mismatch, implausible architecture — comes back as a diagnostic
  /// string instead of an exception.
  static Expected<LstmClassifier, std::string> try_load(std::istream& is);
  static Expected<LstmClassifier, std::string> try_load_file(const std::string& path);

 private:
  double forward_logit(const FeatureSequence& x, std::vector<LstmTrace>* traces) const;
  /// Full backward from a logit gradient; accumulates parameter gradients and
  /// optionally the input gradient.  The forward traces carry the inputs.
  void backward_from_logit(const std::vector<LstmTrace>& traces, double dlogit,
                           std::vector<double>* dx_flat) const;

  /// Batched-kernel forward over a group of batch <= kernels::kLanes
  /// sequences.  Fills the per-layer traces, the batch spec (backed by
  /// steps_buf), h_last (batch x hidden, row-major) and one logit per sample.
  void forward_batched(const FeatureSequence* const* xs, std::size_t batch,
                       kernels::Workspace& ws,
                       std::vector<kernels::LstmBatchTrace>& traces,
                       kernels::BatchSpec& spec, std::size_t* steps_buf,
                       double* h_last, double* logits) const;
  /// Batched-kernel backward.  head_dw/head_db and layer_grads collect
  /// parameter gradients (sample-ascending, t-descending — the reference
  /// order); pass null/empty for the input-gradient-only path.  dx_blocks
  /// (optional) receives the bottom layer's input gradient in block layout.
  void backward_batched(const std::vector<kernels::LstmBatchTrace>& traces,
                        const kernels::BatchSpec& spec, const double* h_last,
                        const double* dlogits, Matrix* head_dw, Matrix* head_db,
                        const std::vector<kernels::LstmGrads>& layer_grads,
                        double* dx_blocks, kernels::Workspace& ws) const;
  double clip_gradients();

  /// Re-pack every layer's weights into pack_store_ (both orientations).
  /// Called at every point that mutates parameters — construction, each
  /// optimizer step, deserialisation — so const passes can use the cache
  /// without ever rebuilding it concurrently.
  void rebuild_packs();
  /// The cached packings of layer l, as workspace-free views into pack_store_.
  kernels::LstmPacks packs_of(std::size_t l) const;

  LstmClassifierConfig config_;
  // mutable: backward passes scratch through the layers' gradient buffers
  // even when only the input gradient is wanted (predict paths never touch
  // them).  Logical constness is "the parameters do not change".
  //
  // The Adam optimizer is created inside train() (it holds raw pointers into
  // the layers, which must not outlive a move of this object); calling
  // train() twice restarts the moment estimates.
  mutable std::vector<LstmLayer> layers_;
  mutable DenseLayer head_;

  // Cached packed weights for the batched kernels, rebuilt by rebuild_packs().
  // Offsets (not pointers) into pack_store_, so the default copy of a model
  // keeps a valid cache.  Parameters only change through this class (the
  // optimizer inside train(), serialize.cpp's load), so the cache cannot go
  // stale behind our back.
  kernels::AlignedVector pack_store_;
  std::vector<std::size_t> pack_offsets_;  ///< 2 entries per layer: rows, transpose
};

}  // namespace trajkit::nn

namespace trajkit::durable {

/// LSTM artifacts for ArtifactStore::open<LstmClassifier>/publish: the
/// payload is the classifier's own stream format (save/try_load).
template <>
struct ArtifactCodec<nn::LstmClassifier> {
  using Value = nn::LstmClassifier;
  static void encode(const nn::LstmClassifier& value, std::ostream& os) {
    value.save(os);
  }
  static Expected<Value, std::string> decode(std::istream& is) {
    return nn::LstmClassifier::try_load(is);
  }
};

}  // namespace trajkit::durable
