// LSTM-based binary trajectory classifier.
//
// This is the paper's target model C (1 LSTM layer + sigmoid head over the
// final hidden state) and, with num_layers = 2, the LSTM-2 variant of
// Sec. IV-A4.  Label convention: 1 = real trajectory, 0 = fake.
//
// Besides train/predict, the classifier exposes
// loss_and_input_gradient() — the cross-entropy loss toward a target label
// together with its gradient w.r.t. the input feature sequence, which is the
// model-side half of the C&W adversarial attack (Sec. II-B).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "traj/features.hpp"

namespace trajkit::nn {

struct LstmClassifierConfig {
  std::size_t input_dim = 2;
  std::size_t hidden_dim = 64;
  std::size_t num_layers = 1;  ///< 1 = classifier C, 2 = LSTM-2
  double learning_rate = 1e-3;
  double grad_clip = 5.0;      ///< global gradient-norm clip
  std::size_t batch_size = 16;
};

/// Per-epoch training telemetry.
struct TrainReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

class LstmClassifier {
 public:
  LstmClassifier(LstmClassifierConfig config, std::uint64_t seed);

  const LstmClassifierConfig& config() const { return config_; }

  /// Mini-batch Adam training.  `xs[i]` must have dim == config.input_dim.
  /// `progress` (optional) is called after each epoch with (epoch, loss, acc).
  TrainReport train(const std::vector<FeatureSequence>& xs, const std::vector<int>& ys,
                    std::size_t epochs,
                    const std::function<void(std::size_t, double, double)>& progress = {});

  /// Probability that the sequence is a real trajectory.
  double predict_proba(const FeatureSequence& x) const;

  /// Hard decision at the given threshold (1 = real, 0 = fake).
  int predict(const FeatureSequence& x, double threshold = 0.5) const;

  /// Cross-entropy of the model output toward `target_label`, plus its
  /// gradient w.r.t. the input features (overwritten into `dx` if non-null).
  /// Parameter gradients are left untouched.
  double loss_and_input_gradient(const FeatureSequence& x, int target_label,
                                 FeatureSequence* dx) const;

  /// Serialise to / from a text stream (architecture + weights).
  void save(std::ostream& os) const;
  static LstmClassifier load(std::istream& is);

  void save_file(const std::string& path) const;
  static LstmClassifier load_file(const std::string& path);

 private:
  double forward_logit(const FeatureSequence& x, std::vector<LstmTrace>* traces) const;
  /// Full backward from a logit gradient; accumulates parameter gradients and
  /// optionally the input gradient.  The forward traces carry the inputs.
  void backward_from_logit(const std::vector<LstmTrace>& traces, double dlogit,
                           std::vector<double>* dx_flat) const;
  double clip_gradients();

  LstmClassifierConfig config_;
  // mutable: backward passes scratch through the layers' gradient buffers
  // even when only the input gradient is wanted (predict paths never touch
  // them).  Logical constness is "the parameters do not change".
  //
  // The Adam optimizer is created inside train() (it holds raw pointers into
  // the layers, which must not outlive a move of this object); calling
  // train() twice restarts the moment estimates.
  mutable std::vector<LstmLayer> layers_;
  mutable DenseLayer head_;
};

}  // namespace trajkit::nn
