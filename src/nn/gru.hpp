// GRU layer — an alternative recurrent cell for the classifier substrate.
//
// The paper's models are all LSTMs; the GRU is provided for architecture
// experiments (the defender could deploy any sequence model, and the attack's
// transferability claims deserve a structurally different cell to test
// against).  Standard formulation (gate order [r, z, n] in the stacked
// weights):
//   r = sigmoid(W_r [x; h_{t-1}] + b_r)          reset gate
//   z = sigmoid(W_z [x; h_{t-1}] + b_z)          update gate
//   n = tanh(W_nx x + b_nx + r * (W_nh h_{t-1} + b_nh))   candidate
//   h_t = (1 - z) * n + z * h_{t-1}
// forward() caches activations; backward() produces parameter and input
// gradients like LstmLayer.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace trajkit::nn {

/// Cached activations of one GRU forward pass.
struct GruTrace {
  std::size_t steps = 0;
  std::vector<double> inputs;   ///< steps x input_dim
  std::vector<double> r_gate;   ///< steps x hidden
  std::vector<double> z_gate;   ///< steps x hidden
  std::vector<double> n_cand;   ///< steps x hidden (post-tanh)
  std::vector<double> nh_pre;   ///< steps x hidden (W_nh h + b_nh, pre-reset)
  std::vector<double> hiddens;  ///< steps x hidden
};

class GruLayer {
 public:
  GruLayer(std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  GruTrace forward(const std::vector<double>& xs, std::size_t steps) const;

  /// BPTT with the loss gradient injected at every step's hidden output
  /// (pass zeros except the last block for final-state objectives).
  /// Parameter gradients accumulate; `dx` (optional) receives input grads.
  void backward_seq(const GruTrace& trace, const std::vector<double>& dh_seq,
                    std::vector<double>* dx);

  void zero_grad();
  double grad_norm_sq() const;
  void scale_grad(double s);

  Matrix& gate_weights() { return w_gates_; }
  const Matrix& gate_weights() const { return w_gates_; }
  Matrix& gate_bias() { return b_gates_; }
  const Matrix& gate_bias() const { return b_gates_; }
  Matrix& cand_x_weights() { return w_nx_; }
  const Matrix& cand_x_weights() const { return w_nx_; }
  Matrix& cand_h_weights() { return w_nh_; }
  const Matrix& cand_h_weights() const { return w_nh_; }
  Matrix& cand_x_bias() { return b_nx_; }
  const Matrix& cand_x_bias() const { return b_nx_; }
  Matrix& cand_h_bias() { return b_nh_; }
  const Matrix& cand_h_bias() const { return b_nh_; }
  Matrix& gate_weight_grad() { return dw_gates_; }
  Matrix& gate_bias_grad() { return db_gates_; }
  Matrix& cand_x_weight_grad() { return dw_nx_; }
  Matrix& cand_h_weight_grad() { return dw_nh_; }
  Matrix& cand_x_bias_grad() { return db_nx_; }
  Matrix& cand_h_bias_grad() { return db_nh_; }

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  Matrix w_gates_;  ///< (2*hidden) x (input + hidden): [r; z]
  Matrix b_gates_;  ///< (2*hidden) x 1
  Matrix w_nx_;     ///< hidden x input
  Matrix w_nh_;     ///< hidden x hidden
  Matrix b_nx_;     ///< hidden x 1
  Matrix b_nh_;     ///< hidden x 1
  Matrix dw_gates_, db_gates_, dw_nx_, dw_nh_, db_nx_, db_nh_;
};

}  // namespace trajkit::nn
