#include "nn/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::nn {

Adam::Adam(AdamConfig config) : config_(config) {}

void Adam::attach(Matrix* param, Matrix* grad) {
  if (param == nullptr || grad == nullptr) {
    throw std::invalid_argument("Adam::attach: null tensor");
  }
  if (param->rows() != grad->rows() || param->cols() != grad->cols()) {
    throw std::invalid_argument("Adam::attach: shape mismatch");
  }
  slots_.push_back({param, grad, kernels::AlignedVector(param->size(), 0.0),
                    kernels::AlignedVector(param->size(), 0.0)});
}

void Adam::step() {
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double correction1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double correction2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  for (auto& slot : slots_) {
    double* p = slot.param->data();
    const double* g = slot.grad->data();
    for (std::size_t i = 0; i < slot.param->size(); ++i) {
      slot.m[i] = b1 * slot.m[i] + (1.0 - b1) * g[i];
      slot.v[i] = b2 * slot.v[i] + (1.0 - b2) * g[i] * g[i];
      const double m_hat = slot.m[i] / correction1;
      const double v_hat = slot.v[i] / correction2;
      p[i] -= config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

void Adam::reset() {
  t_ = 0;
  for (auto& slot : slots_) {
    std::fill(slot.m.begin(), slot.m.end(), 0.0);
    std::fill(slot.v.begin(), slot.v.end(), 0.0);
  }
}

}  // namespace trajkit::nn
