// Fully-connected layer used as the classification head on top of the final
// LSTM hidden state.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace trajkit::nn {

class DenseLayer {
 public:
  DenseLayer(std::size_t input_dim, std::size_t output_dim, Rng& rng);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }

  /// y = W x + b.
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Accumulate parameter gradients for the pair (x, dy) and return dx.
  std::vector<double> backward(const std::vector<double>& x,
                               const std::vector<double>& dy);

  void zero_grad();
  double grad_norm_sq() const;
  void scale_grad(double s);

  Matrix& weights() { return w_; }
  const Matrix& weights() const { return w_; }
  Matrix& bias() { return b_; }
  const Matrix& bias() const { return b_; }
  Matrix& weight_grad() { return dw_; }
  Matrix& bias_grad() { return db_; }

 private:
  std::size_t input_dim_;
  std::size_t output_dim_;
  Matrix w_;
  Matrix b_;
  Matrix dw_;
  Matrix db_;
};

/// Fused sigmoid + binary cross-entropy on a single logit.
/// Returns the loss; sets d(loss)/d(logit).  `label` is 1 for "real".
double sigmoid_bce_loss(double logit, int label, double* dlogit);

}  // namespace trajkit::nn
