#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::nn {

DenseLayer::DenseLayer(std::size_t input_dim, std::size_t output_dim, Rng& rng)
    : input_dim_(input_dim),
      output_dim_(output_dim),
      w_(output_dim, input_dim),
      b_(output_dim, 1),
      dw_(output_dim, input_dim),
      db_(output_dim, 1) {
  if (input_dim == 0 || output_dim == 0) {
    throw std::invalid_argument("DenseLayer: dims must be positive");
  }
  w_.init_glorot(rng);
}

std::vector<double> DenseLayer::forward(const std::vector<double>& x) const {
  if (x.size() != input_dim_) {
    throw std::invalid_argument("DenseLayer::forward: input size mismatch");
  }
  std::vector<double> y(output_dim_);
  for (std::size_t r = 0; r < output_dim_; ++r) y[r] = b_(r, 0);
  gemv_acc(w_, x.data(), y.data());
  return y;
}

std::vector<double> DenseLayer::backward(const std::vector<double>& x,
                                         const std::vector<double>& dy) {
  if (x.size() != input_dim_ || dy.size() != output_dim_) {
    throw std::invalid_argument("DenseLayer::backward: size mismatch");
  }
  rank1_acc(dw_, 1.0, dy.data(), x.data());
  for (std::size_t r = 0; r < output_dim_; ++r) db_(r, 0) += dy[r];
  std::vector<double> dx(input_dim_, 0.0);
  gemv_t_acc(w_, dy.data(), dx.data());
  return dx;
}

void DenseLayer::zero_grad() {
  dw_.zero();
  db_.zero();
}

double DenseLayer::grad_norm_sq() const { return dw_.norm_sq() + db_.norm_sq(); }

void DenseLayer::scale_grad(double s) {
  for (std::size_t i = 0; i < dw_.size(); ++i) dw_.data()[i] *= s;
  for (std::size_t i = 0; i < db_.size(); ++i) db_.data()[i] *= s;
}

double sigmoid_bce_loss(double logit, int label, double* dlogit) {
  // loss = -[y log p + (1-y) log(1-p)], p = sigmoid(logit).
  // Numerically stable form: max(z,0) - z*y + log(1 + exp(-|z|)).
  const double y = label ? 1.0 : 0.0;
  const double z = logit;
  const double loss = std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::fabs(z)));
  if (dlogit) *dlogit = sigmoid(z) - y;
  return loss;
}

}  // namespace trajkit::nn
