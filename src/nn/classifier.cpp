#include "nn/classifier.hpp"

#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "common/parallel.hpp"

namespace trajkit::nn {
namespace {

Rng make_rng(std::uint64_t seed) { return Rng(seed); }

/// Samples per gradient-accumulation chunk.  Fixed (never derived from the
/// thread count) so the minibatch decomposition — and therefore the
/// floating-point summation order of the index-ordered reduction below — is
/// identical for any --threads value.
constexpr std::size_t kGradGrain = 8;

}  // namespace

LstmClassifier::LstmClassifier(LstmClassifierConfig config, std::uint64_t seed)
    : config_(config),
      head_([&] {
        // DenseLayer has no default ctor; build it with a throwaway rng first
        // and re-init everything consistently below.
        Rng tmp = make_rng(seed);
        return DenseLayer(config.hidden_dim, 1, tmp);
      }()) {
  if (config_.num_layers == 0 || config_.num_layers > 4) {
    throw std::invalid_argument("LstmClassifier: num_layers must be in [1, 4]");
  }
  Rng rng = make_rng(seed);
  layers_.clear();
  layers_.reserve(config_.num_layers);
  layers_.emplace_back(config_.input_dim, config_.hidden_dim, rng);
  for (std::size_t l = 1; l < config_.num_layers; ++l) {
    layers_.emplace_back(config_.hidden_dim, config_.hidden_dim, rng);
  }
  head_ = DenseLayer(config_.hidden_dim, 1, rng);
}

double LstmClassifier::forward_logit(const FeatureSequence& x,
                                     std::vector<LstmTrace>* traces) const {
  if (x.dim != config_.input_dim) {
    throw std::invalid_argument("LstmClassifier: feature dim mismatch");
  }
  if (x.steps == 0) throw std::invalid_argument("LstmClassifier: empty sequence");

  const std::vector<double>* input = &x.values;
  std::vector<LstmTrace> local;
  std::vector<LstmTrace>& tr = traces ? *traces : local;
  tr.clear();
  tr.reserve(layers_.size());
  for (const auto& layer : layers_) {
    tr.push_back(layer.forward(*input, x.steps));
    input = &tr.back().hiddens;
  }
  const std::size_t H = config_.hidden_dim;
  const std::vector<double>& hiddens = tr.back().hiddens;
  std::vector<double> h_last(hiddens.end() - static_cast<std::ptrdiff_t>(H),
                             hiddens.end());
  return head_.forward(h_last)[0];
}

void LstmClassifier::backward_from_logit(const std::vector<LstmTrace>& traces,
                                         double dlogit,
                                         std::vector<double>* dx_flat) const {
  const std::size_t H = config_.hidden_dim;
  const std::vector<double>& top_hiddens = traces.back().hiddens;
  std::vector<double> h_last(top_hiddens.end() - static_cast<std::ptrdiff_t>(H),
                             top_hiddens.end());
  std::vector<double> dh_last = head_.backward(h_last, {dlogit});

  // Walk the stack top-down; each layer's input gradient is the per-step
  // hidden-state injection for the layer below.
  std::vector<double> inject;  // per-step dh injection for the current layer
  for (std::size_t l = layers_.size(); l-- > 0;) {
    std::vector<double> dx_local;
    std::vector<double>* out = (l == 0) ? dx_flat : &dx_local;
    if (l + 1 == layers_.size()) {
      layers_[l].backward(traces[l], dh_last, out);
    } else {
      layers_[l].backward_seq(traces[l], inject, out);
    }
    if (l > 0) inject = std::move(dx_local);
  }
}

double LstmClassifier::clip_gradients() {
  double norm_sq = head_.grad_norm_sq();
  for (const auto& layer : layers_) norm_sq += layer.grad_norm_sq();
  const double norm = std::sqrt(norm_sq);
  if (config_.grad_clip > 0.0 && norm > config_.grad_clip) {
    const double s = config_.grad_clip / norm;
    head_.scale_grad(s);
    for (auto& layer : layers_) layer.scale_grad(s);
  }
  return norm;
}

TrainReport LstmClassifier::train(
    const std::vector<FeatureSequence>& xs, const std::vector<int>& ys,
    std::size_t epochs,
    const std::function<void(std::size_t, double, double)>& progress) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("LstmClassifier::train: bad dataset");
  }
  TrainReport report;
  Rng shuffle_rng = make_rng(0xc1a551f1e5ULL);

  Adam optimizer(AdamConfig{config_.learning_rate});
  for (auto& layer : layers_) {
    optimizer.attach(&layer.weights(), &layer.weight_grad());
    optimizer.attach(&layer.bias(), &layer.bias_grad());
  }
  optimizer.attach(&head_.weights(), &head_.weight_grad());
  optimizer.attach(&head_.bias(), &head_.bias_grad());

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double total_loss = 0.0;
    std::size_t correct = 0;

    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(order.size(), start + config_.batch_size);
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (auto& layer : layers_) layer.zero_grad();
      head_.zero_grad();

      // Per-sample gradient accumulation fans out over fixed-size chunks of
      // the minibatch.  Each chunk clones the model (weights are read-only
      // within a batch; the clone's freshly-zeroed gradient buffers are the
      // chunk-private accumulators), then the partials are folded back into
      // the main buffers strictly in chunk index order.
      struct ChunkPartial {
        LstmClassifier model;
        double loss = 0.0;
        std::size_t correct = 0;
      };
      const std::size_t nchunks = (end - start + kGradGrain - 1) / kGradGrain;
      std::vector<std::optional<ChunkPartial>> partials(nchunks);
      parallel_chunks(start, end, kGradGrain, [&](std::size_t lo, std::size_t hi) {
        ChunkPartial part{*this, 0.0, 0};
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& x = xs[order[k]];
          const int y = ys[order[k]];
          std::vector<LstmTrace> traces;
          const double logit = part.model.forward_logit(x, &traces);
          double dlogit = 0.0;
          part.loss += sigmoid_bce_loss(logit, y, &dlogit);
          if ((logit >= 0.0) == (y == 1)) ++part.correct;
          part.model.backward_from_logit(traces, dlogit * inv_batch, nullptr);
        }
        partials[(lo - start) / kGradGrain].emplace(std::move(part));
      });
      for (auto& p : partials) {
        total_loss += p->loss;
        correct += p->correct;
        for (std::size_t l = 0; l < layers_.size(); ++l) {
          layers_[l].weight_grad().axpy(1.0, p->model.layers_[l].weight_grad());
          layers_[l].bias_grad().axpy(1.0, p->model.layers_[l].bias_grad());
        }
        head_.weight_grad().axpy(1.0, p->model.head_.weight_grad());
        head_.bias_grad().axpy(1.0, p->model.head_.bias_grad());
      }
      clip_gradients();
      optimizer.step();
    }

    const double loss = total_loss / static_cast<double>(xs.size());
    const double acc = static_cast<double>(correct) / static_cast<double>(xs.size());
    report.epoch_loss.push_back(loss);
    report.epoch_accuracy.push_back(acc);
    if (progress) progress(epoch, loss, acc);
  }
  return report;
}

double LstmClassifier::predict_proba(const FeatureSequence& x) const {
  return sigmoid(forward_logit(x, nullptr));
}

int LstmClassifier::predict(const FeatureSequence& x, double threshold) const {
  return predict_proba(x) >= threshold ? 1 : 0;
}

double LstmClassifier::loss_and_input_gradient(const FeatureSequence& x,
                                               int target_label,
                                               FeatureSequence* dx) const {
  std::vector<LstmTrace> traces;
  const double logit = forward_logit(x, &traces);
  double dlogit = 0.0;
  const double loss = sigmoid_bce_loss(logit, target_label, &dlogit);
  if (dx) {
    // Parameter-gradient buffers serve as scratch here; training zeroes them
    // before every batch, so clobbering them is safe.
    for (auto& layer : layers_) layer.zero_grad();
    head_.zero_grad();
    std::vector<double> dx_flat;
    backward_from_logit(traces, dlogit, &dx_flat);
    dx->steps = x.steps;
    dx->dim = x.dim;
    dx->values = std::move(dx_flat);
  }
  return loss;
}

}  // namespace trajkit::nn
