#include "nn/classifier.hpp"

#include <cmath>
#include <cstring>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "common/parallel.hpp"

namespace trajkit::nn {
namespace {

Rng make_rng(std::uint64_t seed) { return Rng(seed); }

/// Samples per gradient-accumulation chunk.  Fixed (never derived from the
/// thread count) so the minibatch decomposition — and therefore the
/// floating-point summation order of the index-ordered reduction below — is
/// identical for any --threads value.  Equals kernels::kLanes, so one chunk
/// is exactly one batched-kernel group.
constexpr std::size_t kGradGrain = 8;
static_assert(kGradGrain == kernels::kLanes);

/// Per-pass scratch arena.  thread_local so concurrent const calls
/// (predict_proba from parallel serve paths) never share buffers; each pool
/// thread warms its own arena once and reuses it for every subsequent pass.
kernels::Workspace& local_workspace() {
  thread_local kernels::Workspace ws;
  return ws;
}

/// Chunk-private gradient accumulators for the batched training path — the
/// moral equivalent of the reference path's model clone, without copying the
/// weights.
struct GradSet {
  std::vector<Matrix> dw, db;  // per LSTM layer
  Matrix head_dw, head_db;
  double loss = 0.0;
  std::size_t correct = 0;

  void zero() {
    for (auto& m : dw) m.zero();
    for (auto& m : db) m.zero();
    head_dw.zero();
    head_db.zero();
    loss = 0.0;
    correct = 0;
  }
};

}  // namespace

LstmClassifier::LstmClassifier(LstmClassifierConfig config, std::uint64_t seed)
    : config_(config),
      head_([&] {
        // DenseLayer has no default ctor; build it with a throwaway rng first
        // and re-init everything consistently below.
        Rng tmp = make_rng(seed);
        return DenseLayer(config.hidden_dim, 1, tmp);
      }()) {
  if (config_.num_layers == 0 || config_.num_layers > 4) {
    throw std::invalid_argument("LstmClassifier: num_layers must be in [1, 4]");
  }
  Rng rng = make_rng(seed);
  layers_.clear();
  layers_.reserve(config_.num_layers);
  layers_.emplace_back(config_.input_dim, config_.hidden_dim, rng);
  for (std::size_t l = 1; l < config_.num_layers; ++l) {
    layers_.emplace_back(config_.hidden_dim, config_.hidden_dim, rng);
  }
  head_ = DenseLayer(config_.hidden_dim, 1, rng);
  rebuild_packs();
}

void LstmClassifier::rebuild_packs() {
  pack_offsets_.assign(2 * layers_.size(), 0);
  std::size_t total = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Matrix& w = layers_[l].weights();
    pack_offsets_[2 * l] = total;
    total += kernels::packed_doubles(w.rows(), w.cols());
    pack_offsets_[2 * l + 1] = total;
    total += kernels::packed_doubles(w.cols(), w.rows());
  }
  pack_store_.resize(total);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Matrix& w = layers_[l].weights();
    kernels::pack_rows_at(w, pack_store_.data() + pack_offsets_[2 * l]);
    kernels::pack_transpose_at(w, pack_store_.data() + pack_offsets_[2 * l + 1]);
  }
}

kernels::LstmPacks LstmClassifier::packs_of(std::size_t l) const {
  const Matrix& w = layers_[l].weights();
  return kernels::LstmPacks{
      kernels::Packed{pack_store_.data() + pack_offsets_[2 * l], w.rows(), w.cols()},
      kernels::Packed{pack_store_.data() + pack_offsets_[2 * l + 1], w.cols(),
                      w.rows()}};
}

double LstmClassifier::forward_logit(const FeatureSequence& x,
                                     std::vector<LstmTrace>* traces) const {
  if (x.dim != config_.input_dim) {
    throw std::invalid_argument("LstmClassifier: feature dim mismatch");
  }
  if (x.steps == 0) throw std::invalid_argument("LstmClassifier: empty sequence");

  const std::vector<double>* input = &x.values;
  std::vector<LstmTrace> local;
  std::vector<LstmTrace>& tr = traces ? *traces : local;
  tr.clear();
  tr.reserve(layers_.size());
  for (const auto& layer : layers_) {
    tr.push_back(layer.forward(*input, x.steps));
    input = &tr.back().hiddens;
  }
  const std::size_t H = config_.hidden_dim;
  const std::vector<double>& hiddens = tr.back().hiddens;
  std::vector<double> h_last(hiddens.end() - static_cast<std::ptrdiff_t>(H),
                             hiddens.end());
  return head_.forward(h_last)[0];
}

void LstmClassifier::backward_from_logit(const std::vector<LstmTrace>& traces,
                                         double dlogit,
                                         std::vector<double>* dx_flat) const {
  const std::size_t H = config_.hidden_dim;
  const std::vector<double>& top_hiddens = traces.back().hiddens;
  std::vector<double> h_last(top_hiddens.end() - static_cast<std::ptrdiff_t>(H),
                             top_hiddens.end());
  std::vector<double> dh_last = head_.backward(h_last, {dlogit});

  // Walk the stack top-down; each layer's input gradient is the per-step
  // hidden-state injection for the layer below.
  std::vector<double> inject;  // per-step dh injection for the current layer
  for (std::size_t l = layers_.size(); l-- > 0;) {
    std::vector<double> dx_local;
    std::vector<double>* out = (l == 0) ? dx_flat : &dx_local;
    if (l + 1 == layers_.size()) {
      layers_[l].backward(traces[l], dh_last, out);
    } else {
      layers_[l].backward_seq(traces[l], inject, out);
    }
    if (l > 0) inject = std::move(dx_local);
  }
}

void LstmClassifier::forward_batched(const FeatureSequence* const* xs,
                                     std::size_t batch, kernels::Workspace& ws,
                                     std::vector<kernels::LstmBatchTrace>& traces,
                                     kernels::BatchSpec& spec,
                                     std::size_t* steps_buf, double* h_last,
                                     double* logits) const {
  const std::size_t I = config_.input_dim;
  const std::size_t H = config_.hidden_dim;
  std::size_t max_steps = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    if (xs[b]->dim != I) {
      throw std::invalid_argument("LstmClassifier: feature dim mismatch");
    }
    if (xs[b]->steps == 0) {
      throw std::invalid_argument("LstmClassifier: empty sequence");
    }
    steps_buf[b] = xs[b]->steps;
    max_steps = std::max(max_steps, xs[b]->steps);
  }
  spec.batch = batch;
  spec.lanes = batch == 1 ? 1 : kernels::kLanes;
  spec.max_steps = max_steps;
  spec.steps = steps_buf;
  const std::size_t L = spec.lanes;

  // Interleave the inputs into lane-minor blocks, zero-padded past each
  // sample's length.
  double* xblocks = ws.take_zero(max_steps * I * L);
  for (std::size_t b = 0; b < batch; ++b) {
    const double* v = xs[b]->values.data();
    for (std::size_t t = 0; t < steps_buf[b]; ++t) {
      double* blk = xblocks + t * I * L;
      for (std::size_t c = 0; c < I; ++c) blk[c * L + b] = v[t * I + c];
    }
  }

  traces.clear();
  traces.reserve(layers_.size());
  const double* input = xblocks;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const kernels::LstmPacks packs = packs_of(l);
    traces.push_back(
        kernels::lstm_forward_batched(layers_[l], input, spec, ws, &packs));
    input = traces.back().hiddens;
  }

  // Final hidden state per sample, then the dense head — the same
  // single-accumulator add-once chain as DenseLayer::forward.
  const double* top = traces.back().hiddens;
  const double* hw = head_.weights().row(0);
  const double head_b = head_.bias()(0, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    const double* blk = top + (steps_buf[b] - 1) * H * L;
    double* hb = h_last + b * H;
    for (std::size_t k = 0; k < H; ++k) hb[k] = blk[k * L + b];
    double acc = 0.0;
    for (std::size_t c = 0; c < H; ++c) acc += hw[c] * hb[c];
    logits[b] = head_b + acc;
  }
}

void LstmClassifier::backward_batched(
    const std::vector<kernels::LstmBatchTrace>& traces,
    const kernels::BatchSpec& spec, const double* h_last, const double* dlogits,
    Matrix* head_dw, Matrix* head_db,
    const std::vector<kernels::LstmGrads>& layer_grads, double* dx_blocks,
    kernels::Workspace& ws) const {
  const std::size_t H = config_.hidden_dim;
  const std::size_t L = spec.lanes;
  const std::size_t T = spec.max_steps;
  const std::size_t B = spec.batch;

  // Head backward, one sample at a time in batch order — bit-identical to
  // DenseLayer::backward (rank-1 into dw, then db, then dx zero-seeded).
  double* dh_last = ws.take(B * H);
  const double* hw = head_.weights().row(0);
  for (std::size_t b = 0; b < B; ++b) {
    const double dy = dlogits[b];
    if (head_dw) {
      double* dwr = head_dw->row(0);
      const double* hb = h_last + b * H;
      for (std::size_t c = 0; c < H; ++c) dwr[c] += dy * hb[c];
      (*head_db)(0, 0) += dy;
    }
    double* dl = dh_last + b * H;
    for (std::size_t c = 0; c < H; ++c) dl[c] = 0.0 + hw[c] * dy;
  }

  // Walk the stack top-down; a lower layer consumes the upper layer's input
  // gradient blocks directly as its per-step injection.
  double* dh_blocks = nullptr;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const bool top = (l + 1 == layers_.size());
    double* dx_out = dx_blocks;
    double* next_blocks = nullptr;
    if (l > 0) {
      next_blocks = ws.take(T * traces[l].input * L);
      dx_out = next_blocks;
    }
    const kernels::LstmGrads g =
        layer_grads.empty() ? kernels::LstmGrads{} : layer_grads[l];
    const kernels::LstmPacks packs = packs_of(l);
    kernels::lstm_backward_batched(layers_[l], traces[l], spec,
                                   top ? dh_last : nullptr,
                                   top ? nullptr : dh_blocks, dx_out, g, ws,
                                   &packs);
    dh_blocks = next_blocks;
  }
}

double LstmClassifier::clip_gradients() {
  double norm_sq = head_.grad_norm_sq();
  for (const auto& layer : layers_) norm_sq += layer.grad_norm_sq();
  const double norm = std::sqrt(norm_sq);
  if (config_.grad_clip > 0.0 && norm > config_.grad_clip) {
    const double s = config_.grad_clip / norm;
    head_.scale_grad(s);
    for (auto& layer : layers_) layer.scale_grad(s);
  }
  return norm;
}

TrainReport LstmClassifier::train(
    const std::vector<FeatureSequence>& xs, const std::vector<int>& ys,
    std::size_t epochs,
    const std::function<void(std::size_t, double, double)>& progress) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("LstmClassifier::train: bad dataset");
  }
  TrainReport report;
  Rng shuffle_rng = make_rng(0xc1a551f1e5ULL);

  Adam optimizer(AdamConfig{config_.learning_rate});
  for (auto& layer : layers_) {
    optimizer.attach(&layer.weights(), &layer.weight_grad());
    optimizer.attach(&layer.bias(), &layer.bias_grad());
  }
  optimizer.attach(&head_.weights(), &head_.weight_grad());
  optimizer.attach(&head_.bias(), &head_.bias_grad());

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);

  // Chunk-private gradient buffers for the batched path, allocated once per
  // train() and re-zeroed per batch (the reference path instead clones the
  // whole model per chunk).
  const bool batched = config_.backend == NnBackend::kBatched;
  std::vector<GradSet> pool;
  if (batched) {
    const std::size_t max_chunks =
        (std::min(config_.batch_size, xs.size()) + kGradGrain - 1) / kGradGrain;
    pool.resize(std::max<std::size_t>(max_chunks, 1));
    for (auto& gs : pool) {
      for (const auto& layer : layers_) {
        gs.dw.emplace_back(4 * config_.hidden_dim,
                           layer.input_dim() + config_.hidden_dim);
        gs.db.emplace_back(4 * config_.hidden_dim, 1);
      }
      gs.head_dw = Matrix(1, config_.hidden_dim);
      gs.head_db = Matrix(1, 1);
    }
  }

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double total_loss = 0.0;
    std::size_t correct = 0;

    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(order.size(), start + config_.batch_size);
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (auto& layer : layers_) layer.zero_grad();
      head_.zero_grad();

      // Per-sample gradient accumulation fans out over fixed-size chunks of
      // the minibatch; the chunk-private partials are folded back into the
      // main buffers strictly in chunk index order, so the summation order is
      // thread-count-invariant.
      const std::size_t nchunks = (end - start + kGradGrain - 1) / kGradGrain;
      if (batched) {
        // One chunk == one batched kernel group: a single packed GEMM per
        // gate matrix per timestep covers the whole chunk.
        parallel_chunks(start, end, kGradGrain, [&](std::size_t lo, std::size_t hi) {
          GradSet& gs = pool[(lo - start) / kGradGrain];
          gs.zero();
          kernels::Workspace& ws = local_workspace();
          ws.reset();
          const std::size_t bsz = hi - lo;
          const FeatureSequence* ptrs[kernels::kLanes];
          std::size_t steps_buf[kernels::kLanes];
          for (std::size_t k = 0; k < bsz; ++k) ptrs[k] = &xs[order[lo + k]];
          std::vector<kernels::LstmBatchTrace> traces;
          kernels::BatchSpec spec;
          double* h_last = ws.take(bsz * config_.hidden_dim);
          double* logits = ws.take(bsz);
          double* dlogits = ws.take(bsz);
          forward_batched(ptrs, bsz, ws, traces, spec, steps_buf, h_last, logits);
          for (std::size_t k = 0; k < bsz; ++k) {
            const int y = ys[order[lo + k]];
            double dlogit = 0.0;
            gs.loss += sigmoid_bce_loss(logits[k], y, &dlogit);
            if ((logits[k] >= 0.0) == (y == 1)) ++gs.correct;
            dlogits[k] = dlogit * inv_batch;
          }
          std::vector<kernels::LstmGrads> lg(layers_.size());
          for (std::size_t l = 0; l < layers_.size(); ++l) {
            lg[l] = kernels::LstmGrads{&gs.dw[l], &gs.db[l]};
          }
          backward_batched(traces, spec, h_last, dlogits, &gs.head_dw,
                           &gs.head_db, lg, nullptr, ws);
        });
        for (std::size_t c = 0; c < nchunks; ++c) {
          const GradSet& gs = pool[c];
          total_loss += gs.loss;
          correct += gs.correct;
          for (std::size_t l = 0; l < layers_.size(); ++l) {
            layers_[l].weight_grad().axpy(1.0, gs.dw[l]);
            layers_[l].bias_grad().axpy(1.0, gs.db[l]);
          }
          head_.weight_grad().axpy(1.0, gs.head_dw);
          head_.bias_grad().axpy(1.0, gs.head_db);
        }
      } else {
        // Reference path: each chunk clones the model (weights are read-only
        // within a batch; the clone's freshly-zeroed gradient buffers are the
        // chunk-private accumulators).
        struct ChunkPartial {
          LstmClassifier model;
          double loss = 0.0;
          std::size_t correct = 0;
        };
        std::vector<std::optional<ChunkPartial>> partials(nchunks);
        parallel_chunks(start, end, kGradGrain, [&](std::size_t lo, std::size_t hi) {
          ChunkPartial part{*this, 0.0, 0};
          for (std::size_t k = lo; k < hi; ++k) {
            const auto& x = xs[order[k]];
            const int y = ys[order[k]];
            std::vector<LstmTrace> traces;
            const double logit = part.model.forward_logit(x, &traces);
            double dlogit = 0.0;
            part.loss += sigmoid_bce_loss(logit, y, &dlogit);
            if ((logit >= 0.0) == (y == 1)) ++part.correct;
            part.model.backward_from_logit(traces, dlogit * inv_batch, nullptr);
          }
          partials[(lo - start) / kGradGrain].emplace(std::move(part));
        });
        for (auto& p : partials) {
          total_loss += p->loss;
          correct += p->correct;
          for (std::size_t l = 0; l < layers_.size(); ++l) {
            layers_[l].weight_grad().axpy(1.0, p->model.layers_[l].weight_grad());
            layers_[l].bias_grad().axpy(1.0, p->model.layers_[l].bias_grad());
          }
          head_.weight_grad().axpy(1.0, p->model.head_.weight_grad());
          head_.bias_grad().axpy(1.0, p->model.head_.bias_grad());
        }
      }
      clip_gradients();
      optimizer.step();
      rebuild_packs();  // parameters moved; refresh before the next pass
    }

    const double loss = total_loss / static_cast<double>(xs.size());
    const double acc = static_cast<double>(correct) / static_cast<double>(xs.size());
    report.epoch_loss.push_back(loss);
    report.epoch_accuracy.push_back(acc);
    if (progress) progress(epoch, loss, acc);
  }
  return report;
}

double LstmClassifier::predict_logit(const FeatureSequence& x) const {
  if (config_.backend == NnBackend::kReference) {
    return forward_logit(x, nullptr);
  }
  kernels::Workspace& ws = local_workspace();
  ws.reset();
  const FeatureSequence* px = &x;
  std::vector<kernels::LstmBatchTrace> traces;
  kernels::BatchSpec spec;
  std::size_t steps_buf[kernels::kLanes];
  double* h_last = ws.take(config_.hidden_dim);
  double logit = 0.0;
  forward_batched(&px, 1, ws, traces, spec, steps_buf, h_last, &logit);
  return logit;
}

std::vector<double> LstmClassifier::predict_logit_batch(
    const std::vector<FeatureSequence>& xs) const {
  std::vector<double> out(xs.size(), 0.0);
  if (config_.backend == NnBackend::kReference) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out[i] = forward_logit(xs[i], nullptr);
    }
    return out;
  }
  kernels::Workspace& ws = local_workspace();
  for (std::size_t i = 0; i < xs.size();) {
    const std::size_t bsz = std::min(kernels::kLanes, xs.size() - i);
    ws.reset();
    const FeatureSequence* ptrs[kernels::kLanes];
    std::size_t steps_buf[kernels::kLanes];
    for (std::size_t k = 0; k < bsz; ++k) ptrs[k] = &xs[i + k];
    std::vector<kernels::LstmBatchTrace> traces;
    kernels::BatchSpec spec;
    double* h_last = ws.take(bsz * config_.hidden_dim);
    double* logits = ws.take(bsz);
    forward_batched(ptrs, bsz, ws, traces, spec, steps_buf, h_last, logits);
    for (std::size_t k = 0; k < bsz; ++k) out[i + k] = logits[k];
    i += bsz;
  }
  return out;
}

double LstmClassifier::predict_proba(const FeatureSequence& x) const {
  return sigmoid(predict_logit(x));
}

std::vector<double> LstmClassifier::predict_proba_batch(
    const std::vector<FeatureSequence>& xs) const {
  std::vector<double> out = predict_logit_batch(xs);
  for (double& v : out) v = sigmoid(v);
  return out;
}

int LstmClassifier::predict(const FeatureSequence& x, double threshold) const {
  return predict_proba(x) >= threshold ? 1 : 0;
}

double LstmClassifier::loss_and_input_gradient(const FeatureSequence& x,
                                               int target_label,
                                               FeatureSequence* dx) const {
  if (config_.backend == NnBackend::kBatched) {
    kernels::Workspace& ws = local_workspace();
    ws.reset();
    const FeatureSequence* px = &x;
    std::vector<kernels::LstmBatchTrace> traces;
    kernels::BatchSpec spec;
    std::size_t steps_buf[kernels::kLanes];
    double* h_last = ws.take(config_.hidden_dim);
    double logit = 0.0;
    forward_batched(&px, 1, ws, traces, spec, steps_buf, h_last, &logit);
    double dlogit = 0.0;
    const double loss = sigmoid_bce_loss(logit, target_label, &dlogit);
    if (dx) {
      // lanes == 1, so the block layout *is* the flat steps x dim layout.
      double* dxb = ws.take(x.steps * config_.input_dim);
      backward_batched(traces, spec, h_last, &dlogit, nullptr, nullptr, {}, dxb,
                       ws);
      dx->steps = x.steps;
      dx->dim = x.dim;
      dx->values.assign(dxb, dxb + x.steps * config_.input_dim);
    }
    return loss;
  }

  std::vector<LstmTrace> traces;
  const double logit = forward_logit(x, &traces);
  double dlogit = 0.0;
  const double loss = sigmoid_bce_loss(logit, target_label, &dlogit);
  if (dx) {
    // Parameter-gradient buffers serve as scratch here; training zeroes them
    // before every batch, so clobbering them is safe.
    for (auto& layer : layers_) layer.zero_grad();
    head_.zero_grad();
    std::vector<double> dx_flat;
    backward_from_logit(traces, dlogit, &dx_flat);
    dx->steps = x.steps;
    dx->dim = x.dim;
    dx->values = std::move(dx_flat);
  }
  return loss;
}

}  // namespace trajkit::nn
