// Adam optimizer over a set of (parameter, gradient) matrix pairs.
//
// Layers register their tensors once; step() applies one Adam update using
// whatever gradients the layers have accumulated since the last zero_grad.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"

namespace trajkit::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class Adam {
 public:
  explicit Adam(AdamConfig config = {});

  /// Register a parameter tensor with its gradient tensor.  Both must outlive
  /// the optimizer; shapes must match.
  void attach(Matrix* param, Matrix* grad);

  /// One Adam update across all attached tensors.
  void step();

  /// Reset moments and the step counter (e.g. when re-using the optimizer for
  /// a fresh C&W run).
  void reset();

  const AdamConfig& config() const { return config_; }
  void set_learning_rate(double lr) { config_.learning_rate = lr; }

 private:
  struct Slot {
    Matrix* param;
    Matrix* grad;
    // Aligned like the parameters they shadow, so the step() sweep runs on
    // cache-line-aligned streams.
    kernels::AlignedVector m;
    kernels::AlignedVector v;
  };

  AdamConfig config_;
  std::vector<Slot> slots_;
  std::size_t t_ = 0;
};

}  // namespace trajkit::nn
