// Dense row-major matrix for the from-scratch neural-network library.
//
// Deliberately minimal: the LSTM and dense layers only need matrix-vector
// products, rank-1 accumulation and elementwise ops, all of which the
// compiler vectorizes well at -O3.  No expression templates, no views — the
// shapes in this project are small (hidden sizes <= a few hundred).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/kernels/align.hpp"

namespace trajkit::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(double v);
  void zero() { fill(0.0); }

  /// Glorot-uniform initialisation, the default for gates and dense layers.
  void init_glorot(Rng& rng);

  /// In-place scaled accumulate: *this += alpha * other (same shape).
  void axpy(double alpha, const Matrix& other);

  /// Frobenius norm squared.
  double norm_sq() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // 64-byte-aligned so every row of the packed kernels' operands starts on a
  // cache-line boundary; the serialized format (plain doubles) is unchanged.
  kernels::AlignedVector data_;
};

/// y += M * x  (y has M.rows() entries, x has M.cols()).
void gemv_acc(const Matrix& m, const double* x, double* y);

/// y += M^T * x (y has M.cols() entries, x has M.rows()).
void gemv_t_acc(const Matrix& m, const double* x, double* y);

/// M += alpha * x * y^T (rank-1 update; x has M.rows(), y has M.cols()).
void rank1_acc(Matrix& m, double alpha, const double* x, const double* y);

/// Numerically safe sigmoid.  Inline so the RNN elementwise loops (thousands
/// of calls per forward pass) do not pay a cross-TU call per element; the
/// expression is exactly the old out-of-line body, so results are
/// bit-identical.
inline double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace trajkit::nn
