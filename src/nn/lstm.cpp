#include "nn/lstm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace trajkit::nn {

LstmLayer::LstmLayer(std::size_t input_dim, std::size_t hidden_dim, Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_(4 * hidden_dim, input_dim + hidden_dim),
      b_(4 * hidden_dim, 1),
      dw_(4 * hidden_dim, input_dim + hidden_dim),
      db_(4 * hidden_dim, 1) {
  if (input_dim == 0 || hidden_dim == 0) {
    throw std::invalid_argument("LstmLayer: dims must be positive");
  }
  w_.init_glorot(rng);
  // Forget-gate bias of 1: standard trick, keeps early-training memory open.
  for (std::size_t h = 0; h < hidden_dim_; ++h) b_(hidden_dim_ + h, 0) = 1.0;
}

LstmTrace LstmLayer::forward(const std::vector<double>& xs, std::size_t steps) const {
  if (xs.size() != steps * input_dim_) {
    throw std::invalid_argument("LstmLayer::forward: input size mismatch");
  }
  if (steps == 0) throw std::invalid_argument("LstmLayer::forward: empty sequence");

  const std::size_t H = hidden_dim_;
  const std::size_t I = input_dim_;
  LstmTrace tr;
  tr.steps = steps;
  tr.inputs = xs;
  tr.gates.assign(steps * 4 * H, 0.0);
  tr.cells.assign(steps * H, 0.0);
  tr.hiddens.assign(steps * H, 0.0);

  std::vector<double> zin(I + H, 0.0);  // [x_t ; h_{t-1}]
  std::vector<double> z(4 * H, 0.0);

  for (std::size_t t = 0; t < steps; ++t) {
    std::memcpy(zin.data(), xs.data() + t * I, I * sizeof(double));
    if (t > 0) {
      std::memcpy(zin.data() + I, tr.hiddens.data() + (t - 1) * H, H * sizeof(double));
    } else {
      std::memset(zin.data() + I, 0, H * sizeof(double));
    }
    for (std::size_t k = 0; k < 4 * H; ++k) z[k] = b_(k, 0);
    gemv_acc(w_, zin.data(), z.data());

    double* gate = tr.gates.data() + t * 4 * H;
    double* c = tr.cells.data() + t * H;
    double* h = tr.hiddens.data() + t * H;
    const double* c_prev = t > 0 ? tr.cells.data() + (t - 1) * H : nullptr;
    for (std::size_t k = 0; k < H; ++k) {
      const double i_g = sigmoid(z[k]);
      const double f_g = sigmoid(z[H + k]);
      const double g_g = std::tanh(z[2 * H + k]);
      const double o_g = sigmoid(z[3 * H + k]);
      gate[k] = i_g;
      gate[H + k] = f_g;
      gate[2 * H + k] = g_g;
      gate[3 * H + k] = o_g;
      const double cp = c_prev ? c_prev[k] : 0.0;
      c[k] = f_g * cp + i_g * g_g;
      h[k] = o_g * std::tanh(c[k]);
    }
  }
  return tr;
}

void LstmLayer::backward(const LstmTrace& trace, const std::vector<double>& dh_last,
                         std::vector<double>* dx) {
  if (dh_last.size() != hidden_dim_) {
    throw std::invalid_argument("LstmLayer::backward: dh_last size mismatch");
  }
  std::vector<double> dh_seq(trace.steps * hidden_dim_, 0.0);
  std::copy(dh_last.begin(), dh_last.end(),
            dh_seq.end() - static_cast<std::ptrdiff_t>(hidden_dim_));
  backward_seq(trace, dh_seq, dx);
}

void LstmLayer::backward_seq(const LstmTrace& trace, const std::vector<double>& dh_seq,
                             std::vector<double>* dx) {
  const std::size_t H = hidden_dim_;
  const std::size_t I = input_dim_;
  const std::size_t steps = trace.steps;
  if (dh_seq.size() != steps * H) {
    throw std::invalid_argument("LstmLayer::backward_seq: dh_seq size mismatch");
  }
  if (dx) dx->assign(steps * I, 0.0);

  // d(loss)/d(h_t): the recurrent flow plus the per-step injection.
  std::vector<double> dh(dh_seq.end() - static_cast<std::ptrdiff_t>(H), dh_seq.end());
  std::vector<double> dc(H, 0.0);        // d(loss)/d(c_t)
  std::vector<double> dz(4 * H, 0.0);    // d(loss)/d(z_t) (pre-activation)
  std::vector<double> dzin(I + H, 0.0);  // d(loss)/d([x_t ; h_{t-1}])
  std::vector<double> zin(I + H, 0.0);

  for (std::size_t t = steps; t-- > 0;) {
    const double* gate = trace.gates.data() + t * 4 * H;
    const double* c = trace.cells.data() + t * H;
    const double* c_prev = t > 0 ? trace.cells.data() + (t - 1) * H : nullptr;

    for (std::size_t k = 0; k < H; ++k) {
      const double i_g = gate[k];
      const double f_g = gate[H + k];
      const double g_g = gate[2 * H + k];
      const double o_g = gate[3 * H + k];
      const double tanh_c = std::tanh(c[k]);
      // h = o * tanh(c)
      const double dct = dc[k] + dh[k] * o_g * (1.0 - tanh_c * tanh_c);
      const double cp = c_prev ? c_prev[k] : 0.0;
      dz[k] = dct * g_g * i_g * (1.0 - i_g);              // input gate
      dz[H + k] = dct * cp * f_g * (1.0 - f_g);           // forget gate
      dz[2 * H + k] = dct * i_g * (1.0 - g_g * g_g);      // candidate
      dz[3 * H + k] = dh[k] * tanh_c * o_g * (1.0 - o_g); // output gate
      dc[k] = dct * f_g;                                  // flows to c_{t-1}
    }

    // Parameter gradients: dw += dz * zin^T, db += dz.
    std::memcpy(zin.data(), trace.inputs.data() + t * I, I * sizeof(double));
    if (t > 0) {
      std::memcpy(zin.data() + I, trace.hiddens.data() + (t - 1) * H,
                  H * sizeof(double));
    } else {
      std::memset(zin.data() + I, 0, H * sizeof(double));
    }
    rank1_acc(dw_, 1.0, dz.data(), zin.data());
    for (std::size_t k = 0; k < 4 * H; ++k) db_(k, 0) += dz[k];

    // Input-side gradients: dzin = W^T dz.
    std::fill(dzin.begin(), dzin.end(), 0.0);
    gemv_t_acc(w_, dz.data(), dzin.data());
    if (dx) {
      std::memcpy(dx->data() + t * I, dzin.data(), I * sizeof(double));
    }
    // dh for the previous step: recurrent flow through zin plus that step's
    // own injection from the layer above.
    std::memcpy(dh.data(), dzin.data() + I, H * sizeof(double));
    if (t > 0) {
      const double* inject = dh_seq.data() + (t - 1) * H;
      for (std::size_t k = 0; k < H; ++k) dh[k] += inject[k];
    }
  }
}

void LstmLayer::zero_grad() {
  dw_.zero();
  db_.zero();
}

double LstmLayer::grad_norm_sq() const { return dw_.norm_sq() + db_.norm_sq(); }

void LstmLayer::scale_grad(double s) {
  for (std::size_t i = 0; i < dw_.size(); ++i) dw_.data()[i] *= s;
  for (std::size_t i = 0; i < db_.size(); ++i) db_.data()[i] *= s;
}

}  // namespace trajkit::nn
