// LSTM layer with full backpropagation through time.
//
// Standard formulation (Hochreiter & Schmidhuber, the paper's reference
// [23]); gate order in the stacked weight matrix is [i, f, g, o]:
//   z_t = W [x_t ; h_{t-1}] + b
//   i = sigmoid(z_i), f = sigmoid(z_f), g = tanh(z_g), o = sigmoid(z_o)
//   c_t = f * c_{t-1} + i * g
//   h_t = o * tanh(c_t)
//
// forward() caches all activations; backward() returns parameter gradients
// *and* input-sequence gradients — the latter is what lets the C&W attack
// differentiate the classifier loss w.r.t. trajectory coordinates.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace trajkit::nn {

/// Cached activations of one LSTM forward pass (one sequence).
struct LstmTrace {
  std::size_t steps = 0;
  std::vector<double> inputs;   ///< steps x input_dim
  std::vector<double> gates;    ///< steps x 4*hidden, post-activation [i,f,g,o]
  std::vector<double> cells;    ///< steps x hidden (c_t)
  std::vector<double> hiddens;  ///< steps x hidden (h_t)
};

class LstmLayer {
 public:
  LstmLayer(std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// Run the layer over a sequence (row-major steps x input_dim), producing a
  /// trace for backward().  Initial h and c are zero.
  LstmTrace forward(const std::vector<double>& xs, std::size_t steps) const;

  /// BPTT with loss gradient injected only at the final hidden state.
  /// `dh_last` is d(loss)/d(h_T) (hidden_dim entries); gradients accumulate
  /// into dw_/db_ (call zero_grad() between batches).  If `dx` is non-null it
  /// receives d(loss)/d(inputs) (steps x input_dim, overwritten).
  void backward(const LstmTrace& trace, const std::vector<double>& dh_last,
                std::vector<double>* dx);

  /// BPTT with loss gradient injected at every step's hidden output — needed
  /// when another LSTM layer is stacked on top.  `dh_seq` has
  /// steps x hidden_dim entries.
  void backward_seq(const LstmTrace& trace, const std::vector<double>& dh_seq,
                    std::vector<double>* dx);

  void zero_grad();
  /// Squared L2 norm of all gradients (for global-norm clipping).
  double grad_norm_sq() const;
  /// Scale all gradients by `s`.
  void scale_grad(double s);

  Matrix& weights() { return w_; }
  const Matrix& weights() const { return w_; }
  Matrix& bias() { return b_; }
  const Matrix& bias() const { return b_; }
  Matrix& weight_grad() { return dw_; }
  Matrix& bias_grad() { return db_; }

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  Matrix w_;   ///< (4*hidden) x (input + hidden)
  Matrix b_;   ///< (4*hidden) x 1
  Matrix dw_;
  Matrix db_;
};

}  // namespace trajkit::nn
