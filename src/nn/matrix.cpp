#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trajkit::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::init_glorot(Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& v : data_) v = rng.uniform(-limit, limit);
}

void Matrix::axpy(double alpha, const Matrix& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("Matrix::axpy: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

double Matrix::norm_sq() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void gemv_acc(const Matrix& m, const double* x, double* y) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* mr = m.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += mr[c] * x[c];
    y[r] += acc;
  }
}

void gemv_t_acc(const Matrix& m, const double* x, double* y) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* mr = m.row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < cols; ++c) y[c] += mr[c] * xr;
  }
}

void rank1_acc(Matrix& m, double alpha, const double* x, const double* y) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < rows; ++r) {
    double* mr = m.row(r);
    const double ax = alpha * x[r];
    for (std::size_t c = 0; c < cols; ++c) mr[c] += ax * y[c];
  }
}

}  // namespace trajkit::nn
