#include "nn/kernels/quant.hpp"

#include <algorithm>
#include <stdexcept>

// The hot GEMMs are written twice: an AVX512-VNNI path (vpdpbusd/vpdpwssd —
// one weight load + one activation broadcast per 64/32 MACs, the reason the
// int8 lane beats the fp64 panels at every hidden size) and a portable
// scalar walk of the same pack.  Integer sums are exact in any order, so the
// two paths are bit-identical and the tests' scalar references cover both.
#if defined(__AVX512VNNI__) && defined(__AVX512F__)
#include <immintrin.h>
#define TRAJKIT_QUANT_VNNI 1
#endif

namespace trajkit::nn::kernels {

namespace {

// Pack-layout index of coefficient (r, k): row group, dword run, row in
// group, coefficient in dword.  PerDword = 4 (int8) or 2 (int16).
template <std::size_t PerDword>
inline std::size_t pack_index(std::size_t r, std::size_t k,
                              std::size_t depth_pad) {
  const std::size_t g = r / kQuantGroup, j = r % kQuantGroup;
  const std::size_t d = k / PerDword, c = k % PerDword;
  const std::size_t runs = depth_pad / PerDword;
  return ((g * runs + d) * kQuantGroup + j) * PerDword + c;
}

// Shared quantize-and-pack loop.
template <typename T, std::size_t PerDword>
void pack_quant_impl(const Matrix& m, std::size_t c0, std::size_t c1,
                     const double* row_inv_scale, std::int32_t qmax, T* out) {
  require_aligned64(m.data(), "quant pack: Matrix storage");
  require_aligned64(out, "quant pack: output buffer");
  if (c1 > m.cols() || c0 > c1) {
    throw std::invalid_argument("quant pack: column slice out of range");
  }
  const std::size_t rows = m.rows();
  const std::size_t depth = c1 - c0;
  const std::size_t depth_pad = quant_depth_pad(depth);
  const std::size_t rows_pad =
      ((rows + kQuantGroup - 1) / kQuantGroup) * kQuantGroup;
  for (std::size_t r = 0; r < rows_pad; ++r) {
    for (std::size_t k = 0; k < depth_pad; ++k) {
      const bool live = r < rows && k < depth;
      out[pack_index<PerDword>(r, k, depth_pad)] =
          live ? static_cast<T>(
                     quantize_value(m(r, c0 + k), row_inv_scale[r], qmax))
               : T{0};
    }
  }
}

// One lane-row of the activation quantizer: 8 doubles -> 8 int8, the exact
// vector body the rounding-contract test pins against quantize_value.
inline v8qi quantize8(const double* src, v8df inv) {
  const v8df q = vsplat(127.0), nq = vsplat(-127.0);
  const v8df half = vsplat(0.5), nhalf = vsplat(-0.5), zero = vsplat(0.0);
  v8df t = vload(src) * inv;
  t = t > q ? q : t;
  t = t < nq ? nq : t;
  t = t + (t >= zero ? half : nhalf);
  const v8si qv = __builtin_convertvector(t, v8si);  // trunc -> half-away
  return __builtin_convertvector(qv, v8qi);
}

}  // namespace

double max_abs_block(const Matrix& m, std::size_t r0, std::size_t r1,
                     std::size_t c0, std::size_t c1) {
  double best = 0.0;
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t c = c0; c < c1; ++c) {
      const double a = m(r, c) < 0.0 ? -m(r, c) : m(r, c);
      if (a > best) best = a;
    }
  }
  return best;
}

void pack_quant_rows_i8(const Matrix& m, std::size_t c0, std::size_t c1,
                        const double* row_inv_scale, qi8* out) {
  pack_quant_impl<qi8, 4>(m, c0, c1, row_inv_scale, 127, out);
}

void pack_quant_rows_i16(const Matrix& m, std::size_t c0, std::size_t c1,
                         const double* row_inv_scale, qi16* out) {
  pack_quant_impl<qi16, 2>(m, c0, c1, row_inv_scale, 32767, out);
}

void quant_row_sums_i8(const qi8* pack, std::size_t rows, std::size_t depth,
                       qi64* out) {
  const std::size_t depth_pad = quant_depth_pad(depth);
  for (std::size_t r = 0; r < rows; ++r) {
    std::int64_t s = 0;
    for (std::size_t k = 0; k < depth_pad; ++k) {
      s += pack[pack_index<4>(r, k, depth_pad)];
    }
    out[r] = s;
  }
}

void quantize_i8(const double* x, std::size_t n, double inv_scale, qi8* out) {
  const v8df inv = vsplat(inv_scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const v8qi b = quantize8(x + i, inv);
    std::memcpy(out + i, &b, sizeof(b));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<qi8>(quantize_value(x[i], inv_scale, kActQmax));
  }
}

// The activation blocks arrive lane-minor (depth rows of kLanes doubles), so
// every k is one full vector quantize; the 8x8 tile then transposes to the
// lane-major image the dot-product GEMM broadcasts from.
void quantize_act_u8(const double* block, std::size_t depth,
                     std::size_t depth_pad, double inv_scale, qu8* out) {
  const v8df inv = vsplat(inv_scale);
  for (std::size_t k0 = 0; k0 < depth; k0 += 8) {
    const std::size_t kn = std::min<std::size_t>(8, depth - k0);
    qi8 tile[8][kLanes];
    for (std::size_t kk = 0; kk < kn; ++kk) {
      const v8qi b = quantize8(block + (k0 + kk) * kLanes, inv);
      std::memcpy(tile[kk], &b, sizeof(b));
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      for (std::size_t kk = 0; kk < kn; ++kk) {
        out[l * depth_pad + k0 + kk] =
            static_cast<qu8>(static_cast<std::int32_t>(tile[kk][l]) + 128);
      }
    }
  }
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t k = depth; k < depth_pad; ++k) {
      out[l * depth_pad + k] = 128;  // q == 0 in offset-binary
    }
  }
}

void quantize_act_i16(const double* block, std::size_t depth,
                      std::size_t depth_pad, double inv_scale, qi16* out) {
  const v8df inv = vsplat(inv_scale);
  for (std::size_t k0 = 0; k0 < depth; k0 += 8) {
    const std::size_t kn = std::min<std::size_t>(8, depth - k0);
    qi8 tile[8][kLanes];
    for (std::size_t kk = 0; kk < kn; ++kk) {
      const v8qi b = quantize8(block + (k0 + kk) * kLanes, inv);
      std::memcpy(tile[kk], &b, sizeof(b));
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      for (std::size_t kk = 0; kk < kn; ++kk) {
        out[l * depth_pad + k0 + kk] = static_cast<qi16>(tile[kk][l]);
      }
    }
  }
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t k = depth; k < depth_pad; ++k) {
      out[l * depth_pad + k] = 0;
    }
  }
}

void gemm_q8x8(const qi8* w, const qi64* row_sums, std::size_t rows,
               std::size_t depth_pad, const qu8* x, qi64* acc) {
  // 255 * 127 * 65536 < 2^31: one int32 accumulator covers the whole row for
  // every depth the model loaders admit (kMaxDim).  Anything larger is a
  // caller bug, not a silent wrap.
  if (depth_pad > 65536) {
    throw std::invalid_argument("gemm_q8x8: depth exceeds int32 budget");
  }
  const std::size_t ngroups = (rows + kQuantGroup - 1) / kQuantGroup;
  const std::size_t runs = depth_pad / 4;
#ifdef TRAJKIT_QUANT_VNNI
  for (std::size_t g = 0; g < ngroups; ++g) {
    const qi8* wg = w + g * depth_pad * kQuantGroup;
    __m512i a0 = _mm512_setzero_si512(), a1 = a0, a2 = a0, a3 = a0;
    __m512i a4 = a0, a5 = a0, a6 = a0, a7 = a0;
    for (std::size_t d = 0; d < runs; ++d) {
      const __m512i wv = _mm512_loadu_si512(wg + d * 64);
      std::int32_t xd[kLanes];
      std::memcpy(&xd[0], x + 0 * depth_pad + 4 * d, 4);
      std::memcpy(&xd[1], x + 1 * depth_pad + 4 * d, 4);
      std::memcpy(&xd[2], x + 2 * depth_pad + 4 * d, 4);
      std::memcpy(&xd[3], x + 3 * depth_pad + 4 * d, 4);
      std::memcpy(&xd[4], x + 4 * depth_pad + 4 * d, 4);
      std::memcpy(&xd[5], x + 5 * depth_pad + 4 * d, 4);
      std::memcpy(&xd[6], x + 6 * depth_pad + 4 * d, 4);
      std::memcpy(&xd[7], x + 7 * depth_pad + 4 * d, 4);
      a0 = _mm512_dpbusd_epi32(a0, _mm512_set1_epi32(xd[0]), wv);
      a1 = _mm512_dpbusd_epi32(a1, _mm512_set1_epi32(xd[1]), wv);
      a2 = _mm512_dpbusd_epi32(a2, _mm512_set1_epi32(xd[2]), wv);
      a3 = _mm512_dpbusd_epi32(a3, _mm512_set1_epi32(xd[3]), wv);
      a4 = _mm512_dpbusd_epi32(a4, _mm512_set1_epi32(xd[4]), wv);
      a5 = _mm512_dpbusd_epi32(a5, _mm512_set1_epi32(xd[5]), wv);
      a6 = _mm512_dpbusd_epi32(a6, _mm512_set1_epi32(xd[6]), wv);
      a7 = _mm512_dpbusd_epi32(a7, _mm512_set1_epi32(xd[7]), wv);
    }
    alignas(64) std::int32_t lanes[kLanes][kQuantGroup];
    _mm512_store_si512(lanes[0], a0);
    _mm512_store_si512(lanes[1], a1);
    _mm512_store_si512(lanes[2], a2);
    _mm512_store_si512(lanes[3], a3);
    _mm512_store_si512(lanes[4], a4);
    _mm512_store_si512(lanes[5], a5);
    _mm512_store_si512(lanes[6], a6);
    _mm512_store_si512(lanes[7], a7);
    const std::size_t valid = std::min(rows - g * kQuantGroup, kQuantGroup);
    for (std::size_t j = 0; j < valid; ++j) {
      const std::size_t r = g * kQuantGroup + j;
      const std::int64_t corr = 128 * row_sums[r];
      for (std::size_t l = 0; l < kLanes; ++l) {
        acc[r * kLanes + l] = static_cast<std::int64_t>(lanes[l][j]) - corr;
      }
    }
  }
#else
  (void)runs;
  (void)ngroups;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int64_t corr = 128 * row_sums[r];
    for (std::size_t l = 0; l < kLanes; ++l) {
      const qu8* xl = x + l * depth_pad;
      std::int64_t s = 0;
      for (std::size_t k = 0; k < depth_pad; ++k) {
        s += static_cast<std::int64_t>(xl[k]) *
             w[pack_index<4>(r, k, depth_pad)];
      }
      acc[r * kLanes + l] = s - corr;
    }
  }
#endif
}

void gemm_q16x8(const qi16* w, std::size_t rows, std::size_t depth_pad,
                const qi16* x, qi64* acc) {
  const std::size_t ngroups = (rows + kQuantGroup - 1) / kQuantGroup;
  const std::size_t runs = depth_pad / 2;
  // 127 * 32767 * 512 < 2^31: int32 partials spill to int64 every 512 depth
  // (256 dword runs), so no chunk can wrap at any depth.
  constexpr std::size_t kChunkRuns = 256;
#ifdef TRAJKIT_QUANT_VNNI
  for (std::size_t g = 0; g < ngroups; ++g) {
    const qi16* wg = w + g * depth_pad * kQuantGroup;
    std::int64_t tot[kLanes][kQuantGroup] = {};
    for (std::size_t d0 = 0; d0 < runs; d0 += kChunkRuns) {
      const std::size_t dend = std::min(runs, d0 + kChunkRuns);
      __m512i a0 = _mm512_setzero_si512(), a1 = a0, a2 = a0, a3 = a0;
      __m512i a4 = a0, a5 = a0, a6 = a0, a7 = a0;
      for (std::size_t d = d0; d < dend; ++d) {
        const __m512i wv = _mm512_loadu_si512(wg + d * 32);
        std::int32_t xd[kLanes];
        std::memcpy(&xd[0], x + 0 * depth_pad + 2 * d, 4);
        std::memcpy(&xd[1], x + 1 * depth_pad + 2 * d, 4);
        std::memcpy(&xd[2], x + 2 * depth_pad + 2 * d, 4);
        std::memcpy(&xd[3], x + 3 * depth_pad + 2 * d, 4);
        std::memcpy(&xd[4], x + 4 * depth_pad + 2 * d, 4);
        std::memcpy(&xd[5], x + 5 * depth_pad + 2 * d, 4);
        std::memcpy(&xd[6], x + 6 * depth_pad + 2 * d, 4);
        std::memcpy(&xd[7], x + 7 * depth_pad + 2 * d, 4);
        a0 = _mm512_dpwssd_epi32(a0, _mm512_set1_epi32(xd[0]), wv);
        a1 = _mm512_dpwssd_epi32(a1, _mm512_set1_epi32(xd[1]), wv);
        a2 = _mm512_dpwssd_epi32(a2, _mm512_set1_epi32(xd[2]), wv);
        a3 = _mm512_dpwssd_epi32(a3, _mm512_set1_epi32(xd[3]), wv);
        a4 = _mm512_dpwssd_epi32(a4, _mm512_set1_epi32(xd[4]), wv);
        a5 = _mm512_dpwssd_epi32(a5, _mm512_set1_epi32(xd[5]), wv);
        a6 = _mm512_dpwssd_epi32(a6, _mm512_set1_epi32(xd[6]), wv);
        a7 = _mm512_dpwssd_epi32(a7, _mm512_set1_epi32(xd[7]), wv);
      }
      alignas(64) std::int32_t lanes[kLanes][kQuantGroup];
      _mm512_store_si512(lanes[0], a0);
      _mm512_store_si512(lanes[1], a1);
      _mm512_store_si512(lanes[2], a2);
      _mm512_store_si512(lanes[3], a3);
      _mm512_store_si512(lanes[4], a4);
      _mm512_store_si512(lanes[5], a5);
      _mm512_store_si512(lanes[6], a6);
      _mm512_store_si512(lanes[7], a7);
      for (std::size_t l = 0; l < kLanes; ++l) {
        for (std::size_t j = 0; j < kQuantGroup; ++j) tot[l][j] += lanes[l][j];
      }
    }
    const std::size_t valid = std::min(rows - g * kQuantGroup, kQuantGroup);
    for (std::size_t j = 0; j < valid; ++j) {
      const std::size_t r = g * kQuantGroup + j;
      for (std::size_t l = 0; l < kLanes; ++l) {
        acc[r * kLanes + l] = tot[l][j];
      }
    }
  }
#else
  (void)runs;
  (void)ngroups;
  (void)kChunkRuns;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const qi16* xl = x + l * depth_pad;
      std::int64_t s = 0;
      for (std::size_t k = 0; k < depth_pad; ++k) {
        s += static_cast<std::int64_t>(xl[k]) *
             w[pack_index<2>(r, k, depth_pad)];
      }
      acc[r * kLanes + l] = s;
    }
  }
#endif
}

}  // namespace trajkit::nn::kernels
