// Packed, register-tiled GEMM kernels for the batched nn stack.
//
// Every kernel here reproduces one of the three accumulation conventions of
// the naive matvec layer (nn/matrix.cpp) *bit for bit*.  The repo builds
// without -ffast-math, so the compiler preserves floating-point association;
// as long as each output element is produced by a single accumulator walking
// the reduction dimension in the reference order, register tiling across
// *independent* output elements (rows x batch lanes) changes nothing.  The
// three conventions are:
//
//  1. "wx" (gemv_acc / W.[x;h]): per output element, one accumulator summed
//     from zero over k ascending, then ONE add onto the seed (bias).
//  2. "accseq" (gemv_t_acc / W^T.dz): the destination itself is the
//     accumulator; contributions are added in r (weight-row) ascending order.
//  3. "tdesc" (rank1_acc inside the t-descending BPTT loop): the destination
//     is the accumulator; per-timestep outer products fold in t DESCENDING
//     order, matching the reference backward walking t from T-1 to 0.
//
// Weight packing: rows are grouped into panels of kPanel = 8; within a panel
// the k-th slice holds the 8 rows' k-th coefficients contiguously
// (data[(panel*depth + k)*8 + lane]).  Tail rows are zero-padded — the padded
// lanes compute harmless garbage that is never written back.  The same layout
// serves the transposed operand (pack_transpose), so both W.x and W^T.x run
// the identical inner loop.  Batched activations use the matching layout: a
// "block" stores kLanes = 8 batch columns interleaved per row
// (block[r*lanes + lane]); with lanes == 1 the block is just a plain vector.
#pragma once

#include <cstddef>

#include "nn/kernels/align.hpp"
#include "nn/matrix.hpp"

namespace trajkit::nn::kernels {

/// Rows per packed weight panel (one cache line of doubles).
inline constexpr std::size_t kPanel = 8;
/// Batch columns per activation block in batched mode.
inline constexpr std::size_t kLanes = 8;

/// Panel-packed view of a weight matrix; data lives in a Workspace.
struct Packed {
  const double* data = nullptr;
  std::size_t rows = 0;   ///< logical rows of the packed operand
  std::size_t depth = 0;  ///< reduction length (logical cols)
  std::size_t panels() const { return (rows + kPanel - 1) / kPanel; }
};

/// Doubles needed to pack a rows x depth operand (whole panels).
std::size_t packed_doubles(std::size_t rows, std::size_t depth);

/// Pack m row-major into panels (operand for y = W x).
Packed pack_rows(const Matrix& m, Workspace& ws);
/// Pack m^T into panels (operand for y = W^T x): rows = m.cols(),
/// depth = m.rows().
Packed pack_transpose(const Matrix& m, Workspace& ws);

/// Caller-owned-storage variants: `out` must hold packed_doubles() entries
/// (64-byte aligned for best codegen).  Lets a model cache its packed weights
/// across calls instead of repacking into a workspace every pass.
Packed pack_rows_at(const Matrix& m, double* out);
Packed pack_transpose_at(const Matrix& m, double* out);

/// Convention 1, single lane: y[r] = (bias ? bias[r] : 0) + sum_k p[r,k] x[k].
/// Bit-identical to `y[r] = bias[r]; gemv_acc(m, x, y)`.
void gemv_wx(const Packed& p, const double* bias, const double* x, double* y);

/// Convention 1, kLanes batch columns: y[r*kLanes+l] = bias[r] + sum_k
/// p[r,k] x[k*kLanes+l].  One fused multiply chain per (r, l) element.
void gemm_wx8(const Packed& p, const double* bias, const double* x, double* y);

/// Convention 2, single lane: y[r] += p[r,k]*x[k], k ascending, accumulating
/// directly into y.  With p = pack_transpose(W) this is gemv_t_acc(W, x, y).
void gemv_accseq(const Packed& p, const double* x, double* y);

/// Convention 2, kLanes batch columns (destination-seeded).
void gemm_accseq8(const Packed& p, const double* x, double* y);

/// Convention 3: dw[r,c] += sum over t DESCENDING of a[r*tsteps+t] *
/// bm[t*cols+c], for t in [t_stop, tsteps).  `a` is (rows x tsteps) with t
/// minor; `bm` is (tsteps x cols).  Seeded from dw's current contents with
/// sequential adds — bit-identical to calling rank1_acc(dw, 1, a_t, bm_t) for
/// t = tsteps-1 ... t_stop.
void gemm_acc_tdesc(const double* a, std::size_t rows, std::size_t tsteps,
                    const double* bm, std::size_t cols, std::size_t t_stop,
                    Matrix& dw);

/// Convention 3 bias reduction: db[r,0] += sum over t DESCENDING of
/// a[r*tsteps+t].
void rowsum_acc_tdesc(const double* a, std::size_t rows, std::size_t tsteps,
                      Matrix& db);

/// Dispatch helper: lanes must be 1 or kLanes.
inline void gemm_wx_l(const Packed& p, const double* bias, const double* x,
                      double* y, std::size_t lanes) {
  if (lanes == 1) {
    gemv_wx(p, bias, x, y);
  } else {
    gemm_wx8(p, bias, x, y);
  }
}

inline void gemm_accseq_l(const Packed& p, const double* x, double* y,
                          std::size_t lanes) {
  if (lanes == 1) {
    gemv_accseq(p, x, y);
  } else {
    gemm_accseq8(p, x, y);
  }
}

}  // namespace trajkit::nn::kernels
