#include "nn/kernels/rnn_quant.hpp"

#include <cstring>
#include <stdexcept>

namespace trajkit::nn::kernels {

namespace {

void check_quant_spec(const QuantLstmLayerView& layer, const BatchSpec& spec) {
  if (spec.batch == 0 || spec.max_steps == 0 || spec.steps == nullptr) {
    throw std::invalid_argument("rnn_quant: empty batch");
  }
  if (spec.lanes != kLanes) {
    throw std::invalid_argument("rnn_quant: lanes must be kLanes");
  }
  if (spec.batch > spec.lanes) {
    throw std::invalid_argument("rnn_quant: batch exceeds lanes");
  }
  for (std::size_t b = 0; b < spec.batch; ++b) {
    if (spec.steps[b] == 0 || spec.steps[b] > spec.max_steps) {
      throw std::invalid_argument("rnn_quant: bad sample length");
    }
  }
  if (layer.wx == nullptr || layer.wh == nullptr || layer.bias == nullptr ||
      layer.input == 0 || layer.hidden == 0) {
    throw std::invalid_argument("rnn_quant: incomplete layer view");
  }
  if (layer.mode == QuantMode::kInt8 &&
      (layer.wx_row_sums == nullptr || layer.wh_row_sums == nullptr)) {
    throw std::invalid_argument("rnn_quant: int8 view missing row sums");
  }
}

}  // namespace

double* lstm_forward_quant(const QuantLstmLayerView& layer,
                           const double* xblocks, const BatchSpec& spec,
                           Workspace& ws) {
  check_quant_spec(layer, spec);
  const std::size_t I = layer.input;
  const std::size_t H = layer.hidden;
  const std::size_t L = kLanes;
  const std::size_t T = spec.max_steps;
  const std::size_t HL = H * L;

  // Dequantization factors, one per gate per weight half.
  double dqx[4], dqh[4];
  for (std::size_t g = 0; g < 4; ++g) {
    dqx[g] = layer.sw_x[g] * layer.sx;
    dqh[g] = layer.sw_h[g] * layer.sh;
  }
  const double inv_sx = layer.sx != 0.0 ? 1.0 / layer.sx : 0.0;
  const double inv_sh = layer.sh != 0.0 ? 1.0 / layer.sh : 0.0;
  const std::size_t IPad = quant_depth_pad(I);
  const std::size_t HPad = quant_depth_pad(H);
  const bool i8 = layer.mode == QuantMode::kInt8;

  // The whole input history is known up front, so its quantized lane-major
  // image is built once; only the recurrent state re-quantizes per step.
  // int8 mode stores offset-binary uint8 activations, int16 mode signed
  // int16 (the VNNI dot products are u8 x s8 and s16 x s16 respectively).
  qu8* qx8 = nullptr;
  qu8* qh8 = nullptr;
  qi16* qx16 = nullptr;
  qi16* qh16 = nullptr;
  if (i8) {
    qx8 = take_u8(ws, T * L * IPad);
    qh8 = take_u8(ws, L * HPad);
    for (std::size_t t = 0; t < T; ++t) {
      quantize_act_u8(xblocks + t * I * L, I, IPad, inv_sx, qx8 + t * L * IPad);
    }
  } else {
    qx16 = take_i16(ws, T * L * IPad);
    qh16 = take_i16(ws, L * HPad);
    for (std::size_t t = 0; t < T; ++t) {
      quantize_act_i16(xblocks + t * I * L, I, IPad, inv_sx,
                       qx16 + t * L * IPad);
    }
  }
  qi64* accx = take_i64(ws, 4 * HL);
  qi64* acch = take_i64(ws, 4 * HL);
  double* cells = ws.take(2 * HL);  // ping-pong c_{t-1} / c_t
  double* hiddens = ws.take(T * HL);

  for (std::size_t t = 0; t < T; ++t) {
    if (i8) {
      gemm_q8x8(static_cast<const qi8*>(layer.wx), layer.wx_row_sums, 4 * H,
                IPad, qx8 + t * L * IPad, accx);
    } else {
      gemm_q16x8(static_cast<const qi16*>(layer.wx), 4 * H, IPad,
                 qx16 + t * L * IPad, accx);
    }
    if (t > 0) {
      if (i8) {
        quantize_act_u8(hiddens + (t - 1) * HL, H, HPad, inv_sh, qh8);
        gemm_q8x8(static_cast<const qi8*>(layer.wh), layer.wh_row_sums, 4 * H,
                  HPad, qh8, acch);
      } else {
        quantize_act_i16(hiddens + (t - 1) * HL, H, HPad, inv_sh, qh16);
        gemm_q16x8(static_cast<const qi16*>(layer.wh), 4 * H, HPad, qh16,
                   acch);
      }
    } else {
      std::memset(acch, 0, 4 * HL * sizeof(qi64));
    }

    const double* c_prev = cells + (t % 2) * HL;
    double* c = cells + ((t + 1) % 2) * HL;
    double* h = hiddens + t * HL;
    // Fused dequant + gate loop: one v8df per hidden row per gate (L == 8),
    // fast polynomial activations, state in double.
    for (std::size_t r = 0; r < H; ++r) {
      const std::size_t e = r * L;
      const v8df zi = vsplat(layer.bias[r]) + vcvt_i64(accx + e) * vsplat(dqx[0]) +
                      vcvt_i64(acch + e) * vsplat(dqh[0]);
      const v8df zf = vsplat(layer.bias[H + r]) +
                      vcvt_i64(accx + HL + e) * vsplat(dqx[1]) +
                      vcvt_i64(acch + HL + e) * vsplat(dqh[1]);
      const v8df zg = vsplat(layer.bias[2 * H + r]) +
                      vcvt_i64(accx + 2 * HL + e) * vsplat(dqx[2]) +
                      vcvt_i64(acch + 2 * HL + e) * vsplat(dqh[2]);
      const v8df zo = vsplat(layer.bias[3 * H + r]) +
                      vcvt_i64(accx + 3 * HL + e) * vsplat(dqx[3]) +
                      vcvt_i64(acch + 3 * HL + e) * vsplat(dqh[3]);
      const v8df ig = fast_sigmoid8(zi);
      const v8df fg = fast_sigmoid8(zf);
      const v8df gg = fast_tanh8(zg);
      const v8df og = fast_sigmoid8(zo);
      const v8df cp = t > 0 ? vload(c_prev + e) : vsplat(0.0);
      const v8df cc = fg * cp + ig * gg;
      vstore(c + e, cc);
      vstore(h + e, og * fast_tanh8(cc));
    }
  }
  return hiddens;
}

}  // namespace trajkit::nn::kernels
