// Aligned storage primitives for the batched kernel layer.
//
// Two pieces:
//  - AlignedAllocator<T, A>: a minimal std allocator handing out A-byte-aligned
//    blocks so `Matrix` rows and workspace buffers start on cache-line
//    boundaries and the blocked kernels can use aligned vector loads.
//  - Workspace: a bump arena of aligned doubles.  Every forward/backward pass
//    through the batched RNN runners carves its packed weights, per-timestep
//    activation blocks and scratch out of one Workspace instead of allocating
//    `std::vector`s per call; reset() recycles the memory for the next pass.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace trajkit::nn::kernels {

/// Loud runtime guard for the 64-byte storage contract.  The packed kernels
/// assume cache-line-aligned operands; a view over foreign storage that
/// misses the contract must fail here instead of silently taking (or worse,
/// faulting in) the vector path.
inline void require_aligned64(const void* p, const char* what) {
  if ((reinterpret_cast<std::uintptr_t>(p) & std::uintptr_t{63}) != 0) {
    throw std::invalid_argument(std::string(what) +
                                ": storage is not 64-byte aligned");
  }
}

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two no smaller than alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// 64-byte-aligned vector of doubles — the storage type for Matrix and for
/// the Adam moment buffers.
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

/// Bump arena of aligned doubles.  take(n) returns a zero-initialised block on
/// first use of the underlying memory; after reset() the same memory is handed
/// out again *without* re-zeroing unless asked (take_zero), so callers that
/// rely on zeroed scratch must say so.
///
/// Blocks are stable for the lifetime of the arena (allocation never moves
/// previously returned pointers): memory comes from a list of fixed chunks,
/// and a request that does not fit the current chunk opens a new, larger one.
class Workspace {
 public:
  Workspace() = default;
  // Copying a Workspace (e.g. cloning an object that owns one) starts empty:
  // arenas hold transient per-pass scratch, never state.
  Workspace(const Workspace&) noexcept {}
  Workspace& operator=(const Workspace&) noexcept { return *this; }

  /// Aligned block of n doubles (n rounded up to a multiple of 8 so every
  /// block starts 64-byte aligned).  Contents unspecified.
  double* take(std::size_t n) {
    n = (n + 7u) & ~std::size_t{7};
    if (chunk_ >= chunks_.size() || used_ + n > chunks_[chunk_].size()) {
      open_chunk(n);
    }
    double* p = chunks_[chunk_].data() + used_;
    used_ += n;
    return p;
  }

  /// Aligned block of n doubles, zero-filled.
  double* take_zero(std::size_t n) {
    double* p = take(n);
    const std::size_t rounded = (n + 7u) & ~std::size_t{7};
    for (std::size_t i = 0; i < rounded; ++i) p[i] = 0.0;
    return p;
  }

  /// Recycle all memory; previously returned pointers become invalid.
  void reset() {
    chunk_ = 0;
    used_ = 0;
  }

 private:
  void open_chunk(std::size_t need) {
    // Advance to the next existing chunk that fits, else append one.
    std::size_t next = (chunk_ < chunks_.size()) ? chunk_ + 1 : chunks_.size();
    while (next < chunks_.size() && chunks_[next].size() < need) ++next;
    if (next == chunks_.size()) {
      const std::size_t grown = chunks_.empty() ? std::size_t{4096}
                                                : chunks_.back().size() * 2;
      chunks_.emplace_back(std::max(need, grown));
    }
    chunk_ = next;
    used_ = 0;
  }

  std::vector<AlignedVector> chunks_;
  std::size_t chunk_ = 0;
  std::size_t used_ = 0;
};

}  // namespace trajkit::nn::kernels
