// Batched LSTM/GRU sequence runners over the packed GEMM kernels.
//
// The runners pack up to kLanes trajectories per timestep into one GEMM per
// gate matrix, with fused gate activations, and run the backward pass the
// same way.  Live lanes are **bit-identical** to the per-sample reference
// layers (LstmLayer / GruLayer): every output element keeps the reference's
// single-accumulator reduction order (see kernels/gemm.hpp), the elementwise
// gate math is the exact same scalar expression per lane, and parameter
// gradients are folded per sample in batch order with t descending — the same
// global per-element add order the reference produces when looping samples.
//
// Ragged batches: each sample has its own length steps[b] <= max_steps.
// Input blocks are zero-padded past a sample's length; lanes past the end
// compute bounded garbage that never reaches a live value (forward state is
// re-read only by later steps of the *same* lane; backward assigns dh and
// zeroes dc at each sample's own last step before any live math).
//
// All scratch (packed weights, activation blocks, gradient buffers) comes
// from a caller-provided Workspace: zero allocations per call once the arena
// has warmed up.
#pragma once

#include <cstddef>

#include "nn/gru.hpp"
#include "nn/kernels/align.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/lstm.hpp"

namespace trajkit::nn::kernels {

/// Shape of one ragged batch.  `lanes` is the block stride: 1 when batch == 1
/// (vector fast path), kLanes otherwise; batch <= lanes always.
struct BatchSpec {
  std::size_t batch = 1;
  std::size_t lanes = 1;
  std::size_t max_steps = 0;
  const std::size_t* steps = nullptr;  ///< batch entries, each in [1, max_steps]
};

/// Activation trace of one batched LSTM forward; all pointers live in the
/// Workspace passed to lstm_forward_batched.  A "block" at timestep t stores
/// rows x lanes doubles, lane-minor.
struct LstmBatchTrace {
  std::size_t input = 0;
  std::size_t hidden = 0;
  double* xin = nullptr;      ///< T blocks of (input+hidden) x lanes: [x_t ; h_{t-1}]
  double* gates = nullptr;    ///< T blocks of 4*hidden x lanes, post-activation [i,f,g,o]
  double* cells = nullptr;    ///< T blocks of hidden x lanes
  double* tanh_cells = nullptr;  ///< T blocks of hidden x lanes: tanh(c_t)
  double* hiddens = nullptr;  ///< T blocks of hidden x lanes
};

/// Both packings of one LSTM weight matrix, typically cached by the model so
/// repeated passes (the attack inner loop, serve-side predicts) skip the
/// per-call repack.  Build at a single-threaded point with pack_rows_at /
/// pack_transpose_at; the runners below fall back to packing into the
/// workspace when no cache is supplied.
struct LstmPacks {
  Packed rows;
  Packed transpose;
};

/// Forward over a ragged batch.  `xblocks` holds max_steps blocks of
/// input x lanes with dead lanes zero-padded (a stacked layer may feed the
/// lower trace's hiddens directly: its dead-lane values are bounded garbage
/// and stay confined to dead lanes).
LstmBatchTrace lstm_forward_batched(const LstmLayer& layer, const double* xblocks,
                                    const BatchSpec& spec, Workspace& ws,
                                    const LstmPacks* packs = nullptr);

/// Destination matrices for accumulated LSTM parameter gradients (both null
/// to skip parameter gradients entirely, e.g. on the attack's input-gradient
/// path).
struct LstmGrads {
  Matrix* dw = nullptr;
  Matrix* db = nullptr;
};

/// Batched BPTT.  Exactly one of dh_last / dh_blocks must be non-null:
///  - dh_last (batch x hidden, row-major): final-state objective, injected at
///    each sample's own last step — the reference LstmLayer::backward.
///  - dh_blocks (max_steps blocks of hidden x lanes): per-step injection from
///    a stacked layer above — the reference backward_seq.
/// dx_blocks (optional out, max_steps blocks of input x lanes) receives the
/// input gradient.  grads (optional) accumulate like the reference called
/// per-sample in batch order.
void lstm_backward_batched(const LstmLayer& layer, const LstmBatchTrace& trace,
                           const BatchSpec& spec, const double* dh_last,
                           const double* dh_blocks, double* dx_blocks,
                           const LstmGrads& grads, Workspace& ws,
                           const LstmPacks* packs = nullptr);

/// GRU analogue of LstmBatchTrace.
struct GruBatchTrace {
  std::size_t input = 0;
  std::size_t hidden = 0;
  double* xin = nullptr;      ///< T blocks of (input+hidden) x lanes
  double* r_gate = nullptr;   ///< T blocks of hidden x lanes
  double* z_gate = nullptr;   ///< T blocks of hidden x lanes
  double* n_cand = nullptr;   ///< T blocks of hidden x lanes (post-tanh)
  double* nh_pre = nullptr;   ///< T blocks of hidden x lanes (W_nh h + b_nh)
  double* hiddens = nullptr;  ///< T blocks of hidden x lanes
};

GruBatchTrace gru_forward_batched(const GruLayer& layer, const double* xblocks,
                                  const BatchSpec& spec, Workspace& ws);

/// Destination matrices for GRU parameter gradients (all null to skip).
struct GruGrads {
  Matrix* dw_gates = nullptr;
  Matrix* db_gates = nullptr;
  Matrix* dw_nx = nullptr;
  Matrix* dw_nh = nullptr;
  Matrix* db_nx = nullptr;
  Matrix* db_nh = nullptr;
};

void gru_backward_batched(const GruLayer& layer, const GruBatchTrace& trace,
                          const BatchSpec& spec, const double* dh_last,
                          const double* dh_blocks, double* dx_blocks,
                          const GruGrads& grads, Workspace& ws);

}  // namespace trajkit::nn::kernels
