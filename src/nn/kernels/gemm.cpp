#include "nn/kernels/gemm.hpp"

#include <algorithm>
#include <cstring>

namespace trajkit::nn::kernels {

namespace {

// Lane-wise SIMD spelled out with GCC vector extensions.  A v8df operation is
// eight independent scalar IEEE operations, one per lane, so every accumulator
// below is still one single-chain reduction per output element in the
// reference order — the vectors only run *independent* output elements side
// by side, never the reduction dimension.  (Left to its own devices the
// compiler vectorised these loops along k, building 8x8 vpermt2pd transposes
// per block — slower than the naive reference.  Explicit lanes pin the
// codegen to broadcast-multiply-add.)
typedef double v8df __attribute__((vector_size(64), may_alias));

inline v8df splat(double x) { return v8df{x, x, x, x, x, x, x, x}; }

inline v8df loadu(const double* p) {
  v8df v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void storeu(double* p, v8df v) { std::memcpy(p, &v, sizeof(v)); }

// Shared packing loop: src(r, k) with `rows` x `depth` logical shape, fetched
// through an indexer so the same code packs both W and W^T.
template <typename At>
void pack_into(std::size_t rows, std::size_t depth, At at, double* out) {
  const std::size_t npanels = (rows + kPanel - 1) / kPanel;
  for (std::size_t p = 0; p < npanels; ++p) {
    double* panel = out + p * depth * kPanel;
    const std::size_t r0 = p * kPanel;
    const std::size_t valid = std::min(rows - r0, kPanel);
    for (std::size_t k = 0; k < depth; ++k) {
      double* slice = panel + k * kPanel;
      for (std::size_t j = 0; j < valid; ++j) slice[j] = at(r0 + j, k);
      for (std::size_t j = valid; j < kPanel; ++j) slice[j] = 0.0;
    }
  }
}

/// Seed one panel's accumulator from the destination (convention 2); padded
/// tail lanes start at zero and are never written back.
inline v8df seed_panel(const Packed& p, const double* y, std::size_t pi) {
  const std::size_t r0 = pi * kPanel;
  const std::size_t valid = std::min(p.rows - r0, kPanel);
  double tmp[kPanel] = {};
  for (std::size_t j = 0; j < valid; ++j) tmp[j] = y[r0 + j];
  return loadu(tmp);
}

inline void flush_panel(const Packed& p, double* y, std::size_t pi, v8df acc) {
  const std::size_t r0 = pi * kPanel;
  const std::size_t valid = std::min(p.rows - r0, kPanel);
  double tmp[kPanel];
  storeu(tmp, acc);
  for (std::size_t j = 0; j < valid; ++j) y[r0 + j] = tmp[j];
}

inline void flush_panel_bias(const Packed& p, const double* bias, double* y,
                             std::size_t pi, v8df acc) {
  const std::size_t r0 = pi * kPanel;
  const std::size_t valid = std::min(p.rows - r0, kPanel);
  double tmp[kPanel];
  storeu(tmp, acc);
  for (std::size_t j = 0; j < valid; ++j) {
    y[r0 + j] = (bias ? bias[r0 + j] : 0.0) + tmp[j];
  }
}

}  // namespace

std::size_t packed_doubles(std::size_t rows, std::size_t depth) {
  return ((rows + kPanel - 1) / kPanel) * depth * kPanel;
}

Packed pack_rows_at(const Matrix& m, double* out) {
  const double* d = m.data();
  const std::size_t cols = m.cols();
  pack_into(
      m.rows(), cols, [d, cols](std::size_t r, std::size_t k) { return d[r * cols + k]; },
      out);
  return Packed{out, m.rows(), cols};
}

Packed pack_transpose_at(const Matrix& m, double* out) {
  const double* d = m.data();
  const std::size_t cols = m.cols();
  pack_into(
      m.cols(), m.rows(),
      [d, cols](std::size_t r, std::size_t k) { return d[k * cols + r]; }, out);
  return Packed{out, m.cols(), m.rows()};
}

Packed pack_rows(const Matrix& m, Workspace& ws) {
  return pack_rows_at(m, ws.take(packed_doubles(m.rows(), m.cols())));
}

Packed pack_transpose(const Matrix& m, Workspace& ws) {
  return pack_transpose_at(m, ws.take(packed_doubles(m.cols(), m.rows())));
}

void gemv_wx(const Packed& p, const double* bias, const double* x, double* y) {
  const std::size_t npanels = p.panels();
  const std::size_t depth = p.depth;
  const std::size_t pstride = depth * kPanel;
  std::size_t pi = 0;
  // Four panels in flight: four independent add chains hide the latency a
  // single sequential accumulator would expose.
  for (; pi + 4 <= npanels; pi += 4) {
    const double* w = p.data + pi * pstride;
    v8df a0 = {}, a1 = {}, a2 = {}, a3 = {};
    for (std::size_t k = 0; k < depth; ++k) {
      const v8df xv = splat(x[k]);
      const double* wk = w + k * kPanel;
      a0 += loadu(wk) * xv;
      a1 += loadu(wk + pstride) * xv;
      a2 += loadu(wk + 2 * pstride) * xv;
      a3 += loadu(wk + 3 * pstride) * xv;
    }
    flush_panel_bias(p, bias, y, pi, a0);
    flush_panel_bias(p, bias, y, pi + 1, a1);
    flush_panel_bias(p, bias, y, pi + 2, a2);
    flush_panel_bias(p, bias, y, pi + 3, a3);
  }
  for (; pi < npanels; ++pi) {
    const double* w = p.data + pi * pstride;
    v8df acc = {};
    for (std::size_t k = 0; k < depth; ++k) {
      acc += loadu(w + k * kPanel) * splat(x[k]);
    }
    flush_panel_bias(p, bias, y, pi, acc);
  }
}

void gemm_wx8(const Packed& p, const double* bias, const double* x, double* y) {
  const std::size_t npanels = p.panels();
  const std::size_t depth = p.depth;
  for (std::size_t pi = 0; pi < npanels; ++pi) {
    const double* w = p.data + pi * depth * kPanel;
    const std::size_t r0 = pi * kPanel;
    const std::size_t valid = std::min(p.rows - r0, kPanel);
    // 8 rows x 8 lanes of independent accumulators per panel: the activation
    // block is loaded once per k and fans out to eight broadcast-multiply-add
    // chains (AVX-512 has the registers; narrower targets just spill a bit).
    v8df acc[kPanel] = {};
    for (std::size_t k = 0; k < depth; ++k) {
      const v8df xv = loadu(x + k * kLanes);
      const double* wk = w + k * kPanel;
      acc[0] += splat(wk[0]) * xv;
      acc[1] += splat(wk[1]) * xv;
      acc[2] += splat(wk[2]) * xv;
      acc[3] += splat(wk[3]) * xv;
      acc[4] += splat(wk[4]) * xv;
      acc[5] += splat(wk[5]) * xv;
      acc[6] += splat(wk[6]) * xv;
      acc[7] += splat(wk[7]) * xv;
    }
    for (std::size_t j = 0; j < valid; ++j) {
      const std::size_t r = r0 + j;
      storeu(y + r * kLanes, splat(bias ? bias[r] : 0.0) + acc[j]);
    }
  }
}

void gemv_accseq(const Packed& p, const double* x, double* y) {
  const std::size_t npanels = p.panels();
  const std::size_t depth = p.depth;
  const std::size_t pstride = depth * kPanel;
  std::size_t pi = 0;
  // The destination seeds the accumulator: ((y + a_0) + a_1) + ... exactly
  // as the reference adds one contribution per weight row.
  for (; pi + 4 <= npanels; pi += 4) {
    const double* w = p.data + pi * pstride;
    v8df a0 = seed_panel(p, y, pi);
    v8df a1 = seed_panel(p, y, pi + 1);
    v8df a2 = seed_panel(p, y, pi + 2);
    v8df a3 = seed_panel(p, y, pi + 3);
    for (std::size_t k = 0; k < depth; ++k) {
      const v8df xv = splat(x[k]);
      const double* wk = w + k * kPanel;
      a0 += loadu(wk) * xv;
      a1 += loadu(wk + pstride) * xv;
      a2 += loadu(wk + 2 * pstride) * xv;
      a3 += loadu(wk + 3 * pstride) * xv;
    }
    flush_panel(p, y, pi, a0);
    flush_panel(p, y, pi + 1, a1);
    flush_panel(p, y, pi + 2, a2);
    flush_panel(p, y, pi + 3, a3);
  }
  for (; pi < npanels; ++pi) {
    const double* w = p.data + pi * pstride;
    v8df acc = seed_panel(p, y, pi);
    for (std::size_t k = 0; k < depth; ++k) {
      acc += loadu(w + k * kPanel) * splat(x[k]);
    }
    flush_panel(p, y, pi, acc);
  }
}

void gemm_accseq8(const Packed& p, const double* x, double* y) {
  const std::size_t npanels = p.panels();
  const std::size_t depth = p.depth;
  for (std::size_t pi = 0; pi < npanels; ++pi) {
    const double* w = p.data + pi * depth * kPanel;
    const std::size_t r0 = pi * kPanel;
    const std::size_t valid = std::min(p.rows - r0, kPanel);
    // Destination-seeded full panel, same 8-chain shape as gemm_wx8.
    v8df acc[kPanel] = {};
    for (std::size_t j = 0; j < valid; ++j) acc[j] = loadu(y + (r0 + j) * kLanes);
    for (std::size_t k = 0; k < depth; ++k) {
      const v8df xv = loadu(x + k * kLanes);
      const double* wk = w + k * kPanel;
      acc[0] += splat(wk[0]) * xv;
      acc[1] += splat(wk[1]) * xv;
      acc[2] += splat(wk[2]) * xv;
      acc[3] += splat(wk[3]) * xv;
      acc[4] += splat(wk[4]) * xv;
      acc[5] += splat(wk[5]) * xv;
      acc[6] += splat(wk[6]) * xv;
      acc[7] += splat(wk[7]) * xv;
    }
    for (std::size_t j = 0; j < valid; ++j) storeu(y + (r0 + j) * kLanes, acc[j]);
  }
}

void gemm_acc_tdesc(const double* a, std::size_t rows, std::size_t tsteps,
                    const double* bm, std::size_t cols, std::size_t t_stop,
                    Matrix& dw) {
  // Four dw rows share one walk of the t dimension: their accumulators are
  // independent chains (distinct output elements), and the bm row loaded per
  // timestep is reused fourfold.
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* ar0 = a + r * tsteps;
    const double* ar1 = a + (r + 1) * tsteps;
    const double* ar2 = a + (r + 2) * tsteps;
    const double* ar3 = a + (r + 3) * tsteps;
    double* dw0 = dw.row(r);
    double* dw1 = dw.row(r + 1);
    double* dw2 = dw.row(r + 2);
    double* dw3 = dw.row(r + 3);
    std::size_t c = 0;
    for (; c + kLanes <= cols; c += kLanes) {
      v8df a0 = loadu(dw0 + c), a1 = loadu(dw1 + c);
      v8df a2 = loadu(dw2 + c), a3 = loadu(dw3 + c);
      for (std::size_t t = tsteps; t-- > t_stop;) {
        const v8df bt = loadu(bm + t * cols + c);
        a0 += splat(ar0[t]) * bt;
        a1 += splat(ar1[t]) * bt;
        a2 += splat(ar2[t]) * bt;
        a3 += splat(ar3[t]) * bt;
      }
      storeu(dw0 + c, a0);
      storeu(dw1 + c, a1);
      storeu(dw2 + c, a2);
      storeu(dw3 + c, a3);
    }
    for (; c < cols; ++c) {
      double s0 = dw0[c], s1 = dw1[c], s2 = dw2[c], s3 = dw3[c];
      for (std::size_t t = tsteps; t-- > t_stop;) {
        const double bt = bm[t * cols + c];
        s0 += ar0[t] * bt;
        s1 += ar1[t] * bt;
        s2 += ar2[t] * bt;
        s3 += ar3[t] * bt;
      }
      dw0[c] = s0;
      dw1[c] = s1;
      dw2[c] = s2;
      dw3[c] = s3;
    }
  }
  for (; r < rows; ++r) {
    const double* ar = a + r * tsteps;
    double* dwr = dw.row(r);
    std::size_t c = 0;
    for (; c + kLanes <= cols; c += kLanes) {
      v8df acc = loadu(dwr + c);
      for (std::size_t t = tsteps; t-- > t_stop;) {
        acc += splat(ar[t]) * loadu(bm + t * cols + c);
      }
      storeu(dwr + c, acc);
    }
    for (; c < cols; ++c) {
      double acc = dwr[c];
      for (std::size_t t = tsteps; t-- > t_stop;) {
        acc += ar[t] * bm[t * cols + c];
      }
      dwr[c] = acc;
    }
  }
}

void rowsum_acc_tdesc(const double* a, std::size_t rows, std::size_t tsteps,
                      Matrix& db) {
  // Four rows per pass: four independent t-descending chains.
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* ar0 = a + r * tsteps;
    const double* ar1 = a + (r + 1) * tsteps;
    const double* ar2 = a + (r + 2) * tsteps;
    const double* ar3 = a + (r + 3) * tsteps;
    double s0 = db(r, 0), s1 = db(r + 1, 0), s2 = db(r + 2, 0), s3 = db(r + 3, 0);
    for (std::size_t t = tsteps; t-- > 0;) {
      s0 += ar0[t];
      s1 += ar1[t];
      s2 += ar2[t];
      s3 += ar3[t];
    }
    db(r, 0) = s0;
    db(r + 1, 0) = s1;
    db(r + 2, 0) = s2;
    db(r + 3, 0) = s3;
  }
  for (; r < rows; ++r) {
    const double* ar = a + r * tsteps;
    double acc = db(r, 0);
    for (std::size_t t = tsteps; t-- > 0;) acc += ar[t];
    db(r, 0) = acc;
  }
}

}  // namespace trajkit::nn::kernels
