// Quantized batched LSTM forward — the inference-only serving lane.
//
// Mirrors lstm_forward_batched (rnn_batched.hpp) structurally: lane-minor
// blocks of kLanes = 8 trajectories, ragged lengths zero-padded, one GEMM
// per timestep per weight half.  Differences, all covered by the QuantGate
// accuracy check at the model level (nn/quant_classifier.hpp):
//
//  - The weight matrix is split at the x/h column boundary and each half is
//    quantized with its own per-gate scales (input features and recurrent
//    state have very different ranges; a shared scale would waste most of
//    the int8 grid on whichever half is larger).  The two int64 accumulator
//    blocks dequantize separately and meet in the fused gate loop:
//      z = bias + acc_x * (sw_x[gate] * sx) + acc_h * (sw_h[gate] * sh)
//  - Activations quantize to int8 against *static* per-layer scales (sx for
//    the layer input, sh for its own recurrent state) measured by the
//    calibration pass; out-of-range values saturate.
//  - Gate activations are the fast polynomial sigmoid/tanh (quant.hpp), not
//    libm, and cell/hidden state stays in double.
//
// No trace, no backward: training stays on the bit-exact fp64 path.
#pragma once

#include <cstddef>

#include "nn/kernels/quant.hpp"
#include "nn/kernels/rnn_batched.hpp"

namespace trajkit::nn::kernels {

/// Non-owning view of one quantized LSTM layer (storage lives in the model,
/// see nn/quant_classifier.hpp).  wx packs the 4H x I input half, wh the
/// 4H x H recurrent half, both in the VNNI dot-product layout for `mode`'s
/// weight width.  Scales are per gate in [i, f, g, o] order.  int8 mode
/// additionally carries each pack's per-row coefficient sums (derived at
/// build/load time) for the offset-binary activation correction.
struct QuantLstmLayerView {
  QuantMode mode = QuantMode::kInt16;
  const void* wx = nullptr;
  const void* wh = nullptr;
  const qi64* wx_row_sums = nullptr;  ///< int8 mode only, 4*hidden entries
  const qi64* wh_row_sums = nullptr;  ///< int8 mode only, 4*hidden entries
  const double* bias = nullptr;       ///< 4*hidden doubles
  double sw_x[4] = {1, 1, 1, 1};
  double sw_h[4] = {1, 1, 1, 1};
  double sx = 1.0;  ///< static input-activation scale
  double sh = 1.0;  ///< static recurrent-activation scale
  std::size_t input = 0;
  std::size_t hidden = 0;
};

/// Forward over a ragged batch.  `xblocks` holds max_steps blocks of
/// input x kLanes doubles, dead lanes zero-padded (same layout the fp64
/// runner takes).  Requires spec.lanes == kLanes — the quant lane exists to
/// batch, the single-lane fast path stays fp64.  Returns the workspace-owned
/// hidden history: max_steps blocks of hidden x kLanes doubles (a stacked
/// layer feeds it back in as its xblocks; the caller reads each sample's
/// last-step lane for the head).
double* lstm_forward_quant(const QuantLstmLayerView& layer,
                           const double* xblocks, const BatchSpec& spec,
                           Workspace& ws);

}  // namespace trajkit::nn::kernels
