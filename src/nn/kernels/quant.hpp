// Quantized inference primitives for the verification hot path.
//
// The fp64 kernels (gemm.hpp) are the bit-exact oracle; everything here is
// the reduced-precision serving lane behind the QuantGate accuracy check
// (nn/quant_classifier.hpp).  Three pieces:
//
//  - Symmetric weight quantization + dot-product packing.  Weights quantize
//    to int8 or int16 with one scale per row (callers pass per-gate scales
//    broadcast over each gate's row range): q = clamp(round(w / s)).  The
//    packed layout is NOT the fp64 panel scheme: rows group in blocks of
//    kQuantGroup = 16 and the depth axis interleaves in dword-sized runs
//    (4 int8 or 2 int16 coefficients), so each 64-byte slice of the pack
//    holds one dword of 16 consecutive rows.  That is exactly the operand
//    shape of the AVX512-VNNI dot-product instructions (vpdpbusd /
//    vpdpwssd): one weight load + one activation broadcast per 64/32 MACs,
//    versus one broadcast per 8 MACs in the fp64 panel loop.  On VNNI
//    hardware the int8 GEMM runs several times *faster* than the fp64
//    GEMM while touching 8x less weight memory; a portable scalar walk of
//    the same layout (bit-identical results — integer sums are exact in any
//    order) serves as the fallback elsewhere.
//
//  - Int GEMM, kLanes = 8 batch columns, int8 activations.  vpdpbusd is
//    unsigned x signed, so int8-mode activations carry a +128 offset
//    (offset-binary uint8) and the kernel subtracts 128 * rowsum(weights)
//    from each accumulator — the row sums are derived from the pack at
//    build/load time, never serialized.  int16 mode keeps signed int16
//    activations (vpdpwssd is signed x signed) and needs no correction.
//    Accumulation overflow is impossible by construction: int8 partials are
//    bounded by 255 * 127 * depth (depth <= 65536 fits int32), int16
//    partials spill to int64 every 512 depth.
//
//  - Fast vectorized activations.  The quant forward dequantizes gate
//    pre-activations into doubles and applies polynomial exp-based
//    sigmoid/tanh (~5e-9 relative error) on 8 lanes at once.  At small
//    hidden sizes the scalar libm calls dominate the fp64 forward and this
//    fusion carries the speedup; at large hidden sizes the VNNI GEMM does.
//    The approximation error is orders of magnitude below the int8 weight
//    rounding error the gate already budgets for.
//
// Rounding contract: quantization rounds half away from zero
// (q = trunc(x/s ± 0.5)), implemented identically in the scalar and vector
// paths, so calibration and serving produce the same integers on every
// thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "nn/kernels/align.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/matrix.hpp"

namespace trajkit::nn::kernels {

/// Quantized weight width.  Activations are int8 in both modes.
enum class QuantMode : std::uint8_t {
  kInt8 = 0,   ///< weights int8  (|q| <= 127)
  kInt16 = 1,  ///< weights int16 (|q| <= 32767)
};

/// May-alias scalar views: quantized scratch lives in the double Workspace
/// arena and packed weights in byte buffers, so every access goes through
/// these typedefs.  qu8 is the offset-binary activation view (int8 q + 128)
/// the unsigned-by-signed VNNI dot product consumes.
typedef std::int8_t qi8 __attribute__((may_alias));
typedef std::uint8_t qu8 __attribute__((may_alias));
typedef std::int16_t qi16 __attribute__((may_alias));
typedef std::int32_t qi32 __attribute__((may_alias));
typedef std::int64_t qi64 __attribute__((may_alias));

// Vector lanes, same spelling as the fp64 kernels (gemm.cpp keeps its typedef
// private; the quant elementwise fusion needs them across TUs).
typedef double v8df __attribute__((vector_size(64), may_alias));
typedef std::int64_t v8di __attribute__((vector_size(64), may_alias));
typedef std::int32_t v8si __attribute__((vector_size(32), may_alias));
typedef std::int8_t v8qi __attribute__((vector_size(8), may_alias));

inline v8df vsplat(double x) { return v8df{x, x, x, x, x, x, x, x}; }

inline v8df vload(const double* p) {
  v8df v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void vstore(double* p, v8df v) { std::memcpy(p, &v, sizeof(v)); }

/// int64 accumulator lanes -> doubles (exact: |acc| < 2^53 always).
inline v8df vcvt_i64(const qi64* p) {
  v8di v;
  std::memcpy(&v, p, sizeof(v));
  return __builtin_convertvector(v, v8df);
}

/// Quantization maximum for a mode's weights.
inline std::int32_t quant_qmax(QuantMode mode) {
  return mode == QuantMode::kInt8 ? 127 : 32767;
}

/// Activation quantization maximum (activations are always 8-bit grid).
inline constexpr std::int32_t kActQmax = 127;

/// Rows per weight group in the quant pack: one zmm of int32 accumulators.
inline constexpr std::size_t kQuantGroup = 16;

/// The depth axis pads to a whole number of int8 dwords in both modes (int16
/// packs two coefficients per dword but shares the 4-element quantum so the
/// element count is mode-free).
inline std::size_t quant_depth_pad(std::size_t depth) {
  return (depth + 3) & ~std::size_t(3);
}

/// Elements (int8 or int16 each) needed to pack a rows x depth quant
/// operand: rows pad to kQuantGroup, depth to the dword quantum.
inline std::size_t quant_packed_elems(std::size_t rows, std::size_t depth) {
  return ((rows + kQuantGroup - 1) / kQuantGroup) * kQuantGroup *
         quant_depth_pad(depth);
}

/// Bytes of that pack for a mode (for sizing aligned byte buffers).
inline std::size_t quant_packed_bytes(std::size_t rows, std::size_t depth,
                                      QuantMode mode) {
  return quant_packed_elems(rows, depth) *
         (mode == QuantMode::kInt8 ? sizeof(qi8) : sizeof(qi16));
}

/// Scalar reference for the quantization rounding contract: round half away
/// from zero after clamping to ±qmax.  The vector paths below compute the
/// exact same operation lane-wise.
inline std::int32_t quantize_value(double x, double inv_scale,
                                   std::int32_t qmax) {
  double t = x * inv_scale;
  const double q = static_cast<double>(qmax);
  t = t > q ? q : (t < -q ? -q : t);
  t += t >= 0.0 ? 0.5 : -0.5;
  return static_cast<std::int32_t>(t);  // truncation completes half-away
}

/// Largest |m(r, c)| over rows [r0, r1) x cols [c0, c1); 0 for empty ranges.
double max_abs_block(const Matrix& m, std::size_t r0, std::size_t r1,
                     std::size_t c0, std::size_t c1);

/// Quantize + VNNI-pack the column slice [c0, c1) of `m` (all rows) with a
/// per-row scale: pack element (r, k) = quantize(m(r, c0 + k) / row_scale[r]).
/// Layout: row group g, dword run d, row-in-group j, coefficient-in-dword c
/// at offset ((g * runs + d) * kQuantGroup + j) * per_dword + c, where
/// per_dword is 4 for int8 and 2 for int16.  Tail rows and padded depth are
/// zero.  `out` must hold quant_packed_elems(m.rows(), c1 - c0) elements and
/// both m's storage and `out` must be 64-byte aligned — misalignment throws
/// (require_aligned64) instead of silently degrading.
void pack_quant_rows_i8(const Matrix& m, std::size_t c0, std::size_t c1,
                        const double* row_inv_scale, qi8* out);
void pack_quant_rows_i16(const Matrix& m, std::size_t c0, std::size_t c1,
                         const double* row_inv_scale, qi16* out);

/// Per-row coefficient sums of an int8 pack (rows int64s, tail rows of the
/// last group excluded).  Derived data for the offset-binary activation
/// correction — computed after pack/load, never serialized.
void quant_row_sums_i8(const qi8* pack, std::size_t rows, std::size_t depth,
                       qi64* out);

/// Quantize n doubles to int8 with one scale (vectorized, any n; scalar tail
/// matches the vector lanes bit for bit per the rounding contract).
void quantize_i8(const double* x, std::size_t n, double inv_scale, qi8* out);

/// Quantize one lane-minor activation block (depth x kLanes doubles, the
/// fp64 runner layout) into the lane-major image the quant GEMM reads:
/// out[l * depth_pad + k] for lane l.  The u8 variant stores q + 128
/// (offset-binary, pad byte 128 == q 0); the i16 variant stores q signed
/// (pad 0).  Rounding matches quantize_value per the contract.
void quantize_act_u8(const double* block, std::size_t depth,
                     std::size_t depth_pad, double inv_scale, qu8* out);
void quantize_act_i16(const double* block, std::size_t depth,
                      std::size_t depth_pad, double inv_scale, qi16* out);

/// Int GEMM, convention "wx", kLanes = 8 batch columns:
///   acc[r*8 + l] = sum_k w[r, k] * x_q[l, k]   (int64, overwritten)
/// `w` is a quant pack (pack_quant_rows_*), `depth_pad` its padded depth
/// (quant_depth_pad of the logical depth; the zero-padded tail contributes
/// nothing).  int8 activations arrive offset-binary (quantize_act_u8) with
/// the pack's row sums for the -128 correction; int16 activations arrive
/// signed (quantize_act_i16).  `acc` holds rows * 8 int64 — group tail rows
/// are not written.  Bias and dequantization are the caller's (fused into
/// the gate loop in rnn_quant.cpp).  int8 requires depth_pad <= 65536 so a
/// whole row fits one int32 accumulator chunk (throws otherwise).
void gemm_q8x8(const qi8* w, const qi64* row_sums, std::size_t rows,
               std::size_t depth_pad, const qu8* x, qi64* acc);
void gemm_q16x8(const qi16* w, std::size_t rows, std::size_t depth_pad,
                const qi16* x, qi64* acc);

/// Workspace carve-outs for quantized scratch: the arena hands out doubles,
/// these reinterpret whole 64-byte-aligned blocks.
inline qi8* take_i8(Workspace& ws, std::size_t n) {
  return reinterpret_cast<qi8*>(ws.take((n + 7) / 8));
}
inline qu8* take_u8(Workspace& ws, std::size_t n) {
  return reinterpret_cast<qu8*>(ws.take((n + 7) / 8));
}
inline qi16* take_i16(Workspace& ws, std::size_t n) {
  return reinterpret_cast<qi16*>(ws.take((n + 3) / 4));
}
inline qi64* take_i64(Workspace& ws, std::size_t n) {
  return reinterpret_cast<qi64*>(ws.take(n));
}

// ---------------------------------------------------------------------------
// Fast vectorized activations (inference lane only — never the fp64 oracle).
// ---------------------------------------------------------------------------

/// exp(x) on 8 lanes: range-reduced 2^k * e^r with a degree-7 polynomial on
/// r in [-ln2/2, ln2/2]; ~5e-9 relative error, monotone clamp at ±708.
inline v8df fast_exp8(v8df x) {
  const v8df hi = vsplat(708.0), lo = vsplat(-708.0);
  x = x > hi ? hi : x;
  x = x < lo ? lo : x;
  const v8df t = x * vsplat(1.4426950408889634074);  // x * log2(e)
  // Round to nearest via the shift trick (|t| < 1022 so the low mantissa
  // bits of t + 1.5*2^52 hold the rounded integer exactly).
  const v8df magic = vsplat(6755399441055744.0);
  const v8df kf = (t + magic) - magic;
  const v8di ki = __builtin_convertvector(kf, v8di);
  // r = x - k*ln2, split high/low to keep the reduction exact.
  const v8df r = (x - kf * vsplat(6.93147180369123816490e-01)) -
                 kf * vsplat(1.90821492927058770002e-10);
  // e^r, Horner degree 7 (Taylor; max rel err ~5e-9 on the reduced range).
  v8df p = vsplat(1.0 / 5040.0);
  p = p * r + vsplat(1.0 / 720.0);
  p = p * r + vsplat(1.0 / 120.0);
  p = p * r + vsplat(1.0 / 24.0);
  p = p * r + vsplat(1.0 / 6.0);
  p = p * r + vsplat(0.5);
  p = p * r + vsplat(1.0);
  p = p * r + vsplat(1.0);
  // 2^k by exponent-field construction (k in [-1022, 1022] after the clamp).
  const v8di bits = (ki + 1023) << 52;
  v8df two_k;
  std::memcpy(&two_k, &bits, sizeof(two_k));
  return p * two_k;
}

/// Numerically safe sigmoid on 8 lanes (same structure as nn::sigmoid:
/// exp of a non-positive argument, then one division).
inline v8df fast_sigmoid8(v8df x) {
  const v8df zero = vsplat(0.0);
  const v8df neg = x >= zero ? -x : x;  // -|x|
  const v8df e = fast_exp8(neg);
  const v8df num = x >= zero ? vsplat(1.0) : e;
  return num / (vsplat(1.0) + e);
}

/// tanh on 8 lanes via e^{-2|x|}.
inline v8df fast_tanh8(v8df x) {
  const v8df zero = vsplat(0.0);
  const v8df ax = x >= zero ? x : -x;
  const v8df e2 = fast_exp8(vsplat(-2.0) * ax);
  const v8df t = (vsplat(1.0) - e2) / (vsplat(1.0) + e2);
  return x >= zero ? t : -t;
}

/// Scalar views of the fast activations (tests/benches): lane 0 of the
/// vector op, so scalar and vector answers are identical by construction.
inline double fast_sigmoid(double x) { return fast_sigmoid8(vsplat(x))[0]; }
inline double fast_tanh(double x) { return fast_tanh8(vsplat(x))[0]; }
inline double fast_exp(double x) { return fast_exp8(vsplat(x))[0]; }

}  // namespace trajkit::nn::kernels
