#include "nn/kernels/rnn_batched.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace trajkit::nn::kernels {

namespace {

void check_spec(const BatchSpec& spec) {
  if (spec.batch == 0 || spec.max_steps == 0 || spec.steps == nullptr) {
    throw std::invalid_argument("rnn_batched: empty batch");
  }
  if (spec.lanes != 1 && spec.lanes != kLanes) {
    throw std::invalid_argument("rnn_batched: lanes must be 1 or kLanes");
  }
  if (spec.batch > spec.lanes) {
    throw std::invalid_argument("rnn_batched: batch exceeds lanes");
  }
  for (std::size_t b = 0; b < spec.batch; ++b) {
    if (spec.steps[b] == 0 || spec.steps[b] > spec.max_steps) {
      throw std::invalid_argument("rnn_batched: bad sample length");
    }
  }
}

/// Upstream-gradient injection shared by both cells.  At a sample's last step
/// the reference *assigns* dh (it copies the final dh_seq block), so lanes are
/// assigned there — this also scrubs any dead-lane garbage before live math.
/// Earlier live steps add the (possibly zero) per-step injection, exactly
/// like the reference's `dh[k] += inject[k]`.
void inject_dh(const BatchSpec& spec, std::size_t hidden, std::size_t t,
               const double* dh_last, const double* dh_blocks, double* dh,
               double* dc /* may be null (GRU) */) {
  const std::size_t L = spec.lanes;
  for (std::size_t b = 0; b < spec.batch; ++b) {
    const std::size_t last = spec.steps[b] - 1;
    if (last == t) {
      for (std::size_t k = 0; k < hidden; ++k) {
        dh[k * L + b] = dh_last ? dh_last[b * hidden + k]
                                : dh_blocks[t * hidden * L + k * L + b];
        if (dc) dc[k * L + b] = 0.0;
      }
    } else if (last > t && dh_blocks) {
      for (std::size_t k = 0; k < hidden; ++k) {
        dh[k * L + b] += dh_blocks[t * hidden * L + k * L + b];
      }
    }
    // Note: in dh_last mode the reference adds a literal zero injection at
    // every non-final step.  The recurrent dh is built by zero-seeded
    // sequential sums, which can never produce -0.0, so skipping the += 0.0
    // is bit-identical.
  }
}

/// Gather one sample's lane out of `count` lane-minor blocks of `rows` rows
/// into a dense (rows-major, stride `rows`) matrix of t columns — operand
/// layout for the t-descending gradient GEMMs.
void gather_rows_t(const double* blocks, std::size_t rows, std::size_t lanes,
                   std::size_t block_stride, std::size_t tsteps, std::size_t lane,
                   double* out) {
  for (std::size_t t = 0; t < tsteps; ++t) {
    const double* blk = blocks + t * block_stride;
    for (std::size_t r = 0; r < rows; ++r) out[r * tsteps + t] = blk[r * lanes + lane];
  }
}

/// Gather one sample's lane into a (tsteps x cols) row-major matrix.
void gather_t_cols(const double* blocks, std::size_t cols, std::size_t lanes,
                   std::size_t block_stride, std::size_t tsteps, std::size_t lane,
                   double* out) {
  for (std::size_t t = 0; t < tsteps; ++t) {
    const double* blk = blocks + t * block_stride;
    for (std::size_t c = 0; c < cols; ++c) out[t * cols + c] = blk[c * lanes + lane];
  }
}

}  // namespace

LstmBatchTrace lstm_forward_batched(const LstmLayer& layer, const double* xblocks,
                                    const BatchSpec& spec, Workspace& ws,
                                    const LstmPacks* packs) {
  check_spec(spec);
  const std::size_t I = layer.input_dim();
  const std::size_t H = layer.hidden_dim();
  const std::size_t L = spec.lanes;
  const std::size_t T = spec.max_steps;

  const Packed pw = packs ? packs->rows : pack_rows(layer.weights(), ws);
  const double* bias = layer.bias().data();

  LstmBatchTrace tr;
  tr.input = I;
  tr.hidden = H;
  tr.xin = ws.take(T * (I + H) * L);
  tr.gates = ws.take(T * 4 * H * L);
  tr.cells = ws.take(T * H * L);
  tr.tanh_cells = ws.take(T * H * L);
  tr.hiddens = ws.take(T * H * L);

  for (std::size_t t = 0; t < T; ++t) {
    double* xin = tr.xin + t * (I + H) * L;
    std::memcpy(xin, xblocks + t * I * L, I * L * sizeof(double));
    if (t > 0) {
      std::memcpy(xin + I * L, tr.hiddens + (t - 1) * H * L, H * L * sizeof(double));
    } else {
      std::memset(xin + I * L, 0, H * L * sizeof(double));
    }

    double* z = tr.gates + t * 4 * H * L;
    gemm_wx_l(pw, bias, xin, z, L);

    double* c = tr.cells + t * H * L;
    double* tc = tr.tanh_cells + t * H * L;
    double* h = tr.hiddens + t * H * L;
    const double* c_prev = t > 0 ? tr.cells + (t - 1) * H * L : nullptr;
    const std::size_t HL = H * L;
    for (std::size_t e = 0; e < HL; ++e) {
      const double i_g = sigmoid(z[e]);
      const double f_g = sigmoid(z[HL + e]);
      const double g_g = std::tanh(z[2 * HL + e]);
      const double o_g = sigmoid(z[3 * HL + e]);
      z[e] = i_g;
      z[HL + e] = f_g;
      z[2 * HL + e] = g_g;
      z[3 * HL + e] = o_g;
      const double cp = c_prev ? c_prev[e] : 0.0;
      c[e] = f_g * cp + i_g * g_g;
      tc[e] = std::tanh(c[e]);
      h[e] = o_g * tc[e];
    }
  }
  return tr;
}

void lstm_backward_batched(const LstmLayer& layer, const LstmBatchTrace& trace,
                           const BatchSpec& spec, const double* dh_last,
                           const double* dh_blocks, double* dx_blocks,
                           const LstmGrads& grads, Workspace& ws,
                           const LstmPacks* packs) {
  check_spec(spec);
  if ((dh_last == nullptr) == (dh_blocks == nullptr)) {
    throw std::invalid_argument(
        "lstm_backward_batched: exactly one of dh_last / dh_blocks");
  }
  const std::size_t I = trace.input;
  const std::size_t H = trace.hidden;
  const std::size_t L = spec.lanes;
  const std::size_t T = spec.max_steps;
  const std::size_t HL = H * L;
  const bool want_grads = grads.dw != nullptr;

  const Packed pwt = packs ? packs->transpose : pack_transpose(layer.weights(), ws);
  double* dh = ws.take_zero(HL);
  double* dc = ws.take_zero(HL);
  double* dzin = ws.take((I + H) * L);
  double* dzbuf = ws.take(want_grads ? T * 4 * HL : 4 * HL);

  for (std::size_t t = T; t-- > 0;) {
    inject_dh(spec, H, t, dh_last, dh_blocks, dh, dc);

    const double* gate = trace.gates + t * 4 * HL;
    const double* tcs = trace.tanh_cells + t * HL;
    const double* c_prev = t > 0 ? trace.cells + (t - 1) * HL : nullptr;
    double* dz = want_grads ? dzbuf + t * 4 * HL : dzbuf;
    for (std::size_t e = 0; e < HL; ++e) {
      const double i_g = gate[e];
      const double f_g = gate[HL + e];
      const double g_g = gate[2 * HL + e];
      const double o_g = gate[3 * HL + e];
      // The forward stored tanh(c_t); same input bits, same libm call, so the
      // load is bit-identical to the reference's recomputation.
      const double tanh_c = tcs[e];
      const double dct = dc[e] + dh[e] * o_g * (1.0 - tanh_c * tanh_c);
      const double cp = c_prev ? c_prev[e] : 0.0;
      dz[e] = dct * g_g * i_g * (1.0 - i_g);
      dz[HL + e] = dct * cp * f_g * (1.0 - f_g);
      dz[2 * HL + e] = dct * i_g * (1.0 - g_g * g_g);
      dz[3 * HL + e] = dh[e] * tanh_c * o_g * (1.0 - o_g);
      dc[e] = dct * f_g;
    }

    // dzin = W^T dz, zero-seeded sequential like the reference.
    const std::size_t ZL = (I + H) * L;
    for (std::size_t e = 0; e < ZL; ++e) dzin[e] = 0.0;
    gemm_accseq_l(pwt, dz, dzin, L);
    if (dx_blocks) {
      std::memcpy(dx_blocks + t * I * L, dzin, I * L * sizeof(double));
    }
    std::memcpy(dh, dzin + I * L, HL * sizeof(double));
  }

  if (want_grads) {
    double* az = ws.take(4 * H * T);
    double* zin = ws.take(T * (I + H));
    for (std::size_t b = 0; b < spec.batch; ++b) {
      const std::size_t ts = spec.steps[b];
      gather_rows_t(dzbuf, 4 * H, L, 4 * HL, ts, b, az);
      gather_t_cols(trace.xin, I + H, L, (I + H) * L, ts, b, zin);
      gemm_acc_tdesc(az, 4 * H, ts, zin, I + H, 0, *grads.dw);
      rowsum_acc_tdesc(az, 4 * H, ts, *grads.db);
    }
  }
}

GruBatchTrace gru_forward_batched(const GruLayer& layer, const double* xblocks,
                                  const BatchSpec& spec, Workspace& ws) {
  check_spec(spec);
  const std::size_t I = layer.input_dim();
  const std::size_t H = layer.hidden_dim();
  const std::size_t L = spec.lanes;
  const std::size_t T = spec.max_steps;
  const std::size_t HL = H * L;

  const Packed pg = pack_rows(layer.gate_weights(), ws);
  const Packed pnh = pack_rows(layer.cand_h_weights(), ws);
  const Packed pnx = pack_rows(layer.cand_x_weights(), ws);
  const double* bg = layer.gate_bias().data();
  const double* bnh = layer.cand_h_bias().data();
  const double* bnx = layer.cand_x_bias().data();

  GruBatchTrace tr;
  tr.input = I;
  tr.hidden = H;
  tr.xin = ws.take(T * (I + H) * L);
  tr.r_gate = ws.take(T * HL);
  tr.z_gate = ws.take(T * HL);
  tr.n_cand = ws.take(T * HL);
  tr.nh_pre = ws.take(T * HL);
  tr.hiddens = ws.take(T * HL);
  double* gates = ws.take(2 * HL);
  double* n_pre = ws.take(HL);

  for (std::size_t t = 0; t < T; ++t) {
    const double* h_prev = t > 0 ? tr.hiddens + (t - 1) * HL : nullptr;
    double* xin = tr.xin + t * (I + H) * L;
    std::memcpy(xin, xblocks + t * I * L, I * L * sizeof(double));
    if (h_prev) {
      std::memcpy(xin + I * L, h_prev, HL * sizeof(double));
    } else {
      std::memset(xin + I * L, 0, HL * sizeof(double));
    }

    gemm_wx_l(pg, bg, xin, gates, L);

    double* nh = tr.nh_pre + t * HL;
    if (h_prev) {
      gemm_wx_l(pnh, bnh, h_prev, nh, L);
    } else {
      // Reference assigns nh = b_nh at t = 0 (no matvec, no add).
      for (std::size_t k = 0; k < H; ++k) {
        for (std::size_t l = 0; l < L; ++l) nh[k * L + l] = bnh[k];
      }
    }
    gemm_wx_l(pnx, bnx, xblocks + t * I * L, n_pre, L);

    double* r = tr.r_gate + t * HL;
    double* z = tr.z_gate + t * HL;
    double* n = tr.n_cand + t * HL;
    double* h = tr.hiddens + t * HL;
    for (std::size_t e = 0; e < HL; ++e) {
      r[e] = sigmoid(gates[e]);
      z[e] = sigmoid(gates[HL + e]);
      n[e] = std::tanh(n_pre[e] + r[e] * nh[e]);
      const double hp = h_prev ? h_prev[e] : 0.0;
      h[e] = (1.0 - z[e]) * n[e] + z[e] * hp;
    }
  }
  return tr;
}

void gru_backward_batched(const GruLayer& layer, const GruBatchTrace& trace,
                          const BatchSpec& spec, const double* dh_last,
                          const double* dh_blocks, double* dx_blocks,
                          const GruGrads& grads, Workspace& ws) {
  check_spec(spec);
  if ((dh_last == nullptr) == (dh_blocks == nullptr)) {
    throw std::invalid_argument(
        "gru_backward_batched: exactly one of dh_last / dh_blocks");
  }
  const std::size_t I = trace.input;
  const std::size_t H = trace.hidden;
  const std::size_t L = spec.lanes;
  const std::size_t T = spec.max_steps;
  const std::size_t HL = H * L;
  const bool want_grads = grads.dw_gates != nullptr;

  const Packed pgT = pack_transpose(layer.gate_weights(), ws);
  const Packed pnhT = pack_transpose(layer.cand_h_weights(), ws);
  const Packed pnxT = pack_transpose(layer.cand_x_weights(), ws);

  double* dh = ws.take_zero(HL);
  double* dh_prev = ws.take(HL);
  double* dzin = ws.take((I + H) * L);
  double* dgates_buf = ws.take(want_grads ? T * 2 * HL : 2 * HL);
  double* dnpre_buf = ws.take(want_grads ? T * HL : HL);
  double* dnh_buf = ws.take(want_grads ? T * HL : HL);

  for (std::size_t t = T; t-- > 0;) {
    inject_dh(spec, H, t, dh_last, dh_blocks, dh, nullptr);

    const double* r = trace.r_gate + t * HL;
    const double* z = trace.z_gate + t * HL;
    const double* n = trace.n_cand + t * HL;
    const double* nh = trace.nh_pre + t * HL;
    const double* h_prev = t > 0 ? trace.hiddens + (t - 1) * HL : nullptr;
    double* dgates = want_grads ? dgates_buf + t * 2 * HL : dgates_buf;
    double* dnpre = want_grads ? dnpre_buf + t * HL : dnpre_buf;
    double* dnh = want_grads ? dnh_buf + t * HL : dnh_buf;

    for (std::size_t e = 0; e < HL; ++e) {
      const double hp = h_prev ? h_prev[e] : 0.0;
      const double dzv = dh[e] * (hp - n[e]) * z[e] * (1.0 - z[e]);
      const double dn = dh[e] * (1.0 - z[e]);
      dnpre[e] = dn * (1.0 - n[e] * n[e]);
      const double dr = dnpre[e] * nh[e] * r[e] * (1.0 - r[e]);
      dgates[e] = dr;
      dgates[HL + e] = dzv;
      dnh[e] = dnpre[e] * r[e];
      // Reference zero-fills dh_prev then adds the carry-through term.
      dh_prev[e] = 0.0 + dh[e] * z[e];
    }

    if (dx_blocks) {
      double* dxb = dx_blocks + t * I * L;
      for (std::size_t e = 0; e < I * L; ++e) dxb[e] = 0.0;
      gemm_accseq_l(pnxT, dnpre, dxb, L);  // dx += W_nx^T dn_pre
    }
    gemm_accseq_l(pnhT, dnh, dh_prev, L);  // dh_prev += W_nh^T dnh

    const std::size_t ZL = (I + H) * L;
    for (std::size_t e = 0; e < ZL; ++e) dzin[e] = 0.0;
    gemm_accseq_l(pgT, dgates, dzin, L);
    if (dx_blocks) {
      double* dxb = dx_blocks + t * I * L;
      for (std::size_t e = 0; e < I * L; ++e) dxb[e] += dzin[e];
    }
    for (std::size_t e = 0; e < HL; ++e) dh_prev[e] += dzin[I * L + e];

    std::memcpy(dh, dh_prev, HL * sizeof(double));
  }

  if (want_grads) {
    double* ah = ws.take(H * T);
    double* a2h = ws.take(2 * H * T);
    double* zin = ws.take(T * (I + H));
    double* xs = ws.take(T * I);
    double* hprevs = ws.take(T * H);
    for (std::size_t b = 0; b < spec.batch; ++b) {
      const std::size_t ts = spec.steps[b];
      // Candidate-x path.
      gather_rows_t(dnpre_buf, H, L, HL, ts, b, ah);
      gather_t_cols(trace.xin, I, L, (I + H) * L, ts, b, xs);
      gemm_acc_tdesc(ah, H, ts, xs, I, 0, *grads.dw_nx);
      rowsum_acc_tdesc(ah, H, ts, *grads.db_nx);
      // Candidate-h path: dw_nh only for t >= 1 (no h_prev at t = 0); db_nh
      // accumulates at every step like the reference.
      gather_rows_t(dnh_buf, H, L, HL, ts, b, ah);
      for (std::size_t t = 1; t < ts; ++t) {
        const double* blk = trace.hiddens + (t - 1) * HL;
        for (std::size_t c = 0; c < H; ++c) hprevs[t * H + c] = blk[c * L + b];
      }
      gemm_acc_tdesc(ah, H, ts, hprevs, H, 1, *grads.dw_nh);
      rowsum_acc_tdesc(ah, H, ts, *grads.db_nh);
      // Gate path.
      gather_rows_t(dgates_buf, 2 * H, L, 2 * HL, ts, b, a2h);
      gather_t_cols(trace.xin, I + H, L, (I + H) * L, ts, b, zin);
      gemm_acc_tdesc(a2h, 2 * H, ts, zin, I + H, 0, *grads.dw_gates);
      rowsum_acc_tdesc(a2h, 2 * H, ts, *grads.db_gates);
    }
  }
}

}  // namespace trajkit::nn::kernels
