// Text (de)serialisation of LstmClassifier: architecture line followed by all
// weight matrices in full precision.  Human-inspectable and
// platform-independent; model files are small (hidden sizes are modest).
//
// On disk the text payload is wrapped in a CRC-framed durable container and
// committed atomically (common/durable), so a crash mid-save can never leave
// a torn model and a flipped byte is a clean load error.  Bare-text files
// from before the container existed still load (back-compat dispatch on the
// file magic).
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/durable/durable_file.hpp"
#include "nn/classifier.hpp"

namespace trajkit::nn {
namespace {

constexpr const char* kMagic = "trajkit_lstm_classifier_v1";
constexpr const char* kDurableTag = "lstm_classifier";
constexpr std::uint32_t kDurableVersion = 1;

// Sanity bounds on a deserialised architecture: generous multiples of
// anything this repo trains, tight enough that a corrupt header cannot make
// the loader allocate gigabytes before the first weight fails to parse.
constexpr std::size_t kMaxDim = 65536;
constexpr std::size_t kMaxLayers = 64;
constexpr std::size_t kMaxMatrixElements = std::size_t{1} << 26;

void write_matrix(std::ostream& os, const Matrix& m) {
  os << m.rows() << ' ' << m.cols() << '\n';
  os << std::setprecision(17);
  for (std::size_t i = 0; i < m.size(); ++i) {
    os << m.data()[i] << (((i + 1) % 8 == 0) ? '\n' : ' ');
  }
  os << '\n';
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(is >> rows >> cols)) throw std::runtime_error("bad matrix header");
  if (rows == 0 || cols == 0 || rows > kMaxMatrixElements ||
      cols > kMaxMatrixElements || rows > kMaxMatrixElements / cols) {
    throw std::runtime_error("implausible matrix shape");
  }
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!(is >> m.data()[i])) throw std::runtime_error("truncated matrix");
    if (!std::isfinite(m.data()[i])) {
      throw std::runtime_error("non-finite weight");
    }
  }
  return m;
}

void copy_into(Matrix& dst, const Matrix& src, const char* what) {
  if (dst.rows() != src.rows() || dst.cols() != src.cols()) {
    throw std::runtime_error(std::string("shape mismatch in ") + what);
  }
  dst = src;
}

}  // namespace

void LstmClassifier::save(std::ostream& os) const {
  os << kMagic << '\n';
  os << config_.input_dim << ' ' << config_.hidden_dim << ' ' << config_.num_layers
     << ' ' << config_.learning_rate << ' ' << config_.grad_clip << ' '
     << config_.batch_size << '\n';
  for (const auto& layer : layers_) {
    write_matrix(os, layer.weights());
    write_matrix(os, layer.bias());
  }
  write_matrix(os, head_.weights());
  write_matrix(os, head_.bias());
}

Expected<LstmClassifier, std::string> LstmClassifier::try_load(std::istream& is) {
  using Result = Expected<LstmClassifier, std::string>;
  std::string magic;
  if (!(is >> magic) || magic != kMagic) {
    return Result::failure("model load: bad magic");
  }
  LstmClassifierConfig cfg;
  if (!(is >> cfg.input_dim >> cfg.hidden_dim >> cfg.num_layers >> cfg.learning_rate >>
        cfg.grad_clip >> cfg.batch_size)) {
    return Result::failure("model load: bad config line");
  }
  if (cfg.input_dim == 0 || cfg.input_dim > kMaxDim || cfg.hidden_dim == 0 ||
      cfg.hidden_dim > kMaxDim || cfg.num_layers == 0 ||
      cfg.num_layers > kMaxLayers || cfg.batch_size == 0 ||
      !std::isfinite(cfg.learning_rate) || !std::isfinite(cfg.grad_clip)) {
    return Result::failure("model load: implausible architecture");
  }
  try {
    LstmClassifier model(cfg, /*seed=*/0);
    for (auto& layer : model.layers_) {
      copy_into(layer.weights(), read_matrix(is), "lstm weights");
      copy_into(layer.bias(), read_matrix(is), "lstm bias");
    }
    copy_into(model.head_.weights(), read_matrix(is), "head weights");
    copy_into(model.head_.bias(), read_matrix(is), "head bias");
    model.rebuild_packs();  // the batched kernels read cached packed weights
    return Result(std::move(model));
  } catch (const std::exception& e) {
    return Result::failure(std::string("model load: ") + e.what());
  }
}

LstmClassifier LstmClassifier::load(std::istream& is) {
  auto result = try_load(is);
  if (!result) throw std::runtime_error(result.error());
  return std::move(result).value();
}

void LstmClassifier::save_file(const std::string& path) const {
  std::ostringstream payload;
  save(payload);
  durable::DurableWriter writer(kDurableTag, kDurableVersion);
  writer.add_record(payload.str());
  auto committed = writer.commit(path);
  if (!committed) {
    throw std::runtime_error("model save: " + committed.error());
  }
}

Expected<LstmClassifier, std::string> LstmClassifier::try_load_file(
    const std::string& path) {
  using Result = Expected<LstmClassifier, std::string>;
  if (durable::file_has_durable_magic(path)) {
    auto contents = durable::read_durable_file(path, kDurableTag);
    if (!contents) return Result::failure("model load: " + contents.error());
    if (contents.value().records.size() != 1) {
      return Result::failure("model load: unexpected record count");
    }
    std::istringstream is(contents.value().records[0]);
    return try_load(is);
  }
  // Back-compat: pre-durable bare-text model files.
  std::ifstream is(path);
  if (!is) return Result::failure("model load: cannot open " + path);
  return try_load(is);
}

LstmClassifier LstmClassifier::load_file(const std::string& path) {
  auto result = try_load_file(path);
  if (!result) throw std::runtime_error(result.error());
  return std::move(result).value();
}

}  // namespace trajkit::nn
